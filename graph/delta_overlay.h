#ifndef SARGUS_GRAPH_DELTA_OVERLAY_H_
#define SARGUS_GRAPH_DELTA_OVERLAY_H_

/// \file delta_overlay.h
/// \brief DeltaOverlay: pending edge mutations layered over an immutable
/// CsrSnapshot, so queries see a live graph without paying a rebuild.
///
/// A CsrSnapshot never observes graph mutations; before this subsystem,
/// every AddEdge/RemoveEdge forced a full RebuildIndexes (the cost model
/// bench_dynamic.cc charts). The overlay closes that gap: it records the
/// *difference* between the snapshot and the logical graph as per-label
/// added/removed edge sets, materialized in both orientations, and the
/// traversal evaluators merge it into neighbor iteration on the fly
/// (see ForEachNeighborEdge below). A mutation is then an O(1) hash
/// update; the snapshot is merged and rebuilt only when the overlay
/// exceeds a compaction threshold (AccessControlEngine::Compact).
///
/// The overlay is *relative to one snapshot*: a staged add must not
/// duplicate a live base edge, and a staged remove must name a live base
/// edge. AccessControlEngine enforces both; direct users must do the
/// same, or neighbor iteration may yield duplicates (harmless for
/// reachability, wasteful) or no-op removals.
///
/// Node growth is staged too: StageNode() extends the *logical* node id
/// range past the snapshot without touching the SocialGraph — staged
/// node k gets id snapshot_nodes + k, the id the graph will assign when
/// compaction folds the nodes in, so ids are stable across the fold.
/// Endpoints of staged edges must be < snapshot NumNodes() +
/// num_staged_nodes(): walkers size their visited arrays to that
/// logical count (LogicalNumNodes below), and ForEachNeighborEdge
/// serves nodes at or past the snapshot from the overlay adjacency
/// alone (they have no base entries). Staged nodes have no attributes
/// until compaction, so attribute-filtered steps treat them as unset.
///
/// Thread-safety and snapshot-consistency contract: the overlay is NOT
/// internally synchronized. Readers (evaluators mid-query) and writers
/// (Stage*/Unstage*/Clear) must be externally serialized — a mutation
/// racing a traversal is a data race, and a mutation between two queries
/// of one CheckAccess would make its rule disjunction evaluate against
/// two different logical graphs. `version()` increments on every
/// successful staging change, so callers can detect overlay churn between
/// reads; generation counters on the engine cover snapshot swaps.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "graph/csr.h"

namespace sargus {

namespace storage {
struct StorageAccess;
}

class DeltaOverlay {
 public:
  /// One logical edge. The graph coalesces duplicate (src, dst, label)
  /// edges, so the triple identifies an edge without an EdgeId — which
  /// staged additions do not have yet.
  struct EdgeTriple {
    NodeId src = 0;
    NodeId dst = 0;
    LabelId label = kInvalidLabel;
    bool operator==(const EdgeTriple&) const = default;
  };

  // ---- Staging (engine-facing) --------------------------------------------

  /// Stages src -[label]-> dst as pending-added. Returns true when newly
  /// staged, false when it was already staged.
  bool StageAdd(NodeId src, NodeId dst, LabelId label);

  /// Withdraws a pending addition (the logical edge disappears again).
  /// Returns false when it was not staged.
  bool UnstageAdd(NodeId src, NodeId dst, LabelId label);

  /// Stages the *base* edge src -[label]-> dst as pending-removed.
  /// Returns true when newly staged.
  bool StageRemove(NodeId src, NodeId dst, LabelId label);

  /// Withdraws a pending removal (the base edge is visible again).
  /// Returns false when it was not staged.
  bool UnstageRemove(NodeId src, NodeId dst, LabelId label);

  /// Stages one node addition past the snapshot's id range; returns the
  /// zero-based index of the staged node (its logical id is the
  /// snapshot's NumNodes() + that index). Unlike edges, node additions
  /// never cancel: ids already handed out must stay valid.
  uint32_t StageNode() {
    ++version_;
    return staged_nodes_++;
  }

  bool IsStagedAdd(NodeId src, NodeId dst, LabelId label) const {
    return added_.contains(EdgeTriple{src, dst, label});
  }
  bool IsStagedRemove(NodeId src, NodeId dst, LabelId label) const {
    return removed_.contains(EdgeTriple{src, dst, label});
  }

  /// Drops every staged mutation (after the engine folded them into a
  /// fresh snapshot, or to abandon them).
  void Clear();

  // ---- Query side (the traversal hot path) --------------------------------

  /// True when the base edge src -[label]-> dst is pending-removed and
  /// must be skipped during neighbor iteration.
  bool IsRemoved(NodeId src, NodeId dst, LabelId label) const {
    return removed_.contains(EdgeTriple{src, dst, label});
  }

  /// Pending-added out-neighbors w of `node` (edges node -[label]-> w).
  /// Unordered; stable until the next staging change.
  std::span<const NodeId> AddedOut(NodeId node, LabelId label) const {
    return AdjSpan(added_out_, node, label);
  }

  /// Pending-added in-neighbors w of `node` (edges w -[label]-> node).
  std::span<const NodeId> AddedIn(NodeId node, LabelId label) const {
    return AdjSpan(added_in_, node, label);
  }

  // ---- Introspection / compaction -----------------------------------------

  size_t NumAdded() const { return added_.size(); }
  size_t NumRemoved() const { return removed_.size(); }
  /// Staged node additions past the snapshot (see StageNode).
  size_t num_staged_nodes() const { return staged_nodes_; }
  /// Total staged mutations — the compaction-threshold metric.
  size_t size() const {
    return added_.size() + removed_.size() + staged_nodes_;
  }
  bool empty() const {
    return added_.empty() && removed_.empty() && staged_nodes_ == 0;
  }

  /// Any pending additions? While true, "index says unreachable" proofs
  /// over the base snapshot are invalid (an added edge may connect).
  bool has_insertions() const { return !added_.empty(); }
  /// Any pending removals? While true, "index says reachable" proofs
  /// over the base snapshot are invalid (the witness path may be gone).
  bool has_deletions() const { return !removed_.empty(); }

  /// Monotonic counter, bumped by every successful staging change and by
  /// Clear() on a non-empty overlay.
  uint64_t version() const { return version_; }

  /// Enumeration for compaction; fn(const EdgeTriple&). Unordered.
  template <typename Fn>
  void ForEachAdded(Fn&& fn) const {
    for (const EdgeTriple& t : added_) fn(t);
  }
  template <typename Fn>
  void ForEachRemoved(Fn&& fn) const {
    for (const EdgeTriple& t : removed_) fn(t);
  }

  size_t MemoryBytes() const;

 private:
  struct TripleHash {
    size_t operator()(const EdgeTriple& t) const {
      uint64_t h = (static_cast<uint64_t>(t.src) << 32) ^
                   (static_cast<uint64_t>(t.dst) << 16) ^ t.label;
      h *= 0x9e3779b97f4a7c15ULL;
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };
  using TripleSet = std::unordered_set<EdgeTriple, TripleHash>;
  /// (node, label) -> unordered endpoint list; key packs node and label.
  using AdjMap = std::unordered_map<uint64_t, std::vector<NodeId>>;

  static uint64_t AdjKey(NodeId node, LabelId label) {
    return (static_cast<uint64_t>(node) << 16) | label;
  }
  static std::span<const NodeId> AdjSpan(const AdjMap& map, NodeId node,
                                         LabelId label) {
    auto it = map.find(AdjKey(node, label));
    if (it == map.end()) return {};
    return {it->second.data(), it->second.size()};
  }
  static void AdjErase(AdjMap& map, NodeId node, LabelId label, NodeId other);

  TripleSet added_;
  TripleSet removed_;
  AdjMap added_out_;
  AdjMap added_in_;
  uint32_t staged_nodes_ = 0;
  uint64_t version_ = 0;

  friend class AccessControlEngine;  // version continuity across compaction
  friend struct storage::StorageAccess;
};

/// Node ids a traversal over (csr, overlay) may legally touch: the
/// snapshot's range plus any staged node additions. This is the size
/// every walker's visited/parent arrays must cover.
inline size_t LogicalNumNodes(const CsrSnapshot& csr,
                              const DeltaOverlay* overlay) {
  return csr.NumNodes() +
         (overlay == nullptr ? 0 : overlay->num_staged_nodes());
}

/// Merged neighbor iteration: the one place base entries and overlay
/// deltas combine, shared by every traversal (ProductWalker steps,
/// bidirectional seeds and backward expansion).
///
/// With backward == false, visits every w such that the logical graph has
/// node -[label]-> w; with backward == true, every w with
/// w -[label]-> node. Base entries pending removal are skipped, then
/// staged additions are appended. `fn(NodeId w)` returns true to stop
/// early; the function returns true when a callback stopped it. A null or
/// empty overlay adds one branch, no per-edge cost.
template <typename Fn>
inline bool ForEachNeighborEdge(const CsrSnapshot& csr,
                                const DeltaOverlay* overlay, NodeId node,
                                LabelId label, bool backward, Fn&& fn) {
  if (node >= csr.NumNodes()) {
    // A staged node: no base entries, overlay adjacency only. (Callers
    // validate node < LogicalNumNodes, so overlay is non-null here.)
    if (overlay == nullptr) return false;
    const auto added = backward ? overlay->AddedIn(node, label)
                                : overlay->AddedOut(node, label);
    for (NodeId w : added) {
      if (fn(w)) return true;
    }
    return false;
  }
  const auto entries =
      backward ? csr.InWithLabel(node, label) : csr.OutWithLabel(node, label);
  if (overlay == nullptr || overlay->empty()) {
    for (const CsrSnapshot::Entry& e : entries) {
      if (fn(e.other)) return true;
    }
    return false;
  }
  const bool check_removed = overlay->has_deletions();
  for (const CsrSnapshot::Entry& e : entries) {
    if (check_removed &&
        (backward ? overlay->IsRemoved(e.other, node, label)
                  : overlay->IsRemoved(node, e.other, label))) {
      continue;
    }
    if (fn(e.other)) return true;
  }
  const auto added =
      backward ? overlay->AddedIn(node, label) : overlay->AddedOut(node, label);
  for (NodeId w : added) {
    if (fn(w)) return true;
  }
  return false;
}

}  // namespace sargus

#endif  // SARGUS_GRAPH_DELTA_OVERLAY_H_
