#include "graph/delta_overlay.h"

#include <algorithm>

namespace sargus {

bool DeltaOverlay::StageAdd(NodeId src, NodeId dst, LabelId label) {
  if (!added_.insert(EdgeTriple{src, dst, label}).second) return false;
  added_out_[AdjKey(src, label)].push_back(dst);
  added_in_[AdjKey(dst, label)].push_back(src);
  ++version_;
  return true;
}

bool DeltaOverlay::UnstageAdd(NodeId src, NodeId dst, LabelId label) {
  if (added_.erase(EdgeTriple{src, dst, label}) == 0) return false;
  AdjErase(added_out_, src, label, dst);
  AdjErase(added_in_, dst, label, src);
  ++version_;
  return true;
}

bool DeltaOverlay::StageRemove(NodeId src, NodeId dst, LabelId label) {
  if (!removed_.insert(EdgeTriple{src, dst, label}).second) return false;
  ++version_;
  return true;
}

bool DeltaOverlay::UnstageRemove(NodeId src, NodeId dst, LabelId label) {
  if (removed_.erase(EdgeTriple{src, dst, label}) == 0) return false;
  ++version_;
  return true;
}

void DeltaOverlay::Clear() {
  if (!empty()) ++version_;
  added_.clear();
  removed_.clear();
  added_out_.clear();
  added_in_.clear();
  staged_nodes_ = 0;
}

void DeltaOverlay::AdjErase(AdjMap& map, NodeId node, LabelId label,
                            NodeId other) {
  auto it = map.find(AdjKey(node, label));
  if (it == map.end()) return;
  std::vector<NodeId>& vec = it->second;
  auto pos = std::find(vec.begin(), vec.end(), other);
  if (pos != vec.end()) {
    *pos = vec.back();
    vec.pop_back();
  }
  if (vec.empty()) map.erase(it);
}

size_t DeltaOverlay::MemoryBytes() const {
  // Rough: hash nodes + adjacency vectors; good enough for benches.
  size_t bytes =
      (added_.size() + removed_.size()) * (sizeof(EdgeTriple) + 16);
  for (const auto& [k, v] : added_out_) {
    bytes += sizeof(k) + v.capacity() * sizeof(NodeId) + 16;
  }
  for (const auto& [k, v] : added_in_) {
    bytes += sizeof(k) + v.capacity() * sizeof(NodeId) + 16;
  }
  return bytes;
}

}  // namespace sargus
