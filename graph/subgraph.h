#ifndef SARGUS_GRAPH_SUBGRAPH_H_
#define SARGUS_GRAPH_SUBGRAPH_H_

/// \file subgraph.h
/// \brief Shard-local graph extraction: the edge-partitioned copies the
/// sharded serving tier (shard/) builds its per-shard engines over.
///
/// A shard graph keeps the FULL node id space and both dictionaries of
/// the source graph — node ids, label ids and attribute ids are global —
/// but only the edges with at least one endpoint assigned to the shard:
/// the shard's interior edges plus its side of every cut edge. Keeping
/// ids global is what lets automaton state numbering, wire frontiers
/// (shard/wire.h) and boundary summaries compose across shards with no
/// translation tables, and what makes cross-cut mutations safe: a staged
/// cut edge's far endpoint always already exists in both shard graphs,
/// with its attributes, so attribute-filtered steps agree with a
/// single-engine oracle. Edges are the dominant storage cost at scale;
/// the O(|V|) node/attribute replication is the accepted price of the
/// translation-free design (see docs/ARCHITECTURE.md, "Sharded serving
/// tier").

#include <span>
#include <vector>

#include "common/result.h"
#include "graph/social_graph.h"

namespace sargus {

struct ShardExtractStats {
  size_t interior_edges = 0;  ///< Both endpoints assigned to the shard.
  size_t cut_edges = 0;       ///< Exactly one endpoint assigned to it.
};

/// The shard-local copy of `g` for `shard` under assignment `shard_of`
/// (node -> shard id; must cover every node). Node count, attribute
/// values and both dictionaries are copied in full — and in interning
/// order, so every id means the same thing in every copy; edges are
/// kept iff an endpoint lies on the shard. kInvalidArgument when
/// `shard_of` does not match the graph's node count.
Result<SocialGraph> ExtractShardGraph(const SocialGraph& g,
                                      std::span<const uint32_t> shard_of,
                                      uint32_t shard,
                                      ShardExtractStats* stats = nullptr);

/// Every live edge of `g` whose endpoints lie on different shards, in
/// edge-slot order — the seed of the router's cut table.
Result<std::vector<Edge>> ExtractCutEdges(const SocialGraph& g,
                                          std::span<const uint32_t> shard_of);

}  // namespace sargus

#endif  // SARGUS_GRAPH_SUBGRAPH_H_
