#include "graph/social_graph.h"

#include <limits>

namespace sargus {

namespace {
constexpr int64_t kUnsetAttr = std::numeric_limits<int64_t>::min();
}  // namespace

uint16_t NameDictionary::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  // 0xFFFF is the invalid sentinel; refuse to mint it as a real id.
  if (names_.size() >= 0xFFFF) return uint16_t{0xFFFF};
  const uint16_t id = static_cast<uint16_t>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

uint16_t NameDictionary::Lookup(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? uint16_t{0xFFFF} : it->second;
}

const std::string& NameDictionary::ToString(uint16_t id) const {
  return names_[id];
}

NodeId SocialGraph::AddNode() { return AddNodes(1); }

NodeId SocialGraph::AddNodes(size_t count) {
  const NodeId id = static_cast<NodeId>(num_nodes_);
  num_nodes_ += count;
  return id;
}

Status SocialGraph::SetAttribute(NodeId node, const std::string& name,
                                 int64_t value) {
  if (node >= num_nodes_) {
    return Status::InvalidArgument("SetAttribute: node out of range");
  }
  if (value == kUnsetAttr) {
    return Status::InvalidArgument("SetAttribute: INT64_MIN is reserved");
  }
  const AttrId attr = attrs_.Intern(name);
  if (attr == kInvalidAttr) {
    return Status::ResourceExhausted("SetAttribute: attribute dictionary full");
  }
  if (attr >= attr_columns_.size()) {
    attr_columns_.resize(attr + 1);
  }
  // Columns trail the node counter when nodes were appended in bulk;
  // grow on demand so the write below stays in bounds.
  if (attr_columns_[attr].size() < num_nodes_) {
    attr_columns_[attr].resize(num_nodes_, kUnsetAttr);
  }
  attr_columns_[attr][node] = value;
  return OkStatus();
}

std::optional<int64_t> SocialGraph::GetAttribute(NodeId node,
                                                 AttrId attr) const {
  // Bound by column size, not the node counter: columns never shrink,
  // so this read stays safe (and "unset") for nodes appended — even
  // concurrently by a compaction fold — after the column last grew.
  if (attr >= attr_columns_.size()) return std::nullopt;
  const std::vector<int64_t>& col = attr_columns_[attr];
  if (node >= col.size()) return std::nullopt;
  const int64_t v = col[node];
  if (v == kUnsetAttr) return std::nullopt;
  return v;
}

std::optional<int64_t> SocialGraph::GetAttribute(
    NodeId node, const std::string& name) const {
  const AttrId attr = attrs_.Lookup(name);
  if (attr == kInvalidAttr) return std::nullopt;
  return GetAttribute(node, attr);
}

Result<EdgeId> SocialGraph::AddEdge(NodeId src, NodeId dst,
                                    const std::string& label) {
  const LabelId id = labels_.Intern(label);
  if (id == kInvalidLabel) {
    return Status::ResourceExhausted("AddEdge: label dictionary full");
  }
  return AddEdge(src, dst, id);
}

Result<EdgeId> SocialGraph::AddEdge(NodeId src, NodeId dst, LabelId label) {
  if (src >= num_nodes_ || dst >= num_nodes_) {
    return Status::InvalidArgument("AddEdge: endpoint out of range");
  }
  if (label >= labels_.size()) {
    return Status::InvalidArgument("AddEdge: unknown label id");
  }
  EnsureEdgeLookup();
  const EdgeKey key{src, dst, label};
  auto it = edge_lookup_.find(key);
  if (it != edge_lookup_.end()) return it->second;
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{src, dst, label});
  live_.push_back(1);
  ++num_live_edges_;
  edge_lookup_.emplace(key, id);
  return id;
}

std::optional<EdgeId> SocialGraph::FindEdge(NodeId src, NodeId dst,
                                            LabelId label) const {
  EnsureEdgeLookup();
  auto it = edge_lookup_.find(EdgeKey{src, dst, label});
  if (it == edge_lookup_.end()) return std::nullopt;
  return it->second;
}

Status SocialGraph::RemoveEdge(EdgeId edge) {
  if (!IsLiveEdge(edge)) {
    return Status::NotFound("RemoveEdge: no live edge in slot");
  }
  const Edge& rec = edges_[edge];
  EnsureEdgeLookup();
  edge_lookup_.erase(EdgeKey{rec.src, rec.dst, rec.label});
  live_[edge] = 0;
  --num_live_edges_;
  return OkStatus();
}

void SocialGraph::EnsureEdgeLookup() const {
  if (!edge_lookup_stale_) return;
  edge_lookup_.clear();
  edge_lookup_.reserve(num_live_edges_);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (!live_[e]) continue;
    const Edge& rec = edges_[e];
    edge_lookup_.emplace(EdgeKey{rec.src, rec.dst, rec.label}, e);
  }
  edge_lookup_stale_ = false;
}

size_t SocialGraph::MemoryBytes() const {
  size_t bytes = edges_.capacity() * sizeof(Edge) + live_.capacity();
  for (const auto& col : attr_columns_) {
    bytes += col.capacity() * sizeof(int64_t);
  }
  bytes += edge_lookup_.size() * (sizeof(EdgeKey) + sizeof(EdgeId) + 16);
  return bytes;
}

}  // namespace sargus
