#ifndef SARGUS_GRAPH_CSR_H_
#define SARGUS_GRAPH_CSR_H_

/// \file csr.h
/// \brief CsrSnapshot: an immutable compressed-sparse-row view of a
/// SocialGraph, in both directions.
///
/// This is the structure traversal-based evaluators run on. It is a value
/// type: Build() walks the live edges once and the result never observes
/// later mutations of the source graph. Out-entries of a node are sorted
/// by label so per-label neighbor ranges can be scanned contiguously.

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "graph/social_graph.h"

namespace sargus {

class DeltaOverlay;

namespace storage {
struct StorageAccess;
}

class CsrSnapshot {
 public:
  /// One adjacency entry: the far endpoint plus the edge's label and slot.
  struct Entry {
    NodeId other = 0;
    LabelId label = kInvalidLabel;
    EdgeId edge = 0;
  };

  CsrSnapshot() = default;

  /// Snapshots the live edges of `g`.
  static CsrSnapshot Build(const SocialGraph& g);

  /// Snapshots the *logical* graph g ⊕ overlay without mutating g: base
  /// live edges minus staged removals, plus staged additions and staged
  /// nodes. Staged additions get the edge ids the fold will assign —
  /// `first_new_edge + i` for the i-th triple of the overlay's added-set
  /// iteration order — so the result is bit-identical to Build(g) after
  /// the same overlay is folded into g (removals first, additions in
  /// that same iteration order). This is what lets a background
  /// compaction build indexes against a frozen overlay while the graph
  /// object stays untouched.
  static CsrSnapshot Build(const SocialGraph& g, const DeltaOverlay& overlay,
                           EdgeId first_new_edge);

  size_t NumNodes() const { return num_nodes_; }
  size_t NumEdges() const { return out_entries_.size(); }

  /// Outgoing entries of `node`, sorted by label.
  std::span<const Entry> Out(NodeId node) const {
    return {out_entries_.data() + out_offsets_[node],
            out_offsets_[node + 1] - out_offsets_[node]};
  }

  /// Incoming entries of `node` (Entry::other is the source), sorted by
  /// label.
  std::span<const Entry> In(NodeId node) const {
    return {in_entries_.data() + in_offsets_[node],
            in_offsets_[node + 1] - in_offsets_[node]};
  }

  /// Outgoing entries of `node` restricted to `label` (binary search on
  /// the label-sorted range).
  std::span<const Entry> OutWithLabel(NodeId node, LabelId label) const {
    return LabelRange(Out(node), label);
  }
  std::span<const Entry> InWithLabel(NodeId node, LabelId label) const {
    return LabelRange(In(node), label);
  }

  size_t MemoryBytes() const {
    return (out_offsets_.capacity() + in_offsets_.capacity()) *
               sizeof(uint32_t) +
           (out_entries_.capacity() + in_entries_.capacity()) * sizeof(Entry);
  }

 private:
  friend struct storage::StorageAccess;

  static std::span<const Entry> LabelRange(std::span<const Entry> all,
                                           LabelId label);

  /// Shared core of both Build overloads: counting-sort the materialized
  /// logical edge list (record i gets slot id ids[i]) into label-sorted
  /// per-node ranges. Keeping one copy is what guarantees the merged
  /// build stays bit-identical to a post-fold rebuild.
  static CsrSnapshot FromEdgeList(size_t num_nodes,
                                  const std::vector<Edge>& logical,
                                  const std::vector<EdgeId>& ids);

  size_t num_nodes_ = 0;
  std::vector<uint32_t> out_offsets_{0};
  std::vector<Entry> out_entries_;
  std::vector<uint32_t> in_offsets_{0};
  std::vector<Entry> in_entries_;
};

}  // namespace sargus

#endif  // SARGUS_GRAPH_CSR_H_
