#include "graph/csr.h"

#include <algorithm>

namespace sargus {

CsrSnapshot CsrSnapshot::Build(const SocialGraph& g) {
  CsrSnapshot snap;
  const size_t n = g.NumNodes();
  snap.num_nodes_ = n;
  snap.out_offsets_.assign(n + 1, 0);
  snap.in_offsets_.assign(n + 1, 0);

  // Counting pass.
  for (EdgeId e = 0; e < g.EdgeSlotCount(); ++e) {
    if (!g.IsLiveEdge(e)) continue;
    const Edge& rec = g.edge(e);
    ++snap.out_offsets_[rec.src + 1];
    ++snap.in_offsets_[rec.dst + 1];
  }
  for (size_t v = 0; v < n; ++v) {
    snap.out_offsets_[v + 1] += snap.out_offsets_[v];
    snap.in_offsets_[v + 1] += snap.in_offsets_[v];
  }

  // Fill pass (cursor copies of the offsets).
  snap.out_entries_.resize(g.NumEdges());
  snap.in_entries_.resize(g.NumEdges());
  std::vector<uint32_t> out_cursor(snap.out_offsets_.begin(),
                                   snap.out_offsets_.end() - 1);
  std::vector<uint32_t> in_cursor(snap.in_offsets_.begin(),
                                  snap.in_offsets_.end() - 1);
  for (EdgeId e = 0; e < g.EdgeSlotCount(); ++e) {
    if (!g.IsLiveEdge(e)) continue;
    const Edge& rec = g.edge(e);
    snap.out_entries_[out_cursor[rec.src]++] = {rec.dst, rec.label, e};
    snap.in_entries_[in_cursor[rec.dst]++] = {rec.src, rec.label, e};
  }

  // Sort each node's range by label (then endpoint for determinism).
  auto by_label = [](const Entry& a, const Entry& b) {
    return a.label != b.label ? a.label < b.label : a.other < b.other;
  };
  for (size_t v = 0; v < n; ++v) {
    std::sort(snap.out_entries_.begin() + snap.out_offsets_[v],
              snap.out_entries_.begin() + snap.out_offsets_[v + 1], by_label);
    std::sort(snap.in_entries_.begin() + snap.in_offsets_[v],
              snap.in_entries_.begin() + snap.in_offsets_[v + 1], by_label);
  }
  return snap;
}

std::span<const CsrSnapshot::Entry> CsrSnapshot::LabelRange(
    std::span<const Entry> all, LabelId label) {
  auto lo = std::lower_bound(
      all.begin(), all.end(), label,
      [](const Entry& e, LabelId l) { return e.label < l; });
  auto hi = std::upper_bound(
      all.begin(), all.end(), label,
      [](LabelId l, const Entry& e) { return l < e.label; });
  return {lo, hi};
}

}  // namespace sargus
