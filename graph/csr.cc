#include "graph/csr.h"

#include <algorithm>

#include "graph/delta_overlay.h"

namespace sargus {

CsrSnapshot CsrSnapshot::FromEdgeList(size_t num_nodes,
                                      const std::vector<Edge>& logical,
                                      const std::vector<EdgeId>& ids) {
  CsrSnapshot snap;
  snap.num_nodes_ = num_nodes;
  snap.out_offsets_.assign(num_nodes + 1, 0);
  snap.in_offsets_.assign(num_nodes + 1, 0);

  // Counting pass.
  for (const Edge& rec : logical) {
    ++snap.out_offsets_[rec.src + 1];
    ++snap.in_offsets_[rec.dst + 1];
  }
  for (size_t v = 0; v < num_nodes; ++v) {
    snap.out_offsets_[v + 1] += snap.out_offsets_[v];
    snap.in_offsets_[v + 1] += snap.in_offsets_[v];
  }

  // Fill pass (cursor copies of the offsets).
  snap.out_entries_.resize(logical.size());
  snap.in_entries_.resize(logical.size());
  std::vector<uint32_t> out_cursor(snap.out_offsets_.begin(),
                                   snap.out_offsets_.end() - 1);
  std::vector<uint32_t> in_cursor(snap.in_offsets_.begin(),
                                  snap.in_offsets_.end() - 1);
  for (size_t i = 0; i < logical.size(); ++i) {
    const Edge& rec = logical[i];
    snap.out_entries_[out_cursor[rec.src]++] = {rec.dst, rec.label, ids[i]};
    snap.in_entries_[in_cursor[rec.dst]++] = {rec.src, rec.label, ids[i]};
  }

  // Sort each node's range by label (then endpoint for determinism).
  auto by_label = [](const Entry& a, const Entry& b) {
    return a.label != b.label ? a.label < b.label : a.other < b.other;
  };
  for (size_t v = 0; v < num_nodes; ++v) {
    std::sort(snap.out_entries_.begin() + snap.out_offsets_[v],
              snap.out_entries_.begin() + snap.out_offsets_[v + 1], by_label);
    std::sort(snap.in_entries_.begin() + snap.in_offsets_[v],
              snap.in_entries_.begin() + snap.in_offsets_[v + 1], by_label);
  }
  return snap;
}

CsrSnapshot CsrSnapshot::Build(const SocialGraph& g) {
  std::vector<Edge> logical;
  std::vector<EdgeId> ids;
  logical.reserve(g.NumEdges());
  ids.reserve(g.NumEdges());
  for (EdgeId e = 0; e < g.EdgeSlotCount(); ++e) {
    if (!g.IsLiveEdge(e)) continue;
    logical.push_back(g.edge(e));
    ids.push_back(e);
  }
  return FromEdgeList(g.NumNodes(), logical, ids);
}

CsrSnapshot CsrSnapshot::Build(const SocialGraph& g,
                               const DeltaOverlay& overlay,
                               EdgeId first_new_edge) {
  // Materialize the logical edge list: surviving base edges keep their
  // slot ids; staged additions get the ids the fold will assign, in the
  // overlay's (stable for one frozen copy) iteration order.
  std::vector<Edge> logical;
  std::vector<EdgeId> ids;
  logical.reserve(g.NumEdges() + overlay.NumAdded());
  ids.reserve(g.NumEdges() + overlay.NumAdded());
  const bool check_removed = overlay.has_deletions();
  for (EdgeId e = 0; e < g.EdgeSlotCount(); ++e) {
    if (!g.IsLiveEdge(e)) continue;
    const Edge& rec = g.edge(e);
    if (check_removed && overlay.IsRemoved(rec.src, rec.dst, rec.label)) {
      continue;
    }
    logical.push_back(rec);
    ids.push_back(e);
  }
  EdgeId next = first_new_edge;
  overlay.ForEachAdded([&](const DeltaOverlay::EdgeTriple& t) {
    logical.push_back(Edge{t.src, t.dst, t.label});
    ids.push_back(next++);
  });
  return FromEdgeList(g.NumNodes() + overlay.num_staged_nodes(), logical,
                      ids);
}

std::span<const CsrSnapshot::Entry> CsrSnapshot::LabelRange(
    std::span<const Entry> all, LabelId label) {
  auto lo = std::lower_bound(
      all.begin(), all.end(), label,
      [](const Entry& e, LabelId l) { return e.label < l; });
  auto hi = std::upper_bound(
      all.begin(), all.end(), label,
      [](LabelId l, const Entry& e) { return l < e.label; });
  return {lo, hi};
}

}  // namespace sargus
