#ifndef SARGUS_GRAPH_SOCIAL_GRAPH_H_
#define SARGUS_GRAPH_SOCIAL_GRAPH_H_

/// \file social_graph.h
/// \brief The mutable system of record: a labeled directed multigraph of
/// users with integer node attributes.
///
/// SocialGraph is the only mutable structure in sargus. Everything else
/// (CsrSnapshot, LineGraph, the index stack) is an immutable snapshot built
/// from it; after a mutation, callers rebuild the snapshots they need
/// (see bench/bench_dynamic.cc for the cost model this implies).
///
/// Edge slots are stable: RemoveEdge tombstones the slot instead of
/// compacting, so EdgeIds held by callers never dangle. Iteration goes
/// through EdgeSlotCount()/IsLiveEdge().

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"

namespace sargus {

namespace storage {
struct StorageAccess;  // snapshot bundle (de)serializer, storage/
}

/// Interning dictionary for label / attribute names.
class NameDictionary {
 public:
  /// Returns the id for `name`, interning it if new.
  uint16_t Intern(const std::string& name);

  /// Returns the id for `name`, or the sentinel (0xFFFF) if unknown.
  uint16_t Lookup(const std::string& name) const;

  /// Inverse mapping; `id` must be a valid interned id.
  const std::string& ToString(uint16_t id) const;

  size_t size() const { return names_.size(); }

 private:
  friend struct storage::StorageAccess;

  std::vector<std::string> names_;
  std::unordered_map<std::string, uint16_t> ids_;
};

/// One directed labeled edge. `label` is interned in the graph's label
/// dictionary.
struct Edge {
  NodeId src = 0;
  NodeId dst = 0;
  LabelId label = kInvalidLabel;
};

class SocialGraph {
 public:
  SocialGraph() = default;

  // Movable and copyable (generators return by value; benches copy).
  SocialGraph(const SocialGraph&) = default;
  SocialGraph& operator=(const SocialGraph&) = default;
  SocialGraph(SocialGraph&&) noexcept = default;
  SocialGraph& operator=(SocialGraph&&) noexcept = default;

  // ---- Nodes ---------------------------------------------------------------

  NodeId AddNode();

  /// Appends `count` nodes at once; returns the first new id. Touches
  /// only the node counter — attribute columns grow lazily on the next
  /// SetAttribute — which is what lets compaction fold staged node
  /// additions in while read views (which never consult the counter and
  /// bound attribute reads by column size) are in flight.
  NodeId AddNodes(size_t count);

  size_t NumNodes() const { return num_nodes_; }

  /// Sets integer attribute `name` on `node` (interning the name).
  /// Fails with kInvalidArgument if `node` is out of range.
  Status SetAttribute(NodeId node, const std::string& name, int64_t value);

  /// Attribute by pre-resolved id; nullopt when unset/unknown.
  std::optional<int64_t> GetAttribute(NodeId node, AttrId attr) const;

  /// Attribute by name; nullopt when unset/unknown.
  std::optional<int64_t> GetAttribute(NodeId node,
                                      const std::string& name) const;

  // ---- Edges ---------------------------------------------------------------

  /// Adds edge src -[label]-> dst, interning the label name. Duplicate
  /// (src, dst, label) edges are coalesced: the existing id is returned.
  Result<EdgeId> AddEdge(NodeId src, NodeId dst, const std::string& label);

  /// Same, with a label id already interned in this graph's dictionary.
  Result<EdgeId> AddEdge(NodeId src, NodeId dst, LabelId label);

  /// Tombstones the edge slot. kNotFound if the slot is dead or invalid.
  Status RemoveEdge(EdgeId edge);

  /// Slot of the live edge (src, dst, label), or nullopt when absent.
  /// (Duplicate triples are coalesced by AddEdge, so the triple is a key.)
  std::optional<EdgeId> FindEdge(NodeId src, NodeId dst, LabelId label) const;

  /// Whether the triple→slot map is materialized. The snapshot loader
  /// leaves it stale (rebuilding it would cost as much as the index
  /// rebuild the bundle avoids); AddEdge/RemoveEdge/FindEdge
  /// rematerialize it on demand. Callers with an alternative membership
  /// source (e.g. the engine's CSR snapshot) can consult this to avoid
  /// triggering that one-time rebuild. Note the rebuild mutates state
  /// under a const method: concurrent FindEdge calls on a stale graph
  /// need external synchronization (the engine's mutation lock covers
  /// every such caller).
  bool edge_lookup_ready() const { return !edge_lookup_stale_; }

  /// Number of live edges.
  size_t NumEdges() const { return num_live_edges_; }

  /// Total slots ever allocated (live + tombstoned); the iteration bound.
  size_t EdgeSlotCount() const { return edges_.size(); }

  bool IsLiveEdge(EdgeId edge) const {
    return edge < edges_.size() && live_[edge];
  }

  /// Record for a slot; valid only while IsLiveEdge(edge).
  const Edge& edge(EdgeId edge) const { return edges_[edge]; }

  // ---- Dictionaries --------------------------------------------------------

  const NameDictionary& labels() const { return labels_; }
  NameDictionary& labels() { return labels_; }
  const NameDictionary& attrs() const { return attrs_; }
  /// Mutable attribute dictionary, mirroring labels(): shard-graph
  /// extraction pre-interns every name so attribute ids are identical
  /// across all shard copies (see graph/subgraph.h).
  NameDictionary& attrs() { return attrs_; }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

 private:
  friend struct storage::StorageAccess;

  struct EdgeKey {
    NodeId src;
    NodeId dst;
    LabelId label;
    bool operator==(const EdgeKey&) const = default;
  };
  struct EdgeKeyHash {
    size_t operator()(const EdgeKey& k) const {
      uint64_t h = (static_cast<uint64_t>(k.src) << 32) ^
                   (static_cast<uint64_t>(k.dst) << 16) ^ k.label;
      h *= 0x9e3779b97f4a7c15ULL;
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };

  size_t num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<uint8_t> live_;
  size_t num_live_edges_ = 0;
  NameDictionary labels_;
  NameDictionary attrs_;
  // Per-attribute dense columns; INT64_MIN marks "unset". Columns may
  // trail num_nodes_ (nodes appended since the column last grew);
  // GetAttribute treats the missing tail as unset.
  std::vector<std::vector<int64_t>> attr_columns_;

  /// Rematerializes edge_lookup_ from the live slots when stale.
  void EnsureEdgeLookup() const;

  // Lazily materialized (hence mutable): the loader marks it stale and
  // the first lookup/mutation rebuilds it from edges_/live_.
  mutable std::unordered_map<EdgeKey, EdgeId, EdgeKeyHash> edge_lookup_;
  mutable bool edge_lookup_stale_ = false;
};

}  // namespace sargus

#endif  // SARGUS_GRAPH_SOCIAL_GRAPH_H_
