#ifndef SARGUS_GRAPH_LINE_GRAPH_H_
#define SARGUS_GRAPH_LINE_GRAPH_H_

/// \file line_graph.h
/// \brief LineGraph: the oriented edge graph the paper's index stack is
/// built over.
///
/// Each line vertex is one (edge, orientation) pair of the snapshot:
///   * forward  — tail = edge.src, head = edge.dst;
///   * backward — tail = edge.dst, head = edge.src (only when
///     Options::include_backward, needed for `label-[a,b]` policy steps).
///
/// An arc a -> b exists iff head(a) == tail(b): consecutive edges of a
/// path. Arcs are kept implicit — successors of `a` are exactly
/// VerticesWithTail(head(a)) — because materializing them costs
/// sum(in_v * out_v) memory, the super-linear blow-up the paper's
/// construction benchmarks chart.

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "graph/csr.h"

namespace sargus {

namespace storage {
struct StorageAccess;
}

class LineGraph {
 public:
  struct Options {
    /// Also create backward-oriented copies of every edge.
    bool include_backward = false;
  };

  struct Vertex {
    EdgeId edge = 0;
    NodeId tail = 0;
    NodeId head = 0;
    LabelId label = kInvalidLabel;
    bool backward = false;
  };

  LineGraph() = default;

  static LineGraph Build(const CsrSnapshot& csr, Options options);
  static LineGraph Build(const CsrSnapshot& csr) {
    return Build(csr, Options{});
  }

  /// Incremental build for a grown snapshot: `csr` must contain every
  /// edge of `prev`'s snapshot (same ids) plus edges with ids ≥
  /// `first_new_edge` — the shape an insertion-only compaction produces
  /// (CsrSnapshot::Build(g, overlay, first_new_edge)). Vertices of prev
  /// keep their LineVertexIds — the property that lets the reachability
  /// oracle be patched instead of rebuilt — and new-edge vertices are
  /// appended (forward orientation, then backward when prev carried
  /// backward orientations). The tail/head bucket lists are re-derived
  /// (linear), not the vertices.
  static LineGraph BuildIncremental(const LineGraph& prev,
                                    const CsrSnapshot& csr,
                                    EdgeId first_new_edge);

  size_t NumVertices() const { return vertices_.size(); }

  /// Number of implicit arcs: sum over line vertices of
  /// |VerticesWithTail(head(v))|.
  uint64_t NumArcs() const { return num_arcs_; }

  const Vertex& vertex(LineVertexId v) const { return vertices_[v]; }

  /// All line vertices whose tail is `node` (any label, any orientation) —
  /// the successor set of every line vertex whose head is `node`.
  std::span<const LineVertexId> VerticesWithTail(NodeId node) const {
    return {tail_list_.data() + tail_offsets_[node],
            tail_offsets_[node + 1] - tail_offsets_[node]};
  }

  /// All line vertices whose head is `node` — the predecessor set of every
  /// line vertex whose tail is `node`.
  std::span<const LineVertexId> VerticesWithHead(NodeId node) const {
    return {head_list_.data() + head_offsets_[node],
            head_offsets_[node + 1] - head_offsets_[node]};
  }

  bool includes_backward() const { return includes_backward_; }
  size_t NumGraphNodes() const { return num_graph_nodes_; }

  size_t MemoryBytes() const {
    return vertices_.capacity() * sizeof(Vertex) +
           (tail_offsets_.capacity() + head_offsets_.capacity()) *
               sizeof(uint32_t) +
           (tail_list_.capacity() + head_list_.capacity()) *
               sizeof(LineVertexId);
  }

 private:
  friend struct storage::StorageAccess;

  /// Re-derives the tail/head bucket lists and the implicit arc count
  /// from vertices_ for an n-node snapshot.
  void RebuildBuckets(size_t n);

  std::vector<Vertex> vertices_;
  std::vector<uint32_t> tail_offsets_{0};
  std::vector<LineVertexId> tail_list_;
  std::vector<uint32_t> head_offsets_{0};
  std::vector<LineVertexId> head_list_;
  uint64_t num_arcs_ = 0;
  size_t num_graph_nodes_ = 0;
  bool includes_backward_ = false;
};

}  // namespace sargus

#endif  // SARGUS_GRAPH_LINE_GRAPH_H_
