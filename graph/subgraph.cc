#include "graph/subgraph.h"

#include <string>

namespace sargus {

Result<SocialGraph> ExtractShardGraph(const SocialGraph& g,
                                      std::span<const uint32_t> shard_of,
                                      uint32_t shard,
                                      ShardExtractStats* stats) {
  if (shard_of.size() != g.NumNodes()) {
    return Status::InvalidArgument(
        "ExtractShardGraph: assignment covers " +
        std::to_string(shard_of.size()) + " nodes, graph has " +
        std::to_string(g.NumNodes()));
  }

  SocialGraph sub;
  sub.AddNodes(g.NumNodes());

  // Dictionaries first, in interning order, so every label/attribute id
  // is identical in every shard copy — the invariant the whole sharded
  // tier leans on (identical BoundSteps => identical automaton state
  // numbering => wire frontier states compose).
  for (uint16_t i = 0; i < g.labels().size(); ++i) {
    sub.labels().Intern(g.labels().ToString(i));
  }
  for (uint16_t i = 0; i < g.attrs().size(); ++i) {
    sub.attrs().Intern(g.attrs().ToString(i));
  }

  // Full attribute copy: cut-edge walks filter on far-side nodes too.
  for (uint16_t a = 0; a < g.attrs().size(); ++a) {
    const std::string& name = g.attrs().ToString(a);
    for (NodeId node = 0; node < g.NumNodes(); ++node) {
      if (const auto v = g.GetAttribute(node, static_cast<AttrId>(a))) {
        SARGUS_RETURN_IF_ERROR(sub.SetAttribute(node, name, *v));
      }
    }
  }

  ShardExtractStats local;
  for (EdgeId e = 0; e < g.EdgeSlotCount(); ++e) {
    if (!g.IsLiveEdge(e)) continue;
    const Edge& edge = g.edge(e);
    const bool src_here = shard_of[edge.src] == shard;
    const bool dst_here = shard_of[edge.dst] == shard;
    if (!src_here && !dst_here) continue;
    const auto added = sub.AddEdge(edge.src, edge.dst, edge.label);
    if (!added.ok()) return added.status();
    if (src_here && dst_here) {
      ++local.interior_edges;
    } else {
      ++local.cut_edges;
    }
  }
  if (stats != nullptr) *stats = local;
  return sub;
}

Result<std::vector<Edge>> ExtractCutEdges(const SocialGraph& g,
                                          std::span<const uint32_t> shard_of) {
  if (shard_of.size() != g.NumNodes()) {
    return Status::InvalidArgument(
        "ExtractCutEdges: assignment covers " +
        std::to_string(shard_of.size()) + " nodes, graph has " +
        std::to_string(g.NumNodes()));
  }
  std::vector<Edge> cut;
  for (EdgeId e = 0; e < g.EdgeSlotCount(); ++e) {
    if (!g.IsLiveEdge(e)) continue;
    const Edge& edge = g.edge(e);
    if (shard_of[edge.src] != shard_of[edge.dst]) cut.push_back(edge);
  }
  return cut;
}

}  // namespace sargus
