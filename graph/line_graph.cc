#include "graph/line_graph.h"

#include <algorithm>

namespace sargus {

LineGraph LineGraph::Build(const CsrSnapshot& csr, Options options) {
  LineGraph lg;
  const size_t n = csr.NumNodes();
  lg.num_graph_nodes_ = n;
  lg.includes_backward_ = options.include_backward;

  lg.vertices_.reserve(csr.NumEdges() * (options.include_backward ? 2 : 1));
  for (NodeId u = 0; u < n; ++u) {
    for (const CsrSnapshot::Entry& e : csr.Out(u)) {
      lg.vertices_.push_back(
          Vertex{e.edge, u, e.other, e.label, /*backward=*/false});
    }
  }
  if (options.include_backward) {
    for (NodeId u = 0; u < n; ++u) {
      for (const CsrSnapshot::Entry& e : csr.Out(u)) {
        // Backward orientation: traversed dst -> src.
        lg.vertices_.push_back(
            Vertex{e.edge, e.other, u, e.label, /*backward=*/true});
      }
    }
  }

  lg.RebuildBuckets(n);
  return lg;
}

LineGraph LineGraph::BuildIncremental(const LineGraph& prev,
                                      const CsrSnapshot& csr,
                                      EdgeId first_new_edge) {
  LineGraph lg;
  const size_t n = csr.NumNodes();
  lg.num_graph_nodes_ = n;
  lg.includes_backward_ = prev.includes_backward_;
  lg.vertices_ = prev.vertices_;
  for (NodeId u = 0; u < n; ++u) {
    for (const CsrSnapshot::Entry& e : csr.Out(u)) {
      if (e.edge < first_new_edge) continue;
      lg.vertices_.push_back(
          Vertex{e.edge, u, e.other, e.label, /*backward=*/false});
      if (prev.includes_backward_) {
        lg.vertices_.push_back(
            Vertex{e.edge, e.other, u, e.label, /*backward=*/true});
      }
    }
  }
  lg.RebuildBuckets(n);
  return lg;
}

void LineGraph::RebuildBuckets(size_t n) {
  LineGraph& lg = *this;
  // Bucket vertices by tail and by head (counting sort).
  lg.tail_offsets_.assign(n + 1, 0);
  lg.head_offsets_.assign(n + 1, 0);
  for (const Vertex& v : lg.vertices_) {
    ++lg.tail_offsets_[v.tail + 1];
    ++lg.head_offsets_[v.head + 1];
  }
  for (size_t i = 0; i < n; ++i) {
    lg.tail_offsets_[i + 1] += lg.tail_offsets_[i];
    lg.head_offsets_[i + 1] += lg.head_offsets_[i];
  }
  lg.tail_list_.resize(lg.vertices_.size());
  lg.head_list_.resize(lg.vertices_.size());
  std::vector<uint32_t> tail_cursor(lg.tail_offsets_.begin(),
                                    lg.tail_offsets_.end() - 1);
  std::vector<uint32_t> head_cursor(lg.head_offsets_.begin(),
                                    lg.head_offsets_.end() - 1);
  for (LineVertexId v = 0; v < lg.vertices_.size(); ++v) {
    lg.tail_list_[tail_cursor[lg.vertices_[v].tail]++] = v;
    lg.head_list_[head_cursor[lg.vertices_[v].head]++] = v;
  }

  // Implicit arc count: each vertex fans out to every vertex whose tail is
  // its head.
  lg.num_arcs_ = 0;
  for (const Vertex& v : lg.vertices_) {
    lg.num_arcs_ += lg.tail_offsets_[v.head + 1] - lg.tail_offsets_[v.head];
  }
}

}  // namespace sargus
