#ifndef SARGUS_COMMON_RNG_H_
#define SARGUS_COMMON_RNG_H_

/// \file rng.h
/// \brief Small deterministic PRNG (splitmix64 seeded xoshiro256**).
///
/// Everything stochastic in sargus — synthetic graphs, workload sampling,
/// GRAIL traversal orders — draws from this generator so a (spec, seed)
/// pair reproduces bit-identical structures across platforms. Not
/// cryptographic; never use for security decisions.

#include <cstdint>

namespace sargus {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit draw.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform draw in [0, bound); returns 0 when bound == 0.
  uint64_t NextBounded(uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform draw in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace sargus

#endif  // SARGUS_COMMON_RNG_H_
