#include "common/file_util.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace sargus {

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Internal(what + " '" + path + "': " + std::strerror(errno));
}

/// Directory part of `path` ("" when none).
std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncPath(const std::string& path, int flags) {
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) return ErrnoStatus("open for fsync", path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync", path);
  return OkStatus();
}

}  // namespace

// ---- MappedFile -------------------------------------------------------------

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: '" + path + "'");
    }
    return ErrnoStatus("open", path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status s = ErrnoStatus("fstat", path);
    ::close(fd);
    return s;
  }
  MappedFile out;
  out.size_ = static_cast<size_t>(st.st_size);
  if (out.size_ > 0) {
    void* p = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      const Status s = ErrnoStatus("mmap", path);
      ::close(fd);
      return s;
    }
    out.data_ = p;
  }
  ::close(fd);  // the mapping keeps the pages; the fd is not needed
  return out;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

// ---- Directory / atomic write ----------------------------------------------

Status CreateDirIfMissing(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return OkStatus();
  return ErrnoStatus("mkdir", dir);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status WriteFileAtomic(const std::string& path,
                       std::span<const uint8_t> bytes) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);

  const uint8_t* p = bytes.data();
  size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = ErrnoStatus("write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return s;
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status s = ErrnoStatus("fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::close(fd) != 0) {
    const Status s = ErrnoStatus("close", tmp);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status s = ErrnoStatus("rename", tmp);
    ::unlink(tmp.c_str());
    return s;
  }
  // The rename is only durable once the directory entry is.
  return FsyncPath(DirName(path), O_RDONLY | O_DIRECTORY);
}

// ---- AppendFile -------------------------------------------------------------

Result<AppendFile> AppendFile::Open(const std::string& path,
                                    int64_t resume_size) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status s = ErrnoStatus("fstat", path);
    ::close(fd);
    return s;
  }
  AppendFile out;
  out.fd_ = fd;
  out.size_ = static_cast<uint64_t>(st.st_size);
  if (resume_size >= 0 && static_cast<uint64_t>(resume_size) < out.size_) {
    const Status s = out.TruncateTo(static_cast<uint64_t>(resume_size));
    if (!s.ok()) return s;
  }
  if (::lseek(fd, static_cast<off_t>(out.size_), SEEK_SET) < 0) {
    return ErrnoStatus("lseek", path);
  }
  return out;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status AppendFile::Append(std::span<const uint8_t> bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("AppendFile: not open");
  const uint8_t* p = bytes.data();
  size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", "<append file>");
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  size_ += bytes.size();
  return OkStatus();
}

Status AppendFile::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("AppendFile: not open");
  if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", "<append file>");
  return OkStatus();
}

Status AppendFile::TruncateTo(uint64_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("AppendFile: not open");
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("ftruncate", "<append file>");
  }
  if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
    return ErrnoStatus("lseek", "<append file>");
  }
  size_ = size;
  return Sync();
}

}  // namespace sargus
