#ifndef SARGUS_COMMON_RESULT_H_
#define SARGUS_COMMON_RESULT_H_

/// \file result.h
/// \brief `Result<T>`: a value or a non-OK Status.
///
/// The sargus builder convention: anything that can fail returns
/// `Result<T>`. Callers either branch on `ok()` and read `status()`, or —
/// in contexts where failure is a programming error (benches, tests) —
/// call `ValueOrDie()`. `operator*` / `operator->` are unchecked-in-release
/// accessors for the hot path after an `ok()` check.

#include <cstdio>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>

#include "common/status.h"

namespace sargus {

template <typename T>
class [[nodiscard]] Result {
 public:
  static_assert(!std::is_same_v<T, Status>, "Result<Status> is meaningless");

  /// Implicit from a value (success).
  Result(T value) : has_value_(true) {  // NOLINT(google-explicit-constructor)
    new (&storage_) T(std::move(value));
  }

  /// Implicit from a non-OK status (failure). Passing an OK status is a
  /// bug: there would be no value to return.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : has_value_(false) {
    if (status.ok()) {
      std::fprintf(stderr,
                   "sargus: Result<T> constructed from OK status\n");
      std::abort();
    }
    new (&status_) Status(std::move(status));
  }

  Result(const Result& other) : has_value_(other.has_value_) {
    if (has_value_) {
      new (&storage_) T(other.value_ref());
    } else {
      new (&status_) Status(other.status_ref());
    }
  }

  Result(Result&& other) noexcept : has_value_(other.has_value_) {
    if (has_value_) {
      new (&storage_) T(std::move(other.value_ref()));
    } else {
      new (&status_) Status(std::move(other.status_ref()));
    }
  }

  Result& operator=(const Result& other) {
    if (this != &other) {
      Destroy();
      has_value_ = other.has_value_;
      if (has_value_) {
        new (&storage_) T(other.value_ref());
      } else {
        new (&status_) Status(other.status_ref());
      }
    }
    return *this;
  }

  Result& operator=(Result&& other) noexcept {
    if (this != &other) {
      Destroy();
      has_value_ = other.has_value_;
      if (has_value_) {
        new (&storage_) T(std::move(other.value_ref()));
      } else {
        new (&status_) Status(std::move(other.status_ref()));
      }
    }
    return *this;
  }

  ~Result() { Destroy(); }

  bool ok() const { return has_value_; }

  /// OK when holding a value, the error otherwise.
  Status status() const {
    return has_value_ ? OkStatus() : status_ref();
  }

  /// Aborts (with the error printed) when holding a status.
  const T& ValueOrDie() const& {
    DieIfError();
    return value_ref();
  }
  T& ValueOrDie() & {
    DieIfError();
    return value_ref();
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(value_ref());
  }

  /// Unchecked access; call only after verifying ok().
  const T& operator*() const& { return value_ref(); }
  T& operator*() & { return value_ref(); }
  T&& operator*() && { return std::move(value_ref()); }
  const T* operator->() const { return &value_ref(); }
  T* operator->() { return &value_ref(); }

 private:
  void Destroy() {
    if (has_value_) {
      value_ref().~T();
    } else {
      status_ref().~Status();
    }
  }

  void DieIfError() const {
    if (!has_value_) {
      std::fprintf(stderr, "sargus: ValueOrDie on error: %s\n",
                   status_ref().ToString().c_str());
      std::abort();
    }
  }

  T& value_ref() { return *std::launder(reinterpret_cast<T*>(&storage_)); }
  const T& value_ref() const {
    return *std::launder(reinterpret_cast<const T*>(&storage_));
  }
  Status& status_ref() {
    return *std::launder(reinterpret_cast<Status*>(&status_));
  }
  const Status& status_ref() const {
    return *std::launder(reinterpret_cast<const Status*>(&status_));
  }

  union {
    alignas(T) unsigned char storage_[sizeof(T)];
    alignas(Status) unsigned char status_[sizeof(Status)];
  };
  bool has_value_;
};

/// Propagates the error of a Result expression, else binds its value.
/// Usage: SARGUS_ASSIGN_OR_RETURN(auto x, MakeX());
#define SARGUS_ASSIGN_OR_RETURN(decl, expr)                    \
  SARGUS_ASSIGN_OR_RETURN_IMPL_(                               \
      SARGUS_RESULT_CONCAT_(_sargus_res_, __LINE__), decl, expr)
#define SARGUS_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  decl = std::move(*tmp)
#define SARGUS_RESULT_CONCAT_(a, b) SARGUS_RESULT_CONCAT_IMPL_(a, b)
#define SARGUS_RESULT_CONCAT_IMPL_(a, b) a##b

}  // namespace sargus

#endif  // SARGUS_COMMON_RESULT_H_
