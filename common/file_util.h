#ifndef SARGUS_COMMON_FILE_UTIL_H_
#define SARGUS_COMMON_FILE_UTIL_H_

/// \file file_util.h
/// \brief POSIX file helpers for the durability layer: RAII mmap,
/// atomic publication, and a synced append stream.
///
/// Everything here reports failures as Status (never throws, never
/// crashes on I/O errors) and owns its descriptors RAII-style, so a
/// failed load or a destroyed writer can never leak an fd or a mapping.
///
/// Atomicity model (the snapshot bundle's publication protocol):
/// `WriteFileAtomic` writes to `<path>.tmp.<pid>` in the same directory,
/// fsyncs the file, rename(2)s it over `path`, then fsyncs the directory
/// — so a reader either sees the complete old file or the complete new
/// one, never a torn write, even across power loss.

#include <cstdint>
#include <span>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace sargus {

/// A read-only memory-mapped file. Move-only; unmaps and closes on
/// destruction. An empty file maps to an empty span (no mapping held).
class MappedFile {
 public:
  static Result<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::span<const uint8_t> bytes() const {
    return {static_cast<const uint8_t*>(data_), size_};
  }
  size_t size() const { return size_; }

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
};

/// Creates `dir` (one level) if it does not exist yet.
Status CreateDirIfMissing(const std::string& dir);

/// True when `path` names an existing file.
bool FileExists(const std::string& path);

/// Atomically replaces `path` with `bytes`: temp file + fsync + rename +
/// directory fsync. See the file comment for the crash guarantee.
Status WriteFileAtomic(const std::string& path,
                       std::span<const uint8_t> bytes);

/// An append-only file stream (the WAL's backing). Open creates the file
/// when absent and positions at `resume_size` when given (truncating a
/// torn tail), else at the current end.
class AppendFile {
 public:
  static Result<AppendFile> Open(const std::string& path,
                                 int64_t resume_size = -1);

  AppendFile() = default;
  AppendFile(AppendFile&& other) noexcept { *this = std::move(other); }
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  ~AppendFile();

  Status Append(std::span<const uint8_t> bytes);
  /// fdatasync the file contents.
  Status Sync();
  /// Shrinks the file to `size` bytes (0 = reset) and syncs.
  Status TruncateTo(uint64_t size);

  /// Bytes written so far (file size).
  uint64_t size() const { return size_; }
  bool is_open() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  uint64_t size_ = 0;
};

}  // namespace sargus

#endif  // SARGUS_COMMON_FILE_UTIL_H_
