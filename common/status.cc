#include "common/status.h"

namespace sargus {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sargus
