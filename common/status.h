#ifndef SARGUS_COMMON_STATUS_H_
#define SARGUS_COMMON_STATUS_H_

/// \file status.h
/// \brief Error signalling for every fallible sargus API.
///
/// Conventions (see docs/ARCHITECTURE.md):
///  * Builders and parsers return `Result<T>` (status.h + result.h); cheap
///    infallible accessors return values directly.
///  * `Status` carries a canonical code plus a human-readable message.
///  * Codes follow the usual canonical meanings:
///      - kInvalidArgument:   malformed input (bad expression syntax, bad ids)
///      - kNotFound:          a named entity does not exist (label, resource)
///      - kFailedPrecondition: API called before its prerequisite
///                             (e.g. backward step without backward line graph)
///      - kResourceExhausted: a configured cap was hit (join tuple budget)
///      - kInternal:          invariant violation — always a sargus bug
///      - kUnavailable:       a dependency (shard, transport) cannot be
///                            reached right now; retrying later may succeed
///      - kDeadlineExceeded:  the operation ran out of its time budget;
///                            the work may or may not have happened

#include <string>
#include <string_view>
#include <utility>

namespace sargus {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kResourceExhausted = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kUnavailable = 8,
  kDeadlineExceeded = 9,
  kDataLoss = 10,
};

/// Returns the canonical name ("INVALID_ARGUMENT", ...) for a code.
std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  /// Default status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// Bytes on disk (or the wire) failed a checksum or framing check.
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  StatusCode code_;
  std::string message_;
};

/// Shorthand used by call sites that only need an OK status object.
inline Status OkStatus() { return Status(); }

/// Propagates a non-OK status from an expression to the caller.
#define SARGUS_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::sargus::Status _sargus_st = (expr);         \
    if (!_sargus_st.ok()) return _sargus_st;      \
  } while (0)

}  // namespace sargus

#endif  // SARGUS_COMMON_STATUS_H_
