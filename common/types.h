#ifndef SARGUS_COMMON_TYPES_H_
#define SARGUS_COMMON_TYPES_H_

/// \file types.h
/// \brief Fundamental identifier types shared by every sargus layer.
///
/// All identifiers are dense zero-based indices into per-container arrays;
/// they are plain integers (not strong types) so they index vectors directly
/// and pack tightly into index structures.

#include <cstdint>
#include <limits>

namespace sargus {

/// A vertex of the social graph (a user).
using NodeId = uint32_t;

/// A slot in SocialGraph's edge table. Slots survive RemoveEdge as
/// tombstones so EdgeIds stay stable across mutations.
using EdgeId = uint32_t;

/// An interned relationship label ("friend", "colleague", ...).
using LabelId = uint16_t;

/// An interned node-attribute name ("age", ...).
using AttrId = uint16_t;

/// A vertex of the line graph: one (edge, orientation) pair.
using LineVertexId = uint32_t;

/// A protected resource registered in a PolicyStore.
using ResourceId = uint32_t;

/// An access rule attached to a resource.
using RuleId = uint32_t;

/// Sentinel for "no such label" (LabelDictionary::Lookup miss).
inline constexpr LabelId kInvalidLabel = std::numeric_limits<LabelId>::max();

/// Sentinel for "no such attribute".
inline constexpr AttrId kInvalidAttr = std::numeric_limits<AttrId>::max();

/// Sentinel node (used for unset parents in traversals).
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel line vertex.
inline constexpr LineVertexId kInvalidLineVertex =
    std::numeric_limits<LineVertexId>::max();

}  // namespace sargus

#endif  // SARGUS_COMMON_TYPES_H_
