#ifndef SARGUS_COMMON_EPOCH_SET_H_
#define SARGUS_COMMON_EPOCH_SET_H_

/// \file epoch_set.h
/// \brief EpochStampSet: an O(1)-reset membership set over a dense index
/// range, the building block of the query scratch pool.
///
/// A plain `std::vector<uint8_t> visited(n)` costs O(n) to allocate and
/// zero on every query — which puts an O(|V|·states) floor under even the
/// shortest-path grant. An EpochStampSet instead keeps one `uint32_t`
/// stamp per slot and a current epoch counter: a slot is a member iff its
/// stamp equals the current epoch, so "clear everything" is a single
/// counter bump. The backing array is grown lazily and never shrinks; in
/// steady state (same graph, repeated queries) a query touches only the
/// slots it actually visits.
///
/// Epoch wraparound: after 2^32 - 1 epochs the counter would collide with
/// stamps written in earlier eras, so BeginEpoch detects the wrap, zeroes
/// the backing array once, and restarts at epoch 1 (stamp 0 therefore
/// always means "never set in this era").
///
/// Not thread-safe: each thread (or caller) owns its own sets via
/// EvalContext (see query/eval_context.h).

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace sargus {

class EpochStampSet {
 public:
  /// Starts a new (empty) membership epoch covering slots [0, size).
  /// Grows the backing array if needed; never shrinks it. Must be called
  /// before any Insert/Contains of a query.
  void BeginEpoch(size_t size) {
    if (stamps_.size() < size) stamps_.resize(size, 0);
    if (epoch_ == std::numeric_limits<uint32_t>::max()) {
      // Wraparound: one O(n) wipe every 2^32 - 1 queries.
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    } else {
      ++epoch_;
    }
  }

  /// Marks `i` as a member; returns true when it was not yet a member
  /// this epoch. `i` must be within the size passed to BeginEpoch.
  bool Insert(size_t i) {
    if (stamps_[i] == epoch_) return false;
    stamps_[i] = epoch_;
    return true;
  }

  bool Contains(size_t i) const { return stamps_[i] == epoch_; }

  /// Slots currently backed (the high-water mark across epochs).
  size_t capacity() const { return stamps_.size(); }

  uint32_t epoch() const { return epoch_; }

  /// Test hook: jump the epoch counter (e.g. to UINT32_MAX - 2) so a test
  /// can force wraparound in a handful of queries. Stale stamps equal to
  /// the new counter could read as members, so callers must follow up
  /// with BeginEpoch before the next membership operation — exactly what
  /// every evaluator does.
  void SetEpochForTesting(uint32_t epoch) { epoch_ = epoch; }

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 0;
};

}  // namespace sargus

#endif  // SARGUS_COMMON_EPOCH_SET_H_
