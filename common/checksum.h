#ifndef SARGUS_COMMON_CHECKSUM_H_
#define SARGUS_COMMON_CHECKSUM_H_

/// \file checksum.h
/// \brief FNV-1a-64: the one checksum every sargus byte format uses.
///
/// The shard wire protocol (shard/wire.h, frame trailer), the snapshot
/// bundle format (storage/snapshot_format.h, header + per-section
/// checksums) and the mutation WAL (storage/wal.h, per-record trailer)
/// all seal their bytes with this hash. One implementation, cross-pinned
/// by a golden-value test (tests/storage_test.cc), so a frame a shard
/// emits and a section a loader verifies can never disagree about what
/// "checksummed" means. Two forms share the constants: the serial
/// Fnv1a64 for small payloads, and the eight-lane StripedFnv1a64 for
/// bulk bundle sections (see below).
///
/// FNV-1a is not cryptographic; it is a corruption detector. Every
/// single-bit flip changes the digest (the wire fuzz suite and the
/// storage corruption matrix both pin this empirically over 10k seeded
/// mutations).

#include <cstdint>
#include <span>

namespace sargus {

inline constexpr uint64_t kFnv1a64OffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnv1a64Prime = 0x100000001b3ULL;

/// Resumable form: feed the previous digest back in as `state` to hash
/// discontiguous regions as one logical stream.
inline uint64_t Fnv1a64Resume(std::span<const uint8_t> bytes,
                              uint64_t state) {
  uint64_t h = state;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= kFnv1a64Prime;
  }
  return h;
}

/// Digest of one contiguous byte range.
inline uint64_t Fnv1a64(std::span<const uint8_t> bytes) {
  return Fnv1a64Resume(bytes, kFnv1a64OffsetBasis);
}

inline uint64_t Fnv1a64(const void* data, size_t size) {
  return Fnv1a64({static_cast<const uint8_t*>(data), size});
}

/// Eight-lane striped FNV-1a-64 for bulk data (snapshot bundle
/// sections). Byte i feeds lane i % 8; each lane is an independent
/// FNV-1a-64 stream, and the digest is the plain FNV-1a-64 of the eight
/// lane digests serialized little-endian. Semantically it is still
/// "FNV-1a-64 over every byte" — same detection strength per flip — but
/// the eight multiply chains are independent, so the loop pipelines at
/// ~8x the throughput of the serial form (which retires one dependent
/// 64-bit multiply per byte). Small payloads (wire frames, WAL records)
/// keep the serial form; bundle sections are tens of MB and their
/// verification sits on the cold-start path.
inline uint64_t StripedFnv1a64(std::span<const uint8_t> bytes) {
  uint64_t lane[8] = {kFnv1a64OffsetBasis, kFnv1a64OffsetBasis,
                      kFnv1a64OffsetBasis, kFnv1a64OffsetBasis,
                      kFnv1a64OffsetBasis, kFnv1a64OffsetBasis,
                      kFnv1a64OffsetBasis, kFnv1a64OffsetBasis};
  const uint8_t* p = bytes.data();
  const size_t n = bytes.size();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    lane[0] = (lane[0] ^ p[i + 0]) * kFnv1a64Prime;
    lane[1] = (lane[1] ^ p[i + 1]) * kFnv1a64Prime;
    lane[2] = (lane[2] ^ p[i + 2]) * kFnv1a64Prime;
    lane[3] = (lane[3] ^ p[i + 3]) * kFnv1a64Prime;
    lane[4] = (lane[4] ^ p[i + 4]) * kFnv1a64Prime;
    lane[5] = (lane[5] ^ p[i + 5]) * kFnv1a64Prime;
    lane[6] = (lane[6] ^ p[i + 6]) * kFnv1a64Prime;
    lane[7] = (lane[7] ^ p[i + 7]) * kFnv1a64Prime;
  }
  for (size_t j = 0; i < n; ++i, ++j) {
    lane[j] = (lane[j] ^ p[i]) * kFnv1a64Prime;
  }
  uint8_t digest[64];
  for (size_t j = 0; j < 8; ++j) {
    for (size_t b = 0; b < 8; ++b) {
      digest[j * 8 + b] = static_cast<uint8_t>(lane[j] >> (8 * b));
    }
  }
  return Fnv1a64(digest, sizeof(digest));
}

inline uint64_t StripedFnv1a64(const void* data, size_t size) {
  return StripedFnv1a64({static_cast<const uint8_t*>(data), size});
}

}  // namespace sargus

#endif  // SARGUS_COMMON_CHECKSUM_H_
