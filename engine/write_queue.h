#ifndef SARGUS_ENGINE_WRITE_QUEUE_H_
#define SARGUS_ENGINE_WRITE_QUEUE_H_

/// \file write_queue.h
/// \brief MutationQueue: the engine's MPSC write front end — any thread
/// submits mutations, one dedicated writer thread group-commits them.
///
/// Before this subsystem the engine's mutation surface carried a
/// single-writer contract: N producers had to serialize AddEdge /
/// RemoveEdge / AddNode / RefreshPolicies behind an external mutex, and
/// every mutation paid its own WAL fsync and its own O(overlay) view
/// republication. The queue turns that into a batching problem:
///
///   * **Submission** — SubmitX() from any thread copies the operation
///     into a bounded MPSC queue and returns a WriteTicket immediately.
///     While the queue is full, Submit blocks (backpressure) until the
///     writer drains room. Submission order is the commit order: the
///     queue is FIFO, so one producer's ops apply in the order it
///     submitted them.
///   * **Group commit** — a dedicated writer thread drains the queue in
///     bounded batches (MutationQueueOptions::max_batch), stages every
///     op of a batch into the engine's DeltaOverlay, appends all WAL
///     records with ONE Wal::AppendBatch (one fsync under
///     WalSyncPolicy::kGroupCommit), and publishes ONE read view for
///     the whole batch — amortizing both the fsync and the O(overlay)
///     republication that previously ran per mutation.
///   * **Ticketed completion** — each WriteTicket resolves to a
///     WriteOutcome: the per-op Status (errors are isolated — one bad
///     op fails only its own ticket, the rest of the batch commits) and
///     the (generation, overlay_version) stamp the mutation landed in,
///     exactly the stamp its WAL record carries and the stamp
///     AccessDecision reports. Wait() blocks until the batch containing
///     the op has been staged, WAL-committed, and published, so a
///     returned OK means the same thing the old synchronous call meant.
///
/// Shutdown: tickets are never abandoned. Ops still queued when the
/// queue shuts down complete with kUnavailable without being applied,
/// and Submit after shutdown returns a ticket born kUnavailable.
///
/// The engine owns one MutationQueue and (by default —
/// EngineOptions::async_mutations) routes its legacy synchronous
/// mutation calls through it as Submit + Wait shims, which is what
/// retires the external single-writer contract: mutations are now safe
/// to call from any number of threads concurrently. The writer thread
/// is started lazily on the first submission, so read-only engines
/// never pay for it.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/types.h"

namespace sargus {

class AccessControlEngine;

/// One queued writer operation. AddEdge/RemoveEdge carry either a
/// resolved LabelId or (by_name) a label name — names are resolved on
/// the writer thread under the same rules as the synchronous calls
/// (AddEdge interns unknown names, RemoveEdge fails kNotFound).
struct WriteOp {
  enum class Kind : uint8_t {
    kAddEdge,
    kRemoveEdge,
    kAddNode,
    kRefreshPolicies,
  };
  Kind kind = Kind::kAddNode;
  NodeId src = 0;
  NodeId dst = 0;
  LabelId label = kInvalidLabel;
  /// Resolve `label_name` instead of using `label`.
  bool by_name = false;
  std::string label_name;
};

/// What a WriteTicket resolves to.
struct WriteOutcome {
  /// The per-op status — exactly what the synchronous call would have
  /// returned. kUnavailable when the queue shut down before the op was
  /// applied (the op was NOT applied).
  Status status = OkStatus();
  /// The (snapshot_generation, overlay_version) stamp the mutation
  /// landed in: the same pair its WAL record carries and the same pair
  /// decisions made against the publishing view report. For failed ops,
  /// the stamp of the state that rejected them.
  uint64_t generation = 0;
  uint64_t overlay_version = 0;
  /// SubmitAddNode only: the id assigned to the new node.
  NodeId node = 0;
};

/// Future-backed handle to one submitted mutation (the write-side
/// sibling of shard/transport.h's TransportTicket). Copyable; Wait() may
/// be called from any thread and any number of times — the outcome is
/// latched on first completion.
class WriteTicket {
 public:
  WriteTicket() = default;

  bool valid() const { return state_ != nullptr; }

  /// Blocks until the writer thread commits (or refuses) the mutation,
  /// then returns the outcome. An OK outcome means the op is staged,
  /// WAL-durable (per the engine's sync policy), and visible on the
  /// currently published view.
  WriteOutcome Wait() const;

  /// Non-blocking: true when the outcome is already available.
  bool done() const;

 private:
  friend class MutationQueue;
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    WriteOutcome outcome;
  };
  std::shared_ptr<State> state_;
};

struct MutationQueueOptions {
  /// Ops the queue holds before Submit blocks (backpressure bound).
  size_t capacity = 4096;
  /// Max ops the writer drains into one group-commit batch.
  size_t max_batch = 512;
};

/// Relaxed counters for tests and the bench (read with stats()).
struct WriteQueueStats {
  /// Ops accepted into the queue.
  uint64_t submitted = 0;
  /// Ops handed to the engine (their tickets carry the engine status).
  uint64_t applied = 0;
  /// Ops refused at submit or drained unapplied at shutdown
  /// (tickets completed kUnavailable).
  uint64_t rejected = 0;
  /// Group-commit batches executed.
  uint64_t batches = 0;
  /// Largest batch drained so far.
  uint64_t max_batch_seen = 0;
};

/// The MPSC queue + writer thread. Owned by AccessControlEngine; the
/// engine's SubmitX() methods are thin wrappers over Submit(). All
/// methods are thread-safe.
class MutationQueue {
 public:
  /// `engine` must outlive the queue. The writer thread starts lazily on
  /// the first Submit.
  MutationQueue(AccessControlEngine* engine, MutationQueueOptions options);
  ~MutationQueue();

  MutationQueue(const MutationQueue&) = delete;
  MutationQueue& operator=(const MutationQueue&) = delete;

  /// Enqueues `op`, blocking while the queue is at capacity. Returns a
  /// ticket the caller may Wait() on (or drop — the op still applies).
  WriteTicket Submit(WriteOp op);

  /// Blocks until every op submitted before the call has been applied
  /// (or the queue shut down). No-op on an idle queue.
  void Flush();

  /// Stops the writer thread. Ops still queued complete kUnavailable
  /// without being applied; later Submits return kUnavailable tickets.
  /// Idempotent. Called by the engine destructor before it tears down
  /// the compaction pipeline.
  void Shutdown();

  WriteQueueStats stats() const;

  /// Test hook: while paused the writer thread drains nothing, so a
  /// test can pile submissions into one deterministic batch (or fill
  /// the queue to probe backpressure). Shutdown overrides pause.
  void PauseForTesting(bool paused);

 private:
  struct Pending {
    WriteOp op;
    std::shared_ptr<WriteTicket::State> state;
  };

  void WriterLoop();
  static void Complete(const std::shared_ptr<WriteTicket::State>& state,
                       WriteOutcome outcome);

  AccessControlEngine* engine_;
  MutationQueueOptions options_;

  mutable std::mutex mu_;
  std::condition_variable nonempty_;
  std::condition_variable nonfull_;
  std::condition_variable drained_;
  std::deque<Pending> queue_;
  bool applying_ = false;  // writer is mid-batch (for Flush)
  bool paused_ = false;
  bool shutdown_ = false;
  std::thread writer_;  // started lazily; guarded by mu_

  WriteQueueStats stats_;  // guarded by mu_
};

}  // namespace sargus

#endif  // SARGUS_ENGINE_WRITE_QUEUE_H_
