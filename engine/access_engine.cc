#include "engine/access_engine.h"

#include <utility>

namespace sargus {

namespace {

uint64_t NextEngineId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread acquire cache: one entry is enough, because a serving
/// thread hammers one engine. `engine_id` (never recycled) guards
/// against a new engine reusing a destroyed engine's address. The view
/// is held weakly so an idle thread's cache cannot keep an obsolete
/// view (and its whole frozen index stack) alive — on a sequence hit
/// the engine's own strong reference guarantees lock() succeeds.
struct TlsViewCache {
  uint64_t engine_id = 0;
  uint64_t seq = 0;
  std::weak_ptr<const AccessReadView> view;
};
thread_local TlsViewCache tls_view_cache;

}  // namespace

AccessControlEngine::AccessControlEngine(const SocialGraph& graph,
                                         const PolicyStore& store,
                                         EngineOptions options)
    : graph_(&graph),
      store_(&store),
      options_(options),
      engine_id_(NextEngineId()) {}

AccessControlEngine::AccessControlEngine(SocialGraph& graph,
                                         const PolicyStore& store,
                                         EngineOptions options)
    : graph_(&graph),
      mutable_graph_(&graph),
      store_(&store),
      options_(options),
      engine_id_(NextEngineId()) {}

AccessControlEngine::~AccessControlEngine() = default;

void AccessControlEngine::PublishView() {
  auto view = AccessReadView::Create(*graph_, idx_, policy_, overlay_,
                                     options_, snapshot_generation_);
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    view_ = std::move(view);
  }
  // The bump is the readers' freshness signal: a thread that observes
  // the new sequence re-reads the slot (whose mutex write above
  // happened before this release store).
  publish_seq_.fetch_add(1, std::memory_order_release);
}

std::shared_ptr<const AccessReadView> AccessControlEngine::AcquireReadView()
    const {
  const uint64_t seq = publish_seq_.load(std::memory_order_acquire);
  if (seq == 0) return nullptr;  // nothing published yet
  TlsViewCache& cache = tls_view_cache;
  if (cache.engine_id == engine_id_ && cache.seq == seq) {
    // Steady state: no lock (weak_ptr::lock is a refcount CAS). A null
    // here means a racing republication just dropped the cached view;
    // fall through to the slot and re-cache.
    if (auto cached = cache.view.lock()) return cached;
  }
  std::shared_ptr<const AccessReadView> view;
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    view = view_;
  }
  // If a publication raced between the seq load and the slot read, the
  // cache stamps an older seq onto a newer view: the next acquire just
  // refreshes again. Freshness is monotonic either way (the slot is
  // written before the sequence bump).
  cache.engine_id = engine_id_;
  cache.seq = seq;
  cache.view = view;
  return view;
}

bool AccessControlEngine::RefreshPolicySnapshotIfStale() {
  if (policy_ != nullptr &&
      policy_->source_num_resources == store_->NumResources() &&
      policy_->source_num_rules == store_->NumRules()) {
    return false;
  }
  policy_ = PolicySnapshot::Build(*store_, *graph_, *idx_, options_);
  return true;
}

Status AccessControlEngine::RebuildIndexes() {
  built_ = false;
  // The overlay is relative to the snapshot being replaced; staged
  // mutations that should survive must go through Compact() instead.
  overlay_.Clear();
  auto idx = SnapshotIndexes::Build(*graph_, options_);
  if (!idx.ok()) return idx.status();
  idx_ = std::move(*idx);
  // Unconditional policy rebuild: fresh dictionary entries (labels
  // interned since the last build) may fix previously failed binds, and
  // auto picks depend on the new bundle.
  policy_ = PolicySnapshot::Build(*store_, *graph_, *idx_, options_);
  built_ = true;
  ++snapshot_generation_;
  PublishView();
  return OkStatus();
}

Status AccessControlEngine::RefreshPolicies() {
  if (!built_) {
    return Status::FailedPrecondition(
        "RefreshPolicies: call RebuildIndexes() first");
  }
  if (RefreshPolicySnapshotIfStale()) PublishView();
  return OkStatus();
}

// ---- Dynamic mutations ------------------------------------------------------

Status AccessControlEngine::CheckMutable() const {
  if (mutable_graph_ == nullptr) {
    return Status::FailedPrecondition(
        "mutation requires the mutable-graph constructor (compaction must "
        "write the SocialGraph)");
  }
  if (!built_) {
    return Status::FailedPrecondition(
        "mutation staged against no snapshot: call RebuildIndexes() first");
  }
  return OkStatus();
}

// Walker visited arrays are sized to the snapshot, so staged endpoints
// must exist in it (nodes added after the rebuild need a rebuild).
Status AccessControlEngine::CheckEndpoints(NodeId src, NodeId dst) const {
  if (src >= idx_->csr.NumNodes() || dst >= idx_->csr.NumNodes()) {
    return Status::InvalidArgument(
        "edge mutation: endpoint outside the current snapshot");
  }
  return OkStatus();
}

Status AccessControlEngine::AddEdge(NodeId src, NodeId dst,
                                    const std::string& label) {
  SARGUS_RETURN_IF_ERROR(CheckMutable());
  // Validate fully *before* interning: a failed AddEdge must leave the
  // graph (including its label dictionary) untouched.
  SARGUS_RETURN_IF_ERROR(CheckEndpoints(src, dst));
  LabelId id = graph_->labels().Lookup(label);
  if (id == kInvalidLabel) {
    id = mutable_graph_->labels().Intern(label);
    if (id == kInvalidLabel) {
      return Status::ResourceExhausted("AddEdge: label dictionary full");
    }
  }
  SARGUS_RETURN_IF_ERROR(StageAddEdge(src, dst, id));
  return FinishMutation();
}

Status AccessControlEngine::AddEdge(NodeId src, NodeId dst, LabelId label) {
  SARGUS_RETURN_IF_ERROR(CheckMutable());
  if (label >= graph_->labels().size()) {
    return Status::InvalidArgument("AddEdge: unknown label id");
  }
  SARGUS_RETURN_IF_ERROR(StageAddEdge(src, dst, label));
  return FinishMutation();
}

Status AccessControlEngine::RemoveEdge(NodeId src, NodeId dst,
                                       const std::string& label) {
  SARGUS_RETURN_IF_ERROR(CheckMutable());
  const LabelId id = graph_->labels().Lookup(label);
  if (id == kInvalidLabel) {
    return Status::NotFound("RemoveEdge: unknown label '" + label + "'");
  }
  SARGUS_RETURN_IF_ERROR(StageRemoveEdge(src, dst, id));
  return FinishMutation();
}

Status AccessControlEngine::RemoveEdge(NodeId src, NodeId dst, LabelId label) {
  SARGUS_RETURN_IF_ERROR(CheckMutable());
  if (label >= graph_->labels().size()) {
    return Status::NotFound("RemoveEdge: unknown label id");
  }
  SARGUS_RETURN_IF_ERROR(StageRemoveEdge(src, dst, label));
  return FinishMutation();
}

Status AccessControlEngine::StageAddEdge(NodeId src, NodeId dst,
                                         LabelId label) {
  SARGUS_RETURN_IF_ERROR(CheckEndpoints(src, dst));
  const bool in_base = graph_->FindEdge(src, dst, label).has_value();
  if (in_base) {
    // Present in the snapshot: visible unless masked by a staged remove.
    (void)overlay_.UnstageRemove(src, dst, label);
    return OkStatus();
  }
  (void)overlay_.StageAdd(src, dst, label);  // idempotent
  return OkStatus();
}

Status AccessControlEngine::StageRemoveEdge(NodeId src, NodeId dst,
                                            LabelId label) {
  if (overlay_.UnstageAdd(src, dst, label)) return OkStatus();
  const bool in_base = graph_->FindEdge(src, dst, label).has_value();
  if (!in_base || overlay_.IsStagedRemove(src, dst, label)) {
    return Status::NotFound("RemoveEdge: no such logical edge");
  }
  (void)overlay_.StageRemove(src, dst, label);
  return OkStatus();
}

Status AccessControlEngine::FinishMutation() {
  if (options_.compact_threshold != 0 &&
      overlay_.size() >= options_.compact_threshold) {
    return Compact();  // publishes via RebuildIndexes
  }
  // Pick up any rules/resources registered since the last publish, then
  // publish a view carrying the new frozen overlay.
  (void)RefreshPolicySnapshotIfStale();
  PublishView();
  return OkStatus();
}

Status AccessControlEngine::Compact() {
  SARGUS_RETURN_IF_ERROR(CheckMutable());
  if (overlay_.empty()) return OkStatus();
  // Fold the overlay into the system of record. Removals first so an
  // (unusual) same-triple remove+add sequence cannot resurrect the
  // tombstoned slot's id ordering assumptions. In-flight readers are
  // unaffected: views read the graph's node count and attribute columns
  // only, never its edge storage.
  Status apply = OkStatus();
  overlay_.ForEachRemoved([&](const DeltaOverlay::EdgeTriple& t) {
    auto id = mutable_graph_->FindEdge(t.src, t.dst, t.label);
    if (!id.has_value()) return;  // base edge vanished externally
    Status s = mutable_graph_->RemoveEdge(*id);
    if (apply.ok() && !s.ok()) apply = s;
  });
  overlay_.ForEachAdded([&](const DeltaOverlay::EdgeTriple& t) {
    auto r = mutable_graph_->AddEdge(t.src, t.dst, t.label);
    if (apply.ok() && !r.ok()) apply = r.status();
  });
  if (!apply.ok()) return apply;
  // RebuildIndexes clears the (now folded-in) overlay, re-snapshots, and
  // publishes the compacted view.
  return RebuildIndexes();
}

// ---- Read path --------------------------------------------------------------

void AccessControlEngine::PushAuditLocked(const AccessDecision& decision)
    const {
  if (audit_.size() < options_.audit_capacity) {
    audit_.push_back(decision);
  } else {
    audit_[audit_next_] = decision;
    audit_wrapped_ = true;
  }
  audit_next_ = (audit_next_ + 1) % options_.audit_capacity;
}

void AccessControlEngine::RecordAudit(const AccessDecision& decision) const {
  if (options_.audit_capacity == 0) return;
  std::lock_guard<std::mutex> lock(audit_mu_);
  PushAuditLocked(decision);
}

Result<AccessDecision> AccessControlEngine::CheckAccess(
    const AccessRequest& request) const {
  auto view = AcquireReadView();
  if (view == nullptr) {
    return Status::FailedPrecondition(
        "CheckAccess: call RebuildIndexes() first");
  }
  auto decision = view->CheckAccess(request);
  if (decision.ok()) RecordAudit(*decision);
  return decision;
}

Result<AccessDecision> AccessControlEngine::CheckAccess(
    NodeId requester, ResourceId resource) const {
  AccessRequest request;
  request.requester = requester;
  request.resource = resource;
  return CheckAccess(request);
}

std::vector<Result<AccessDecision>> AccessControlEngine::CheckAccessBatch(
    std::span<const AccessRequest> requests) const {
  auto view = AcquireReadView();
  if (view == nullptr) {
    std::vector<Result<AccessDecision>> out;
    out.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      out.push_back(Status::FailedPrecondition(
          "CheckAccess: call RebuildIndexes() first"));
    }
    return out;
  }
  auto out = view->CheckAccessBatch(requests);
  if (options_.audit_capacity > 0) {
    // One ring acquisition for the whole batch, not one per decision.
    std::lock_guard<std::mutex> lock(audit_mu_);
    for (const auto& decision : out) {
      if (decision.ok()) PushAuditLocked(*decision);
    }
  }
  return out;
}

std::vector<AccessDecision> AccessControlEngine::AuditTrail() const {
  std::lock_guard<std::mutex> lock(audit_mu_);
  std::vector<AccessDecision> out;
  if (!audit_wrapped_) {
    out = audit_;
  } else {
    out.reserve(audit_.size());
    for (size_t i = 0; i < audit_.size(); ++i) {
      out.push_back(audit_[(audit_next_ + i) % audit_.size()]);
    }
  }
  return out;
}

}  // namespace sargus
