#include "engine/access_engine.h"

#include <algorithm>
#include <utility>

#include "common/file_util.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_loader.h"

namespace sargus {

namespace {

uint64_t NextEngineId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string BundlePath(const std::string& dir) {
  return dir + "/" + storage::kSnapshotFileName;
}
std::string WalPath(const std::string& dir) {
  return dir + "/" + storage::kWalFileName;
}

/// Per-thread acquire cache: one entry is enough, because a serving
/// thread hammers one engine. `engine_id` (never recycled) guards
/// against a new engine reusing a destroyed engine's address. The view
/// is held weakly so an idle thread's cache cannot keep an obsolete
/// view (and its whole frozen index stack) alive — on a sequence hit
/// the engine's own strong reference guarantees lock() succeeds.
struct TlsViewCache {
  uint64_t engine_id = 0;
  uint64_t seq = 0;
  std::weak_ptr<const AccessReadView> view;
};
thread_local TlsViewCache tls_view_cache;

}  // namespace

namespace {
MutationQueueOptions QueueOptionsFrom(const EngineOptions& options) {
  MutationQueueOptions qopts;
  qopts.capacity = options.write_queue_capacity;
  qopts.max_batch = options.write_queue_max_batch;
  return qopts;
}
}  // namespace

AccessControlEngine::AccessControlEngine(const SocialGraph& graph,
                                         const PolicyStore& store,
                                         EngineOptions options)
    : graph_(&graph),
      store_(&store),
      options_(options),
      engine_id_(NextEngineId()),
      write_queue_(
          std::make_unique<MutationQueue>(this, QueueOptionsFrom(options))) {}

AccessControlEngine::AccessControlEngine(SocialGraph& graph,
                                         const PolicyStore& store,
                                         EngineOptions options)
    : graph_(&graph),
      mutable_graph_(&graph),
      store_(&store),
      options_(options),
      engine_id_(NextEngineId()),
      write_queue_(
          std::make_unique<MutationQueue>(this, QueueOptionsFrom(options))) {}

AccessControlEngine::~AccessControlEngine() {
  // Queue first: a draining batch can kick a compaction, so the
  // compaction thread must still be alive while the writer thread winds
  // down. Queued-but-unapplied mutations complete kUnavailable.
  write_queue_->Shutdown();
  {
    std::lock_guard<std::mutex> lock(comp_mu_);
    comp_shutdown_ = true;
  }
  comp_cv_.notify_all();
  if (comp_thread_.joinable()) comp_thread_.join();
}

void AccessControlEngine::PublishView() {
  auto view = AccessReadView::Create(
      *graph_, idx_, policy_, overlay_, options_,
      snapshot_generation_.load(std::memory_order_relaxed));
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    view_ = std::move(view);
  }
  // The bump is the readers' freshness signal: a thread that observes
  // the new sequence re-reads the slot (whose mutex write above
  // happened before this release store).
  publish_seq_.fetch_add(1, std::memory_order_release);
}

std::shared_ptr<const AccessReadView> AccessControlEngine::AcquireReadView()
    const {
  const uint64_t seq = publish_seq_.load(std::memory_order_acquire);
  if (seq == 0) return nullptr;  // nothing published yet
  TlsViewCache& cache = tls_view_cache;
  if (cache.engine_id == engine_id_ && cache.seq == seq) {
    // Steady state: no lock (weak_ptr::lock is a refcount CAS). A null
    // here means a racing republication just dropped the cached view;
    // fall through to the slot and re-cache.
    if (auto cached = cache.view.lock()) return cached;
  }
  std::shared_ptr<const AccessReadView> view;
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    view = view_;
  }
  // If a publication raced between the seq load and the slot read, the
  // cache stamps an older seq onto a newer view: the next acquire just
  // refreshes again. Freshness is monotonic either way (the slot is
  // written before the sequence bump).
  cache.engine_id = engine_id_;
  cache.seq = seq;
  cache.view = view;
  return view;
}

bool AccessControlEngine::RefreshPolicySnapshotIfStale() {
  if (policy_ != nullptr &&
      policy_->source_num_resources == store_->NumResources() &&
      policy_->source_num_rules == store_->NumRules()) {
    return false;
  }
  policy_ = PolicySnapshot::Build(*store_, *graph_, *idx_, options_);
  return true;
}

void AccessControlEngine::RecomputeEffectiveThreshold() {
  if (options_.compact_threshold == EngineOptions::kCompactThresholdAuto) {
    effective_compact_threshold_ =
        std::max<size_t>(1024, idx_->csr.NumEdges() / 16);
  } else {
    effective_compact_threshold_ = options_.compact_threshold;
  }
}

Status AccessControlEngine::RebuildIndexesLocked() {
  built_ = false;
  // The overlay (and any replay journal) is relative to the snapshot
  // being replaced; staged mutations that should survive must go
  // through Compact() instead.
  overlay_.Clear();
  journal_.clear();
  auto idx = SnapshotIndexes::Build(*graph_, options_);
  if (!idx.ok()) return idx.status();
  idx_ = std::move(*idx);
  // Unconditional policy rebuild: fresh dictionary entries (labels
  // interned since the last build) may fix previously failed binds, and
  // auto picks depend on the new bundle.
  policy_ = PolicySnapshot::Build(*store_, *graph_, *idx_, options_);
  built_ = true;
  snapshot_generation_.fetch_add(1, std::memory_order_release);
  RecomputeEffectiveThreshold();
  PublishView();
  if (durable_ && durability_.snapshot_on_compaction) {
    // The WAL's records (and the old bundle) describe state this rebuild
    // just discarded; publish a bundle covering the fresh snapshot.
    SARGUS_RETURN_IF_ERROR(SaveSnapshotLocked());
  }
  return OkStatus();
}

Status AccessControlEngine::RebuildIndexes() {
  // Drain the pipeline first: a build in flight references the bundle
  // and overlay this rebuild replaces, and its completion would fold
  // staged state the contract says a rebuild discards.
  WaitForCompaction();
  std::lock_guard<std::mutex> lock(mutation_mu_);
  return RebuildIndexesLocked();
}

Status AccessControlEngine::RefreshPolicies() {
  if (options_.async_mutations) return SubmitRefreshPolicies().Wait().status;
  std::lock_guard<std::mutex> lock(mutation_mu_);
  if (!built_) {
    return Status::FailedPrecondition(
        "RefreshPolicies: call RebuildIndexes() first");
  }
  if (RefreshPolicySnapshotIfStale()) {
    PublishView();
    // Ordering marker only — policies themselves are not persisted; a
    // recovery replays this as a RefreshPolicies against the caller's
    // re-registered store.
    SARGUS_RETURN_IF_ERROR(WalLogLocked(storage::WalRecord::Kind::kPolicyRefresh,
                                        0, 0, kInvalidLabel));
  }
  return OkStatus();
}

// ---- Dynamic mutations ------------------------------------------------------

Status AccessControlEngine::CheckMutable() const {
  if (mutable_graph_ == nullptr) {
    return Status::FailedPrecondition(
        "mutation requires the mutable-graph constructor (compaction must "
        "write the SocialGraph)");
  }
  if (!built_) {
    return Status::FailedPrecondition(
        "mutation staged against no snapshot: call RebuildIndexes() first");
  }
  return OkStatus();
}

size_t AccessControlEngine::LogicalNumNodesLocked() const {
  return idx_->csr.NumNodes() + overlay_.num_staged_nodes();
}

// Walker visited arrays are sized to snapshot + staged nodes, so staged
// endpoints must lie inside that logical range (anything else needs
// AddNode first).
Status AccessControlEngine::CheckEndpoints(NodeId src, NodeId dst) const {
  const size_t n = LogicalNumNodesLocked();
  if (src >= n || dst >= n) {
    return Status::InvalidArgument(
        "edge mutation: endpoint outside the current snapshot");
  }
  return OkStatus();
}

Status AccessControlEngine::AddEdge(NodeId src, NodeId dst,
                                    const std::string& label) {
  if (options_.async_mutations) {
    return SubmitAddEdge(src, dst, label).Wait().status;
  }
  std::lock_guard<std::mutex> lock(mutation_mu_);
  SARGUS_RETURN_IF_ERROR(CheckMutable());
  // Validate fully *before* interning: a failed AddEdge must leave the
  // graph (including its label dictionary) untouched.
  SARGUS_RETURN_IF_ERROR(CheckEndpoints(src, dst));
  LabelId id = graph_->labels().Lookup(label);
  if (id == kInvalidLabel) {
    id = mutable_graph_->labels().Intern(label);
    if (id == kInvalidLabel) {
      return Status::ResourceExhausted("AddEdge: label dictionary full");
    }
  }
  SARGUS_RETURN_IF_ERROR(StageAddEdge(src, dst, id));
  SARGUS_RETURN_IF_ERROR(
      WalLogLocked(storage::WalRecord::Kind::kAddEdge, src, dst, id));
  return FinishMutation();
}

Status AccessControlEngine::AddEdge(NodeId src, NodeId dst, LabelId label) {
  if (options_.async_mutations) {
    return SubmitAddEdge(src, dst, label).Wait().status;
  }
  std::lock_guard<std::mutex> lock(mutation_mu_);
  SARGUS_RETURN_IF_ERROR(CheckMutable());
  if (label >= graph_->labels().size()) {
    return Status::InvalidArgument("AddEdge: unknown label id");
  }
  SARGUS_RETURN_IF_ERROR(StageAddEdge(src, dst, label));
  SARGUS_RETURN_IF_ERROR(
      WalLogLocked(storage::WalRecord::Kind::kAddEdge, src, dst, label));
  return FinishMutation();
}

Status AccessControlEngine::RemoveEdge(NodeId src, NodeId dst,
                                       const std::string& label) {
  if (options_.async_mutations) {
    return SubmitRemoveEdge(src, dst, label).Wait().status;
  }
  std::lock_guard<std::mutex> lock(mutation_mu_);
  SARGUS_RETURN_IF_ERROR(CheckMutable());
  const LabelId id = graph_->labels().Lookup(label);
  if (id == kInvalidLabel) {
    return Status::NotFound("RemoveEdge: unknown label '" + label + "'");
  }
  SARGUS_RETURN_IF_ERROR(StageRemoveEdge(src, dst, id));
  SARGUS_RETURN_IF_ERROR(
      WalLogLocked(storage::WalRecord::Kind::kRemoveEdge, src, dst, id));
  return FinishMutation();
}

Status AccessControlEngine::RemoveEdge(NodeId src, NodeId dst, LabelId label) {
  if (options_.async_mutations) {
    return SubmitRemoveEdge(src, dst, label).Wait().status;
  }
  std::lock_guard<std::mutex> lock(mutation_mu_);
  SARGUS_RETURN_IF_ERROR(CheckMutable());
  if (label >= graph_->labels().size()) {
    return Status::NotFound("RemoveEdge: unknown label id");
  }
  SARGUS_RETURN_IF_ERROR(StageRemoveEdge(src, dst, label));
  SARGUS_RETURN_IF_ERROR(
      WalLogLocked(storage::WalRecord::Kind::kRemoveEdge, src, dst, label));
  return FinishMutation();
}

Result<NodeId> AccessControlEngine::AddNode() {
  if (options_.async_mutations) {
    WriteOutcome out = SubmitAddNode().Wait();
    if (!out.status.ok()) return out.status;
    return out.node;
  }
  std::lock_guard<std::mutex> lock(mutation_mu_);
  SARGUS_RETURN_IF_ERROR(CheckMutable());
  const NodeId id = static_cast<NodeId>(LogicalNumNodesLocked());
  (void)overlay_.StageNode();
  if (building_) {
    journal_.push_back({JournalOp::Kind::kAddNode, 0, 0, kInvalidLabel});
  }
  SARGUS_RETURN_IF_ERROR(
      WalLogLocked(storage::WalRecord::Kind::kAddNode, 0, 0, kInvalidLabel));
  SARGUS_RETURN_IF_ERROR(FinishMutation());
  return id;
}

// ---- Queued mutation front end ----------------------------------------------

WriteTicket AccessControlEngine::SubmitAddEdge(NodeId src, NodeId dst,
                                               const std::string& label) {
  WriteOp op;
  op.kind = WriteOp::Kind::kAddEdge;
  op.src = src;
  op.dst = dst;
  op.by_name = true;
  op.label_name = label;
  return write_queue_->Submit(std::move(op));
}

WriteTicket AccessControlEngine::SubmitAddEdge(NodeId src, NodeId dst,
                                               LabelId label) {
  WriteOp op;
  op.kind = WriteOp::Kind::kAddEdge;
  op.src = src;
  op.dst = dst;
  op.label = label;
  return write_queue_->Submit(std::move(op));
}

WriteTicket AccessControlEngine::SubmitRemoveEdge(NodeId src, NodeId dst,
                                                  const std::string& label) {
  WriteOp op;
  op.kind = WriteOp::Kind::kRemoveEdge;
  op.src = src;
  op.dst = dst;
  op.by_name = true;
  op.label_name = label;
  return write_queue_->Submit(std::move(op));
}

WriteTicket AccessControlEngine::SubmitRemoveEdge(NodeId src, NodeId dst,
                                                  LabelId label) {
  WriteOp op;
  op.kind = WriteOp::Kind::kRemoveEdge;
  op.src = src;
  op.dst = dst;
  op.label = label;
  return write_queue_->Submit(std::move(op));
}

WriteTicket AccessControlEngine::SubmitAddNode() {
  WriteOp op;
  op.kind = WriteOp::Kind::kAddNode;
  return write_queue_->Submit(std::move(op));
}

WriteTicket AccessControlEngine::SubmitRefreshPolicies() {
  WriteOp op;
  op.kind = WriteOp::Kind::kRefreshPolicies;
  return write_queue_->Submit(std::move(op));
}

storage::WalRecord AccessControlEngine::MakeWalRecordLocked(
    storage::WalRecord::Kind kind, NodeId src, NodeId dst,
    LabelId label) const {
  storage::WalRecord rec;
  rec.kind = kind;
  // The stamp is read *after* the mutation staged, so it names the state
  // the record produced; replay applies records strictly above the
  // bundle's stamp, which names the state the bundle captured.
  rec.generation = snapshot_generation_.load(std::memory_order_relaxed);
  rec.overlay_version = overlay_.version();
  rec.src = src;
  rec.dst = dst;
  // Edge records carry the label *name*: a label interned after the
  // bundle was saved has no id in the bundle's dictionary, and replay
  // re-interns through the AddEdge staging path.
  if (label != kInvalidLabel) rec.label = graph_->labels().ToString(label);
  return rec;
}

Status AccessControlEngine::WalCommitBatchLocked(
    std::span<const storage::WalRecord> recs) {
  if (!durable_ || wal_replaying_ || recs.empty()) return OkStatus();
  return wal_.AppendBatch(recs);
}

Status AccessControlEngine::ApplyOneLocked(
    const WriteOp& op, WriteOutcome* out,
    std::vector<storage::WalRecord>* wal_batch) {
  SARGUS_RETURN_IF_ERROR(CheckMutable());
  switch (op.kind) {
    case WriteOp::Kind::kAddEdge: {
      LabelId id = op.label;
      if (op.by_name) {
        // Validate fully *before* interning: a failed AddEdge must
        // leave the graph (including its label dictionary) untouched.
        SARGUS_RETURN_IF_ERROR(CheckEndpoints(op.src, op.dst));
        id = graph_->labels().Lookup(op.label_name);
        if (id == kInvalidLabel) {
          id = mutable_graph_->labels().Intern(op.label_name);
          if (id == kInvalidLabel) {
            return Status::ResourceExhausted("AddEdge: label dictionary full");
          }
        }
      } else if (id >= graph_->labels().size()) {
        return Status::InvalidArgument("AddEdge: unknown label id");
      }
      SARGUS_RETURN_IF_ERROR(StageAddEdge(op.src, op.dst, id));
      if (wal_batch != nullptr) {
        wal_batch->push_back(MakeWalRecordLocked(
            storage::WalRecord::Kind::kAddEdge, op.src, op.dst, id));
      }
      return OkStatus();
    }
    case WriteOp::Kind::kRemoveEdge: {
      LabelId id = op.label;
      if (op.by_name) {
        id = graph_->labels().Lookup(op.label_name);
        if (id == kInvalidLabel) {
          return Status::NotFound("RemoveEdge: unknown label '" +
                                  op.label_name + "'");
        }
      } else if (id >= graph_->labels().size()) {
        return Status::NotFound("RemoveEdge: unknown label id");
      }
      SARGUS_RETURN_IF_ERROR(StageRemoveEdge(op.src, op.dst, id));
      if (wal_batch != nullptr) {
        wal_batch->push_back(MakeWalRecordLocked(
            storage::WalRecord::Kind::kRemoveEdge, op.src, op.dst, id));
      }
      return OkStatus();
    }
    case WriteOp::Kind::kAddNode: {
      const NodeId id = static_cast<NodeId>(LogicalNumNodesLocked());
      (void)overlay_.StageNode();
      if (building_) {
        journal_.push_back({JournalOp::Kind::kAddNode, 0, 0, kInvalidLabel});
      }
      if (wal_batch != nullptr) {
        wal_batch->push_back(MakeWalRecordLocked(
            storage::WalRecord::Kind::kAddNode, 0, 0, kInvalidLabel));
      }
      out->node = id;
      return OkStatus();
    }
    case WriteOp::Kind::kRefreshPolicies:
      break;  // handled by ApplyWriteBatch (needs no mutable graph)
  }
  return Status::InvalidArgument("unhandled write op kind");
}

void AccessControlEngine::ApplyWriteBatch(std::span<const WriteOp> ops,
                                          WriteOutcome* outcomes) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  std::vector<storage::WalRecord> wal_batch;
  if (durable_ && !wal_replaying_) wal_batch.reserve(ops.size());
  std::vector<storage::WalRecord>* wal_sink =
      (durable_ && !wal_replaying_) ? &wal_batch : nullptr;
  bool any_graph_mutation = false;
  bool policy_refreshed = false;
  for (size_t i = 0; i < ops.size(); ++i) {
    WriteOutcome& out = outcomes[i];
    if (ops[i].kind == WriteOp::Kind::kRefreshPolicies) {
      // Policy refresh needs built indexes but not the mutable-graph
      // constructor (same guard as the legacy call).
      if (!built_) {
        out.status = Status::FailedPrecondition(
            "RefreshPolicies: call RebuildIndexes() first");
      } else {
        out.status = OkStatus();
        if (RefreshPolicySnapshotIfStale()) {
          policy_refreshed = true;
          if (wal_sink != nullptr) {
            wal_sink->push_back(MakeWalRecordLocked(
                storage::WalRecord::Kind::kPolicyRefresh, 0, 0,
                kInvalidLabel));
          }
        }
      }
    } else {
      out.status = ApplyOneLocked(ops[i], &out, wal_sink);
      if (out.status.ok()) any_graph_mutation = true;
    }
    // Per-op stamp, read right after the op staged — identical to the
    // stamp its WAL record carries (failed ops get the stamp of the
    // state that rejected them).
    out.generation = snapshot_generation_.load(std::memory_order_relaxed);
    out.overlay_version = overlay_.version();
  }

  // The group commit: one gathered WAL write + one fsync for every
  // record the batch produced, *before* any ticket observes OK.
  const Status wal_status = WalCommitBatchLocked(wal_batch);
  if (!wal_status.ok()) {
    // An acknowledged mutation must be WAL-durable. Fail every op that
    // believed it committed; their staged effects surface on the next
    // publish, matching the legacy per-record failure path (which also
    // stages before it logs) — and no view is published here.
    for (size_t i = 0; i < ops.size(); ++i) {
      if (outcomes[i].status.ok()) outcomes[i].status = wal_status;
    }
    return;
  }

  if (any_graph_mutation) {
    // One publication (and at most one compaction kick) for the whole
    // batch — the amortization the queue exists for. A failed tail
    // (synchronous compaction) is batch-wide.
    const Status fin = FinishMutation();
    if (!fin.ok()) {
      for (size_t i = 0; i < ops.size(); ++i) {
        if (outcomes[i].status.ok()) outcomes[i].status = fin;
      }
    }
  } else if (policy_refreshed) {
    PublishView();
  }
}

bool AccessControlEngine::EdgeInBaseLocked(NodeId src, NodeId dst,
                                           LabelId label) const {
  if (graph_->edge_lookup_ready() || idx_ == nullptr) {
    return graph_->FindEdge(src, dst, label).has_value();
  }
  // After OpenFromDir the graph's triple→slot map is deliberately left
  // unmaterialized (building it costs as much as the rebuild the bundle
  // avoids). On the mutation path the CSR snapshot is in lockstep with
  // the base graph's live edges, so membership can come from the
  // label-sorted adjacency instead. Nodes past the snapshot's count
  // (staged adds) cannot have base edges.
  if (src >= idx_->csr.NumNodes()) return false;
  for (const CsrSnapshot::Entry& e : idx_->csr.OutWithLabel(src, label)) {
    if (e.other == dst) return true;
  }
  return false;
}

Status AccessControlEngine::StageAddEdge(NodeId src, NodeId dst,
                                         LabelId label) {
  SARGUS_RETURN_IF_ERROR(CheckEndpoints(src, dst));
  const bool in_base = EdgeInBaseLocked(src, dst, label);
  if (in_base) {
    // Present in the snapshot: visible unless masked by a staged remove.
    (void)overlay_.UnstageRemove(src, dst, label);
  } else {
    (void)overlay_.StageAdd(src, dst, label);  // idempotent
  }
  if (building_) {
    journal_.push_back({JournalOp::Kind::kAddEdge, src, dst, label});
  }
  return OkStatus();
}

Status AccessControlEngine::StageRemoveEdge(NodeId src, NodeId dst,
                                            LabelId label) {
  if (!overlay_.UnstageAdd(src, dst, label)) {
    const bool in_base = EdgeInBaseLocked(src, dst, label);
    if (!in_base || overlay_.IsStagedRemove(src, dst, label)) {
      return Status::NotFound("RemoveEdge: no such logical edge");
    }
    (void)overlay_.StageRemove(src, dst, label);
  }
  if (building_) {
    journal_.push_back({JournalOp::Kind::kRemoveEdge, src, dst, label});
  }
  return OkStatus();
}

Status AccessControlEngine::FinishMutation() {
  if (effective_compact_threshold_ != 0 &&
      overlay_.size() >= effective_compact_threshold_ && !building_) {
    if (!options_.background_compaction) {
      return CompactBlockingLocked();  // publishes
    }
    // Kick the build and fall through: the staged mutation must be
    // visible now, on a view over the *current* snapshot.
    StartBackgroundCompactionLocked();
  }
  // Pick up any rules/resources registered since the last publish, then
  // publish a view carrying the new frozen overlay.
  (void)RefreshPolicySnapshotIfStale();
  PublishView();
  return OkStatus();
}

// ---- Compaction -------------------------------------------------------------

Result<std::shared_ptr<const SnapshotIndexes>>
AccessControlEngine::BuildNextBundle(const CompactionJob& job,
                                     bool* incremental) const {
  *incremental = false;
  auto patched = SnapshotIndexes::BuildIncremental(
      *job.prev_idx, *graph_, job.frozen, job.first_new_edge, options_);
  if (!patched.ok()) return patched.status();
  if (*patched != nullptr) {
    *incremental = true;
    return patched;
  }
  return SnapshotIndexes::BuildMerged(*graph_, job.frozen, job.first_new_edge,
                                      options_);
}

void AccessControlEngine::FoldOverlayIntoGraph(const DeltaOverlay& frozen) {
  // Nodes first (staged edges may name them), then removals, then
  // additions — additions in the frozen copy's iteration order, which
  // is the order BuildMerged predicted their edge ids in, so the ids
  // the graph assigns here match the bundle already built against it.
  if (frozen.num_staged_nodes() > 0) {
    (void)mutable_graph_->AddNodes(frozen.num_staged_nodes());
  }
  frozen.ForEachRemoved([&](const DeltaOverlay::EdgeTriple& t) {
    auto id = mutable_graph_->FindEdge(t.src, t.dst, t.label);
    if (id.has_value()) (void)mutable_graph_->RemoveEdge(*id);
  });
  frozen.ForEachAdded([&](const DeltaOverlay::EdgeTriple& t) {
    (void)mutable_graph_->AddEdge(t.src, t.dst, t.label);
  });
}

Status AccessControlEngine::CompactBlockingLocked() {
  CompactionJob job;
  job.prev_idx = idx_;
  job.frozen = overlay_;
  job.first_new_edge = static_cast<EdgeId>(graph_->EdgeSlotCount());
  bool incremental = false;
  auto bundle = BuildNextBundle(job, &incremental);
  if (!bundle.ok()) return bundle.status();

  FoldOverlayIntoGraph(job.frozen);
  idx_ = std::move(*bundle);
  snapshot_generation_.fetch_add(1, std::memory_order_release);
  overlay_.Clear();
  journal_.clear();
  (incremental ? incremental_compactions_ : full_compactions_) += 1;
  // Full policy rebuild: we are on the external writer's thread, where
  // reading the store is safe — and fresh labels may fix failed binds.
  policy_ = PolicySnapshot::Build(*store_, *graph_, *idx_, options_);
  RecomputeEffectiveThreshold();
  PublishView();
  if (durable_ && durability_.snapshot_on_compaction) {
    SARGUS_RETURN_IF_ERROR(SaveSnapshotLocked());
  }
  return OkStatus();
}

void AccessControlEngine::StartBackgroundCompactionLocked() {
  CompactionJob job;
  job.prev_idx = idx_;
  job.frozen = overlay_;  // the freeze: an O(overlay) copy, flat in |V|
  job.first_new_edge = static_cast<EdgeId>(graph_->EdgeSlotCount());
  building_ = true;
  journal_.clear();
  {
    std::lock_guard<std::mutex> lock(comp_mu_);
    if (!comp_thread_.joinable()) {
      comp_thread_ = std::thread(&AccessControlEngine::CompactionWorker, this);
    }
    comp_job_ = std::move(job);
    comp_state_ = CompState::kQueued;
  }
  comp_cv_.notify_all();
}

std::optional<AccessControlEngine::CompactionJob>
AccessControlEngine::FinishCompactionLocked(
    CompactionJob& job, std::shared_ptr<const SnapshotIndexes> bundle,
    bool incremental) {
  FoldOverlayIntoGraph(job.frozen);
  idx_ = std::move(bundle);
  snapshot_generation_.fetch_add(1, std::memory_order_release);

  // Replay the mutations staged during the build against the folded
  // graph: re-running the staging logic in order re-derives the overlay
  // relative to the *new* snapshot (an op that duplicated a folded edge
  // turns into a no-op, a removal of one into a staged remove, and so
  // on). Version continuity keeps (generation, version) stamps unique.
  building_ = false;  // replay below must not re-journal
  const uint64_t version_base = overlay_.version();
  overlay_ = DeltaOverlay();
  overlay_.version_ = version_base;
  for (const JournalOp& op : journal_) {
    switch (op.kind) {
      case JournalOp::Kind::kAddNode:
        (void)overlay_.StageNode();
        break;
      case JournalOp::Kind::kAddEdge:
        (void)StageAddEdge(op.src, op.dst, op.label);
        break;
      case JournalOp::Kind::kRemoveEdge:
        (void)StageRemoveEdge(op.src, op.dst, op.label);
        break;
    }
  }
  journal_.clear();
  (incremental ? incremental_compactions_ : full_compactions_) += 1;
  last_compaction_status_ = OkStatus();

  // Auto picks depend on the new bundle; recompute them from the frozen
  // policy snapshot WITHOUT touching the store (rule registration on
  // the user's thread must not race this thread — store changes surface
  // at the next external write-path publish).
  policy_ = PolicySnapshot::WithAutoPicks(*policy_, *idx_, options_);
  RecomputeEffectiveThreshold();
  PublishView();

  if (durable_ && durability_.snapshot_on_compaction) {
    // The fold rewrote the graph and reset the overlay; the previous
    // bundle no longer covers the on-disk WAL's history, so publish a
    // fresh one (and truncate the WAL it covers) before releasing the
    // writer lock. Readers never take mutation_mu_, so this stays off
    // the serving path. A failed save degrades durability, not serving —
    // recorded like a failed build.
    const Status saved = SaveSnapshotLocked();
    if (!saved.ok()) last_compaction_status_ = saved;
  }

  // Chain a follow-up build when the journal leftovers still demand one
  // (an explicit Compact() arrived mid-build, or they already trip the
  // threshold); the writer never has to re-trigger.
  const bool chain =
      !overlay_.empty() &&
      (recompact_requested_ || (effective_compact_threshold_ != 0 &&
                                overlay_.size() >= effective_compact_threshold_));
  recompact_requested_ = false;
  if (!chain) return std::nullopt;
  CompactionJob next;
  next.prev_idx = idx_;
  next.frozen = overlay_;
  next.first_new_edge = static_cast<EdgeId>(graph_->EdgeSlotCount());
  building_ = true;
  journal_.clear();
  return next;
}

void AccessControlEngine::CompactionWorker() {
  for (;;) {
    CompactionJob job;
    {
      std::unique_lock<std::mutex> lock(comp_mu_);
      comp_cv_.wait(lock, [&] {
        return comp_shutdown_ || comp_state_ == CompState::kQueued;
      });
      if (comp_state_ != CompState::kQueued) return;  // shutdown, idle
      comp_state_ = CompState::kBuilding;
      job = std::move(comp_job_);
    }
    if (comp_build_hook_) comp_build_hook_();
    // The expensive part, off every lock: the writer keeps staging (and
    // journaling) mutations, readers keep serving published views. The
    // graph object is stable during the build — staging never writes
    // it, and only this thread folds.
    bool incremental = false;
    auto bundle = BuildNextBundle(job, &incremental);
    std::optional<CompactionJob> next;
    {
      std::lock_guard<std::mutex> lock(mutation_mu_);
      if (bundle.ok()) {
        next = FinishCompactionLocked(job, std::move(*bundle), incremental);
      } else {
        // Leave the old snapshot serving; the overlay (still relative
        // to it, journal included) is intact, so nothing is lost and a
        // later Compact() retries.
        last_compaction_status_ = bundle.status();
        building_ = false;
        recompact_requested_ = false;
        journal_.clear();
      }
    }
    {
      std::lock_guard<std::mutex> lock(comp_mu_);
      if (next.has_value()) {
        // A chained job: the writer cannot have queued one meanwhile
        // (building_ stayed true, which gates StartBackground...).
        comp_job_ = std::move(*next);
        comp_state_ = CompState::kQueued;  // loop picks it right up
      } else if (comp_state_ == CompState::kBuilding) {
        comp_state_ = CompState::kIdle;
      }
      // else: the writer queued a fresh job in the gap between this
      // thread releasing mutation_mu_ and taking comp_mu_ — leave it
      // kQueued (overwriting to kIdle would drop the job and wedge the
      // pipeline with building_ stuck true).
    }
    comp_cv_.notify_all();
  }
}

Status AccessControlEngine::Compact() {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  SARGUS_RETURN_IF_ERROR(CheckMutable());
  if (overlay_.empty()) return OkStatus();
  if (!options_.background_compaction) return CompactBlockingLocked();
  if (building_) {
    // A build is in flight; have its completion chain a follow-up that
    // folds everything staged meanwhile. WaitForCompaction() drains
    // the whole chain.
    recompact_requested_ = true;
    return OkStatus();
  }
  StartBackgroundCompactionLocked();
  return OkStatus();
}

void AccessControlEngine::WaitForCompaction() {
  std::unique_lock<std::mutex> lock(comp_mu_);
  comp_cv_.wait(lock, [&] { return comp_state_ == CompState::kIdle; });
}

bool AccessControlEngine::compaction_in_flight() const {
  std::lock_guard<std::mutex> lock(comp_mu_);
  return comp_state_ != CompState::kIdle;
}

// ---- Durability -------------------------------------------------------------

Status AccessControlEngine::WalLogLocked(storage::WalRecord::Kind kind,
                                         NodeId src, NodeId dst,
                                         LabelId label) {
  if (!durable_ || wal_replaying_) return OkStatus();
  // The inline (async_mutations off) path: one record, synced per the
  // configured policy. The batched path goes through WalCommitBatchLocked.
  return wal_.Append(MakeWalRecordLocked(kind, src, dst, label));
}

Status AccessControlEngine::SaveSnapshotLocked() {
  if (!durable_) {
    return Status::FailedPrecondition(
        "SaveSnapshot: call EnableDurability() first");
  }
  storage::BundlePayload payload;
  payload.graph = graph_;
  payload.indexes = idx_.get();
  payload.overlay = &overlay_;
  payload.stamp = {snapshot_generation_.load(std::memory_order_relaxed),
                   overlay_.version()};
  payload.compact_threshold = effective_compact_threshold_;
  SARGUS_RETURN_IF_ERROR(
      storage::WriteBundle(BundlePath(durability_dir_), payload));
  // The bundle serializes the overlay too, so every WAL record at or
  // below its stamp is covered — the file is pure history now.
  if (durability_.truncate_wal_on_save && wal_.is_open()) {
    return wal_.Truncate();
  }
  return OkStatus();
}

Status AccessControlEngine::SaveSnapshot() {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  return SaveSnapshotLocked();
}

Status AccessControlEngine::EnableDurability(const std::string& dir,
                                             DurabilityOptions durability) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  if (!built_) {
    return Status::FailedPrecondition(
        "EnableDurability: call RebuildIndexes() first");
  }
  if (mutable_graph_ == nullptr) {
    return Status::FailedPrecondition(
        "EnableDurability requires the mutable-graph constructor");
  }
  SARGUS_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  durability_ = durability;
  durability_dir_ = dir;
  SARGUS_ASSIGN_OR_RETURN(wal_,
                          storage::WalWriter::Open(WalPath(dir), durability.wal_sync));
  durable_ = true;
  // Publish a bundle covering the current state so the directory is
  // consistent (and any stale WAL records are covered) from here on.
  const Status saved = SaveSnapshotLocked();
  if (!saved.ok()) {
    durable_ = false;
    return saved;
  }
  return OkStatus();
}

Status AccessControlEngine::ReplayWal(std::span<const storage::WalRecord> records,
                                      const storage::SnapshotStamp& covered) {
  // Convert the uncovered suffix into WriteOps and push them through the
  // group-commit body in bounded batches: recovery pays one published
  // view per batch instead of one per record. Edge records replay by
  // label *name* (re-interning exactly like the original call did).
  std::vector<WriteOp> ops;
  ops.reserve(records.size());
  for (const auto& rec : records) {
    const storage::SnapshotStamp stamp{rec.generation, rec.overlay_version};
    if (stamp <= covered) continue;  // bundle already captured this record
    WriteOp op;
    switch (rec.kind) {
      case storage::WalRecord::Kind::kAddEdge:
        op.kind = WriteOp::Kind::kAddEdge;
        op.src = rec.src;
        op.dst = rec.dst;
        op.by_name = true;
        op.label_name = rec.label;
        break;
      case storage::WalRecord::Kind::kRemoveEdge:
        op.kind = WriteOp::Kind::kRemoveEdge;
        op.src = rec.src;
        op.dst = rec.dst;
        op.by_name = true;
        op.label_name = rec.label;
        break;
      case storage::WalRecord::Kind::kAddNode:
        op.kind = WriteOp::Kind::kAddNode;
        break;
      case storage::WalRecord::Kind::kPolicyRefresh:
        op.kind = WriteOp::Kind::kRefreshPolicies;
        break;
    }
    ops.push_back(std::move(op));
  }
  {
    std::lock_guard<std::mutex> lock(mutation_mu_);
    wal_replaying_ = true;  // suppress WAL re-appends
  }
  Status status = OkStatus();
  const size_t batch = std::max<size_t>(1, options_.write_queue_max_batch);
  std::vector<WriteOutcome> outcomes;
  for (size_t off = 0; off < ops.size() && status.ok(); off += batch) {
    const size_t n = std::min(batch, ops.size() - off);
    outcomes.assign(n, WriteOutcome{});
    ApplyWriteBatch(std::span<const WriteOp>(ops.data() + off, n),
                    outcomes.data());
    for (size_t i = 0; i < n && status.ok(); ++i) status = outcomes[i].status;
  }
  {
    std::lock_guard<std::mutex> lock(mutation_mu_);
    wal_replaying_ = false;
  }
  if (!status.ok()) {
    return Status::DataLoss("wal replay failed: " + status.ToString());
  }
  return OkStatus();
}

Result<std::unique_ptr<AccessControlEngine>> AccessControlEngine::OpenFromDir(
    const std::string& dir, SocialGraph* graph, const PolicyStore& store,
    EngineOptions options, DurabilityOptions durability) {
  if (graph == nullptr) {
    return Status::InvalidArgument("OpenFromDir: graph must be non-null");
  }
  SARGUS_ASSIGN_OR_RETURN(storage::LoadedBundle loaded,
                          storage::LoadBundle(BundlePath(dir)));

  // The bundle only holds what the saving configuration built; an
  // opening configuration that needs more must rebuild from scratch.
  const bool needs_join = options.evaluator == EvaluatorChoice::kAuto ||
                          options.evaluator == EvaluatorChoice::kJoinIndex;
  if (needs_join && (loaded.flags & storage::kFlagJoinBuilt) == 0) {
    return Status::FailedPrecondition(
        "OpenFromDir: options need the join stack but the bundle was saved "
        "without it");
  }
  if (options.use_closure_prefilter &&
      (loaded.flags & storage::kFlagClosure) == 0) {
    return Status::FailedPrecondition(
        "OpenFromDir: options need the closure prefilter but the bundle was "
        "saved without it");
  }
  if (options.line_graph_backward &&
      (loaded.flags & storage::kFlagBackwardLineGraph) == 0) {
    return Status::FailedPrecondition(
        "OpenFromDir: options need backward line-graph orientations but the "
        "bundle was saved without them");
  }

  *graph = std::move(loaded.graph);
  auto engine = std::unique_ptr<AccessControlEngine>(
      new AccessControlEngine(*graph, store, options));
  {
    std::lock_guard<std::mutex> lock(engine->mutation_mu_);
    engine->idx_ = std::move(loaded.indexes);
    engine->overlay_ = std::move(loaded.overlay);
    engine->snapshot_generation_.store(loaded.stamp.generation,
                                       std::memory_order_release);
    engine->policy_ =
        PolicySnapshot::Build(store, *graph, *engine->idx_, options);
    engine->built_ = true;
    engine->RecomputeEffectiveThreshold();
    engine->PublishView();
  }

  // Replay whatever the bundle does not cover. A missing WAL is a fresh
  // directory; header-level damage is unrecoverable (we cannot know what
  // was acknowledged); a torn *tail* is expected after a crash — replay
  // the clean prefix and truncate the tear on reopen.
  int64_t resume_size = -1;
  auto wal_contents = storage::ReadWal(WalPath(dir));
  if (wal_contents.ok()) {
    SARGUS_RETURN_IF_ERROR(
        engine->ReplayWal(wal_contents->records, loaded.stamp));
    resume_size = static_cast<int64_t>(wal_contents->valid_bytes);
  } else if (wal_contents.status().code() != StatusCode::kNotFound) {
    return wal_contents.status();
  }

  {
    std::lock_guard<std::mutex> lock(engine->mutation_mu_);
    engine->durability_ = durability;
    engine->durability_dir_ = dir;
    SARGUS_ASSIGN_OR_RETURN(
        engine->wal_,
        storage::WalWriter::Open(WalPath(dir), durability.wal_sync,
                                 resume_size));
    engine->durable_ = true;
  }
  return engine;
}

// ---- Read path --------------------------------------------------------------

void AccessControlEngine::PushAuditLocked(const AccessDecision& decision)
    const {
  if (audit_.size() < options_.audit_capacity) {
    audit_.push_back(decision);
  } else {
    audit_[audit_next_] = decision;
    audit_wrapped_ = true;
  }
  audit_next_ = (audit_next_ + 1) % options_.audit_capacity;
}

void AccessControlEngine::RecordAudit(const AccessDecision& decision) const {
  if (options_.audit_capacity == 0) return;
  std::lock_guard<std::mutex> lock(audit_mu_);
  PushAuditLocked(decision);
}

Result<AccessDecision> AccessControlEngine::CheckAccess(
    const AccessRequest& request) const {
  auto view = AcquireReadView();
  if (view == nullptr) {
    return Status::FailedPrecondition(
        "CheckAccess: call RebuildIndexes() first");
  }
  auto decision = view->CheckAccess(request);
  if (decision.ok()) RecordAudit(*decision);
  return decision;
}

std::vector<Result<AccessDecision>> AccessControlEngine::CheckAccessBatch(
    std::span<const AccessRequest> requests) const {
  auto view = AcquireReadView();
  if (view == nullptr) {
    std::vector<Result<AccessDecision>> out;
    out.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      out.push_back(Status::FailedPrecondition(
          "CheckAccess: call RebuildIndexes() first"));
    }
    return out;
  }
  auto out = view->CheckAccessBatch(requests);
  if (options_.audit_capacity > 0) {
    // One ring acquisition for the whole batch, not one per decision.
    std::lock_guard<std::mutex> lock(audit_mu_);
    for (const auto& decision : out) {
      if (decision.ok()) PushAuditLocked(*decision);
    }
  }
  return out;
}

std::vector<AccessDecision> AccessControlEngine::AuditTrail() const {
  std::lock_guard<std::mutex> lock(audit_mu_);
  std::vector<AccessDecision> out;
  if (!audit_wrapped_) {
    out = audit_;
  } else {
    out.reserve(audit_.size());
    for (size_t i = 0; i < audit_.size(); ++i) {
      out.push_back(audit_[(audit_next_ + i) % audit_.size()]);
    }
  }
  return out;
}

}  // namespace sargus
