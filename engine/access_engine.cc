#include "engine/access_engine.h"

#include <algorithm>

#include "query/bidirectional.h"
#include "query/closure_prefilter.h"
#include "query/online_evaluator.h"

namespace sargus {

AccessControlEngine::AccessControlEngine(const SocialGraph& graph,
                                         const PolicyStore& store,
                                         EngineOptions options)
    : graph_(&graph), store_(&store), options_(options) {}

AccessControlEngine::AccessControlEngine(SocialGraph& graph,
                                         const PolicyStore& store,
                                         EngineOptions options)
    : graph_(&graph),
      mutable_graph_(&graph),
      store_(&store),
      options_(options) {}

AccessControlEngine::~AccessControlEngine() = default;

Status AccessControlEngine::RebuildIndexes() {
  built_ = false;
  compiled_rules_.clear();
  prefiltered_.clear();
  // The overlay is relative to the snapshot being replaced; staged
  // mutations that should survive must go through Compact() instead.
  overlay_.Clear();
  csr_ = CsrSnapshot::Build(*graph_);

  // The join-index stack (line graph, oracle, cluster index, tables) is
  // by far the heaviest build; skip it entirely for online-only
  // configurations, which only need the CSR.
  const bool need_join_stack =
      options_.evaluator == EvaluatorChoice::kAuto ||
      options_.evaluator == EvaluatorChoice::kJoinIndex;
  if (need_join_stack) {
    lg_ = LineGraph::Build(
        csr_, {.include_backward = options_.line_graph_backward});
    auto oracle = LineReachabilityOracle::Build(lg_);
    if (!oracle.ok()) return oracle.status();
    oracle_ = std::make_unique<LineReachabilityOracle>(std::move(*oracle));
    auto cluster = ClusterJoinIndex::Build(lg_, *oracle_);
    if (!cluster.ok()) return cluster.status();
    cluster_ = std::make_unique<ClusterJoinIndex>(std::move(*cluster));
    tables_ = BaseTables::Build(lg_);
    join_ = std::make_unique<JoinIndexEvaluator>(
        *graph_, lg_, *oracle_, *cluster_, tables_, options_.join_options);
  } else {
    join_.reset();
    cluster_.reset();
    oracle_.reset();
    lg_ = LineGraph();
    tables_ = BaseTables();
  }
  if (options_.use_closure_prefilter) {
    // Undirected: sound for backward steps too (see closure_prefilter.h).
    closure_ = std::make_unique<TransitiveClosure>(
        TransitiveClosure::Build(csr_, /*as_undirected=*/true));
  } else {
    closure_.reset();
  }

  // Traversal evaluators are overlay-aware: they read the engine's
  // overlay on every neighbor expansion, so staged mutations are visible
  // to the next query with no rewiring (an empty overlay is one branch).
  online_bfs_ = std::make_unique<OnlineEvaluator>(
      *graph_, csr_, TraversalOrder::kBfs, &overlay_);
  online_dfs_ = std::make_unique<OnlineEvaluator>(
      *graph_, csr_, TraversalOrder::kDfs, &overlay_);
  bidirectional_ =
      std::make_unique<BidirectionalEvaluator>(*graph_, csr_, &overlay_);

  // Eager policy binding: every rule known to the store is bound, its
  // automaton compiled (inside Bind) and its evaluator picked now, so
  // CheckAccess does none of that work per request.
  compiled_rules_.resize(store_->NumRules());
  for (RuleId id = 0; id < store_->NumRules(); ++id) {
    (void)EnsureCompiled(id);
  }
  built_ = true;
  ++snapshot_generation_;
  return OkStatus();
}

const Evaluator* AccessControlEngine::WithPrefilter(const Evaluator* base) {
  if (closure_ == nullptr || base == nullptr) return base;
  auto it = prefiltered_.find(base);
  if (it == prefiltered_.end()) {
    // Overlay-aware wrapper: the prefilter self-suspends its fast-deny
    // while pending insertions make closure pruning unsound.
    it = prefiltered_
             .emplace(base, std::make_unique<ClosurePrefilterEvaluator>(
                                *closure_, *base, &overlay_))
             .first;
  }
  return it->second.get();
}

// ---- Dynamic mutations ------------------------------------------------------

Status AccessControlEngine::CheckMutable() const {
  if (mutable_graph_ == nullptr) {
    return Status::FailedPrecondition(
        "mutation requires the mutable-graph constructor (compaction must "
        "write the SocialGraph)");
  }
  if (!built_) {
    return Status::FailedPrecondition(
        "mutation staged against no snapshot: call RebuildIndexes() first");
  }
  return OkStatus();
}

// Walker visited arrays are sized to the snapshot, so staged endpoints
// must exist in it (nodes added after the rebuild need a rebuild).
Status AccessControlEngine::CheckEndpoints(NodeId src, NodeId dst) const {
  if (src >= csr_.NumNodes() || dst >= csr_.NumNodes()) {
    return Status::InvalidArgument(
        "edge mutation: endpoint outside the current snapshot");
  }
  return OkStatus();
}

Status AccessControlEngine::AddEdge(NodeId src, NodeId dst,
                                    const std::string& label) {
  SARGUS_RETURN_IF_ERROR(CheckMutable());
  // Validate fully *before* interning: a failed AddEdge must leave the
  // graph (including its label dictionary) untouched.
  SARGUS_RETURN_IF_ERROR(CheckEndpoints(src, dst));
  LabelId id = graph_->labels().Lookup(label);
  if (id == kInvalidLabel) {
    id = mutable_graph_->labels().Intern(label);
    if (id == kInvalidLabel) {
      return Status::ResourceExhausted("AddEdge: label dictionary full");
    }
  }
  SARGUS_RETURN_IF_ERROR(StageAddEdge(src, dst, id));
  return MaybeCompact();
}

Status AccessControlEngine::AddEdge(NodeId src, NodeId dst, LabelId label) {
  SARGUS_RETURN_IF_ERROR(CheckMutable());
  if (label >= graph_->labels().size()) {
    return Status::InvalidArgument("AddEdge: unknown label id");
  }
  SARGUS_RETURN_IF_ERROR(StageAddEdge(src, dst, label));
  return MaybeCompact();
}

Status AccessControlEngine::RemoveEdge(NodeId src, NodeId dst,
                                       const std::string& label) {
  SARGUS_RETURN_IF_ERROR(CheckMutable());
  const LabelId id = graph_->labels().Lookup(label);
  if (id == kInvalidLabel) {
    return Status::NotFound("RemoveEdge: unknown label '" + label + "'");
  }
  SARGUS_RETURN_IF_ERROR(StageRemoveEdge(src, dst, id));
  return MaybeCompact();
}

Status AccessControlEngine::RemoveEdge(NodeId src, NodeId dst, LabelId label) {
  SARGUS_RETURN_IF_ERROR(CheckMutable());
  if (label >= graph_->labels().size()) {
    return Status::NotFound("RemoveEdge: unknown label id");
  }
  SARGUS_RETURN_IF_ERROR(StageRemoveEdge(src, dst, label));
  return MaybeCompact();
}

Status AccessControlEngine::StageAddEdge(NodeId src, NodeId dst,
                                         LabelId label) {
  SARGUS_RETURN_IF_ERROR(CheckEndpoints(src, dst));
  const bool in_base = graph_->FindEdge(src, dst, label).has_value();
  if (in_base) {
    // Present in the snapshot: visible unless masked by a staged remove.
    (void)overlay_.UnstageRemove(src, dst, label);
    return OkStatus();
  }
  (void)overlay_.StageAdd(src, dst, label);  // idempotent
  return OkStatus();
}

Status AccessControlEngine::StageRemoveEdge(NodeId src, NodeId dst,
                                            LabelId label) {
  if (overlay_.UnstageAdd(src, dst, label)) return OkStatus();
  const bool in_base = graph_->FindEdge(src, dst, label).has_value();
  if (!in_base || overlay_.IsStagedRemove(src, dst, label)) {
    return Status::NotFound("RemoveEdge: no such logical edge");
  }
  (void)overlay_.StageRemove(src, dst, label);
  return OkStatus();
}

Status AccessControlEngine::MaybeCompact() {
  if (options_.compact_threshold == 0 ||
      overlay_.size() < options_.compact_threshold) {
    return OkStatus();
  }
  return Compact();
}

Status AccessControlEngine::Compact() {
  SARGUS_RETURN_IF_ERROR(CheckMutable());
  if (overlay_.empty()) return OkStatus();
  // Fold the overlay into the system of record. Removals first so an
  // (unusual) same-triple remove+add sequence cannot resurrect the
  // tombstoned slot's id ordering assumptions.
  Status apply = OkStatus();
  overlay_.ForEachRemoved([&](const DeltaOverlay::EdgeTriple& t) {
    auto id = mutable_graph_->FindEdge(t.src, t.dst, t.label);
    if (!id.has_value()) return;  // base edge vanished externally
    Status s = mutable_graph_->RemoveEdge(*id);
    if (apply.ok() && !s.ok()) apply = s;
  });
  overlay_.ForEachAdded([&](const DeltaOverlay::EdgeTriple& t) {
    auto r = mutable_graph_->AddEdge(t.src, t.dst, t.label);
    if (apply.ok() && !r.ok()) apply = r.status();
  });
  if (!apply.ok()) return apply;
  // RebuildIndexes clears the (now folded-in) overlay and re-snapshots.
  return RebuildIndexes();
}

const AccessControlEngine::CompiledRule& AccessControlEngine::EnsureCompiled(
    RuleId id) {
  if (compiled_rules_.size() < store_->NumRules()) {
    compiled_rules_.resize(store_->NumRules());
  }
  CompiledRule& rule = compiled_rules_[id];
  if (rule.compiled) return rule;
  for (const PathExpression& path : store_->rule(id).paths) {
    CompiledPath cp;
    auto bound = BoundPathExpression::Bind(path, *graph_);
    if (!bound.ok()) {
      cp.bind_status = bound.status();
    } else {
      cp.bound = std::make_unique<BoundPathExpression>(std::move(*bound));
      const Evaluator* picked = PickEvaluator(*cp.bound);
      cp.evaluator = WithPrefilter(picked);
      // The join index answers over the snapshot alone; while the
      // overlay is non-empty those answers are stale, so such plans
      // fall through to overlay-aware online search until Compact().
      const Evaluator* overlay_base =
          picked == join_.get() ? online_bfs_.get() : picked;
      cp.overlay_evaluator = WithPrefilter(overlay_base);
    }
    rule.paths.push_back(std::move(cp));
  }
  rule.compiled = true;
  return rule;
}

const Evaluator* AccessControlEngine::PickEvaluator(
    const BoundPathExpression& expr) const {
  switch (options_.evaluator) {
    case EvaluatorChoice::kOnlineBfs:
      return online_bfs_.get();
    case EvaluatorChoice::kOnlineDfs:
      return online_dfs_.get();
    case EvaluatorChoice::kBidirectional:
      return bidirectional_.get();
    case EvaluatorChoice::kJoinIndex:
      return join_.get();
    case EvaluatorChoice::kAuto:
      break;
  }
  // kAuto: the join index wins on point queries unless the expression
  // expands combinatorially or needs an orientation the line graph lacks.
  if (expr.HasBackwardStep() && !lg_.includes_backward()) {
    return online_bfs_.get();
  }
  if (expr.ExpansionCount() > options_.auto_max_expansions) {
    return online_bfs_.get();
  }
  return join_.get();
}

Result<AccessDecision> AccessControlEngine::CheckAccess(NodeId requester,
                                                        ResourceId resource) {
  if (!store_->HasResource(resource)) {
    return Status::NotFound("CheckAccess: unknown resource id " +
                            std::to_string(resource));
  }
  if (requester >= graph_->NumNodes()) {
    return Status::InvalidArgument("CheckAccess: requester out of range");
  }
  if (!built_) {
    return Status::FailedPrecondition(
        "CheckAccess: call RebuildIndexes() first");
  }

  const PolicyStore::Resource& res = store_->resource(resource);
  AccessDecision decision;
  decision.requester = requester;
  decision.resource = resource;
  decision.snapshot_generation = snapshot_generation_;
  decision.overlay_version = overlay_.version();

  if (res.owner == requester) {
    decision.granted = true;
    decision.owner_access = true;
    decision.evaluator_name = "owner";
  } else {
    // A rule set is a disjunction: one expression failing to evaluate
    // (unsupported orientation, work cap) must not mask a grant another
    // expression would produce. Errors are remembered and only surface
    // when nothing granted.
    std::optional<Status> first_error;
    for (const RuleId rule_id : res.rules) {
      for (const CompiledPath& path : EnsureCompiled(rule_id).paths) {
        if (!path.bind_status.ok()) {
          if (!first_error) first_error = path.bind_status;
          continue;
        }
        const Evaluator* chosen =
            overlay_.empty() ? path.evaluator : path.overlay_evaluator;

        ReachQuery q{res.owner, requester, path.bound.get(),
                     options_.want_witness};
        auto r = chosen->Evaluate(q);
        if (!r.ok()) {
          if (!first_error) first_error = r.status();
          continue;
        }
        decision.stats.pairs_visited += r->stats.pairs_visited;
        decision.stats.tuples_generated += r->stats.tuples_generated;
        decision.stats.tuples_post_filtered += r->stats.tuples_post_filtered;
        decision.stats.line_queries += r->stats.line_queries;
        decision.stats.prefilter_rejections += r->stats.prefilter_rejections;
        if (r->granted) {
          decision.granted = true;
          decision.matched_rule = rule_id;
          decision.witness = std::move(r->witness);
          decision.evaluator_name = chosen->name();
          break;
        }
        decision.evaluator_name = chosen->name();
      }
      if (decision.granted) break;
    }
    // Nothing granted and at least one expression could not be
    // evaluated: stay loud about the misconfiguration rather than
    // reporting a confident deny.
    if (!decision.granted && first_error.has_value()) {
      return *first_error;
    }
  }

  // Audit ring.
  if (options_.audit_capacity > 0) {
    if (audit_.size() < options_.audit_capacity) {
      audit_.push_back(decision);
    } else {
      audit_[audit_next_] = decision;
      audit_wrapped_ = true;
    }
    audit_next_ = (audit_next_ + 1) % options_.audit_capacity;
  }
  return decision;
}

std::vector<AccessDecision> AccessControlEngine::AuditTrail() const {
  std::vector<AccessDecision> out;
  if (!audit_wrapped_) {
    out = audit_;
  } else {
    out.reserve(audit_.size());
    for (size_t i = 0; i < audit_.size(); ++i) {
      out.push_back(audit_[(audit_next_ + i) % audit_.size()]);
    }
  }
  return out;
}

}  // namespace sargus
