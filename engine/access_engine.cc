#include "engine/access_engine.h"

#include <algorithm>

#include "query/bidirectional.h"
#include "query/closure_prefilter.h"
#include "query/online_evaluator.h"

namespace sargus {

AccessControlEngine::AccessControlEngine(const SocialGraph& graph,
                                         const PolicyStore& store,
                                         EngineOptions options)
    : graph_(&graph), store_(&store), options_(options) {}

AccessControlEngine::~AccessControlEngine() = default;

Status AccessControlEngine::RebuildIndexes() {
  built_ = false;
  compiled_rules_.clear();
  prefiltered_.clear();
  csr_ = CsrSnapshot::Build(*graph_);

  // The join-index stack (line graph, oracle, cluster index, tables) is
  // by far the heaviest build; skip it entirely for online-only
  // configurations, which only need the CSR.
  const bool need_join_stack =
      options_.evaluator == EvaluatorChoice::kAuto ||
      options_.evaluator == EvaluatorChoice::kJoinIndex;
  if (need_join_stack) {
    lg_ = LineGraph::Build(
        csr_, {.include_backward = options_.line_graph_backward});
    auto oracle = LineReachabilityOracle::Build(lg_);
    if (!oracle.ok()) return oracle.status();
    oracle_ = std::make_unique<LineReachabilityOracle>(std::move(*oracle));
    auto cluster = ClusterJoinIndex::Build(lg_, *oracle_);
    if (!cluster.ok()) return cluster.status();
    cluster_ = std::make_unique<ClusterJoinIndex>(std::move(*cluster));
    tables_ = BaseTables::Build(lg_);
    join_ = std::make_unique<JoinIndexEvaluator>(
        *graph_, lg_, *oracle_, *cluster_, tables_, options_.join_options);
  } else {
    join_.reset();
    cluster_.reset();
    oracle_.reset();
    lg_ = LineGraph();
    tables_ = BaseTables();
  }
  if (options_.use_closure_prefilter) {
    // Undirected: sound for backward steps too (see closure_prefilter.h).
    closure_ = std::make_unique<TransitiveClosure>(
        TransitiveClosure::Build(csr_, /*as_undirected=*/true));
  } else {
    closure_.reset();
  }

  online_bfs_ = std::make_unique<OnlineEvaluator>(*graph_, csr_,
                                                  TraversalOrder::kBfs);
  online_dfs_ = std::make_unique<OnlineEvaluator>(*graph_, csr_,
                                                  TraversalOrder::kDfs);
  bidirectional_ = std::make_unique<BidirectionalEvaluator>(*graph_, csr_);

  // Eager policy binding: every rule known to the store is bound, its
  // automaton compiled (inside Bind) and its evaluator picked now, so
  // CheckAccess does none of that work per request.
  compiled_rules_.resize(store_->NumRules());
  for (RuleId id = 0; id < store_->NumRules(); ++id) {
    (void)EnsureCompiled(id);
  }
  built_ = true;
  return OkStatus();
}

const Evaluator* AccessControlEngine::WithPrefilter(const Evaluator* base) {
  if (closure_ == nullptr || base == nullptr) return base;
  auto it = prefiltered_.find(base);
  if (it == prefiltered_.end()) {
    it = prefiltered_
             .emplace(base, std::make_unique<ClosurePrefilterEvaluator>(
                                *closure_, *base))
             .first;
  }
  return it->second.get();
}

const AccessControlEngine::CompiledRule& AccessControlEngine::EnsureCompiled(
    RuleId id) {
  if (compiled_rules_.size() < store_->NumRules()) {
    compiled_rules_.resize(store_->NumRules());
  }
  CompiledRule& rule = compiled_rules_[id];
  if (rule.compiled) return rule;
  for (const PathExpression& path : store_->rule(id).paths) {
    CompiledPath cp;
    auto bound = BoundPathExpression::Bind(path, *graph_);
    if (!bound.ok()) {
      cp.bind_status = bound.status();
    } else {
      cp.bound = std::make_unique<BoundPathExpression>(std::move(*bound));
      cp.evaluator = WithPrefilter(PickEvaluator(*cp.bound));
    }
    rule.paths.push_back(std::move(cp));
  }
  rule.compiled = true;
  return rule;
}

const Evaluator* AccessControlEngine::PickEvaluator(
    const BoundPathExpression& expr) const {
  switch (options_.evaluator) {
    case EvaluatorChoice::kOnlineBfs:
      return online_bfs_.get();
    case EvaluatorChoice::kOnlineDfs:
      return online_dfs_.get();
    case EvaluatorChoice::kBidirectional:
      return bidirectional_.get();
    case EvaluatorChoice::kJoinIndex:
      return join_.get();
    case EvaluatorChoice::kAuto:
      break;
  }
  // kAuto: the join index wins on point queries unless the expression
  // expands combinatorially or needs an orientation the line graph lacks.
  if (expr.HasBackwardStep() && !lg_.includes_backward()) {
    return online_bfs_.get();
  }
  if (expr.ExpansionCount() > options_.auto_max_expansions) {
    return online_bfs_.get();
  }
  return join_.get();
}

Result<AccessDecision> AccessControlEngine::CheckAccess(NodeId requester,
                                                        ResourceId resource) {
  if (!store_->HasResource(resource)) {
    return Status::NotFound("CheckAccess: unknown resource id " +
                            std::to_string(resource));
  }
  if (requester >= graph_->NumNodes()) {
    return Status::InvalidArgument("CheckAccess: requester out of range");
  }
  if (!built_) {
    return Status::FailedPrecondition(
        "CheckAccess: call RebuildIndexes() first");
  }

  const PolicyStore::Resource& res = store_->resource(resource);
  AccessDecision decision;
  decision.requester = requester;
  decision.resource = resource;

  if (res.owner == requester) {
    decision.granted = true;
    decision.owner_access = true;
    decision.evaluator_name = "owner";
  } else {
    // A rule set is a disjunction: one expression failing to evaluate
    // (unsupported orientation, work cap) must not mask a grant another
    // expression would produce. Errors are remembered and only surface
    // when nothing granted.
    std::optional<Status> first_error;
    for (const RuleId rule_id : res.rules) {
      for (const CompiledPath& path : EnsureCompiled(rule_id).paths) {
        if (!path.bind_status.ok()) {
          if (!first_error) first_error = path.bind_status;
          continue;
        }
        const Evaluator* chosen = path.evaluator;

        ReachQuery q{res.owner, requester, path.bound.get(),
                     options_.want_witness};
        auto r = chosen->Evaluate(q);
        if (!r.ok()) {
          if (!first_error) first_error = r.status();
          continue;
        }
        decision.stats.pairs_visited += r->stats.pairs_visited;
        decision.stats.tuples_generated += r->stats.tuples_generated;
        decision.stats.tuples_post_filtered += r->stats.tuples_post_filtered;
        decision.stats.line_queries += r->stats.line_queries;
        decision.stats.prefilter_rejections += r->stats.prefilter_rejections;
        if (r->granted) {
          decision.granted = true;
          decision.matched_rule = rule_id;
          decision.witness = std::move(r->witness);
          decision.evaluator_name = chosen->name();
          break;
        }
        decision.evaluator_name = chosen->name();
      }
      if (decision.granted) break;
    }
    // Nothing granted and at least one expression could not be
    // evaluated: stay loud about the misconfiguration rather than
    // reporting a confident deny.
    if (!decision.granted && first_error.has_value()) {
      return *first_error;
    }
  }

  // Audit ring.
  if (options_.audit_capacity > 0) {
    if (audit_.size() < options_.audit_capacity) {
      audit_.push_back(decision);
    } else {
      audit_[audit_next_] = decision;
      audit_wrapped_ = true;
    }
    audit_next_ = (audit_next_ + 1) % options_.audit_capacity;
  }
  return decision;
}

std::vector<AccessDecision> AccessControlEngine::AuditTrail() const {
  std::vector<AccessDecision> out;
  if (!audit_wrapped_) {
    out = audit_;
  } else {
    out.reserve(audit_.size());
    for (size_t i = 0; i < audit_.size(); ++i) {
      out.push_back(audit_[(audit_next_ + i) % audit_.size()]);
    }
  }
  return out;
}

}  // namespace sargus
