#include "engine/write_queue.h"

#include <utility>
#include <vector>

#include "engine/access_engine.h"

namespace sargus {

WriteOutcome WriteTicket::Wait() const {
  if (state_ == nullptr) {
    WriteOutcome out;
    out.status = Status::FailedPrecondition("Wait on an invalid WriteTicket");
    return out;
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->outcome;
}

bool WriteTicket::done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

MutationQueue::MutationQueue(AccessControlEngine* engine,
                             MutationQueueOptions options)
    : engine_(engine), options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
}

MutationQueue::~MutationQueue() { Shutdown(); }

void MutationQueue::Complete(const std::shared_ptr<WriteTicket::State>& state,
                             WriteOutcome outcome) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->outcome = std::move(outcome);
    state->done = true;
  }
  state->cv.notify_all();
}

WriteTicket MutationQueue::Submit(WriteOp op) {
  WriteTicket ticket;
  ticket.state_ = std::make_shared<WriteTicket::State>();
  {
    std::unique_lock<std::mutex> lock(mu_);
    nonfull_.wait(lock, [&] {
      return shutdown_ || queue_.size() < options_.capacity;
    });
    if (shutdown_) {
      stats_.rejected += 1;
      lock.unlock();
      WriteOutcome out;
      out.status = Status::Unavailable("mutation queue shut down");
      Complete(ticket.state_, std::move(out));
      return ticket;
    }
    if (!writer_.joinable()) {
      writer_ = std::thread(&MutationQueue::WriterLoop, this);
    }
    queue_.push_back(Pending{std::move(op), ticket.state_});
    stats_.submitted += 1;
  }
  nonempty_.notify_one();
  return ticket;
}

void MutationQueue::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [&] {
    return shutdown_ || (queue_.empty() && !applying_);
  });
}

void MutationQueue::Shutdown() {
  std::thread writer;
  std::deque<Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    writer = std::move(writer_);
  }
  nonempty_.notify_all();
  nonfull_.notify_all();
  if (writer.joinable()) writer.join();
  {
    // The writer exited without draining (it stops as soon as it
    // observes shutdown); whatever is still queued was never applied.
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
    stats_.rejected += leftover.size();
  }
  for (Pending& p : leftover) {
    WriteOutcome out;
    out.status = Status::Unavailable("mutation queue shut down");
    Complete(p.state, std::move(out));
  }
  drained_.notify_all();
}

WriteQueueStats MutationQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MutationQueue::PauseForTesting(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = paused;
  }
  nonempty_.notify_all();
}

void MutationQueue::WriterLoop() {
  std::vector<WriteOp> ops;
  std::vector<std::shared_ptr<WriteTicket::State>> states;
  std::vector<WriteOutcome> outcomes;
  for (;;) {
    ops.clear();
    states.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      nonempty_.wait(lock, [&] {
        return shutdown_ || (!paused_ && !queue_.empty());
      });
      if (shutdown_) return;  // Shutdown() drains the leftovers
      const size_t take = std::min(queue_.size(), options_.max_batch);
      for (size_t i = 0; i < take; ++i) {
        ops.push_back(std::move(queue_.front().op));
        states.push_back(std::move(queue_.front().state));
        queue_.pop_front();
      }
      applying_ = true;
      stats_.applied += take;
      stats_.batches += 1;
      stats_.max_batch_seen = std::max<uint64_t>(stats_.max_batch_seen, take);
    }
    nonfull_.notify_all();

    // The group commit: one mutation_mu_ acquisition, one WAL batch
    // append (one fsync), one published view for the whole batch.
    outcomes.assign(ops.size(), WriteOutcome{});
    engine_->ApplyWriteBatch(ops, outcomes.data());
    for (size_t i = 0; i < states.size(); ++i) {
      Complete(states[i], std::move(outcomes[i]));
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      applying_ = false;
    }
    drained_.notify_all();
  }
}

}  // namespace sargus
