#include "engine/read_view.h"

#include <algorithm>
#include <numeric>

#include "query/bidirectional.h"
#include "query/closure_prefilter.h"
#include "query/eval_context.h"
#include "query/online_evaluator.h"
#include "synth/workload.h"

namespace sargus {

namespace {

/// Same-resource batch groups at least this large are answered with one
/// shared audience walk per rule path instead of one product search per
/// request (see CheckAccessBatch).
constexpr size_t kBatchAudienceCutoff = 4;

/// Maps a request-level choice onto a concrete kind, using the path's
/// precomputed automatic pick for kAuto.
EvaluatorKind KindForChoice(EvaluatorChoice choice, EvaluatorKind auto_pick) {
  switch (choice) {
    case EvaluatorChoice::kAuto:
      return auto_pick;
    case EvaluatorChoice::kOnlineBfs:
      return EvaluatorKind::kOnlineBfs;
    case EvaluatorChoice::kOnlineDfs:
      return EvaluatorKind::kOnlineDfs;
    case EvaluatorChoice::kBidirectional:
      return EvaluatorKind::kBidirectional;
    case EvaluatorChoice::kJoinIndex:
      return EvaluatorKind::kJoinIndex;
  }
  return EvaluatorKind::kOnlineBfs;
}

/// The kAuto policy from the paper's deployment advice: the join index
/// wins on point queries unless it was never built, the expression needs
/// an orientation the line graph lacks, or it expands combinatorially.
EvaluatorKind AutoPick(const BoundPathExpression& expr,
                       const SnapshotIndexes& idx,
                       const EngineOptions& options) {
  if (!idx.join_built) return EvaluatorKind::kOnlineBfs;
  if (expr.HasBackwardStep() && !idx.lg.includes_backward()) {
    return EvaluatorKind::kOnlineBfs;
  }
  if (expr.ExpansionCount() > options.auto_max_expansions) {
    return EvaluatorKind::kOnlineBfs;
  }
  return EvaluatorKind::kJoinIndex;
}

}  // namespace

namespace {

/// The join-index stack (line graph, oracle, cluster index, tables) is
/// by far the heaviest build; skip it entirely for online-only
/// configurations, which only need the CSR.
bool NeedJoinStack(const EngineOptions& options) {
  return options.evaluator == EvaluatorChoice::kAuto ||
         options.evaluator == EvaluatorChoice::kJoinIndex;
}

/// Finishes a bundle whose csr (and, when `lg_built`, line graph +
/// oracle) are already in place: the cluster index, base tables and
/// closure are always derived fresh — they are linear-ish in the line
/// graph, unlike the SCC/sweep work the incremental path avoids.
Status FinishBundle(SnapshotIndexes& idx, bool lg_built,
                    const EngineOptions& options) {
  if (NeedJoinStack(options)) {
    if (!lg_built) {
      idx.lg = LineGraph::Build(
          idx.csr, {.include_backward = options.line_graph_backward});
      auto oracle = LineReachabilityOracle::Build(idx.lg);
      if (!oracle.ok()) return oracle.status();
      idx.oracle = std::make_unique<LineReachabilityOracle>(std::move(*oracle));
    }
    auto cluster = ClusterJoinIndex::Build(idx.lg, *idx.oracle);
    if (!cluster.ok()) return cluster.status();
    idx.cluster = std::make_unique<ClusterJoinIndex>(std::move(*cluster));
    idx.tables = BaseTables::Build(idx.lg);
    idx.join_built = true;
  }
  if (options.use_closure_prefilter) {
    // Undirected: sound for backward steps too (see closure_prefilter.h).
    idx.closure = std::make_unique<TransitiveClosure>(
        TransitiveClosure::Build(idx.csr, /*as_undirected=*/true));
  }
  return OkStatus();
}

}  // namespace

Result<std::shared_ptr<const SnapshotIndexes>> SnapshotIndexes::Build(
    const SocialGraph& graph, const EngineOptions& options) {
  auto idx = std::make_shared<SnapshotIndexes>();
  idx->csr = CsrSnapshot::Build(graph);
  SARGUS_RETURN_IF_ERROR(FinishBundle(*idx, /*lg_built=*/false, options));
  return std::shared_ptr<const SnapshotIndexes>(std::move(idx));
}

Result<std::shared_ptr<const SnapshotIndexes>> SnapshotIndexes::BuildMerged(
    const SocialGraph& graph, const DeltaOverlay& overlay,
    EdgeId first_new_edge, const EngineOptions& options) {
  auto idx = std::make_shared<SnapshotIndexes>();
  idx->csr = CsrSnapshot::Build(graph, overlay, first_new_edge);
  SARGUS_RETURN_IF_ERROR(FinishBundle(*idx, /*lg_built=*/false, options));
  return std::shared_ptr<const SnapshotIndexes>(std::move(idx));
}

Result<std::shared_ptr<const SnapshotIndexes>>
SnapshotIndexes::BuildIncremental(const SnapshotIndexes& prev,
                                  const SocialGraph& graph,
                                  const DeltaOverlay& overlay,
                                  EdgeId first_new_edge,
                                  const EngineOptions& options) {
  // Gate: insertion-only (deleted reachability cannot be patched out of
  // the labels) and small relative to the snapshot — past the fraction
  // the resumed sweeps stop beating the batch build.
  if (options.incremental_max_fraction <= 0.0 || overlay.has_deletions()) {
    return std::shared_ptr<const SnapshotIndexes>(nullptr);
  }
  const double cap =
      options.incremental_max_fraction * static_cast<double>(
                                             prev.csr.NumEdges());
  if (static_cast<double>(overlay.NumAdded()) > cap) {
    return std::shared_ptr<const SnapshotIndexes>(nullptr);
  }

  auto idx = std::make_shared<SnapshotIndexes>();
  idx->csr = CsrSnapshot::Build(graph, overlay, first_new_edge);
  bool lg_built = false;
  if (NeedJoinStack(options)) {
    if (!prev.join_built || prev.oracle == nullptr) {
      return std::shared_ptr<const SnapshotIndexes>(nullptr);
    }
    idx->lg = LineGraph::BuildIncremental(prev.lg, idx->csr, first_new_edge);
    auto oracle = LineReachabilityOracle::BuildIncremental(
        *prev.oracle, idx->lg,
        static_cast<LineVertexId>(prev.lg.NumVertices()), {});
    if (!oracle.has_value()) {
      // An insertion closed a line-graph cycle: components must merge,
      // which only the full Tarjan pass can do.
      return std::shared_ptr<const SnapshotIndexes>(nullptr);
    }
    idx->oracle = std::make_unique<LineReachabilityOracle>(std::move(*oracle));
    lg_built = true;
  }
  SARGUS_RETURN_IF_ERROR(FinishBundle(*idx, lg_built, options));
  return std::shared_ptr<const SnapshotIndexes>(std::move(idx));
}

std::shared_ptr<const PolicySnapshot> PolicySnapshot::Build(
    const PolicyStore& store, const SocialGraph& graph,
    const SnapshotIndexes& idx, const EngineOptions& options) {
  auto policy = std::make_shared<PolicySnapshot>();
  policy->source_num_resources = store.NumResources();
  policy->source_num_rules = store.NumRules();

  policy->resources.reserve(store.NumResources());
  for (ResourceId id = 0; id < store.NumResources(); ++id) {
    const PolicyStore::Resource& res = store.resource(id);
    policy->resources.push_back({res.owner, res.rules});
  }

  policy->rules.resize(store.NumRules());
  for (RuleId id = 0; id < store.NumRules(); ++id) {
    CompiledRule& rule = policy->rules[id];
    for (const PathExpression& path : store.rule(id).paths) {
      CompiledPath cp;
      auto bound = BoundPathExpression::Bind(path, graph);
      if (!bound.ok()) {
        cp.bind_status = bound.status();
      } else {
        cp.bound =
            std::make_shared<const BoundPathExpression>(std::move(*bound));
        cp.auto_pick = AutoPick(*cp.bound, idx, options);
      }
      rule.paths.push_back(std::move(cp));
    }
  }
  return policy;
}

std::shared_ptr<const PolicySnapshot> PolicySnapshot::WithAutoPicks(
    const PolicySnapshot& prev, const SnapshotIndexes& idx,
    const EngineOptions& options) {
  auto policy = std::make_shared<PolicySnapshot>();
  policy->source_num_resources = prev.source_num_resources;
  policy->source_num_rules = prev.source_num_rules;
  policy->resources = prev.resources;
  policy->rules = prev.rules;  // shares the bound expressions
  for (CompiledRule& rule : policy->rules) {
    for (CompiledPath& path : rule.paths) {
      if (path.bound != nullptr) {
        path.auto_pick = AutoPick(*path.bound, idx, options);
      }
    }
  }
  return policy;
}

AccessReadView::AccessReadView(const SocialGraph& graph,
                               std::shared_ptr<const SnapshotIndexes> idx,
                               std::shared_ptr<const PolicySnapshot> policy,
                               const DeltaOverlay& overlay,
                               const EngineOptions& options,
                               uint64_t snapshot_generation)
    : graph_(&graph),
      options_(options),
      idx_(std::move(idx)),
      policy_(std::move(policy)),
      overlay_(overlay),
      overlay_empty_(overlay.empty()),
      logical_num_nodes_(LogicalNumNodes(idx_->csr, &overlay_)),
      snapshot_generation_(snapshot_generation) {
  // Per-view evaluator instances are pointer bundles over the shared
  // immutable structures plus this view's frozen overlay; building them
  // per publication is a handful of small allocations.
  auto& bfs = base_[static_cast<size_t>(EvaluatorKind::kOnlineBfs)];
  auto& dfs = base_[static_cast<size_t>(EvaluatorKind::kOnlineDfs)];
  auto& bidi = base_[static_cast<size_t>(EvaluatorKind::kBidirectional)];
  auto& join = base_[static_cast<size_t>(EvaluatorKind::kJoinIndex)];
  bfs = std::make_unique<OnlineEvaluator>(*graph_, idx_->csr,
                                          TraversalOrder::kBfs, &overlay_);
  dfs = std::make_unique<OnlineEvaluator>(*graph_, idx_->csr,
                                          TraversalOrder::kDfs, &overlay_);
  bidi = std::make_unique<BidirectionalEvaluator>(*graph_, idx_->csr,
                                                  &overlay_);
  if (idx_->join_built) {
    join = std::make_unique<JoinIndexEvaluator>(*graph_, idx_->lg,
                                                *idx_->oracle, *idx_->cluster,
                                                idx_->tables,
                                                options_.join_options);
  }
  if (idx_->closure != nullptr) {
    for (size_t i = 0; i < kNumEvaluatorKinds; ++i) {
      if (base_[i] == nullptr) continue;
      // Overlay-aware wrapper: the prefilter self-suspends its fast-deny
      // while pending insertions make closure pruning unsound.
      prefiltered_[i] = std::make_unique<ClosurePrefilterEvaluator>(
          *idx_->closure, *base_[i], &overlay_, graph_);
    }
  }
}

std::shared_ptr<const AccessReadView> AccessReadView::Create(
    const SocialGraph& graph, std::shared_ptr<const SnapshotIndexes> idx,
    std::shared_ptr<const PolicySnapshot> policy, const DeltaOverlay& overlay,
    const EngineOptions& options, uint64_t snapshot_generation) {
  return std::shared_ptr<const AccessReadView>(
      new AccessReadView(graph, std::move(idx), std::move(policy), overlay,
                         options, snapshot_generation));
}

Result<AccessDecision> AccessReadView::CheckAccess(
    const AccessRequest& request, EvalContext& ctx) const {
  if (request.resource >= policy_->resources.size()) {
    return Status::NotFound("CheckAccess: unknown resource id " +
                            std::to_string(request.resource));
  }
  if (request.requester >= logical_num_nodes_) {
    return Status::InvalidArgument(
        "CheckAccess: requester outside this view's snapshot");
  }
  return CheckResolved(policy_->resources[request.resource], request, ctx);
}

Result<AccessDecision> AccessReadView::CheckAccess(
    const AccessRequest& request) const {
  return CheckAccess(request, ThreadLocalEvalContext());
}

Result<AccessDecision> AccessReadView::CheckResolved(
    const PolicySnapshot::ResourceEntry& res, const AccessRequest& request,
    EvalContext& ctx) const {
  // The policy store accepts any owner id, and a resource owned by a
  // node added after this view was published is not decidable against
  // its frozen snapshot: every rule walk would seed at the owner, past
  // the scratch arrays sized at snapshot time. Fail loudly instead.
  if (res.owner >= logical_num_nodes_) {
    return Status::InvalidArgument(
        "CheckAccess: resource owner outside this view's snapshot");
  }
  AccessDecision decision;
  decision.requester = request.requester;
  decision.resource = request.resource;
  decision.snapshot_generation = snapshot_generation_;
  decision.overlay_version = overlay_.version();

  if (res.owner == request.requester) {
    decision.granted = true;
    decision.owner_access = true;
    decision.evaluator_name = "owner";
    return decision;
  }

  const EvaluatorChoice choice =
      request.evaluator_override.value_or(options_.evaluator);

  // A rule set is a disjunction: one expression failing to evaluate
  // (unsupported orientation, work cap) must not mask a grant another
  // expression would produce. Errors are remembered and only surface
  // when nothing grants.
  std::optional<Status> first_error;
  for (const RuleId rule_id : res.rules) {
    for (const PolicySnapshot::CompiledPath& path :
         policy_->rules[rule_id].paths) {
      if (!path.bind_status.ok()) {
        if (!first_error) first_error = path.bind_status;
        continue;
      }
      EvaluatorKind kind = KindForChoice(choice, path.auto_pick);
      // The join index answers over the snapshot alone; while the
      // overlay is non-empty those answers are stale, so join picks
      // fall through to overlay-aware online search until Compact().
      if (!overlay_empty_ && kind == EvaluatorKind::kJoinIndex) {
        kind = EvaluatorKind::kOnlineBfs;
      }
      const Evaluator* chosen = Serving(kind);
      if (chosen == nullptr) {
        if (!first_error) {
          first_error = Status::FailedPrecondition(
              "CheckAccess: the join index was not built under this "
              "configuration (EngineOptions::evaluator skipped it)");
        }
        continue;
      }

      ReachQuery q{res.owner, request.requester, path.bound.get(),
                   request.want_witness};
      auto r = chosen->Evaluate(q, ctx);
      if (!r.ok()) {
        if (!first_error) first_error = r.status();
        continue;
      }
      decision.stats.pairs_visited += r->stats.pairs_visited;
      decision.stats.tuples_generated += r->stats.tuples_generated;
      decision.stats.tuples_post_filtered += r->stats.tuples_post_filtered;
      decision.stats.line_queries += r->stats.line_queries;
      decision.stats.prefilter_rejections += r->stats.prefilter_rejections;
      decision.evaluator_name = chosen->name();
      if (r->granted) {
        decision.granted = true;
        decision.matched_rule = rule_id;
        decision.witness = std::move(r->witness);
        break;
      }
    }
    if (decision.granted) break;
  }
  // Nothing granted and at least one expression could not be evaluated:
  // stay loud about the misconfiguration rather than reporting a
  // confident deny.
  if (!decision.granted && first_error.has_value()) {
    return *first_error;
  }
  return decision;
}

bool AccessReadView::AllPathsBindable(
    const PolicySnapshot::ResourceEntry& res) const {
  for (const RuleId rule_id : res.rules) {
    for (const PolicySnapshot::CompiledPath& path :
         policy_->rules[rule_id].paths) {
      if (!path.bind_status.ok()) return false;
    }
  }
  return true;
}

void AccessReadView::CheckGroupByAudience(
    const PolicySnapshot::ResourceEntry& res,
    std::span<const AccessRequest> requests,
    std::span<const uint32_t> group,
    std::vector<std::optional<Result<AccessDecision>>>& slots,
    EvalContext& ctx) const {
  // One decision per request, deny until some rule's audience admits it.
  std::vector<uint32_t> remaining(group.begin(), group.end());
  for (const uint32_t slot : group) {
    AccessDecision d;
    d.requester = requests[slot].requester;
    d.resource = requests[slot].resource;
    d.snapshot_generation = snapshot_generation_;
    d.overlay_version = overlay_.version();
    d.evaluator_name = "batch-audience";
    slots[slot].emplace(std::move(d));
  }
  for (const RuleId rule_id : res.rules) {
    if (remaining.empty()) break;
    for (const PolicySnapshot::CompiledPath& path :
         policy_->rules[rule_id].paths) {
      if (remaining.empty()) break;
      // One product walk from the owner answers the whole group: the
      // audience is exactly the set of requesters this path grants
      // (sorted, so membership is a binary search).
      std::vector<NodeId> audience = CollectMatchingAudience(
          *graph_, idx_->csr, *path.bound, res.owner, &ctx, &overlay_);
      std::erase_if(remaining, [&](uint32_t slot) {
        if (!std::binary_search(audience.begin(), audience.end(),
                                requests[slot].requester)) {
          return false;
        }
        AccessDecision& d = **slots[slot];
        d.granted = true;
        d.matched_rule = rule_id;
        return true;
      });
    }
  }
}

std::vector<Result<AccessDecision>> AccessReadView::CheckAccessBatch(
    std::span<const AccessRequest> requests, EvalContext& ctx) const {
  // Group by resource: requests for one resource resolve its entry and
  // compiled rules together, share one scratch context — and, when the
  // group is large enough, share the traversal itself (one audience
  // walk per rule path instead of one product search per request).
  std::vector<uint32_t> order(requests.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return requests[a].resource < requests[b].resource;
  });

  std::vector<std::optional<Result<AccessDecision>>> slots(requests.size());
  std::vector<uint32_t> audience_eligible;
  size_t i = 0;
  while (i < order.size()) {
    const ResourceId resource = requests[order[i]].resource;
    size_t end = i;
    while (end < order.size() && requests[order[end]].resource == resource) {
      ++end;
    }
    if (resource >= policy_->resources.size()) {
      for (; i < end; ++i) {
        slots[order[i]].emplace(
            Status::NotFound("CheckAccess: unknown resource id " +
                             std::to_string(resource)));
      }
      continue;
    }
    const PolicySnapshot::ResourceEntry& res = policy_->resources[resource];
    // First pass: requests that need the per-request path — malformed
    // ones, owner short-circuits (no traversal at all), and requests
    // carrying per-request options the shared walk cannot honor
    // (witness extraction, evaluator override).
    audience_eligible.clear();
    for (size_t k = i; k < end; ++k) {
      const uint32_t slot = order[k];
      const AccessRequest& request = requests[slot];
      if (request.requester >= logical_num_nodes_) {
        slots[slot].emplace(Status::InvalidArgument(
            "CheckAccess: requester outside this view's snapshot"));
      } else if (res.owner >= logical_num_nodes_ ||
                 res.owner == request.requester || request.want_witness ||
                 request.evaluator_override.has_value()) {
        slots[slot].emplace(CheckResolved(res, request, ctx));
      } else {
        audience_eligible.push_back(slot);
      }
    }
    // Second pass: the shared audience walk needs every path bindable
    // (a failed bind must surface per request under disjunction
    // semantics); below the cutoff the per-request path is cheaper.
    if (audience_eligible.size() >= kBatchAudienceCutoff &&
        AllPathsBindable(res)) {
      CheckGroupByAudience(res, requests, audience_eligible, slots, ctx);
    } else {
      for (const uint32_t slot : audience_eligible) {
        slots[slot].emplace(CheckResolved(res, requests[slot], ctx));
      }
    }
    i = end;
  }

  std::vector<Result<AccessDecision>> out;
  out.reserve(requests.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

std::vector<Result<AccessDecision>> AccessReadView::CheckAccessBatch(
    std::span<const AccessRequest> requests) const {
  return CheckAccessBatch(requests, ThreadLocalEvalContext());
}

}  // namespace sargus
