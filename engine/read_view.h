#ifndef SARGUS_ENGINE_READ_VIEW_H_
#define SARGUS_ENGINE_READ_VIEW_H_

/// \file read_view.h
/// \brief AccessReadView: the immutable, lock-free serving surface.
///
/// The serving model is RCU-style snapshot publication. A view is a
/// frozen bundle of everything one CheckAccess needs:
///
///   * a `SnapshotIndexes` (CSR + line graph + oracle + cluster index +
///     base tables + closure), shared across views until the next
///     RebuildIndexes/Compact;
///   * a `PolicySnapshot` (resource table + eagerly bound, compiled
///     rules), shared across views until the policy store changes;
///   * a frozen copy of the DeltaOverlay as of publication, so staged
///     mutations are visible without any synchronization;
///   * per-view evaluator instances wired to the three pieces above
///     (cheap: evaluators are pointer bundles).
///
/// `CheckAccess` on a view is fully const and lock-free: any number of
/// threads may hammer one shared view concurrently, each drawing scratch
/// from its own `EvalContext` (or the thread-local one). Nothing a view
/// references is ever mutated after publication — the engine's write
/// path (AddEdge/RemoveEdge/Compact/RebuildIndexes) builds the *next*
/// view off the serving path and publishes it with one atomic swap
/// (see the publication machinery in access_engine.h); in-flight
/// readers drain on the old view, which stays
/// alive (and keeps answering against its frozen state) for as long as
/// anyone holds the shared_ptr. The (snapshot_generation,
/// overlay_version) stamps on every AccessDecision identify which
/// published state a decision was evaluated against.
///
/// Requests are structured: `AccessRequest` carries per-request
/// `want_witness` and an optional per-request evaluator override, and
/// `CheckAccessBatch` amortizes resource/rule resolution and scratch
/// reuse across a whole batch (requests are grouped by resource).

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/policy.h"
#include "graph/csr.h"
#include "graph/delta_overlay.h"
#include "graph/line_graph.h"
#include "index/base_tables.h"
#include "index/cluster_index.h"
#include "index/line_oracle.h"
#include "index/transitive_closure.h"
#include "query/evaluator.h"
#include "query/join_evaluator.h"

namespace sargus {

struct EvalContext;

enum class EvaluatorChoice {
  /// Join index when built and the expression expands modestly; online
  /// BFS otherwise. The paper's deployment advice, codified.
  kAuto,
  kOnlineBfs,
  kOnlineDfs,
  kBidirectional,
  kJoinIndex,
};

/// Build-time engine configuration. Everything request-scoped (witness,
/// evaluator override) lives on AccessRequest instead.
struct EngineOptions {
  /// Default evaluator for requests that carry no override. Also decides
  /// which indexes RebuildIndexes constructs (kAuto/kJoinIndex build the
  /// full join stack; online-only choices skip it).
  EvaluatorChoice evaluator = EvaluatorChoice::kAuto;
  /// Build an (undirected) transitive closure and use it as a fast-deny
  /// prefilter in front of the chosen evaluator.
  bool use_closure_prefilter = false;
  /// Build the line graph with backward orientations (required when any
  /// policy uses `label-[a,b]` steps and the join index may serve it).
  bool line_graph_backward = false;
  /// kAuto sends expressions expanding beyond this many line queries to
  /// online search instead of the join index.
  uint64_t auto_max_expansions = 64;
  JoinIndexOptions join_options;
  /// Decisions kept in the engine's audit ring (0 disables auditing —
  /// and with it the only lock on the engine's CheckAccess facade).
  size_t audit_capacity = 1024;
  /// Staged overlay mutations (adds + removes + node additions)
  /// tolerated before a mutation triggers an automatic Compact(). The
  /// default, kCompactThresholdAuto, scales with the snapshot:
  /// max(1024, |E|/16), recomputed at every rebuild — a fixed constant
  /// either starves small graphs (overlay never folds, conservatism
  /// never lifts) or compacts pathologically often on large ones, where
  /// each fold is expensive. Any explicit value is used as-is; 0
  /// disables auto-compaction (the overlay then grows until an explicit
  /// Compact()).
  size_t compact_threshold = kCompactThresholdAuto;
  /// Run Compact() (explicit and threshold-triggered) on the engine's
  /// dedicated compaction thread: the next index bundle is built
  /// against a frozen graph+overlay while the writer keeps staging
  /// mutations, which are replayed onto the new snapshot when it
  /// publishes. Off = the pre-double-buffering behavior: Compact()
  /// blocks the writer for the whole rebuild (kept for benchmarks and
  /// for callers that want strict synchronous semantics without
  /// WaitForCompaction()).
  bool background_compaction = true;
  /// Compactions whose staged delta is insertion-only and no larger
  /// than this fraction of the snapshot's edges patch the line graph /
  /// oracle incrementally instead of rebuilding them (see
  /// SnapshotIndexes::BuildIncremental). 0 disables incremental
  /// maintenance.
  double incremental_max_fraction = 0.05;
  /// Route the legacy synchronous mutation calls (AddEdge / RemoveEdge /
  /// AddNode / RefreshPolicies) through the engine's MPSC MutationQueue
  /// as Submit+Wait shims (engine/write_queue.h): mutations become safe
  /// to call from any number of threads, serialized by submission order
  /// and committed in group-commit batches. Off = the pre-queue inline
  /// path, which requires callers to serialize mutations externally
  /// (kept as the mutex-serialized baseline bench_concurrency measures
  /// the queue against). The SubmitX() surface works either way.
  bool async_mutations = true;
  /// Mutations the queue holds before Submit blocks (backpressure).
  size_t write_queue_capacity = 4096;
  /// Most mutations the writer thread drains into one group-commit
  /// batch (one WAL fsync, one published view).
  size_t write_queue_max_batch = 512;

  static constexpr size_t kCompactThresholdAuto =
      std::numeric_limits<size_t>::max();
};

/// One access-control question, fully self-describing. Replaces the old
/// positional CheckAccess(requester, resource) plus global
/// EngineOptions::want_witness.
struct AccessRequest {
  NodeId requester = 0;
  ResourceId resource = 0;
  /// Ask for a witness path on grants. May cost extra; per request, not
  /// per engine.
  bool want_witness = false;
  /// Force a specific evaluator for this request (kAuto re-runs the
  /// automatic pick). Unset uses the engine's configured default. A
  /// forced kJoinIndex on a configuration that never built the join
  /// stack surfaces kFailedPrecondition; while the overlay is non-empty
  /// join picks still re-route to overlay-aware online search so every
  /// evaluator keeps agreeing.
  std::optional<EvaluatorChoice> evaluator_override;
};

struct AccessDecision {
  bool granted = false;
  NodeId requester = 0;
  ResourceId resource = 0;
  /// Rule that granted access (unset on denies and owner grants).
  std::optional<RuleId> matched_rule;
  /// True when requester == owner (always granted, no rule consulted).
  bool owner_access = false;
  /// Evaluator work, summed over all expressions tried.
  EvalStats stats;
  /// Witness path for the matched expression (when requested).
  std::vector<NodeId> witness;
  /// name() of the evaluator that produced the final verdict.
  std::string_view evaluator_name;
  /// Snapshot/overlay state the decision was evaluated against: the
  /// stamps of the AccessReadView that served it.
  uint64_t snapshot_generation = 0;
  uint64_t overlay_version = 0;
  /// Non-empty when the sharded tier answered this check in degraded
  /// mode (an owner shard was unreachable and the decision was
  /// concluded exactly from fresh boundary summaries — see
  /// shard/router.h). The answer is still exact; this records that a
  /// reduced path produced it. Always empty from a single engine.
  std::string degraded_reason;
};

/// Which concrete evaluator a compiled path resolved to. Indexes the
/// view's evaluator arrays.
enum class EvaluatorKind : uint8_t {
  kOnlineBfs = 0,
  kOnlineDfs = 1,
  kBidirectional = 2,
  kJoinIndex = 3,
};
inline constexpr size_t kNumEvaluatorKinds = 4;

/// The immutable index bundle one RebuildIndexes produces. Shared (via
/// shared_ptr) by every view published until the next rebuild; nothing
/// in it is written after Build returns.
struct SnapshotIndexes {
  CsrSnapshot csr;
  LineGraph lg;
  std::unique_ptr<LineReachabilityOracle> oracle;
  std::unique_ptr<ClusterJoinIndex> cluster;
  BaseTables tables;
  std::unique_ptr<TransitiveClosure> closure;
  /// True when the join stack (lg/oracle/cluster/tables) was built.
  bool join_built = false;

  /// Builds the bundle the configuration needs (the join stack only for
  /// kAuto/kJoinIndex, the closure only when the prefilter is on).
  static Result<std::shared_ptr<const SnapshotIndexes>> Build(
      const SocialGraph& graph, const EngineOptions& options);

  /// Same bundle over the *logical* graph `graph` ⊕ `overlay`, without
  /// mutating `graph` — what a background compaction builds against its
  /// frozen inputs. `first_new_edge` is the id the fold will assign the
  /// overlay's first staged addition (the graph's EdgeSlotCount() at
  /// freeze time), so the bundle is identical to Build() after the fold.
  static Result<std::shared_ptr<const SnapshotIndexes>> BuildMerged(
      const SocialGraph& graph, const DeltaOverlay& overlay,
      EdgeId first_new_edge, const EngineOptions& options);

  /// Incremental variant of BuildMerged: patches `prev`'s line graph and
  /// reachability oracle instead of rebuilding them (the CSR, closure,
  /// cluster and base tables are re-derived — all linear). Only
  /// applicable when the delta is insertion-only (removals shrink
  /// reachability, which labels cannot un-learn), no larger than
  /// options.incremental_max_fraction of the snapshot's edges, and the
  /// insertions close no cycle in the line graph; returns null (not an
  /// error) when any of these fail and the caller should fall back to
  /// the full BuildMerged. Produces the same answers as the full build
  /// (the equivalence test suite pins this on randomized overlays).
  static Result<std::shared_ptr<const SnapshotIndexes>> BuildIncremental(
      const SnapshotIndexes& prev, const SocialGraph& graph,
      const DeltaOverlay& overlay, EdgeId first_new_edge,
      const EngineOptions& options);
};

/// The immutable policy bundle: the resource table plus every rule
/// bound, its automaton compiled, and its automatic evaluator pick
/// precomputed. Built at publish time; shared by every view until the
/// PolicyStore grows (rule/resource counts are the staleness key).
/// Binding is against the SocialGraph's dictionaries, which only grow,
/// so a policy snapshot stays valid across overlay churn and
/// compactions — only a store change (or a rebuild, whose fresh
/// dictionary entries may fix previously failed binds) forces a new one.
struct PolicySnapshot {
  struct CompiledPath {
    /// A failed bind keeps its status here so rule disjunction semantics
    /// can surface it only when nothing grants.
    Status bind_status = OkStatus();
    std::shared_ptr<const BoundPathExpression> bound;
    /// What kAuto resolves to for this path (join index when built and
    /// affordable, online BFS otherwise).
    EvaluatorKind auto_pick = EvaluatorKind::kOnlineBfs;
  };
  struct CompiledRule {
    std::vector<CompiledPath> paths;
  };
  struct ResourceEntry {
    NodeId owner = 0;
    std::vector<RuleId> rules;
  };

  std::vector<ResourceEntry> resources;
  std::vector<CompiledRule> rules;
  /// Store sizes this snapshot was built from — the staleness key the
  /// engine compares before reusing it in the next published view.
  size_t source_num_resources = 0;
  size_t source_num_rules = 0;

  static std::shared_ptr<const PolicySnapshot> Build(
      const PolicyStore& store, const SocialGraph& graph,
      const SnapshotIndexes& idx, const EngineOptions& options);

  /// Clone of `prev` with every path's automatic evaluator pick
  /// recomputed against a new index bundle — what a background
  /// compaction publishes. Deliberately does NOT touch the PolicyStore
  /// (the compaction thread must not race rule registration on the
  /// user's thread), so binds that failed in `prev` stay failed until
  /// the next store-refreshing publish (any external write-path call).
  static std::shared_ptr<const PolicySnapshot> WithAutoPicks(
      const PolicySnapshot& prev, const SnapshotIndexes& idx,
      const EngineOptions& options);
};

/// An immutable, reference-counted serving snapshot. See the file
/// comment for the publication model. Obtain one from
/// AccessControlEngine::AcquireReadView() (or go through the engine's
/// CheckAccess facade, which acquires the current view per call and
/// additionally records the decision in the audit ring).
class AccessReadView {
 public:
  /// Freezes `overlay` (by copy) against the given bundles and wires the
  /// per-view evaluator instances. `graph` must outlive the view; the
  /// view reads only its node count and attribute columns (see the
  /// thread-safety contract in access_engine.h).
  static std::shared_ptr<const AccessReadView> Create(
      const SocialGraph& graph, std::shared_ptr<const SnapshotIndexes> idx,
      std::shared_ptr<const PolicySnapshot> policy, const DeltaOverlay& overlay,
      const EngineOptions& options, uint64_t snapshot_generation);

  AccessReadView(const AccessReadView&) = delete;
  AccessReadView& operator=(const AccessReadView&) = delete;

  /// Decides one request. Fully const and lock-free; safe to call from
  /// any number of threads concurrently when each passes its own `ctx`.
  Result<AccessDecision> CheckAccess(const AccessRequest& request,
                                     EvalContext& ctx) const;

  /// Same, drawing scratch from this thread's pooled EvalContext.
  Result<AccessDecision> CheckAccess(const AccessRequest& request) const;

  /// Decides a whole batch with one scratch context, grouping requests
  /// by resource so the resource entry and its compiled rules are
  /// resolved once per group — and so large groups can share the
  /// traversal itself: when ≥ 4 requests target one resource (and carry
  /// no witness/override), the group is answered with one audience walk
  /// per rule path instead of one product search per request. Decisions
  /// from that shared walk report evaluator_name "batch-audience" and
  /// carry no per-request work stats; grant/deny agrees with the
  /// per-request path wherever that path produces a decision. (One
  /// deliberate divergence: the shared walk has no work caps, so a
  /// query whose per-request join plan would fail with
  /// kResourceExhausted gets a definitive answer here instead of an
  /// error.) Results are positional: out[i] answers
  /// requests[i]; a bad request (unknown resource, out-of-range
  /// requester) fails its own slot only.
  std::vector<Result<AccessDecision>> CheckAccessBatch(
      std::span<const AccessRequest> requests, EvalContext& ctx) const;
  std::vector<Result<AccessDecision>> CheckAccessBatch(
      std::span<const AccessRequest> requests) const;

  /// Stamps identifying the published state this view serves (mirrored
  /// into every AccessDecision).
  uint64_t snapshot_generation() const { return snapshot_generation_; }
  uint64_t overlay_version() const { return overlay_.version(); }

  /// The frozen pending-mutation set this view layers over its snapshot.
  const DeltaOverlay& overlay() const { return overlay_; }
  const CsrSnapshot& csr() const { return idx_->csr; }
  size_t num_resources() const { return policy_->resources.size(); }

  /// Raw pieces of the frozen bundle, exposed for the sharded serving
  /// tier (shard/): cross-shard frontier expansion and boundary-summary
  /// builds run ProductWalker directly over this view's (graph, csr,
  /// overlay, compiled rules). Same lifetime and immutability contract
  /// as csr()/overlay() — valid while the view is held, never mutated.
  const SocialGraph& graph() const { return *graph_; }
  const PolicySnapshot& policy() const { return *policy_; }

  /// Node ids this view can answer for: snapshot nodes plus the frozen
  /// overlay's staged node additions. A request (or resource owner)
  /// at or past this bound — e.g. a node added after this view was
  /// published — fails with kInvalidArgument instead of indexing past
  /// scratch arrays sized at snapshot time.
  size_t logical_num_nodes() const { return logical_num_nodes_; }

 private:
  AccessReadView(const SocialGraph& graph,
                 std::shared_ptr<const SnapshotIndexes> idx,
                 std::shared_ptr<const PolicySnapshot> policy,
                 const DeltaOverlay& overlay, const EngineOptions& options,
                 uint64_t snapshot_generation);

  /// The serving evaluator for `kind`: the prefilter wrapper when the
  /// closure is configured, the base evaluator otherwise. Null when the
  /// kind's index was never built (join on an online-only config).
  const Evaluator* Serving(EvaluatorKind kind) const {
    const auto i = static_cast<size_t>(kind);
    return prefiltered_[i] != nullptr ? prefiltered_[i].get() : base_[i].get();
  }

  /// Core of CheckAccess once the resource entry is resolved.
  Result<AccessDecision> CheckResolved(const PolicySnapshot::ResourceEntry& res,
                                       const AccessRequest& request,
                                       EvalContext& ctx) const;

  /// True when every path of every rule on `res` bound successfully
  /// (precondition for the shared-audience batch path: a failed bind
  /// must surface per request under disjunction semantics).
  bool AllPathsBindable(const PolicySnapshot::ResourceEntry& res) const;

  /// Batch fast path: decides every request in `group` (slot indices
  /// into `slots`) against `res` with one audience walk per rule path.
  void CheckGroupByAudience(
      const PolicySnapshot::ResourceEntry& res,
      std::span<const AccessRequest> requests, std::span<const uint32_t> group,
      std::vector<std::optional<Result<AccessDecision>>>& slots,
      EvalContext& ctx) const;

  const SocialGraph* graph_;
  EngineOptions options_;
  std::shared_ptr<const SnapshotIndexes> idx_;
  std::shared_ptr<const PolicySnapshot> policy_;
  /// Frozen at Create(); evaluators below hold its address.
  DeltaOverlay overlay_;
  bool overlay_empty_ = true;
  size_t logical_num_nodes_ = 0;
  uint64_t snapshot_generation_ = 0;

  std::array<std::unique_ptr<Evaluator>, kNumEvaluatorKinds> base_;
  std::array<std::unique_ptr<Evaluator>, kNumEvaluatorKinds> prefiltered_;
};

}  // namespace sargus

#endif  // SARGUS_ENGINE_READ_VIEW_H_
