#include "engine/policy.h"

#include "core/path_parser.h"

namespace sargus {

ResourceId PolicyStore::RegisterResource(NodeId owner, std::string name) {
  const ResourceId id = static_cast<ResourceId>(resources_.size());
  resources_.push_back(Resource{owner, std::move(name), {}});
  return id;
}

Result<RuleId> PolicyStore::AddRuleFromPaths(
    ResourceId resource, const std::vector<std::string>& paths) {
  if (!HasResource(resource)) {
    return Status::NotFound("AddRuleFromPaths: unknown resource id " +
                            std::to_string(resource));
  }
  if (paths.empty()) {
    return Status::InvalidArgument(
        "AddRuleFromPaths: a rule needs at least one path expression");
  }
  Rule rule;
  rule.resource = resource;
  for (const std::string& text : paths) {
    auto parsed = ParsePathExpression(text);
    if (!parsed.ok()) return parsed.status();
    rule.paths.push_back(std::move(*parsed));
  }
  const RuleId id = static_cast<RuleId>(rules_.size());
  rules_.push_back(std::move(rule));
  resources_[resource].rules.push_back(id);
  return id;
}

}  // namespace sargus
