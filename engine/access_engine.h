#ifndef SARGUS_ENGINE_ACCESS_ENGINE_H_
#define SARGUS_ENGINE_ACCESS_ENGINE_H_

/// \file access_engine.h
/// \brief AccessControlEngine: the end-to-end facade.
///
/// Wires a SocialGraph and a PolicyStore to the full index + evaluator
/// stack: CheckAccess(requester, resource) looks up the resource, walks
/// its eagerly-bound rules, dispatches to the pre-picked (and, when
/// configured, prefilter-wrapped) evaluator, and records the decision in
/// a bounded audit ring.
///
/// Lifecycle: construct, RebuildIndexes(), serve CheckAccess. Graph
/// mutations go through the engine's AddEdge/RemoveEdge (requires the
/// mutable-graph constructor): each is an O(1) write to a DeltaOverlay
/// layered over the current CsrSnapshot, visible to the very next query
/// — no rebuild (bench_dynamic.cc measures the before/after cost
/// models). When the overlay exceeds EngineOptions::compact_threshold,
/// the engine automatically Compact()s: folds the staged mutations into
/// the SocialGraph, clears the overlay, and rebuilds every snapshot
/// index. kOnlineBfs/kOnlineDfs/kBidirectional only need the CSR;
/// kJoinIndex needs the whole stack and fails with kFailedPrecondition
/// if it is missing.
///
/// Snapshot-consistency contract: the engine owns the pairing between
/// the snapshot indexes and the overlay. While the overlay is non-empty,
/// (a) traversal evaluators merge it into every neighbor expansion, (b)
/// index-based pruning runs in conservative mode (pending insertions
/// suspend closure fast-denies — see index/prefilter_validity.h), and
/// (c) queries whose compiled plan picked the join index are re-routed
/// to overlay-aware online search until the next compaction, so every
/// evaluator keeps returning the same grant/deny. Mutating the
/// SocialGraph directly after RebuildIndexes (rather than through the
/// engine) breaks this pairing; call RebuildIndexes again if you must.
///
/// Generation counters: snapshot_generation() increments on every
/// successful RebuildIndexes (including those triggered by Compact), and
/// overlay_version() on every staged mutation. Pooled EvalContext /
/// QueryScratch state needs no explicit invalidation across compactions:
/// every walk re-opens its epoch sets sized to the *current* snapshot's
/// product space, so scratch reused across a compaction cannot read
/// stale visited state — the counters exist so callers (and tests) can
/// tell which snapshot/overlay state a decision saw.
///
/// Thread-safety: the engine is externally synchronized. CheckAccess
/// mutates the audit ring and the lazy rule-compilation cache, and
/// AddEdge/RemoveEdge/Compact mutate the overlay and indexes, so no two
/// engine calls may run concurrently. (The evaluator layer below is
/// concurrency-safe — a shared const evaluator may serve many threads —
/// so a concurrent front end can shard engines or wrap this one in a
/// lock; see ROADMAP.)
///
/// Policy binding happens at RebuildIndexes, keyed by stable RuleId:
/// every rule path is bound, its hop automaton compiled, and its
/// evaluator chosen once, so the request path performs no
/// PathExpression::ToString(), Bind, or evaluator construction — only
/// array lookups. Rules added to the store after RebuildIndexes are
/// compiled on first use (once), not per request.

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/policy.h"
#include "graph/csr.h"
#include "graph/delta_overlay.h"
#include "graph/line_graph.h"
#include "index/base_tables.h"
#include "index/cluster_index.h"
#include "index/line_oracle.h"
#include "index/transitive_closure.h"
#include "query/evaluator.h"
#include "query/join_evaluator.h"

namespace sargus {

enum class EvaluatorChoice {
  /// Join index when built and the expression expands modestly; online
  /// BFS otherwise. The paper's deployment advice, codified.
  kAuto,
  kOnlineBfs,
  kOnlineDfs,
  kBidirectional,
  kJoinIndex,
};

struct EngineOptions {
  EvaluatorChoice evaluator = EvaluatorChoice::kAuto;
  /// Build an (undirected) transitive closure and use it as a fast-deny
  /// prefilter in front of the chosen evaluator.
  bool use_closure_prefilter = false;
  /// Ask evaluators for witness paths on grants.
  bool want_witness = false;
  /// Build the line graph with backward orientations (required when any
  /// policy uses `label-[a,b]` steps and the join index may serve it).
  bool line_graph_backward = false;
  /// kAuto sends expressions expanding beyond this many line queries to
  /// online search instead of the join index.
  uint64_t auto_max_expansions = 64;
  JoinIndexOptions join_options;
  /// Decisions kept in the audit ring.
  size_t audit_capacity = 1024;
  /// Staged overlay mutations (adds + removes) tolerated before
  /// AddEdge/RemoveEdge triggers an automatic Compact(). 0 disables
  /// auto-compaction (the overlay then grows until an explicit
  /// Compact()).
  size_t compact_threshold = 4096;
};

struct AccessDecision {
  bool granted = false;
  NodeId requester = 0;
  ResourceId resource = 0;
  /// Rule that granted access (unset on denies and owner grants).
  std::optional<RuleId> matched_rule;
  /// True when requester == owner (always granted, no rule consulted).
  bool owner_access = false;
  /// Evaluator work, summed over all expressions tried.
  EvalStats stats;
  /// Witness path for the matched expression (when requested).
  std::vector<NodeId> witness;
  /// name() of the evaluator that produced the final verdict.
  std::string_view evaluator_name;
  /// Snapshot/overlay state the decision was evaluated against (see the
  /// generation-counter contract in the file comment).
  uint64_t snapshot_generation = 0;
  uint64_t overlay_version = 0;
};

class AccessControlEngine {
 public:
  /// `graph` and `store` must outlive the engine. The engine never
  /// mutates either; AddEdge/RemoveEdge/Compact are unavailable (they
  /// return kFailedPrecondition) because compaction must write the graph.
  AccessControlEngine(const SocialGraph& graph, const PolicyStore& store,
                      EngineOptions options = {});

  /// Mutable-graph constructor: enables AddEdge/RemoveEdge/Compact. The
  /// engine only writes `graph` inside Compact() (applying the staged
  /// mutations) — with one narrow exception: AddEdge with a label
  /// *name* not yet interned interns it after full validation
  /// (snapshot-safe: label ids only grow, so no index observes it).
  AccessControlEngine(SocialGraph& graph, const PolicyStore& store,
                      EngineOptions options = {});
  ~AccessControlEngine();

  AccessControlEngine(const AccessControlEngine&) = delete;
  AccessControlEngine& operator=(const AccessControlEngine&) = delete;

  /// (Re)builds every snapshot index the configuration needs. Call after
  /// construction (and after mutating the graph *outside* the engine).
  /// Discards any staged overlay mutations — the overlay is defined
  /// relative to the snapshot being replaced; use Compact() to fold
  /// pending mutations in instead of dropping them.
  Status RebuildIndexes();

  // ---- Dynamic mutations (mutable-graph constructor only) -----------------

  /// Stages edge src -[label]-> dst as added, visible to the next query.
  /// O(1) unless it trips auto-compaction. Idempotent when the logical
  /// edge already exists. Interns an unknown label name.
  /// kInvalidArgument for out-of-range endpoints, kFailedPrecondition
  /// before RebuildIndexes or on a const-graph engine.
  Status AddEdge(NodeId src, NodeId dst, const std::string& label);
  Status AddEdge(NodeId src, NodeId dst, LabelId label);

  /// Stages the logical edge src -[label]-> dst as removed (withdrawing
  /// a pending add, or masking a base edge). kNotFound when the logical
  /// edge does not exist.
  Status RemoveEdge(NodeId src, NodeId dst, const std::string& label);
  Status RemoveEdge(NodeId src, NodeId dst, LabelId label);

  /// Folds every staged mutation into the SocialGraph, clears the
  /// overlay, and rebuilds the snapshot indexes. No-op on an empty
  /// overlay. Queries before and after see the same logical graph; only
  /// the cost profile changes (index pruning and the join index come
  /// back online).
  Status Compact();

  /// The pending-mutation set (empty once compacted). Stable address for
  /// the engine's lifetime — evaluators hold pointers to it.
  const DeltaOverlay& overlay() const { return overlay_; }

  /// Bumped by every successful RebuildIndexes (incl. via Compact).
  uint64_t snapshot_generation() const { return snapshot_generation_; }
  /// Forwarded DeltaOverlay::version().
  uint64_t overlay_version() const { return overlay_.version(); }

  /// Decides whether `requester` may access `resource`.
  Result<AccessDecision> CheckAccess(NodeId requester, ResourceId resource);

  /// Most recent decisions, oldest first (bounded by audit_capacity).
  std::vector<AccessDecision> AuditTrail() const;

  bool indexes_built() const { return built_; }
  const EngineOptions& options() const { return options_; }

 private:
  /// One rule path, bound and wired at compile time. `bound` is
  /// heap-allocated so the pointer handed to queries stays stable;
  /// `evaluator` is the picked engine (prefilter-wrapped when enabled),
  /// owned by the engine. A failed bind keeps its status here so rule
  /// disjunction semantics can surface it only when nothing grants.
  struct CompiledPath {
    Status bind_status = OkStatus();
    std::unique_ptr<BoundPathExpression> bound;
    const Evaluator* evaluator = nullptr;
    /// Evaluator used while the overlay is non-empty: same as
    /// `evaluator` for overlay-aware picks, the overlay-aware online
    /// fallback when the static pick was the (snapshot-only) join index.
    const Evaluator* overlay_evaluator = nullptr;
  };
  struct CompiledRule {
    bool compiled = false;
    std::vector<CompiledPath> paths;
  };

  const Evaluator* PickEvaluator(const BoundPathExpression& expr) const;
  /// Returns the closure-prefilter wrapper around `base` (creating it on
  /// first need) when the prefilter is configured, `base` otherwise.
  const Evaluator* WithPrefilter(const Evaluator* base);
  /// Binds + wires every path of `id` once; cheap lookup afterwards.
  const CompiledRule& EnsureCompiled(RuleId id);

  /// Shared AddEdge/RemoveEdge staging logic after label resolution.
  Status StageAddEdge(NodeId src, NodeId dst, LabelId label);
  Status StageRemoveEdge(NodeId src, NodeId dst, LabelId label);
  /// Auto-compaction trigger, called after every successful staging.
  Status MaybeCompact();
  /// Mutation-entry guard: mutable graph + built indexes.
  Status CheckMutable() const;
  /// Staged endpoints must lie inside the current snapshot.
  Status CheckEndpoints(NodeId src, NodeId dst) const;

  const SocialGraph* graph_;
  /// Non-null only for the mutable-graph constructor; written solely by
  /// Compact().
  SocialGraph* mutable_graph_ = nullptr;
  const PolicyStore* store_;
  EngineOptions options_;

  bool built_ = false;
  uint64_t snapshot_generation_ = 0;
  /// Pending mutations relative to csr_. Evaluators and prefilter
  /// wrappers hold its address, so queries observe staged edges without
  /// any per-mutation rewiring.
  DeltaOverlay overlay_;
  CsrSnapshot csr_;
  LineGraph lg_;
  std::unique_ptr<LineReachabilityOracle> oracle_;
  std::unique_ptr<ClusterJoinIndex> cluster_;
  BaseTables tables_;
  std::unique_ptr<TransitiveClosure> closure_;

  std::unique_ptr<Evaluator> online_bfs_;
  std::unique_ptr<Evaluator> online_dfs_;
  std::unique_ptr<Evaluator> bidirectional_;
  std::unique_ptr<Evaluator> join_;
  // Closure-prefilter wrappers, one per wrapped base evaluator, built at
  // compile time (not per request).
  std::unordered_map<const Evaluator*, std::unique_ptr<Evaluator>>
      prefiltered_;

  // Eagerly bound rules, indexed by RuleId.
  std::vector<CompiledRule> compiled_rules_;

  // Audit ring.
  std::vector<AccessDecision> audit_;
  size_t audit_next_ = 0;
  bool audit_wrapped_ = false;
};

}  // namespace sargus

#endif  // SARGUS_ENGINE_ACCESS_ENGINE_H_
