#ifndef SARGUS_ENGINE_ACCESS_ENGINE_H_
#define SARGUS_ENGINE_ACCESS_ENGINE_H_

/// \file access_engine.h
/// \brief AccessControlEngine: the write path + view publisher.
///
/// The engine wires a SocialGraph and a PolicyStore to the full index +
/// evaluator stack and splits the API into two halves:
///
///  * a **read path** served by immutable AccessReadViews (see
///    read_view.h): `CheckAccess(AccessRequest)` / `CheckAccessBatch`
///    acquire the current view (lock-free in steady state via a
///    per-thread cache), decide lock-free against its frozen (snapshot
///    + indexes + overlay + compiled rules) bundle, and record the
///    decision in the audit ring;
///    `AcquireReadView()` hands the view out directly for callers that
///    want to pin one state across many calls (or skip the audit ring's
///    mutex entirely);
///  * a **write path** — RebuildIndexes, AddEdge/RemoveEdge, AddNode,
///    Compact, RefreshPolicies — that builds the *next* view off the
///    serving path and publishes it with an atomic swap. In-flight
///    readers drain on the old view, which keeps answering against its
///    frozen state for as long as anyone holds it.
///
/// Lifecycle: construct, RebuildIndexes(), serve. Graph mutations go
/// through the engine's AddEdge/RemoveEdge/AddNode (requires the
/// mutable-graph constructor): each is an O(overlay) staged write — a
/// DeltaOverlay delta plus a republished view carrying a frozen overlay
/// copy — visible to the very next acquired view, never a rebuild
/// (bench_dynamic.cc charts the cost model: flat in |V|, linear only in
/// the bounded overlay size). When the overlay exceeds the effective
/// compaction threshold (EngineOptions::compact_threshold; the default
/// scales as max(1024, |E|/16)), the engine automatically Compact()s.
/// kOnlineBfs/kOnlineDfs/kBidirectional only need the CSR; kJoinIndex
/// needs the whole stack and fails with kFailedPrecondition if it is
/// missing.
///
/// Compaction model (double-buffered, see docs/ARCHITECTURE.md): with
/// EngineOptions::background_compaction (the default), `Compact()` —
/// explicit or threshold-triggered — freezes a copy of the overlay and
/// returns immediately; a dedicated compaction thread builds the next
/// SnapshotIndexes bundle against graph ⊕ frozen-overlay (incrementally
/// patched when the delta is insertion-only and small — see
/// SnapshotIndexes::BuildIncremental — else a full rebuild) while the
/// writer keeps staging mutations, which are also recorded in a replay
/// journal. On completion the compaction thread briefly takes the
/// writer lock, folds the frozen overlay into the SocialGraph, swaps in
/// the new bundle, replays the journal into a fresh overlay relative to
/// the new snapshot, and publishes — so neither readers nor the writer
/// ever stall on an index rebuild. `WaitForCompaction()` blocks until
/// the pipeline is idle (tests and benchmarks use it for determinism);
/// with background_compaction off, Compact() performs the whole fold +
/// rebuild synchronously before returning.
///
/// Snapshot-consistency contract: every published view owns the pairing
/// between its snapshot indexes and its frozen overlay. While a view's
/// overlay is non-empty, (a) its traversal evaluators merge the overlay
/// into every neighbor expansion, (b) index-based pruning runs in
/// conservative mode (pending insertions suspend closure fast-denies —
/// see index/prefilter_validity.h), and (c) requests whose compiled plan
/// picked the join index are re-routed to overlay-aware online search,
/// so every evaluator keeps returning the same grant/deny. Mutating the
/// SocialGraph directly (rather than through the engine) breaks this
/// pairing; call RebuildIndexes again if you must.
///
/// Node growth: `AddNode()` stages a node addition through the overlay —
/// the returned id is queryable (as requester, resource owner, or edge
/// endpoint of further staged mutations) on the very next view, no
/// RebuildIndexes required — and compaction folds staged nodes into the
/// SocialGraph with the same ids. Staged nodes carry no attributes until
/// folded. Views published *before* the AddNode reject the new id with
/// kInvalidArgument (their scratch arrays are sized to their own frozen
/// snapshot), as does any request naming a node the serving view has
/// never seen.
///
/// Thread-safety contract (multi-writer / multi-reader):
///
///  * READERS — `CheckAccess`, `CheckAccessBatch`, `AcquireReadView`,
///    `AuditTrail` and every AccessReadView method are safe to call from
///    any number of threads concurrently, including concurrently with
///    writers and with the compaction thread. The view read path
///    takes no lock; the engine facade additionally locks a small mutex
///    per decision to feed the audit ring (set audit_capacity = 0 to
///    remove that too).
///  * MUTATIONS — `AddEdge`, `RemoveEdge`, `AddNode`, `RefreshPolicies`
///    (and their Submit* siblings) are safe to call from any number of
///    threads concurrently. With EngineOptions::async_mutations (the
///    default) every mutation is routed through the engine's
///    MutationQueue (engine/write_queue.h): SubmitX() enqueues and
///    returns a WriteTicket; the legacy synchronous calls are
///    Submit+Wait shims over the same queue, so concurrent callers are
///    serialized by submission order and committed in group-commit
///    batches (one WAL fsync + one published view per batch). This
///    retires the old contract that pushed writer serialization onto
///    callers. With async_mutations off the legacy inline path runs
///    instead, and mutations revert to requiring external
///    serialization (the mutex-serialized baseline the concurrency
///    bench measures).
///  * CONTROL PLANE — `RebuildIndexes`, `Compact`, `WaitForCompaction`,
///    `EnableDurability`, `SaveSnapshot` remain one-at-a-time calls:
///    externally serialize them against each other. They are safe
///    concurrently with queued mutations (everything meets on the
///    internal writer lock), but RebuildIndexes discards staged state,
///    so interleaving it with in-flight submissions is almost never
///    what you want — FlushWrites() first. The engine's own compaction
///    thread acts as an additional *internal* writer only for the brief
///    completion swap; the internal mutex serializes it against the
///    mutation path, so writer calls remain safe (and cheap — the
///    expensive build runs outside any lock) while a compaction is in
///    flight.
///  * OUT OF SCOPE — mutating the SocialGraph or PolicyStore objects
///    directly (AddNode, SetAttribute, AddRuleFromPaths, ...) while
///    readers are in flight is not synchronized by the engine; quiesce
///    readers (or serialize externally) and follow with
///    RebuildIndexes/RefreshPolicies. Compaction is safe concurrently
///    with readers because in-flight views read the graph only through
///    size-bounded attribute-column lookups, which folding staged nodes
///    and edges never disturbs.
///
/// Generation counters: snapshot_generation() increments whenever a new
/// index bundle is published (RebuildIndexes and every completed
/// compaction), and overlay_version() on every staged mutation; the
/// overlay rebuilt from the replay journal continues the version
/// sequence, so (generation, version) pairs uniquely name every
/// published logical state. Both are frozen into each published view and
/// stamped into every AccessDecision, so callers (and the
/// reader/mutator stress tests) can tell exactly which published state
/// a decision saw. The engine-level accessors read writer-side state —
/// call them from the (quiesced — WaitForCompaction) writer, or read
/// the stamps off a view.
///
/// Policy binding happens at publication, keyed by stable RuleId: every
/// rule path is bound, its hop automaton compiled, and its automatic
/// evaluator pick computed once per PolicySnapshot (see read_view.h), so
/// the request path performs no PathExpression::ToString(), Bind, or
/// evaluator construction — only array lookups. Rules added to the
/// store after the last publish are invisible to served decisions until
/// the next *external* write-path call republishes (any mutation does,
/// or call RefreshPolicies() explicitly; a background-compaction
/// completion deliberately reuses the frozen policy snapshot — with
/// refreshed automatic picks — rather than racing the store).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "engine/policy.h"
#include "engine/read_view.h"
#include "engine/write_queue.h"
#include "graph/delta_overlay.h"
#include "storage/wal.h"

namespace sargus {

namespace storage {
struct SnapshotStamp;  // snapshot_format.h
}  // namespace storage

/// Durability configuration (storage/ subsystem; see the "Durability &
/// recovery" section of docs/ARCHITECTURE.md). An engine with
/// EnableDurability attached logs every mutation to an append-only WAL
/// and serializes its whole serving state (graph + overlay + prebuilt
/// index stack) into an atomic snapshot bundle, so OpenFromDir restores
/// a serving engine without recomputing a single index.
struct DurabilityOptions {
  /// fdatasync every WAL append (default): an acknowledged mutation
  /// survives a crash. kGroupCommit fsyncs once per queued batch —
  /// with async_mutations that is still "every acknowledged mutation
  /// survives" (tickets complete after the batch sync) at a fraction of
  /// the fsyncs; with the inline path it degrades single appends to
  /// ride the next sync. kNever trades the tail for append speed;
  /// reopen never corrupts either way (a torn tail — torn batch
  /// included — is detected and truncated).
  storage::WalSyncPolicy wal_sync = storage::WalSyncPolicy::kEveryRecord;
  /// Truncate the WAL once a bundle covering it is durably published.
  /// Tests turn this off to exercise the crash window between "bundle
  /// renamed into place" and "WAL truncated" — recovery must skip the
  /// covered records either way.
  bool truncate_wal_on_save = true;
  /// Re-save the bundle whenever a compaction completes or
  /// RebuildIndexes runs. Folds rewrite the graph and reset the overlay;
  /// without a fresh bundle the on-disk state would stop covering them.
  bool snapshot_on_compaction = true;
};

class AccessControlEngine {
 public:
  /// `graph` and `store` must outlive the engine. The engine never
  /// mutates either; AddEdge/RemoveEdge/AddNode/Compact are unavailable
  /// (they return kFailedPrecondition) because compaction must write the
  /// graph.
  AccessControlEngine(const SocialGraph& graph, const PolicyStore& store,
                      EngineOptions options = {});

  /// Mutable-graph constructor: enables AddEdge/RemoveEdge/AddNode/
  /// Compact. The engine only writes `graph` when a compaction folds the
  /// staged overlay in — with one narrow exception: AddEdge with a label
  /// *name* not yet interned interns it after full validation
  /// (snapshot-safe: label ids only grow, so no index observes it).
  AccessControlEngine(SocialGraph& graph, const PolicyStore& store,
                      EngineOptions options = {});

  /// Drains any in-flight compaction (its result is still published),
  /// then stops the compaction thread.
  ~AccessControlEngine();

  AccessControlEngine(const AccessControlEngine&) = delete;
  AccessControlEngine& operator=(const AccessControlEngine&) = delete;

  // ---- Write path (thread-safe mutations; control plane externally
  // serialized — see file comment) ------------------------------------------

  /// (Re)builds every snapshot index the configuration needs and
  /// publishes a fresh view. Call after construction (and after mutating
  /// the graph *outside* the engine). Waits out any in-flight
  /// compaction, then discards any staged overlay mutations — the
  /// overlay is defined relative to the snapshot being replaced; use
  /// Compact() to fold pending mutations in instead of dropping them.
  /// On failure the previously published view (if any) keeps serving.
  Status RebuildIndexes();

  /// Stages edge src -[label]-> dst as added and publishes a view that
  /// sees it. O(overlay size) — flat in |V| — and, under background
  /// compaction, never blocks on a rebuild even when it trips the
  /// threshold. Idempotent when the logical edge already exists.
  /// Interns an unknown label name. kInvalidArgument for out-of-range
  /// endpoints, kFailedPrecondition before RebuildIndexes or on a
  /// const-graph engine. (Mutable-graph constructor only.)
  Status AddEdge(NodeId src, NodeId dst, const std::string& label);
  Status AddEdge(NodeId src, NodeId dst, LabelId label);

  /// Stages the logical edge src -[label]-> dst as removed (withdrawing
  /// a pending add, or masking a base edge) and publishes. kNotFound
  /// when the logical edge does not exist.
  Status RemoveEdge(NodeId src, NodeId dst, const std::string& label);
  Status RemoveEdge(NodeId src, NodeId dst, LabelId label);

  /// Stages a node addition and publishes a view on which the returned
  /// id is immediately usable — no RebuildIndexes. The id is stable: a
  /// later compaction folds the node into the SocialGraph under the
  /// same id. Note RebuildIndexes() discards staged mutations including
  /// staged nodes (use Compact() to persist them first).
  Result<NodeId> AddNode();

  /// Folds every staged mutation into the SocialGraph, clears the
  /// overlay, installs a fresh (or incrementally patched) index bundle,
  /// and publishes. No-op on an empty overlay. With background
  /// compaction (default) this returns as soon as the frozen inputs are
  /// captured — the build, fold and publish happen on the compaction
  /// thread (WaitForCompaction() for synchronous semantics); a second
  /// Compact() while one is in flight makes its completion chain a
  /// follow-up that folds everything staged meanwhile. Views acquired
  /// before and
  /// after see the same logical graph; only the cost profile changes
  /// (index pruning and the join index come back online). Old views
  /// stay valid: they answer against their frozen snapshot + overlay
  /// for as long as they are held.
  Status Compact();

  /// Blocks until no compaction is building or completing. After this
  /// returns (with no interleaved writer calls), the last requested
  /// compaction's effects — folded graph, fresh snapshot, replayed
  /// overlay — are published.
  void WaitForCompaction();

  /// True while the compaction thread owns an in-flight build.
  bool compaction_in_flight() const;

  /// Rebinds the policy snapshot if the PolicyStore changed since the
  /// last publish, and publishes a view that sees it. No-op when the
  /// store is unchanged. (Any mutation republishes too — this is for
  /// policy-only changes.)
  Status RefreshPolicies();

  // ---- Async mutation surface (thread-safe from any thread) ---------------
  //
  // SubmitX() enqueues the mutation on the engine's MutationQueue and
  // returns a future-backed WriteTicket immediately; the dedicated
  // writer thread group-commits queued mutations in batches (one WAL
  // fsync + one published view per batch — see engine/write_queue.h).
  // ticket.Wait() returns the same Status the synchronous call would
  // have, plus the (generation, overlay_version) stamp the mutation
  // landed in. Works regardless of async_mutations (the option only
  // controls whether the *legacy* calls above shim through the queue).

  WriteTicket SubmitAddEdge(NodeId src, NodeId dst, const std::string& label);
  WriteTicket SubmitAddEdge(NodeId src, NodeId dst, LabelId label);
  WriteTicket SubmitRemoveEdge(NodeId src, NodeId dst,
                               const std::string& label);
  WriteTicket SubmitRemoveEdge(NodeId src, NodeId dst, LabelId label);
  /// Outcome carries the assigned id in WriteOutcome::node.
  WriteTicket SubmitAddNode();
  WriteTicket SubmitRefreshPolicies();

  /// Blocks until every mutation submitted before the call has been
  /// committed (or refused). Call before control-plane operations that
  /// discard staged state (RebuildIndexes) and before reading
  /// writer-side introspection accessors from a non-writer thread.
  void FlushWrites() { write_queue_->Flush(); }

  /// The engine-owned MPSC queue (stats(), PauseForTesting()).
  MutationQueue& write_queue() { return *write_queue_; }

  // ---- Durability (write path; externally serialized like the rest) -------

  /// Attaches a durability directory: saves an initial bundle covering
  /// the current state, opens (or creates) the WAL, and from here on
  /// logs every mutation before it returns. Requires built indexes and
  /// the mutable-graph constructor. Idempotent in effect: calling it on
  /// a directory with stale files simply publishes a fresh bundle that
  /// covers everything.
  Status EnableDurability(const std::string& dir,
                          DurabilityOptions durability = {});

  /// Serializes the current serving state into the bundle (atomic
  /// replace) and truncates the WAL it covers (unless the truncate knob
  /// is off). Also invoked automatically at every compaction completion
  /// and RebuildIndexes when snapshot_on_compaction is set.
  Status SaveSnapshot();

  /// Restores an engine from a durability directory: mmap + verify the
  /// bundle, adopt its graph into `*graph` and its indexes/overlay into
  /// the engine (no index computation), replay the WAL tail whose
  /// (generation, version) stamps the bundle does not cover, truncate
  /// any torn WAL tail, and reopen the WAL for appending. The first
  /// CheckAccess works immediately — no RebuildIndexes. Policies are
  /// not persisted: re-register them on `store` and call
  /// RefreshPolicies(). kFailedPrecondition when `options` needs an
  /// index the bundle never built (join stack, closure, backward line
  /// graph); kDataLoss on corruption.
  static Result<std::unique_ptr<AccessControlEngine>> OpenFromDir(
      const std::string& dir, SocialGraph* graph, const PolicyStore& store,
      EngineOptions options = {}, DurabilityOptions durability = {});

  bool durable() const { return durable_; }
  /// Current WAL file size in bytes (tests/benchmarks).
  uint64_t wal_size_bytes() const {
    std::lock_guard<std::mutex> lock(mutation_mu_);
    return wal_.is_open() ? wal_.size() : 0;
  }
  /// WAL records appended / fsyncs issued by appends since durability
  /// was enabled — the "one fsync per group-commit batch" tests read
  /// the pair. FlushWrites() first when producers are in flight.
  uint64_t wal_append_count() const {
    std::lock_guard<std::mutex> lock(mutation_mu_);
    return wal_.is_open() ? wal_.append_count() : 0;
  }
  uint64_t wal_sync_count() const {
    std::lock_guard<std::mutex> lock(mutation_mu_);
    return wal_.is_open() ? wal_.sync_count() : 0;
  }

  // ---- Read path (thread-safe, lock-free except the audit ring) -----------

  /// The currently published view, or null before the first successful
  /// RebuildIndexes. Lock-free in steady state: each thread caches the
  /// view it last acquired, keyed by an atomic publication sequence, so
  /// the publication mutex is touched only on the first acquire after a
  /// republication. Pin the result to answer many requests against one
  /// frozen state — and to skip the audit ring.
  std::shared_ptr<const AccessReadView> AcquireReadView() const;

  /// Decides `request` against the current view and records the decision
  /// in the audit ring. Thread-safe; concurrent with one writer.
  Result<AccessDecision> CheckAccess(const AccessRequest& request) const;

  /// Batch decision against one view acquisition and one scratch
  /// context; results are positional (out[i] answers requests[i]). See
  /// AccessReadView::CheckAccessBatch.
  std::vector<Result<AccessDecision>> CheckAccessBatch(
      std::span<const AccessRequest> requests) const;

  /// Most recent decisions, oldest first (bounded by audit_capacity).
  /// Thread-safe.
  std::vector<AccessDecision> AuditTrail() const;

  // ---- Introspection (writer-side state; see file comment) ----------------

  /// The pending-mutation set (empty once compacted). Writer-side: the
  /// master copy mutations stage into, not the frozen copy views carry.
  const DeltaOverlay& overlay() const { return overlay_; }

  /// Bumped on every published index bundle (RebuildIndexes and every
  /// completed compaction). Safe to read from any thread.
  uint64_t snapshot_generation() const {
    return snapshot_generation_.load(std::memory_order_acquire);
  }
  /// Forwarded DeltaOverlay::version() of the writer-side overlay.
  uint64_t overlay_version() const { return overlay_.version(); }

  bool indexes_built() const { return built_; }
  const EngineOptions& options() const { return options_; }

  /// The threshold auto-compaction actually uses: the configured value,
  /// or max(1024, |E|/16) re-derived from each snapshot under the
  /// kCompactThresholdAuto default. 0 = auto-compaction off.
  size_t effective_compact_threshold() const {
    return effective_compact_threshold_;
  }

  /// Completed compactions that took the incremental index-patch path
  /// vs. a full rebuild (writer-side; for tests and benchmarks).
  uint64_t incremental_compactions() const { return incremental_compactions_; }
  uint64_t full_compactions() const { return full_compactions_; }

  /// Outcome of the most recently *finished* background compaction.
  /// Compact() itself returns before the build runs, so a failed build
  /// (the old snapshot keeps serving; staged mutations stay intact) is
  /// only visible here — check it after WaitForCompaction() if you need
  /// to know the fold really happened. Thread-safe.
  Status last_compaction_status() const {
    std::lock_guard<std::mutex> lock(mutation_mu_);
    return last_compaction_status_;
  }

  /// Test hook: runs on the compaction thread after the frozen inputs
  /// are captured and before the build starts. Lets tests hold a
  /// compaction open deterministically while the writer stages
  /// straddling mutations. Set before triggering the compaction; not
  /// synchronized against an in-flight one.
  void SetCompactionBuildHookForTesting(std::function<void()> hook) {
    comp_build_hook_ = std::move(hook);
  }

 private:
  friend class MutationQueue;  // calls ApplyWriteBatch from the writer thread

  /// One replayable writer operation staged while a compaction build is
  /// in flight. Replaying the sequence against the folded graph
  /// re-derives the overlay relative to the *new* snapshot.
  struct JournalOp {
    enum class Kind : uint8_t { kAddEdge, kRemoveEdge, kAddNode };
    Kind kind = Kind::kAddEdge;
    NodeId src = 0;
    NodeId dst = 0;
    LabelId label = kInvalidLabel;
  };

  /// Frozen inputs one background compaction builds against.
  struct CompactionJob {
    std::shared_ptr<const SnapshotIndexes> prev_idx;
    DeltaOverlay frozen;
    EdgeId first_new_edge = 0;
  };

  /// Builds a view from the current bundles + overlay and publishes it
  /// (release store; readers acquire).
  void PublishView();
  /// Rebuilds policy_ when the store's rule/resource counts moved;
  /// returns true when it did.
  bool RefreshPolicySnapshotIfStale();
  /// Pushes an already-made decision into the audit ring (thread-safe).
  void RecordAudit(const AccessDecision& decision) const;
  /// Ring push; caller holds audit_mu_ and checked audit_capacity > 0.
  void PushAuditLocked(const AccessDecision& decision) const;

  /// Shared AddEdge/RemoveEdge staging logic after label resolution;
  /// journals the op when a compaction build is in flight.
  Status StageAddEdge(NodeId src, NodeId dst, LabelId label);
  Status StageRemoveEdge(NodeId src, NodeId dst, LabelId label);

  /// The group-commit body, called by the MutationQueue writer thread
  /// (and by WAL replay): applies `ops` in order under ONE mutation_mu_
  /// acquisition, collecting each op's WAL record as it stages, then
  /// appends the whole record batch with one Wal::AppendBatch (one
  /// fsync) and publishes ONE view. outcomes[i] receives op i's status
  /// and the per-op (generation, overlay_version) stamp — identical to
  /// the stamp op i's WAL record carries. Errors are isolated per op
  /// (a bad op fails only its own outcome) except batch-wide failures
  /// (WAL append, synchronous compaction), which overwrite every
  /// previously-OK outcome in the batch.
  void ApplyWriteBatch(std::span<const WriteOp> ops, WriteOutcome* outcomes);
  /// Stages one op (no WAL, no publish); fills `out`'s stamp/node and
  /// appends the op's WAL record to `wal_batch` on success. Caller
  /// holds mutation_mu_.
  Status ApplyOneLocked(const WriteOp& op, WriteOutcome* out,
                        std::vector<storage::WalRecord>* wal_batch);
  /// Builds one stamped record from the current writer state. Caller
  /// holds mutation_mu_; pass kInvalidLabel for label-less kinds.
  storage::WalRecord MakeWalRecordLocked(storage::WalRecord::Kind kind,
                                         NodeId src, NodeId dst,
                                         LabelId label) const;
  /// Appends `recs` with one gathered write + at most one fsync
  /// (Wal::AppendBatch). No-op unless durable (and not mid-replay).
  /// Caller holds mutation_mu_.
  Status WalCommitBatchLocked(std::span<const storage::WalRecord> recs);

  /// Is (src, dst, label) a live edge of the base snapshot? Uses the
  /// graph's triple map when materialized, else the CSR adjacency (so a
  /// freshly opened bundle never pays the map rebuild on the WAL-replay
  /// path).
  bool EdgeInBaseLocked(NodeId src, NodeId dst, LabelId label) const;
  /// Post-staging tail: kick/perform compaction at threshold, publish.
  Status FinishMutation();
  /// Mutation-entry guard: mutable graph + built indexes.
  Status CheckMutable() const;
  /// Staged endpoints must lie inside the logical node range (snapshot
  /// + staged node additions).
  Status CheckEndpoints(NodeId src, NodeId dst) const;
  size_t LogicalNumNodesLocked() const;

  /// Builds the next bundle for `job`: the incremental patch when
  /// applicable, the full merged rebuild otherwise. Lock-free — this is
  /// the expensive part both compaction modes share. Sets
  /// `*incremental` to which path ran.
  Result<std::shared_ptr<const SnapshotIndexes>> BuildNextBundle(
      const CompactionJob& job, bool* incremental) const;
  /// Applies `frozen` to the mutable graph: staged nodes first, then
  /// removals, then additions in the frozen copy's iteration order (the
  /// order BuildMerged predicted edge ids in).
  void FoldOverlayIntoGraph(const DeltaOverlay& frozen);
  /// Synchronous compaction (background_compaction off, and the
  /// threshold path in that mode). Caller holds mutation_mu_.
  Status CompactBlockingLocked();
  /// Captures the frozen inputs, starts/wakes the compaction thread.
  /// Caller holds mutation_mu_.
  void StartBackgroundCompactionLocked();
  /// Completion: fold, swap bundles, replay the journal, publish.
  /// Runs on the compaction thread under mutation_mu_. Returns a
  /// follow-up job when the replayed overlay must compact again (an
  /// explicit Compact() arrived mid-build, or the leftovers already
  /// exceed the threshold) — the worker chains straight into it, and
  /// WaitForCompaction() drains the whole chain.
  std::optional<CompactionJob> FinishCompactionLocked(
      CompactionJob& job, std::shared_ptr<const SnapshotIndexes> bundle,
      bool incremental);
  /// Re-derives effective_compact_threshold_ from the current snapshot.
  void RecomputeEffectiveThreshold();
  /// SaveSnapshot body; caller holds mutation_mu_.
  Status SaveSnapshotLocked();
  /// Appends one mutation record stamped with the current (generation,
  /// overlay version). No-op unless durable (and not mid-replay). Caller
  /// holds mutation_mu_; pass kInvalidLabel for label-less kinds.
  Status WalLogLocked(storage::WalRecord::Kind kind, NodeId src, NodeId dst,
                      LabelId label);
  /// Re-applies the uncovered suffix of `records` through
  /// ApplyWriteBatch in bounded batches (with WAL re-appends
  /// suppressed), so recovery pays one view publication per batch
  /// instead of one per record. OpenFromDir only.
  Status ReplayWal(std::span<const storage::WalRecord> records,
                   const storage::SnapshotStamp& covered);
  /// RebuildIndexes body; caller holds mutation_mu_.
  Status RebuildIndexesLocked();
  /// Dedicated compaction-thread main loop.
  void CompactionWorker();

  const SocialGraph* graph_;
  /// Non-null only for the mutable-graph constructor; written solely by
  /// compaction folds.
  SocialGraph* mutable_graph_ = nullptr;
  const PolicyStore* store_;
  EngineOptions options_;

  bool built_ = false;
  std::atomic<uint64_t> snapshot_generation_{0};
  size_t effective_compact_threshold_ = 0;
  uint64_t incremental_compactions_ = 0;
  uint64_t full_compactions_ = 0;

  /// Writer-side pending mutations relative to the current snapshot.
  /// Each publish freezes a copy into the view; readers never touch
  /// this object.
  DeltaOverlay overlay_;
  /// Ops staged while a compaction build is in flight (building_), in
  /// order; replayed at completion. Guarded by mutation_mu_.
  std::vector<JournalOp> journal_;
  bool building_ = false;  // guarded by mutation_mu_
  /// Explicit Compact() arrived while a build was in flight: fold the
  /// journal leftovers in a chained compaction at completion.
  bool recompact_requested_ = false;  // guarded by mutation_mu_

  /// Immutable bundles shared by published views (see read_view.h).
  std::shared_ptr<const SnapshotIndexes> idx_;
  std::shared_ptr<const PolicySnapshot> policy_;

  /// Serializes writer-side state between the external writer and the
  /// compaction thread's completion swap. External write-path calls
  /// hold it for their whole (cheap) body; the compaction thread holds
  /// it only for freeze-capture and the completion swap — never during
  /// the build itself. Lock order: mutation_mu_ before comp_mu_.
  mutable std::mutex mutation_mu_;

  /// Compaction-thread machinery. comp_state_/comp_shutdown_/comp_job_
  /// are guarded by comp_mu_; the worker is started lazily on the first
  /// background compaction.
  enum class CompState { kIdle, kQueued, kBuilding };
  mutable std::mutex comp_mu_;
  mutable std::condition_variable comp_cv_;
  CompState comp_state_ = CompState::kIdle;
  bool comp_shutdown_ = false;
  CompactionJob comp_job_;
  std::thread comp_thread_;
  std::function<void()> comp_build_hook_;
  Status last_compaction_status_ = OkStatus();  // guarded by mutation_mu_

  /// View publication. std::atomic<std::shared_ptr> would be the
  /// textbook spelling, but libstdc++'s implementation guards the raw
  /// pointer with an embedded spinlock TSan cannot see through, so the
  /// stress suite would drown in false positives. Instead: the slot is
  /// a plain shared_ptr behind a mutex, and `publish_seq_` (bumped
  /// after every store, release order) lets AcquireReadView serve a
  /// per-thread cached copy without touching the mutex until the next
  /// republication. Distinct engines at a recycled address are told
  /// apart by `engine_id_`.
  const uint64_t engine_id_;
  std::atomic<uint64_t> publish_seq_{0};
  mutable std::mutex view_mu_;
  std::shared_ptr<const AccessReadView> view_;  // guarded by view_mu_

  /// Durability state. Written under mutation_mu_ (setup happens before
  /// the engine is shared); WAL appends run inside the mutation path,
  /// which already holds mutation_mu_.
  bool durable_ = false;
  bool wal_replaying_ = false;
  std::string durability_dir_;
  DurabilityOptions durability_;
  storage::WalWriter wal_;

  /// The MPSC write front end (engine/write_queue.h). Constructed with
  /// the engine (its writer thread starts lazily on the first Submit);
  /// the destructor shuts it down *before* the compaction thread, since
  /// applying a batch can kick a compaction.
  std::unique_ptr<MutationQueue> write_queue_;

  /// Audit ring, shared by all reader threads.
  mutable std::mutex audit_mu_;
  mutable std::vector<AccessDecision> audit_;
  mutable size_t audit_next_ = 0;
  mutable bool audit_wrapped_ = false;
};

}  // namespace sargus

#endif  // SARGUS_ENGINE_ACCESS_ENGINE_H_
