#ifndef SARGUS_ENGINE_ACCESS_ENGINE_H_
#define SARGUS_ENGINE_ACCESS_ENGINE_H_

/// \file access_engine.h
/// \brief AccessControlEngine: the write path + view publisher.
///
/// The engine wires a SocialGraph and a PolicyStore to the full index +
/// evaluator stack and splits the API into two halves:
///
///  * a **read path** served by immutable AccessReadViews (see
///    read_view.h): `CheckAccess(AccessRequest)` / `CheckAccessBatch`
///    acquire the current view (lock-free in steady state via a
///    per-thread cache), decide lock-free against its frozen (snapshot
///    + indexes + overlay + compiled rules) bundle, and record the
///    decision in the audit ring;
///    `AcquireReadView()` hands the view out directly for callers that
///    want to pin one state across many calls (or skip the audit ring's
///    mutex entirely);
///  * a **write path** — RebuildIndexes, AddEdge/RemoveEdge, Compact,
///    RefreshPolicies — that builds the *next* view off the serving path
///    and publishes it with an atomic swap. In-flight readers drain on
///    the old view, which keeps answering against its frozen state for
///    as long as anyone holds it.
///
/// Lifecycle: construct, RebuildIndexes(), serve. Graph mutations go
/// through the engine's AddEdge/RemoveEdge (requires the mutable-graph
/// constructor): each is an O(overlay) staged write — a DeltaOverlay
/// delta plus a republished view carrying a frozen overlay copy —
/// visible to the very next acquired view, never a rebuild
/// (bench_dynamic.cc charts the cost model: flat in |V|, linear only in
/// the bounded overlay size). When the overlay exceeds
/// EngineOptions::compact_threshold, the engine automatically
/// Compact()s: folds the staged mutations into the SocialGraph, clears
/// the overlay, and rebuilds every snapshot index.
/// kOnlineBfs/kOnlineDfs/kBidirectional only need the CSR; kJoinIndex
/// needs the whole stack and fails with kFailedPrecondition if it is
/// missing.
///
/// Snapshot-consistency contract: every published view owns the pairing
/// between its snapshot indexes and its frozen overlay. While a view's
/// overlay is non-empty, (a) its traversal evaluators merge the overlay
/// into every neighbor expansion, (b) index-based pruning runs in
/// conservative mode (pending insertions suspend closure fast-denies —
/// see index/prefilter_validity.h), and (c) requests whose compiled plan
/// picked the join index are re-routed to overlay-aware online search,
/// so every evaluator keeps returning the same grant/deny. Mutating the
/// SocialGraph directly (rather than through the engine) breaks this
/// pairing; call RebuildIndexes again if you must.
///
/// Thread-safety contract (single-writer / multi-reader):
///
///  * READERS — `CheckAccess`, `CheckAccessBatch`, `AcquireReadView`,
///    `AuditTrail` and every AccessReadView method are safe to call from
///    any number of threads concurrently, including concurrently with
///    one writer. The view read path takes no lock; the engine facade
///    additionally locks a small mutex per decision to feed the audit
///    ring (set audit_capacity = 0 to remove that too).
///  * WRITERS — `RebuildIndexes`, `AddEdge`, `RemoveEdge`, `Compact`,
///    `RefreshPolicies` must be externally serialized against each
///    other: at most one writer at a time. They never block readers.
///  * OUT OF SCOPE — mutating the SocialGraph or PolicyStore objects
///    directly (AddNode, SetAttribute, AddRuleFromPaths, ...) while
///    readers are in flight is not synchronized by the engine; quiesce
///    readers (or serialize externally) and follow with
///    RebuildIndexes/RefreshPolicies. Compact() is safe concurrently
///    with readers because in-flight views read only the graph's node
///    count and attribute columns, which compaction never touches.
///
/// Generation counters: snapshot_generation() increments on every
/// successful RebuildIndexes (including those triggered by Compact), and
/// overlay_version() on every staged mutation. Both are frozen into each
/// published view and stamped into every AccessDecision, so callers
/// (and the reader/mutator stress test) can tell exactly which published
/// state a decision saw. The engine-level accessors read writer-side
/// state — call them from the writer, or read the stamps off a view.
///
/// Policy binding happens at publication, keyed by stable RuleId: every
/// rule path is bound, its hop automaton compiled, and its automatic
/// evaluator pick computed once per PolicySnapshot (see read_view.h), so
/// the request path performs no PathExpression::ToString(), Bind, or
/// evaluator construction — only array lookups. Rules added to the
/// store after the last publish are invisible to served decisions until
/// the next write-path call republishes (any mutation does, or call
/// RefreshPolicies() explicitly).

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/policy.h"
#include "engine/read_view.h"
#include "graph/delta_overlay.h"

namespace sargus {

class AccessControlEngine {
 public:
  /// `graph` and `store` must outlive the engine. The engine never
  /// mutates either; AddEdge/RemoveEdge/Compact are unavailable (they
  /// return kFailedPrecondition) because compaction must write the graph.
  AccessControlEngine(const SocialGraph& graph, const PolicyStore& store,
                      EngineOptions options = {});

  /// Mutable-graph constructor: enables AddEdge/RemoveEdge/Compact. The
  /// engine only writes `graph` inside Compact() (applying the staged
  /// mutations) — with one narrow exception: AddEdge with a label
  /// *name* not yet interned interns it after full validation
  /// (snapshot-safe: label ids only grow, so no index observes it).
  AccessControlEngine(SocialGraph& graph, const PolicyStore& store,
                      EngineOptions options = {});
  ~AccessControlEngine();

  AccessControlEngine(const AccessControlEngine&) = delete;
  AccessControlEngine& operator=(const AccessControlEngine&) = delete;

  // ---- Write path (externally serialized; see file comment) ---------------

  /// (Re)builds every snapshot index the configuration needs and
  /// publishes a fresh view. Call after construction (and after mutating
  /// the graph *outside* the engine). Discards any staged overlay
  /// mutations — the overlay is defined relative to the snapshot being
  /// replaced; use Compact() to fold pending mutations in instead of
  /// dropping them. On failure the previously published view (if any)
  /// keeps serving.
  Status RebuildIndexes();

  /// Stages edge src -[label]-> dst as added and publishes a view that
  /// sees it. O(overlay size) — flat in |V| — unless it trips
  /// auto-compaction. Idempotent when the logical edge already exists.
  /// Interns an unknown label name. kInvalidArgument for out-of-range
  /// endpoints, kFailedPrecondition before RebuildIndexes or on a
  /// const-graph engine. (Mutable-graph constructor only.)
  Status AddEdge(NodeId src, NodeId dst, const std::string& label);
  Status AddEdge(NodeId src, NodeId dst, LabelId label);

  /// Stages the logical edge src -[label]-> dst as removed (withdrawing
  /// a pending add, or masking a base edge) and publishes. kNotFound
  /// when the logical edge does not exist.
  Status RemoveEdge(NodeId src, NodeId dst, const std::string& label);
  Status RemoveEdge(NodeId src, NodeId dst, LabelId label);

  /// Folds every staged mutation into the SocialGraph, clears the
  /// overlay, rebuilds the snapshot indexes, and publishes. No-op on an
  /// empty overlay. Views acquired before and after see the same logical
  /// graph; only the cost profile changes (index pruning and the join
  /// index come back online). Old views stay valid: they answer against
  /// their frozen snapshot + overlay for as long as they are held.
  Status Compact();

  /// Rebinds the policy snapshot if the PolicyStore changed since the
  /// last publish, and publishes a view that sees it. No-op when the
  /// store is unchanged. (Any mutation republishes too — this is for
  /// policy-only changes.)
  Status RefreshPolicies();

  // ---- Read path (thread-safe, lock-free except the audit ring) -----------

  /// The currently published view, or null before the first successful
  /// RebuildIndexes. Lock-free in steady state: each thread caches the
  /// view it last acquired, keyed by an atomic publication sequence, so
  /// the publication mutex is touched only on the first acquire after a
  /// republication. Pin the result to answer many requests against one
  /// frozen state — and to skip the audit ring.
  std::shared_ptr<const AccessReadView> AcquireReadView() const;

  /// Decides `request` against the current view and records the decision
  /// in the audit ring. Thread-safe; concurrent with one writer.
  Result<AccessDecision> CheckAccess(const AccessRequest& request) const;

  /// Deprecated shim for the pre-view positional API; equivalent to
  /// CheckAccess(AccessRequest{requester, resource}). Prefer the
  /// AccessRequest overload (per-request witness/evaluator control).
  Result<AccessDecision> CheckAccess(NodeId requester,
                                     ResourceId resource) const;

  /// Batch decision against one view acquisition and one scratch
  /// context; results are positional (out[i] answers requests[i]). See
  /// AccessReadView::CheckAccessBatch.
  std::vector<Result<AccessDecision>> CheckAccessBatch(
      std::span<const AccessRequest> requests) const;

  /// Most recent decisions, oldest first (bounded by audit_capacity).
  /// Thread-safe.
  std::vector<AccessDecision> AuditTrail() const;

  // ---- Introspection (writer-side state; see file comment) ----------------

  /// The pending-mutation set (empty once compacted). Writer-side: the
  /// master copy mutations stage into, not the frozen copy views carry.
  const DeltaOverlay& overlay() const { return overlay_; }

  /// Bumped by every successful RebuildIndexes (incl. via Compact).
  uint64_t snapshot_generation() const { return snapshot_generation_; }
  /// Forwarded DeltaOverlay::version() of the writer-side overlay.
  uint64_t overlay_version() const { return overlay_.version(); }

  bool indexes_built() const { return built_; }
  const EngineOptions& options() const { return options_; }

 private:
  /// Builds a view from the current bundles + overlay and publishes it
  /// (release store; readers acquire).
  void PublishView();
  /// Rebuilds policy_ when the store's rule/resource counts moved;
  /// returns true when it did.
  bool RefreshPolicySnapshotIfStale();
  /// Pushes an already-made decision into the audit ring (thread-safe).
  void RecordAudit(const AccessDecision& decision) const;
  /// Ring push; caller holds audit_mu_ and checked audit_capacity > 0.
  void PushAuditLocked(const AccessDecision& decision) const;

  /// Shared AddEdge/RemoveEdge staging logic after label resolution.
  Status StageAddEdge(NodeId src, NodeId dst, LabelId label);
  Status StageRemoveEdge(NodeId src, NodeId dst, LabelId label);
  /// Post-staging tail: auto-compact at threshold, else publish.
  Status FinishMutation();
  /// Mutation-entry guard: mutable graph + built indexes.
  Status CheckMutable() const;
  /// Staged endpoints must lie inside the current snapshot.
  Status CheckEndpoints(NodeId src, NodeId dst) const;

  const SocialGraph* graph_;
  /// Non-null only for the mutable-graph constructor; written solely by
  /// Compact().
  SocialGraph* mutable_graph_ = nullptr;
  const PolicyStore* store_;
  EngineOptions options_;

  bool built_ = false;
  uint64_t snapshot_generation_ = 0;
  /// Writer-side pending mutations relative to the current snapshot.
  /// Each publish freezes a copy into the view; readers never touch
  /// this object.
  DeltaOverlay overlay_;

  /// Immutable bundles shared by published views (see read_view.h).
  std::shared_ptr<const SnapshotIndexes> idx_;
  std::shared_ptr<const PolicySnapshot> policy_;

  /// View publication. std::atomic<std::shared_ptr> would be the
  /// textbook spelling, but libstdc++'s implementation guards the raw
  /// pointer with an embedded spinlock TSan cannot see through, so the
  /// stress suite would drown in false positives. Instead: the slot is
  /// a plain shared_ptr behind a mutex, and `publish_seq_` (bumped
  /// after every store, release order) lets AcquireReadView serve a
  /// per-thread cached copy without touching the mutex until the next
  /// republication. Distinct engines at a recycled address are told
  /// apart by `engine_id_`.
  const uint64_t engine_id_;
  std::atomic<uint64_t> publish_seq_{0};
  mutable std::mutex view_mu_;
  std::shared_ptr<const AccessReadView> view_;  // guarded by view_mu_

  /// Audit ring, shared by all reader threads.
  mutable std::mutex audit_mu_;
  mutable std::vector<AccessDecision> audit_;
  mutable size_t audit_next_ = 0;
  mutable bool audit_wrapped_ = false;
};

}  // namespace sargus

#endif  // SARGUS_ENGINE_ACCESS_ENGINE_H_
