#ifndef SARGUS_ENGINE_ACCESS_ENGINE_H_
#define SARGUS_ENGINE_ACCESS_ENGINE_H_

/// \file access_engine.h
/// \brief AccessControlEngine: the end-to-end facade.
///
/// Wires a SocialGraph and a PolicyStore to the full index + evaluator
/// stack: CheckAccess(requester, resource) looks up the resource, walks
/// its eagerly-bound rules, dispatches to the pre-picked (and, when
/// configured, prefilter-wrapped) evaluator, and records the decision in
/// a bounded audit ring.
///
/// Lifecycle: construct, RebuildIndexes(), serve CheckAccess. After any
/// graph mutation call RebuildIndexes() again — every index is a snapshot
/// (the cost model bench_dynamic.cc measures). kOnlineBfs/kOnlineDfs/
/// kBidirectional only need the CSR; kJoinIndex needs the whole stack and
/// fails with kFailedPrecondition if it is missing.
///
/// Policy binding happens at RebuildIndexes, keyed by stable RuleId:
/// every rule path is bound, its hop automaton compiled, and its
/// evaluator chosen once, so the request path performs no
/// PathExpression::ToString(), Bind, or evaluator construction — only
/// array lookups. Rules added to the store after RebuildIndexes are
/// compiled on first use (once), not per request.

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/policy.h"
#include "graph/csr.h"
#include "graph/line_graph.h"
#include "index/base_tables.h"
#include "index/cluster_index.h"
#include "index/line_oracle.h"
#include "index/transitive_closure.h"
#include "query/evaluator.h"
#include "query/join_evaluator.h"

namespace sargus {

enum class EvaluatorChoice {
  /// Join index when built and the expression expands modestly; online
  /// BFS otherwise. The paper's deployment advice, codified.
  kAuto,
  kOnlineBfs,
  kOnlineDfs,
  kBidirectional,
  kJoinIndex,
};

struct EngineOptions {
  EvaluatorChoice evaluator = EvaluatorChoice::kAuto;
  /// Build an (undirected) transitive closure and use it as a fast-deny
  /// prefilter in front of the chosen evaluator.
  bool use_closure_prefilter = false;
  /// Ask evaluators for witness paths on grants.
  bool want_witness = false;
  /// Build the line graph with backward orientations (required when any
  /// policy uses `label-[a,b]` steps and the join index may serve it).
  bool line_graph_backward = false;
  /// kAuto sends expressions expanding beyond this many line queries to
  /// online search instead of the join index.
  uint64_t auto_max_expansions = 64;
  JoinIndexOptions join_options;
  /// Decisions kept in the audit ring.
  size_t audit_capacity = 1024;
};

struct AccessDecision {
  bool granted = false;
  NodeId requester = 0;
  ResourceId resource = 0;
  /// Rule that granted access (unset on denies and owner grants).
  std::optional<RuleId> matched_rule;
  /// True when requester == owner (always granted, no rule consulted).
  bool owner_access = false;
  /// Evaluator work, summed over all expressions tried.
  EvalStats stats;
  /// Witness path for the matched expression (when requested).
  std::vector<NodeId> witness;
  /// name() of the evaluator that produced the final verdict.
  std::string_view evaluator_name;
};

class AccessControlEngine {
 public:
  /// `graph` and `store` must outlive the engine. The engine never
  /// mutates either.
  AccessControlEngine(const SocialGraph& graph, const PolicyStore& store,
                      EngineOptions options = {});
  ~AccessControlEngine();

  AccessControlEngine(const AccessControlEngine&) = delete;
  AccessControlEngine& operator=(const AccessControlEngine&) = delete;

  /// (Re)builds every snapshot index the configuration needs. Call after
  /// construction and after any graph mutation.
  Status RebuildIndexes();

  /// Decides whether `requester` may access `resource`.
  Result<AccessDecision> CheckAccess(NodeId requester, ResourceId resource);

  /// Most recent decisions, oldest first (bounded by audit_capacity).
  std::vector<AccessDecision> AuditTrail() const;

  bool indexes_built() const { return built_; }
  const EngineOptions& options() const { return options_; }

 private:
  /// One rule path, bound and wired at compile time. `bound` is
  /// heap-allocated so the pointer handed to queries stays stable;
  /// `evaluator` is the picked engine (prefilter-wrapped when enabled),
  /// owned by the engine. A failed bind keeps its status here so rule
  /// disjunction semantics can surface it only when nothing grants.
  struct CompiledPath {
    Status bind_status = OkStatus();
    std::unique_ptr<BoundPathExpression> bound;
    const Evaluator* evaluator = nullptr;
  };
  struct CompiledRule {
    bool compiled = false;
    std::vector<CompiledPath> paths;
  };

  const Evaluator* PickEvaluator(const BoundPathExpression& expr) const;
  /// Returns the closure-prefilter wrapper around `base` (creating it on
  /// first need) when the prefilter is configured, `base` otherwise.
  const Evaluator* WithPrefilter(const Evaluator* base);
  /// Binds + wires every path of `id` once; cheap lookup afterwards.
  const CompiledRule& EnsureCompiled(RuleId id);

  const SocialGraph* graph_;
  const PolicyStore* store_;
  EngineOptions options_;

  bool built_ = false;
  CsrSnapshot csr_;
  LineGraph lg_;
  std::unique_ptr<LineReachabilityOracle> oracle_;
  std::unique_ptr<ClusterJoinIndex> cluster_;
  BaseTables tables_;
  std::unique_ptr<TransitiveClosure> closure_;

  std::unique_ptr<Evaluator> online_bfs_;
  std::unique_ptr<Evaluator> online_dfs_;
  std::unique_ptr<Evaluator> bidirectional_;
  std::unique_ptr<Evaluator> join_;
  // Closure-prefilter wrappers, one per wrapped base evaluator, built at
  // compile time (not per request).
  std::unordered_map<const Evaluator*, std::unique_ptr<Evaluator>>
      prefiltered_;

  // Eagerly bound rules, indexed by RuleId.
  std::vector<CompiledRule> compiled_rules_;

  // Audit ring.
  std::vector<AccessDecision> audit_;
  size_t audit_next_ = 0;
  bool audit_wrapped_ = false;
};

}  // namespace sargus

#endif  // SARGUS_ENGINE_ACCESS_ENGINE_H_
