#ifndef SARGUS_ENGINE_POLICY_H_
#define SARGUS_ENGINE_POLICY_H_

/// \file policy.h
/// \brief PolicyStore: resources, ownership, and access rules.
///
/// A resource belongs to one owner node. Each rule on a resource is a
/// *disjunction* of path expressions: access is granted when any of the
/// resource's rules has any expression matched by a path from the owner
/// to the requester. A resource with no rules is owner-only
/// (default-deny).
///
/// The store is graph-independent — expressions are parsed (so syntax
/// errors surface at rule-authoring time) but bound to a concrete graph
/// lazily by the AccessControlEngine.

#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "core/path_expression.h"

namespace sargus {

class PolicyStore {
 public:
  struct Resource {
    NodeId owner = 0;
    std::string name;
    std::vector<RuleId> rules;
  };

  struct Rule {
    ResourceId resource = 0;
    std::vector<PathExpression> paths;
  };

  /// Registers a resource owned by `owner` and returns its id.
  ResourceId RegisterResource(NodeId owner, std::string name);

  /// Parses each path expression and attaches the rule to `resource`.
  /// kNotFound for an unknown resource, kInvalidArgument for an empty
  /// path list or any syntax error (no partial rule is stored).
  Result<RuleId> AddRuleFromPaths(ResourceId resource,
                                  const std::vector<std::string>& paths);

  bool HasResource(ResourceId id) const { return id < resources_.size(); }
  const Resource& resource(ResourceId id) const { return resources_[id]; }
  const Rule& rule(RuleId id) const { return rules_[id]; }
  size_t NumResources() const { return resources_.size(); }
  size_t NumRules() const { return rules_.size(); }

 private:
  std::vector<Resource> resources_;
  std::vector<Rule> rules_;
};

}  // namespace sargus

#endif  // SARGUS_ENGINE_POLICY_H_
