#include <gtest/gtest.h>

#include "graph/social_graph.h"

namespace sargus {
namespace {

TEST(SocialGraph, AddNodesAndEdges) {
  SocialGraph g;
  EXPECT_EQ(g.NumNodes(), 0u);
  const NodeId a = g.AddNode();
  const NodeId b = g.AddNode();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(g.NumNodes(), 2u);

  auto e = g.AddEdge(a, b, "friend");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.IsLiveEdge(*e));
  EXPECT_EQ(g.edge(*e).src, a);
  EXPECT_EQ(g.edge(*e).dst, b);
  EXPECT_EQ(g.labels().ToString(g.edge(*e).label), "friend");
}

TEST(SocialGraph, DuplicateEdgesCoalesce) {
  SocialGraph g;
  g.AddNode();
  g.AddNode();
  auto e1 = g.AddEdge(0, 1, "friend");
  auto e2 = g.AddEdge(0, 1, "friend");
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(*e1, *e2);
  EXPECT_EQ(g.NumEdges(), 1u);
  // Different label: a genuinely new parallel edge.
  auto e3 = g.AddEdge(0, 1, "colleague");
  ASSERT_TRUE(e3.ok());
  EXPECT_NE(*e1, *e3);
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(SocialGraph, AddEdgeValidation) {
  SocialGraph g;
  g.AddNode();
  auto bad = g.AddEdge(0, 5, "friend");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  auto bad_label = g.AddEdge(0, 0, LabelId{3});
  ASSERT_FALSE(bad_label.ok());
  EXPECT_EQ(bad_label.status().code(), StatusCode::kInvalidArgument);
}

TEST(SocialGraph, RemoveEdgeTombstones) {
  SocialGraph g;
  g.AddNode();
  g.AddNode();
  const EdgeId e = *g.AddEdge(0, 1, "friend");
  ASSERT_TRUE(g.RemoveEdge(e).ok());
  EXPECT_FALSE(g.IsLiveEdge(e));
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.EdgeSlotCount(), 1u);  // slot survives
  // Double remove fails.
  EXPECT_EQ(g.RemoveEdge(e).code(), StatusCode::kNotFound);
  // Re-adding gets a fresh slot.
  const EdgeId e2 = *g.AddEdge(0, 1, "friend");
  EXPECT_NE(e, e2);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(SocialGraph, Attributes) {
  SocialGraph g;
  g.AddNode();
  g.AddNode();
  ASSERT_TRUE(g.SetAttribute(0, "age", 25).ok());
  EXPECT_EQ(g.GetAttribute(0, "age"), std::optional<int64_t>(25));
  EXPECT_EQ(g.GetAttribute(1, "age"), std::nullopt);   // unset
  EXPECT_EQ(g.GetAttribute(0, "height"), std::nullopt);  // unknown attr
  // Overwrite.
  ASSERT_TRUE(g.SetAttribute(0, "age", 26).ok());
  EXPECT_EQ(g.GetAttribute(0, "age"), std::optional<int64_t>(26));
  // Out of range node.
  EXPECT_EQ(g.SetAttribute(9, "age", 1).code(), StatusCode::kInvalidArgument);
  // Attribute added after nodes exist works for later nodes too.
  const NodeId c = g.AddNode();
  EXPECT_EQ(g.GetAttribute(c, "age"), std::nullopt);
  ASSERT_TRUE(g.SetAttribute(c, "age", 99).ok());
  EXPECT_EQ(g.GetAttribute(c, "age"), std::optional<int64_t>(99));
}

TEST(NameDictionary, CapsAtSentinelBoundary) {
  NameDictionary d;
  for (int i = 0; i < 0xFFFF; ++i) d.Intern("n" + std::to_string(i));
  EXPECT_EQ(d.size(), 0xFFFFu);
  // The sentinel id is never minted; overflow interns fail loudly.
  EXPECT_EQ(d.Intern("overflow"), uint16_t{0xFFFF});
  EXPECT_EQ(d.size(), 0xFFFFu);
  EXPECT_EQ(d.Lookup("overflow"), uint16_t{0xFFFF});
  EXPECT_EQ(d.Lookup("n0"), 0u);  // existing ids intact
}

TEST(NameDictionary, InternLookupRoundTrip) {
  NameDictionary d;
  const uint16_t f = d.Intern("friend");
  const uint16_t c = d.Intern("colleague");
  EXPECT_NE(f, c);
  EXPECT_EQ(d.Intern("friend"), f);  // idempotent
  EXPECT_EQ(d.Lookup("friend"), f);
  EXPECT_EQ(d.Lookup("nope"), uint16_t{0xFFFF});
  EXPECT_EQ(d.ToString(c), "colleague");
  EXPECT_EQ(d.size(), 2u);
}

}  // namespace
}  // namespace sargus
