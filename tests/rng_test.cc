#include <gtest/gtest.h>

#include "common/rng.h"

namespace sargus {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    if (va != c.NextU64()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoundedCoversRange) {
  Rng rng(11);
  bool seen[8] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.NextBounded(8)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace sargus
