#include <gtest/gtest.h>

#include "core/automaton.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

using testing_util::MakeDiamond;
using testing_util::MustBind;

TEST(HopAutomaton, SingleFixedStep) {
  SocialGraph g = MakeDiamond();
  BoundPathExpression e = MustBind(g, "friend[1]");
  HopAutomaton nfa(e);
  EXPECT_EQ(nfa.NumStates(), 1u);
  ASSERT_EQ(nfa.StartStates().size(), 1u);
  const uint32_t s0 = nfa.StartStates()[0];
  EXPECT_TRUE(nfa.AcceptsAfterEdge(s0));
  EXPECT_TRUE(nfa.TargetsAfterEdge(s0).empty());
  EXPECT_FALSE(nfa.AcceptsEmpty());
}

TEST(HopAutomaton, RangeStep) {
  SocialGraph g = MakeDiamond();
  BoundPathExpression e = MustBind(g, "friend[1,3]");
  HopAutomaton nfa(e);
  EXPECT_EQ(nfa.NumStates(), 3u);
  const uint32_t s0 = nfa.StartStates()[0];
  // After one edge the run may stop (accept) or continue (state h=1).
  EXPECT_TRUE(nfa.AcceptsAfterEdge(s0));
  EXPECT_EQ(nfa.TargetsAfterEdge(s0).size(), 1u);
  const uint32_t s1 = nfa.TargetsAfterEdge(s0)[0];
  EXPECT_TRUE(nfa.AcceptsAfterEdge(s1));
  const uint32_t s2 = nfa.TargetsAfterEdge(s1)[0];
  // Third hop exhausts the range: accept only.
  EXPECT_TRUE(nfa.AcceptsAfterEdge(s2));
  EXPECT_TRUE(nfa.TargetsAfterEdge(s2).empty());
}

TEST(HopAutomaton, TwoSteps) {
  SocialGraph g = MakeDiamond();
  BoundPathExpression e = MustBind(g, "friend[1,2]/colleague[1]");
  HopAutomaton nfa(e);
  EXPECT_EQ(nfa.NumStates(), 3u);  // friend h=0, h=1; colleague h=0
  const uint32_t s0 = nfa.StartStates()[0];
  // After the first friend hop: not accepting (colleague still required),
  // can continue friend (h=1) or switch to colleague (h=0).
  EXPECT_FALSE(nfa.AcceptsAfterEdge(s0));
  EXPECT_EQ(nfa.TargetsAfterEdge(s0).size(), 2u);
  // The colleague state accepts after its single hop.
  for (uint32_t t : nfa.TargetsAfterEdge(s0)) {
    if (nfa.StepOf(t) == 1) {
      EXPECT_TRUE(nfa.AcceptsAfterEdge(t));
      EXPECT_TRUE(nfa.TargetsAfterEdge(t).empty());
    }
  }
}

TEST(HopAutomaton, ReverseTransitionsMirrorForward) {
  SocialGraph g = MakeDiamond();
  BoundPathExpression e = MustBind(g, "friend[1,2]/colleague[1,2]");
  HopAutomaton nfa(e);
  for (uint32_t s = 0; s < nfa.NumStates(); ++s) {
    for (uint32_t t : nfa.TargetsAfterEdge(s)) {
      const auto& sources = nfa.SourcesIntoState(t);
      EXPECT_NE(std::find(sources.begin(), sources.end(), s), sources.end());
    }
  }
  // Accepting edge states: both colleague states (min met after 1 hop)
  // and the friend states cannot accept (colleague required).
  for (uint32_t s : nfa.AcceptingEdgeStates()) {
    EXPECT_EQ(nfa.StepOf(s), 1u);
  }
  EXPECT_EQ(nfa.AcceptingEdgeStates().size(), 2u);
}

}  // namespace
}  // namespace sargus
