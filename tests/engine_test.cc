#include <gtest/gtest.h>

#include "engine/access_engine.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

using testing_util::MakeDiamond;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : g_(MakeDiamond()) {}
  SocialGraph g_;
  PolicyStore store_;
};

TEST_F(EngineTest, PolicyStoreBasics) {
  const ResourceId photo = store_.RegisterResource(0, "photo");
  EXPECT_TRUE(store_.HasResource(photo));
  EXPECT_EQ(store_.resource(photo).owner, 0u);
  EXPECT_EQ(store_.resource(photo).name, "photo");

  auto rule = store_.AddRuleFromPaths(photo, {"friend[1,2]/colleague[1]"});
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(store_.NumRules(), 1u);
  EXPECT_EQ(store_.rule(*rule).paths.size(), 1u);

  // Unknown resource.
  EXPECT_EQ(store_.AddRuleFromPaths(99, {"friend[1]"}).status().code(),
            StatusCode::kNotFound);
  // Empty path list.
  EXPECT_EQ(store_.AddRuleFromPaths(photo, {}).status().code(),
            StatusCode::kInvalidArgument);
  // Syntax error propagates; no rule is stored.
  EXPECT_EQ(store_.AddRuleFromPaths(photo, {"friend[0]"}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store_.NumRules(), 1u);
}

TEST_F(EngineTest, GrantAndDenyAcrossEvaluatorChoices) {
  const ResourceId photo = store_.RegisterResource(0, "photo");
  ASSERT_TRUE(store_.AddRuleFromPaths(photo, {"friend[1,2]/colleague[1]"})
                  .ok());

  for (EvaluatorChoice choice :
       {EvaluatorChoice::kAuto, EvaluatorChoice::kOnlineBfs,
        EvaluatorChoice::kOnlineDfs, EvaluatorChoice::kBidirectional,
        EvaluatorChoice::kJoinIndex}) {
    EngineOptions opts;
    opts.evaluator = choice;
    AccessControlEngine engine(g_, store_, opts);
    ASSERT_TRUE(engine.RebuildIndexes().ok());
    // Node 3 is in the audience of owner 0 (0-f->4-c->3).
    auto granted = engine.CheckAccess({.requester = 3, .resource = photo});
    ASSERT_TRUE(granted.ok());
    EXPECT_TRUE(granted->granted) << static_cast<int>(choice);
    EXPECT_TRUE(granted->matched_rule.has_value());
    // Node 2 is not (no colleague edge ends at 2).
    auto denied = engine.CheckAccess({.requester = 2, .resource = photo});
    ASSERT_TRUE(denied.ok());
    EXPECT_FALSE(denied->granted) << static_cast<int>(choice);
    EXPECT_FALSE(denied->matched_rule.has_value());
  }
}

TEST_F(EngineTest, OwnerAlwaysGranted) {
  const ResourceId secret = store_.RegisterResource(2, "secret");
  AccessControlEngine engine(g_, store_);
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  auto r = engine.CheckAccess({.requester = 2, .resource = secret});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->granted);
  EXPECT_TRUE(r->owner_access);
  // No rules: everyone else is denied.
  auto other = engine.CheckAccess({.requester = 0, .resource = secret});
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->granted);
}

TEST_F(EngineTest, RuleDisjunction) {
  const ResourceId album = store_.RegisterResource(0, "album");
  // Two rules; the second one admits node 1 (friend[1]).
  ASSERT_TRUE(store_.AddRuleFromPaths(album, {"colleague[1]"}).ok());
  ASSERT_TRUE(store_.AddRuleFromPaths(album, {"friend[1]"}).ok());
  AccessControlEngine engine(g_, store_);
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  auto r = engine.CheckAccess({.requester = 1, .resource = album});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->granted);
  ASSERT_TRUE(r->matched_rule.has_value());
  EXPECT_EQ(store_.rule(*r->matched_rule).paths[0].ToString(), "friend[1]");
}

TEST_F(EngineTest, BackwardPolicyNeedsBackwardLineGraph) {
  const ResourceId res = store_.RegisterResource(1, "res");
  ASSERT_TRUE(store_.AddRuleFromPaths(res, {"friend-[1]"}).ok());

  // With kAuto and no backward line graph the engine falls back to online
  // search: still correct.
  AccessControlEngine engine(g_, store_);
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  auto r = engine.CheckAccess({.requester = 0, .resource = res});  // edge 0-f->1 reversed
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->granted);

  // Forcing the join index without backward orientations fails loudly.
  EngineOptions join_opts;
  join_opts.evaluator = EvaluatorChoice::kJoinIndex;
  AccessControlEngine join_engine(g_, store_, join_opts);
  ASSERT_TRUE(join_engine.RebuildIndexes().ok());
  auto bad = join_engine.CheckAccess({.requester = 0, .resource = res});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);

  // With line_graph_backward the join index serves it.
  join_opts.line_graph_backward = true;
  AccessControlEngine ok_engine(g_, store_, join_opts);
  ASSERT_TRUE(ok_engine.RebuildIndexes().ok());
  auto good = ok_engine.CheckAccess({.requester = 0, .resource = res});
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->granted);
}

TEST_F(EngineTest, RulePathErrorDoesNotMaskLaterGrant) {
  // Disjunction semantics: the backward path errors under a forced
  // forward-only join index, but the second path grants node 1 anyway.
  const ResourceId res = store_.RegisterResource(0, "res");
  ASSERT_TRUE(store_.AddRuleFromPaths(res, {"friend-[1]", "friend[1]"}).ok());
  EngineOptions opts;
  opts.evaluator = EvaluatorChoice::kJoinIndex;  // no backward line graph
  AccessControlEngine engine(g_, store_, opts);
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  auto granted = engine.CheckAccess({.requester = 1, .resource = res});
  ASSERT_TRUE(granted.ok()) << granted.status().ToString();
  EXPECT_TRUE(granted->granted);
  // When nothing grants, the evaluation error stays loud.
  auto err = engine.CheckAccess({.requester = 3, .resource = res});
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EngineTest, WitnessAndPrefilter) {
  const ResourceId res = store_.RegisterResource(0, "res");
  ASSERT_TRUE(
      store_.AddRuleFromPaths(res, {"friend[1,2]/colleague[1]"}).ok());
  EngineOptions opts;
  opts.use_closure_prefilter = true;
  AccessControlEngine engine(g_, store_, opts);
  ASSERT_TRUE(engine.RebuildIndexes().ok());

  // Witness is per request now, not an engine-wide option.
  auto r = engine.CheckAccess(
      {.requester = 3, .resource = res, .want_witness = true});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->granted);
  ASSERT_GE(r->witness.size(), 3u);
  EXPECT_EQ(r->witness.front(), 0u);
  EXPECT_EQ(r->witness.back(), 3u);

  // The same grant without the flag carries no witness.
  auto bare = engine.CheckAccess({.requester = 3, .resource = res});
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->granted);
  EXPECT_TRUE(bare->witness.empty());
}

TEST_F(EngineTest, PerRequestEvaluatorOverride) {
  const ResourceId res = store_.RegisterResource(0, "res");
  ASSERT_TRUE(
      store_.AddRuleFromPaths(res, {"friend[1,2]/colleague[1]"}).ok());
  AccessControlEngine engine(g_, store_);  // kAuto: join index serves this
  ASSERT_TRUE(engine.RebuildIndexes().ok());

  auto by_default = engine.CheckAccess({.requester = 3, .resource = res});
  ASSERT_TRUE(by_default.ok());
  EXPECT_TRUE(by_default->granted);
  EXPECT_EQ(by_default->evaluator_name, "join-index");

  // Same decision, different engine, chosen per request.
  for (EvaluatorChoice choice :
       {EvaluatorChoice::kOnlineBfs, EvaluatorChoice::kOnlineDfs,
        EvaluatorChoice::kBidirectional}) {
    auto r = engine.CheckAccess(
        {.requester = 3, .resource = res, .evaluator_override = choice});
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->granted) << static_cast<int>(choice);
    EXPECT_NE(r->evaluator_name, "join-index");
  }

  // Forcing the join index on an online-only configuration (which never
  // built the join stack) fails loudly when nothing grants.
  AccessControlEngine online(g_, store_,
                             {.evaluator = EvaluatorChoice::kOnlineBfs});
  ASSERT_TRUE(online.RebuildIndexes().ok());
  auto denied = online.CheckAccess(
      {.requester = 2,
       .resource = res,
       .evaluator_override = EvaluatorChoice::kJoinIndex});
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kFailedPrecondition);
  // A granted owner request never consults an evaluator at all.
  auto owner = online.CheckAccess(
      {.requester = 0,
       .resource = res,
       .evaluator_override = EvaluatorChoice::kJoinIndex});
  ASSERT_TRUE(owner.ok());
  EXPECT_TRUE(owner->owner_access);
}

TEST_F(EngineTest, ErrorsAndPreconditions) {
  const ResourceId res = store_.RegisterResource(0, "res");
  AccessControlEngine engine(g_, store_);
  // Unknown resource.
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  EXPECT_EQ(engine.CheckAccess({.requester = 1, .resource = 42}).status().code(), StatusCode::kNotFound);
  // Requester out of range.
  EXPECT_EQ(engine.CheckAccess({.requester = 99, .resource = res}).status().code(),
            StatusCode::kInvalidArgument);
  // CheckAccess before RebuildIndexes.
  AccessControlEngine cold(g_, store_);
  EXPECT_EQ(cold.CheckAccess({.requester = 1, .resource = res})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(EngineTest, AuditTrailRecordsDecisions) {
  const ResourceId res = store_.RegisterResource(0, "res");
  ASSERT_TRUE(store_.AddRuleFromPaths(res, {"friend[1]"}).ok());
  EngineOptions opts;
  opts.audit_capacity = 3;
  AccessControlEngine engine(g_, store_, opts);
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  for (NodeId r = 1; r <= 5; ++r) {
    ASSERT_TRUE(engine.CheckAccess({.requester = r, .resource = res}).ok());
  }
  const auto trail = engine.AuditTrail();
  ASSERT_EQ(trail.size(), 3u);  // capped
  // Oldest-first: requesters 3, 4, 5 remain.
  EXPECT_EQ(trail[0].requester, 3u);
  EXPECT_EQ(trail[2].requester, 5u);
  // Requester 4 was granted (0-f->4), requester 3 denied.
  EXPECT_FALSE(trail[0].granted);
  EXPECT_TRUE(trail[1].granted);
}

}  // namespace
}  // namespace sargus
