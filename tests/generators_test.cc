#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "synth/generators.h"

namespace sargus {
namespace {

TEST(Generators, ErdosRenyiBasics) {
  auto g = GenerateErdosRenyi(
      {.base = {.num_nodes = 100, .seed = 1}, .avg_out_degree = 3.0});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumNodes(), 100u);
  // Edge budget is 300 before reciprocity twins and dedup coalescing.
  EXPECT_GT(g->NumEdges(), 200u);
  EXPECT_LT(g->NumEdges(), 650u);
  EXPECT_EQ(g->labels().size(), 3u);  // default alphabet
}

TEST(Generators, Deterministic) {
  const ErdosRenyiSpec spec{.base = {.num_nodes = 50, .seed = 9},
                            .avg_out_degree = 2.0};
  auto g1 = GenerateErdosRenyi(spec);
  auto g2 = GenerateErdosRenyi(spec);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  ASSERT_EQ(g1->EdgeSlotCount(), g2->EdgeSlotCount());
  for (EdgeId e = 0; e < g1->EdgeSlotCount(); ++e) {
    EXPECT_EQ(g1->edge(e).src, g2->edge(e).src);
    EXPECT_EQ(g1->edge(e).dst, g2->edge(e).dst);
    EXPECT_EQ(g1->edge(e).label, g2->edge(e).label);
  }
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_EQ(g1->GetAttribute(v, "age"), g2->GetAttribute(v, "age"));
  }
  // A different seed diverges.
  auto g3 = GenerateErdosRenyi({.base = {.num_nodes = 50, .seed = 10},
                                .avg_out_degree = 2.0});
  ASSERT_TRUE(g3.ok());
  bool differs = g3->EdgeSlotCount() != g1->EdgeSlotCount();
  for (EdgeId e = 0; !differs && e < g1->EdgeSlotCount(); ++e) {
    differs = g1->edge(e).src != g3->edge(e).src ||
              g1->edge(e).dst != g3->edge(e).dst;
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, BarabasiAlbertSkew) {
  auto g = GenerateBarabasiAlbert(
      {.base = {.num_nodes = 300, .seed = 4, .reciprocity = 0.0},
       .edges_per_node = 2});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumNodes(), 300u);
  // Preferential attachment: max in-degree far above the mean.
  std::vector<size_t> indeg(300, 0);
  for (EdgeId e = 0; e < g->EdgeSlotCount(); ++e) {
    if (g->IsLiveEdge(e)) ++indeg[g->edge(e).dst];
  }
  const size_t max_in = *std::max_element(indeg.begin(), indeg.end());
  EXPECT_GE(max_in, 10u);
}

TEST(Generators, WattsStrogatzRing) {
  auto g = GenerateWattsStrogatz({.base = {.num_nodes = 60, .seed = 2,
                                           .reciprocity = 0.0},
                                  .neighbors_per_side = 2,
                                  .rewire_probability = 0.0});
  ASSERT_TRUE(g.ok());
  // No rewiring: exactly 2 out-edges per node.
  EXPECT_EQ(g->NumEdges(), 120u);
}

TEST(Generators, AttributesInRange) {
  auto g = GenerateErdosRenyi(
      {.base = {.num_nodes = 40, .seed = 6}, .avg_out_degree = 1.0});
  ASSERT_TRUE(g.ok());
  for (NodeId v = 0; v < 40; ++v) {
    const auto age = g->GetAttribute(v, "age");
    ASSERT_TRUE(age.has_value());
    EXPECT_GE(*age, 13);
    EXPECT_LE(*age, 80);
    const auto trust = g->GetAttribute(v, "trust");
    ASSERT_TRUE(trust.has_value());
    EXPECT_GE(*trust, 0);
    EXPECT_LE(*trust, 100);
  }
  auto bare = GenerateErdosRenyi(
      {.base = {.num_nodes = 10, .seed = 6, .assign_attributes = false},
       .avg_out_degree = 1.0});
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->GetAttribute(0, "age"), std::nullopt);
}

TEST(Generators, ValidationErrors) {
  EXPECT_EQ(GenerateErdosRenyi({.base = {.num_nodes = 0}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GenerateErdosRenyi({.base = {.num_nodes = 5, .labels = {}}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GenerateBarabasiAlbert(
                {.base = {.num_nodes = 5}, .edges_per_node = 0})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GenerateWattsStrogatz({.base = {.num_nodes = 5},
                                   .neighbors_per_side = 1,
                                   .rewire_probability = 2.0})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Generators, DuplicateLabelsInSpecDropNoEdges) {
  // Duplicate names intern to one id; every generated edge must still
  // land (regression: positional label indices produced invalid ids).
  auto dup = GenerateWattsStrogatz(
      {.base = {.num_nodes = 40, .seed = 3, .labels = {"friend", "friend"},
                .reciprocity = 0.0},
       .neighbors_per_side = 2,
       .rewire_probability = 0.0});
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->NumEdges(), 80u);  // 2 out-edges per node, none lost
  EXPECT_EQ(dup->labels().size(), 1u);
}

TEST(Generators, CustomLabelAlphabet) {
  auto g = GenerateErdosRenyi(
      {.base = {.num_nodes = 30, .seed = 8, .labels = {"a", "b"}},
       .avg_out_degree = 2.0});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->labels().size(), 2u);
  for (EdgeId e = 0; e < g->EdgeSlotCount(); ++e) {
    if (!g->IsLiveEdge(e)) continue;
    EXPECT_LT(g->edge(e).label, 2u);
  }
}

}  // namespace
}  // namespace sargus
