#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "synth/generators.h"

namespace sargus {
namespace {

TEST(Generators, ErdosRenyiBasics) {
  auto g = GenerateErdosRenyi(
      {.base = {.num_nodes = 100, .seed = 1}, .avg_out_degree = 3.0});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumNodes(), 100u);
  // Edge budget is 300 before reciprocity twins and dedup coalescing.
  EXPECT_GT(g->NumEdges(), 200u);
  EXPECT_LT(g->NumEdges(), 650u);
  EXPECT_EQ(g->labels().size(), 3u);  // default alphabet
}

TEST(Generators, Deterministic) {
  const ErdosRenyiSpec spec{.base = {.num_nodes = 50, .seed = 9},
                            .avg_out_degree = 2.0};
  auto g1 = GenerateErdosRenyi(spec);
  auto g2 = GenerateErdosRenyi(spec);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  ASSERT_EQ(g1->EdgeSlotCount(), g2->EdgeSlotCount());
  for (EdgeId e = 0; e < g1->EdgeSlotCount(); ++e) {
    EXPECT_EQ(g1->edge(e).src, g2->edge(e).src);
    EXPECT_EQ(g1->edge(e).dst, g2->edge(e).dst);
    EXPECT_EQ(g1->edge(e).label, g2->edge(e).label);
  }
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_EQ(g1->GetAttribute(v, "age"), g2->GetAttribute(v, "age"));
  }
  // A different seed diverges.
  auto g3 = GenerateErdosRenyi({.base = {.num_nodes = 50, .seed = 10},
                                .avg_out_degree = 2.0});
  ASSERT_TRUE(g3.ok());
  bool differs = g3->EdgeSlotCount() != g1->EdgeSlotCount();
  for (EdgeId e = 0; !differs && e < g1->EdgeSlotCount(); ++e) {
    differs = g1->edge(e).src != g3->edge(e).src ||
              g1->edge(e).dst != g3->edge(e).dst;
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, BarabasiAlbertSkew) {
  auto g = GenerateBarabasiAlbert(
      {.base = {.num_nodes = 300, .seed = 4, .reciprocity = 0.0},
       .edges_per_node = 2});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumNodes(), 300u);
  // Preferential attachment: max in-degree far above the mean.
  std::vector<size_t> indeg(300, 0);
  for (EdgeId e = 0; e < g->EdgeSlotCount(); ++e) {
    if (g->IsLiveEdge(e)) ++indeg[g->edge(e).dst];
  }
  const size_t max_in = *std::max_element(indeg.begin(), indeg.end());
  EXPECT_GE(max_in, 10u);
}

TEST(Generators, WattsStrogatzRing) {
  auto g = GenerateWattsStrogatz({.base = {.num_nodes = 60, .seed = 2,
                                           .reciprocity = 0.0},
                                  .neighbors_per_side = 2,
                                  .rewire_probability = 0.0});
  ASSERT_TRUE(g.ok());
  // No rewiring: exactly 2 out-edges per node.
  EXPECT_EQ(g->NumEdges(), 120u);
}

TEST(Generators, AttributesInRange) {
  auto g = GenerateErdosRenyi(
      {.base = {.num_nodes = 40, .seed = 6}, .avg_out_degree = 1.0});
  ASSERT_TRUE(g.ok());
  for (NodeId v = 0; v < 40; ++v) {
    const auto age = g->GetAttribute(v, "age");
    ASSERT_TRUE(age.has_value());
    EXPECT_GE(*age, 13);
    EXPECT_LE(*age, 80);
    const auto trust = g->GetAttribute(v, "trust");
    ASSERT_TRUE(trust.has_value());
    EXPECT_GE(*trust, 0);
    EXPECT_LE(*trust, 100);
  }
  auto bare = GenerateErdosRenyi(
      {.base = {.num_nodes = 10, .seed = 6, .assign_attributes = false},
       .avg_out_degree = 1.0});
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->GetAttribute(0, "age"), std::nullopt);
}

TEST(Generators, ValidationErrors) {
  EXPECT_EQ(GenerateErdosRenyi({.base = {.num_nodes = 0}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GenerateErdosRenyi({.base = {.num_nodes = 5, .labels = {}}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GenerateBarabasiAlbert(
                {.base = {.num_nodes = 5}, .edges_per_node = 0})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GenerateWattsStrogatz({.base = {.num_nodes = 5},
                                   .neighbors_per_side = 1,
                                   .rewire_probability = 2.0})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Generators, DuplicateLabelsInSpecDropNoEdges) {
  // Duplicate names intern to one id; every generated edge must still
  // land (regression: positional label indices produced invalid ids).
  auto dup = GenerateWattsStrogatz(
      {.base = {.num_nodes = 40, .seed = 3, .labels = {"friend", "friend"},
                .reciprocity = 0.0},
       .neighbors_per_side = 2,
       .rewire_probability = 0.0});
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->NumEdges(), 80u);  // 2 out-edges per node, none lost
  EXPECT_EQ(dup->labels().size(), 1u);
}

TEST(Generators, CustomLabelAlphabet) {
  auto g = GenerateErdosRenyi(
      {.base = {.num_nodes = 30, .seed = 8, .labels = {"a", "b"}},
       .avg_out_degree = 2.0});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->labels().size(), 2u);
  for (EdgeId e = 0; e < g->EdgeSlotCount(); ++e) {
    if (!g->IsLiveEdge(e)) continue;
    EXPECT_LT(g->edge(e).label, 2u);
  }
}

TEST(ZipfSampler, PinsSkewToTheFittedDistribution) {
  // 200k draws over 1000 ranks at theta = 0.8: the empirical frequency
  // of the hottest ranks must sit within 10% (relative) of the exact
  // probability mass the sampler itself reports.
  const uint64_t kItems = 1000;
  const uint64_t kDraws = 200000;
  ZipfSampler zipf(kItems, 0.8, 1234);
  std::vector<uint64_t> hits(kItems, 0);
  for (uint64_t i = 0; i < kDraws; ++i) ++hits[zipf.Next()];

  // Ranks 0 and 1 are produced by exact CDF thresholds, so they pin the
  // skew tightly; deeper ranks come from the approximate inverse CDF
  // and only get a coarse bound.
  for (uint64_t rank : {uint64_t{0}, uint64_t{1}}) {
    const double expected = zipf.Probability(rank) * kDraws;
    EXPECT_NEAR(hits[rank], expected, 0.10 * expected) << "rank " << rank;
  }
  const double expected2 = zipf.Probability(2) * kDraws;
  EXPECT_NEAR(hits[2], expected2, 0.30 * expected2);
  // The head dominates: rank 0 beats any deep-tail rank by an order of
  // magnitude, which a uniform sampler (theta = 0) would never show.
  EXPECT_GT(hits[0], 20 * hits[500] + 1);
  // Probabilities are monotone in rank and sum to ~1.
  double total = 0.0;
  for (uint64_t r = 0; r < kItems; ++r) {
    total += zipf.Probability(r);
    if (r > 0) EXPECT_LE(zipf.Probability(r), zipf.Probability(r - 1));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, ThetaZeroIsUniform) {
  const uint64_t kItems = 50;
  ZipfSampler uniform(kItems, 0.0, 7);
  std::vector<uint64_t> hits(kItems, 0);
  const uint64_t kDraws = 100000;
  for (uint64_t i = 0; i < kDraws; ++i) ++hits[uniform.Next()];
  const double expected = static_cast<double>(kDraws) / kItems;
  for (uint64_t r = 0; r < kItems; ++r) {
    EXPECT_NEAR(hits[r], expected, 0.25 * expected) << "rank " << r;
    EXPECT_NEAR(uniform.Probability(r), 1.0 / kItems, 1e-12);
  }
}

TEST(ZipfSampler, DeterministicInSeed) {
  ZipfSampler a(100, 0.9, 42);
  ZipfSampler b(100, 0.9, 42);
  ZipfSampler c(100, 0.9, 43);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x = a.Next();
    EXPECT_EQ(x, b.Next());
    if (x != c.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
  // Every draw stays in range even at the degenerate sizes.
  ZipfSampler one(1, 0.99, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(one.Next(), 0u);
}

}  // namespace
}  // namespace sargus
