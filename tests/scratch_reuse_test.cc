/// Tests for the query-scratch subsystem: epoch-stamped sets, pooled
/// reuse across queries (the zero-allocation steady state), forced epoch
/// wraparound, witness-parent isolation between queries, and the
/// thread-safety contract of const Evaluate.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <thread>
#include <vector>

#include "common/epoch_set.h"
#include "query/bidirectional.h"
#include "query/eval_context.h"
#include "query/join_evaluator.h"
#include "query/online_evaluator.h"
#include "synth/workload.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

using testing_util::BuildStack;
using testing_util::MakeDiamond;
using testing_util::MustBind;

TEST(EpochStampSet, InsertContainsAndEpochReset) {
  EpochStampSet set;
  set.BeginEpoch(8);
  EXPECT_FALSE(set.Contains(3));
  EXPECT_TRUE(set.Insert(3));
  EXPECT_FALSE(set.Insert(3));  // already a member this epoch
  EXPECT_TRUE(set.Contains(3));

  set.BeginEpoch(8);  // O(1) reset
  EXPECT_FALSE(set.Contains(3));
  EXPECT_TRUE(set.Insert(3));
}

TEST(EpochStampSet, GrowsLazilyAndKeepsHighWaterMark) {
  EpochStampSet set;
  set.BeginEpoch(4);
  EXPECT_TRUE(set.Insert(2));
  EXPECT_EQ(set.capacity(), 4u);
  set.BeginEpoch(16);  // grow
  EXPECT_FALSE(set.Contains(2));
  EXPECT_TRUE(set.Insert(15));
  EXPECT_EQ(set.capacity(), 16u);
  set.BeginEpoch(4);  // never shrinks
  EXPECT_EQ(set.capacity(), 16u);
}

TEST(EpochStampSet, WraparoundWipesStaleStamps) {
  EpochStampSet set;
  set.BeginEpoch(4);
  EXPECT_TRUE(set.Insert(1));

  // Jump to the last representable epoch; the stamp written above (epoch
  // 1) must never read as a member again after the wrap.
  set.SetEpochForTesting(std::numeric_limits<uint32_t>::max());
  set.BeginEpoch(4);
  EXPECT_EQ(set.epoch(), 1u);
  EXPECT_FALSE(set.Contains(1));
  EXPECT_TRUE(set.Insert(1));
  set.BeginEpoch(4);
  EXPECT_EQ(set.epoch(), 2u);
  EXPECT_FALSE(set.Contains(1));
}

class ScratchReuseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stack_ = BuildStack(MakeDiamond(), /*include_backward=*/true);
    ASSERT_NE(stack_, nullptr);
  }
  std::unique_ptr<testing_util::Stack> stack_;
};

/// Back-to-back grant -> deny -> grant on one evaluator and one context:
/// stamps must reset logically between queries (no stale visited state
/// producing a wrong deny or grant) and the backing arrays must be
/// reused, not reallocated.
TEST_F(ScratchReuseTest, GrantDenyGrantReusesStamps) {
  const BoundPathExpression expr = MustBind(stack_->g, "friend[1,2]/colleague[1]");
  OnlineEvaluator eval(stack_->g, stack_->csr);
  EvalContext ctx;

  auto grant1 = eval.Evaluate(ReachQuery{0, 3, &expr, true}, ctx);
  ASSERT_TRUE(grant1.ok());
  EXPECT_TRUE(grant1->granted);
  const uint32_t epoch_after_first = ctx.scratch.visited.epoch();
  const size_t capacity_after_first = ctx.scratch.visited.capacity();

  auto deny = eval.Evaluate(ReachQuery{5, 0, &expr, true}, ctx);
  ASSERT_TRUE(deny.ok());
  EXPECT_FALSE(deny->granted);
  EXPECT_TRUE(deny->witness.empty());

  auto grant2 = eval.Evaluate(ReachQuery{0, 3, &expr, true}, ctx);
  ASSERT_TRUE(grant2.ok());
  EXPECT_TRUE(grant2->granted);
  EXPECT_EQ(grant2->witness, grant1->witness);
  EXPECT_EQ(grant2->stats.pairs_visited, grant1->stats.pairs_visited);

  // The pool advanced one epoch per query without regrowing: the
  // steady-state path performed no O(|V|·states) allocation.
  EXPECT_EQ(ctx.scratch.visited.epoch(), epoch_after_first + 2);
  EXPECT_EQ(ctx.scratch.visited.capacity(), capacity_after_first);
}

/// Witness parents are never cleared (only epoch-invalidated); a later
/// query must not stitch a path out of a previous query's parent links.
TEST_F(ScratchReuseTest, WitnessParentsDoNotLeakAcrossQueries) {
  const BoundPathExpression long_expr = MustBind(stack_->g, "friend[1,2]/colleague[1]");
  const BoundPathExpression short_expr = MustBind(stack_->g, "colleague[1]");
  OnlineEvaluator eval(stack_->g, stack_->csr);
  EvalContext ctx;

  // Populate parents with the long query's chains.
  auto first = eval.Evaluate(ReachQuery{0, 3, &long_expr, true}, ctx);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->granted);
  ASSERT_GE(first->witness.size(), 3u);

  // A different (src, expr) query on the same scratch: its witness must
  // be exactly its own one-hop path, not contaminated by stale parents.
  auto second = eval.Evaluate(ReachQuery{4, 3, &short_expr, true}, ctx);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->granted);
  EXPECT_EQ(second->witness, (std::vector<NodeId>{4, 3}));
}

/// Forcing epoch wraparound mid-workload must not change any decision:
/// the wipe makes the wrapped epoch indistinguishable from a fresh pool.
TEST_F(ScratchReuseTest, EpochWraparoundKeepsDecisionsStable) {
  const BoundPathExpression expr = MustBind(stack_->g, "friend[1,2]/colleague[1]");
  OnlineEvaluator online(stack_->g, stack_->csr);
  BidirectionalEvaluator bidir(stack_->g, stack_->csr);
  EvalContext ctx;

  // Reference decisions on a pristine context.
  std::vector<bool> expected;
  for (NodeId src = 0; src < 6; ++src) {
    for (NodeId dst = 0; dst < 6; ++dst) {
      EvalContext fresh;
      expected.push_back(
          online.Evaluate(ReachQuery{src, dst, &expr, false}, fresh)->granted);
    }
  }

  // Two epochs away from the wrap: the sweep below crosses it for every
  // set in the pool.
  const uint32_t near_max = std::numeric_limits<uint32_t>::max() - 2;
  ctx.scratch.visited.SetEpochForTesting(near_max);
  ctx.scratch.visited_back.SetEpochForTesting(near_max);
  ctx.scratch.line_seen.SetEpochForTesting(near_max);
  ctx.scratch.node_marks.SetEpochForTesting(near_max);

  size_t i = 0;
  for (NodeId src = 0; src < 6; ++src) {
    for (NodeId dst = 0; dst < 6; ++dst, ++i) {
      EXPECT_EQ(
          online.Evaluate(ReachQuery{src, dst, &expr, true}, ctx)->granted,
          expected[i])
          << "online " << src << "->" << dst;
      EXPECT_EQ(
          bidir.Evaluate(ReachQuery{src, dst, &expr, false}, ctx)->granted,
          expected[i])
          << "bidir " << src << "->" << dst;
    }
  }
  // The pool really did wrap (epoch restarted from 1).
  EXPECT_LT(ctx.scratch.visited.epoch(), near_max);
}

/// The adjacency join's per-sequence seen array comes from the pool too.
TEST_F(ScratchReuseTest, JoinEvaluatorReusesLineScratch) {
  const BoundPathExpression expr = MustBind(stack_->g, "friend[1,2]/colleague[1]");
  JoinIndexEvaluator join(stack_->g, stack_->lg, *stack_->oracle,
                          *stack_->cluster, stack_->tables,
                          JoinIndexOptions{});
  EvalContext ctx;

  auto grant1 = join.Evaluate(ReachQuery{0, 3, &expr, true}, ctx);
  ASSERT_TRUE(grant1.ok());
  EXPECT_TRUE(grant1->granted);
  const size_t line_capacity = ctx.scratch.line_seen.capacity();

  auto deny = join.Evaluate(ReachQuery{5, 0, &expr, false}, ctx);
  ASSERT_TRUE(deny.ok());
  EXPECT_FALSE(deny->granted);

  auto grant2 = join.Evaluate(ReachQuery{0, 3, &expr, true}, ctx);
  ASSERT_TRUE(grant2.ok());
  EXPECT_TRUE(grant2->granted);
  EXPECT_EQ(grant2->witness, grant1->witness);
  EXPECT_EQ(ctx.scratch.line_seen.capacity(), line_capacity);
}

/// The audience collector shares the same pool; repeated calls agree and
/// reuse the product-space arrays.
TEST_F(ScratchReuseTest, AudienceCollectorReusesScratch) {
  const BoundPathExpression expr = MustBind(stack_->g, "friend[1,2]/colleague[1]");
  EvalContext ctx;
  const auto first = CollectMatchingAudience(stack_->g, stack_->csr, expr, 0,
                                             &ctx);
  const size_t capacity = ctx.scratch.visited.capacity();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(CollectMatchingAudience(stack_->g, stack_->csr, expr, 0, &ctx),
              first);
  }
  EXPECT_EQ(ctx.scratch.visited.capacity(), capacity);
}

/// Thread-safety contract: any number of threads may call Evaluate(q) on
/// one shared const evaluator — each thread gets its own pooled context.
TEST_F(ScratchReuseTest, ConcurrentEvaluateSmoke) {
  const BoundPathExpression expr = MustBind(stack_->g, "friend[1,2]/colleague[1]");
  const OnlineEvaluator online(stack_->g, stack_->csr);
  const BidirectionalEvaluator bidir(stack_->g, stack_->csr);

  // Ground truth, computed up front.
  bool expected[6][6];
  for (NodeId src = 0; src < 6; ++src) {
    for (NodeId dst = 0; dst < 6; ++dst) {
      expected[src][dst] =
          online.Evaluate(ReachQuery{src, dst, &expr, false})->granted;
    }
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const NodeId src = static_cast<NodeId>((t + round) % 6);
        const NodeId dst = static_cast<NodeId>((t * 7 + round * 3) % 6);
        const Evaluator& eval =
            (round % 2 == 0) ? static_cast<const Evaluator&>(online)
                             : static_cast<const Evaluator&>(bidir);
        auto r = eval.Evaluate(ReachQuery{src, dst, &expr, round % 3 == 0});
        if (!r.ok() || r->granted != expected[src][dst]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace sargus
