#include <gtest/gtest.h>

#include <algorithm>

#include "graph/csr.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

TEST(CsrSnapshot, MirrorsLiveEdges) {
  SocialGraph g = testing_util::MakeDiamond();
  CsrSnapshot csr = CsrSnapshot::Build(g);
  EXPECT_EQ(csr.NumNodes(), g.NumNodes());
  EXPECT_EQ(csr.NumEdges(), g.NumEdges());

  // Node 0 has friend edges to 1 and 4.
  auto out0 = csr.Out(0);
  ASSERT_EQ(out0.size(), 2u);
  std::vector<NodeId> targets;
  for (const auto& e : out0) targets.push_back(e.other);
  std::sort(targets.begin(), targets.end());
  EXPECT_EQ(targets, (std::vector<NodeId>{1, 4}));

  // In-edges of 3: colleague from 2 and 4, friend from 5.
  EXPECT_EQ(csr.In(3).size(), 3u);
}

TEST(CsrSnapshot, LabelRanges) {
  SocialGraph g = testing_util::MakeDiamond();
  CsrSnapshot csr = CsrSnapshot::Build(g);
  const LabelId friend_l = g.labels().Lookup("friend");
  const LabelId colleague_l = g.labels().Lookup("colleague");

  EXPECT_EQ(csr.OutWithLabel(1, friend_l).size(), 1u);     // 1 -f-> 2
  EXPECT_EQ(csr.OutWithLabel(1, colleague_l).size(), 1u);  // 1 -c-> 5
  EXPECT_EQ(csr.InWithLabel(3, colleague_l).size(), 2u);   // from 2 and 4
  EXPECT_EQ(csr.InWithLabel(3, friend_l).size(), 1u);      // from 5
  EXPECT_TRUE(csr.OutWithLabel(3, friend_l).empty());
}

TEST(CsrSnapshot, IgnoresTombstonedEdges) {
  SocialGraph g;
  g.AddNode();
  g.AddNode();
  const EdgeId e = *g.AddEdge(0, 1, "friend");
  (void)g.AddEdge(1, 0, "friend");
  ASSERT_TRUE(g.RemoveEdge(e).ok());
  CsrSnapshot csr = CsrSnapshot::Build(g);
  EXPECT_EQ(csr.NumEdges(), 1u);
  EXPECT_TRUE(csr.Out(0).empty());
  EXPECT_EQ(csr.Out(1).size(), 1u);
}

TEST(CsrSnapshot, SnapshotIsImmutable) {
  SocialGraph g;
  g.AddNode();
  g.AddNode();
  (void)g.AddEdge(0, 1, "friend");
  CsrSnapshot csr = CsrSnapshot::Build(g);
  (void)g.AddEdge(1, 0, "friend");  // mutate after snapshot
  EXPECT_EQ(csr.NumEdges(), 1u);    // snapshot unchanged
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(CsrSnapshot, EmptyGraph) {
  SocialGraph g;
  CsrSnapshot csr = CsrSnapshot::Build(g);
  EXPECT_EQ(csr.NumNodes(), 0u);
  EXPECT_EQ(csr.NumEdges(), 0u);
}

}  // namespace
}  // namespace sargus
