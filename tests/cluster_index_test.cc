#include <gtest/gtest.h>

#include "index/base_tables.h"
#include "index/cluster_index.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

using testing_util::BuildStack;
using testing_util::MakeDiamond;

TEST(BaseTables, RowsPerLabel) {
  auto s = BuildStack(MakeDiamond(), /*include_backward=*/false);
  ASSERT_NE(s, nullptr);
  const LabelId friend_l = s->g.labels().Lookup("friend");
  const LabelId colleague_l = s->g.labels().Lookup("colleague");
  EXPECT_EQ(s->tables.Rows(friend_l).size(), 5u);
  EXPECT_EQ(s->tables.Rows(colleague_l).size(), 3u);
  EXPECT_TRUE(s->tables.Rows(kInvalidLabel).empty());
  // Rows are tail-sorted.
  const auto rows = s->tables.Rows(friend_l);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].tail, rows[i].tail);
  }
  // No backward tables when the line graph is forward-only.
  EXPECT_TRUE(s->tables.Rows(friend_l, /*backward=*/true).empty());
}

TEST(BaseTables, BackwardOrientationRows) {
  auto s = BuildStack(MakeDiamond(), /*include_backward=*/true);
  ASSERT_NE(s, nullptr);
  const LabelId friend_l = s->g.labels().Lookup("friend");
  EXPECT_EQ(s->tables.Rows(friend_l).size(), 5u);
  EXPECT_EQ(s->tables.Rows(friend_l, true).size(), 5u);
  // A backward row swaps the endpoints of its forward twin.
  const auto fwd = s->tables.Rows(friend_l);
  const auto bwd = s->tables.Rows(friend_l, true);
  for (const auto& row : bwd) {
    const auto& lv = s->lg.vertex(row.line);
    EXPECT_TRUE(lv.backward);
    EXPECT_EQ(row.tail, s->g.edge(lv.edge).dst);
    EXPECT_EQ(row.head, s->g.edge(lv.edge).src);
  }
  EXPECT_EQ(fwd.size(), bwd.size());
}

TEST(ClusterJoinIndex, ClustersMatchTailBuckets) {
  auto s = BuildStack(MakeDiamond(), /*include_backward=*/false);
  ASSERT_NE(s, nullptr);
  const LabelId friend_l = s->g.labels().Lookup("friend");
  const LabelId colleague_l = s->g.labels().Lookup("colleague");

  // Node 0 has two outgoing friend edges.
  EXPECT_EQ(s->cluster->Cluster(friend_l, false, 0).size(), 2u);
  // Node 2 has one colleague edge (to 3) and one friend edge (to 0).
  EXPECT_EQ(s->cluster->Cluster(colleague_l, false, 2).size(), 1u);
  EXPECT_EQ(s->cluster->Cluster(friend_l, false, 2).size(), 1u);
  // Empty cluster for labels a node does not have.
  EXPECT_TRUE(s->cluster->Cluster(colleague_l, false, 0).empty());
  // Every member's (label, tail) matches the cluster key.
  for (NodeId v = 0; v < s->g.NumNodes(); ++v) {
    for (LineVertexId lv : s->cluster->Cluster(friend_l, false, v)) {
      EXPECT_EQ(s->lg.vertex(lv).label, friend_l);
      EXPECT_EQ(s->lg.vertex(lv).tail, v);
      EXPECT_FALSE(s->lg.vertex(lv).backward);
    }
  }
}

TEST(ClusterJoinIndex, CentersCountNonEmptyBuckets) {
  auto s = BuildStack(MakeDiamond(), /*include_backward=*/false);
  ASSERT_NE(s, nullptr);
  // Forward buckets: friend@0(2), friend@1, friend@2, friend@5,
  // colleague@1, colleague@2, colleague@4 -> 7 centers.
  EXPECT_EQ(s->cluster->NumCenters(), 7u);
}

TEST(ClusterJoinIndex, LabelPairReachability) {
  auto s = BuildStack(MakeDiamond(), /*include_backward=*/false);
  ASSERT_NE(s, nullptr);
  const LabelId friend_l = s->g.labels().Lookup("friend");
  const LabelId colleague_l = s->g.labels().Lookup("colleague");
  // friend (0->1) precedes colleague (2->3): reachable.
  EXPECT_TRUE(
      s->cluster->LabelPairReachable(friend_l, false, colleague_l, false));
  // colleague (2->3) precedes friend? 3 has no outgoing edges, but
  // colleague 1->5 flows into friend 5->3. Reachable.
  EXPECT_TRUE(
      s->cluster->LabelPairReachable(colleague_l, false, friend_l, false));
  // Out-of-range label ids are never reachable.
  EXPECT_FALSE(s->cluster->LabelPairReachable(LabelId{9}, false, friend_l,
                                              false));
}

TEST(ClusterJoinIndex, RejectsMismatchedOracle) {
  auto s1 = BuildStack(MakeDiamond(), false);
  auto s2 = BuildStack(MakeDiamond(), true);  // different vertex count
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  auto bad = ClusterJoinIndex::Build(s2->lg, *s1->oracle);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sargus
