#include <gtest/gtest.h>

#include <string>

#include "common/result.h"
#include "common/status.h"

namespace sargus {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad hop");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad hop");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad hop");

  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(Status, EveryCodeHasAName) {
  EXPECT_EQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_EQ(StatusCodeName(StatusCode::kDeadlineExceeded),
            "DEADLINE_EXCEEDED");
  EXPECT_EQ(Status::Unavailable("shard 2 down").ToString(),
            "UNAVAILABLE: shard 2 down");
  EXPECT_EQ(Status::DeadlineExceeded("40ms budget").ToString(),
            "DEADLINE_EXCEEDED: 40ms budget");
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::InvalidArgument("a"));
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(Result, HoldsStatus) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(Result, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(Result, CopyAndAssign) {
  Result<std::string> a = std::string("abc");
  Result<std::string> b = a;
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(*b, "abc");
  b = Result<std::string>(Status::Internal("boom"));
  EXPECT_FALSE(b.ok());
  b = a;
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(*b, "abc");
}

}  // namespace
}  // namespace sargus
