#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "engine/access_engine.h"
#include "query/eval_context.h"
#include "synth/generators.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

using testing_util::BruteForceMatch;
using testing_util::MakeDiamond;
using testing_util::MustBind;

// ---- View lifecycle ---------------------------------------------------------

struct ViewFixture {
  SocialGraph g;
  PolicyStore store;
  ResourceId res = 0;
  std::unique_ptr<AccessControlEngine> engine;

  explicit ViewFixture(const std::vector<std::string>& rule_paths,
                       EngineOptions options = {}) {
    g = MakeDiamond();
    res = store.RegisterResource(/*owner=*/0, "doc");
    (void)store.AddRuleFromPaths(res, rule_paths).ValueOrDie();
    engine = std::make_unique<AccessControlEngine>(g, store, options);
    auto st = engine->RebuildIndexes();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  bool GrantedOn(const AccessReadView& view, NodeId requester) {
    auto r = view.CheckAccess({.requester = requester, .resource = res});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && r->granted;
  }
};

TEST(ReadView, PublicationSwapsViewsAndStampsDecisions) {
  ViewFixture f({"colleague[1]"});
  auto v0 = f.engine->AcquireReadView();
  ASSERT_NE(v0, nullptr);
  EXPECT_EQ(v0->snapshot_generation(), 1u);
  EXPECT_FALSE(f.GrantedOn(*v0, 5));  // 0 has no colleague out-edge

  ASSERT_TRUE(f.engine->AddEdge(0, 5, "colleague").ok());
  auto v1 = f.engine->AcquireReadView();
  ASSERT_NE(v1, v0);  // mutation published a new view
  EXPECT_TRUE(f.GrantedOn(*v1, 5));
  // The old view still answers against its frozen state.
  EXPECT_FALSE(f.GrantedOn(*v0, 5));

  // Stamps identify the state each view serves.
  auto d0 = v0->CheckAccess({.requester = 5, .resource = f.res});
  auto d1 = v1->CheckAccess({.requester = 5, .resource = f.res});
  ASSERT_TRUE(d0.ok());
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(d0->snapshot_generation, d1->snapshot_generation);
  EXPECT_LT(d0->overlay_version, d1->overlay_version);
}

TEST(ReadView, OldViewKeptAliveAcrossCompactStillAnswersConsistently) {
  ViewFixture f({"colleague[1]"});
  // Stage a grant-changing mutation, pin the pre-compaction view.
  ASSERT_TRUE(f.engine->AddEdge(0, 5, "colleague").ok());
  ASSERT_TRUE(f.engine->RemoveEdge(2, 3, "colleague").ok());
  auto overlay_view = f.engine->AcquireReadView();
  const uint64_t gen = overlay_view->snapshot_generation();
  const uint64_t ver = overlay_view->overlay_version();
  EXPECT_TRUE(f.GrantedOn(*overlay_view, 5));
  EXPECT_FALSE(overlay_view->overlay().empty());

  ASSERT_TRUE(f.engine->Compact().ok());
  f.engine->WaitForCompaction();  // background by default
  auto compacted_view = f.engine->AcquireReadView();
  EXPECT_GT(compacted_view->snapshot_generation(), gen);
  EXPECT_TRUE(compacted_view->overlay().empty());

  // The pinned view survived compaction: same stamps, same answers,
  // repeatedly, even though the engine's SocialGraph has since been
  // rewritten underneath its (frozen) CSR + overlay pair.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(f.GrantedOn(*overlay_view, 5));
    auto d = overlay_view->CheckAccess({.requester = 5, .resource = f.res});
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->snapshot_generation, gen);
    EXPECT_EQ(d->overlay_version, ver);
  }
  // Both views agree on the logical graph (compaction changes cost, not
  // answers).
  for (NodeId req = 0; req < 6; ++req) {
    EXPECT_EQ(f.GrantedOn(*overlay_view, req),
              f.GrantedOn(*compacted_view, req))
        << req;
  }
}

TEST(ReadView, PolicyChangesInvisibleUntilRepublish) {
  ViewFixture f({"colleague[1]"});
  auto stale = f.engine->AcquireReadView();
  // A rule added after publication is invisible to served decisions...
  ASSERT_TRUE(f.store.AddRuleFromPaths(f.res, {"friend[1]"}).ok());
  EXPECT_FALSE(f.GrantedOn(*stale, 1));  // friend[1] would grant 1
  auto still_stale = f.engine->CheckAccess({.requester = 1,
                                            .resource = f.res});
  ASSERT_TRUE(still_stale.ok());
  EXPECT_FALSE(still_stale->granted);
  // ...until the next publish picks it up.
  ASSERT_TRUE(f.engine->RefreshPolicies().ok());
  auto fresh = f.engine->CheckAccess({.requester = 1, .resource = f.res});
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->granted);
  // The pinned pre-refresh view still serves the old policy.
  EXPECT_FALSE(f.GrantedOn(*stale, 1));
  // Mutations republish too (and refresh stale policy along the way).
  ASSERT_TRUE(f.store.AddRuleFromPaths(f.res, {"friend[1,2]"}).ok());
  ASSERT_TRUE(f.engine->AddEdge(0, 5, "colleague").ok());
  auto after_mutation = f.engine->CheckAccess({.requester = 2,
                                               .resource = f.res});
  ASSERT_TRUE(after_mutation.ok());
  EXPECT_TRUE(after_mutation->granted);  // 0 -f-> 1 -f-> 2
}

// ---- Batch API --------------------------------------------------------------

TEST(ReadView, BatchAgreesWithLoopAndIsPositional) {
  SocialGraph g = MakeDiamond();
  PolicyStore store;
  const ResourceId r0 = store.RegisterResource(0, "a");
  (void)store.AddRuleFromPaths(r0, {"friend[1,2]"}).ValueOrDie();
  const ResourceId r1 = store.RegisterResource(2, "b");
  (void)store.AddRuleFromPaths(r1, {"colleague[1]"}).ValueOrDie();
  AccessControlEngine engine(g, store);
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  auto view = engine.AcquireReadView();

  // Interleaved resources (so grouping has to reorder), one bad
  // resource, one out-of-range requester, one witness request.
  std::vector<AccessRequest> requests;
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    requests.push_back({.requester = static_cast<NodeId>(rng.NextBounded(6)),
                        .resource = rng.NextBool(0.5) ? r0 : r1,
                        .want_witness = (i % 5 == 0)});
  }
  requests.push_back({.requester = 1, .resource = 99});   // unknown resource
  requests.push_back({.requester = 99, .resource = r0});  // bad requester

  EvalContext ctx;
  auto batch = view->CheckAccessBatch(requests, ctx);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    auto loop = view->CheckAccess(requests[i]);
    ASSERT_EQ(batch[i].ok(), loop.ok()) << i;
    if (!loop.ok()) {
      EXPECT_EQ(batch[i].status().code(), loop.status().code()) << i;
      continue;
    }
    EXPECT_EQ(batch[i]->granted, loop->granted) << i;
    EXPECT_EQ(batch[i]->requester, requests[i].requester) << i;
    EXPECT_EQ(batch[i]->resource, requests[i].resource) << i;
    EXPECT_EQ(batch[i]->witness.empty(), loop->witness.empty()) << i;
  }
  // The two malformed slots failed alone.
  EXPECT_EQ(batch[40].status().code(), StatusCode::kNotFound);
  EXPECT_EQ(batch[41].status().code(), StatusCode::kInvalidArgument);

  // Engine facade batch agrees and audits the successful decisions.
  auto facade = engine.CheckAccessBatch(requests);
  ASSERT_EQ(facade.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(facade[i].ok(), batch[i].ok()) << i;
    if (facade[i].ok()) EXPECT_EQ(facade[i]->granted, batch[i]->granted) << i;
  }
  EXPECT_EQ(engine.AuditTrail().size(), 40u);
}

// ---- Concurrency ------------------------------------------------------------

/// Mirror of the logical graph, rebuilt into fresh snapshots per check —
/// the semantics every published view must freeze.
struct MirrorOracle {
  SocialGraph g;
  explicit MirrorOracle(const SocialGraph& base) : g(base) {}
  void Add(NodeId s, NodeId d, LabelId l) { (void)g.AddEdge(s, d, l); }
  void Remove(NodeId s, NodeId d, LabelId l) {
    auto id = g.FindEdge(s, d, l);
    if (id.has_value()) (void)g.RemoveEdge(*id);
  }
};

TEST(ReadView, ConcurrentReadersVsMutatorAgreeWithPerStateOracle) {
  auto gen = GenerateErdosRenyi(
      {.base = {.num_nodes = 16, .seed = 99}, .avg_out_degree = 2.0});
  ASSERT_TRUE(gen.ok());
  SocialGraph g = std::move(*gen);

  PolicyStore store;
  const std::vector<std::vector<std::string>> rule_sets = {
      {"friend[1,2]"},
      {"friend[1]/colleague[1]"},
      {"colleague[1,2]"},
      {"friend[1,3]"},
  };
  struct Res {
    ResourceId id;
    NodeId owner;
  };
  std::vector<Res> resources;
  for (NodeId owner = 0; owner < 4; ++owner) {
    ResourceId id =
        store.RegisterResource(owner, "doc" + std::to_string(owner));
    (void)store.AddRuleFromPaths(id, rule_sets[owner]).ValueOrDie();
    resources.push_back({id, owner});
  }

  // Auto-compaction off: the mutator compacts explicitly, so every
  // published state is one it recorded an oracle matrix for.
  AccessControlEngine engine(g, store,
                             {.evaluator = EvaluatorChoice::kAuto,
                              .use_closure_prefilter = true,
                              .compact_threshold = 0});
  ASSERT_TRUE(engine.RebuildIndexes().ok());

  // Bound once against the engine graph (dictionaries only grow, so
  // these stay valid across compactions).
  std::vector<std::vector<BoundPathExpression>> bound(resources.size());
  for (size_t i = 0; i < resources.size(); ++i) {
    for (const std::string& text : rule_sets[i]) {
      bound[i].push_back(MustBind(g, text));
    }
  }
  const LabelId fr = g.labels().Lookup("friend");
  const LabelId co = g.labels().Lookup("colleague");
  ASSERT_NE(fr, kInvalidLabel);
  ASSERT_NE(co, kInvalidLabel);

  const size_t kNumNodes = g.NumNodes();
  const size_t kNumResources = resources.size();

  // Expected grant for every (resource, requester), per published state,
  // keyed by the (snapshot_generation, overlay_version) stamp.
  using StateKey = std::pair<uint64_t, uint64_t>;
  using Matrix = std::vector<uint8_t>;  // resources × requesters
  std::map<StateKey, Matrix> oracle_by_state;
  std::mutex oracle_mu;  // map insertions race reader starts, not lookups

  MirrorOracle mirror(g);
  auto record_state = [&]() {
    Matrix m(kNumResources * kNumNodes, 0);
    CsrSnapshot csr = CsrSnapshot::Build(mirror.g);
    for (size_t i = 0; i < kNumResources; ++i) {
      for (NodeId req = 0; req < kNumNodes; ++req) {
        bool expected = resources[i].owner == req;
        for (const auto& expr : bound[i]) {
          if (expected) break;
          expected = BruteForceMatch(mirror.g, csr, expr,
                                     resources[i].owner, req);
        }
        m[i * kNumNodes + req] = expected ? 1 : 0;
      }
    }
    StateKey key{engine.snapshot_generation(), engine.overlay_version()};
    std::lock_guard<std::mutex> lock(oracle_mu);
    oracle_by_state[key] = std::move(m);
  };
  record_state();  // the initial published state

  struct LoggedDecision {
    uint64_t gen;
    uint64_t ver;
    uint32_t resource_index;
    NodeId requester;
    bool granted;
  };

  std::atomic<bool> done{false};
  std::atomic<size_t> readers_started{0};
  const size_t kReaders = 8;
  std::vector<std::vector<LoggedDecision>> logs(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      Rng rng(1000 + t);
      EvalContext ctx;
      auto& log = logs[t];
      // Half the readers pin fresh views per query, half go through the
      // engine facade (exercising the audit-ring mutex under TSan).
      const bool use_facade = (t % 2 == 0);
      bool announced = false;
      // do/while: every reader logs at least one decision even if the
      // mutator finishes first (single-core schedulers may not run this
      // thread until the main thread blocks in join()).
      do {
        const uint32_t i =
            static_cast<uint32_t>(rng.NextBounded(kNumResources));
        const NodeId req = static_cast<NodeId>(rng.NextBounded(kNumNodes));
        AccessRequest request{.requester = req, .resource = resources[i].id};
        Result<AccessDecision> r = [&]() -> Result<AccessDecision> {
          if (use_facade) return engine.CheckAccess(request);
          auto view = engine.AcquireReadView();
          return view->CheckAccess(request, ctx);
        }();
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        log.push_back({r->snapshot_generation, r->overlay_version, i, req,
                       r->granted});
        if (!announced) {
          announced = true;
          readers_started.fetch_add(1, std::memory_order_release);
        }
      } while (!done.load(std::memory_order_acquire));
    });
  }
  // Don't start mutating until every reader has decided at least once,
  // so publications genuinely race in-flight reads.
  while (readers_started.load(std::memory_order_acquire) < kReaders) {
    std::this_thread::yield();
  }

  // The (single) mutator: interleaved AddEdge/RemoveEdge with periodic
  // explicit Compact()s, recording the oracle matrix for every state it
  // publishes. Readers race every one of these publications.
  Rng rng(4242);
  const size_t kOps = 120;
  for (size_t op = 0; op < kOps; ++op) {
    if (op % 8 == 0) std::this_thread::yield();  // let readers interleave
    if (op % 24 == 23) {
      // Background compaction: readers race the completion swap; the
      // wait pins down the published (generation, version) to record.
      // (The logical graph is compaction-invariant, so the matrix is
      // the same either way — only the key needs the quiesce.)
      ASSERT_TRUE(engine.Compact().ok());
      engine.WaitForCompaction();
      record_state();
      continue;
    }
    if (rng.NextBool(0.6)) {
      const NodeId s = static_cast<NodeId>(rng.NextBounded(kNumNodes));
      const NodeId d = static_cast<NodeId>(rng.NextBounded(kNumNodes));
      const LabelId l = rng.NextBool(0.5) ? fr : co;
      ASSERT_TRUE(engine.AddEdge(s, d, l).ok());
      mirror.Add(s, d, l);
    } else {
      // Remove a random live logical edge of the mirror, if any.
      std::optional<Edge> picked;
      for (int attempts = 0; attempts < 256 && !picked.has_value();
           ++attempts) {
        EdgeId e =
            static_cast<EdgeId>(rng.NextBounded(mirror.g.EdgeSlotCount()));
        if (mirror.g.IsLiveEdge(e)) picked = mirror.g.edge(e);
      }
      if (!picked.has_value()) continue;
      ASSERT_TRUE(
          engine.RemoveEdge(picked->src, picked->dst, picked->label).ok());
      mirror.Remove(picked->src, picked->dst, picked->label);
    }
    record_state();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Every logged decision must match the oracle matrix of the exact
  // published state its stamps name.
  size_t checked = 0;
  for (const auto& log : logs) {
    EXPECT_FALSE(log.empty());
    for (const LoggedDecision& d : log) {
      auto it = oracle_by_state.find({d.gen, d.ver});
      ASSERT_NE(it, oracle_by_state.end())
          << "decision stamped with unrecorded state (gen=" << d.gen
          << ", ver=" << d.ver << ")";
      const bool expected =
          it->second[d.resource_index * kNumNodes + d.requester] != 0;
      ASSERT_EQ(d.granted, expected)
          << "gen=" << d.gen << " ver=" << d.ver << " resource "
          << d.resource_index << " requester " << d.requester;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  // The facade readers audited concurrently; the ring must have survived
  // (bounded size, no torn entries — TSan guards the rest).
  EXPECT_LE(engine.AuditTrail().size(), engine.options().audit_capacity);
}

TEST(ReadView, EightThreadsHammerOneSharedView) {
  ViewFixture f({"friend[1,2]/colleague[1]"});
  auto view = f.engine->AcquireReadView();
  // Requester 3 is granted (0-f->4-c->3), requester 2 denied.
  std::vector<std::thread> threads;
  std::atomic<size_t> wrong{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      EvalContext ctx;
      for (int i = 0; i < 500; ++i) {
        auto yes = view->CheckAccess(
            {.requester = 3, .resource = f.res,
             .want_witness = (i % 7 == 0)},
            ctx);
        auto no =
            view->CheckAccess({.requester = 2, .resource = f.res}, ctx);
        if (!yes.ok() || !yes->granted || !no.ok() || no->granted) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0u);
}

}  // namespace
}  // namespace sargus
