// Chaos suite for the sharded serving tier (PR 7): every completed
// decision must agree exactly with a single-engine oracle over the
// unpartitioned graph, and every non-answer must be an explicit
// kUnavailable / kDeadlineExceeded — across random fault storms,
// shard blackouts, mid-mutation failures, and recovery. A silently
// wrong grant or deny is the one bug this file exists to catch.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "engine/access_engine.h"
#include "shard/partitioner.h"
#include "shard/router.h"
#include "shard/transport.h"
#include "shard/wire.h"
#include "synth/generators.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

bool IsTransportCode(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

struct Workload {
  SocialGraph graph;
  PolicyStore store;
  std::vector<ResourceId> resources;
};

Workload MakeWorkload(SocialGraph g) {
  Workload w;
  w.graph = std::move(g);
  const size_t n = w.graph.NumNodes();
  const std::vector<std::vector<std::string>> rule_sets = {
      {"friend[1,3]"},
      {"friend[1,2]/colleague[1,2]"},
      {"colleague-[1,2]"},
      {"friend[1,2]{age>=18}"},
      {"family[1,4]"},
  };
  for (size_t i = 0; i < 10; ++i) {
    const NodeId owner = static_cast<NodeId>((i * 37 + 11) % n);
    const ResourceId r =
        w.store.RegisterResource(owner, "res" + std::to_string(i));
    EXPECT_TRUE(
        w.store.AddRuleFromPaths(r, rule_sets[i % rule_sets.size()]).ok());
    if (i % 3 == 0) {
      EXPECT_TRUE(w.store.AddRuleFromPaths(r, {"colleague[1,2]"}).ok());
    }
    w.resources.push_back(r);
  }
  return w;
}

Result<SocialGraph> SmallBa(uint64_t seed) {
  BarabasiAlbertSpec spec;
  spec.base.num_nodes = 60;
  spec.base.seed = seed;
  spec.edges_per_node = 2;
  return GenerateBarabasiAlbert(spec);
}

/// Installs a FaultInjectionTransport at Build() and hands back the raw
/// pointer (owned by the router) so the test can drive the knobs.
void InstallFaultSeam(RouterOptions& opts, uint64_t seed,
                      FaultInjectionTransport** out) {
  opts.transport_decorator =
      [out, seed](std::unique_ptr<ShardTransport> inner)
      -> std::unique_ptr<ShardTransport> {
    auto t = std::make_unique<FaultInjectionTransport>(std::move(inner), seed);
    *out = t.get();
    return t;
  };
}

// The 8-node / 2-shard chain fixture: nodes 0-3 on shard 0, 4-7 on
// shard 1, chain 0 -f-> 4 -f-> 5 -f-> 1, resource at node 0 guarded by
// friend[1,3]. Node 0 is a boundary vertex of shard 0 (cut edge 0->4),
// so its shard's boundary summary can carry a walk across it even when
// the shard itself is dark.
struct ChainFixture {
  SocialGraph graph;
  PolicyStore store;
  ResourceId res = 0;
};

ChainFixture MakeChain() {
  ChainFixture f;
  f.graph.AddNodes(8);
  EXPECT_TRUE(f.graph.AddEdge(0, 4, "friend").ok());
  EXPECT_TRUE(f.graph.AddEdge(4, 5, "friend").ok());
  EXPECT_TRUE(f.graph.AddEdge(5, 1, "friend").ok());
  f.res = f.store.RegisterResource(0, "res");
  EXPECT_TRUE(f.store.AddRuleFromPaths(f.res, {"friend[1,3]"}).ok());
  return f;
}

// ---- Randomized fault storms vs the oracle ---------------------------------

// `threaded` swaps the serial InProcessTransport under the fault
// decorator for the thread-per-shard ThreadedTransport: the same storm
// now lands on genuinely concurrent scatter-gather sub-batches and
// parallel frontier rounds, and every invariant must hold unchanged.
void RunChaosOracle(uint32_t num_shards, bool threaded = false) {
  auto g = SmallBa(1000 + num_shards);
  ASSERT_TRUE(g.ok());
  Workload w = MakeWorkload(std::move(*g));
  SocialGraph oracle_graph = w.graph;

  RouterOptions opts;
  opts.partition.num_shards = num_shards;
  opts.partition.strategy = PartitionStrategy::kContiguous;
  opts.threaded_transport = threaded;
  FaultInjectionTransport* fault = nullptr;
  InstallFaultSeam(opts, 0xC4A05 + num_shards, &fault);
  ShardRouter router(w.graph, w.store, opts);
  ASSERT_TRUE(router.Build().ok());
  ASSERT_NE(fault, nullptr);

  ShardFaultProfile p;
  p.delay_probability = 0.10;
  p.drop_probability = 0.05;
  p.error_probability = 0.03;
  p.corrupt_probability = 0.03;
  p.delay_min_ms = 1;
  p.delay_max_ms = 60;  // sometimes past the 50ms per-attempt deadline
  for (uint32_t s = 0; s < num_shards; ++s) fault->SetProfile(s, p);

  AccessControlEngine oracle(oracle_graph, w.store);
  ASSERT_TRUE(oracle.RebuildIndexes().ok());

  const std::string tag = "chaos/" + std::to_string(num_shards);
  const size_t n = oracle_graph.NumNodes();
  Rng rng(0xD15EA5E + num_shards);
  uint64_t completed = 0;
  uint64_t refused = 0;
  // Mutations the router really applied (mirrored into the oracle);
  // removals draw from this list so an in-band NotFound never muddies
  // the fail-stop bookkeeping.
  std::vector<std::pair<NodeId, NodeId>> applied;

  auto check_one = [&](const AccessRequest& req, const std::string& where) {
    const auto got = router.CheckAccess(req);
    const auto want = oracle.CheckAccess(req);
    ASSERT_TRUE(want.ok()) << tag << "/" << where;
    if (got.ok()) {
      ++completed;
      EXPECT_EQ(got->granted, want->granted)
          << tag << "/" << where << " requester=" << req.requester
          << " resource=" << req.resource
          << " degraded=" << got->degraded_reason;
      EXPECT_EQ(got->owner_access, want->owner_access)
          << tag << "/" << where;
    } else {
      ++refused;
      EXPECT_TRUE(IsTransportCode(got.status().code()))
          << tag << "/" << where << " " << got.status().ToString();
    }
  };

  for (int i = 0; i < 400; ++i) {
    if (rng.NextBool(0.08)) {
      const bool remove = !applied.empty() && rng.NextBool(0.3);
      NodeId a, b;
      if (remove) {
        const size_t k = rng.NextBounded(applied.size());
        a = applied[k].first;
        b = applied[k].second;
        const Status st = router.RemoveEdge(a, b, "friend");
        EXPECT_NE(st.code(), StatusCode::kInternal) << tag;
        if (st.ok()) {
          ASSERT_TRUE(oracle.RemoveEdge(a, b, "friend").ok());
          applied.erase(applied.begin() + static_cast<ptrdiff_t>(k));
        } else {
          // Fail-stop: a refused mutation was never applied anywhere.
          EXPECT_TRUE(IsTransportCode(st.code())) << tag << " "
                                                  << st.ToString();
        }
      } else {
        a = static_cast<NodeId>(rng.NextBounded(n));
        b = static_cast<NodeId>(rng.NextBounded(n));
        if (a == b) continue;
        const Status st = router.AddEdge(a, b, "friend");
        EXPECT_NE(st.code(), StatusCode::kInternal) << tag;
        if (st.ok()) {
          ASSERT_TRUE(oracle.AddEdge(a, b, "friend").ok());
          applied.push_back({a, b});
        } else {
          EXPECT_TRUE(IsTransportCode(st.code())) << tag << " "
                                                  << st.ToString();
        }
      }
    } else {
      AccessRequest req;
      req.requester = static_cast<NodeId>(rng.NextBounded(n));
      req.resource = w.resources[rng.NextBounded(w.resources.size())];
      check_one(req, "single " + std::to_string(i));
    }
    if (i % 97 == 96) ASSERT_TRUE(router.RefreshSummaries().ok()) << tag;
  }

  // The batch path honors the same contract, slot by slot.
  std::vector<AccessRequest> batch;
  for (int i = 0; i < 30; ++i) {
    batch.push_back({.requester = static_cast<NodeId>(rng.NextBounded(n)),
                     .resource =
                         w.resources[rng.NextBounded(w.resources.size())]});
  }
  const auto routed = router.CheckAccessBatch(batch);
  ASSERT_EQ(routed.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto want = oracle.CheckAccess(batch[i]);
    ASSERT_TRUE(want.ok());
    if (routed[i].ok()) {
      ++completed;
      EXPECT_EQ(routed[i]->granted, want->granted)
          << tag << "/batch slot " << i;
    } else {
      ++refused;
      EXPECT_TRUE(IsTransportCode(routed[i].status().code()))
          << tag << "/batch slot " << i << " "
          << routed[i].status().ToString();
    }
  }

  EXPECT_GT(completed, 0u) << tag;
  const RouterCounters c = router.counters();
  // Every refused check was counted, and nothing else was.
  EXPECT_EQ(c.unavailable_errors, refused) << tag;
  // The storm really forced the retry machinery to work.
  EXPECT_GT(c.retries, 0u) << tag;
}

TEST(ChaosOracle, RandomFaultSchedulesOneShard) { RunChaosOracle(1); }
TEST(ChaosOracle, RandomFaultSchedulesTwoShards) { RunChaosOracle(2); }
TEST(ChaosOracle, RandomFaultSchedulesFourShards) { RunChaosOracle(4); }
TEST(ChaosOracle, RandomFaultSchedulesSevenShards) { RunChaosOracle(7); }

// The same storms under real parallelism (chaos-under-parallelism).
TEST(ShardParallelChaos, FaultStormsOneShardThreaded) {
  RunChaosOracle(1, /*threaded=*/true);
}
TEST(ShardParallelChaos, FaultStormsTwoShardsThreaded) {
  RunChaosOracle(2, /*threaded=*/true);
}
TEST(ShardParallelChaos, FaultStormsFourShardsThreaded) {
  RunChaosOracle(4, /*threaded=*/true);
}
TEST(ShardParallelChaos, FaultStormsSevenShardsThreaded) {
  RunChaosOracle(7, /*threaded=*/true);
}

// ---- One slow shard must not stall the rest of a batch ---------------------

TEST(ShardParallelChaos, SlowShardDoesNotStallOtherSubBatches) {
  // Four shards with no cross-shard edges: every check is concluded
  // entirely on its owner's shard, so the shards' sub-batches are
  // independent. Shard 0's worker sleeps far past the per-attempt
  // deadline on every dispatch; the other shards' slots must still
  // complete exactly, and the whole batch must return well within ONE
  // slow-shard sleep — proof the sub-batches really ran concurrently
  // and the router abandoned the stuck shard at its deadline instead
  // of serializing behind it.
  constexpr uint32_t kShards = 4;
  constexpr uint64_t kSleepMs = 600;
  SocialGraph g;
  g.AddNodes(40);  // contiguous: nodes [10s, 10s+9] land on shard s
  PolicyStore store;
  std::vector<ResourceId> res;
  for (uint32_t s = 0; s < kShards; ++s) {
    const NodeId owner = static_cast<NodeId>(10 * s);
    ASSERT_TRUE(g.AddEdge(owner, owner + 1, "friend").ok());
    const ResourceId r =
        store.RegisterResource(owner, "res" + std::to_string(s));
    ASSERT_TRUE(store.AddRuleFromPaths(r, {"friend[1,2]"}).ok());
    res.push_back(r);
  }

  RouterOptions opts;
  opts.partition.num_shards = kShards;
  opts.partition.strategy = PartitionStrategy::kContiguous;
  opts.threaded_transport = true;
  opts.robustness.call_deadline_ms = 40;
  opts.robustness.op_budget_ms = 120;
  opts.robustness.max_attempts = 1;  // a retry would just re-wait
  opts.robustness.allow_degraded = false;
  std::atomic<uint64_t> slow_dispatches{0};
  opts.executor.pre_dispatch_hook = [&](uint32_t shard) {
    if (shard == 0) {
      slow_dispatches.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(kSleepMs));
    }
  };
  ShardRouter router(g, store, opts);
  ASSERT_TRUE(router.Build().ok());

  std::vector<AccessRequest> batch;
  for (uint32_t s = 0; s < kShards; ++s) {
    const NodeId owner = static_cast<NodeId>(10 * s);
    batch.push_back({.requester = owner + 1, .resource = res[s]});  // grant
    batch.push_back({.requester = owner + 2, .resource = res[s]});  // deny
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto decisions = router.CheckAccessBatch(batch);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_EQ(decisions.size(), batch.size());

  // Shard 0's slots: explicit transport errors, never a guess.
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_FALSE(decisions[i].ok()) << "slot " << i;
    EXPECT_TRUE(IsTransportCode(decisions[i].status().code()))
        << decisions[i].status().ToString();
  }
  // Every other shard's slots: exact answers.
  for (uint32_t s = 1; s < kShards; ++s) {
    const auto& grant = decisions[2 * s];
    const auto& deny = decisions[2 * s + 1];
    ASSERT_TRUE(grant.ok()) << grant.status().ToString();
    EXPECT_TRUE(grant->granted);
    ASSERT_TRUE(deny.ok()) << deny.status().ToString();
    EXPECT_FALSE(deny->granted);
  }
  // The wall: the batch returned while shard 0's worker was still
  // asleep — nothing waited the sleep out.
  EXPECT_LT(elapsed_ms, static_cast<int64_t>(kSleepMs));
  EXPECT_GE(slow_dispatches.load(), 1u);
  EXPECT_GT(router.counters().timeouts, 0u);
}

// ---- Multi-reader fan-out under faults (TSan target) -----------------------

TEST(ShardParallelStress, ReadersFanOutFaultsAndWriter) {
  // Reader threads drive scatter-gather batches through the threaded
  // executor (caller threads racing per-shard workers) while injected
  // faults flip outcomes and one writer mutates, blacks out shards, and
  // refreshes summaries. The assertions are the chaos invariants; the
  // real assertion is TSan reporting zero races across the executor's
  // queues, tickets, and the router's scatter state.
  auto g = SmallBa(29);
  ASSERT_TRUE(g.ok());
  Workload w = MakeWorkload(std::move(*g));
  RouterOptions opts;
  opts.partition.num_shards = 4;
  opts.threaded_transport = true;
  FaultInjectionTransport* fault = nullptr;
  InstallFaultSeam(opts, 77, &fault);
  ShardRouter router(w.graph, w.store, opts);
  ASSERT_TRUE(router.Build().ok());

  ShardFaultProfile p;
  p.delay_probability = 0.15;
  p.drop_probability = 0.05;
  p.error_probability = 0.05;
  p.corrupt_probability = 0.05;
  for (uint32_t s = 0; s < 4; ++s) fault->SetProfile(s, p);

  const size_t n = router.topology()->shard_of.size();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(3000 + t);
      std::vector<AccessRequest> batch;
      while (!stop.load(std::memory_order_acquire)) {
        // Mostly batches: the point is concurrent fan-out, so several
        // caller threads should be scattering sub-batches at once.
        batch.clear();
        const size_t slots = 2 + rng.NextBounded(8);
        for (size_t i = 0; i < slots; ++i) {
          batch.push_back(
              {.requester = static_cast<NodeId>(rng.NextBounded(n)),
               .resource =
                   w.resources[rng.NextBounded(w.resources.size())]});
        }
        for (const auto& d : router.CheckAccessBatch(batch)) {
          EXPECT_TRUE(d.ok() || IsTransportCode(d.status().code()))
              << d.status().ToString();
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  {
    Rng rng(42);
    for (int step = 0; step < 60; ++step) {
      const uint32_t dark = static_cast<uint32_t>(step % 4);
      if (step % 5 == 0) fault->Blackout(dark, true);
      const NodeId a = static_cast<NodeId>(rng.NextBounded(n));
      const NodeId b = static_cast<NodeId>(rng.NextBounded(n));
      if (a != b) {
        const Status st = (step % 3 == 2)
                              ? router.RemoveEdge(a, b, "friend")
                              : router.AddEdge(a, b, "friend");
        EXPECT_NE(st.code(), StatusCode::kInternal) << st.ToString();
      }
      if (step % 5 == 0) fault->Blackout(dark, false);
      if (step % 10 == 9) ASSERT_TRUE(router.RefreshSummaries().ok());
    }
  }
  while (reads.load(std::memory_order_relaxed) < 100) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(router.counters().checks, 0u);
}

// ---- Blackout: degraded serving, explicit refusals, recovery ---------------

TEST(ChaosOracle, ShardBlackoutAndRecovery) {
  ChainFixture f = MakeChain();
  SocialGraph oracle_graph = f.graph;
  RouterOptions opts;
  opts.partition.num_shards = 2;
  opts.partition.strategy = PartitionStrategy::kContiguous;
  FaultInjectionTransport* fault = nullptr;
  InstallFaultSeam(opts, 7, &fault);
  ShardRouter router(f.graph, f.store, opts);
  ASSERT_TRUE(router.Build().ok());
  AccessControlEngine oracle(oracle_graph, f.store);
  ASSERT_TRUE(oracle.RebuildIndexes().ok());

  // Healthy baseline: 1 granted through two cut crossings, 3 and 6
  // denied, nothing degraded.
  for (const NodeId r : {NodeId{1}, NodeId{3}, NodeId{6}}) {
    const auto d = router.CheckAccess({.requester = r, .resource = f.res});
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->granted, r == 1) << "requester " << r;
    EXPECT_TRUE(d->degraded_reason.empty());
  }

  // Lights out on shard 0 — the shard holding the resource owner.
  fault->Blackout(0, true);
  EXPECT_TRUE(fault->blacked_out(0));

  // Requester 1: the grant is concluded from shard 0's FRESH boundary
  // summary (the accepting cut arc 5->1 re-enters the dark shard at the
  // requester itself) — exact, stamped degraded.
  const auto d1 = router.CheckAccess({.requester = 1, .resource = f.res});
  ASSERT_TRUE(d1.ok()) << d1.status().ToString();
  EXPECT_TRUE(d1->granted);
  EXPECT_EQ(d1->evaluator_name, "shard-degraded");
  EXPECT_FALSE(d1->degraded_reason.empty());

  // Requester 6 (healthy shard): the deny concludes exactly — the
  // composition walks shard 0's summary across the dark shard and the
  // final local walk runs on healthy shard 1.
  const auto d6 = router.CheckAccess({.requester = 6, .resource = f.res});
  ASSERT_TRUE(d6.ok()) << d6.status().ToString();
  EXPECT_FALSE(d6->granted);
  EXPECT_FALSE(d6->degraded_reason.empty());

  // Requester 3: concluding the deny would need a live walk INSIDE the
  // dark shard. Degraded mode never guesses: explicit kUnavailable.
  const auto d3 = router.CheckAccess({.requester = 3, .resource = f.res});
  EXPECT_EQ(d3.status().code(), StatusCode::kUnavailable);

  // The owner's own access never needs the data plane.
  const auto d0 = router.CheckAccess({.requester = 0, .resource = f.res});
  ASSERT_TRUE(d0.ok());
  EXPECT_TRUE(d0->owner_access);
  EXPECT_TRUE(d0->degraded_reason.empty());

  // Mutations that must touch the dark shard fail stop before applying
  // anything, so view stamps cannot move and the summaries the degraded
  // path leans on stay provably fresh...
  EXPECT_EQ(router.AddEdge(2, 3, "friend").code(), StatusCode::kUnavailable);
  // ...and degraded answers keep flowing afterwards.
  const auto again = router.CheckAccess({.requester = 1, .resource = f.res});
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->granted);
  EXPECT_FALSE(again->degraded_reason.empty());

  RouterCounters c = router.counters();
  EXPECT_GE(c.degraded_answers, 3u);
  EXPECT_GE(c.unavailable_errors, 1u);
  EXPECT_GE(c.breaker_opens, 1u);
  EXPECT_EQ(router.health().state(0), BreakerState::kOpen);

  // Recovery: lights back on, the open window elapses on the virtual
  // clock, the half-open probe succeeds, and service is ordinary again.
  fault->Blackout(0, false);
  fault->SleepMs(500);
  for (const NodeId r : {NodeId{1}, NodeId{3}, NodeId{6}}) {
    const AccessRequest req{.requester = r, .resource = f.res};
    const auto d = router.CheckAccess(req);
    const auto want = oracle.CheckAccess(req);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(d->granted, want->granted) << "requester " << r;
    EXPECT_TRUE(d->degraded_reason.empty());
  }
  EXPECT_EQ(router.health().state(0), BreakerState::kClosed);
}

TEST(ChaosOracle, DegradedRefusesWhenSummariesDisabled) {
  ChainFixture f = MakeChain();
  RouterOptions opts;
  opts.partition.num_shards = 2;
  opts.partition.strategy = PartitionStrategy::kContiguous;
  opts.build_summaries = false;
  FaultInjectionTransport* fault = nullptr;
  InstallFaultSeam(opts, 11, &fault);
  ShardRouter router(f.graph, f.store, opts);
  ASSERT_TRUE(router.Build().ok());

  fault->Blackout(0, true);
  // Without summaries there is nothing exact to answer from: every
  // non-owner check against the dark shard is an explicit refusal.
  const auto d = router.CheckAccess({.requester = 1, .resource = f.res});
  EXPECT_EQ(d.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(router.counters().degraded_answers, 0u);
}

// ---- Mid-mutation blackout: no torn cut edges ------------------------------

TEST(ChaosOracle, MidMutationBlackout) {
  ChainFixture f = MakeChain();
  SocialGraph oracle_graph = f.graph;
  RouterOptions opts;
  opts.partition.num_shards = 2;
  opts.partition.strategy = PartitionStrategy::kContiguous;
  FaultInjectionTransport* fault = nullptr;
  InstallFaultSeam(opts, 13, &fault);
  ShardRouter router(f.graph, f.store, opts);
  ASSERT_TRUE(router.Build().ok());
  AccessControlEngine oracle(oracle_graph, f.store);
  ASSERT_TRUE(oracle.RebuildIndexes().ok());

  // Cut edge 5 -> 3: if it existed, requester 3 would be granted via
  // 0 -> 4 -> 5 -> 3. Its first half lands on healthy shard 1
  // (shard_of[5]), its second on blacked-out shard 0 (shard_of[3]) — so
  // shard 1 applies, shard 0 refuses, and the router must roll shard 1
  // back. A torn edge here would grant requester 3 through shard 1's
  // walk: silently wrong, exactly what must never happen.
  const uint64_t epoch_before = router.topology()->epoch;
  fault->Blackout(0, true);
  EXPECT_EQ(router.AddEdge(5, 3, "friend").code(), StatusCode::kUnavailable);
  fault->Blackout(0, false);
  EXPECT_EQ(router.topology()->epoch, epoch_before);  // no cut arc published

  // Heal fully: breaker window + summaries (the rollback legitimately
  // moved shard 1's stamps, so its summary is stale until refreshed).
  fault->SleepMs(500);
  ASSERT_TRUE(router.RefreshSummaries().ok());

  // The oracle never saw the edge, and the router agrees it is not
  // there: requester 3 is still denied.
  const AccessRequest req3{.requester = 3, .resource = f.res};
  auto d3 = router.CheckAccess(req3);
  auto want3 = oracle.CheckAccess(req3);
  ASSERT_TRUE(d3.ok()) << d3.status().ToString();
  ASSERT_TRUE(want3.ok());
  EXPECT_FALSE(d3->granted);
  EXPECT_EQ(d3->granted, want3->granted);

  // Retrying the same mutation with the lights on applies cleanly on
  // both shards and flips the answer everywhere at once.
  ASSERT_TRUE(router.AddEdge(5, 3, "friend").ok());
  ASSERT_TRUE(oracle.AddEdge(5, 3, "friend").ok());
  EXPECT_EQ(router.topology()->epoch, epoch_before + 1);
  d3 = router.CheckAccess(req3);
  want3 = oracle.CheckAccess(req3);
  ASSERT_TRUE(d3.ok());
  ASSERT_TRUE(want3.ok());
  EXPECT_TRUE(d3->granted);
  EXPECT_TRUE(want3->granted);
}

// ---- Concurrency under faults (TSan target) --------------------------------

TEST(ShardTransportConcurrency, ReadersRaceFaultsAndWriter) {
  auto g = SmallBa(17);
  ASSERT_TRUE(g.ok());
  Workload w = MakeWorkload(std::move(*g));
  RouterOptions opts;
  opts.partition.num_shards = 4;
  FaultInjectionTransport* fault = nullptr;
  InstallFaultSeam(opts, 99, &fault);
  ShardRouter router(w.graph, w.store, opts);
  ASSERT_TRUE(router.Build().ok());

  ShardFaultProfile p;
  p.delay_probability = 0.15;
  p.drop_probability = 0.05;
  p.error_probability = 0.05;
  p.corrupt_probability = 0.05;
  for (uint32_t s = 0; s < 4; ++s) fault->SetProfile(s, p);

  const size_t n = router.topology()->shard_of.size();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(2000 + t);
      std::vector<AccessRequest> batch;
      while (!stop.load(std::memory_order_acquire)) {
        AccessRequest req;
        req.requester = static_cast<NodeId>(rng.NextBounded(n));
        req.resource = w.resources[rng.NextBounded(w.resources.size())];
        if (rng.NextBool(0.2)) {
          batch.assign(3, req);
          for (const auto& d : router.CheckAccessBatch(batch)) {
            EXPECT_TRUE(d.ok() || IsTransportCode(d.status().code()))
                << d.status().ToString();
          }
        } else {
          const auto d = router.CheckAccess(req);
          EXPECT_TRUE(d.ok() || IsTransportCode(d.status().code()))
              << d.status().ToString();
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  {
    // One writer mutating through the faulty transport while shards
    // black out and recover underneath the readers.
    Rng rng(42);
    for (int step = 0; step < 60; ++step) {
      const uint32_t dark = static_cast<uint32_t>(step % 4);
      if (step % 5 == 0) fault->Blackout(dark, true);
      const NodeId a = static_cast<NodeId>(rng.NextBounded(n));
      const NodeId b = static_cast<NodeId>(rng.NextBounded(n));
      if (a != b) {
        const Status st = (step % 3 == 2)
                              ? router.RemoveEdge(a, b, "friend")
                              : router.AddEdge(a, b, "friend");
        EXPECT_NE(st.code(), StatusCode::kInternal) << st.ToString();
      }
      if (step % 5 == 0) fault->Blackout(dark, false);
      // The control plane stays reliable throughout.
      if (step % 10 == 9) ASSERT_TRUE(router.RefreshSummaries().ok());
    }
  }
  while (reads.load(std::memory_order_relaxed) < 200) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(router.counters().checks, 0u);
}

}  // namespace
}  // namespace sargus
