#include <gtest/gtest.h>

#include "query/online_evaluator.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

using testing_util::BuildStack;
using testing_util::MakeDiamond;
using testing_util::MustBind;

class OnlineEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stack_ = BuildStack(MakeDiamond(), /*include_backward=*/true);
    ASSERT_NE(stack_, nullptr);
  }
  Result<Evaluation> Eval(const std::string& expr, NodeId src, NodeId dst,
                          bool witness = false) {
    exprs_.push_back(
        std::make_unique<BoundPathExpression>(MustBind(stack_->g, expr)));
    OnlineEvaluator eval(stack_->g, stack_->csr);
    return eval.Evaluate(
        ReachQuery{src, dst, exprs_.back().get(), witness});
  }
  std::unique_ptr<testing_util::Stack> stack_;
  std::vector<std::unique_ptr<BoundPathExpression>> exprs_;
};

TEST_F(OnlineEvalTest, DirectEdge) {
  auto r = Eval("friend[1]", 0, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->granted);
  EXPECT_FALSE(Eval("friend[1]", 0, 2)->granted);   // two hops away
  EXPECT_FALSE(Eval("friend[1]", 1, 0)->granted);   // wrong direction
  EXPECT_FALSE(Eval("colleague[1]", 0, 1)->granted);  // wrong label
}

TEST_F(OnlineEvalTest, HopRange) {
  EXPECT_TRUE(Eval("friend[1,2]", 0, 2)->granted);   // 0-1-2
  EXPECT_FALSE(Eval("friend[2,2]", 0, 1)->granted);  // exactly 2 required
  EXPECT_TRUE(Eval("friend[2,2]", 0, 2)->granted);
  // 0-1-2-0: a cycle back to the source in 3 friend hops.
  EXPECT_TRUE(Eval("friend[3,3]", 0, 0)->granted);
}

TEST_F(OnlineEvalTest, PaperQ1) {
  // friend[1,2]/colleague[1]: 0 -f-> 4 -c-> 3 and 0 -f-> 1 -f-> 2 -c-> 3.
  EXPECT_TRUE(Eval("friend[1,2]/colleague[1]", 0, 3)->granted);
  // From node 1: 1 -f-> 2 -c-> 3.
  EXPECT_TRUE(Eval("friend[1,2]/colleague[1]", 1, 3)->granted);
  // From node 5: friend 5->3, but 3 has no outgoing colleague edge.
  EXPECT_FALSE(Eval("friend[1,2]/colleague[1]", 5, 3)->granted);
}

TEST_F(OnlineEvalTest, BackwardStep) {
  // friend-[1]: traverse a friend edge against its direction: 1 -> 0.
  EXPECT_TRUE(Eval("friend-[1]", 1, 0)->granted);
  EXPECT_FALSE(Eval("friend-[1]", 0, 1)->granted);
  // 3 has incoming friend from 5: 3 -friend-[1]-> 5.
  EXPECT_TRUE(Eval("friend-[1]", 3, 5)->granted);
  // Mixed: 3 -c-[1]-> 4 (backward colleague), then 4 is friend-from 0.
  EXPECT_TRUE(Eval("colleague-[1]/friend-[1]", 3, 0)->granted);
}

TEST_F(OnlineEvalTest, AttributeFilters) {
  // ages: node v -> 10 + 10v. friend[1]{age>=30}: 0 -> 4 passes (age 50)
  // but 0 -> 1 fails (age 20).
  EXPECT_TRUE(Eval("friend[1]{age>=30}", 0, 4)->granted);
  EXPECT_FALSE(Eval("friend[1]{age>=30}", 0, 1)->granted);
  // Filter applies to intermediate nodes too: 0-1-2 with age>=25 fails
  // at node 1 (20) even though 2 (30) passes.
  EXPECT_FALSE(Eval("friend[2,2]{age>=25}", 0, 2)->granted);
  EXPECT_TRUE(Eval("friend[2,2]{age>=15}", 0, 2)->granted);
  // Conjunction: impossible band denies.
  EXPECT_FALSE(Eval("friend[1]{age>=30,age<=40}", 0, 1)->granted);
  EXPECT_TRUE(Eval("friend[1]{age>=30,age<=60}", 0, 4)->granted);
}

TEST_F(OnlineEvalTest, WitnessIsValidPath) {
  auto r = Eval("friend[1,2]/colleague[1]", 0, 3, /*witness=*/true);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->granted);
  const auto& w = r->witness;
  ASSERT_GE(w.size(), 3u);
  EXPECT_EQ(w.front(), 0u);
  EXPECT_EQ(w.back(), 3u);
  // Every consecutive pair is a real edge of the right label family.
  for (size_t i = 0; i + 1 < w.size(); ++i) {
    bool found = false;
    for (const auto& e : stack_->csr.Out(w[i])) {
      if (e.other == w[i + 1]) found = true;
    }
    EXPECT_TRUE(found) << "no edge " << w[i] << " -> " << w[i + 1];
  }
}

TEST_F(OnlineEvalTest, SelfLoopWitnessKeepsRepeatedNodes) {
  SocialGraph g;
  g.AddNode();
  (void)g.AddEdge(0, 0, "friend");
  CsrSnapshot csr = CsrSnapshot::Build(g);
  const BoundPathExpression expr = MustBind(g, "friend[2,2]");
  OnlineEvaluator eval(g, csr);
  auto r = eval.Evaluate(ReachQuery{0, 0, &expr, /*want_witness=*/true});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->granted);
  // Two hops around the self-loop: the witness must trace both.
  EXPECT_EQ(r->witness, (std::vector<NodeId>{0, 0, 0}));
}

TEST_F(OnlineEvalTest, DfsAgreesWithBfs) {
  const char* exprs[] = {"friend[1]", "friend[1,2]", "friend[1,2]/colleague[1]",
                         "friend-[1,2]", "colleague[1]/friend-[1]"};
  for (const char* text : exprs) {
    for (NodeId src = 0; src < 6; ++src) {
      for (NodeId dst = 0; dst < 6; ++dst) {
        exprs_.push_back(std::make_unique<BoundPathExpression>(
            MustBind(stack_->g, text)));
        OnlineEvaluator bfs(stack_->g, stack_->csr, TraversalOrder::kBfs);
        OnlineEvaluator dfs(stack_->g, stack_->csr, TraversalOrder::kDfs);
        ReachQuery q{src, dst, exprs_.back().get(), false};
        EXPECT_EQ(bfs.Evaluate(q)->granted, dfs.Evaluate(q)->granted)
            << text << " " << src << "->" << dst;
      }
    }
  }
}

TEST_F(OnlineEvalTest, ValidationErrors) {
  OnlineEvaluator eval(stack_->g, stack_->csr);
  // Null expression.
  auto r1 = eval.Evaluate(ReachQuery{0, 1, nullptr, false});
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);
  // Foreign graph binding.
  SocialGraph other = MakeDiamond();
  BoundPathExpression foreign = MustBind(other, "friend[1]");
  auto r2 = eval.Evaluate(ReachQuery{0, 1, &foreign, false});
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
  // Endpoint out of range.
  BoundPathExpression ok_expr = MustBind(stack_->g, "friend[1]");
  auto r3 = eval.Evaluate(ReachQuery{0, 99, &ok_expr, false});
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(OnlineEvalTest, StatsCountWork) {
  auto r = Eval("friend[1,2]/colleague[1]", 0, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.pairs_visited, 0u);
  EXPECT_EQ(r->stats.tuples_generated, 0u);  // not a join engine
}

}  // namespace
}  // namespace sargus
