#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/epoch_set.h"
#include "common/rng.h"
#include "engine/access_engine.h"
#include "query/eval_context.h"
#include "synth/generators.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

using testing_util::BruteForceMatch;
using testing_util::MakeDiamond;
using testing_util::MustBind;

// ---- Shared fixtures --------------------------------------------------------

struct EngineFixture {
  SocialGraph g;
  PolicyStore store;
  ResourceId res = 0;
  std::unique_ptr<AccessControlEngine> engine;

  EngineFixture(SocialGraph graph, const std::vector<std::string>& rule_paths,
                NodeId owner, EngineOptions options) : g(std::move(graph)) {
    res = store.RegisterResource(owner, "doc");
    (void)store.AddRuleFromPaths(res, rule_paths).ValueOrDie();
    engine = std::make_unique<AccessControlEngine>(g, store, options);
    auto st = engine->RebuildIndexes();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  bool Granted(NodeId requester) {
    auto r = engine->CheckAccess({.requester = requester, .resource = res});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && r->granted;
  }
};

/// The logical graph materialized eagerly — the semantics every engine
/// state (pre-, mid-, and post-compaction) must match.
struct Mirror {
  SocialGraph g;
  explicit Mirror(const SocialGraph& base) : g(base) {}
  void Add(NodeId s, NodeId d, LabelId l) { (void)g.AddEdge(s, d, l); }
  void Remove(NodeId s, NodeId d, LabelId l) {
    auto id = g.FindEdge(s, d, l);
    if (id.has_value()) (void)g.RemoveEdge(*id);
  }
  bool Match(const BoundPathExpression& expr, NodeId src, NodeId dst) const {
    CsrSnapshot csr = CsrSnapshot::Build(g);
    return BruteForceMatch(g, csr, expr, src, dst);
  }
};

// ---- Node growth ------------------------------------------------------------

TEST(CompactionNodeGrowth, AddNodeQueryableWithoutRebuild) {
  EngineFixture f(MakeDiamond(), {"colleague[1]"}, /*owner=*/0,
                  {.evaluator = EvaluatorChoice::kAuto});
  auto old_view = f.engine->AcquireReadView();
  const size_t base_nodes = f.g.NumNodes();
  const uint64_t gen = f.engine->snapshot_generation();

  auto id = f.engine->AddNode();
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*id, base_nodes);          // dense, predictable id
  EXPECT_EQ(f.g.NumNodes(), base_nodes);  // staged, not yet folded

  // Queryable immediately: denied (no edges yet), then granted once a
  // staged edge admits it — all without any RebuildIndexes.
  EXPECT_FALSE(f.Granted(*id));
  ASSERT_TRUE(f.engine->AddEdge(0, *id, "colleague").ok());
  EXPECT_TRUE(f.Granted(*id));
  EXPECT_EQ(f.engine->snapshot_generation(), gen);

  // A second staged node chains onto the logical id range and can be an
  // edge endpoint too (relay through the first staged node).
  auto id2 = f.engine->AddNode();
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id2, *id + 1);
  ASSERT_TRUE(f.engine->AddEdge(*id, *id2, "colleague").ok());

  // The view published before the AddNode rejects the new id instead of
  // indexing past its snapshot-sized scratch (the regression this PR
  // guards): kInvalidArgument, not a crash or a bogus deny.
  auto stale = old_view->CheckAccess({.requester = *id, .resource = f.res});
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kInvalidArgument);

  // Compaction folds the staged nodes into the SocialGraph under the
  // same ids; answers are unchanged, and attributes become settable.
  ASSERT_TRUE(f.engine->Compact().ok());
  f.engine->WaitForCompaction();
  EXPECT_EQ(f.g.NumNodes(), base_nodes + 2);
  EXPECT_TRUE(f.engine->overlay().empty());
  EXPECT_TRUE(f.Granted(*id));
  EXPECT_TRUE(f.g.SetAttribute(*id, "age", 30).ok());
  EXPECT_EQ(f.g.GetAttribute(*id, "age"), std::optional<int64_t>(30));

  // RebuildIndexes (not Compact) would have discarded staged nodes; the
  // folded node survives it.
  ASSERT_TRUE(f.engine->RebuildIndexes().ok());
  EXPECT_TRUE(f.Granted(*id));
}

TEST(CompactionNodeGrowth, BatchAndRequesterGuardsOnStaleViews) {
  EngineFixture f(MakeDiamond(), {"colleague[1]"}, /*owner=*/0,
                  {.evaluator = EvaluatorChoice::kOnlineBfs});
  auto old_view = f.engine->AcquireReadView();
  auto id = f.engine->AddNode();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(f.engine->AddEdge(0, *id, "colleague").ok());

  // Batch: the stale view fails the new-node slot alone; the fresh view
  // answers it.
  std::vector<AccessRequest> requests = {
      {.requester = 3, .resource = f.res},
      {.requester = *id, .resource = f.res},
  };
  auto stale = old_view->CheckAccessBatch(requests);
  ASSERT_EQ(stale.size(), 2u);
  EXPECT_TRUE(stale[0].ok());
  ASSERT_FALSE(stale[1].ok());
  EXPECT_EQ(stale[1].status().code(), StatusCode::kInvalidArgument);

  auto fresh = f.engine->CheckAccessBatch(requests);
  ASSERT_TRUE(fresh[1].ok());
  EXPECT_TRUE(fresh[1]->granted);
}

TEST(CompactionNodeGrowth, OutOfRangeResourceOwnerFailsLoudly) {
  // A resource registered to an owner the snapshot has never seen: every
  // rule walk would seed at the owner, past scratch arrays sized at
  // snapshot time. Must be kInvalidArgument — this indexed out of
  // bounds before the guard existed.
  SocialGraph g = MakeDiamond();
  PolicyStore store;
  const ResourceId ghost = store.RegisterResource(/*owner=*/99, "ghost");
  (void)store.AddRuleFromPaths(ghost, {"friend[1]"}).ValueOrDie();
  AccessControlEngine engine(g, store, {});
  ASSERT_TRUE(engine.RebuildIndexes().ok());

  auto r = engine.CheckAccess({.requester = 1, .resource = ghost});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // Batch: the ghost-owner group fails per slot, sibling slots survive.
  const ResourceId ok_res = store.RegisterResource(/*owner=*/0, "ok");
  (void)store.AddRuleFromPaths(ok_res, {"friend[1]"}).ValueOrDie();
  ASSERT_TRUE(engine.RefreshPolicies().ok());
  std::vector<AccessRequest> requests;
  for (NodeId req = 0; req < 5; ++req) {
    requests.push_back({.requester = req, .resource = ghost});
    requests.push_back({.requester = req, .resource = ok_res});
  }
  auto out = engine.CheckAccessBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].resource == ghost) {
      ASSERT_FALSE(out[i].ok()) << i;
      EXPECT_EQ(out[i].status().code(), StatusCode::kInvalidArgument) << i;
    } else {
      EXPECT_TRUE(out[i].ok()) << i;
    }
  }
}

// ---- Background compaction: straddle semantics ------------------------------

TEST(CompactionStraddle, MutationsDuringBuildAreReplayedNotLost) {
  EngineFixture f(MakeDiamond(), {"colleague[1]"}, /*owner=*/0,
                  {.evaluator = EvaluatorChoice::kAuto,
                   .compact_threshold = 0});
  const BoundPathExpression expr = MustBind(f.g, "colleague[1]");
  Mirror mirror(f.g);
  const LabelId co = f.g.labels().Lookup("colleague");
  const LabelId fr = f.g.labels().Lookup("friend");

  auto agree = [&](const char* when) {
    for (NodeId req = 0; req < 6; ++req) {
      const bool expected = req == 0 || mirror.Match(expr, 0, req);
      EXPECT_EQ(f.Granted(req), expected) << when << " requester " << req;
    }
  };

  // Pre-compaction delta: one add, one base-edge removal.
  ASSERT_TRUE(f.engine->AddEdge(0, 5, co).ok());
  mirror.Add(0, 5, co);
  ASSERT_TRUE(f.engine->RemoveEdge(2, 3, co).ok());
  mirror.Remove(2, 3, co);
  agree("pre-compaction");

  // Hold the build open while the writer keeps mutating.
  std::atomic<bool> release{false};
  std::atomic<int> builds{0};
  f.engine->SetCompactionBuildHookForTesting([&] {
    if (builds.fetch_add(1) == 0) {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
  });
  const uint64_t gen = f.engine->snapshot_generation();
  ASSERT_TRUE(f.engine->Compact().ok());

  // Straddling mutations: staged during the in-flight build. They must
  // be visible immediately (served off the old snapshot + overlay)...
  ASSERT_TRUE(f.engine->AddEdge(0, 1, co).ok());
  mirror.Add(0, 1, co);
  ASSERT_TRUE(f.engine->RemoveEdge(0, 5, co).ok());  // withdraw the add
  mirror.Remove(0, 5, co);
  ASSERT_TRUE(f.engine->RemoveEdge(4, 3, co).ok());  // mask a base edge
  mirror.Remove(4, 3, co);
  auto id = f.engine->AddNode();  // node growth straddles too
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(f.engine->AddEdge(0, *id, co).ok());
  mirror.Add(0, static_cast<NodeId>(mirror.g.AddNode()), co);
  EXPECT_EQ(f.engine->snapshot_generation(), gen);  // still building
  agree("during build");
  EXPECT_TRUE(f.Granted(*id));

  // ...and replayed onto the new snapshot at completion: same answers,
  // new generation, overlay reduced to exactly the straddling delta.
  release.store(true, std::memory_order_release);
  f.engine->WaitForCompaction();
  EXPECT_EQ(f.engine->snapshot_generation(), gen + 1);
  EXPECT_FALSE(f.engine->overlay().empty());
  agree("after completion");
  EXPECT_TRUE(f.Granted(*id));

  // The folded graph holds the pre-freeze delta only: the 0-c->5 add
  // (withdrawn later, so masked by the replayed overlay), not the
  // straddlers.
  EXPECT_TRUE(f.g.FindEdge(0, 5, co).has_value());
  EXPECT_FALSE(f.g.FindEdge(2, 3, co).has_value());
  EXPECT_FALSE(f.g.FindEdge(0, 1, co).has_value());  // still staged

  // A second compaction folds the leftovers; decisions never waver.
  ASSERT_TRUE(f.engine->Compact().ok());
  f.engine->WaitForCompaction();
  EXPECT_TRUE(f.engine->overlay().empty());
  EXPECT_TRUE(f.g.FindEdge(0, 1, co).has_value());
  EXPECT_FALSE(f.g.FindEdge(0, 5, co).has_value());
  EXPECT_FALSE(f.g.FindEdge(4, 3, co).has_value());
  agree("after second compaction");
  (void)fr;
}

TEST(CompactionStraddle, ExplicitCompactDuringBuildChainsAFollowUp) {
  EngineFixture f(MakeDiamond(), {"colleague[1]"}, /*owner=*/0,
                  {.evaluator = EvaluatorChoice::kOnlineBfs,
                   .compact_threshold = 0});
  const LabelId co = f.g.labels().Lookup("colleague");

  std::atomic<bool> release{false};
  std::atomic<int> builds{0};
  f.engine->SetCompactionBuildHookForTesting([&] {
    if (builds.fetch_add(1) == 0) {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
  });
  ASSERT_TRUE(f.engine->AddEdge(0, 5, co).ok());
  ASSERT_TRUE(f.engine->Compact().ok());
  // Mid-build mutation, then an explicit Compact: the completion must
  // chain a follow-up that folds it rather than dropping the request.
  ASSERT_TRUE(f.engine->AddEdge(1, 4, co).ok());
  ASSERT_TRUE(f.engine->Compact().ok());
  release.store(true, std::memory_order_release);
  f.engine->WaitForCompaction();

  EXPECT_TRUE(f.engine->overlay().empty());
  EXPECT_TRUE(f.g.FindEdge(0, 5, co).has_value());
  EXPECT_TRUE(f.g.FindEdge(1, 4, co).has_value());
  EXPECT_GE(builds.load(), 2);
  EXPECT_TRUE(f.Granted(5));
}

// ---- Background compaction: concurrent chaos (TSan target) ------------------

TEST(CompactionStress, ReadersRaceBackgroundCompactions) {
  auto gen = GenerateErdosRenyi(
      {.base = {.num_nodes = 24, .seed = 12}, .avg_out_degree = 2.0});
  ASSERT_TRUE(gen.ok());
  SocialGraph g = std::move(*gen);
  PolicyStore store;
  const ResourceId res = store.RegisterResource(/*owner=*/0, "doc");
  (void)store.AddRuleFromPaths(res, {"friend[1,2]"}).ValueOrDie();
  const size_t base_nodes = g.NumNodes();

  // Tiny threshold: compactions fire continuously in the background
  // while readers hammer and the writer keeps mutating — the pipeline
  // itself is the thing under (TSan) test here, correctness per state
  // is pinned by the straddle test above.
  AccessControlEngine engine(g, store,
                             {.evaluator = EvaluatorChoice::kAuto,
                              .use_closure_prefilter = true,
                              .compact_threshold = 8});
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  const LabelId fr = g.labels().Lookup("friend");

  std::atomic<bool> done{false};
  std::atomic<size_t> errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(100 + t);
      EvalContext ctx;
      while (!done.load(std::memory_order_acquire)) {
        const NodeId req =
            static_cast<NodeId>(rng.NextBounded(base_nodes));
        auto view = engine.AcquireReadView();
        auto r = view->CheckAccess({.requester = req, .resource = res}, ctx);
        if (!r.ok()) errors.fetch_add(1, std::memory_order_relaxed);
        auto facade = engine.CheckAccess({.requester = req, .resource = res});
        if (!facade.ok()) errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Rng rng(999);
  for (size_t op = 0; op < 400; ++op) {
    const uint64_t kind = rng.NextBounded(10);
    if (kind == 0) {
      auto id = engine.AddNode();
      ASSERT_TRUE(id.ok());
      ASSERT_TRUE(engine.AddEdge(0, *id, fr).ok());
    } else if (kind < 7) {
      const NodeId s = static_cast<NodeId>(rng.NextBounded(base_nodes));
      const NodeId d = static_cast<NodeId>(rng.NextBounded(base_nodes));
      ASSERT_TRUE(engine.AddEdge(s, d, fr).ok());
    } else {
      // Remove whatever logical edge the staging layer will accept.
      const NodeId s = static_cast<NodeId>(rng.NextBounded(base_nodes));
      const NodeId d = static_cast<NodeId>(rng.NextBounded(base_nodes));
      (void)engine.RemoveEdge(s, d, fr);  // kNotFound is fine
    }
    if (op % 16 == 15) std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  engine.WaitForCompaction();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_GT(engine.snapshot_generation(), 1u);
}

// ---- Incremental index maintenance ------------------------------------------

/// Maps a line vertex to its (edge, orientation) identity so bundles
/// built with different vertex orders can be compared.
std::map<std::pair<EdgeId, bool>, LineVertexId> LineIdentity(
    const LineGraph& lg) {
  std::map<std::pair<EdgeId, bool>, LineVertexId> m;
  for (LineVertexId v = 0; v < lg.NumVertices(); ++v) {
    const auto& vert = lg.vertex(v);
    m[{vert.edge, vert.backward}] = v;
  }
  return m;
}

/// Exhaustively compares the two bundles' oracles over every matched
/// line-vertex pair, in both oracle modes.
void ExpectOraclesAgree(const SnapshotIndexes& a, const SnapshotIndexes& b,
                        const char* label) {
  auto ma = LineIdentity(a.lg);
  auto mb = LineIdentity(b.lg);
  ASSERT_EQ(ma.size(), mb.size()) << label;
  size_t checked = 0;
  for (const auto& [ka, va] : ma) {
    auto itb = mb.find(ka);
    ASSERT_NE(itb, mb.end()) << label;
    for (const auto& [ka2, va2] : ma) {
      const LineVertexId vb = itb->second;
      const LineVertexId vb2 = mb.at(ka2);
      const bool full = b.oracle->ReachableVia(vb, vb2, OracleMode::kTwoHop);
      ASSERT_EQ(a.oracle->ReachableVia(va, va2, OracleMode::kTwoHop), full)
          << label << ": two-hop diverges on (" << ka.first
          << (ka.second ? "b" : "f") << ") -> (" << ka2.first
          << (ka2.second ? "b" : "f") << ")";
      ASSERT_EQ(a.oracle->ReachableVia(va, va2, OracleMode::kIntervals), full)
          << label << ": intervals diverge on (" << ka.first
          << (ka.second ? "b" : "f") << ") -> (" << ka2.first
          << (ka2.second ? "b" : "f") << ")";
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u) << label;
}

TEST(CompactionIncremental, PatchedBundleMatchesFullRebuildRandomized) {
  EngineOptions options;
  options.evaluator = EvaluatorChoice::kAuto;
  options.incremental_max_fraction = 1.0;  // exercise the patch, not the gate

  for (uint64_t seed = 1; seed <= 8; ++seed) {
    // Random DAG base (edges low -> high) plus forward-oriented staged
    // insertions: the logical graph stays acyclic, so the patch path
    // must apply on every seed — no silent fallback weakening the test.
    Rng rng(7000 + seed);
    SocialGraph g;
    const size_t n = 26;
    for (size_t i = 0; i < n; ++i) g.AddNode();
    const LabelId fr = g.labels().Intern("friend");
    const LabelId co = g.labels().Intern("colleague");
    for (int i = 0; i < 60; ++i) {
      NodeId s = static_cast<NodeId>(rng.NextBounded(n));
      NodeId d = static_cast<NodeId>(rng.NextBounded(n));
      if (s == d) continue;
      if (s > d) std::swap(s, d);
      (void)g.AddEdge(s, d, rng.NextBool(0.5) ? fr : co);
    }
    auto prev = SnapshotIndexes::Build(g, options);
    ASSERT_TRUE(prev.ok());

    DeltaOverlay overlay;
    // A couple of staged nodes (appended = topologically last, so edges
    // into them keep the DAG property), then random forward insertions —
    // some touching the staged nodes, some between existing ones.
    overlay.StageNode();
    overlay.StageNode();
    for (int i = 0; i < 10; ++i) {
      NodeId s = static_cast<NodeId>(rng.NextBounded(n + 2));
      NodeId d = static_cast<NodeId>(rng.NextBounded(n + 2));
      if (s == d) continue;
      if (s > d) std::swap(s, d);
      const LabelId l = rng.NextBool(0.5) ? fr : co;
      if (s < n && d < n && g.FindEdge(s, d, l).has_value()) continue;
      (void)overlay.StageAdd(s, d, l);
    }
    const EdgeId first_new = static_cast<EdgeId>(g.EdgeSlotCount());

    auto patched =
        SnapshotIndexes::BuildIncremental(**prev, g, overlay, first_new,
                                          options);
    ASSERT_TRUE(patched.ok()) << patched.status().ToString();
    ASSERT_NE(*patched, nullptr) << "seed " << seed
                                 << ": acyclic delta unexpectedly fell back";
    auto full = SnapshotIndexes::BuildMerged(g, overlay, first_new, options);
    ASSERT_TRUE(full.ok());
    ExpectOraclesAgree(**patched, **full,
                       ("seed " + std::to_string(seed)).c_str());
  }
}

TEST(CompactionIncremental, PatchedBundleMatchesFullRebuildOnCyclicBase) {
  // The base may be arbitrarily cyclic (Tarjan already condensed it);
  // what the patch needs is only that the *insertions* close no new
  // cycle. Random ER bases + insertions hanging off fresh staged nodes
  // (unreachable, so never cycle-closing) pin that case down.
  EngineOptions options;
  options.evaluator = EvaluatorChoice::kAuto;
  options.incremental_max_fraction = 1.0;

  for (uint64_t seed = 1; seed <= 4; ++seed) {
    auto gen = GenerateErdosRenyi(
        {.base = {.num_nodes = 22, .seed = seed}, .avg_out_degree = 2.4});
    ASSERT_TRUE(gen.ok());
    SocialGraph g = std::move(*gen);
    auto prev = SnapshotIndexes::Build(g, options);
    ASSERT_TRUE(prev.ok());
    const LabelId fr = g.labels().Lookup("friend");
    ASSERT_NE(fr, kInvalidLabel);

    Rng rng(9100 + seed);
    DeltaOverlay overlay;
    const NodeId fresh = static_cast<NodeId>(g.NumNodes());
    overlay.StageNode();
    for (int i = 0; i < 6; ++i) {
      // fresh -> existing: the fresh node has no in-edges, so no path
      // returns to these line vertices.
      (void)overlay.StageAdd(
          fresh, static_cast<NodeId>(rng.NextBounded(g.NumNodes())), fr);
    }
    const EdgeId first_new = static_cast<EdgeId>(g.EdgeSlotCount());
    auto patched =
        SnapshotIndexes::BuildIncremental(**prev, g, overlay, first_new,
                                          options);
    ASSERT_TRUE(patched.ok());
    ASSERT_NE(*patched, nullptr) << "seed " << seed;
    auto full = SnapshotIndexes::BuildMerged(g, overlay, first_new, options);
    ASSERT_TRUE(full.ok());
    ExpectOraclesAgree(**patched, **full,
                       ("cyclic-base seed " + std::to_string(seed)).c_str());
  }
}

TEST(CompactionIncremental, FallsBackOnDeletionsCyclesAndLargeDeltas) {
  EngineOptions options;
  options.evaluator = EvaluatorChoice::kAuto;

  // Acyclic chain 0 -f-> 1 -f-> 2.
  SocialGraph g;
  for (int i = 0; i < 3; ++i) g.AddNode();
  (void)g.AddEdge(0, 1, "friend");
  (void)g.AddEdge(1, 2, "friend");
  auto prev = SnapshotIndexes::Build(g, options);
  ASSERT_TRUE(prev.ok());
  const LabelId fr = g.labels().Lookup("friend");
  const EdgeId first_new = static_cast<EdgeId>(g.EdgeSlotCount());

  // Deletions cannot be patched out of reachability labels.
  {
    DeltaOverlay overlay;
    overlay.StageRemove(0, 1, fr);
    auto r = SnapshotIndexes::BuildIncremental(**prev, g, overlay, first_new,
                                               options);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, nullptr);
  }
  // A cycle-closing insertion must merge SCCs: fallback.
  {
    DeltaOverlay overlay;
    overlay.StageAdd(2, 0, fr);
    auto r = SnapshotIndexes::BuildIncremental(**prev, g, overlay, first_new,
                                               options);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, nullptr);
    // The full merged build handles it (sanity).
    auto full = SnapshotIndexes::BuildMerged(g, overlay, first_new, options);
    ASSERT_TRUE(full.ok());
    EXPECT_TRUE((*full)->oracle != nullptr);
  }
  // Delta past the fraction gate (2 edges; 5% of 2 edges is < 1).
  {
    DeltaOverlay overlay;
    overlay.StageAdd(0, 2, fr);
    auto r = SnapshotIndexes::BuildIncremental(**prev, g, overlay, first_new,
                                               options);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, nullptr);
  }
}

TEST(CompactionIncremental, EngineTakesIncrementalPathForSmallInsertions) {
  auto gen = GenerateBarabasiAlbert(
      {.base = {.num_nodes = 400, .seed = 5}, .edges_per_node = 3});
  ASSERT_TRUE(gen.ok());
  SocialGraph g = std::move(*gen);
  PolicyStore store;
  const ResourceId res = store.RegisterResource(/*owner=*/0, "doc");
  (void)store.AddRuleFromPaths(res, {"friend[1,2]"}).ValueOrDie();
  AccessControlEngine engine(g, store,
                             {.evaluator = EvaluatorChoice::kAuto,
                              .compact_threshold = 0});
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  const LabelId fr = g.labels().Lookup("friend");

  // Insertions hanging off a fresh staged node cannot close a line-graph
  // cycle (nothing reaches a node with no in-edges), so the patch path
  // is guaranteed applicable.
  auto id = engine.AddNode();
  ASSERT_TRUE(id.ok());
  for (NodeId d = 1; d <= 6; ++d) {
    ASSERT_TRUE(engine.AddEdge(*id, d, fr).ok());
  }
  ASSERT_TRUE(engine.Compact().ok());
  engine.WaitForCompaction();
  EXPECT_EQ(engine.incremental_compactions(), 1u);
  EXPECT_EQ(engine.full_compactions(), 0u);

  // The compacted (patched) join index serves and agrees with online
  // search on the grown graph.
  for (NodeId req : {*id, NodeId{1}, NodeId{50}, NodeId{399}}) {
    auto joined = engine.CheckAccess({.requester = req, .resource = res});
    auto online = engine.CheckAccess(
        {.requester = req,
         .resource = res,
         .evaluator_override = EvaluatorChoice::kOnlineBfs});
    ASSERT_TRUE(joined.ok());
    ASSERT_TRUE(online.ok());
    EXPECT_EQ(joined->granted, online->granted) << req;
  }

  // A deletion-bearing delta falls back to the full rebuild.
  ASSERT_TRUE(engine.RemoveEdge(*id, 1, fr).ok());
  ASSERT_TRUE(engine.Compact().ok());
  engine.WaitForCompaction();
  EXPECT_EQ(engine.incremental_compactions(), 1u);
  EXPECT_EQ(engine.full_compactions(), 1u);
}

// ---- Threshold scaling ------------------------------------------------------

TEST(CompactionThreshold, DefaultScalesWithEdgesAndOverrideWins) {
  // Small graph: the floor dominates.
  {
    EngineFixture f(MakeDiamond(), {"friend[1]"}, /*owner=*/0,
                    {.evaluator = EvaluatorChoice::kOnlineBfs});
    EXPECT_EQ(f.engine->effective_compact_threshold(), 1024u);
  }
  // Large graph: |E|/16 dominates and tracks the snapshot.
  {
    auto gen = GenerateBarabasiAlbert(
        {.base = {.num_nodes = 9000, .seed = 3}, .edges_per_node = 3});
    ASSERT_TRUE(gen.ok());
    SocialGraph g = std::move(*gen);
    PolicyStore store;
    (void)store.RegisterResource(0, "doc");
    AccessControlEngine engine(g, store,
                               {.evaluator = EvaluatorChoice::kOnlineBfs});
    ASSERT_TRUE(engine.RebuildIndexes().ok());
    const size_t edges = g.NumEdges();
    ASSERT_GT(edges / 16, 1024u);  // the sweep regime this test pins
    EXPECT_EQ(engine.effective_compact_threshold(), edges / 16);
  }
  // Explicit values — including 0 (off) — are used verbatim.
  {
    EngineFixture f(MakeDiamond(), {"friend[1]"}, /*owner=*/0,
                    {.evaluator = EvaluatorChoice::kOnlineBfs,
                     .compact_threshold = 7});
    EXPECT_EQ(f.engine->effective_compact_threshold(), 7u);
  }
  {
    EngineFixture f(MakeDiamond(), {"friend[1]"}, /*owner=*/0,
                    {.evaluator = EvaluatorChoice::kOnlineBfs,
                     .compact_threshold = 0});
    EXPECT_EQ(f.engine->effective_compact_threshold(), 0u);
  }
}

// ---- Epoch wraparound under a grown node space ------------------------------

TEST(CompactionEpochs, WraparoundUnderGrownNodeSpace) {
  // Unit: grow the backing array, then force the wrap; stale stamps from
  // the pre-growth era must not read as members afterwards.
  EpochStampSet set;
  set.BeginEpoch(8);
  for (size_t i = 0; i < 8; ++i) EXPECT_TRUE(set.Insert(i));
  set.SetEpochForTesting(std::numeric_limits<uint32_t>::max() - 1);
  set.BeginEpoch(16);  // grows AND lands on the last pre-wrap epoch
  EXPECT_TRUE(set.Insert(3));
  EXPECT_TRUE(set.Insert(12));
  set.BeginEpoch(16);  // wraps: one-time wipe, epoch restarts at 1
  EXPECT_EQ(set.epoch(), 1u);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_FALSE(set.Contains(i)) << i;
  }
  EXPECT_TRUE(set.Insert(12));
  EXPECT_TRUE(set.Contains(12));

  // Engine-level: queries against views whose logical node count grew
  // (AddNode) stay correct across a forced wraparound of the reused
  // per-context scratch.
  EngineFixture f(MakeDiamond(), {"colleague[1]"}, /*owner=*/0,
                  {.evaluator = EvaluatorChoice::kOnlineBfs});
  auto id = f.engine->AddNode();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(f.engine->AddEdge(0, *id, "colleague").ok());
  auto view = f.engine->AcquireReadView();
  EvalContext ctx;
  ctx.scratch.visited.SetEpochForTesting(
      std::numeric_limits<uint32_t>::max() - 3);
  for (int i = 0; i < 8; ++i) {  // straddles the wrap
    auto yes = view->CheckAccess({.requester = *id, .resource = f.res}, ctx);
    auto no = view->CheckAccess({.requester = 1, .resource = f.res}, ctx);
    ASSERT_TRUE(yes.ok());
    ASSERT_TRUE(no.ok());
    EXPECT_TRUE(yes->granted) << i;
    EXPECT_FALSE(no->granted) << i;
  }
}

}  // namespace
}  // namespace sargus
