#include <gtest/gtest.h>

#include "core/path_parser.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

TEST(PathParser, SingleStepShorthand) {
  auto e = ParsePathExpression("friend[1]");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  ASSERT_EQ(e->steps().size(), 1u);
  EXPECT_EQ(e->steps()[0].label, "friend");
  EXPECT_EQ(e->steps()[0].min_hops, 1u);
  EXPECT_EQ(e->steps()[0].max_hops, 1u);
  EXPECT_FALSE(e->steps()[0].backward);
}

TEST(PathParser, PaperQ1) {
  auto e = ParsePathExpression("friend[1,2]/colleague[1]");
  ASSERT_TRUE(e.ok());
  ASSERT_EQ(e->steps().size(), 2u);
  EXPECT_EQ(e->steps()[0].label, "friend");
  EXPECT_EQ(e->steps()[0].min_hops, 1u);
  EXPECT_EQ(e->steps()[0].max_hops, 2u);
  EXPECT_EQ(e->steps()[1].label, "colleague");
  EXPECT_EQ(e->steps()[1].max_hops, 1u);
}

TEST(PathParser, BackwardStep) {
  auto e = ParsePathExpression("friend-[1,2]");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->steps()[0].backward);
  EXPECT_EQ(e->steps()[0].min_hops, 1u);
  EXPECT_EQ(e->steps()[0].max_hops, 2u);
}

TEST(PathParser, AttributeFilter) {
  auto e = ParsePathExpression("friend[1]{age>=18}");
  ASSERT_TRUE(e.ok());
  ASSERT_EQ(e->steps()[0].conditions.size(), 1u);
  const AttrCondition& c = e->steps()[0].conditions[0];
  EXPECT_EQ(c.attr, "age");
  EXPECT_EQ(c.op, CmpOp::kGe);
  EXPECT_EQ(c.value, 18);
}

TEST(PathParser, MultiConditionFilterAndAllOps) {
  auto e = ParsePathExpression(
      "friend[1]{age>=18,age<=30,trust>5,trust<90,age==25,age!=40}");
  ASSERT_TRUE(e.ok());
  const auto& conds = e->steps()[0].conditions;
  ASSERT_EQ(conds.size(), 6u);
  EXPECT_EQ(conds[0].op, CmpOp::kGe);
  EXPECT_EQ(conds[1].op, CmpOp::kLe);
  EXPECT_EQ(conds[2].op, CmpOp::kGt);
  EXPECT_EQ(conds[3].op, CmpOp::kLt);
  EXPECT_EQ(conds[4].op, CmpOp::kEq);
  EXPECT_EQ(conds[5].op, CmpOp::kNe);
}

TEST(PathParser, WhitespaceTolerated) {
  auto e = ParsePathExpression("  friend [ 1 , 2 ] / colleague [ 1 ] ");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(e->ToString(), "friend[1,2]/colleague[1]");
}

TEST(PathParser, CanonicalRoundTrip) {
  const char* cases[] = {
      "friend[1]",
      "friend[1,2]/colleague[1]",
      "friend-[1,2]",
      "friend[1]{age>=18}",
      "friend[2,4]/colleague-[1,3]{age>=18,trust<50}/family[1]",
      "l5[1,64]",
  };
  for (const char* text : cases) {
    auto e1 = ParsePathExpression(text);
    ASSERT_TRUE(e1.ok()) << text << ": " << e1.status().ToString();
    const std::string canon = e1->ToString();
    auto e2 = ParsePathExpression(canon);
    ASSERT_TRUE(e2.ok()) << canon;
    EXPECT_EQ(*e1, *e2) << text;
    EXPECT_EQ(canon, e2->ToString());
  }
}

TEST(PathParser, RejectsMalformedWithInvalidArgument) {
  const char* cases[] = {
      "",                        // empty
      "   ",                     // blank
      "friend",                  // missing bounds
      "friend[",                 // unterminated
      "friend[]",                // no bounds
      "friend[a]",               // non-numeric
      "friend[0]",               // zero hops
      "friend[0,2]",             // zero lower bound
      "friend[3,2]",             // empty range
      "friend[1,65]",            // beyond cap (kMaxHopBound = 64)
      "friend[-1]",              // negative
      "friend[1]/",              // trailing separator
      "/friend[1]",              // leading separator
      "friend[1]colleague[1]",   // missing separator
      "friend[1]{",              // unterminated filter
      "friend[1]{age}",          // missing operator
      "friend[1]{age>=}",        // missing value
      "friend[1]{age=18}",       // bad operator
      "friend[1]{>=18}",         // missing attribute
      "friend[1]{age>=18",       // unterminated filter
      "friend[1]{age>=18,}",     // dangling comma
      "fri end[1]",              // split identifier
      "friend[1,2,3]",           // too many bounds
      "123[1]",                  // label must start alphabetic
  };
  for (const char* text : cases) {
    auto e = ParsePathExpression(text);
    EXPECT_FALSE(e.ok()) << "accepted: '" << text << "'";
    if (!e.ok()) {
      EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument)
          << text << " -> " << e.status().ToString();
    }
  }
}

TEST(PathParser, RejectsOutOfRangeFilterLiterals) {
  // strtoll would silently saturate; the parser must reject instead.
  auto e = ParsePathExpression("friend[1]{trust>=9223372036854775808}");
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(e.status().message().find("out of 64-bit range"),
            std::string::npos);
  // The boundary value itself is fine.
  auto ok = ParsePathExpression("friend[1]{trust<=9223372036854775807}");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->steps()[0].conditions[0].value, INT64_MAX);
}

TEST(PathParser, ErrorMessagesCarryPosition) {
  auto e = ParsePathExpression("friend[1]/colleague[0]");
  ASSERT_FALSE(e.ok());
  EXPECT_NE(e.status().message().find("position"), std::string::npos);
}

TEST(Bind, ResolvesLabelsAndAttrs) {
  SocialGraph g = testing_util::MakeDiamond();
  auto parsed = ParsePathExpression("friend[1,2]{age>=18}/colleague[1]");
  ASSERT_TRUE(parsed.ok());
  auto bound = BoundPathExpression::Bind(*parsed, g);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->graph(), &g);
  EXPECT_EQ(bound->steps().size(), 2u);
  EXPECT_EQ(bound->steps()[0].label, g.labels().Lookup("friend"));
  EXPECT_EQ(bound->steps()[1].label, g.labels().Lookup("colleague"));
  EXPECT_EQ(bound->MaxPathLength(), 3u);
  EXPECT_EQ(bound->ExpansionCount(), 2u);
  EXPECT_TRUE(bound->HasAttributeFilter());
  EXPECT_FALSE(bound->HasBackwardStep());
}

TEST(Bind, UnknownLabelIsNotFound) {
  SocialGraph g = testing_util::MakeDiamond();
  auto parsed = ParsePathExpression("enemy[1]");
  ASSERT_TRUE(parsed.ok());
  auto bound = BoundPathExpression::Bind(*parsed, g);
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kNotFound);
}

TEST(Bind, UnknownAttributeIsNotFound) {
  SocialGraph g = testing_util::MakeDiamond();
  auto parsed = ParsePathExpression("friend[1]{height>=170}");
  ASSERT_TRUE(parsed.ok());
  auto bound = BoundPathExpression::Bind(*parsed, g);
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kNotFound);
}

TEST(Bind, RejectsProgrammaticZeroOrEmptyHopRanges) {
  // The parser forbids these, but the AST is constructible directly;
  // Bind is the shared gate every evaluator depends on (regression:
  // min_hops == 0 crashed the join evaluator's expansion).
  SocialGraph g = testing_util::MakeDiamond();
  PathExpression zero_min({PathStep{"friend", false, 0, 1, {}}});
  auto b1 = BoundPathExpression::Bind(zero_min, g);
  ASSERT_FALSE(b1.ok());
  EXPECT_EQ(b1.status().code(), StatusCode::kInvalidArgument);
  PathExpression empty_range({PathStep{"friend", false, 3, 2, {}}});
  auto b2 = BoundPathExpression::Bind(empty_range, g);
  ASSERT_FALSE(b2.ok());
  EXPECT_EQ(b2.status().code(), StatusCode::kInvalidArgument);
}

TEST(Bind, EmptyExpressionIsInvalid) {
  SocialGraph g = testing_util::MakeDiamond();
  PathExpression empty;
  auto bound = BoundPathExpression::Bind(empty, g);
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sargus
