#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/delta_overlay.h"
#include "query/bidirectional.h"
#include "query/closure_prefilter.h"
#include "query/join_evaluator.h"
#include "query/online_evaluator.h"
#include "synth/generators.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

using testing_util::BruteForceMatch;
using testing_util::BuildStack;
using testing_util::MakeDiamond;
using testing_util::MustBind;
using testing_util::Stack;

/// The invariant this suite enforces (and every future optimization PR
/// must keep green): all evaluators return identical grant/deny for every
/// (expression, src, dst) triple, and match an independent brute force.
void CheckAgreement(const Stack& s, const std::vector<std::string>& exprs) {
  OnlineEvaluator bfs(s.g, s.csr, TraversalOrder::kBfs);
  OnlineEvaluator dfs(s.g, s.csr, TraversalOrder::kDfs);
  BidirectionalEvaluator bidi(s.g, s.csr);
  JoinIndexEvaluator join(s.g, s.lg, *s.oracle, *s.cluster, s.tables, {});
  JoinIndexOptions faithful_opts;
  faithful_opts.faithful_post_filter = true;
  JoinIndexEvaluator faithful(s.g, s.lg, *s.oracle, *s.cluster, s.tables,
                              faithful_opts);
  JoinIndexOptions unanchored_opts;
  unanchored_opts.faithful_post_filter = true;
  unanchored_opts.anchor_endpoints_early = false;
  JoinIndexEvaluator unanchored(s.g, s.lg, *s.oracle, *s.cluster, s.tables,
                                unanchored_opts);
  ClosurePrefilterEvaluator pref_dir(*s.closure_directed, bfs);
  ClosurePrefilterEvaluator pref_undir(*s.closure_undirected, join);

  const Evaluator* evaluators[] = {&bfs,        &dfs,      &bidi,
                                   &join,       &faithful, &unanchored,
                                   &pref_dir,   &pref_undir};

  for (const std::string& text : exprs) {
    const BoundPathExpression expr = MustBind(s.g, text);
    for (NodeId src = 0; src < s.g.NumNodes(); ++src) {
      for (NodeId dst = 0; dst < s.g.NumNodes(); ++dst) {
        const ReachQuery q{src, dst, &expr, false};
        const bool expected = BruteForceMatch(s.g, s.csr, expr, src, dst);
        for (const Evaluator* eval : evaluators) {
          auto r = eval->Evaluate(q);
          ASSERT_TRUE(r.ok()) << eval->name() << ": "
                              << r.status().ToString();
          EXPECT_EQ(r->granted, expected)
              << eval->name() << " disagrees on '" << text << "' " << src
              << " -> " << dst;
        }
      }
    }
  }
}

TEST(EvaluatorAgreement, DiamondForwardExpressions) {
  auto s = BuildStack(MakeDiamond(), /*include_backward=*/false);
  ASSERT_NE(s, nullptr);
  CheckAgreement(*s, {
                         "friend[1]",
                         "friend[1,2]",
                         "friend[2,3]",
                         "colleague[1]",
                         "friend[1,2]/colleague[1]",
                         "friend[1]/friend[1]/colleague[1]",
                         "friend[1]{age>=30}",
                         "friend[1,2]{age>=15}/colleague[1]{age>=40}",
                         "friend[1,3]/friend[1,2]",
                     });
}

TEST(EvaluatorAgreement, DiamondBackwardExpressions) {
  auto s = BuildStack(MakeDiamond(), /*include_backward=*/true);
  ASSERT_NE(s, nullptr);
  CheckAgreement(*s, {
                         "friend-[1]",
                         "friend-[1,2]",
                         "colleague-[1]/friend-[1]",
                         "friend[1,2]/colleague[1]",
                         "friend[1]/colleague-[1]",
                         "colleague-[1]{age>=40}",
                     });
}

TEST(EvaluatorAgreement, SyntheticGraphsAllFamilies) {
  const std::vector<std::string> exprs = {
      "friend[1]",
      "friend[1,2]/colleague[1]",
      "friend[1,3]",
      "colleague[1]/friend[1,2]",
      "friend[1]{age>=40}/colleague[1,2]",
  };
  auto er = GenerateErdosRenyi(
      {.base = {.num_nodes = 24, .seed = 21}, .avg_out_degree = 2.0});
  auto ba = GenerateBarabasiAlbert(
      {.base = {.num_nodes = 24, .seed = 22}, .edges_per_node = 2});
  auto ws = GenerateWattsStrogatz({.base = {.num_nodes = 24, .seed = 23},
                                   .neighbors_per_side = 2,
                                   .rewire_probability = 0.2});
  for (auto* g : {&er, &ba, &ws}) {
    ASSERT_TRUE(g->ok());
    auto s = BuildStack(std::move(**g), /*include_backward=*/false);
    ASSERT_NE(s, nullptr);
    CheckAgreement(*s, exprs);
  }
}

TEST(EvaluatorAgreement, SyntheticBackwardMix) {
  auto g = GenerateErdosRenyi(
      {.base = {.num_nodes = 20, .seed = 31}, .avg_out_degree = 2.0});
  ASSERT_TRUE(g.ok());
  auto s = BuildStack(std::move(*g), /*include_backward=*/true);
  ASSERT_NE(s, nullptr);
  CheckAgreement(*s, {
                         "friend-[1,2]",
                         "friend[1]/colleague-[1]",
                         "colleague-[1,2]/friend[1]",
                     });
}

TEST(EvaluatorAgreement, PrefilterDelegatesInvalidQueriesToInner) {
  // The prefilter must not convert invalid queries into silent denies;
  // the inner evaluator reports the proper error (regression).
  auto s = BuildStack(MakeDiamond(), /*include_backward=*/false);
  ASSERT_NE(s, nullptr);
  OnlineEvaluator bfs(s->g, s->csr, TraversalOrder::kBfs);
  ClosurePrefilterEvaluator pref(*s->closure_directed, bfs);
  const BoundPathExpression expr = MustBind(s->g, "friend[1]");
  // Out-of-range endpoint: error, not deny.
  auto r1 = pref.Evaluate(ReachQuery{0, 99, &expr, false});
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);
  // Null expression: error, not deny.
  auto r2 = pref.Evaluate(ReachQuery{0, 1, nullptr, false});
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
}

TEST(EvaluatorAgreement, JoinRefusesBackwardWithoutBackwardLineGraph) {
  auto s = BuildStack(MakeDiamond(), /*include_backward=*/false);
  ASSERT_NE(s, nullptr);
  JoinIndexEvaluator join(s->g, s->lg, *s->oracle, *s->cluster, s->tables,
                          {});
  const BoundPathExpression expr = MustBind(s->g, "friend-[1]");
  auto r = join.Evaluate(ReachQuery{1, 0, &expr, false});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EvaluatorAgreement, AdjacencyTupleCapBoundsLiveTuplesNotCumulativeWork) {
  // A friend chain: every per-hop frontier has exactly one live tuple,
  // but the odometer walks 5 sequences. A cap of 2 must therefore never
  // trip (regression: the cap was applied to cumulative tuples).
  SocialGraph g;
  for (int i = 0; i < 6; ++i) g.AddNode();
  for (NodeId v = 0; v + 1 < 6; ++v) (void)g.AddEdge(v, v + 1, "friend");
  auto s = BuildStack(std::move(g), /*include_backward=*/false);
  ASSERT_NE(s, nullptr);
  JoinIndexOptions opts;
  opts.max_intermediate_tuples = 2;
  JoinIndexEvaluator join(s->g, s->lg, *s->oracle, *s->cluster, s->tables,
                          opts);
  const BoundPathExpression expr = MustBind(s->g, "friend[1,5]");
  auto r = join.Evaluate(ReachQuery{0, 5, &expr, false});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->granted);
  EXPECT_EQ(r->stats.line_queries, 5u);
}

/// Overlay extension of the agreement invariant: after a random
/// interleaving of staged additions and removals, every overlay-aware
/// evaluator must agree with a brute force over the *materialized*
/// logical graph (a mirror that actually applied each mutation and is
/// rebuilt from scratch — the semantics the overlay emulates lazily).
void CheckOverlayAgreement(const Stack& s, const DeltaOverlay& overlay,
                           const SocialGraph& mirror,
                           const std::vector<std::string>& exprs) {
  const CsrSnapshot mirror_csr = CsrSnapshot::Build(mirror);
  OnlineEvaluator bfs(s.g, s.csr, TraversalOrder::kBfs, &overlay);
  OnlineEvaluator dfs(s.g, s.csr, TraversalOrder::kDfs, &overlay);
  BidirectionalEvaluator bidi(s.g, s.csr, &overlay);
  // Conservative prefilter: with pending insertions it must delegate
  // rather than fast-deny from the stale closure.
  ClosurePrefilterEvaluator pref(*s.closure_undirected, bfs, &overlay);
  const Evaluator* evaluators[] = {&bfs, &dfs, &bidi, &pref};

  for (const std::string& text : exprs) {
    const BoundPathExpression expr = MustBind(s.g, text);
    for (NodeId src = 0; src < s.g.NumNodes(); ++src) {
      for (NodeId dst = 0; dst < s.g.NumNodes(); ++dst) {
        const ReachQuery q{src, dst, &expr, false};
        const bool expected =
            BruteForceMatch(mirror, mirror_csr, expr, src, dst);
        for (const Evaluator* eval : evaluators) {
          auto r = eval->Evaluate(q);
          ASSERT_TRUE(r.ok()) << eval->name() << ": "
                              << r.status().ToString();
          EXPECT_EQ(r->granted, expected)
              << eval->name() << " disagrees on '" << text << "' " << src
              << " -> " << dst << " with overlay (" << overlay.NumAdded()
              << " adds, " << overlay.NumRemoved() << " removes)";
        }
      }
    }
  }
}

TEST(EvaluatorAgreement, OverlayRandomizedMutationsAllFamilies) {
  const std::vector<std::string> exprs = {
      "friend[1]",
      "friend[1,2]/colleague[1]",
      "friend[1,3]",
      "colleague[1]/friend[1,2]",
      "friend[1]{age>=40}/colleague[1,2]",
  };
  for (uint64_t seed : {101u, 102u, 103u}) {
    auto gen = GenerateErdosRenyi(
        {.base = {.num_nodes = 18, .seed = seed}, .avg_out_degree = 2.0});
    ASSERT_TRUE(gen.ok());
    auto s = BuildStack(std::move(*gen), /*include_backward=*/false);
    ASSERT_NE(s, nullptr);

    SocialGraph mirror = s->g;  // the materialized logical graph
    DeltaOverlay overlay;
    const LabelId fr = s->g.labels().Lookup("friend");
    const LabelId co = s->g.labels().Lookup("colleague");
    ASSERT_NE(fr, kInvalidLabel);
    ASSERT_NE(co, kInvalidLabel);

    Rng rng(seed * 31);
    for (int op = 0; op < 40; ++op) {
      const NodeId a = static_cast<NodeId>(rng.NextBounded(s->g.NumNodes()));
      const NodeId b = static_cast<NodeId>(rng.NextBounded(s->g.NumNodes()));
      const LabelId l = rng.NextBool(0.5) ? fr : co;
      if (rng.NextBool(0.5)) {
        // Stage a logical add (mimicking the engine's invariants: never
        // duplicate a visible base edge).
        if (s->g.FindEdge(a, b, l).has_value()) {
          overlay.UnstageRemove(a, b, l);
        } else {
          overlay.StageAdd(a, b, l);
        }
        (void)mirror.AddEdge(a, b, l);
      } else {
        // Stage a logical remove of whatever edge is visible.
        if (overlay.UnstageAdd(a, b, l)) {
          // withdrew a pending insertion
        } else if (s->g.FindEdge(a, b, l).has_value()) {
          overlay.StageRemove(a, b, l);
        }
        if (auto id = mirror.FindEdge(a, b, l)) (void)mirror.RemoveEdge(*id);
      }
    }
    ASSERT_FALSE(overlay.empty());
    CheckOverlayAgreement(*s, overlay, mirror, exprs);
  }
}

TEST(EvaluatorAgreement, OverlayBackwardStepsSeeMutations) {
  auto s = BuildStack(MakeDiamond(), /*include_backward=*/true);
  ASSERT_NE(s, nullptr);
  SocialGraph mirror = s->g;
  DeltaOverlay overlay;
  const LabelId fr = s->g.labels().Lookup("friend");
  const LabelId co = s->g.labels().Lookup("colleague");
  // Mutations exercised through reversed steps: kill 5 -f-> 3, add
  // 3 -c-> 1 (reachable from 1 only via colleague-).
  overlay.StageRemove(5, 3, fr);
  (void)mirror.RemoveEdge(*mirror.FindEdge(5, 3, fr));
  overlay.StageAdd(3, 1, co);
  (void)mirror.AddEdge(3, 1, co);

  CheckOverlayAgreement(*s, overlay, mirror,
                        {
                            "friend-[1]",
                            "friend-[1,2]",
                            "colleague-[1]/friend-[1]",
                            "friend[1]/colleague-[1]",
                            "colleague-[1]{age>=40}",
                        });
}

TEST(EvaluatorAgreement, WitnessesAgreeOnValidity) {
  auto s = BuildStack(MakeDiamond(), /*include_backward=*/false);
  ASSERT_NE(s, nullptr);
  const BoundPathExpression expr =
      MustBind(s->g, "friend[1,2]/colleague[1]");
  const ReachQuery q{0, 3, &expr, /*want_witness=*/true};

  OnlineEvaluator bfs(s->g, s->csr, TraversalOrder::kBfs);
  BidirectionalEvaluator bidi(s->g, s->csr);
  JoinIndexEvaluator join(s->g, s->lg, *s->oracle, *s->cluster, s->tables,
                          {});
  JoinIndexOptions faithful_opts;
  faithful_opts.faithful_post_filter = true;
  JoinIndexEvaluator faithful(s->g, s->lg, *s->oracle, *s->cluster,
                              s->tables, faithful_opts);
  for (const Evaluator* eval :
       {static_cast<const Evaluator*>(&bfs),
        static_cast<const Evaluator*>(&bidi),
        static_cast<const Evaluator*>(&join),
        static_cast<const Evaluator*>(&faithful)}) {
    auto r = eval->Evaluate(q);
    ASSERT_TRUE(r.ok()) << eval->name();
    ASSERT_TRUE(r->granted) << eval->name();
    const auto& w = r->witness;
    ASSERT_GE(w.size(), 2u) << eval->name();
    EXPECT_EQ(w.front(), 0u) << eval->name();
    EXPECT_EQ(w.back(), 3u) << eval->name();
    for (size_t i = 0; i + 1 < w.size(); ++i) {
      bool edge_exists = false;
      for (const auto& e : s->csr.Out(w[i])) {
        if (e.other == w[i + 1]) edge_exists = true;
      }
      EXPECT_TRUE(edge_exists)
          << eval->name() << ": no edge " << w[i] << "->" << w[i + 1];
    }
  }
}

}  // namespace
}  // namespace sargus
