#include <gtest/gtest.h>

#include "index/transitive_closure.h"
#include "synth/generators.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

TEST(TransitiveClosure, DirectedChain) {
  SocialGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode();
  (void)g.AddEdge(0, 1, "friend");
  (void)g.AddEdge(1, 2, "friend");
  (void)g.AddEdge(2, 3, "friend");
  CsrSnapshot csr = CsrSnapshot::Build(g);
  TransitiveClosure tc = TransitiveClosure::Build(csr, false);
  EXPECT_EQ(tc.NumComponents(), 4u);
  EXPECT_TRUE(tc.Reachable(0, 3));
  EXPECT_TRUE(tc.Reachable(1, 2));
  EXPECT_FALSE(tc.Reachable(3, 0));
  EXPECT_TRUE(tc.Reachable(2, 2));  // self
  // Pairs: (0,1)(0,2)(0,3)(1,2)(1,3)(2,3) = 6.
  EXPECT_EQ(tc.NumReachablePairs(), 6u);
  EXPECT_FALSE(tc.is_undirected());
}

TEST(TransitiveClosure, CycleCompresses) {
  SocialGraph g;
  for (int i = 0; i < 3; ++i) g.AddNode();
  (void)g.AddEdge(0, 1, "friend");
  (void)g.AddEdge(1, 0, "friend");
  (void)g.AddEdge(1, 2, "friend");
  CsrSnapshot csr = CsrSnapshot::Build(g);
  TransitiveClosure tc = TransitiveClosure::Build(csr, false);
  EXPECT_EQ(tc.NumComponents(), 2u);
  EXPECT_TRUE(tc.Reachable(0, 1));
  EXPECT_TRUE(tc.Reachable(1, 0));
  EXPECT_TRUE(tc.Reachable(0, 2));
  EXPECT_FALSE(tc.Reachable(2, 0));
  // (0,1)(1,0)(0,2)(1,2) = 4.
  EXPECT_EQ(tc.NumReachablePairs(), 4u);
}

TEST(TransitiveClosure, UndirectedComponents) {
  SocialGraph g;
  for (int i = 0; i < 5; ++i) g.AddNode();
  (void)g.AddEdge(0, 1, "friend");
  (void)g.AddEdge(2, 1, "friend");  // 0-1-2 one undirected component
  (void)g.AddEdge(3, 4, "friend");  // 3-4 another
  CsrSnapshot csr = CsrSnapshot::Build(g);
  TransitiveClosure tc = TransitiveClosure::Build(csr, true);
  EXPECT_TRUE(tc.is_undirected());
  EXPECT_EQ(tc.NumComponents(), 2u);
  EXPECT_TRUE(tc.Reachable(0, 2));
  EXPECT_TRUE(tc.Reachable(2, 0));
  EXPECT_TRUE(tc.Reachable(3, 4));
  EXPECT_FALSE(tc.Reachable(0, 3));
  // 3*2 + 2*1 = 8 ordered pairs.
  EXPECT_EQ(tc.NumReachablePairs(), 8u);
}

TEST(TransitiveClosure, AgreesWithBfsOnRandomGraph) {
  auto g = GenerateErdosRenyi(
      {.base = {.num_nodes = 60, .seed = 5, .reciprocity = 0.2},
       .avg_out_degree = 2.0});
  ASSERT_TRUE(g.ok());
  CsrSnapshot csr = CsrSnapshot::Build(*g);
  TransitiveClosure tc = TransitiveClosure::Build(csr, false);
  // Reference BFS per source.
  for (NodeId src = 0; src < 60; ++src) {
    std::vector<uint8_t> seen(60, 0);
    std::vector<NodeId> queue{src};
    seen[src] = 1;
    for (size_t h = 0; h < queue.size(); ++h) {
      for (const auto& e : csr.Out(queue[h])) {
        if (!seen[e.other]) {
          seen[e.other] = 1;
          queue.push_back(e.other);
        }
      }
    }
    for (NodeId dst = 0; dst < 60; ++dst) {
      EXPECT_EQ(tc.Reachable(src, dst), static_cast<bool>(seen[dst]))
          << src << " -> " << dst;
    }
  }
}

TEST(TransitiveClosure, MemoryGrowsWithComponents) {
  auto dag_like = GenerateErdosRenyi(
      {.base = {.num_nodes = 200, .seed = 7, .reciprocity = 0.0,
                .assign_attributes = false},
       .avg_out_degree = 1.5});
  ASSERT_TRUE(dag_like.ok());
  CsrSnapshot csr = CsrSnapshot::Build(*dag_like);
  TransitiveClosure tc = TransitiveClosure::Build(csr, false);
  EXPECT_GT(tc.NumComponents(), 100u);  // few cycles at this density
  EXPECT_GT(tc.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace sargus
