#include <gtest/gtest.h>

#include <algorithm>

#include "query/online_evaluator.h"
#include "synth/generators.h"
#include "synth/workload.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

using testing_util::MakeDiamond;
using testing_util::MustBind;

TEST(Workload, AudienceOnDiamond) {
  SocialGraph g = MakeDiamond();
  CsrSnapshot csr = CsrSnapshot::Build(g);
  const BoundPathExpression expr = MustBind(g, "friend[1,2]/colleague[1]");
  // From 0: 0-f->1-c?-no... audiences: via 0-f->4-c->3 and 0-f->1-f->2-c->3
  // both end at 3; via 0-f->1 then colleague 1-c->5 ends at 5.
  const auto audience = CollectMatchingAudience(g, csr, expr, 0);
  EXPECT_EQ(audience, (std::vector<NodeId>{3, 5}));
  // Sorted ascending by contract.
  EXPECT_TRUE(std::is_sorted(audience.begin(), audience.end()));
}

TEST(Workload, AudienceMatchesEvaluatorDecisions) {
  auto gen = GenerateBarabasiAlbert(
      {.base = {.num_nodes = 40, .seed = 17}, .edges_per_node = 2});
  ASSERT_TRUE(gen.ok());
  SocialGraph g = std::move(*gen);
  CsrSnapshot csr = CsrSnapshot::Build(g);
  const BoundPathExpression expr = MustBind(g, "friend[1,2]/colleague[1]");
  OnlineEvaluator eval(g, csr);
  for (NodeId src = 0; src < g.NumNodes(); src += 3) {
    const auto audience = CollectMatchingAudience(g, csr, expr, src);
    for (NodeId dst = 0; dst < g.NumNodes(); ++dst) {
      const bool in_audience =
          std::binary_search(audience.begin(), audience.end(), dst);
      auto r = eval.Evaluate(ReachQuery{src, dst, &expr, false});
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r->granted, in_audience) << src << " -> " << dst;
    }
  }
}

TEST(Workload, EmptyOnMismatchedArguments) {
  SocialGraph g = MakeDiamond();
  SocialGraph other = MakeDiamond();
  CsrSnapshot csr = CsrSnapshot::Build(g);
  const BoundPathExpression foreign = MustBind(other, "friend[1]");
  EXPECT_TRUE(CollectMatchingAudience(g, csr, foreign, 0).empty());
  const BoundPathExpression expr = MustBind(g, "friend[1]");
  EXPECT_TRUE(CollectMatchingAudience(g, csr, expr, 99).empty());
}

TEST(Workload, FiltersRestrictAudience) {
  SocialGraph g = MakeDiamond();
  CsrSnapshot csr = CsrSnapshot::Build(g);
  // friend[1] from 0 reaches 1 (age 20) and 4 (age 50).
  const BoundPathExpression all = MustBind(g, "friend[1]");
  EXPECT_EQ(CollectMatchingAudience(g, csr, all, 0),
            (std::vector<NodeId>{1, 4}));
  const BoundPathExpression adults = MustBind(g, "friend[1]{age>=30}");
  EXPECT_EQ(CollectMatchingAudience(g, csr, adults, 0),
            (std::vector<NodeId>{4}));
}

}  // namespace
}  // namespace sargus
