#include <gtest/gtest.h>

#include "graph/line_graph.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

TEST(LineGraph, ForwardOnlyVertices) {
  SocialGraph g = testing_util::MakeDiamond();  // 8 edges
  CsrSnapshot csr = CsrSnapshot::Build(g);
  LineGraph lg = LineGraph::Build(csr);
  EXPECT_EQ(lg.NumVertices(), g.NumEdges());
  EXPECT_FALSE(lg.includes_backward());
  EXPECT_EQ(lg.NumGraphNodes(), g.NumNodes());
  for (LineVertexId v = 0; v < lg.NumVertices(); ++v) {
    const auto& lv = lg.vertex(v);
    EXPECT_FALSE(lv.backward);
    const Edge& e = g.edge(lv.edge);
    EXPECT_EQ(lv.tail, e.src);
    EXPECT_EQ(lv.head, e.dst);
    EXPECT_EQ(lv.label, e.label);
  }
}

TEST(LineGraph, BackwardDoublesVertices) {
  SocialGraph g = testing_util::MakeDiamond();
  CsrSnapshot csr = CsrSnapshot::Build(g);
  LineGraph lg = LineGraph::Build(csr, {.include_backward = true});
  EXPECT_EQ(lg.NumVertices(), 2 * g.NumEdges());
  EXPECT_TRUE(lg.includes_backward());
  size_t backward = 0;
  for (LineVertexId v = 0; v < lg.NumVertices(); ++v) {
    const auto& lv = lg.vertex(v);
    if (lv.backward) {
      ++backward;
      const Edge& e = g.edge(lv.edge);
      EXPECT_EQ(lv.tail, e.dst);
      EXPECT_EQ(lv.head, e.src);
    }
  }
  EXPECT_EQ(backward, g.NumEdges());
}

TEST(LineGraph, ArcCountMatchesInOutProducts) {
  // Path a -> b -> c plus b -> d: line vertices (ab),(bc),(bd).
  // Arcs: (ab)->(bc), (ab)->(bd). Sum over nodes of in*out = 1*2 = 2.
  SocialGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode();
  (void)g.AddEdge(0, 1, "friend");
  (void)g.AddEdge(1, 2, "friend");
  (void)g.AddEdge(1, 3, "friend");
  CsrSnapshot csr = CsrSnapshot::Build(g);
  LineGraph lg = LineGraph::Build(csr);
  EXPECT_EQ(lg.NumVertices(), 3u);
  EXPECT_EQ(lg.NumArcs(), 2u);
}

TEST(LineGraph, TailHeadBuckets) {
  SocialGraph g = testing_util::MakeDiamond();
  CsrSnapshot csr = CsrSnapshot::Build(g);
  LineGraph lg = LineGraph::Build(csr);
  // Node 0 has two outgoing edges -> two line vertices with tail 0.
  EXPECT_EQ(lg.VerticesWithTail(0).size(), 2u);
  // Node 3 has three incoming edges -> three with head 3.
  EXPECT_EQ(lg.VerticesWithHead(3).size(), 3u);
  // Successor relation: arcs out of a line vertex are exactly the
  // vertices whose tail is its head.
  for (LineVertexId v = 0; v < lg.NumVertices(); ++v) {
    for (LineVertexId w : lg.VerticesWithTail(lg.vertex(v).head)) {
      EXPECT_EQ(lg.vertex(v).head, lg.vertex(w).tail);
    }
  }
}

}  // namespace
}  // namespace sargus
