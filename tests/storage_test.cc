#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/checksum.h"
#include "common/file_util.h"
#include "common/rng.h"
#include "engine/access_engine.h"
#include "shard/wire.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_loader.h"
#include "storage/wal.h"
#include "synth/generators.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

using storage::WalRecord;
using testing_util::MakeDiamond;

// ---- Scoped temp directory --------------------------------------------------

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/sargus_storage_test_XXXXXX";
    path_ = mkdtemp(tmpl);
    EXPECT_FALSE(path_.empty());
  }
  ~TempDir() {
    // Best-effort recursive cleanup (flat directories only).
    const std::string cmd = "rm -rf '" + path_ + "'";
    (void)system(cmd.c_str());
  }
  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ---- Checksum golden values -------------------------------------------------

// Pinned against an independent FNV-1a-64 implementation. Both the wire
// protocol and the storage formats hash through common/checksum.h; these
// constants keep anyone from "fixing" the shared function in a way that
// silently invalidates every bundle and WAL on disk.
TEST(Checksum, GoldenValues) {
  EXPECT_EQ(Fnv1a64(nullptr, 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("hello", 5), 0xa430d84680aabd0bULL);
  EXPECT_EQ(Fnv1a64("sargus", 6), 0x6099bfb64f529ef2ULL);
  std::vector<uint8_t> all(256);
  for (size_t i = 0; i < 256; ++i) all[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Fnv1a64(all.data(), all.size()), 0x4242dc5249c33625ULL);
}

// The eight-lane striped variant bundle sections use is pinned the same
// way: these values freeze the lane interleave (byte i -> lane i % 8)
// and the little-endian digest-of-digests combine. A short input also
// pins the tail path, where fewer than eight lanes consume a byte.
TEST(Checksum, StripedGoldenValues) {
  EXPECT_EQ(StripedFnv1a64(nullptr, 0), 0xaf3449a2699d5925ULL);
  EXPECT_EQ(StripedFnv1a64("a", 1), 0xccbe2a2b8f6076f1ULL);
  EXPECT_EQ(StripedFnv1a64("sargus", 6), 0x31360b7e66d49632ULL);
  std::vector<uint8_t> all(256);
  for (size_t i = 0; i < 256; ++i) all[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(StripedFnv1a64(all.data(), all.size()), 0x86c25f65d9721d98ULL);
}

// The wire framing layer must keep using the same hash: its trailing
// checksum over the frame body equals common/checksum.h's answer.
TEST(Checksum, WireFramesUseTheSharedFnv) {
  wire::CheckRequest req;
  req.requester = 7;
  req.resource = 3;
  req.want_witness = 1;
  const std::vector<uint8_t> frame = wire::Encode(req);
  ASSERT_GT(frame.size(), 8u);
  const std::span<const uint8_t> body(frame.data(), frame.size() - 8);
  uint64_t trailer = 0;
  std::memcpy(&trailer, frame.data() + frame.size() - 8, 8);
  EXPECT_EQ(trailer, Fnv1a64(body));
}

// ---- WAL --------------------------------------------------------------------

std::vector<WalRecord> SampleRecords() {
  std::vector<WalRecord> recs;
  recs.push_back({WalRecord::Kind::kAddEdge, 1, 5, 10, 20, "friend"});
  recs.push_back({WalRecord::Kind::kRemoveEdge, 1, 6, 10, 20, "friend"});
  recs.push_back({WalRecord::Kind::kAddNode, 1, 7, 0, 0, ""});
  recs.push_back({WalRecord::Kind::kPolicyRefresh, 2, 0, 0, 0, ""});
  recs.push_back({WalRecord::Kind::kAddEdge, 2, 1, 3, 4, ""});  // empty label
  return recs;
}

void ExpectRecordsEq(const std::vector<WalRecord>& got,
                     const std::vector<WalRecord>& want, size_t want_count) {
  ASSERT_EQ(got.size(), want_count);
  for (size_t i = 0; i < want_count; ++i) {
    EXPECT_EQ(got[i].kind, want[i].kind) << i;
    EXPECT_EQ(got[i].generation, want[i].generation) << i;
    EXPECT_EQ(got[i].overlay_version, want[i].overlay_version) << i;
    EXPECT_EQ(got[i].src, want[i].src) << i;
    EXPECT_EQ(got[i].dst, want[i].dst) << i;
    EXPECT_EQ(got[i].label, want[i].label) << i;
  }
}

TEST(Wal, RoundTrip) {
  TempDir dir;
  const std::string path = dir.File("wal.log");
  const auto recs = SampleRecords();
  {
    auto w = storage::WalWriter::Open(path, storage::WalSyncPolicy::kNever);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    for (const auto& r : recs) ASSERT_TRUE(w->Append(r).ok());
  }
  auto contents = storage::ReadWal(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(contents->tail_status.ok());
  ExpectRecordsEq(contents->records, recs, recs.size());
}

TEST(Wal, MissingFileIsNotFound) {
  TempDir dir;
  auto contents = storage::ReadWal(dir.File("absent.log"));
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kNotFound);
}

TEST(Wal, TornTailIsTruncatedOnReopen) {
  TempDir dir;
  const std::string path = dir.File("wal.log");
  const auto recs = SampleRecords();
  {
    auto w = storage::WalWriter::Open(path, storage::WalSyncPolicy::kNever);
    ASSERT_TRUE(w.ok());
    for (const auto& r : recs) ASSERT_TRUE(w->Append(r).ok());
  }
  // Tear the last record: drop its final byte (the checksum's tail).
  auto bytes = ReadAll(path);
  bytes.pop_back();
  WriteAll(path, bytes);

  auto contents = storage::ReadWal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->tail_status.code(), StatusCode::kDataLoss);
  ExpectRecordsEq(contents->records, recs, recs.size() - 1);

  // A recovering writer resumes at valid_bytes; the torn bytes are gone
  // and a fresh append lands cleanly after the surviving prefix.
  auto w = storage::WalWriter::Open(path, storage::WalSyncPolicy::kNever,
                                    static_cast<int64_t>(contents->valid_bytes));
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  ASSERT_TRUE(w->Append(recs[0]).ok());
  auto again = storage::ReadWal(path);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->tail_status.ok());
  ASSERT_EQ(again->records.size(), recs.size());
  EXPECT_EQ(again->records.back().label, recs[0].label);
}

TEST(Wal, HeaderDamageIsInvalidArgument) {
  TempDir dir;
  const std::string path = dir.File("wal.log");
  {
    auto w = storage::WalWriter::Open(path, storage::WalSyncPolicy::kNever);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append(SampleRecords()[0]).ok());
  }
  auto bytes = ReadAll(path);
  bytes[3] ^= 0x40;  // magic
  WriteAll(path, bytes);
  auto contents = storage::ReadWal(path);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kInvalidArgument);
}

TEST(Wal, TruncateResetsToHeader) {
  TempDir dir;
  const std::string path = dir.File("wal.log");
  auto w = storage::WalWriter::Open(path, storage::WalSyncPolicy::kNever);
  ASSERT_TRUE(w.ok());
  for (const auto& r : SampleRecords()) ASSERT_TRUE(w->Append(r).ok());
  ASSERT_TRUE(w->Truncate().ok());
  EXPECT_EQ(w->size(), storage::kWalFileHeaderBytes);
  auto contents = storage::ReadWal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->tail_status.ok());
  EXPECT_TRUE(contents->records.empty());
}

// AppendBatch round-trips byte-identically to N single Appends, and the
// fsync accounting matches the policy table: kGroupCommit syncs once
// per batch and never for single appends; kEveryRecord syncs every
// single append but still only once per batch (nothing in a batch is
// acknowledged before AppendBatch returns); kNever never syncs.
TEST(Wal, AppendBatchRoundTripAndSyncCounters) {
  TempDir dir;
  const auto recs = SampleRecords();

  {
    const std::string path = dir.File("group.log");
    auto w = storage::WalWriter::Open(path,
                                      storage::WalSyncPolicy::kGroupCommit);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->AppendBatch(recs).ok());
    EXPECT_EQ(w->append_count(), recs.size());
    EXPECT_EQ(w->sync_count(), 1u);
    ASSERT_TRUE(w->AppendBatch({}).ok());  // empty batch: no write, no sync
    EXPECT_EQ(w->append_count(), recs.size());
    EXPECT_EQ(w->sync_count(), 1u);
    ASSERT_TRUE(w->Append(recs[0]).ok());  // single append rides, no sync
    EXPECT_EQ(w->append_count(), recs.size() + 1);
    EXPECT_EQ(w->sync_count(), 1u);

    auto contents = storage::ReadWal(path);
    ASSERT_TRUE(contents.ok());
    EXPECT_TRUE(contents->tail_status.ok());
    ASSERT_EQ(contents->records.size(), recs.size() + 1);
    ExpectRecordsEq(std::vector<WalRecord>(
                        contents->records.begin(),
                        contents->records.begin() +
                            static_cast<std::ptrdiff_t>(recs.size())),
                    recs, recs.size());
  }
  {
    const std::string path = dir.File("every.log");
    auto w = storage::WalWriter::Open(path,
                                      storage::WalSyncPolicy::kEveryRecord);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append(recs[0]).ok());
    ASSERT_TRUE(w->Append(recs[1]).ok());
    EXPECT_EQ(w->sync_count(), 2u);
    ASSERT_TRUE(w->AppendBatch(recs).ok());
    EXPECT_EQ(w->append_count(), recs.size() + 2);
    EXPECT_EQ(w->sync_count(), 3u);  // the whole batch cost one more
  }
  {
    const std::string path = dir.File("never.log");
    auto w = storage::WalWriter::Open(path, storage::WalSyncPolicy::kNever);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append(recs[0]).ok());
    ASSERT_TRUE(w->AppendBatch(recs).ok());
    EXPECT_EQ(w->append_count(), recs.size() + 1);
    EXPECT_EQ(w->sync_count(), 0u);
  }

  // A batch's bytes are identical to the same records appended one at a
  // time — record boundaries inside the batch are preserved.
  EXPECT_EQ(ReadAll(dir.File("never.log")), [&] {
    const std::string path = dir.File("singles.log");
    auto w = storage::WalWriter::Open(path, storage::WalSyncPolicy::kNever);
    EXPECT_TRUE(w.ok());
    EXPECT_TRUE(w->Append(recs[0]).ok());
    for (const auto& r : recs) EXPECT_TRUE(w->Append(r).ok());
    return ReadAll(path);
  }());
}

// A torn tail *inside* an AppendBatch truncates to the last whole
// record of the batch — a surviving batch prefix is safe because
// nothing was acknowledged before the full batch synced.
TEST(Wal, TornBatchTailTruncatesToLastWholeRecord) {
  TempDir dir;
  const std::string path = dir.File("wal.log");
  const auto recs = SampleRecords();
  {
    auto w = storage::WalWriter::Open(path, storage::WalSyncPolicy::kNever);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->AppendBatch(recs).ok());
  }
  // Chop the file mid-way into the batch's fourth record: the third
  // record's end is the last whole-record boundary.
  size_t third_end = storage::kWalFileHeaderBytes;
  for (int i = 0; i < 3; ++i) {
    third_end += storage::EncodeWalRecord(recs[i]).size();
  }
  auto bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), third_end + 4);
  bytes.resize(third_end + 4);  // a dangling length prefix, no payload
  WriteAll(path, bytes);

  auto contents = storage::ReadWal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_FALSE(contents->tail_status.ok());
  EXPECT_EQ(contents->valid_bytes, third_end);
  ExpectRecordsEq(contents->records, recs, 3);

  // A recovering writer resumes at the boundary and a fresh batch lands
  // cleanly after the surviving prefix.
  auto w = storage::WalWriter::Open(path, storage::WalSyncPolicy::kGroupCommit,
                                    static_cast<int64_t>(contents->valid_bytes));
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  ASSERT_TRUE(w->AppendBatch(recs).ok());
  auto again = storage::ReadWal(path);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->tail_status.ok());
  EXPECT_EQ(again->records.size(), 3 + recs.size());
}

// ---- Bundle round trip ------------------------------------------------------

// Decision-level equality over every (requester, resource) pair: the
// recovered engine must answer byte-identically (grant bit, owner bit,
// matched rule) to the live one.
void ExpectDecisionEquivalence(const AccessControlEngine& live,
                               const AccessControlEngine& recovered,
                               size_t num_nodes, size_t num_resources) {
  for (NodeId v = 0; v < num_nodes; ++v) {
    for (ResourceId res = 0; res < num_resources; ++res) {
      auto a = live.CheckAccess({.requester = v, .resource = res});
      auto b = recovered.CheckAccess({.requester = v, .resource = res});
      ASSERT_EQ(a.ok(), b.ok()) << "v=" << v << " res=" << res;
      if (!a.ok()) continue;
      EXPECT_EQ(a->granted, b->granted) << "v=" << v << " res=" << res;
      EXPECT_EQ(a->owner_access, b->owner_access)
          << "v=" << v << " res=" << res;
      EXPECT_EQ(a->matched_rule, b->matched_rule)
          << "v=" << v << " res=" << res;
    }
  }
}

TEST(Bundle, RoundTripDiamondNoRebuild) {
  TempDir dir;
  SocialGraph g = MakeDiamond();
  PolicyStore store;
  const ResourceId photo = store.RegisterResource(0, "photo");
  ASSERT_TRUE(store.AddRuleFromPaths(photo, {"friend[1,2]/colleague[1]"}).ok());
  const ResourceId note = store.RegisterResource(2, "note");
  ASSERT_TRUE(store.AddRuleFromPaths(note, {"friend[1,3]"}).ok());

  AccessControlEngine engine(g, store);
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  ASSERT_TRUE(engine.EnableDurability(dir.path()).ok());

  SocialGraph g2;
  auto reopened = AccessControlEngine::OpenFromDir(dir.path(), &g2, store);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // The whole point: the first CheckAccess works with no RebuildIndexes.
  EXPECT_TRUE((*reopened)->indexes_built());
  EXPECT_TRUE((*reopened)->durable());
  EXPECT_EQ((*reopened)->snapshot_generation(), engine.snapshot_generation());
  ExpectDecisionEquivalence(engine, **reopened, g.NumNodes(),
                            store.NumResources());
}

TEST(Bundle, RoundTripPreservesWalTail) {
  TempDir dir;
  SocialGraph g = MakeDiamond();
  PolicyStore store;
  const ResourceId photo = store.RegisterResource(0, "photo");
  ASSERT_TRUE(store.AddRuleFromPaths(photo, {"friend[1,2]/colleague[1]"}).ok());

  AccessControlEngine engine(g, store);
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  ASSERT_TRUE(engine.EnableDurability(dir.path()).ok());

  // Mutations after the save live only in the WAL: a brand-new node
  // wired into the audience, an interned-later label, and a removal.
  auto n = engine.AddNode();
  ASSERT_TRUE(n.ok());
  ASSERT_TRUE(engine.AddEdge(2, *n, "colleague").ok());
  ASSERT_TRUE(engine.AddEdge(*n, 3, "mentor").ok());  // new label
  ASSERT_TRUE(engine.RemoveEdge(4, 3, "colleague").ok());
  EXPECT_GT(engine.wal_size_bytes(), storage::kWalFileHeaderBytes);

  SocialGraph g2;
  auto reopened = AccessControlEngine::OpenFromDir(dir.path(), &g2, store);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectDecisionEquivalence(engine, **reopened, g.NumNodes() + 1,
                            store.NumResources());

  // The recovered engine keeps logging: one more mutation, one more
  // reopen, still equivalent.
  ASSERT_TRUE((*reopened)->AddEdge(0, *n, "friend").ok());
  ASSERT_TRUE(engine.AddEdge(0, *n, "friend").ok());
  SocialGraph g3;
  auto again = AccessControlEngine::OpenFromDir(dir.path(), &g3, store);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ExpectDecisionEquivalence(engine, **again, g.NumNodes() + 1,
                            store.NumResources());
}

TEST(Bundle, ExplicitSaveTruncatesWal) {
  TempDir dir;
  SocialGraph g = MakeDiamond();
  PolicyStore store;
  const ResourceId photo = store.RegisterResource(0, "photo");
  ASSERT_TRUE(store.AddRuleFromPaths(photo, {"friend[1]"}).ok());

  AccessControlEngine engine(g, store);
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  ASSERT_TRUE(engine.EnableDurability(dir.path()).ok());
  ASSERT_TRUE(engine.AddEdge(0, 3, "friend").ok());
  EXPECT_GT(engine.wal_size_bytes(), storage::kWalFileHeaderBytes);
  ASSERT_TRUE(engine.SaveSnapshot().ok());
  EXPECT_EQ(engine.wal_size_bytes(), storage::kWalFileHeaderBytes);

  SocialGraph g2;
  auto reopened = AccessControlEngine::OpenFromDir(dir.path(), &g2, store);
  ASSERT_TRUE(reopened.ok());
  ExpectDecisionEquivalence(engine, **reopened, g.NumNodes(),
                            store.NumResources());
}

TEST(Bundle, MissingBundleIsNotFound) {
  TempDir dir;
  SocialGraph g;
  PolicyStore store;
  auto r = AccessControlEngine::OpenFromDir(dir.path(), &g, store);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Bundle, OpenValidatesOptionsAgainstFlags) {
  TempDir dir;
  SocialGraph g = MakeDiamond();
  PolicyStore store;
  // Save under an online-only configuration: no join stack, no closure.
  EngineOptions online;
  online.evaluator = EvaluatorChoice::kOnlineBfs;
  AccessControlEngine engine(g, store, online);
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  ASSERT_TRUE(engine.EnableDurability(dir.path()).ok());

  SocialGraph g2;
  // kAuto needs the join stack the bundle never built.
  auto need_join = AccessControlEngine::OpenFromDir(dir.path(), &g2, store);
  ASSERT_FALSE(need_join.ok());
  EXPECT_EQ(need_join.status().code(), StatusCode::kFailedPrecondition);

  EngineOptions closure = online;
  closure.use_closure_prefilter = true;
  auto need_closure =
      AccessControlEngine::OpenFromDir(dir.path(), &g2, store, closure);
  ASSERT_FALSE(need_closure.ok());
  EXPECT_EQ(need_closure.status().code(), StatusCode::kFailedPrecondition);

  // The configuration that saved it opens fine.
  auto ok = AccessControlEngine::OpenFromDir(dir.path(), &g2, store, online);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ExpectDecisionEquivalence(engine, **ok, g.NumNodes(), store.NumResources());
}

// Randomized equivalence across all three graph families: generate,
// attach policies, mutate (adds, removes, node growth), save at an
// arbitrary point, keep mutating so a WAL tail exists, reopen, compare
// every decision.
TEST(Bundle, RandomizedRoundTripEquivalence) {
  struct Case {
    const char* name;
    SocialGraph graph;
  };
  std::vector<Case> cases;
  {
    auto er = GenerateErdosRenyi(
        {.base = {.num_nodes = 120, .seed = 11}, .avg_out_degree = 3.0});
    ASSERT_TRUE(er.ok());
    cases.push_back({"er", std::move(*er)});
    auto ba = GenerateBarabasiAlbert(
        {.base = {.num_nodes = 100, .seed = 12}, .edges_per_node = 3});
    ASSERT_TRUE(ba.ok());
    cases.push_back({"ba", std::move(*ba)});
    auto ws = GenerateWattsStrogatz({.base = {.num_nodes = 100, .seed = 13},
                                     .neighbors_per_side = 2,
                                     .rewire_probability = 0.2});
    ASSERT_TRUE(ws.ok());
    cases.push_back({"ws", std::move(*ws)});
  }

  for (auto& c : cases) {
    SCOPED_TRACE(c.name);
    TempDir dir;
    PolicyStore store;
    const size_t n = c.graph.NumNodes();
    for (int i = 0; i < 4; ++i) {
      const ResourceId res =
          store.RegisterResource(static_cast<NodeId>(i * 7 % n), "res");
      ASSERT_TRUE(store
                      .AddRuleFromPaths(
                          res, {i % 2 == 0 ? "friend[1,2]"
                                           : "friend[1]/colleague[1,2]"})
                      .ok());
    }

    AccessControlEngine engine(c.graph, store);
    ASSERT_TRUE(engine.RebuildIndexes().ok());
    ASSERT_TRUE(engine.EnableDurability(dir.path()).ok());

    Rng rng(1000 + c.graph.NumEdges());
    const char* labels[] = {"friend", "colleague", "family"};
    auto mutate_once = [&](size_t logical_nodes) {
      const uint64_t pick = rng.NextBounded(10);
      const NodeId src = static_cast<NodeId>(rng.NextBounded(logical_nodes));
      const NodeId dst = static_cast<NodeId>(rng.NextBounded(logical_nodes));
      if (pick < 6) {
        ASSERT_TRUE(engine.AddEdge(src, dst, labels[rng.NextBounded(3)]).ok());
      } else if (pick < 8) {
        // Removal may legitimately miss; both engines see the same miss.
        (void)engine.RemoveEdge(src, dst, labels[rng.NextBounded(3)]);
      } else {
        auto added = engine.AddNode();
        ASSERT_TRUE(added.ok());
      }
    };

    size_t logical = n;
    for (int i = 0; i < 40; ++i) {
      mutate_once(logical);
      logical = engine.overlay().num_staged_nodes() + n;
    }
    ASSERT_TRUE(engine.SaveSnapshot().ok());  // bundle mid-sequence
    for (int i = 0; i < 40; ++i) {
      mutate_once(logical);
      logical = engine.overlay().num_staged_nodes() + n;
    }
    engine.WaitForCompaction();  // quiesce before comparing writer state

    SocialGraph recovered_graph;
    auto reopened =
        AccessControlEngine::OpenFromDir(dir.path(), &recovered_graph, store);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    ExpectDecisionEquivalence(engine, **reopened, logical,
                              store.NumResources());
  }
}

// ---- Recovery ordering ------------------------------------------------------

// The crash window: a bundle is durably published but the process dies
// before the WAL truncation lands. Reopen must skip every covered record
// — double-applying the RemoveEdge below would fail (the logical edge is
// already gone) and double-applying the AddEdge would resurrect it.
TEST(Recovery, SkipsRecordsCoveredByTheBundle) {
  TempDir dir;
  SocialGraph g = MakeDiamond();
  PolicyStore store;
  const ResourceId photo = store.RegisterResource(0, "photo");
  ASSERT_TRUE(store.AddRuleFromPaths(photo, {"friend[1,2]/colleague[1]"}).ok());

  AccessControlEngine engine(g, store);
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  DurabilityOptions no_truncate;
  no_truncate.truncate_wal_on_save = false;  // simulate dying pre-truncate
  ASSERT_TRUE(engine.EnableDurability(dir.path(), no_truncate).ok());

  ASSERT_TRUE(engine.AddEdge(0, 3, "friend").ok());
  ASSERT_TRUE(engine.RemoveEdge(0, 3, "friend").ok());
  ASSERT_TRUE(engine.RemoveEdge(4, 3, "colleague").ok());
  ASSERT_TRUE(engine.SaveSnapshot().ok());
  // Crash window "closed over": records above are covered but still on
  // disk. Stamp a couple of uncovered ones after.
  ASSERT_TRUE(engine.AddEdge(4, 3, "colleague").ok());
  ASSERT_TRUE(engine.AddEdge(1, 3, "colleague").ok());
  EXPECT_GT(engine.wal_size_bytes(), storage::kWalFileHeaderBytes);

  SocialGraph g2;
  auto reopened = AccessControlEngine::OpenFromDir(dir.path(), &g2, store);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectDecisionEquivalence(engine, **reopened, g.NumNodes(),
                            store.NumResources());

  // Sanity on the oracle itself: the WAL really does hold both covered
  // and uncovered records.
  auto wal = storage::ReadWal(dir.File(storage::kWalFileName));
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal->records.size(), 5u);
}

// SIGKILL the WAL-appending process mid-stream, reopen, and verify the
// recovered engine agrees with a mirror engine driven by what an
// independent WAL read says survived. Every record the child saw
// acknowledged (kEveryRecord sync) must be present.
TEST(Recovery, KillAndReopenReplaysAckedRecords) {
  TempDir dir;
  SocialGraph g = MakeDiamond();
  PolicyStore store;
  const ResourceId photo = store.RegisterResource(0, "photo");
  ASSERT_TRUE(store.AddRuleFromPaths(photo, {"friend[1,3]"}).ok());

  storage::SnapshotStamp saved_stamp;
  {
    AccessControlEngine engine(g, store);
    ASSERT_TRUE(engine.RebuildIndexes().ok());
    ASSERT_TRUE(engine.EnableDurability(dir.path()).ok());
    saved_stamp = {engine.snapshot_generation(), engine.overlay_version()};
  }

  int pipefd[2];
  ASSERT_EQ(pipe(pipefd), 0);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: append fsynced records forever, ack each on the pipe. The
    // parent SIGKILLs us mid-stream; no cleanup must be needed for the
    // log to stay recoverable.
    close(pipefd[0]);
    auto w = storage::WalWriter::Open(dir.File(storage::kWalFileName),
                                      storage::WalSyncPolicy::kEveryRecord);
    if (!w.ok()) _exit(1);
    for (uint32_t i = 0;; ++i) {
      WalRecord rec;
      rec.kind = WalRecord::Kind::kAddEdge;
      rec.generation = saved_stamp.generation;
      rec.overlay_version = saved_stamp.overlay_version + 1 + i;
      rec.src = i % 6;
      rec.dst = (i + 2) % 6;
      rec.label = "friend";
      if (!w->Append(rec).ok()) _exit(2);
      const char ack = 1;
      if (write(pipefd[1], &ack, 1) != 1) _exit(3);
    }
  }
  close(pipefd[1]);
  // Let a handful of acknowledged appends land, then kill mid-stream.
  char acks[8];
  size_t got = 0;
  while (got < sizeof(acks)) {
    const ssize_t n = read(pipefd[0], acks + got, sizeof(acks) - got);
    ASSERT_GT(n, 0);
    got += static_cast<size_t>(n);
  }
  ASSERT_EQ(kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  close(pipefd[0]);

  // Independent oracle: read the surviving log directly and drive a
  // plain in-memory engine with it.
  auto wal = storage::ReadWal(dir.File(storage::kWalFileName));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_GE(wal->records.size(), got) << "an acked (fsynced) record is gone";

  SocialGraph mirror_graph = MakeDiamond();
  AccessControlEngine mirror(mirror_graph, store);
  ASSERT_TRUE(mirror.RebuildIndexes().ok());
  for (const auto& rec : wal->records) {
    ASSERT_TRUE(mirror.AddEdge(rec.src, rec.dst, rec.label).ok());
  }

  SocialGraph g2;
  auto reopened = AccessControlEngine::OpenFromDir(dir.path(), &g2, store);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectDecisionEquivalence(mirror, **reopened, mirror_graph.NumNodes(),
                            store.NumResources());
}

// The group-commit variant of the harness above: the child appends
// whole batches (AppendBatch under kGroupCommit — one fsync per batch)
// and acks per *batch*. SIGKILL can land mid-batch-write, leaving a
// torn batch tail; reopen must keep every acked batch intact and
// truncate the tail to the last whole record. A surviving prefix of the
// unacked batch is fine — nothing in it was acknowledged.
TEST(Recovery, KillAndReopenKeepsAckedGroupCommitBatches) {
  TempDir dir;
  SocialGraph g = MakeDiamond();
  PolicyStore store;
  const ResourceId photo = store.RegisterResource(0, "photo");
  ASSERT_TRUE(store.AddRuleFromPaths(photo, {"friend[1,3]"}).ok());

  storage::SnapshotStamp saved_stamp;
  {
    AccessControlEngine engine(g, store);
    ASSERT_TRUE(engine.RebuildIndexes().ok());
    ASSERT_TRUE(engine.EnableDurability(dir.path()).ok());
    saved_stamp = {engine.snapshot_generation(), engine.overlay_version()};
  }

  constexpr uint32_t kBatchSize = 4;
  int pipefd[2];
  ASSERT_EQ(pipe(pipefd), 0);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    close(pipefd[0]);
    auto w = storage::WalWriter::Open(dir.File(storage::kWalFileName),
                                      storage::WalSyncPolicy::kGroupCommit);
    if (!w.ok()) _exit(1);
    for (uint32_t b = 0;; ++b) {
      std::vector<WalRecord> batch;
      for (uint32_t j = 0; j < kBatchSize; ++j) {
        const uint32_t i = b * kBatchSize + j;
        WalRecord rec;
        rec.kind = WalRecord::Kind::kAddEdge;
        rec.generation = saved_stamp.generation;
        rec.overlay_version = saved_stamp.overlay_version + 1 + i;
        rec.src = i % 6;
        rec.dst = (i + 2) % 6;
        rec.label = "friend";
        batch.push_back(rec);
      }
      if (!w->AppendBatch(batch).ok()) _exit(2);
      const char ack = 1;  // the whole batch is fsynced: ack it
      if (write(pipefd[1], &ack, 1) != 1) _exit(3);
    }
  }
  close(pipefd[1]);
  char acks[6];
  size_t acked_batches = 0;
  while (acked_batches < sizeof(acks)) {
    const ssize_t n =
        read(pipefd[0], acks + acked_batches, sizeof(acks) - acked_batches);
    ASSERT_GT(n, 0);
    acked_batches += static_cast<size_t>(n);
  }
  ASSERT_EQ(kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  close(pipefd[0]);

  // Every record of every acked batch survives; whatever follows is a
  // clean prefix of the next batch (possibly with a detected torn tail,
  // which a reopen truncates at valid_bytes — never mid-record).
  auto wal = storage::ReadWal(dir.File(storage::kWalFileName));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_GE(wal->records.size(), acked_batches * kBatchSize)
      << "a record from an acked (group-committed) batch is gone";
  for (size_t i = 0; i < wal->records.size(); ++i) {
    EXPECT_EQ(wal->records[i].overlay_version,
              saved_stamp.overlay_version + 1 + i)
        << "surviving records are not a clean prefix";
  }

  SocialGraph mirror_graph = MakeDiamond();
  AccessControlEngine mirror(mirror_graph, store);
  ASSERT_TRUE(mirror.RebuildIndexes().ok());
  for (const auto& rec : wal->records) {
    ASSERT_TRUE(mirror.AddEdge(rec.src, rec.dst, rec.label).ok());
  }

  SocialGraph g2;
  auto reopened = AccessControlEngine::OpenFromDir(dir.path(), &g2, store);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectDecisionEquivalence(mirror, **reopened, mirror_graph.NumNodes(),
                            store.NumResources());
}

// ---- Corruption matrix ------------------------------------------------------

// Every single-bit flip over the bundle must surface as an explicit
// Status or leave the load byte-for-byte equivalent (flips in
// inter-section zero padding are outside every checksum and harmless) —
// never a crash, never silently different state.
TEST(Corruption, BundleBitFlipMatrix) {
  TempDir dir;
  SocialGraph g = MakeDiamond();
  PolicyStore store;
  const ResourceId photo = store.RegisterResource(0, "photo");
  ASSERT_TRUE(store.AddRuleFromPaths(photo, {"friend[1,2]/colleague[1]"}).ok());
  AccessControlEngine engine(g, store);
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  ASSERT_TRUE(engine.EnableDurability(dir.path()).ok());

  const std::string bundle_path = dir.File(storage::kSnapshotFileName);
  const std::vector<uint8_t> pristine = ReadAll(bundle_path);
  ASSERT_FALSE(pristine.empty());

  // Canonical re-serialization of the pristine load: the equivalence
  // oracle for flips that slip through (padding only).
  const std::string canon_path = dir.File("canon");
  {
    auto loaded = storage::LoadBundle(bundle_path);
    ASSERT_TRUE(loaded.ok());
    storage::BundlePayload payload;
    payload.graph = &loaded->graph;
    payload.indexes = loaded->indexes.get();
    payload.overlay = &loaded->overlay;
    payload.stamp = loaded->stamp;
    payload.compact_threshold = loaded->compact_threshold;
    ASSERT_TRUE(storage::WriteBundle(canon_path, payload).ok());
  }
  const std::vector<uint8_t> canon = ReadAll(canon_path);
  ASSERT_EQ(canon, pristine) << "serialization is not deterministic";

  // Every byte of the header page and of every section's byte range is
  // under a checksum; only inter-section zero padding is not.
  auto info = storage::ReadBundleInfo(bundle_path);
  ASSERT_TRUE(info.ok());
  auto covered = [&](size_t at) {
    if (at < storage::kBundlePageSize) return true;  // header + its checksum
    for (const auto& s : info->sections) {
      if (at >= s.offset && at < s.offset + s.size) return true;
    }
    return false;
  };

  const std::string corrupt_path = dir.File("corrupt");
  Rng rng(0xC0FFEE);
  int detected = 0, harmless = 0;
  constexpr int kFlips = 6000;
  for (int i = 0; i < kFlips; ++i) {
    std::vector<uint8_t> bytes = pristine;
    const size_t at = rng.NextBounded(bytes.size());
    bytes[at] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
    WriteAll(corrupt_path, bytes);
    auto loaded = storage::LoadBundle(corrupt_path);
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
          << "flip at byte " << at << ": " << loaded.status().ToString();
      ++detected;
      continue;
    }
    // The flip went undetected: it must have landed in padding, and the
    // loaded state must be byte-identical to the pristine one.
    EXPECT_FALSE(covered(at))
        << "flip at checksummed byte " << at << " loaded anyway";
    storage::BundlePayload payload;
    payload.graph = &loaded->graph;
    payload.indexes = loaded->indexes.get();
    payload.overlay = &loaded->overlay;
    payload.stamp = loaded->stamp;
    payload.compact_threshold = loaded->compact_threshold;
    ASSERT_TRUE(storage::WriteBundle(corrupt_path, payload).ok());
    EXPECT_EQ(ReadAll(corrupt_path), canon)
        << "undetected flip at byte " << at << " changed the loaded state";
    ++harmless;
  }
  EXPECT_GT(detected, 0);
  EXPECT_EQ(detected + harmless, kFlips);
}

// WAL flips: every byte of the log is covered (header validation or a
// record checksum), so any flip must either fail the header check or
// shorten the clean prefix — the surviving records must be an exact
// prefix of the originals.
TEST(Corruption, WalBitFlipMatrix) {
  TempDir dir;
  const std::string path = dir.File("wal.log");
  std::vector<WalRecord> recs;
  {
    auto w = storage::WalWriter::Open(path, storage::WalSyncPolicy::kNever);
    ASSERT_TRUE(w.ok());
    Rng seed_rng(7);
    for (int i = 0; i < 20; ++i) {
      WalRecord rec;
      rec.kind = static_cast<WalRecord::Kind>(1 + seed_rng.NextBounded(4));
      rec.generation = seed_rng.NextBounded(4);
      rec.overlay_version = i;
      if (rec.kind == WalRecord::Kind::kAddEdge ||
          rec.kind == WalRecord::Kind::kRemoveEdge) {
        // Only edge records carry endpoints; the codec drops them for
        // the other kinds, so only set them where they round-trip.
        rec.src = static_cast<NodeId>(seed_rng.NextBounded(100));
        rec.dst = static_cast<NodeId>(seed_rng.NextBounded(100));
        rec.label = seed_rng.NextBool(0.5) ? "friend" : "colleague";
      }
      ASSERT_TRUE(w->Append(rec).ok());
      recs.push_back(rec);
    }
  }
  const std::vector<uint8_t> pristine = ReadAll(path);

  Rng rng(0xBADF00D);
  constexpr int kFlips = 5000;
  for (int i = 0; i < kFlips; ++i) {
    std::vector<uint8_t> bytes = pristine;
    const size_t at = rng.NextBounded(bytes.size());
    bytes[at] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
    WriteAll(path, bytes);
    auto contents = storage::ReadWal(path);
    if (!contents.ok()) {
      // Header damage only.
      EXPECT_LT(at, storage::kWalFileHeaderBytes) << "flip at byte " << at;
      EXPECT_EQ(contents.status().code(), StatusCode::kInvalidArgument);
      continue;
    }
    // Some record absorbed the flip: the scan must have stopped there.
    EXPECT_FALSE(contents->tail_status.ok()) << "flip at byte " << at;
    ASSERT_LT(contents->records.size(), recs.size());
    ExpectRecordsEq(contents->records, recs, contents->records.size());
  }
}

}  // namespace
}  // namespace sargus
