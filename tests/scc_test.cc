#include <gtest/gtest.h>

#include "index/scc.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

/// Adjacency-list SCC harness over a plain digraph.
SccResult SccOf(size_t n, const std::vector<std::pair<uint32_t, uint32_t>>& arcs) {
  std::vector<std::vector<uint32_t>> adj(n);
  for (auto [u, v] : arcs) adj[u].push_back(v);
  return ComputeSccGeneric(n, [&adj](uint32_t v, auto&& emit) {
    for (uint32_t w : adj[v]) emit(w);
  });
}

TEST(Scc, SingletonComponents) {
  // A chain has no cycles: every vertex its own component.
  SccResult r = SccOf(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(r.num_components, 4u);
  EXPECT_NE(r.component_of[0], r.component_of[1]);
}

TEST(Scc, CycleCollapses) {
  SccResult r = SccOf(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  EXPECT_EQ(r.num_components, 2u);
  EXPECT_EQ(r.component_of[0], r.component_of[1]);
  EXPECT_EQ(r.component_of[1], r.component_of[2]);
  EXPECT_NE(r.component_of[2], r.component_of[3]);
}

TEST(Scc, TwoCyclesBridge) {
  SccResult r = SccOf(6, {{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 4}, {4, 2},
                          {4, 5}});
  EXPECT_EQ(r.num_components, 3u);  // {0,1}, {2,3,4}, {5}
  EXPECT_EQ(r.component_of[2], r.component_of[4]);
  EXPECT_NE(r.component_of[0], r.component_of[2]);
}

TEST(Dag, FromArcsTopoOrderValid) {
  Dag dag = Dag::FromArcs(5, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4},
                              {0, 1}});  // includes a duplicate
  EXPECT_EQ(dag.NumVertices(), 5u);
  EXPECT_EQ(dag.NumArcs(), 5u);  // duplicate removed
  // Topological order covers all vertices and respects arcs.
  const auto& topo = dag.TopoOrder();
  ASSERT_EQ(topo.size(), 5u);
  std::vector<uint32_t> pos(5);
  for (uint32_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (uint32_t u = 0; u < 5; ++u) {
    for (uint32_t v : dag.Out(u)) EXPECT_LT(pos[u], pos[v]);
  }
  // In-arcs mirror out-arcs.
  EXPECT_EQ(dag.In(3).size(), 2u);
  EXPECT_EQ(dag.Out(0).size(), 2u);
}

TEST(Scc, LineGraphOfCycle) {
  // Directed triangle: the line graph is itself a 3-cycle -> 1 component.
  SocialGraph g;
  for (int i = 0; i < 3; ++i) g.AddNode();
  (void)g.AddEdge(0, 1, "friend");
  (void)g.AddEdge(1, 2, "friend");
  (void)g.AddEdge(2, 0, "friend");
  CsrSnapshot csr = CsrSnapshot::Build(g);
  LineGraph lg = LineGraph::Build(csr);
  SccResult r = ComputeScc(lg);
  EXPECT_EQ(r.num_components, 1u);
  Dag dag = BuildCondensation(r, lg);
  EXPECT_EQ(dag.NumVertices(), 1u);
  EXPECT_EQ(dag.NumArcs(), 0u);
}

TEST(Scc, LineGraphOfChain) {
  // Chain of 3 edges: line graph is a 3-vertex path, all singleton.
  SocialGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode();
  (void)g.AddEdge(0, 1, "friend");
  (void)g.AddEdge(1, 2, "friend");
  (void)g.AddEdge(2, 3, "friend");
  CsrSnapshot csr = CsrSnapshot::Build(g);
  LineGraph lg = LineGraph::Build(csr);
  SccResult r = ComputeScc(lg);
  EXPECT_EQ(r.num_components, 3u);
  Dag dag = BuildCondensation(r, lg);
  EXPECT_EQ(dag.NumArcs(), 2u);
}

}  // namespace
}  // namespace sargus
