#include <gtest/gtest.h>

#include "index/line_oracle.h"
#include "synth/generators.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

/// Brute-force line-graph reachability by BFS over the implicit arcs.
std::vector<uint8_t> LineBfs(const LineGraph& lg, LineVertexId src) {
  std::vector<uint8_t> seen(lg.NumVertices(), 0);
  std::vector<LineVertexId> queue{src};
  seen[src] = 1;
  for (size_t h = 0; h < queue.size(); ++h) {
    for (LineVertexId w : lg.VerticesWithTail(lg.vertex(queue[h]).head)) {
      if (!seen[w]) {
        seen[w] = 1;
        queue.push_back(w);
      }
    }
  }
  return seen;
}

class LineOracleTest : public ::testing::TestWithParam<bool> {};

TEST_P(LineOracleTest, MatchesBruteForceBothModes) {
  const bool include_backward = GetParam();
  auto g = GenerateBarabasiAlbert(
      {.base = {.num_nodes = 40, .seed = 11}, .edges_per_node = 2});
  ASSERT_TRUE(g.ok());
  CsrSnapshot csr = CsrSnapshot::Build(*g);
  LineGraph lg = LineGraph::Build(csr, {.include_backward = include_backward});
  auto oracle = LineReachabilityOracle::Build(lg);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  for (LineVertexId u = 0; u < lg.NumVertices(); ++u) {
    const auto seen = LineBfs(lg, u);
    for (LineVertexId v = 0; v < lg.NumVertices(); ++v) {
      const bool expected = seen[v] != 0;
      EXPECT_EQ(oracle->ReachableVia(u, v, OracleMode::kTwoHop), expected)
          << "two-hop " << u << " -> " << v;
      EXPECT_EQ(oracle->ReachableVia(u, v, OracleMode::kIntervals), expected)
          << "intervals " << u << " -> " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orientations, LineOracleTest, ::testing::Bool());

TEST(LineOracle, ExposesPipelineStages) {
  SocialGraph g = testing_util::MakeDiamond();
  CsrSnapshot csr = CsrSnapshot::Build(g);
  LineGraph lg = LineGraph::Build(csr);
  auto oracle = LineReachabilityOracle::Build(lg);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(oracle->scc().component_of.size(), lg.NumVertices());
  EXPECT_GT(oracle->dag().NumVertices(), 0u);
  EXPECT_GT(oracle->two_hop()->LabelingSize(), 0u);
  EXPECT_GT(oracle->intervals()->forward.TotalIntervals(), 0u);
  EXPECT_GT(oracle->MemoryBytes(), 0u);
}

TEST(TwoHop, GreedyGuardRejectsOversizedDag) {
  auto g = GenerateErdosRenyi(
      {.base = {.num_nodes = 50, .seed = 3}, .avg_out_degree = 2.0});
  ASSERT_TRUE(g.ok());
  CsrSnapshot csr = CsrSnapshot::Build(*g);
  LineGraph lg = LineGraph::Build(csr);
  SccResult scc = ComputeScc(lg);
  Dag dag = BuildCondensation(scc, lg);
  TwoHopOptions opts;
  opts.strategy = TwoHopStrategy::kGreedyMaxCover;
  opts.max_vertices_for_greedy = 1;  // force rejection
  auto lab = TwoHopLabeling::Build(dag, opts);
  ASSERT_FALSE(lab.ok());
  EXPECT_EQ(lab.status().code(), StatusCode::kResourceExhausted);
}

TEST(TwoHop, StrategiesAgreeOnReachability) {
  auto g = GenerateWattsStrogatz({.base = {.num_nodes = 30, .seed = 13},
                                  .neighbors_per_side = 2,
                                  .rewire_probability = 0.2});
  ASSERT_TRUE(g.ok());
  CsrSnapshot csr = CsrSnapshot::Build(*g);
  LineGraph lg = LineGraph::Build(csr);
  SccResult scc = ComputeScc(lg);
  Dag dag = BuildCondensation(scc, lg);

  auto pll = TwoHopLabeling::Build(dag, {});
  TwoHopOptions greedy_opts;
  greedy_opts.strategy = TwoHopStrategy::kGreedyMaxCover;
  auto greedy = TwoHopLabeling::Build(dag, greedy_opts);
  ASSERT_TRUE(pll.ok());
  ASSERT_TRUE(greedy.ok());
  for (uint32_t u = 0; u < dag.NumVertices(); ++u) {
    for (uint32_t v = 0; v < dag.NumVertices(); ++v) {
      EXPECT_EQ(pll->Reachable(u, v), greedy->Reachable(u, v))
          << u << " -> " << v;
    }
  }
}

}  // namespace
}  // namespace sargus
