#ifndef SARGUS_TESTS_TEST_UTIL_H_
#define SARGUS_TESTS_TEST_UTIL_H_

/// \file test_util.h
/// \brief Shared fixtures: hand-built graphs, a full index stack bundle,
/// and an independent brute-force reference evaluator used to anchor the
/// cross-evaluator agreement suite.

#include <memory>
#include <string>
#include <vector>

#include "core/path_expression.h"
#include "core/path_parser.h"
#include "graph/csr.h"
#include "graph/line_graph.h"
#include "index/base_tables.h"
#include "index/cluster_index.h"
#include "index/line_oracle.h"
#include "index/transitive_closure.h"
#include "graph/social_graph.h"

namespace sargus {
namespace testing_util {

/// Everything the evaluators need, built over one graph.
struct Stack {
  SocialGraph g;
  CsrSnapshot csr;
  LineGraph lg;
  std::unique_ptr<LineReachabilityOracle> oracle;
  std::unique_ptr<ClusterJoinIndex> cluster;
  BaseTables tables;
  std::unique_ptr<TransitiveClosure> closure_directed;
  std::unique_ptr<TransitiveClosure> closure_undirected;
};

inline std::unique_ptr<Stack> BuildStack(SocialGraph g,
                                         bool include_backward) {
  auto s = std::make_unique<Stack>();
  s->g = std::move(g);
  s->csr = CsrSnapshot::Build(s->g);
  s->lg = LineGraph::Build(s->csr, {.include_backward = include_backward});
  auto oracle = LineReachabilityOracle::Build(s->lg);
  if (!oracle.ok()) return nullptr;
  s->oracle = std::make_unique<LineReachabilityOracle>(std::move(*oracle));
  auto cluster = ClusterJoinIndex::Build(s->lg, *s->oracle);
  if (!cluster.ok()) return nullptr;
  s->cluster = std::make_unique<ClusterJoinIndex>(std::move(*cluster));
  s->tables = BaseTables::Build(s->lg);
  s->closure_directed = std::make_unique<TransitiveClosure>(
      TransitiveClosure::Build(s->csr, /*as_undirected=*/false));
  s->closure_undirected = std::make_unique<TransitiveClosure>(
      TransitiveClosure::Build(s->csr, /*as_undirected=*/true));
  return s;
}

/// The paper's running example shape: a small labeled graph with
/// attributes, cycles, parallel labels and both orientations exercised.
///
///   0 -f-> 1 -f-> 2 -c-> 3
///   0 -f-> 4 -c-> 3      (short colleague detour)
///   2 -f-> 0             (cycle)
///   5 -f-> 3             (edge INTO 3; reachable from 3 only backward)
///   1 -c-> 5
///   ages: node v has age 10 + 10*v  (node 0 -> 10, node 1 -> 20, ...)
inline SocialGraph MakeDiamond() {
  SocialGraph g;
  for (int i = 0; i < 6; ++i) g.AddNode();
  for (NodeId v = 0; v < 6; ++v) {
    (void)g.SetAttribute(v, "age", 10 + 10 * static_cast<int64_t>(v));
  }
  (void)g.AddEdge(0, 1, "friend");
  (void)g.AddEdge(1, 2, "friend");
  (void)g.AddEdge(2, 3, "colleague");
  (void)g.AddEdge(0, 4, "friend");
  (void)g.AddEdge(4, 3, "colleague");
  (void)g.AddEdge(2, 0, "friend");
  (void)g.AddEdge(5, 3, "friend");
  (void)g.AddEdge(1, 5, "colleague");
  return g;
}

inline BoundPathExpression MustBind(const SocialGraph& g,
                                    const std::string& text) {
  auto parsed = ParsePathExpression(text);
  auto bound = BoundPathExpression::Bind(*parsed, g);
  return std::move(bound).ValueOrDie();
}

/// Independent ground truth: exhaustive DFS over (node, step, hops)
/// configurations, structured completely differently from the automaton
/// walkers. Caps recursion to keep tests bounded.
inline bool BruteForceMatch(const SocialGraph& g, const CsrSnapshot& csr,
                            const BoundPathExpression& expr, NodeId src,
                            NodeId dst) {
  const auto& steps = expr.steps();
  struct Frame {
    NodeId node;
    size_t step;
    uint32_t hops;  // hops consumed in current step
  };
  // DFS with explicit visited set over configurations.
  std::vector<Frame> stack{{src, 0, 0}};
  std::vector<uint8_t> seen;
  const size_t total_states = [&] {
    size_t t = 0;
    for (const auto& s : steps) t += s.max_hops + 1;
    return t;
  }();
  seen.assign(g.NumNodes() * total_states, 0);
  auto state_index = [&](size_t step, uint32_t hops) {
    size_t base = 0;
    for (size_t i = 0; i < step; ++i) base += steps[i].max_hops + 1;
    return base + hops;
  };
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const size_t id =
        static_cast<size_t>(f.node) * total_states + state_index(f.step,
                                                                 f.hops);
    if (seen[id]) continue;
    seen[id] = 1;
    // Completion: all steps done with minimums met.
    if (f.step == steps.size() - 1 && f.hops >= steps[f.step].min_hops) {
      if (f.node == dst) return true;
    }
    // Epsilon: advance to the next step once the minimum is met.
    if (f.step + 1 < steps.size() && f.hops >= steps[f.step].min_hops) {
      stack.push_back({f.node, f.step + 1, 0});
    }
    // Consume one more edge of the current step.
    if (f.hops < steps[f.step].max_hops) {
      const BoundStep& st = steps[f.step];
      const auto entries = st.backward ? csr.InWithLabel(f.node, st.label)
                                       : csr.OutWithLabel(f.node, st.label);
      for (const auto& e : entries) {
        if (!BoundPathExpression::NodePasses(g, e.other, st)) continue;
        stack.push_back({e.other, f.step, f.hops + 1});
      }
    }
  }
  return false;
}

}  // namespace testing_util
}  // namespace sargus

#endif  // SARGUS_TESTS_TEST_UTIL_H_
