#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "engine/access_engine.h"
#include "engine/write_queue.h"
#include "storage/snapshot_format.h"
#include "storage/wal.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

using storage::WalRecord;
using testing_util::MakeDiamond;

// ---- Scoped temp directory --------------------------------------------------

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/sargus_write_queue_test_XXXXXX";
    path_ = mkdtemp(tmpl);
    EXPECT_FALSE(path_.empty());
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path_ + "'";
    (void)system(cmd.c_str());
  }
  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

PolicyStore MakeStore() {
  PolicyStore store;
  const ResourceId photo = store.RegisterResource(0, "photo");
  EXPECT_TRUE(store.AddRuleFromPaths(photo, {"friend[1,3]"}).ok());
  const ResourceId doc = store.RegisterResource(2, "doc");
  EXPECT_TRUE(store.AddRuleFromPaths(doc, {"colleague[1,2]"}).ok());
  return store;
}

// Applies one WAL record through the mirror engine's public surface —
// exactly what a serial caller would have done at that point in the
// commit order.
void ReplayRecord(AccessControlEngine& mirror, const WalRecord& rec) {
  switch (rec.kind) {
    case WalRecord::Kind::kAddEdge:
      ASSERT_TRUE(mirror.AddEdge(rec.src, rec.dst, rec.label).ok());
      return;
    case WalRecord::Kind::kRemoveEdge:
      ASSERT_TRUE(mirror.RemoveEdge(rec.src, rec.dst, rec.label).ok());
      return;
    case WalRecord::Kind::kAddNode:
      ASSERT_TRUE(mirror.AddNode().ok());
      return;
    case WalRecord::Kind::kPolicyRefresh:
      ASSERT_TRUE(mirror.RefreshPolicies().ok());
      return;
  }
  FAIL() << "unknown record kind";
}

void ExpectDecisionsAgree(const AccessControlEngine& a,
                          const AccessControlEngine& b, size_t num_nodes,
                          size_t num_resources) {
  for (NodeId v = 0; v < num_nodes; ++v) {
    for (ResourceId res = 0; res < num_resources; ++res) {
      auto da = a.CheckAccess({.requester = v, .resource = res});
      auto db = b.CheckAccess({.requester = v, .resource = res});
      ASSERT_EQ(da.ok(), db.ok()) << "v=" << v << " res=" << res;
      if (!da.ok()) continue;
      EXPECT_EQ(da->granted, db->granted) << "v=" << v << " res=" << res;
      EXPECT_EQ(da->matched_rule, db->matched_rule)
          << "v=" << v << " res=" << res;
    }
  }
}

// ---- Ticket stamps vs the WAL oracle ----------------------------------------

// Every successful ticket's (generation, overlay_version) stamp must be
// byte-identical to the stamp its WAL record carries, and a mirror
// engine replaying the log serially must walk through exactly the same
// version sequence. Includes an idempotent duplicate AddEdge, whose
// record deliberately repeats the previous version (no staging bump).
TEST(WriteQueueTicket, StampsMatchWalMirrorOracle) {
  TempDir dir;
  SocialGraph g = MakeDiamond();
  PolicyStore store = MakeStore();
  AccessControlEngine engine(g, store);
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  DurabilityOptions durability;
  durability.wal_sync = storage::WalSyncPolicy::kGroupCommit;
  ASSERT_TRUE(engine.EnableDurability(dir.path(), durability).ok());

  // Pile everything into one deterministic batch.
  engine.write_queue().PauseForTesting(true);
  std::vector<WriteTicket> tickets;
  tickets.push_back(engine.SubmitAddEdge(3, 5, "friend"));
  tickets.push_back(engine.SubmitAddEdge(0, 1, "friend"));  // idempotent dup
  tickets.push_back(engine.SubmitRemoveEdge(2, 0, "friend"));
  tickets.push_back(engine.SubmitAddNode());
  tickets.push_back(engine.SubmitAddEdge(5, 2, "colleague"));
  engine.write_queue().PauseForTesting(false);

  std::vector<WriteOutcome> outcomes;
  for (const auto& t : tickets) outcomes.push_back(t.Wait());
  for (const auto& out : outcomes) ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(outcomes[3].node, 6u);  // diamond has nodes 0..5

  auto wal = storage::ReadWal(dir.File(storage::kWalFileName));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_EQ(wal->records.size(), tickets.size());

  // Ticket stamp == record stamp, op for op (submission order is commit
  // order within one producer).
  for (size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].generation, wal->records[i].generation) << i;
    EXPECT_EQ(outcomes[i].overlay_version, wal->records[i].overlay_version)
        << i;
  }
  // The idempotent duplicate bumped nothing: it repeats op 0's version.
  EXPECT_EQ(outcomes[1].overlay_version, outcomes[0].overlay_version);
  EXPECT_GT(outcomes[2].overlay_version, outcomes[1].overlay_version);

  // Serial mirror replay reproduces the exact version walk.
  SocialGraph mirror_graph = MakeDiamond();
  AccessControlEngine mirror(mirror_graph, store);
  ASSERT_TRUE(mirror.RebuildIndexes().ok());
  for (const auto& rec : wal->records) {
    ReplayRecord(mirror, rec);
    if (HasFailure()) return;
    EXPECT_EQ(mirror.snapshot_generation(), rec.generation);
    EXPECT_EQ(mirror.overlay_version(), rec.overlay_version);
  }
  ExpectDecisionsAgree(engine, mirror, /*num_nodes=*/6, store.NumResources());
}

// ---- Per-ticket error isolation ---------------------------------------------

// One batch, four ops, two of them bad: the bad ops fail only their own
// tickets; the good ops commit and are visible.
TEST(WriteQueueErrors, IsolatedWithinOneBatch) {
  SocialGraph g = MakeDiamond();
  PolicyStore store = MakeStore();
  AccessControlEngine engine(g, store);
  ASSERT_TRUE(engine.RebuildIndexes().ok());

  engine.write_queue().PauseForTesting(true);
  WriteTicket good1 = engine.SubmitAddEdge(3, 5, "friend");
  WriteTicket bad_missing = engine.SubmitRemoveEdge(0, 3, "friend");
  WriteTicket bad_range = engine.SubmitAddEdge(99, 0, "friend");
  WriteTicket good2 = engine.SubmitAddEdge(5, 0, "colleague");
  engine.write_queue().PauseForTesting(false);
  engine.FlushWrites();

  EXPECT_TRUE(good1.Wait().status.ok());
  EXPECT_EQ(bad_missing.Wait().status.code(), StatusCode::kNotFound);
  EXPECT_EQ(bad_range.Wait().status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(good2.Wait().status.ok());

  // All four drained as ONE group-commit batch.
  const WriteQueueStats stats = engine.write_queue().stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.max_batch_seen, 4u);
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.applied, 4u);
  EXPECT_EQ(stats.rejected, 0u);

  // The good edges really landed: removing them succeeds.
  EXPECT_TRUE(engine.RemoveEdge(3, 5, "friend").ok());
  EXPECT_TRUE(engine.RemoveEdge(5, 0, "colleague").ok());
}

// A failed op and a successful op in the same batch get different
// stamps only if staging moved between them; the failed op's stamp
// names the state that rejected it.
TEST(WriteQueueErrors, FailedOpStampNamesRejectingState) {
  SocialGraph g = MakeDiamond();
  PolicyStore store = MakeStore();
  AccessControlEngine engine(g, store);
  ASSERT_TRUE(engine.RebuildIndexes().ok());

  engine.write_queue().PauseForTesting(true);
  WriteTicket good = engine.SubmitAddEdge(3, 5, "friend");
  WriteTicket bad = engine.SubmitRemoveEdge(0, 3, "friend");
  engine.write_queue().PauseForTesting(false);

  const WriteOutcome good_out = good.Wait();
  const WriteOutcome bad_out = bad.Wait();
  ASSERT_TRUE(good_out.status.ok());
  ASSERT_FALSE(bad_out.status.ok());
  // The bad op staged nothing, so it reports the state the good op left.
  EXPECT_EQ(bad_out.generation, good_out.generation);
  EXPECT_EQ(bad_out.overlay_version, good_out.overlay_version);
}

// ---- Backpressure -----------------------------------------------------------

// With the writer paused and the queue at capacity, Submit blocks until
// the writer drains room — it never drops, never errors.
TEST(WriteQueueBackpressure, SubmitBlocksOnFullQueue) {
  SocialGraph g = MakeDiamond();
  PolicyStore store = MakeStore();
  EngineOptions options;
  options.write_queue_capacity = 2;
  AccessControlEngine engine(g, store, options);
  ASSERT_TRUE(engine.RebuildIndexes().ok());

  engine.write_queue().PauseForTesting(true);
  WriteTicket t1 = engine.SubmitAddEdge(3, 5, "friend");
  WriteTicket t2 = engine.SubmitAddEdge(5, 0, "colleague");

  std::atomic<bool> third_submitted{false};
  WriteTicket t3;
  std::thread producer([&] {
    t3 = engine.SubmitAddEdge(1, 4, "friend");
    third_submitted.store(true, std::memory_order_release);
  });

  // The queue is full; the producer must be parked in Submit.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(third_submitted.load(std::memory_order_acquire));

  engine.write_queue().PauseForTesting(false);
  producer.join();
  EXPECT_TRUE(third_submitted.load(std::memory_order_acquire));
  EXPECT_TRUE(t1.Wait().status.ok());
  EXPECT_TRUE(t2.Wait().status.ok());
  EXPECT_TRUE(t3.Wait().status.ok());
}

// ---- Shutdown ---------------------------------------------------------------

// Tickets are never abandoned: ops still queued at shutdown complete
// with an explicit kUnavailable (unapplied), and submits after shutdown
// return tickets born kUnavailable.
TEST(WriteQueueShutdown, DrainsQueuedTicketsAsUnavailable) {
  SocialGraph g = MakeDiamond();
  PolicyStore store = MakeStore();
  AccessControlEngine engine(g, store);
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  const uint64_t version_before = engine.overlay_version();

  engine.write_queue().PauseForTesting(true);
  std::vector<WriteTicket> stranded;
  stranded.push_back(engine.SubmitAddEdge(3, 5, "friend"));
  stranded.push_back(engine.SubmitRemoveEdge(2, 0, "friend"));
  stranded.push_back(engine.SubmitAddNode());
  engine.write_queue().Shutdown();

  for (const auto& t : stranded) {
    ASSERT_TRUE(t.done());  // resolved, not abandoned
    EXPECT_EQ(t.Wait().status.code(), StatusCode::kUnavailable);
  }
  // None of them were applied.
  EXPECT_EQ(engine.overlay_version(), version_before);
  EXPECT_EQ(engine.write_queue().stats().rejected, 3u);

  // Post-shutdown submissions resolve immediately with kUnavailable,
  // through both the async surface and the legacy shims.
  WriteTicket late = engine.SubmitAddEdge(3, 5, "friend");
  ASSERT_TRUE(late.done());
  EXPECT_EQ(late.Wait().status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.AddEdge(3, 5, "friend").code(), StatusCode::kUnavailable);
}

TEST(WriteQueueShutdown, WaitOnInvalidTicketFailsCleanly) {
  WriteTicket ticket;
  EXPECT_FALSE(ticket.valid());
  EXPECT_FALSE(ticket.done());
  EXPECT_EQ(ticket.Wait().status.code(), StatusCode::kFailedPrecondition);
}

// ---- Group commit: one fsync per batch --------------------------------------

TEST(WriteQueueGroupCommit, OneFsyncPerBatch) {
  TempDir dir;
  SocialGraph g = MakeDiamond();
  PolicyStore store = MakeStore();
  AccessControlEngine engine(g, store);
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  DurabilityOptions durability;
  durability.wal_sync = storage::WalSyncPolicy::kGroupCommit;
  ASSERT_TRUE(engine.EnableDurability(dir.path(), durability).ok());

  // One batch of 10: 10 records, ONE fsync.
  engine.write_queue().PauseForTesting(true);
  std::vector<WriteTicket> tickets;
  for (int i = 0; i < 10; ++i) {
    tickets.push_back(engine.SubmitAddEdge(static_cast<NodeId>(i % 6),
                                           static_cast<NodeId>((i + 3) % 6),
                                           "follows" + std::to_string(i)));
  }
  const uint64_t appends_before = engine.wal_append_count();
  const uint64_t syncs_before = engine.wal_sync_count();
  engine.write_queue().PauseForTesting(false);
  engine.FlushWrites();
  for (const auto& t : tickets) EXPECT_TRUE(t.Wait().status.ok());
  EXPECT_EQ(engine.wal_append_count() - appends_before, 10u);
  EXPECT_EQ(engine.wal_sync_count() - syncs_before, 1u);

  // Sequential Wait-each submissions form 10 singleton batches: still
  // one fsync per batch, i.e. 10.
  const uint64_t appends_mid = engine.wal_append_count();
  const uint64_t syncs_mid = engine.wal_sync_count();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine
                    .SubmitRemoveEdge(static_cast<NodeId>(i % 6),
                                      static_cast<NodeId>((i + 3) % 6),
                                      "follows" + std::to_string(i))
                    .Wait()
                    .status.ok());
  }
  EXPECT_EQ(engine.wal_append_count() - appends_mid, 10u);
  EXPECT_EQ(engine.wal_sync_count() - syncs_mid, 10u);
}

// ---- Randomized multi-producer interleaving vs a serial mirror --------------

// The acceptance oracle: M producers hammer the queue concurrently with
// a randomized op mix; afterwards the WAL (whose record order IS the
// commit order) is replayed serially into a mirror engine. The mirror
// must walk the identical (generation, overlay_version) sequence, the
// successful tickets must match the records one-to-one, and the two
// engines must agree on every access decision.
TEST(WriteQueueInterleave, RandomizedProducersAgreeWithSerialMirror) {
  TempDir dir;
  SocialGraph g = MakeDiamond();
  PolicyStore store = MakeStore();
  AccessControlEngine engine(g, store);
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  DurabilityOptions durability;
  durability.wal_sync = storage::WalSyncPolicy::kGroupCommit;
  ASSERT_TRUE(engine.EnableDurability(dir.path(), durability).ok());

  constexpr int kProducers = 4;
  constexpr int kOpsPerProducer = 150;  // 600 total: below the
                                        // auto-compaction threshold, so
                                        // generation stays fixed
  const std::vector<std::string> labels = {"friend", "colleague", "follows"};

  std::vector<std::vector<WriteTicket>> tickets(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(0xACE5 + static_cast<uint64_t>(p));
      for (int i = 0; i < kOpsPerProducer; ++i) {
        const auto src = static_cast<NodeId>(rng.NextBounded(6));
        const auto dst = static_cast<NodeId>(rng.NextBounded(6));
        const auto& label = labels[rng.NextBounded(labels.size())];
        const uint64_t roll = rng.NextBounded(10);
        if (roll < 6) {
          tickets[p].push_back(engine.SubmitAddEdge(src, dst, label));
        } else if (roll < 9) {
          tickets[p].push_back(engine.SubmitRemoveEdge(src, dst, label));
        } else {
          tickets[p].push_back(engine.SubmitAddNode());
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  engine.FlushWrites();

  auto wal = storage::ReadWal(dir.File(storage::kWalFileName));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  // Successful tickets <-> WAL records, as multisets of
  // (kind, src, dst, generation, version). Failed ops log nothing.
  using Key = std::tuple<uint8_t, NodeId, NodeId, uint64_t, uint64_t>;
  std::vector<Key> from_tickets;
  for (const auto& per_thread : tickets) {
    for (const auto& t : per_thread) {
      const WriteOutcome out = t.Wait();
      if (!out.status.ok()) {
        EXPECT_EQ(out.status.code(), StatusCode::kNotFound)
            << out.status.ToString();
        continue;
      }
      // Ticket handles don't retain the op, so kind/endpoints come from
      // the matching record; collapse to the stamp here and let the
      // mirror walk below pin the op payloads.
      from_tickets.emplace_back(0, 0, 0, out.generation, out.overlay_version);
    }
  }
  std::vector<Key> from_records;
  for (const auto& rec : wal->records) {
    from_records.emplace_back(0, 0, 0, rec.generation, rec.overlay_version);
  }
  std::sort(from_tickets.begin(), from_tickets.end());
  std::sort(from_records.begin(), from_records.end());
  EXPECT_EQ(from_tickets, from_records)
      << "ticket stamps and WAL record stamps diverge";

  // Serial mirror replay: identical stamp walk, record by record.
  SocialGraph mirror_graph = MakeDiamond();
  AccessControlEngine mirror(mirror_graph, store);
  ASSERT_TRUE(mirror.RebuildIndexes().ok());
  size_t added_nodes = 0;
  for (const auto& rec : wal->records) {
    if (rec.kind == WalRecord::Kind::kAddNode) ++added_nodes;
    ReplayRecord(mirror, rec);
    if (HasFailure()) return;
    ASSERT_EQ(mirror.snapshot_generation(), rec.generation);
    ASSERT_EQ(mirror.overlay_version(), rec.overlay_version);
  }
  ExpectDecisionsAgree(engine, mirror, 6 + added_nodes, store.NumResources());
}

// ---- Concurrency stress (TSan target) ---------------------------------------

// Producers, readers, and stats pollers all running at once against one
// engine; under TSan this pins the queue's synchronization. Every
// submitted op must be accounted for (applied or rejected, never lost).
TEST(WriteQueueStress, ConcurrentProducersAndReaders) {
  SocialGraph g = MakeDiamond();
  PolicyStore store = MakeStore();
  AccessControlEngine engine(g, store);
  ASSERT_TRUE(engine.RebuildIndexes().ok());

  constexpr int kProducers = 4;
  constexpr int kReaders = 2;
  constexpr int kOpsPerProducer = 200;

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(0xBEEF + static_cast<uint64_t>(p));
      for (int i = 0; i < kOpsPerProducer; ++i) {
        const auto src = static_cast<NodeId>(rng.NextBounded(6));
        const auto dst = static_cast<NodeId>(rng.NextBounded(6));
        if (rng.NextBool(0.5)) {
          // Half synchronous shims, half fire-and-forget tickets: both
          // submission styles race here on purpose.
          (void)engine.AddEdge(src, dst, "friend");
        } else {
          (void)engine.SubmitRemoveEdge(src, dst, "friend");
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(0xFACE + static_cast<uint64_t>(r));
      while (!stop.load(std::memory_order_acquire)) {
        const auto v = static_cast<NodeId>(rng.NextBounded(6));
        (void)engine.CheckAccess({.requester = v, .resource = 0});
        (void)engine.write_queue().stats();
        auto view = engine.AcquireReadView();
        ASSERT_NE(view, nullptr);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  engine.FlushWrites();
  stop.store(true, std::memory_order_release);
  for (int r = 0; r < kReaders; ++r) threads[kProducers + r].join();

  const WriteQueueStats stats = engine.write_queue().stats();
  EXPECT_EQ(stats.submitted,
            static_cast<uint64_t>(kProducers) * kOpsPerProducer);
  EXPECT_EQ(stats.applied + stats.rejected, stats.submitted);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GE(stats.max_batch_seen, 1u);
}

// ---- Legacy facade semantics ------------------------------------------------

// The synchronous calls are Submit+Wait shims now; their status surface
// must not have moved.
TEST(WriteQueueFacade, SyncShimsPreserveLegacyStatuses) {
  SocialGraph g = MakeDiamond();
  PolicyStore store = MakeStore();

  {
    // Before RebuildIndexes every mutation is kFailedPrecondition.
    SocialGraph g2 = MakeDiamond();
    AccessControlEngine unbuilt(g2, store);
    EXPECT_EQ(unbuilt.AddEdge(0, 1, "friend").code(),
              StatusCode::kFailedPrecondition);
  }
  {
    // Const-graph engines refuse mutations but still refresh policies.
    const SocialGraph& const_graph = g;
    AccessControlEngine frozen(const_graph, store);
    ASSERT_TRUE(frozen.RebuildIndexes().ok());
    EXPECT_EQ(frozen.AddEdge(0, 1, "friend").code(),
              StatusCode::kFailedPrecondition);
    EXPECT_TRUE(frozen.RefreshPolicies().ok());
  }

  AccessControlEngine engine(g, store);
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  EXPECT_TRUE(engine.AddEdge(0, 1, "friend").ok());  // idempotent dup
  EXPECT_EQ(engine.AddEdge(99, 0, "friend").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.RemoveEdge(0, 3, "friend").code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.RemoveEdge(0, 1, "nope").code(), StatusCode::kNotFound);
  auto node = engine.AddNode();
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*node, 6u);
  EXPECT_TRUE(engine.AddEdge(*node, 0, "friend").ok());
  EXPECT_TRUE(engine.RefreshPolicies().ok());
}

}  // namespace
}  // namespace sargus
