#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "common/rng.h"
#include "engine/access_engine.h"
#include "shard/executor_transport.h"
#include "shard/partitioner.h"
#include "shard/router.h"
#include "shard/wire.h"
#include "synth/generators.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

using testing_util::MakeDiamond;

// ---- Partitioner ----------------------------------------------------------

TEST(Partitioner, ContiguousRangesCoverEveryNode) {
  ErdosRenyiSpec spec;
  spec.base.num_nodes = 10;
  auto g = GenerateErdosRenyi(spec);
  ASSERT_TRUE(g.ok());
  PartitionOptions opts;
  opts.num_shards = 3;
  opts.strategy = PartitionStrategy::kContiguous;
  auto part = GraphPartitioner::Partition(*g, opts);
  ASSERT_TRUE(part.ok());
  ASSERT_EQ(part->shard_of.size(), 10u);
  // Contiguous: shard ids are non-decreasing in node order.
  for (size_t v = 1; v < part->shard_of.size(); ++v) {
    EXPECT_LE(part->shard_of[v - 1], part->shard_of[v]);
  }
  size_t covered = 0;
  for (const auto& members : part->members) covered += members.size();
  EXPECT_EQ(covered, 10u);
  // Every reported cut edge genuinely crosses shards.
  for (const Edge& e : part->cut_edges) {
    EXPECT_NE(part->shard_of[e.src], part->shard_of[e.dst]);
  }
}

TEST(Partitioner, CommunityIsDeterministic) {
  BarabasiAlbertSpec spec;
  spec.base.num_nodes = 64;
  auto g = GenerateBarabasiAlbert(spec);
  ASSERT_TRUE(g.ok());
  PartitionOptions opts;
  opts.num_shards = 4;
  opts.strategy = PartitionStrategy::kCommunity;
  auto a = GraphPartitioner::Partition(*g, opts);
  auto b = GraphPartitioner::Partition(*g, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->shard_of, b->shard_of);
  size_t covered = 0;
  for (const auto& members : a->members) covered += members.size();
  EXPECT_EQ(covered, 64u);
  for (const Edge& e : a->cut_edges) {
    EXPECT_NE(a->shard_of[e.src], a->shard_of[e.dst]);
  }
}

TEST(Partitioner, ZeroShardsRejected) {
  SocialGraph g = MakeDiamond();
  PartitionOptions opts;
  opts.num_shards = 0;
  EXPECT_EQ(GraphPartitioner::Partition(g, opts).status().code(),
            StatusCode::kInvalidArgument);
}

// ---- Wire round trips -----------------------------------------------------

TEST(Wire, CheckRoundTrip) {
  wire::CheckRequest req;
  req.requester = 7;
  req.resource = 3;
  req.want_witness = 1;
  req.has_evaluator_override = 1;
  req.evaluator_override = 2;
  auto decoded = wire::DecodeCheckRequest(wire::Encode(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, req);

  wire::CheckReply rep;
  rep.granted = 1;
  rep.has_matched_rule = 1;
  rep.matched_rule = 5;
  rep.pairs_visited = 123456;
  rep.stamp = {9, 42};
  rep.witness = {1, 2, 3};
  auto decoded_rep = wire::DecodeCheckReply(wire::Encode(rep));
  ASSERT_TRUE(decoded_rep.ok());
  EXPECT_EQ(*decoded_rep, rep);

  wire::CheckReply err;
  err.status_code = wire::PackStatus(Status::NotFound("nope"));
  err.error = "nope";
  auto decoded_err = wire::DecodeCheckReply(wire::Encode(err));
  ASSERT_TRUE(decoded_err.ok());
  EXPECT_EQ(*decoded_err, err);
}

TEST(Wire, BatchRoundTrip) {
  wire::BatchCheckRequest req;
  req.requests.push_back({.requester = 1, .resource = 0});
  req.requests.push_back({.requester = 2, .resource = 9, .want_witness = 1});
  auto decoded = wire::DecodeBatchCheckRequest(wire::Encode(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, req);

  wire::BatchCheckReply rep;  // empty vector round-trips too
  auto decoded_rep = wire::DecodeBatchCheckReply(wire::Encode(rep));
  ASSERT_TRUE(decoded_rep.ok());
  EXPECT_EQ(*decoded_rep, rep);
}

TEST(Wire, WalkRoundTrip) {
  wire::WalkRequest req;
  req.rule = 4;
  req.path = 1;
  req.requester = 11;
  req.seed = wire::WalkSeed::kFrontier;
  req.owner = 6;
  req.frontier = {{10, 2, 3}, {20, 0, 5}};
  auto decoded = wire::DecodeWalkRequest(wire::Encode(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, req);

  wire::WalkReply rep;
  rep.accepted = 1;
  rep.exports = {{3, 1, 2}};
  rep.pairs_visited = 77;
  rep.stamp = {1, 2};
  auto decoded_rep = wire::DecodeWalkReply(wire::Encode(rep));
  ASSERT_TRUE(decoded_rep.ok());
  EXPECT_EQ(*decoded_rep, rep);
}

TEST(Wire, MutateRoundTrip) {
  wire::MutateRequest req;
  req.op = wire::MutateOp::kRemoveEdge;
  req.src = 5;
  req.dst = 6;
  req.label = kInvalidLabel;
  req.label_name = "friend";
  auto decoded = wire::DecodeMutateRequest(wire::Encode(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, req);

  wire::MutateReply rep;
  rep.new_node = 99;
  rep.stamp = {3, 4};
  auto decoded_rep = wire::DecodeMutateReply(wire::Encode(rep));
  ASSERT_TRUE(decoded_rep.ok());
  EXPECT_EQ(*decoded_rep, rep);
}

TEST(Wire, RejectsCorruptFrames) {
  std::vector<uint8_t> bytes = wire::Encode(wire::CheckRequest{});
  // Bad magic.
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(wire::DecodeCheckRequest(bad_magic).status().code(),
            StatusCode::kInvalidArgument);
  // Unknown version.
  auto bad_version = bytes;
  bad_version[4] = 0xEE;
  EXPECT_EQ(wire::DecodeCheckRequest(bad_version).status().code(),
            StatusCode::kInvalidArgument);
  // Wrong message type for the decoder.
  EXPECT_FALSE(wire::DecodeWalkRequest(bytes).ok());
  // Truncation at every prefix length must error, never crash.
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        wire::DecodeCheckRequest(std::span(bytes.data(), len)).ok());
  }
  // Trailing garbage.
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(wire::DecodeCheckRequest(padded).ok());
}

TEST(Wire, ErrorFrameRoundTrip) {
  wire::ErrorFrame f;
  f.status_code = wire::PackStatus(Status::Unavailable("shard 2 unreachable"));
  f.message = "shard 2 unreachable";
  auto decoded = wire::DecodeErrorFrame(wire::Encode(f));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, f);
  const Status s = wire::StatusFromErrorFrame(*decoded);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.message(), "shard 2 unreachable");

  // An OK error frame is meaningless; the decoder refuses to produce one.
  wire::ErrorFrame ok_frame;
  ok_frame.status_code = 0;
  ok_frame.message = "fine";
  EXPECT_EQ(wire::DecodeErrorFrame(wire::Encode(ok_frame)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Wire, ChecksumCatchesEverySingleBitFlip) {
  // The v2 trailing checksum covers the entire frame: any single-bit
  // flip — header, type byte, payload, or the checksum itself — must be
  // a clean decode error, never a silently misread message.
  wire::WalkReply rep;
  rep.exports = {{3, 1, 2}, {9, 0, 4}};
  rep.pairs_visited = 501;
  rep.stamp = {7, 13};
  const std::vector<uint8_t> bytes = wire::Encode(rep);
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = bytes;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(wire::DecodeWalkReply(flipped).ok())
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(Wire, ParseMessageDispatchesEveryType) {
  auto parse = [](const std::vector<uint8_t>& bytes) {
    auto m = wire::ParseMessage(bytes);
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    return std::move(*m);
  };
  EXPECT_TRUE(std::holds_alternative<wire::CheckRequest>(
      parse(wire::Encode(wire::CheckRequest{.requester = 1}))));
  EXPECT_TRUE(std::holds_alternative<wire::CheckReply>(
      parse(wire::Encode(wire::CheckReply{}))));
  EXPECT_TRUE(std::holds_alternative<wire::BatchCheckRequest>(
      parse(wire::Encode(wire::BatchCheckRequest{}))));
  EXPECT_TRUE(std::holds_alternative<wire::BatchCheckReply>(
      parse(wire::Encode(wire::BatchCheckReply{}))));
  EXPECT_TRUE(std::holds_alternative<wire::WalkRequest>(
      parse(wire::Encode(wire::WalkRequest{}))));
  EXPECT_TRUE(std::holds_alternative<wire::WalkReply>(
      parse(wire::Encode(wire::WalkReply{}))));
  EXPECT_TRUE(std::holds_alternative<wire::MutateRequest>(
      parse(wire::Encode(wire::MutateRequest{}))));
  EXPECT_TRUE(std::holds_alternative<wire::MutateReply>(
      parse(wire::Encode(wire::MutateReply{}))));
  wire::ErrorFrame ef;
  ef.status_code = wire::PackStatus(Status::Internal("x"));
  EXPECT_TRUE(std::holds_alternative<wire::ErrorFrame>(
      parse(wire::Encode(ef))));
  EXPECT_FALSE(wire::ParseMessage({}).ok());
}

TEST(Wire, ParseMessageFuzz10k) {
  // One valid frame of every message type, with non-trivial payloads.
  std::vector<std::vector<uint8_t>> pool;
  pool.push_back(wire::Encode(wire::CheckRequest{
      .requester = 5, .resource = 2, .want_witness = 1}));
  wire::CheckReply crep;
  crep.granted = 1;
  crep.witness = {1, 2, 3};
  crep.stamp = {3, 4};
  pool.push_back(wire::Encode(crep));
  wire::BatchCheckRequest breq;
  breq.requests = {{.requester = 1}, {.requester = 2, .resource = 1}};
  pool.push_back(wire::Encode(breq));
  wire::BatchCheckReply brep;
  brep.replies = {crep, wire::CheckReply{}};
  pool.push_back(wire::Encode(brep));
  wire::WalkRequest wreq;
  wreq.rule = 4;
  wreq.seed = wire::WalkSeed::kFrontier;
  wreq.frontier = {{10, 2, 3}, {20, 0, 5}};
  pool.push_back(wire::Encode(wreq));
  wire::WalkReply wrep;
  wrep.exports = {{3, 1, 2}};
  wrep.pairs_visited = 77;
  pool.push_back(wire::Encode(wrep));
  wire::MutateRequest mreq;
  mreq.op = wire::MutateOp::kAddEdge;
  mreq.src = 5;
  mreq.dst = 6;
  mreq.label_name = "friend";
  pool.push_back(wire::Encode(mreq));
  wire::MutateReply mrep;
  mrep.new_node = 99;
  pool.push_back(wire::Encode(mrep));
  wire::ErrorFrame ef;
  ef.status_code = wire::PackStatus(Status::Unavailable("boom"));
  ef.message = "boom";
  pool.push_back(wire::Encode(ef));

  Rng rng(0xF0221D);
  int accepted = 0;
  for (int iter = 0; iter < 10000; ++iter) {
    std::vector<uint8_t> bytes;
    if (iter % 5 == 4) {
      // Pure random garbage of random length (possibly empty).
      bytes.resize(rng.NextBounded(64));
      for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextU64());
    } else {
      // 1-4 seeded mutations of a valid frame.
      bytes = pool[rng.NextBounded(pool.size())];
      const uint64_t mutations = 1 + rng.NextBounded(4);
      for (uint64_t m = 0; m < mutations; ++m) {
        switch (rng.NextBounded(4)) {
          case 0:  // flip one bit
            if (!bytes.empty()) {
              bytes[rng.NextBounded(bytes.size())] ^=
                  static_cast<uint8_t>(1u << rng.NextBounded(8));
            }
            break;
          case 1:  // zero one byte
            if (!bytes.empty()) bytes[rng.NextBounded(bytes.size())] = 0;
            break;
          case 2:  // truncate
            if (!bytes.empty()) bytes.resize(rng.NextBounded(bytes.size()));
            break;
          default: {  // append garbage
            const uint64_t extra = 1 + rng.NextBounded(4);
            for (uint64_t i = 0; i < extra; ++i) {
              bytes.push_back(static_cast<uint8_t>(rng.NextU64()));
            }
            break;
          }
        }
      }
    }
    auto parsed = wire::ParseMessage(bytes);
    if (parsed.ok()) {
      // Only a mutation sequence that reproduced a pool frame byte-for-
      // byte may be accepted (e.g. the same bit flipped twice); the
      // checksum makes accepting genuinely mutated bytes a 2^-64 event.
      bool is_original = false;
      for (const auto& original : pool) is_original |= (bytes == original);
      EXPECT_TRUE(is_original) << "iteration " << iter;
      ++accepted;
    } else {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
          << "iteration " << iter;
    }
  }
  // Sanity: the harness really was feeding almost-always-invalid frames.
  EXPECT_LT(accepted, 500);
}

// ---- Router: single-shard passthrough -------------------------------------

TEST(ShardRouter, SingleShardPassthroughStamps) {
  SocialGraph g = MakeDiamond();
  PolicyStore store;
  const ResourceId photo = store.RegisterResource(0, "photo");
  ASSERT_TRUE(store.AddRuleFromPaths(photo, {"friend[1,2]/colleague[1]"}).ok());

  ShardRouter router(g, store);
  ASSERT_TRUE(router.Build().ok());
  ASSERT_EQ(router.num_shards(), 1u);

  // The passthrough serves the SAME engine the shard wraps: decisions
  // carry that engine's own view stamps, byte-identical to calling it
  // directly — no router-level stamp rewriting.
  const AccessRequest req{.requester = 3, .resource = photo};
  auto direct = router.shard(0).engine().CheckAccess(req);
  auto routed = router.CheckAccess(req);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(routed.ok());
  EXPECT_TRUE(routed->granted);
  EXPECT_EQ(routed->granted, direct->granted);
  EXPECT_EQ(routed->snapshot_generation, direct->snapshot_generation);
  EXPECT_EQ(routed->overlay_version, direct->overlay_version);
  EXPECT_EQ(routed->evaluator_name, direct->evaluator_name);

  const std::vector<AccessRequest> batch{req, {.requester = 2,
                                               .resource = photo}};
  auto direct_batch = router.shard(0).engine().CheckAccessBatch(batch);
  auto routed_batch = router.CheckAccessBatch(batch);
  ASSERT_EQ(routed_batch.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(routed_batch[i].ok());
    ASSERT_TRUE(direct_batch[i].ok());
    EXPECT_EQ(routed_batch[i]->granted, direct_batch[i]->granted);
    EXPECT_EQ(routed_batch[i]->snapshot_generation,
              direct_batch[i]->snapshot_generation);
    EXPECT_EQ(routed_batch[i]->overlay_version,
              direct_batch[i]->overlay_version);
  }

  // Mutations pass straight through too.
  ASSERT_TRUE(router.AddEdge(3, 0, "friend").ok());
  auto now_granted = router.CheckAccess({.requester = 3, .resource = photo});
  ASSERT_TRUE(now_granted.ok());
  EXPECT_TRUE(now_granted->granted);
  auto added = router.AddNode();
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 6u);
  EXPECT_EQ(router.topology()->shard_of.size(), 7u);
}

// ---- Router: oracle agreement ---------------------------------------------

struct Workload {
  SocialGraph graph;
  PolicyStore store;
  std::vector<ResourceId> resources;
};

Workload MakeWorkload(SocialGraph g) {
  Workload w;
  w.graph = std::move(g);
  const size_t n = w.graph.NumNodes();
  const std::vector<std::vector<std::string>> rule_sets = {
      {"friend[1,3]"},
      {"friend[1,2]/colleague[1,2]"},
      {"colleague-[1,2]"},
      {"friend[1,2]{age>=18}"},
      {"family[1,4]"},
  };
  for (size_t i = 0; i < 10; ++i) {
    const NodeId owner = static_cast<NodeId>((i * 37 + 11) % n);
    const ResourceId r =
        w.store.RegisterResource(owner, "res" + std::to_string(i));
    EXPECT_TRUE(
        w.store.AddRuleFromPaths(r, rule_sets[i % rule_sets.size()]).ok());
    if (i % 3 == 0) {
      EXPECT_TRUE(w.store.AddRuleFromPaths(r, {"colleague[1,2]"}).ok());
    }
    w.resources.push_back(r);
  }
  return w;
}

void ExpectAgrees(const Result<AccessDecision>& got,
                  const Result<AccessDecision>& want,
                  const std::string& context) {
  ASSERT_EQ(got.ok(), want.ok())
      << context << " got=" << got.status().ToString()
      << " want=" << want.status().ToString();
  if (!got.ok()) {
    EXPECT_EQ(got.status().code(), want.status().code()) << context;
    return;
  }
  EXPECT_EQ(got->granted, want->granted) << context;
  EXPECT_EQ(got->owner_access, want->owner_access) << context;
}

void RunOracleComparison(Result<SocialGraph> generated,
                         PartitionStrategy strategy, uint32_t num_shards,
                         const std::string& tag) {
  ASSERT_TRUE(generated.ok());
  Workload w = MakeWorkload(std::move(*generated));
  SocialGraph oracle_graph = w.graph;  // copy before the router partitions

  RouterOptions opts;
  opts.partition.num_shards = num_shards;
  opts.partition.strategy = strategy;
  ShardRouter router(w.graph, w.store, opts);
  ASSERT_TRUE(router.Build().ok()) << tag;
  AccessControlEngine oracle(oracle_graph, w.store);
  ASSERT_TRUE(oracle.RebuildIndexes().ok());

  const size_t n = oracle_graph.NumNodes();
  Rng rng(0xC0FFEE ^ num_shards);
  auto compare_random = [&](int rounds, const std::string& phase) {
    for (int i = 0; i < rounds; ++i) {
      AccessRequest req;
      req.requester = static_cast<NodeId>(rng.NextBounded(n));
      req.resource = w.resources[rng.NextBounded(w.resources.size())];
      ExpectAgrees(router.CheckAccess(req), oracle.CheckAccess(req),
                   tag + "/" + phase + " requester=" +
                       std::to_string(req.requester) +
                       " resource=" + std::to_string(req.resource));
    }
  };
  compare_random(120, "initial");

  // Batch path agrees element-wise with the oracle too.
  std::vector<AccessRequest> batch;
  for (int i = 0; i < 40; ++i) {
    batch.push_back({.requester = static_cast<NodeId>(rng.NextBounded(n)),
                     .resource =
                         w.resources[rng.NextBounded(w.resources.size())]});
  }
  const auto routed = router.CheckAccessBatch(batch);
  const auto expected = oracle.CheckAccessBatch(batch);
  ASSERT_EQ(routed.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectAgrees(routed[i], expected[i], tag + "/batch slot " +
                                             std::to_string(i));
  }

  // Mid-sequence mutations, preferring edges that cross shard cuts;
  // mirror every mutation into the oracle.
  const auto topo = router.topology();
  std::vector<std::pair<NodeId, NodeId>> added;
  for (int t = 0; t < 400 && added.size() < 8; ++t) {
    const NodeId a = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId b = static_cast<NodeId>(rng.NextBounded(n));
    if (a == b) continue;
    if (num_shards > 1 && topo->shard_of[a] == topo->shard_of[b]) continue;
    ASSERT_TRUE(router.AddEdge(a, b, "friend").ok()) << tag;
    ASSERT_TRUE(oracle.AddEdge(a, b, "friend").ok());
    added.push_back({a, b});
  }
  EXPECT_FALSE(added.empty()) << tag;
  compare_random(80, "after-add");

  // Remove half of them again (cut shrinks back).
  for (size_t i = 0; i < added.size(); i += 2) {
    ASSERT_TRUE(router.RemoveEdge(added[i].first, added[i].second, "friend")
                    .ok())
        << tag;
    ASSERT_TRUE(
        oracle.RemoveEdge(added[i].first, added[i].second, "friend").ok());
  }
  compare_random(80, "after-remove");

  // Fresh summaries must not change any answer.
  ASSERT_TRUE(router.RefreshSummaries().ok()) << tag;
  compare_random(80, "after-refresh");
}

Result<SocialGraph> SmallEr(uint64_t seed) {
  ErdosRenyiSpec spec;
  spec.base.num_nodes = 60;
  spec.base.seed = seed;
  spec.avg_out_degree = 3.0;
  return GenerateErdosRenyi(spec);
}

Result<SocialGraph> SmallBa(uint64_t seed) {
  BarabasiAlbertSpec spec;
  spec.base.num_nodes = 60;
  spec.base.seed = seed;
  spec.edges_per_node = 2;
  return GenerateBarabasiAlbert(spec);
}

Result<SocialGraph> SmallWs(uint64_t seed) {
  WattsStrogatzSpec spec;
  spec.base.num_nodes = 48;
  spec.base.seed = seed;
  return GenerateWattsStrogatz(spec);
}

TEST(ShardRouterOracle, ErdosRenyiContiguous) {
  for (uint32_t shards : {1u, 2u, 4u, 7u}) {
    RunOracleComparison(SmallEr(shards), PartitionStrategy::kContiguous,
                        shards, "er/contig/" + std::to_string(shards));
  }
}

TEST(ShardRouterOracle, BarabasiAlbertContiguous) {
  for (uint32_t shards : {2u, 4u, 7u}) {
    RunOracleComparison(SmallBa(shards), PartitionStrategy::kContiguous,
                        shards, "ba/contig/" + std::to_string(shards));
  }
}

TEST(ShardRouterOracle, WattsStrogatzCommunity) {
  for (uint32_t shards : {2u, 4u, 7u}) {
    RunOracleComparison(SmallWs(shards), PartitionStrategy::kCommunity,
                        shards, "ws/community/" + std::to_string(shards));
  }
}

TEST(ShardRouterOracle, BarabasiAlbertCommunityNoSummaries) {
  // Same agreement with summaries disabled: every cross-shard path goes
  // through the frontier-exchange fallback.
  auto g = SmallBa(99);
  ASSERT_TRUE(g.ok());
  Workload w = MakeWorkload(std::move(*g));
  SocialGraph oracle_graph = w.graph;
  RouterOptions opts;
  opts.partition.num_shards = 4;
  opts.partition.strategy = PartitionStrategy::kCommunity;
  opts.build_summaries = false;
  ShardRouter router(w.graph, w.store, opts);
  ASSERT_TRUE(router.Build().ok());
  AccessControlEngine oracle(oracle_graph, w.store);
  ASSERT_TRUE(oracle.RebuildIndexes().ok());
  Rng rng(5);
  for (int i = 0; i < 150; ++i) {
    AccessRequest req;
    req.requester =
        static_cast<NodeId>(rng.NextBounded(oracle_graph.NumNodes()));
    req.resource = w.resources[rng.NextBounded(w.resources.size())];
    ExpectAgrees(router.CheckAccess(req), oracle.CheckAccess(req),
                 "nosummary slot " + std::to_string(i));
  }
  const RouterCounters c = router.counters();
  // With summaries disabled, any path evaluation that outlives phase
  // one must have gone through frontier exchange (never a stale-summary
  // detour, because there are no summaries to find stale).
  EXPECT_GT(c.fallback_walks, 0u);
  EXPECT_EQ(c.stale_summary_fallbacks, 0u);
}

// ---- Router: forced fallback + counters -----------------------------------

TEST(ShardRouter, StaleSummaryFallsBackThenRecovers) {
  // Two contiguous shards over 8 nodes: 0-3 on shard 0, 4-7 on shard 1.
  // Chain 0 -f-> 4 -f-> 5 -f-> 1 needs three hops crossing the cut twice.
  SocialGraph g;
  g.AddNodes(8);
  ASSERT_TRUE(g.AddEdge(0, 4, "friend").ok());
  ASSERT_TRUE(g.AddEdge(4, 5, "friend").ok());
  ASSERT_TRUE(g.AddEdge(5, 1, "friend").ok());
  PolicyStore store;
  const ResourceId res = store.RegisterResource(0, "res");
  ASSERT_TRUE(store.AddRuleFromPaths(res, {"friend[1,3]"}).ok());

  RouterOptions opts;
  opts.partition.num_shards = 2;
  opts.partition.strategy = PartitionStrategy::kContiguous;
  ShardRouter router(g, store, opts);
  ASSERT_TRUE(router.Build().ok());
  ASSERT_EQ(router.topology()->shard_of[0], 0u);
  ASSERT_EQ(router.topology()->shard_of[5], 1u);

  // Fresh summaries: the cross-shard grant resolves without fallback.
  auto granted = router.CheckAccess({.requester = 1, .resource = res});
  ASSERT_TRUE(granted.ok());
  EXPECT_TRUE(granted->granted);
  RouterCounters c = router.counters();
  EXPECT_EQ(c.fallback_walks, 0u);
  EXPECT_GT(c.cross_shard_checks, 0u);

  // An interior mutation on shard 1 (5 -> 6 stays inside the shard)
  // dirties its summary stamp; the next cross-shard check must fall back
  // to frontier exchange — and still answer correctly.
  ASSERT_TRUE(router.AddEdge(5, 6, "friend").ok());
  granted = router.CheckAccess({.requester = 1, .resource = res});
  ASSERT_TRUE(granted.ok());
  EXPECT_TRUE(granted->granted);
  c = router.counters();
  EXPECT_GT(c.fallback_walks, 0u);
  EXPECT_GT(c.stale_summary_fallbacks, 0u);
  const uint64_t fallbacks_before = c.fallback_walks;

  // Rebuilt summaries: fallback count stops moving.
  ASSERT_TRUE(router.RefreshSummaries().ok());
  granted = router.CheckAccess({.requester = 1, .resource = res});
  ASSERT_TRUE(granted.ok());
  EXPECT_TRUE(granted->granted);
  // Requester 6 is now reachable in two hops as well.
  auto six = router.CheckAccess({.requester = 6, .resource = res});
  ASSERT_TRUE(six.ok());
  EXPECT_TRUE(six->granted);
  // And node 3 never was.
  auto three = router.CheckAccess({.requester = 3, .resource = res});
  ASSERT_TRUE(three.ok());
  EXPECT_FALSE(three->granted);
  c = router.counters();
  EXPECT_EQ(c.fallback_walks, fallbacks_before);
  EXPECT_GT(c.summary_resolved, 0u);
}

TEST(ShardRouter, AddNodeKeepsShardsAligned) {
  auto g = SmallEr(3);
  ASSERT_TRUE(g.ok());
  Workload w = MakeWorkload(std::move(*g));
  RouterOptions opts;
  opts.partition.num_shards = 3;
  ShardRouter router(w.graph, w.store, opts);
  ASSERT_TRUE(router.Build().ok());

  const size_t before = router.topology()->shard_of.size();
  auto id = router.AddNode();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, before);
  EXPECT_EQ(router.topology()->shard_of.size(), before + 1);
  // The new node is reachable through the normal mutation + check path.
  const ResourceId res = w.resources[0];
  const NodeId owner = w.store.resource(res).owner;
  ASSERT_TRUE(router.AddEdge(owner, *id, "friend").ok());
  auto d = router.CheckAccess({.requester = *id, .resource = res});
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->granted);
}

// ---- Router: concurrent readers + one writer (TSan target) ----------------

TEST(ShardRouterConcurrency, ReadersRaceOneWriter) {
  auto g = SmallBa(17);
  ASSERT_TRUE(g.ok());
  Workload w = MakeWorkload(std::move(*g));
  RouterOptions opts;
  opts.partition.num_shards = 4;
  ShardRouter router(w.graph, w.store, opts);
  ASSERT_TRUE(router.Build().ok());

  const size_t n = router.topology()->shard_of.size();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1000 + t);
      std::vector<AccessRequest> batch;
      while (!stop.load(std::memory_order_acquire)) {
        AccessRequest req;
        req.requester = static_cast<NodeId>(rng.NextBounded(n));
        req.resource = w.resources[rng.NextBounded(w.resources.size())];
        if (rng.NextBool(0.2)) {
          batch.assign(3, req);
          for (const auto& d : router.CheckAccessBatch(batch)) {
            EXPECT_TRUE(d.ok() ||
                        d.status().code() != StatusCode::kInternal);
          }
        } else {
          auto d = router.CheckAccess(req);
          EXPECT_TRUE(d.ok() || d.status().code() != StatusCode::kInternal);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  {
    Rng rng(42);
    for (int step = 0; step < 60; ++step) {
      const NodeId a = static_cast<NodeId>(rng.NextBounded(n));
      const NodeId b = static_cast<NodeId>(rng.NextBounded(n));
      if (a == b) continue;
      if (step % 3 == 2) {
        (void)router.RemoveEdge(a, b, "friend");
      } else {
        (void)router.AddEdge(a, b, "friend");
      }
      if (step % 10 == 9) ASSERT_TRUE(router.RefreshSummaries().ok());
    }
  }
  // Let the readers observe the final state for a moment.
  while (reads.load(std::memory_order_relaxed) < 200) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(router.counters().checks, 0u);
}

// ---- Transport: in-process path, fault injection, circuit breaker ----------

// The 8-node / 2-shard chain fixture shared by the transport tests:
// nodes 0-3 on shard 0, 4-7 on shard 1, chain 0 -f-> 4 -f-> 5 -f-> 1,
// resource at node 0 guarded by friend[1,3]. Requester 1 is granted
// through two cut crossings; requester 3 never is.
struct ChainFixture {
  SocialGraph graph;
  PolicyStore store;
  ResourceId res = 0;
};

ChainFixture MakeChain() {
  ChainFixture f;
  f.graph.AddNodes(8);
  EXPECT_TRUE(f.graph.AddEdge(0, 4, "friend").ok());
  EXPECT_TRUE(f.graph.AddEdge(4, 5, "friend").ok());
  EXPECT_TRUE(f.graph.AddEdge(5, 1, "friend").ok());
  f.res = f.store.RegisterResource(0, "res");
  EXPECT_TRUE(f.store.AddRuleFromPaths(f.res, {"friend[1,3]"}).ok());
  return f;
}

TEST(ShardTransport, InProcessMatchesDirect) {
  auto g = SmallEr(21);
  ASSERT_TRUE(g.ok());
  Workload w = MakeWorkload(std::move(*g));
  RouterOptions opts;
  opts.partition.num_shards = 2;
  ShardRouter router(w.graph, w.store, opts);
  ASSERT_TRUE(router.Build().ok());

  InProcessTransport transport({&router.shard(0), &router.shard(1)});
  ASSERT_EQ(transport.num_shards(), 2u);
  const wire::CheckRequest req =
      ToWire(AccessRequest{.requester = 9, .resource = w.resources[0]});
  for (uint32_t s = 0; s < 2; ++s) {
    const wire::CheckReply direct = router.shard(s).Check(req);
    auto through = transport.Check(s, req, {});
    ASSERT_TRUE(through.ok());
    EXPECT_EQ(*through, direct);
  }
  // A deadline in the past fails cleanly before touching the shard.
  TransportCallOptions past;
  past.deadline_ms = 1;
  EXPECT_EQ(transport.Check(0, req, past).status().code(),
            StatusCode::kDeadlineExceeded);
}

TEST(ShardTransport, HandleFrameDispatch) {
  SocialGraph g = MakeDiamond();
  PolicyStore store;
  const ResourceId photo = store.RegisterResource(0, "photo");
  ASSERT_TRUE(store.AddRuleFromPaths(photo, {"friend[1,2]/colleague[1]"}).ok());
  ShardRouter router(g, store);
  ASSERT_TRUE(router.Build().ok());
  ShardEngine& shard = router.shard(0);

  // A valid request frame comes back as the encoded reply the typed
  // handler produces.
  const wire::CheckRequest req =
      ToWire(AccessRequest{.requester = 3, .resource = photo});
  auto reply = wire::DecodeCheckReply(shard.HandleFrame(wire::Encode(req)));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, shard.Check(req));
  EXPECT_EQ(reply->granted, 1);

  // Mutations through the byte path take the writer path too.
  wire::MutateRequest mreq;
  mreq.op = wire::MutateOp::kAddEdge;
  mreq.src = 3;
  mreq.dst = 0;
  mreq.label_name = "friend";
  auto mrep = wire::DecodeMutateReply(shard.HandleFrame(wire::Encode(mreq)));
  ASSERT_TRUE(mrep.ok());
  EXPECT_EQ(mrep->status_code, 0);

  // Garbage comes back as a decodable error frame, never a crash.
  const std::vector<uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF, 0x00};
  auto err = wire::DecodeErrorFrame(shard.HandleFrame(garbage));
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(wire::StatusFromErrorFrame(*err).code(),
            StatusCode::kInvalidArgument);

  // A reply frame is not a valid thing to SEND a shard.
  auto not_request =
      wire::DecodeErrorFrame(shard.HandleFrame(wire::Encode(wire::CheckReply{})));
  ASSERT_TRUE(not_request.ok());
  EXPECT_EQ(wire::StatusFromErrorFrame(*not_request).code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardTransport, FaultInjectionDeterministic) {
  auto g = SmallBa(7);
  ASSERT_TRUE(g.ok());
  Workload w = MakeWorkload(std::move(*g));
  RouterOptions opts;
  opts.partition.num_shards = 2;
  ShardRouter router(w.graph, w.store, opts);
  ASSERT_TRUE(router.Build().ok());

  struct Trace {
    std::vector<int> outcomes;
    std::vector<uint64_t> counters;
  };
  auto drive = [&](uint64_t seed) {
    FaultInjectionTransport t(
        std::make_unique<InProcessTransport>(
            std::vector<ShardEngine*>{&router.shard(0), &router.shard(1)}),
        seed);
    ShardFaultProfile p;
    p.delay_probability = 0.3;
    p.drop_probability = 0.2;
    p.error_probability = 0.1;
    p.corrupt_probability = 0.1;
    p.delay_min_ms = 5;
    p.delay_max_ms = 20;
    t.SetProfile(0, p);
    t.SetProfile(1, p);
    Trace trace;
    for (int i = 0; i < 200; ++i) {
      TransportCallOptions call;
      call.deadline_ms = t.NowMs() + 10;  // delays over 10ms blow this
      const wire::CheckRequest req = ToWire(AccessRequest{
          .requester = static_cast<NodeId>(i % 60),
          .resource = w.resources[static_cast<size_t>(i) %
                                  w.resources.size()]});
      auto r = t.Check(static_cast<uint32_t>(i % 2), req, call);
      if (!r.ok()) {
        // The transport error contract: nothing but these two codes.
        EXPECT_TRUE(r.status().code() == StatusCode::kUnavailable ||
                    r.status().code() == StatusCode::kDeadlineExceeded)
            << r.status().ToString();
      }
      trace.outcomes.push_back(r.ok() ? 0
                                      : static_cast<int>(r.status().code()));
    }
    for (uint32_t s = 0; s < 2; ++s) {
      const FaultCounters c = t.counters(s);
      trace.counters.insert(trace.counters.end(),
                            {c.calls, c.drops, c.error_replies, c.corrupts,
                             c.corrupt_survived, c.delays, c.deadline_hits});
    }
    return trace;
  };

  const Trace a = drive(42);
  const Trace b = drive(42);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.counters, b.counters);
  const Trace c = drive(43);
  EXPECT_NE(a.outcomes, c.outcomes);

  // The seeded run really exercised every fault kind somewhere.
  const auto total = [&](size_t field) {
    return a.counters[field] + a.counters[field + 7];
  };
  EXPECT_GT(total(1), 0u);  // drops
  EXPECT_GT(total(2), 0u);  // error replies
  EXPECT_GT(total(3), 0u);  // corrupts
  EXPECT_GT(total(5), 0u);  // delays
  EXPECT_GT(total(6), 0u);  // deadline hits
}

TEST(ShardTransport, CircuitBreakerStateMachine) {
  ShardHealthTracker breaker(2, /*failure_threshold=*/3, /*open_ms=*/100);
  const uint64_t now = 1000;
  EXPECT_EQ(breaker.state(0), BreakerState::kClosed);
  EXPECT_TRUE(breaker.AllowCall(0, now));

  // A success resets the consecutive-failure streak.
  breaker.RecordFailure(0, now);
  breaker.RecordFailure(0, now);
  EXPECT_EQ(breaker.state(0), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(0), 2u);
  breaker.RecordSuccess(0);
  EXPECT_EQ(breaker.consecutive_failures(0), 0u);

  // Three consecutive failures trip it open; calls fail fast.
  breaker.RecordFailure(0, now);
  breaker.RecordFailure(0, now);
  breaker.RecordFailure(0, now);
  EXPECT_EQ(breaker.state(0), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_FALSE(breaker.AllowCall(0, now + 50));
  // Shard 1 is untouched.
  EXPECT_TRUE(breaker.AllowCall(1, now));

  // Window elapsed: exactly one half-open probe gets through.
  EXPECT_TRUE(breaker.AllowCall(0, now + 101));
  EXPECT_EQ(breaker.state(0), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.AllowCall(0, now + 102));  // probe already in flight

  // The probe fails: re-open for a full window.
  breaker.RecordFailure(0, now + 103);
  EXPECT_EQ(breaker.state(0), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_FALSE(breaker.AllowCall(0, now + 150));

  // The next probe succeeds: closed again, calls flow without gating.
  EXPECT_TRUE(breaker.AllowCall(0, now + 204));
  breaker.RecordSuccess(0);
  EXPECT_EQ(breaker.state(0), BreakerState::kClosed);
  EXPECT_TRUE(breaker.AllowCall(0, now + 205));
  EXPECT_TRUE(breaker.AllowCall(0, now + 205));
}

TEST(ShardTransport, RouterRetriesTransientFaults) {
  ChainFixture f = MakeChain();
  RouterOptions opts;
  opts.partition.num_shards = 2;
  opts.partition.strategy = PartitionStrategy::kContiguous;
  opts.robustness.allow_degraded = false;  // crisp error assertions
  FaultInjectionTransport* fault = nullptr;
  opts.transport_decorator =
      [&fault](std::unique_ptr<ShardTransport> inner)
      -> std::unique_ptr<ShardTransport> {
    auto t = std::make_unique<FaultInjectionTransport>(std::move(inner), 1);
    fault = t.get();
    return t;
  };
  ShardRouter router(f.graph, f.store, opts);
  ASSERT_TRUE(router.Build().ok());
  ASSERT_NE(fault, nullptr);

  // Shard 0's first two data-plane calls drop; the retry loop absorbs
  // the storm and the decision is exact (and not marked degraded).
  fault->AddSchedule({.shard = 0, .first_call = 0, .last_call = 1,
                      .kind = FaultKind::kDrop});
  const AccessRequest req{.requester = 1, .resource = f.res};
  auto d = router.CheckAccess(req);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(d->granted);
  EXPECT_TRUE(d->degraded_reason.empty());
  RouterCounters c = router.counters();
  EXPECT_EQ(c.retries, 2u);
  EXPECT_EQ(c.unavailable_errors, 0u);
  EXPECT_EQ(fault->counters(0).drops, 2u);
  // That check used exactly two shard-0 calls after the drops: the
  // local-phase Check (attempt 3) and the phase-one walk.
  EXPECT_EQ(fault->counters(0).calls, 4u);

  // A storm longer than max_attempts exhausts the retries: an explicit
  // kUnavailable, and three consecutive failures open the breaker.
  fault->AddSchedule({.shard = 0, .first_call = 4, .last_call = 6,
                      .kind = FaultKind::kDrop});
  auto failed = router.CheckAccess(req);
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  c = router.counters();
  EXPECT_EQ(c.unavailable_errors, 1u);
  EXPECT_EQ(c.breaker_opens, 1u);
  EXPECT_EQ(router.health().state(0), BreakerState::kOpen);

  // While open, the router fails fast without touching the transport.
  const uint64_t calls_before = fault->counters(0).calls;
  auto fast = router.CheckAccess(req);
  EXPECT_EQ(fast.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(fault->counters(0).calls, calls_before);

  // The open window elapses on the VIRTUAL clock; the half-open probe
  // succeeds and service resumes.
  fault->SleepMs(200);
  auto recovered = router.CheckAccess(req);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->granted);
  EXPECT_EQ(router.health().state(0), BreakerState::kClosed);

  // A shard slower than the per-attempt deadline times out explicitly.
  ShardFaultProfile slow;
  slow.delay_probability = 1.0;
  slow.delay_min_ms = 60;  // call_deadline_ms default is 50
  slow.delay_max_ms = 60;
  fault->SetProfile(0, slow);
  auto timed_out = router.CheckAccess(req);
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);
  c = router.counters();
  EXPECT_GE(c.timeouts, 3u);
  // failed + the fail-fast check + this timeout, and nothing else.
  EXPECT_EQ(c.unavailable_errors, 3u);
}

// ---- Threaded executor transport: direct unit coverage ---------------------

TEST(ShardTransport, ThreadedExecutorMatchesSyncAndCountsQueue) {
  auto g = SmallEr(31);
  ASSERT_TRUE(g.ok());
  Workload w = MakeWorkload(std::move(*g));
  RouterOptions opts;
  opts.partition.num_shards = 2;
  ShardRouter router(w.graph, w.store, opts);
  ASSERT_TRUE(router.Build().ok());

  ThreadedTransport transport({&router.shard(0), &router.shard(1)});
  ASSERT_EQ(transport.num_shards(), 2u);

  // Sync calls through the executor return exactly what the engine
  // returns directly.
  const wire::CheckRequest req =
      ToWire(AccessRequest{.requester = 9, .resource = w.resources[0]});
  for (uint32_t s = 0; s < 2; ++s) {
    const wire::CheckReply direct = router.shard(s).Check(req);
    auto through = transport.Check(s, req, {});
    ASSERT_TRUE(through.ok()) << through.status().ToString();
    EXPECT_EQ(*through, direct);
  }

  // The async surface: scatter one ticket per shard, then gather — the
  // replies are the same ones the sync path produces.
  wire::BatchCheckRequest breq;
  for (int i = 0; i < 5; ++i) {
    breq.requests.push_back(ToWire(AccessRequest{
        .requester = static_cast<NodeId>(i),
        .resource = w.resources[static_cast<size_t>(i) % w.resources.size()]}));
  }
  auto t0 = transport.SubmitBatch(0, breq, {});
  auto t1 = transport.SubmitBatch(1, breq, {});
  ASSERT_TRUE(t0.valid());
  ASSERT_TRUE(t1.valid());
  auto r0 = t0.Wait();
  auto r1 = t1.Wait();
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r0, router.shard(0).CheckBatch(breq));
  EXPECT_EQ(*r1, router.shard(1).CheckBatch(breq));

  // A deadline already in the past never reaches the engine: the job is
  // refused worker-side (or submit-side) as an explicit timeout.
  TransportCallOptions past;
  past.deadline_ms = 1;
  EXPECT_EQ(transport.Check(0, req, past).status().code(),
            StatusCode::kDeadlineExceeded);

  // Queue accounting: everything submitted was either executed or
  // cancelled, and the past-deadline call shows up as a cancellation.
  // The caller-side timeout returns before the worker books the drop,
  // so give the queue a moment to drain.
  ThreadedTransport::QueueStats stats = transport.queue_stats(0);
  for (int spin = 0;
       spin < 2000 && stats.submitted != stats.executed + stats.cancelled;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = transport.queue_stats(0);
  }
  EXPECT_GT(stats.submitted, 0u);
  EXPECT_GT(stats.executed, 0u);
  EXPECT_GE(stats.cancelled, 1u);
  EXPECT_EQ(stats.submitted, stats.executed + stats.cancelled);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(ShardTransport, ThreadedExecutorMutateIsFailStop) {
  ChainFixture f = MakeChain();
  RouterOptions opts;
  opts.partition.num_shards = 2;
  opts.partition.strategy = PartitionStrategy::kContiguous;
  ShardRouter router(f.graph, f.store, opts);
  ASSERT_TRUE(router.Build().ok());

  ThreadedTransport transport({&router.shard(0), &router.shard(1)});
  const wire::Stamp before = router.shard(0).ViewStamp();

  // A mutation whose deadline has already passed is refused BEFORE the
  // engine call — the shard's published state must not move.
  wire::MutateRequest mreq;
  mreq.op = wire::MutateOp::kAddEdge;
  mreq.src = 1;
  mreq.dst = 2;
  mreq.label_name = "friend";
  TransportCallOptions past;
  past.deadline_ms = 1;
  EXPECT_EQ(transport.Mutate(0, mreq, past).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(router.shard(0).ViewStamp(), before);

  // Without a deadline the same mutation applies and the stamp moves.
  auto ok = transport.Mutate(0, mreq, {});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->status_code, 0);
  EXPECT_NE(router.shard(0).ViewStamp(), before);
}

// ---- Backoff jitter: a pure function of call content -----------------------

TEST(ShardTransport, BackoffJitterIgnoresUnrelatedTraffic) {
  // The retry backoff jitter must be derived from the call's CONTENT
  // (shard, request identity, attempt) — never from a router-wide draw
  // counter — or concurrent fan-out would reshuffle every later draw
  // and identical runs would sleep differently. Observable form: the
  // virtual-clock cost of absorbing the same two-drop storm for the
  // same request is identical no matter how much unrelated traffic ran
  // first.
  auto run = [](int warmup_checks) -> uint64_t {
    ChainFixture f = MakeChain();
    RouterOptions opts;
    opts.partition.num_shards = 2;
    opts.partition.strategy = PartitionStrategy::kContiguous;
    opts.robustness.allow_degraded = false;
    opts.robustness.backoff_base_ms = 8;
    opts.robustness.backoff_max_ms = 64;
    opts.robustness.backoff_jitter = 0.9;  // big enough to see a reshuffle
    FaultInjectionTransport* fault = nullptr;
    opts.transport_decorator =
        [&fault](std::unique_ptr<ShardTransport> inner)
        -> std::unique_ptr<ShardTransport> {
      auto t = std::make_unique<FaultInjectionTransport>(std::move(inner), 1);
      fault = t.get();
      return t;
    };
    ShardRouter router(f.graph, f.store, opts);
    EXPECT_TRUE(router.Build().ok());
    if (fault == nullptr) return 0;

    // Unrelated fault-free traffic (used to advance the shared jitter
    // sequence; must be irrelevant now).
    for (int i = 0; i < warmup_checks; ++i) {
      auto d = router.CheckAccess({.requester = 6, .resource = f.res});
      EXPECT_TRUE(d.ok()) << d.status().ToString();
    }

    // Drop the measured call's first two shard-0 attempts; the two
    // backoff sleeps land on the decorator's virtual clock.
    const uint64_t calls = fault->counters(0).calls;
    fault->AddSchedule({.shard = 0, .first_call = calls,
                        .last_call = calls + 1, .kind = FaultKind::kDrop});
    const uint64_t before = fault->NowMs();
    auto d = router.CheckAccess({.requester = 1, .resource = f.res});
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    if (d.ok()) EXPECT_TRUE(d->granted);
    return fault->NowMs() - before;
  };

  const uint64_t quiet = run(0);
  EXPECT_GT(quiet, 0u);            // the two backoffs really slept
  EXPECT_EQ(run(0), quiet);        // repeatable from scratch
  EXPECT_EQ(run(7), quiet);        // …and independent of prior traffic
  EXPECT_EQ(run(23), quiet);
}

// ---- Parallel fan-out: serial-vs-threaded agreement wall -------------------

// Byte-level agreement between the serial (InProcessTransport) and the
// threaded (ThreadedTransport) router: not just the verdict but every
// field a caller can see — stamps, witness, matched rule, evaluator,
// work counters. Both routers run the identical scatter-gather code
// over the identical call sets, so anything short of byte-identity is
// a concurrency bug.
void ExpectIdenticalDecision(const Result<AccessDecision>& threaded,
                             const Result<AccessDecision>& serial,
                             const std::string& context) {
  ASSERT_EQ(threaded.ok(), serial.ok())
      << context << " threaded=" << threaded.status().ToString()
      << " serial=" << serial.status().ToString();
  if (!threaded.ok()) {
    EXPECT_EQ(threaded.status().code(), serial.status().code()) << context;
    return;
  }
  EXPECT_EQ(threaded->granted, serial->granted) << context;
  EXPECT_EQ(threaded->owner_access, serial->owner_access) << context;
  EXPECT_EQ(threaded->matched_rule, serial->matched_rule) << context;
  EXPECT_EQ(threaded->witness, serial->witness) << context;
  EXPECT_EQ(threaded->evaluator_name, serial->evaluator_name) << context;
  EXPECT_EQ(threaded->snapshot_generation, serial->snapshot_generation)
      << context;
  EXPECT_EQ(threaded->overlay_version, serial->overlay_version) << context;
  EXPECT_EQ(threaded->degraded_reason, serial->degraded_reason) << context;
  EXPECT_EQ(threaded->stats.pairs_visited, serial->stats.pairs_visited)
      << context;
}

void RunParallelAgreement(Result<SocialGraph> generated,
                          PartitionStrategy strategy, uint32_t num_shards,
                          const std::string& tag) {
  ASSERT_TRUE(generated.ok());
  Workload w = MakeWorkload(std::move(*generated));
  SocialGraph threaded_graph = w.graph;  // copies before partitioning
  SocialGraph oracle_graph = w.graph;

  RouterOptions base;
  base.partition.num_shards = num_shards;
  base.partition.strategy = strategy;
  // No per-attempt deadlines: a loaded CI box must not turn a slow
  // scheduler tick into a spurious timeout on either side.
  base.robustness.call_deadline_ms = 0;
  base.robustness.op_budget_ms = 0;

  RouterOptions serial_opts = base;
  // Identity decorator: routes even an N == 1 serial router through the
  // transport, mirroring how threaded_transport disables passthrough —
  // the two sides must take the same code path everywhere.
  serial_opts.transport_decorator =
      [](std::unique_ptr<ShardTransport> inner)
      -> std::unique_ptr<ShardTransport> { return inner; };
  RouterOptions threaded_opts = base;
  threaded_opts.threaded_transport = true;

  ShardRouter serial_router(w.graph, w.store, serial_opts);
  ASSERT_TRUE(serial_router.Build().ok()) << tag;
  ShardRouter threaded_router(threaded_graph, w.store, threaded_opts);
  ASSERT_TRUE(threaded_router.Build().ok()) << tag;
  AccessControlEngine oracle(oracle_graph, w.store);
  ASSERT_TRUE(oracle.RebuildIndexes().ok());

  const size_t n = oracle_graph.NumNodes();
  Rng rng(0xFA40 ^ num_shards);
  auto compare_singles = [&](int rounds, const std::string& phase) {
    for (int i = 0; i < rounds; ++i) {
      AccessRequest req;
      req.requester = static_cast<NodeId>(rng.NextBounded(n));
      req.resource = w.resources[rng.NextBounded(w.resources.size())];
      req.want_witness = (i % 3 == 0);
      const std::string ctx = tag + "/" + phase + " slot " +
                              std::to_string(i) +
                              " requester=" + std::to_string(req.requester) +
                              " resource=" + std::to_string(req.resource);
      const auto t = threaded_router.CheckAccess(req);
      ExpectIdenticalDecision(t, serial_router.CheckAccess(req), ctx);
      ExpectAgrees(t, oracle.CheckAccess(req), ctx + " (oracle)");
    }
  };
  auto compare_batch = [&](const std::string& phase) {
    std::vector<AccessRequest> batch;
    for (int i = 0; i < 48; ++i) {
      batch.push_back(
          {.requester = static_cast<NodeId>(rng.NextBounded(n)),
           .resource = w.resources[rng.NextBounded(w.resources.size())],
           .want_witness = (i % 4 == 0)});
    }
    const auto threaded = threaded_router.CheckAccessBatch(batch);
    const auto serial = serial_router.CheckAccessBatch(batch);
    ASSERT_EQ(threaded.size(), batch.size()) << tag;
    ASSERT_EQ(serial.size(), batch.size()) << tag;
    for (size_t i = 0; i < batch.size(); ++i) {
      const std::string ctx =
          tag + "/" + phase + " batch slot " + std::to_string(i);
      ExpectIdenticalDecision(threaded[i], serial[i], ctx);
      ExpectAgrees(threaded[i], oracle.CheckAccess(batch[i]),
                   ctx + " (oracle)");
    }
  };

  compare_singles(90, "initial");
  compare_batch("initial");

  // Mid-stream mutations, preferring cross-cut edges, mirrored into all
  // three: the stamps keep moving in lockstep.
  const auto topo = serial_router.topology();
  std::vector<std::pair<NodeId, NodeId>> added;
  for (int t = 0; t < 400 && added.size() < 6; ++t) {
    const NodeId a = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId b = static_cast<NodeId>(rng.NextBounded(n));
    if (a == b) continue;
    if (num_shards > 1 && topo->shard_of[a] == topo->shard_of[b]) continue;
    ASSERT_TRUE(serial_router.AddEdge(a, b, "friend").ok()) << tag;
    ASSERT_TRUE(threaded_router.AddEdge(a, b, "friend").ok()) << tag;
    ASSERT_TRUE(oracle.AddEdge(a, b, "friend").ok());
    added.push_back({a, b});
  }
  EXPECT_FALSE(added.empty()) << tag;
  compare_singles(60, "after-add");
  compare_batch("after-add");

  for (size_t i = 0; i < added.size(); i += 2) {
    ASSERT_TRUE(
        serial_router.RemoveEdge(added[i].first, added[i].second, "friend")
            .ok())
        << tag;
    ASSERT_TRUE(
        threaded_router.RemoveEdge(added[i].first, added[i].second, "friend")
            .ok())
        << tag;
    ASSERT_TRUE(
        oracle.RemoveEdge(added[i].first, added[i].second, "friend").ok());
  }
  compare_singles(60, "after-remove");

  ASSERT_TRUE(serial_router.RefreshSummaries().ok()) << tag;
  ASSERT_TRUE(threaded_router.RefreshSummaries().ok()) << tag;
  compare_singles(40, "after-refresh");
  compare_batch("after-refresh");

  // The routers agree they did the same amount of work, not just that
  // they reached the same verdicts.
  const RouterCounters sc = serial_router.counters();
  const RouterCounters tc = threaded_router.counters();
  EXPECT_EQ(tc.checks, sc.checks) << tag;
  EXPECT_EQ(tc.cross_shard_checks, sc.cross_shard_checks) << tag;
  EXPECT_EQ(tc.local_conclusive, sc.local_conclusive) << tag;
  EXPECT_EQ(tc.summary_resolved, sc.summary_resolved) << tag;
  EXPECT_EQ(tc.fallback_walks, sc.fallback_walks) << tag;
  EXPECT_EQ(tc.fallback_rounds, sc.fallback_rounds) << tag;
  EXPECT_EQ(tc.retries, sc.retries) << tag;
  EXPECT_EQ(tc.unavailable_errors, sc.unavailable_errors) << tag;
}

TEST(ShardParallelAgreement, ErdosRenyiContiguous) {
  for (uint32_t shards : {1u, 2u, 4u, 7u}) {
    RunParallelAgreement(SmallEr(40 + shards), PartitionStrategy::kContiguous,
                         shards, "er/contig/" + std::to_string(shards));
  }
}

TEST(ShardParallelAgreement, BarabasiAlbertContiguous) {
  for (uint32_t shards : {1u, 2u, 4u, 7u}) {
    RunParallelAgreement(SmallBa(40 + shards), PartitionStrategy::kContiguous,
                         shards, "ba/contig/" + std::to_string(shards));
  }
}

TEST(ShardParallelAgreement, WattsStrogatzCommunity) {
  for (uint32_t shards : {1u, 2u, 4u, 7u}) {
    RunParallelAgreement(SmallWs(40 + shards), PartitionStrategy::kCommunity,
                         shards, "ws/community/" + std::to_string(shards));
  }
}

TEST(ShardParallelAgreement, NoSummariesForcesParallelFallbackRounds) {
  // With summaries disabled every cross-shard path takes the frontier-
  // exchange fallback, whose rounds now scatter all shards in parallel
  // — the hardest surface to keep byte-identical.
  auto run = [](bool threaded) {
    auto g = SmallBa(99);
    EXPECT_TRUE(g.ok());
    auto w = std::make_unique<Workload>(MakeWorkload(std::move(*g)));
    RouterOptions opts;
    opts.partition.num_shards = 4;
    opts.partition.strategy = PartitionStrategy::kCommunity;
    opts.build_summaries = false;
    opts.robustness.call_deadline_ms = 0;
    opts.robustness.op_budget_ms = 0;
    opts.threaded_transport = threaded;
    if (!threaded) {
      opts.transport_decorator =
          [](std::unique_ptr<ShardTransport> inner)
          -> std::unique_ptr<ShardTransport> { return inner; };
    }
    auto router = std::make_unique<ShardRouter>(w->graph, w->store, opts);
    EXPECT_TRUE(router->Build().ok());
    return std::make_pair(std::move(w), std::move(router));
  };
  auto [sw, serial] = run(false);
  auto [tw, threaded] = run(true);

  Rng rng(5);
  const size_t n = sw->graph.NumNodes();
  for (int i = 0; i < 150; ++i) {
    AccessRequest req;
    req.requester = static_cast<NodeId>(rng.NextBounded(n));
    req.resource = sw->resources[rng.NextBounded(sw->resources.size())];
    ExpectIdenticalDecision(threaded->CheckAccess(req),
                            serial->CheckAccess(req),
                            "nosummary slot " + std::to_string(i));
  }
  const RouterCounters sc = serial->counters();
  const RouterCounters tc = threaded->counters();
  EXPECT_GT(tc.fallback_walks, 0u);
  EXPECT_EQ(tc.fallback_walks, sc.fallback_walks);
  EXPECT_EQ(tc.fallback_rounds, sc.fallback_rounds);
}

}  // namespace
}  // namespace sargus
