#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/access_engine.h"
#include "shard/partitioner.h"
#include "shard/router.h"
#include "shard/wire.h"
#include "synth/generators.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

using testing_util::MakeDiamond;

// ---- Partitioner ----------------------------------------------------------

TEST(Partitioner, ContiguousRangesCoverEveryNode) {
  ErdosRenyiSpec spec;
  spec.base.num_nodes = 10;
  auto g = GenerateErdosRenyi(spec);
  ASSERT_TRUE(g.ok());
  PartitionOptions opts;
  opts.num_shards = 3;
  opts.strategy = PartitionStrategy::kContiguous;
  auto part = GraphPartitioner::Partition(*g, opts);
  ASSERT_TRUE(part.ok());
  ASSERT_EQ(part->shard_of.size(), 10u);
  // Contiguous: shard ids are non-decreasing in node order.
  for (size_t v = 1; v < part->shard_of.size(); ++v) {
    EXPECT_LE(part->shard_of[v - 1], part->shard_of[v]);
  }
  size_t covered = 0;
  for (const auto& members : part->members) covered += members.size();
  EXPECT_EQ(covered, 10u);
  // Every reported cut edge genuinely crosses shards.
  for (const Edge& e : part->cut_edges) {
    EXPECT_NE(part->shard_of[e.src], part->shard_of[e.dst]);
  }
}

TEST(Partitioner, CommunityIsDeterministic) {
  BarabasiAlbertSpec spec;
  spec.base.num_nodes = 64;
  auto g = GenerateBarabasiAlbert(spec);
  ASSERT_TRUE(g.ok());
  PartitionOptions opts;
  opts.num_shards = 4;
  opts.strategy = PartitionStrategy::kCommunity;
  auto a = GraphPartitioner::Partition(*g, opts);
  auto b = GraphPartitioner::Partition(*g, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->shard_of, b->shard_of);
  size_t covered = 0;
  for (const auto& members : a->members) covered += members.size();
  EXPECT_EQ(covered, 64u);
  for (const Edge& e : a->cut_edges) {
    EXPECT_NE(a->shard_of[e.src], a->shard_of[e.dst]);
  }
}

TEST(Partitioner, ZeroShardsRejected) {
  SocialGraph g = MakeDiamond();
  PartitionOptions opts;
  opts.num_shards = 0;
  EXPECT_EQ(GraphPartitioner::Partition(g, opts).status().code(),
            StatusCode::kInvalidArgument);
}

// ---- Wire round trips -----------------------------------------------------

TEST(Wire, CheckRoundTrip) {
  wire::CheckRequest req;
  req.requester = 7;
  req.resource = 3;
  req.want_witness = 1;
  req.has_evaluator_override = 1;
  req.evaluator_override = 2;
  auto decoded = wire::DecodeCheckRequest(wire::Encode(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, req);

  wire::CheckReply rep;
  rep.granted = 1;
  rep.has_matched_rule = 1;
  rep.matched_rule = 5;
  rep.pairs_visited = 123456;
  rep.stamp = {9, 42};
  rep.witness = {1, 2, 3};
  auto decoded_rep = wire::DecodeCheckReply(wire::Encode(rep));
  ASSERT_TRUE(decoded_rep.ok());
  EXPECT_EQ(*decoded_rep, rep);

  wire::CheckReply err;
  err.status_code = wire::PackStatus(Status::NotFound("nope"));
  err.error = "nope";
  auto decoded_err = wire::DecodeCheckReply(wire::Encode(err));
  ASSERT_TRUE(decoded_err.ok());
  EXPECT_EQ(*decoded_err, err);
}

TEST(Wire, BatchRoundTrip) {
  wire::BatchCheckRequest req;
  req.requests.push_back({.requester = 1, .resource = 0});
  req.requests.push_back({.requester = 2, .resource = 9, .want_witness = 1});
  auto decoded = wire::DecodeBatchCheckRequest(wire::Encode(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, req);

  wire::BatchCheckReply rep;  // empty vector round-trips too
  auto decoded_rep = wire::DecodeBatchCheckReply(wire::Encode(rep));
  ASSERT_TRUE(decoded_rep.ok());
  EXPECT_EQ(*decoded_rep, rep);
}

TEST(Wire, WalkRoundTrip) {
  wire::WalkRequest req;
  req.rule = 4;
  req.path = 1;
  req.requester = 11;
  req.seed = wire::WalkSeed::kFrontier;
  req.owner = 6;
  req.frontier = {{10, 2, 3}, {20, 0, 5}};
  auto decoded = wire::DecodeWalkRequest(wire::Encode(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, req);

  wire::WalkReply rep;
  rep.accepted = 1;
  rep.exports = {{3, 1, 2}};
  rep.pairs_visited = 77;
  rep.stamp = {1, 2};
  auto decoded_rep = wire::DecodeWalkReply(wire::Encode(rep));
  ASSERT_TRUE(decoded_rep.ok());
  EXPECT_EQ(*decoded_rep, rep);
}

TEST(Wire, MutateRoundTrip) {
  wire::MutateRequest req;
  req.op = wire::MutateOp::kRemoveEdge;
  req.src = 5;
  req.dst = 6;
  req.label = kInvalidLabel;
  req.label_name = "friend";
  auto decoded = wire::DecodeMutateRequest(wire::Encode(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, req);

  wire::MutateReply rep;
  rep.new_node = 99;
  rep.stamp = {3, 4};
  auto decoded_rep = wire::DecodeMutateReply(wire::Encode(rep));
  ASSERT_TRUE(decoded_rep.ok());
  EXPECT_EQ(*decoded_rep, rep);
}

TEST(Wire, RejectsCorruptFrames) {
  std::vector<uint8_t> bytes = wire::Encode(wire::CheckRequest{});
  // Bad magic.
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(wire::DecodeCheckRequest(bad_magic).status().code(),
            StatusCode::kInvalidArgument);
  // Unknown version.
  auto bad_version = bytes;
  bad_version[4] = 0xEE;
  EXPECT_EQ(wire::DecodeCheckRequest(bad_version).status().code(),
            StatusCode::kInvalidArgument);
  // Wrong message type for the decoder.
  EXPECT_FALSE(wire::DecodeWalkRequest(bytes).ok());
  // Truncation at every prefix length must error, never crash.
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        wire::DecodeCheckRequest(std::span(bytes.data(), len)).ok());
  }
  // Trailing garbage.
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(wire::DecodeCheckRequest(padded).ok());
}

// ---- Router: single-shard passthrough -------------------------------------

TEST(ShardRouter, SingleShardPassthroughStamps) {
  SocialGraph g = MakeDiamond();
  PolicyStore store;
  const ResourceId photo = store.RegisterResource(0, "photo");
  ASSERT_TRUE(store.AddRuleFromPaths(photo, {"friend[1,2]/colleague[1]"}).ok());

  ShardRouter router(g, store);
  ASSERT_TRUE(router.Build().ok());
  ASSERT_EQ(router.num_shards(), 1u);

  // The passthrough serves the SAME engine the shard wraps: decisions
  // carry that engine's own view stamps, byte-identical to calling it
  // directly — no router-level stamp rewriting.
  const AccessRequest req{.requester = 3, .resource = photo};
  auto direct = router.shard(0).engine().CheckAccess(req);
  auto routed = router.CheckAccess(req);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(routed.ok());
  EXPECT_TRUE(routed->granted);
  EXPECT_EQ(routed->granted, direct->granted);
  EXPECT_EQ(routed->snapshot_generation, direct->snapshot_generation);
  EXPECT_EQ(routed->overlay_version, direct->overlay_version);
  EXPECT_EQ(routed->evaluator_name, direct->evaluator_name);

  const std::vector<AccessRequest> batch{req, {.requester = 2,
                                               .resource = photo}};
  auto direct_batch = router.shard(0).engine().CheckAccessBatch(batch);
  auto routed_batch = router.CheckAccessBatch(batch);
  ASSERT_EQ(routed_batch.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(routed_batch[i].ok());
    ASSERT_TRUE(direct_batch[i].ok());
    EXPECT_EQ(routed_batch[i]->granted, direct_batch[i]->granted);
    EXPECT_EQ(routed_batch[i]->snapshot_generation,
              direct_batch[i]->snapshot_generation);
    EXPECT_EQ(routed_batch[i]->overlay_version,
              direct_batch[i]->overlay_version);
  }

  // Mutations pass straight through too.
  ASSERT_TRUE(router.AddEdge(3, 0, "friend").ok());
  auto now_granted = router.CheckAccess({.requester = 3, .resource = photo});
  ASSERT_TRUE(now_granted.ok());
  EXPECT_TRUE(now_granted->granted);
  auto added = router.AddNode();
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 6u);
  EXPECT_EQ(router.topology()->shard_of.size(), 7u);
}

// ---- Router: oracle agreement ---------------------------------------------

struct Workload {
  SocialGraph graph;
  PolicyStore store;
  std::vector<ResourceId> resources;
};

Workload MakeWorkload(SocialGraph g) {
  Workload w;
  w.graph = std::move(g);
  const size_t n = w.graph.NumNodes();
  const std::vector<std::vector<std::string>> rule_sets = {
      {"friend[1,3]"},
      {"friend[1,2]/colleague[1,2]"},
      {"colleague-[1,2]"},
      {"friend[1,2]{age>=18}"},
      {"family[1,4]"},
  };
  for (size_t i = 0; i < 10; ++i) {
    const NodeId owner = static_cast<NodeId>((i * 37 + 11) % n);
    const ResourceId r =
        w.store.RegisterResource(owner, "res" + std::to_string(i));
    EXPECT_TRUE(
        w.store.AddRuleFromPaths(r, rule_sets[i % rule_sets.size()]).ok());
    if (i % 3 == 0) {
      EXPECT_TRUE(w.store.AddRuleFromPaths(r, {"colleague[1,2]"}).ok());
    }
    w.resources.push_back(r);
  }
  return w;
}

void ExpectAgrees(const Result<AccessDecision>& got,
                  const Result<AccessDecision>& want,
                  const std::string& context) {
  ASSERT_EQ(got.ok(), want.ok())
      << context << " got=" << got.status().ToString()
      << " want=" << want.status().ToString();
  if (!got.ok()) {
    EXPECT_EQ(got.status().code(), want.status().code()) << context;
    return;
  }
  EXPECT_EQ(got->granted, want->granted) << context;
  EXPECT_EQ(got->owner_access, want->owner_access) << context;
}

void RunOracleComparison(Result<SocialGraph> generated,
                         PartitionStrategy strategy, uint32_t num_shards,
                         const std::string& tag) {
  ASSERT_TRUE(generated.ok());
  Workload w = MakeWorkload(std::move(*generated));
  SocialGraph oracle_graph = w.graph;  // copy before the router partitions

  RouterOptions opts;
  opts.partition.num_shards = num_shards;
  opts.partition.strategy = strategy;
  ShardRouter router(w.graph, w.store, opts);
  ASSERT_TRUE(router.Build().ok()) << tag;
  AccessControlEngine oracle(oracle_graph, w.store);
  ASSERT_TRUE(oracle.RebuildIndexes().ok());

  const size_t n = oracle_graph.NumNodes();
  Rng rng(0xC0FFEE ^ num_shards);
  auto compare_random = [&](int rounds, const std::string& phase) {
    for (int i = 0; i < rounds; ++i) {
      AccessRequest req;
      req.requester = static_cast<NodeId>(rng.NextBounded(n));
      req.resource = w.resources[rng.NextBounded(w.resources.size())];
      ExpectAgrees(router.CheckAccess(req), oracle.CheckAccess(req),
                   tag + "/" + phase + " requester=" +
                       std::to_string(req.requester) +
                       " resource=" + std::to_string(req.resource));
    }
  };
  compare_random(120, "initial");

  // Batch path agrees element-wise with the oracle too.
  std::vector<AccessRequest> batch;
  for (int i = 0; i < 40; ++i) {
    batch.push_back({.requester = static_cast<NodeId>(rng.NextBounded(n)),
                     .resource =
                         w.resources[rng.NextBounded(w.resources.size())]});
  }
  const auto routed = router.CheckAccessBatch(batch);
  const auto expected = oracle.CheckAccessBatch(batch);
  ASSERT_EQ(routed.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectAgrees(routed[i], expected[i], tag + "/batch slot " +
                                             std::to_string(i));
  }

  // Mid-sequence mutations, preferring edges that cross shard cuts;
  // mirror every mutation into the oracle.
  const auto topo = router.topology();
  std::vector<std::pair<NodeId, NodeId>> added;
  for (int t = 0; t < 400 && added.size() < 8; ++t) {
    const NodeId a = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId b = static_cast<NodeId>(rng.NextBounded(n));
    if (a == b) continue;
    if (num_shards > 1 && topo->shard_of[a] == topo->shard_of[b]) continue;
    ASSERT_TRUE(router.AddEdge(a, b, "friend").ok()) << tag;
    ASSERT_TRUE(oracle.AddEdge(a, b, "friend").ok());
    added.push_back({a, b});
  }
  EXPECT_FALSE(added.empty()) << tag;
  compare_random(80, "after-add");

  // Remove half of them again (cut shrinks back).
  for (size_t i = 0; i < added.size(); i += 2) {
    ASSERT_TRUE(router.RemoveEdge(added[i].first, added[i].second, "friend")
                    .ok())
        << tag;
    ASSERT_TRUE(
        oracle.RemoveEdge(added[i].first, added[i].second, "friend").ok());
  }
  compare_random(80, "after-remove");

  // Fresh summaries must not change any answer.
  ASSERT_TRUE(router.RefreshSummaries().ok()) << tag;
  compare_random(80, "after-refresh");
}

Result<SocialGraph> SmallEr(uint64_t seed) {
  ErdosRenyiSpec spec;
  spec.base.num_nodes = 60;
  spec.base.seed = seed;
  spec.avg_out_degree = 3.0;
  return GenerateErdosRenyi(spec);
}

Result<SocialGraph> SmallBa(uint64_t seed) {
  BarabasiAlbertSpec spec;
  spec.base.num_nodes = 60;
  spec.base.seed = seed;
  spec.edges_per_node = 2;
  return GenerateBarabasiAlbert(spec);
}

Result<SocialGraph> SmallWs(uint64_t seed) {
  WattsStrogatzSpec spec;
  spec.base.num_nodes = 48;
  spec.base.seed = seed;
  return GenerateWattsStrogatz(spec);
}

TEST(ShardRouterOracle, ErdosRenyiContiguous) {
  for (uint32_t shards : {1u, 2u, 4u, 7u}) {
    RunOracleComparison(SmallEr(shards), PartitionStrategy::kContiguous,
                        shards, "er/contig/" + std::to_string(shards));
  }
}

TEST(ShardRouterOracle, BarabasiAlbertContiguous) {
  for (uint32_t shards : {2u, 4u, 7u}) {
    RunOracleComparison(SmallBa(shards), PartitionStrategy::kContiguous,
                        shards, "ba/contig/" + std::to_string(shards));
  }
}

TEST(ShardRouterOracle, WattsStrogatzCommunity) {
  for (uint32_t shards : {2u, 4u, 7u}) {
    RunOracleComparison(SmallWs(shards), PartitionStrategy::kCommunity,
                        shards, "ws/community/" + std::to_string(shards));
  }
}

TEST(ShardRouterOracle, BarabasiAlbertCommunityNoSummaries) {
  // Same agreement with summaries disabled: every cross-shard path goes
  // through the frontier-exchange fallback.
  auto g = SmallBa(99);
  ASSERT_TRUE(g.ok());
  Workload w = MakeWorkload(std::move(*g));
  SocialGraph oracle_graph = w.graph;
  RouterOptions opts;
  opts.partition.num_shards = 4;
  opts.partition.strategy = PartitionStrategy::kCommunity;
  opts.build_summaries = false;
  ShardRouter router(w.graph, w.store, opts);
  ASSERT_TRUE(router.Build().ok());
  AccessControlEngine oracle(oracle_graph, w.store);
  ASSERT_TRUE(oracle.RebuildIndexes().ok());
  Rng rng(5);
  for (int i = 0; i < 150; ++i) {
    AccessRequest req;
    req.requester =
        static_cast<NodeId>(rng.NextBounded(oracle_graph.NumNodes()));
    req.resource = w.resources[rng.NextBounded(w.resources.size())];
    ExpectAgrees(router.CheckAccess(req), oracle.CheckAccess(req),
                 "nosummary slot " + std::to_string(i));
  }
  const RouterCounters c = router.counters();
  // With summaries disabled, any path evaluation that outlives phase
  // one must have gone through frontier exchange (never a stale-summary
  // detour, because there are no summaries to find stale).
  EXPECT_GT(c.fallback_walks, 0u);
  EXPECT_EQ(c.stale_summary_fallbacks, 0u);
}

// ---- Router: forced fallback + counters -----------------------------------

TEST(ShardRouter, StaleSummaryFallsBackThenRecovers) {
  // Two contiguous shards over 8 nodes: 0-3 on shard 0, 4-7 on shard 1.
  // Chain 0 -f-> 4 -f-> 5 -f-> 1 needs three hops crossing the cut twice.
  SocialGraph g;
  g.AddNodes(8);
  ASSERT_TRUE(g.AddEdge(0, 4, "friend").ok());
  ASSERT_TRUE(g.AddEdge(4, 5, "friend").ok());
  ASSERT_TRUE(g.AddEdge(5, 1, "friend").ok());
  PolicyStore store;
  const ResourceId res = store.RegisterResource(0, "res");
  ASSERT_TRUE(store.AddRuleFromPaths(res, {"friend[1,3]"}).ok());

  RouterOptions opts;
  opts.partition.num_shards = 2;
  opts.partition.strategy = PartitionStrategy::kContiguous;
  ShardRouter router(g, store, opts);
  ASSERT_TRUE(router.Build().ok());
  ASSERT_EQ(router.topology()->shard_of[0], 0u);
  ASSERT_EQ(router.topology()->shard_of[5], 1u);

  // Fresh summaries: the cross-shard grant resolves without fallback.
  auto granted = router.CheckAccess({.requester = 1, .resource = res});
  ASSERT_TRUE(granted.ok());
  EXPECT_TRUE(granted->granted);
  RouterCounters c = router.counters();
  EXPECT_EQ(c.fallback_walks, 0u);
  EXPECT_GT(c.cross_shard_checks, 0u);

  // An interior mutation on shard 1 (5 -> 6 stays inside the shard)
  // dirties its summary stamp; the next cross-shard check must fall back
  // to frontier exchange — and still answer correctly.
  ASSERT_TRUE(router.AddEdge(5, 6, "friend").ok());
  granted = router.CheckAccess({.requester = 1, .resource = res});
  ASSERT_TRUE(granted.ok());
  EXPECT_TRUE(granted->granted);
  c = router.counters();
  EXPECT_GT(c.fallback_walks, 0u);
  EXPECT_GT(c.stale_summary_fallbacks, 0u);
  const uint64_t fallbacks_before = c.fallback_walks;

  // Rebuilt summaries: fallback count stops moving.
  ASSERT_TRUE(router.RefreshSummaries().ok());
  granted = router.CheckAccess({.requester = 1, .resource = res});
  ASSERT_TRUE(granted.ok());
  EXPECT_TRUE(granted->granted);
  // Requester 6 is now reachable in two hops as well.
  auto six = router.CheckAccess({.requester = 6, .resource = res});
  ASSERT_TRUE(six.ok());
  EXPECT_TRUE(six->granted);
  // And node 3 never was.
  auto three = router.CheckAccess({.requester = 3, .resource = res});
  ASSERT_TRUE(three.ok());
  EXPECT_FALSE(three->granted);
  c = router.counters();
  EXPECT_EQ(c.fallback_walks, fallbacks_before);
  EXPECT_GT(c.summary_resolved, 0u);
}

TEST(ShardRouter, AddNodeKeepsShardsAligned) {
  auto g = SmallEr(3);
  ASSERT_TRUE(g.ok());
  Workload w = MakeWorkload(std::move(*g));
  RouterOptions opts;
  opts.partition.num_shards = 3;
  ShardRouter router(w.graph, w.store, opts);
  ASSERT_TRUE(router.Build().ok());

  const size_t before = router.topology()->shard_of.size();
  auto id = router.AddNode();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, before);
  EXPECT_EQ(router.topology()->shard_of.size(), before + 1);
  // The new node is reachable through the normal mutation + check path.
  const ResourceId res = w.resources[0];
  const NodeId owner = w.store.resource(res).owner;
  ASSERT_TRUE(router.AddEdge(owner, *id, "friend").ok());
  auto d = router.CheckAccess({.requester = *id, .resource = res});
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->granted);
}

// ---- Router: concurrent readers + one writer (TSan target) ----------------

TEST(ShardRouterConcurrency, ReadersRaceOneWriter) {
  auto g = SmallBa(17);
  ASSERT_TRUE(g.ok());
  Workload w = MakeWorkload(std::move(*g));
  RouterOptions opts;
  opts.partition.num_shards = 4;
  ShardRouter router(w.graph, w.store, opts);
  ASSERT_TRUE(router.Build().ok());

  const size_t n = router.topology()->shard_of.size();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1000 + t);
      std::vector<AccessRequest> batch;
      while (!stop.load(std::memory_order_acquire)) {
        AccessRequest req;
        req.requester = static_cast<NodeId>(rng.NextBounded(n));
        req.resource = w.resources[rng.NextBounded(w.resources.size())];
        if (rng.NextBool(0.2)) {
          batch.assign(3, req);
          for (const auto& d : router.CheckAccessBatch(batch)) {
            EXPECT_TRUE(d.ok() ||
                        d.status().code() != StatusCode::kInternal);
          }
        } else {
          auto d = router.CheckAccess(req);
          EXPECT_TRUE(d.ok() || d.status().code() != StatusCode::kInternal);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  {
    Rng rng(42);
    for (int step = 0; step < 60; ++step) {
      const NodeId a = static_cast<NodeId>(rng.NextBounded(n));
      const NodeId b = static_cast<NodeId>(rng.NextBounded(n));
      if (a == b) continue;
      if (step % 3 == 2) {
        (void)router.RemoveEdge(a, b, "friend");
      } else {
        (void)router.AddEdge(a, b, "friend");
      }
      if (step % 10 == 9) ASSERT_TRUE(router.RefreshSummaries().ok());
    }
  }
  // Let the readers observe the final state for a moment.
  while (reads.load(std::memory_order_relaxed) < 200) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(router.counters().checks, 0u);
}

}  // namespace
}  // namespace sargus
