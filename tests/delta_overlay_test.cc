#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/access_engine.h"
#include "graph/delta_overlay.h"
#include "query/closure_prefilter.h"
#include "query/online_evaluator.h"
#include "synth/generators.h"
#include "synth/workload.h"
#include "tests/test_util.h"

namespace sargus {
namespace {

using testing_util::BruteForceMatch;
using testing_util::MakeDiamond;
using testing_util::MustBind;

// ---- DeltaOverlay unit ------------------------------------------------------

TEST(DeltaOverlay, StagingSemanticsAndVersion) {
  DeltaOverlay ov;
  EXPECT_TRUE(ov.empty());
  EXPECT_EQ(ov.version(), 0u);

  EXPECT_TRUE(ov.StageAdd(1, 2, 0));
  EXPECT_FALSE(ov.StageAdd(1, 2, 0));  // idempotent
  EXPECT_TRUE(ov.IsStagedAdd(1, 2, 0));
  EXPECT_TRUE(ov.has_insertions());
  EXPECT_FALSE(ov.has_deletions());
  EXPECT_EQ(ov.version(), 1u);

  EXPECT_TRUE(ov.StageRemove(3, 4, 1));
  EXPECT_TRUE(ov.IsRemoved(3, 4, 1));
  EXPECT_FALSE(ov.IsRemoved(4, 3, 1));  // orientation matters
  EXPECT_TRUE(ov.has_deletions());
  EXPECT_EQ(ov.size(), 2u);
  EXPECT_EQ(ov.version(), 2u);

  // Adjacency views in both orientations.
  auto out = ov.AddedOut(1, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 2u);
  auto in = ov.AddedIn(2, 0);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0], 1u);
  EXPECT_TRUE(ov.AddedOut(2, 0).empty());
  EXPECT_TRUE(ov.AddedOut(1, 1).empty());  // wrong label

  // Unstaging erases both orientations.
  EXPECT_TRUE(ov.UnstageAdd(1, 2, 0));
  EXPECT_FALSE(ov.UnstageAdd(1, 2, 0));
  EXPECT_TRUE(ov.AddedOut(1, 0).empty());
  EXPECT_TRUE(ov.AddedIn(2, 0).empty());
  EXPECT_TRUE(ov.UnstageRemove(3, 4, 1));
  EXPECT_TRUE(ov.empty());

  const uint64_t v = ov.version();
  ov.Clear();  // already empty: no version bump
  EXPECT_EQ(ov.version(), v);
  ov.StageAdd(5, 6, 0);
  ov.Clear();
  EXPECT_TRUE(ov.empty());
  EXPECT_GT(ov.version(), v + 1);
}

TEST(DeltaOverlay, ForEachNeighborEdgeMergesBaseAndDelta) {
  SocialGraph g = MakeDiamond();
  CsrSnapshot csr = CsrSnapshot::Build(g);
  const LabelId fr = g.labels().Lookup("friend");
  ASSERT_NE(fr, kInvalidLabel);

  DeltaOverlay ov;
  ov.StageRemove(0, 1, fr);  // base edge 0 -f-> 1 masked
  ov.StageAdd(0, 3, fr);     // new edge 0 -f-> 3

  auto collect = [&](NodeId node, bool backward) {
    std::vector<NodeId> got;
    ForEachNeighborEdge(csr, &ov, node, fr, backward, [&](NodeId w) {
      got.push_back(w);
      return false;
    });
    std::sort(got.begin(), got.end());
    return got;
  };

  // Forward from 0: base {1, 4} minus removed {1} plus added {3}.
  EXPECT_EQ(collect(0, false), (std::vector<NodeId>{3, 4}));
  // Backward into 1: base {0} fully masked.
  EXPECT_EQ(collect(1, true), (std::vector<NodeId>{}));
  // Backward into 3: base friend-in {5} plus added {0}.
  EXPECT_EQ(collect(3, true), (std::vector<NodeId>{0, 5}));
  // Early stop is honored.
  int seen = 0;
  EXPECT_TRUE(ForEachNeighborEdge(csr, &ov, 0, fr, false, [&](NodeId) {
    ++seen;
    return true;
  }));
  EXPECT_EQ(seen, 1);
}

// ---- Engine mutations -------------------------------------------------------

struct EngineFixture {
  SocialGraph g;
  PolicyStore store;
  ResourceId res = 0;
  std::unique_ptr<AccessControlEngine> engine;

  EngineFixture(SocialGraph graph, const std::vector<std::string>& rule_paths,
                NodeId owner, EngineOptions options)
      : g(std::move(graph)) {
    res = store.RegisterResource(owner, "doc");
    (void)store.AddRuleFromPaths(res, rule_paths).ValueOrDie();
    engine = std::make_unique<AccessControlEngine>(g, store, options);
    auto st = engine->RebuildIndexes();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  bool Granted(NodeId requester) {
    auto r = engine->CheckAccess({.requester = requester, .resource = res});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && r->granted;
  }
};

TEST(EngineOverlay, MutationsVisibleWithoutRebuild) {
  EngineFixture f(MakeDiamond(), {"colleague[1]"}, /*owner=*/0,
                  {.evaluator = EvaluatorChoice::kOnlineBfs});
  // Node 0 has no colleague out-edge in the diamond.
  EXPECT_FALSE(f.Granted(5));
  const uint64_t gen = f.engine->snapshot_generation();

  ASSERT_TRUE(f.engine->AddEdge(0, 5, "colleague").ok());
  EXPECT_TRUE(f.Granted(5));  // visible to the very next query

  ASSERT_TRUE(f.engine->RemoveEdge(0, 5, "colleague").ok());
  EXPECT_FALSE(f.Granted(5));

  // Pure overlay traffic: no rebuild happened.
  EXPECT_EQ(f.engine->snapshot_generation(), gen);
  EXPECT_GE(f.engine->overlay_version(), 2u);
}

TEST(EngineOverlay, RemoveMasksBaseEdgeAndAddRestoresIt) {
  EngineFixture f(MakeDiamond(), {"friend[1,2]/colleague[1]"}, /*owner=*/0,
                  {.evaluator = EvaluatorChoice::kOnlineBfs});
  // 0 -f-> 4 -c-> 3 grants requester 3.
  EXPECT_TRUE(f.Granted(3));
  // Mask both disjunct paths' colleague hops: 4-c->3 and 2-c->3.
  ASSERT_TRUE(f.engine->RemoveEdge(4, 3, "colleague").ok());
  ASSERT_TRUE(f.engine->RemoveEdge(2, 3, "colleague").ok());
  EXPECT_FALSE(f.Granted(3));
  // Re-adding a masked base edge unstages the removal.
  ASSERT_TRUE(f.engine->AddEdge(4, 3, "colleague").ok());
  EXPECT_TRUE(f.Granted(3));
  // Removing a non-existent logical edge is kNotFound.
  auto st = f.engine->RemoveEdge(0, 3, "colleague");
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST(EngineOverlay, MutationRequiresMutableGraphAndBuiltIndexes) {
  SocialGraph g = MakeDiamond();
  PolicyStore store;
  (void)store.RegisterResource(0, "doc");
  const SocialGraph& const_g = g;
  AccessControlEngine const_engine(const_g, store, {});
  ASSERT_TRUE(const_engine.RebuildIndexes().ok());
  EXPECT_EQ(const_engine.AddEdge(0, 5, "friend").code(),
            StatusCode::kFailedPrecondition);

  AccessControlEngine unbuilt(g, store, {});
  EXPECT_EQ(unbuilt.AddEdge(0, 5, "friend").code(),
            StatusCode::kFailedPrecondition);

  AccessControlEngine engine(g, store, {});
  ASSERT_TRUE(engine.RebuildIndexes().ok());
  EXPECT_EQ(engine.AddEdge(0, 99, "friend").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.RemoveEdge(0, 1, "no-such-label").code(),
            StatusCode::kNotFound);
}

TEST(EngineOverlay, CompactFoldsOverlayIntoGraphAndRebuilds) {
  EngineFixture f(MakeDiamond(), {"colleague[1]"}, /*owner=*/0,
                  {.evaluator = EvaluatorChoice::kOnlineBfs});
  ASSERT_TRUE(f.engine->AddEdge(0, 5, "colleague").ok());
  ASSERT_TRUE(f.engine->RemoveEdge(0, 1, "friend").ok());
  const uint64_t gen = f.engine->snapshot_generation();
  EXPECT_TRUE(f.Granted(5));

  ASSERT_TRUE(f.engine->Compact().ok());
  f.engine->WaitForCompaction();  // background by default; drain for asserts
  EXPECT_TRUE(f.engine->overlay().empty());
  EXPECT_EQ(f.engine->snapshot_generation(), gen + 1);
  // Folded into the system of record.
  const LabelId co = f.g.labels().Lookup("colleague");
  const LabelId fr = f.g.labels().Lookup("friend");
  EXPECT_TRUE(f.g.FindEdge(0, 5, co).has_value());
  EXPECT_FALSE(f.g.FindEdge(0, 1, fr).has_value());
  // Same logical graph, same decision.
  EXPECT_TRUE(f.Granted(5));
  // Idempotent on an empty overlay.
  ASSERT_TRUE(f.engine->Compact().ok());
  f.engine->WaitForCompaction();
  EXPECT_EQ(f.engine->snapshot_generation(), gen + 1);
}

TEST(EngineOverlay, AutoCompactionAtThreshold) {
  EngineFixture f(MakeDiamond(), {"colleague[1]"}, /*owner=*/0,
                  {.evaluator = EvaluatorChoice::kOnlineBfs,
                   .compact_threshold = 3});
  const uint64_t gen = f.engine->snapshot_generation();
  ASSERT_TRUE(f.engine->AddEdge(0, 5, "colleague").ok());
  ASSERT_TRUE(f.engine->AddEdge(1, 4, "colleague").ok());
  EXPECT_EQ(f.engine->snapshot_generation(), gen);
  EXPECT_EQ(f.engine->overlay().size(), 2u);
  // Third staged mutation trips the threshold (and, by default, kicks
  // the background pipeline — drain it before asserting folded state).
  ASSERT_TRUE(f.engine->AddEdge(2, 5, "colleague").ok());
  f.engine->WaitForCompaction();
  EXPECT_EQ(f.engine->snapshot_generation(), gen + 1);
  EXPECT_TRUE(f.engine->overlay().empty());
  const LabelId co = f.g.labels().Lookup("colleague");
  EXPECT_TRUE(f.g.FindEdge(2, 5, co).has_value());
  EXPECT_TRUE(f.Granted(5));
}

TEST(EngineOverlay, JoinIndexPlansRerouteToOnlineUnderOverlay) {
  EngineFixture f(MakeDiamond(), {"friend[1,2]/colleague[1]"}, /*owner=*/0,
                  {.evaluator = EvaluatorChoice::kAuto});
  auto before = f.engine->CheckAccess({.requester = 3, .resource = f.res});
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->granted);
  EXPECT_EQ(before->evaluator_name, "join-index");

  // Stage a mutation: join-index plans must fall through to online
  // search (the snapshot-only index is stale) and see the new edge.
  ASSERT_TRUE(f.engine->AddEdge(0, 5, "friend").ok());
  ASSERT_TRUE(f.engine->AddEdge(5, 5, "colleague").ok());
  auto during = f.engine->CheckAccess({.requester = 5, .resource = f.res});
  ASSERT_TRUE(during.ok());
  EXPECT_TRUE(during->granted);  // 0 -f-> 5 -c-> 5
  EXPECT_EQ(during->evaluator_name, "online-bfs");
  EXPECT_GT(during->overlay_version, before->overlay_version);

  // Compaction brings the join index back online with the new edges.
  ASSERT_TRUE(f.engine->Compact().ok());
  f.engine->WaitForCompaction();
  auto after = f.engine->CheckAccess({.requester = 5, .resource = f.res});
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->granted);
  EXPECT_EQ(after->evaluator_name, "join-index");
  EXPECT_GT(after->snapshot_generation, during->snapshot_generation);
}

TEST(EngineOverlay, ClosurePrefilterSuspendedByPendingInsertions) {
  // Two components: 0 -f-> 1   2 -f-> 3.
  SocialGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode();
  (void)g.AddEdge(0, 1, "friend");
  (void)g.AddEdge(2, 3, "friend");
  EngineFixture f(std::move(g), {"friend[1,3]"}, /*owner=*/0,
                  {.evaluator = EvaluatorChoice::kOnlineBfs,
                   .use_closure_prefilter = true});
  // Disconnected: the closure fast-denies.
  auto denied = f.engine->CheckAccess({.requester = 3, .resource = f.res});
  ASSERT_TRUE(denied.ok());
  EXPECT_FALSE(denied->granted);
  EXPECT_GE(denied->stats.prefilter_rejections, 1u);

  // A pending insertion bridges the components. The stale closure still
  // says "unreachable" — the prefilter must stand down, not fast-deny.
  ASSERT_TRUE(f.engine->AddEdge(1, 2, "friend").ok());
  auto granted = f.engine->CheckAccess({.requester = 3, .resource = f.res});
  ASSERT_TRUE(granted.ok());
  EXPECT_TRUE(granted->granted);  // 0 -f-> 1 -f-> 2 -f-> 3
  EXPECT_EQ(granted->stats.prefilter_rejections, 0u);

  // After compaction the closure covers the bridge; still granted.
  ASSERT_TRUE(f.engine->Compact().ok());
  f.engine->WaitForCompaction();
  auto after = f.engine->CheckAccess({.requester = 3, .resource = f.res});
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->granted);
}

TEST(EngineOverlay, ClosurePrefilterStaysActiveUnderPureDeletions) {
  // 0 -f-> 1 and an isolated pair 2, 3: deletions cannot create paths,
  // so the snapshot closure remains a sound over-approximation.
  SocialGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode();
  (void)g.AddEdge(0, 1, "friend");
  (void)g.AddEdge(2, 3, "friend");
  EngineFixture f(std::move(g), {"friend[1,3]"}, /*owner=*/0,
                  {.evaluator = EvaluatorChoice::kOnlineBfs,
                   .use_closure_prefilter = true});
  ASSERT_TRUE(f.engine->RemoveEdge(2, 3, "friend").ok());
  ASSERT_TRUE(f.engine->overlay().has_deletions());
  auto denied = f.engine->CheckAccess({.requester = 3, .resource = f.res});
  ASSERT_TRUE(denied.ok());
  EXPECT_FALSE(denied->granted);
  // The fast-deny path still fires (deny pruning stays valid).
  EXPECT_GE(denied->stats.prefilter_rejections, 1u);
}

// ---- Randomized interleaved mutations vs rebuild-from-scratch oracle --------

/// Oracle: the logical graph materialized as a plain SocialGraph that
/// receives every mutation, rebuilt into a fresh CSR per check — exactly
/// the semantics the overlay must emulate lazily.
struct MirrorOracle {
  SocialGraph g;

  explicit MirrorOracle(const SocialGraph& base) : g(base) {}

  void Add(NodeId s, NodeId d, LabelId l) { (void)g.AddEdge(s, d, l); }
  void Remove(NodeId s, NodeId d, LabelId l) {
    auto id = g.FindEdge(s, d, l);
    if (id.has_value()) (void)g.RemoveEdge(*id);
  }
  bool Match(const BoundPathExpression& expr, NodeId src, NodeId dst) const {
    CsrSnapshot csr = CsrSnapshot::Build(g);
    return BruteForceMatch(g, csr, expr, src, dst);
  }
  /// A uniformly random live edge, if any.
  std::optional<Edge> RandomLiveEdge(Rng& rng) const {
    if (g.NumEdges() == 0) return std::nullopt;
    for (int attempts = 0; attempts < 256; ++attempts) {
      EdgeId e = static_cast<EdgeId>(rng.NextBounded(g.EdgeSlotCount()));
      if (g.IsLiveEdge(e)) return g.edge(e);
    }
    return std::nullopt;
  }
};

TEST(EngineOverlay, RandomizedInterleavedMutationsAgreeWithOracle) {
  auto gen = GenerateErdosRenyi(
      {.base = {.num_nodes = 16, .seed = 77}, .avg_out_degree = 2.0});
  ASSERT_TRUE(gen.ok());
  SocialGraph g = std::move(*gen);

  PolicyStore store;
  struct Res {
    ResourceId id;
    NodeId owner;
  };
  std::vector<Res> resources;
  const std::vector<std::vector<std::string>> rule_sets = {
      {"friend[1,2]"},
      {"friend[1]/colleague[1]"},
      {"colleague[1,2]/friend[1]"},
      {"friend[1,3]"},
  };
  for (NodeId owner = 0; owner < 4; ++owner) {
    ResourceId id = store.RegisterResource(owner, "doc" +
                                                      std::to_string(owner));
    (void)store.AddRuleFromPaths(id, rule_sets[owner]).ValueOrDie();
    resources.push_back({id, owner});
  }

  AccessControlEngine engine(g, store,
                             {.evaluator = EvaluatorChoice::kAuto,
                              .use_closure_prefilter = true,
                              .compact_threshold = 16});
  ASSERT_TRUE(engine.RebuildIndexes().ok());

  MirrorOracle oracle(g);
  // Bound once against the engine graph; label/attr ids are shared with
  // the mirror (it is a copy) and survive compaction (dictionaries only
  // grow).
  std::vector<std::vector<BoundPathExpression>> bound(resources.size());
  for (size_t i = 0; i < resources.size(); ++i) {
    for (const std::string& text : rule_sets[i]) {
      bound[i].push_back(MustBind(g, text));
    }
  }
  const LabelId fr = g.labels().Lookup("friend");
  const LabelId co = g.labels().Lookup("colleague");
  ASSERT_NE(fr, kInvalidLabel);
  ASSERT_NE(co, kInvalidLabel);

  auto check_all = [&](const char* when) {
    for (size_t i = 0; i < resources.size(); ++i) {
      for (NodeId req = 0; req < g.NumNodes(); ++req) {
        auto r = engine.CheckAccess({.requester = req, .resource = resources[i].id});
        ASSERT_TRUE(r.ok()) << when << ": " << r.status().ToString();
        bool expected = resources[i].owner == req;
        for (const auto& expr : bound[i]) {
          if (expected) break;
          expected = oracle.Match(expr, resources[i].owner, req);
        }
        ASSERT_EQ(r->granted, expected)
            << when << ": resource " << i << " requester " << req
            << " overlay=" << engine.overlay().size()
            << " gen=" << engine.snapshot_generation();
      }
    }
  };

  Rng rng(4242);
  const size_t kOps = 300;
  for (size_t op = 0; op < kOps; ++op) {
    const uint64_t kind = rng.NextBounded(10);
    if (kind < 4) {  // add a random edge
      const NodeId s = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
      const NodeId d = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
      const LabelId l = rng.NextBool(0.5) ? fr : co;
      ASSERT_TRUE(engine.AddEdge(s, d, l).ok());
      oracle.Add(s, d, l);
    } else if (kind < 7) {  // remove a random live logical edge
      auto e = oracle.RandomLiveEdge(rng);
      if (!e.has_value()) continue;
      ASSERT_TRUE(engine.RemoveEdge(e->src, e->dst, e->label).ok());
      oracle.Remove(e->src, e->dst, e->label);
    } else {  // spot-check a random decision
      const size_t i = rng.NextBounded(resources.size());
      const NodeId req = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
      auto r = engine.CheckAccess({.requester = req, .resource = resources[i].id});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      bool expected = resources[i].owner == req;
      for (const auto& expr : bound[i]) {
        if (expected) break;
        expected = oracle.Match(expr, resources[i].owner, req);
      }
      ASSERT_EQ(r->granted, expected)
          << "op " << op << " resource " << i << " requester " << req
          << " overlay=" << engine.overlay().size();
    }
    // Mid-sequence: queries straddling a forced compaction, reusing this
    // thread's pooled scratch on both sides.
    if (op == kOps / 2) {
      check_all("before forced Compact");
      ASSERT_TRUE(engine.Compact().ok());
      engine.WaitForCompaction();
      EXPECT_TRUE(engine.overlay().empty());
      check_all("after forced Compact");
    }
  }
  // Auto-compaction must have fired at least once at threshold 16.
  engine.WaitForCompaction();
  EXPECT_GT(engine.snapshot_generation(), 2u);
  check_all("final");
}

TEST(EngineOverlay, AudienceCollectionSeesOverlay) {
  SocialGraph g = MakeDiamond();
  CsrSnapshot csr = CsrSnapshot::Build(g);
  const BoundPathExpression expr = MustBind(g, "friend[1,2]");
  const LabelId fr = g.labels().Lookup("friend");

  DeltaOverlay ov;
  ov.StageAdd(4, 5, fr);     // extends the friend ball of 0
  ov.StageRemove(0, 1, fr);  // cuts the 0 -> 1 -> 2 branch

  MirrorOracle oracle(g);
  oracle.Add(4, 5, fr);
  oracle.Remove(0, 1, fr);

  std::vector<NodeId> expected;
  for (NodeId dst = 0; dst < g.NumNodes(); ++dst) {
    if (oracle.Match(expr, 0, dst)) expected.push_back(dst);
  }
  EXPECT_EQ(CollectMatchingAudience(g, csr, expr, 0, nullptr, &ov), expected);
  // Sanity: the overlay actually changed the audience.
  EXPECT_NE(CollectMatchingAudience(g, csr, expr, 0), expected);
}

}  // namespace
}  // namespace sargus
