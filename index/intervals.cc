#include "index/intervals.h"

#include <algorithm>

#include "common/rng.h"

namespace sargus {

IntervalLabeling IntervalLabeling::Build(const Dag& dag, bool reversed,
                                         uint64_t seed) {
  const size_t n = dag.NumVertices();
  IntervalLabeling lab;
  lab.intervals_.assign(n * kTraversals, Interval{});

  auto out = [&](uint32_t v) { return reversed ? dag.In(v) : dag.Out(v); };
  auto in = [&](uint32_t v) { return reversed ? dag.Out(v) : dag.In(v); };

  std::vector<uint32_t> roots;
  for (uint32_t v = 0; v < n; ++v) {
    if (in(v).empty()) roots.push_back(v);
  }

  std::vector<uint8_t> visited(n);
  // DFS frame: vertex + cursor into a shuffled successor list.
  struct Frame {
    uint32_t v;
    uint32_t succ_begin;
    uint32_t next;
    uint32_t succ_end;
  };
  std::vector<Frame> stack;
  std::vector<uint32_t> succ_storage;

  for (uint32_t k = 0; k < kTraversals; ++k) {
    Rng rng(seed * 0x9e3779b9ULL + k + 1);
    std::fill(visited.begin(), visited.end(), 0);
    uint32_t counter = 0;

    // Shuffled root order makes traversals independent.
    std::vector<uint32_t> root_order = roots;
    for (size_t i = root_order.size(); i > 1; --i) {
      std::swap(root_order[i - 1], root_order[rng.NextBounded(i)]);
    }

    auto open = [&](uint32_t v) {
      visited[v] = 1;
      const uint32_t begin = static_cast<uint32_t>(succ_storage.size());
      for (uint32_t w : out(v)) succ_storage.push_back(w);
      // Shuffle this frame's successors.
      const uint32_t len = static_cast<uint32_t>(succ_storage.size()) - begin;
      for (uint32_t i = len; i > 1; --i) {
        std::swap(succ_storage[begin + i - 1],
                  succ_storage[begin + rng.NextBounded(i)]);
      }
      stack.push_back(Frame{v, begin, begin,
                            static_cast<uint32_t>(succ_storage.size())});
    };

    // Iterate all vertices (roots first) so isolated cycles-free leftovers
    // are covered even if unreachable from any zero-indegree vertex.
    auto run_from = [&](uint32_t root) {
      if (visited[root]) return;
      open(root);
      while (!stack.empty()) {
        Frame& f = stack.back();
        if (f.next < f.succ_end) {
          const uint32_t w = succ_storage[f.next++];
          if (!visited[w]) open(w);
          continue;
        }
        // Post-visit: post = counter; low = min(low of children, own post).
        const uint32_t v = f.v;
        Interval& iv = lab.intervals_[v * kTraversals + k];
        uint32_t low = counter;
        for (uint32_t w : out(v)) {
          low = std::min(low, lab.intervals_[w * kTraversals + k].low);
        }
        iv.low = low;
        iv.post = counter++;
        succ_storage.resize(f.succ_begin);
        stack.pop_back();
      }
    };
    for (uint32_t root : root_order) run_from(root);
    for (uint32_t v = 0; v < n; ++v) run_from(v);
  }
  return lab;
}

IntervalIndex IntervalIndex::Build(const Dag& dag, uint64_t seed) {
  IntervalIndex idx;
  idx.forward = IntervalLabeling::Build(dag, /*reversed=*/false, seed);
  idx.backward = IntervalLabeling::Build(dag, /*reversed=*/true, seed ^ 0xabcdef);
  return idx;
}

}  // namespace sargus
