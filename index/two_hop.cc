#include "index/two_hop.h"

#include <algorithm>
#include <numeric>

namespace sargus {
namespace {

/// Pruned landmark sweep in the given vertex order. Produces per-vertex
/// hub lists containing hub *ranks* (position in `order`), which keeps the
/// lists sorted by insertion and makes intersection a sorted merge.
struct SweepResult {
  std::vector<std::vector<uint32_t>> out_hubs;  // hubs x with v ->* x
  std::vector<std::vector<uint32_t>> in_hubs;   // hubs x with x ->* v
};

bool HubQuery(const SweepResult& r, uint32_t u, uint32_t v) {
  if (u == v) return true;
  const auto& a = r.out_hubs[u];
  const auto& b = r.in_hubs[v];
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

SweepResult PrunedSweep(const Dag& dag, const std::vector<uint32_t>& order) {
  const size_t n = dag.NumVertices();
  SweepResult r;
  r.out_hubs.resize(n);
  r.in_hubs.resize(n);
  std::vector<uint32_t> queue;
  std::vector<uint8_t> seen(n, 0);
  std::vector<uint32_t> touched;

  for (uint32_t rank = 0; rank < n; ++rank) {
    const uint32_t hub = order[rank];

    // Forward BFS from hub: vertices v with hub ->* v get hub in Lin(v),
    // unless an earlier hub already certifies hub ->* v.
    auto sweep = [&](bool forward) {
      queue.clear();
      touched.clear();
      queue.push_back(hub);
      seen[hub] = 1;
      touched.push_back(hub);
      for (size_t head = 0; head < queue.size(); ++head) {
        const uint32_t v = queue[head];
        // Pruning: if existing labels already witness the hub-v relation,
        // neither v nor anything below it needs this hub.
        if (v != hub) {
          const bool covered = forward ? HubQuery(r, hub, v)
                                       : HubQuery(r, v, hub);
          if (covered) continue;
          if (forward) {
            r.in_hubs[v].push_back(rank);
          } else {
            r.out_hubs[v].push_back(rank);
          }
        }
        for (uint32_t w : forward ? dag.Out(v) : dag.In(v)) {
          if (!seen[w]) {
            seen[w] = 1;
            touched.push_back(w);
            queue.push_back(w);
          }
        }
      }
      for (uint32_t v : touched) seen[v] = 0;
    };
    sweep(/*forward=*/true);
    sweep(/*forward=*/false);
    // The hub reaches itself both ways.
    r.out_hubs[hub].push_back(rank);
    r.in_hubs[hub].push_back(rank);
  }
  return r;
}

}  // namespace

Result<TwoHopLabeling> TwoHopLabeling::Build(const Dag& dag,
                                             TwoHopOptions options) {
  const size_t n = dag.NumVertices();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  if (options.strategy == TwoHopStrategy::kPrunedLandmark) {
    // Rank by degree sum, descending — a cheap centrality proxy.
    std::vector<uint64_t> score(n);
    for (uint32_t v = 0; v < n; ++v) {
      score[v] = dag.Out(v).size() + dag.In(v).size();
    }
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return score[a] > score[b];
    });
  } else {
    if (n > options.max_vertices_for_greedy) {
      return Status::ResourceExhausted(
          "greedy max-cover 2-hop: DAG has " + std::to_string(n) +
          " vertices, cap is " +
          std::to_string(options.max_vertices_for_greedy));
    }
    // Exact |descendants| x |ancestors| scores via bitset closure in
    // reverse topological order.
    const size_t words = (n + 63) / 64;
    std::vector<uint64_t> desc(n * words, 0);
    std::vector<uint64_t> anc(n * words, 0);
    const auto& topo = dag.TopoOrder();
    for (size_t i = topo.size(); i-- > 0;) {
      const uint32_t v = topo[i];
      desc[v * words + v / 64] |= uint64_t{1} << (v % 64);
      for (uint32_t w : dag.Out(v)) {
        for (size_t k = 0; k < words; ++k) {
          desc[v * words + k] |= desc[w * words + k];
        }
      }
    }
    for (const uint32_t v : topo) {
      anc[v * words + v / 64] |= uint64_t{1} << (v % 64);
      for (uint32_t w : dag.In(v)) {
        for (size_t k = 0; k < words; ++k) {
          anc[v * words + k] |= anc[w * words + k];
        }
      }
    }
    std::vector<uint64_t> score(n);
    for (uint32_t v = 0; v < n; ++v) {
      uint64_t d = 0, a = 0;
      for (size_t k = 0; k < words; ++k) {
        d += static_cast<uint64_t>(__builtin_popcountll(desc[v * words + k]));
        a += static_cast<uint64_t>(__builtin_popcountll(anc[v * words + k]));
      }
      score[v] = d * a;
    }
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return score[a] > score[b];
    });
  }

  SweepResult r = PrunedSweep(dag, order);

  TwoHopLabeling lab;
  lab.vertex_of_ = order;
  lab.rank_of_.resize(n);
  for (uint32_t rank = 0; rank < n; ++rank) lab.rank_of_[order[rank]] = rank;
  lab.Flatten(r.out_hubs, r.in_hubs);
  return lab;
}

Result<TwoHopLabeling> TwoHopLabeling::BuildRestricted(
    const Dag& dag, std::span<const uint32_t> keep, TwoHopOptions options) {
  const size_t n = dag.NumVertices();
  std::vector<uint8_t> keep_mask(n, 0);
  for (uint32_t v : keep) {
    if (v >= n) {
      return Status::InvalidArgument(
          "BuildRestricted: keep vertex " + std::to_string(v) +
          " out of range (DAG has " + std::to_string(n) + " vertices)");
    }
    keep_mask[v] = 1;
  }

  SARGUS_ASSIGN_OR_RETURN(TwoHopLabeling lab, Build(dag, options));

  // Re-flatten with non-keep lists dropped. The copies are transient;
  // the peak is one full labeling, the steady state |keep| lists.
  std::vector<std::vector<uint32_t>> out_h(n);
  std::vector<std::vector<uint32_t>> in_h(n);
  for (uint32_t v = 0; v < n; ++v) {
    if (!keep_mask[v]) continue;
    out_h[v].assign(lab.out_hubs_.begin() + lab.out_offsets_[v],
                    lab.out_hubs_.begin() + lab.out_offsets_[v + 1]);
    in_h[v].assign(lab.in_hubs_.begin() + lab.in_offsets_[v],
                   lab.in_hubs_.begin() + lab.in_offsets_[v + 1]);
  }
  lab.Flatten(out_h, in_h);
  // Drop the slack the full build left behind.
  lab.out_hubs_.shrink_to_fit();
  lab.in_hubs_.shrink_to_fit();
  return lab;
}

void TwoHopLabeling::Flatten(
    const std::vector<std::vector<uint32_t>>& out_hubs,
    const std::vector<std::vector<uint32_t>>& in_hubs) {
  const size_t n = out_hubs.size();
  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    out_offsets_[v + 1] =
        out_offsets_[v] + static_cast<uint32_t>(out_hubs[v].size());
    in_offsets_[v + 1] =
        in_offsets_[v] + static_cast<uint32_t>(in_hubs[v].size());
  }
  out_hubs_.clear();
  in_hubs_.clear();
  out_hubs_.reserve(out_offsets_.back());
  in_hubs_.reserve(in_offsets_.back());
  for (size_t v = 0; v < n; ++v) {
    out_hubs_.insert(out_hubs_.end(), out_hubs[v].begin(), out_hubs[v].end());
    in_hubs_.insert(in_hubs_.end(), in_hubs[v].begin(), in_hubs[v].end());
  }
}

namespace {

/// Common hub with rank strictly below `limit` in two rank-sorted lists —
/// the prefix coverage test the resumed sweeps prune on.
bool PrefixCovered(const std::vector<uint32_t>& a,
                   const std::vector<uint32_t>& b, uint32_t limit) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size() && a[i] < limit && b[j] < limit) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

/// Inserts `rank` into a rank-sorted hub list; returns false when it was
/// already present.
bool InsertSorted(std::vector<uint32_t>& hubs, uint32_t rank) {
  auto it = std::lower_bound(hubs.begin(), hubs.end(), rank);
  if (it != hubs.end() && *it == rank) return false;
  hubs.insert(it, rank);
  return true;
}

}  // namespace

TwoHopLabeling TwoHopLabeling::PatchInsertions(
    const TwoHopLabeling& prev, const Dag& new_dag, uint32_t old_num_vertices,
    std::span<const std::pair<uint32_t, uint32_t>> new_arcs) {
  const size_t n = new_dag.NumVertices();

  // Unpack into per-vertex lists; new vertices rank after every old one
  // (worst priority — they cannot displace established canonical hubs)
  // and start with their self-entries.
  std::vector<std::vector<uint32_t>> out_h(n);
  std::vector<std::vector<uint32_t>> in_h(n);
  for (uint32_t v = 0; v < old_num_vertices; ++v) {
    out_h[v].assign(prev.out_hubs_.begin() + prev.out_offsets_[v],
                    prev.out_hubs_.begin() + prev.out_offsets_[v + 1]);
    in_h[v].assign(prev.in_hubs_.begin() + prev.in_offsets_[v],
                   prev.in_hubs_.begin() + prev.in_offsets_[v + 1]);
  }
  TwoHopLabeling lab;
  lab.rank_of_ = prev.rank_of_;
  lab.vertex_of_ = prev.vertex_of_;
  lab.rank_of_.resize(n);
  lab.vertex_of_.resize(n);
  for (uint32_t v = old_num_vertices; v < n; ++v) {
    lab.rank_of_[v] = v;
    lab.vertex_of_[v] = v;
    out_h[v].push_back(v);
    in_h[v].push_back(v);
  }

  // One resumed, prefix-pruned BFS per (new arc, incident hub). Visiting
  // order over arcs and hubs does not affect correctness (see header):
  // every prune is justified by a strictly lower-ranked certificate,
  // whose existence would contradict the canonical hub's minimality.
  std::vector<uint8_t> seen(n, 0);
  std::vector<uint32_t> queue;
  std::vector<uint32_t> touched;
  std::vector<uint32_t> hubs;
  for (const auto& [x, y] : new_arcs) {
    auto resume = [&](bool forward) {
      const uint32_t start = forward ? y : x;
      // Snapshot: the pass below may grow other vertices' lists but
      // never this one's (that would require a cycle through the arc).
      hubs = forward ? in_h[x] : out_h[y];
      for (const uint32_t h : hubs) {
        const uint32_t hv = lab.vertex_of_[h];
        queue.clear();
        touched.clear();
        // The start vertex is enqueued unconditionally; coverage is
        // checked when dequeued, like every other vertex.
        queue.push_back(start);
        seen[start] = 1;
        touched.push_back(start);
        for (size_t head = 0; head < queue.size(); ++head) {
          const uint32_t v = queue[head];
          const bool covered =
              forward ? PrefixCovered(out_h[hv], in_h[v], h)
                      : PrefixCovered(out_h[v], in_h[hv], h);
          if (covered) continue;  // prune: no entry, no descent
          // Insert (a duplicate means another pass already carried this
          // hub here; keep descending — its descent may have been
          // resumed from a different frontier).
          (void)InsertSorted(forward ? in_h[v] : out_h[v], h);
          for (uint32_t w : forward ? new_dag.Out(v) : new_dag.In(v)) {
            if (!seen[w]) {
              seen[w] = 1;
              touched.push_back(w);
              queue.push_back(w);
            }
          }
        }
        for (uint32_t v : touched) seen[v] = 0;
      }
    };
    resume(/*forward=*/true);
    resume(/*forward=*/false);
  }

  lab.Flatten(out_h, in_h);
  return lab;
}

bool TwoHopLabeling::Reachable(uint32_t u, uint32_t v) const {
  if (u == v) return true;
  const uint32_t* a = out_hubs_.data() + out_offsets_[u];
  const uint32_t* a_end = out_hubs_.data() + out_offsets_[u + 1];
  const uint32_t* b = in_hubs_.data() + in_offsets_[v];
  const uint32_t* b_end = in_hubs_.data() + in_offsets_[v + 1];
  while (a != a_end && b != b_end) {
    if (*a == *b) return true;
    if (*a < *b) {
      ++a;
    } else {
      ++b;
    }
  }
  return false;
}

}  // namespace sargus
