#include "index/two_hop.h"

#include <algorithm>
#include <numeric>

namespace sargus {
namespace {

/// Pruned landmark sweep in the given vertex order. Produces per-vertex
/// hub lists containing hub *ranks* (position in `order`), which keeps the
/// lists sorted by insertion and makes intersection a sorted merge.
struct SweepResult {
  std::vector<std::vector<uint32_t>> out_hubs;  // hubs x with v ->* x
  std::vector<std::vector<uint32_t>> in_hubs;   // hubs x with x ->* v
};

bool HubQuery(const SweepResult& r, uint32_t u, uint32_t v) {
  if (u == v) return true;
  const auto& a = r.out_hubs[u];
  const auto& b = r.in_hubs[v];
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

SweepResult PrunedSweep(const Dag& dag, const std::vector<uint32_t>& order) {
  const size_t n = dag.NumVertices();
  SweepResult r;
  r.out_hubs.resize(n);
  r.in_hubs.resize(n);
  std::vector<uint32_t> queue;
  std::vector<uint8_t> seen(n, 0);
  std::vector<uint32_t> touched;

  for (uint32_t rank = 0; rank < n; ++rank) {
    const uint32_t hub = order[rank];

    // Forward BFS from hub: vertices v with hub ->* v get hub in Lin(v),
    // unless an earlier hub already certifies hub ->* v.
    auto sweep = [&](bool forward) {
      queue.clear();
      touched.clear();
      queue.push_back(hub);
      seen[hub] = 1;
      touched.push_back(hub);
      for (size_t head = 0; head < queue.size(); ++head) {
        const uint32_t v = queue[head];
        // Pruning: if existing labels already witness the hub-v relation,
        // neither v nor anything below it needs this hub.
        if (v != hub) {
          const bool covered = forward ? HubQuery(r, hub, v)
                                       : HubQuery(r, v, hub);
          if (covered) continue;
          if (forward) {
            r.in_hubs[v].push_back(rank);
          } else {
            r.out_hubs[v].push_back(rank);
          }
        }
        for (uint32_t w : forward ? dag.Out(v) : dag.In(v)) {
          if (!seen[w]) {
            seen[w] = 1;
            touched.push_back(w);
            queue.push_back(w);
          }
        }
      }
      for (uint32_t v : touched) seen[v] = 0;
    };
    sweep(/*forward=*/true);
    sweep(/*forward=*/false);
    // The hub reaches itself both ways.
    r.out_hubs[hub].push_back(rank);
    r.in_hubs[hub].push_back(rank);
  }
  return r;
}

}  // namespace

Result<TwoHopLabeling> TwoHopLabeling::Build(const Dag& dag,
                                             TwoHopOptions options) {
  const size_t n = dag.NumVertices();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  if (options.strategy == TwoHopStrategy::kPrunedLandmark) {
    // Rank by degree sum, descending — a cheap centrality proxy.
    std::vector<uint64_t> score(n);
    for (uint32_t v = 0; v < n; ++v) {
      score[v] = dag.Out(v).size() + dag.In(v).size();
    }
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return score[a] > score[b];
    });
  } else {
    if (n > options.max_vertices_for_greedy) {
      return Status::ResourceExhausted(
          "greedy max-cover 2-hop: DAG has " + std::to_string(n) +
          " vertices, cap is " +
          std::to_string(options.max_vertices_for_greedy));
    }
    // Exact |descendants| x |ancestors| scores via bitset closure in
    // reverse topological order.
    const size_t words = (n + 63) / 64;
    std::vector<uint64_t> desc(n * words, 0);
    std::vector<uint64_t> anc(n * words, 0);
    const auto& topo = dag.TopoOrder();
    for (size_t i = topo.size(); i-- > 0;) {
      const uint32_t v = topo[i];
      desc[v * words + v / 64] |= uint64_t{1} << (v % 64);
      for (uint32_t w : dag.Out(v)) {
        for (size_t k = 0; k < words; ++k) {
          desc[v * words + k] |= desc[w * words + k];
        }
      }
    }
    for (const uint32_t v : topo) {
      anc[v * words + v / 64] |= uint64_t{1} << (v % 64);
      for (uint32_t w : dag.In(v)) {
        for (size_t k = 0; k < words; ++k) {
          anc[v * words + k] |= anc[w * words + k];
        }
      }
    }
    std::vector<uint64_t> score(n);
    for (uint32_t v = 0; v < n; ++v) {
      uint64_t d = 0, a = 0;
      for (size_t k = 0; k < words; ++k) {
        d += static_cast<uint64_t>(__builtin_popcountll(desc[v * words + k]));
        a += static_cast<uint64_t>(__builtin_popcountll(anc[v * words + k]));
      }
      score[v] = d * a;
    }
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return score[a] > score[b];
    });
  }

  SweepResult r = PrunedSweep(dag, order);

  TwoHopLabeling lab;
  lab.out_offsets_.assign(n + 1, 0);
  lab.in_offsets_.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    lab.out_offsets_[v + 1] =
        lab.out_offsets_[v] + static_cast<uint32_t>(r.out_hubs[v].size());
    lab.in_offsets_[v + 1] =
        lab.in_offsets_[v] + static_cast<uint32_t>(r.in_hubs[v].size());
  }
  lab.out_hubs_.reserve(lab.out_offsets_.back());
  lab.in_hubs_.reserve(lab.in_offsets_.back());
  for (size_t v = 0; v < n; ++v) {
    lab.out_hubs_.insert(lab.out_hubs_.end(), r.out_hubs[v].begin(),
                         r.out_hubs[v].end());
    lab.in_hubs_.insert(lab.in_hubs_.end(), r.in_hubs[v].begin(),
                        r.in_hubs[v].end());
  }
  return lab;
}

bool TwoHopLabeling::Reachable(uint32_t u, uint32_t v) const {
  if (u == v) return true;
  const uint32_t* a = out_hubs_.data() + out_offsets_[u];
  const uint32_t* a_end = out_hubs_.data() + out_offsets_[u + 1];
  const uint32_t* b = in_hubs_.data() + in_offsets_[v];
  const uint32_t* b_end = in_hubs_.data() + in_offsets_[v + 1];
  while (a != a_end && b != b_end) {
    if (*a == *b) return true;
    if (*a < *b) {
      ++a;
    } else {
      ++b;
    }
  }
  return false;
}

}  // namespace sargus
