#ifndef SARGUS_INDEX_LINE_ORACLE_H_
#define SARGUS_INDEX_LINE_ORACLE_H_

/// \file line_oracle.h
/// \brief LineReachabilityOracle: constant-ish-time reachability between
/// line-graph vertices.
///
/// Pipeline (the paper's §4 construction, one stage per bench in
/// bench_index_build.cc):
///
///   line graph --SCC--> condensation DAG --> interval labels (GRAIL)
///                                        \-> 2-hop labels (pruned landmark)
///
/// Queries map both line vertices to their DAG components and answer
/// within-component immediately; across components either the 2-hop labels
/// (exact, default) or interval-filtered pruned DFS (exact; fast negatives)
/// decide, selected by OracleMode per call so the ablation bench can pit
/// them against each other on identical structures.

#include <cstdint>
#include <memory>
#include <optional>

#include "common/result.h"
#include "graph/line_graph.h"
#include "index/intervals.h"
#include "index/scc.h"
#include "index/two_hop.h"

namespace sargus {

namespace storage {
struct StorageAccess;
}

enum class OracleMode { kTwoHop, kIntervals };

class LineReachabilityOracle {
 public:
  struct Options {
    TwoHopOptions two_hop;
    uint64_t interval_seed = 0x5eed;
  };

  /// Builds the full SCC -> DAG -> (intervals, 2-hop) stack over `lg`.
  static Result<LineReachabilityOracle> Build(const LineGraph& lg,
                                              Options options);
  static Result<LineReachabilityOracle> Build(const LineGraph& lg) {
    return Build(lg, Options{});
  }

  /// Incremental build for an insertion-only delta: `lg` must be
  /// LineGraph::BuildIncremental of prev's line graph — old vertex ids
  /// preserved, new vertices appended from `first_new_vertex`. Skips
  /// the two implicit-arc enumerations (Tarjan + condensation) and the
  /// full label sweep: each new line vertex becomes its own condensation
  /// vertex, the DAG is extended with the arcs it induces, intervals are
  /// re-labeled (linear), and the 2-hop labels are patched
  /// (TwoHopLabeling::PatchInsertions). Returns nullopt — caller falls
  /// back to a full Build — when an inserted edge closes a cycle in the
  /// line graph (the appended-singleton-component assumption breaks:
  /// existing SCCs would have to merge).
  static std::optional<LineReachabilityOracle> BuildIncremental(
      const LineReachabilityOracle& prev, const LineGraph& lg,
      LineVertexId first_new_vertex, Options options);

  /// Exact line-graph reachability u ->* v (u == v counts as reachable).
  bool Reachable(LineVertexId u, LineVertexId v) const {
    return ReachableVia(u, v, OracleMode::kTwoHop);
  }

  bool ReachableVia(LineVertexId u, LineVertexId v, OracleMode mode) const;

  /// Component-level reachability (cu, cv are DAG vertices).
  bool ComponentReachable(uint32_t cu, uint32_t cv, OracleMode mode) const;

  uint32_t ComponentOf(LineVertexId v) const {
    return scc_.component_of[v];
  }

  const SccResult& scc() const { return scc_; }
  const Dag& dag() const { return dag_; }
  const TwoHopLabeling* two_hop() const { return &two_hop_; }
  const IntervalIndex* intervals() const { return &intervals_; }

  size_t MemoryBytes() const {
    return scc_.component_of.capacity() * sizeof(uint32_t) +
           dag_.MemoryBytes() + intervals_.MemoryBytes() +
           two_hop_.MemoryBytes();
  }

 private:
  friend struct storage::StorageAccess;

  SccResult scc_;
  Dag dag_;
  IntervalIndex intervals_;
  TwoHopLabeling two_hop_;
};

}  // namespace sargus

#endif  // SARGUS_INDEX_LINE_ORACLE_H_
