#include "index/base_tables.h"

#include <algorithm>

namespace sargus {

BaseTables BaseTables::Build(const LineGraph& lg) {
  BaseTables tables;
  size_t max_label = 0;
  for (LineVertexId v = 0; v < lg.NumVertices(); ++v) {
    max_label = std::max<size_t>(max_label, lg.vertex(v).label);
  }
  if (lg.NumVertices() > 0) {
    tables.tables_.resize(2 * (max_label + 1));
  }
  for (LineVertexId v = 0; v < lg.NumVertices(); ++v) {
    const LineGraph::Vertex& lv = lg.vertex(v);
    tables.tables_[2 * lv.label + (lv.backward ? 1 : 0)].push_back(
        Row{v, lv.tail, lv.head});
  }
  for (auto& t : tables.tables_) {
    std::sort(t.begin(), t.end(), [](const Row& a, const Row& b) {
      return a.tail != b.tail ? a.tail < b.tail : a.line < b.line;
    });
  }
  return tables;
}

std::span<const BaseTables::Row> BaseTables::Rows(LabelId label,
                                                  bool backward) const {
  const size_t idx = 2 * static_cast<size_t>(label) + (backward ? 1 : 0);
  if (label == kInvalidLabel || idx >= tables_.size()) return {};
  return tables_[idx];
}

}  // namespace sargus
