#include "index/scc.h"

#include <algorithm>

namespace sargus {

Dag Dag::FromArcs(uint32_t num_vertices,
                  std::vector<std::pair<uint32_t, uint32_t>> arcs) {
  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());

  Dag dag;
  dag.num_vertices_ = num_vertices;
  dag.fwd_offsets_.assign(num_vertices + 1, 0);
  dag.bwd_offsets_.assign(num_vertices + 1, 0);
  for (const auto& [u, v] : arcs) {
    ++dag.fwd_offsets_[u + 1];
    ++dag.bwd_offsets_[v + 1];
  }
  for (uint32_t i = 0; i < num_vertices; ++i) {
    dag.fwd_offsets_[i + 1] += dag.fwd_offsets_[i];
    dag.bwd_offsets_[i + 1] += dag.bwd_offsets_[i];
  }
  dag.fwd_arcs_.resize(arcs.size());
  dag.bwd_arcs_.resize(arcs.size());
  std::vector<uint32_t> fcur(dag.fwd_offsets_.begin(),
                             dag.fwd_offsets_.end() - 1);
  std::vector<uint32_t> bcur(dag.bwd_offsets_.begin(),
                             dag.bwd_offsets_.end() - 1);
  for (const auto& [u, v] : arcs) {
    dag.fwd_arcs_[fcur[u]++] = v;
    dag.bwd_arcs_[bcur[v]++] = u;
  }

  // Kahn topological order.
  std::vector<uint32_t> indegree(num_vertices, 0);
  for (const auto& [u, v] : arcs) ++indegree[v];
  dag.topo_order_.reserve(num_vertices);
  for (uint32_t v = 0; v < num_vertices; ++v) {
    if (indegree[v] == 0) dag.topo_order_.push_back(v);
  }
  for (size_t head = 0; head < dag.topo_order_.size(); ++head) {
    const uint32_t u = dag.topo_order_[head];
    for (uint32_t v : dag.Out(u)) {
      if (--indegree[v] == 0) dag.topo_order_.push_back(v);
    }
  }
  return dag;
}

SccResult ComputeScc(const LineGraph& lg) {
  return ComputeSccGeneric(
      lg.NumVertices(), [&lg](uint32_t v, auto&& emit) {
        for (LineVertexId w : lg.VerticesWithTail(lg.vertex(v).head)) {
          emit(w);
        }
      });
}

Dag BuildCondensation(const SccResult& scc, const LineGraph& lg) {
  std::vector<std::pair<uint32_t, uint32_t>> arcs;
  // Compact duplicates whenever the buffer doubles past the last compaction
  // to keep peak memory near the deduplicated arc count rather than the
  // (possibly quadratic) implicit arc count.
  size_t compact_watermark = 1 << 20;
  auto compact = [&arcs]() {
    std::sort(arcs.begin(), arcs.end());
    arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
  };
  for (LineVertexId v = 0; v < lg.NumVertices(); ++v) {
    const uint32_t cu = scc.component_of[v];
    for (LineVertexId w : lg.VerticesWithTail(lg.vertex(v).head)) {
      const uint32_t cw = scc.component_of[w];
      if (cu != cw) arcs.emplace_back(cu, cw);
    }
    if (arcs.size() >= compact_watermark) {
      compact();
      compact_watermark = std::max(compact_watermark, arcs.size() * 2);
    }
  }
  return Dag::FromArcs(scc.num_components, std::move(arcs));
}

}  // namespace sargus
