#ifndef SARGUS_INDEX_BASE_TABLES_H_
#define SARGUS_INDEX_BASE_TABLES_H_

/// \file base_tables.h
/// \brief Per-label relations over line vertices — the base tables of the
/// paper's join-based evaluation (§3.3).
///
/// For each (label, orientation) the table lists every line vertex with
/// that label as a (line vertex, tail, head) row, sorted by tail. The
/// faithful join evaluator scans these and joins consecutive steps; the
/// selectivity bench reads row counts to show the tables shrink as the
/// label alphabet grows.

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "graph/line_graph.h"

namespace sargus {

namespace storage {
struct StorageAccess;
}

class BaseTables {
 public:
  struct Row {
    LineVertexId line = 0;
    NodeId tail = 0;
    NodeId head = 0;
  };

  BaseTables() = default;

  static BaseTables Build(const LineGraph& lg);

  /// Rows for `label` in the given orientation; empty for unknown labels.
  std::span<const Row> Rows(LabelId label, bool backward = false) const;

  size_t NumOrientedTables() const { return tables_.size(); }

  size_t MemoryBytes() const {
    size_t bytes = tables_.capacity() * sizeof(std::vector<Row>);
    for (const auto& t : tables_) bytes += t.capacity() * sizeof(Row);
    return bytes;
  }

 private:
  friend struct storage::StorageAccess;

  // Index 2*label + (backward ? 1 : 0).
  std::vector<std::vector<Row>> tables_;
};

}  // namespace sargus

#endif  // SARGUS_INDEX_BASE_TABLES_H_
