#include "index/transitive_closure.h"

#include <numeric>

#include "index/scc.h"

namespace sargus {
namespace {

/// Union-find over nodes for the undirected variant.
struct Dsu {
  explicit Dsu(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0u);
  }
  uint32_t Find(uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent[b] = a;
  }
  std::vector<uint32_t> parent;
};

}  // namespace

TransitiveClosure TransitiveClosure::Build(const CsrSnapshot& csr,
                                           bool as_undirected) {
  TransitiveClosure tc;
  tc.undirected_ = as_undirected;
  const size_t n = csr.NumNodes();

  if (as_undirected) {
    Dsu dsu(n);
    for (NodeId u = 0; u < n; ++u) {
      for (const auto& e : csr.Out(u)) dsu.Union(u, e.other);
    }
    // Renumber roots densely.
    std::vector<uint32_t> dense(n, UINT32_MAX);
    tc.component_of_.resize(n);
    for (NodeId u = 0; u < n; ++u) {
      const uint32_t root = dsu.Find(u);
      if (dense[root] == UINT32_MAX) {
        dense[root] = tc.num_components_++;
        tc.component_size_.push_back(0);
      }
      tc.component_of_[u] = dense[root];
      ++tc.component_size_[dense[root]];
    }
    for (const uint32_t size : tc.component_size_) {
      tc.reachable_pairs_ += static_cast<uint64_t>(size) * (size - 1);
    }
    return tc;
  }

  // Directed: SCC condensation, then bitset rows propagated in reverse
  // topological order (successors before predecessors).
  SccResult scc = ComputeSccGeneric(n, [&csr](uint32_t v, auto&& emit) {
    for (const auto& e : csr.Out(v)) emit(e.other);
  });
  tc.component_of_ = std::move(scc.component_of);
  tc.num_components_ = scc.num_components;
  tc.component_size_.assign(tc.num_components_, 0);
  for (NodeId u = 0; u < n; ++u) ++tc.component_size_[tc.component_of_[u]];

  std::vector<std::pair<uint32_t, uint32_t>> arcs;
  for (NodeId u = 0; u < n; ++u) {
    const uint32_t cu = tc.component_of_[u];
    for (const auto& e : csr.Out(u)) {
      const uint32_t cv = tc.component_of_[e.other];
      if (cu != cv) arcs.emplace_back(cu, cv);
    }
  }
  Dag dag = Dag::FromArcs(tc.num_components_, std::move(arcs));

  const size_t c = tc.num_components_;
  tc.words_ = (c + 63) / 64;
  tc.reach_.assign(c * tc.words_, 0);
  const auto& topo = dag.TopoOrder();
  for (size_t i = topo.size(); i-- > 0;) {
    const uint32_t v = topo[i];
    uint64_t* row = tc.reach_.data() + static_cast<size_t>(v) * tc.words_;
    row[v / 64] |= uint64_t{1} << (v % 64);
    for (uint32_t w : dag.Out(v)) {
      const uint64_t* wrow =
          tc.reach_.data() + static_cast<size_t>(w) * tc.words_;
      for (size_t k = 0; k < tc.words_; ++k) row[k] |= wrow[k];
    }
  }

  // Reachable ordered pairs: sum over components of
  // size(cu) * (total size of reachable components) minus the |V| self
  // pairs (every node reaches itself through its own component bit).
  for (size_t cu = 0; cu < c; ++cu) {
    const uint64_t* row = tc.reach_.data() + cu * tc.words_;
    uint64_t reach_nodes = 0;
    for (size_t k = 0; k < tc.words_; ++k) {
      uint64_t bits = row[k];
      while (bits) {
        const int b = __builtin_ctzll(bits);
        bits &= bits - 1;
        reach_nodes += tc.component_size_[k * 64 + b];
      }
    }
    tc.reachable_pairs_ +=
        static_cast<uint64_t>(tc.component_size_[cu]) * reach_nodes;
  }
  tc.reachable_pairs_ -= n;
  return tc;
}

}  // namespace sargus
