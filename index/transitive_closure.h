#ifndef SARGUS_INDEX_TRANSITIVE_CLOSURE_H_
#define SARGUS_INDEX_TRANSITIVE_CLOSURE_H_

/// \file transitive_closure.h
/// \brief Label-blind node-level transitive closure.
///
/// The baseline the paper argues *against*: O(1) lookups bought with
/// O(|V|*|E|) construction and worst-case quadratic storage
/// (bench_closure_cost.cc charts exactly that blow-up on DAG-like
/// graphs). It ignores labels, hop bounds and orientation constraints, so
/// it cannot answer an access condition by itself — but as a prefilter it
/// gives certain fast denies: no path at all implies no labeled path
/// (ClosurePrefilterEvaluator).
///
/// Storage is SCC-compressed: a bitset matrix over condensation
/// components, so graphs with a giant SCC (high reciprocity) collapse to
/// almost nothing while DAG-like graphs exhibit the quadratic cost.

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/csr.h"

namespace sargus {

namespace storage {
struct StorageAccess;
}

class TransitiveClosure {
 public:
  TransitiveClosure() = default;

  /// Builds over the node graph of `csr`. With `as_undirected`, edges are
  /// treated as symmetric (connected components; the sound prefilter for
  /// expressions with backward steps).
  static TransitiveClosure Build(const CsrSnapshot& csr, bool as_undirected);

  /// Is there any directed (resp. undirected) path u ->* v? u == v is
  /// reachable.
  bool Reachable(NodeId u, NodeId v) const {
    if (u >= component_of_.size() || v >= component_of_.size()) return false;
    const uint32_t cu = component_of_[u];
    const uint32_t cv = component_of_[v];
    if (cu == cv) return true;
    if (undirected_) return false;
    return (reach_[static_cast<size_t>(cu) * words_ + cv / 64] >>
            (cv % 64)) & 1;
  }

  size_t NumComponents() const { return num_components_; }

  /// Number of nodes of the snapshot the closure was built over.
  size_t NumNodes() const { return component_of_.size(); }

  /// Ordered pairs (u, v), u != v, with v reachable from u.
  uint64_t NumReachablePairs() const { return reachable_pairs_; }

  bool is_undirected() const { return undirected_; }

  size_t MemoryBytes() const {
    return component_of_.capacity() * sizeof(uint32_t) +
           reach_.capacity() * sizeof(uint64_t) +
           component_size_.capacity() * sizeof(uint32_t);
  }

 private:
  friend struct storage::StorageAccess;

  bool undirected_ = false;
  uint32_t num_components_ = 0;
  size_t words_ = 0;  // bitset row width in 64-bit words
  uint64_t reachable_pairs_ = 0;
  std::vector<uint32_t> component_of_;
  std::vector<uint32_t> component_size_;
  std::vector<uint64_t> reach_;  // row-major component x component bits
};

}  // namespace sargus

#endif  // SARGUS_INDEX_TRANSITIVE_CLOSURE_H_
