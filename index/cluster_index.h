#ifndef SARGUS_INDEX_CLUSTER_INDEX_H_
#define SARGUS_INDEX_CLUSTER_INDEX_H_

/// \file cluster_index.h
/// \brief ClusterJoinIndex: the paper's clustered join access structure.
///
/// Line vertices are clustered by (label, orientation, tail node); each
/// non-empty cluster has a center (its first member) and the W-tables map
/// a cluster key straight to its member list. A join step "extend the
/// frontier by one `label` hop from node u" is then a single cluster
/// lookup instead of a scan of the label's whole base table.
///
/// On top of the clusters, Build derives a label-pair reachability summary
/// from the oracle's condensation DAG: label A can precede label B in some
/// path iff some A-cluster member reaches some B-cluster member. The join
/// evaluator uses it to discard infeasible concrete label sequences before
/// generating a single tuple.

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "graph/line_graph.h"
#include "index/line_oracle.h"

namespace sargus {

namespace storage {
struct StorageAccess;
}

class ClusterJoinIndex {
 public:
  ClusterJoinIndex() = default;

  static Result<ClusterJoinIndex> Build(const LineGraph& lg,
                                        const LineReachabilityOracle& oracle);

  /// Members of cluster (label, orientation, tail=node): the line vertices
  /// a frontier at `node` extends through for one hop of `label`.
  std::span<const LineVertexId> Cluster(LabelId label, bool backward,
                                        NodeId node) const;

  /// Number of non-empty clusters (centers).
  size_t NumCenters() const { return num_centers_; }

  /// May an edge of (label a, orientation) precede — via any number of
  /// line-graph arcs — an edge of (label b, orientation)? Sound prune:
  /// false means no concrete sequence pairing them can match.
  bool LabelPairReachable(LabelId a, bool a_backward, LabelId b,
                          bool b_backward) const;

  size_t MemoryBytes() const {
    return offsets_.capacity() * sizeof(uint32_t) +
           members_.capacity() * sizeof(LineVertexId) +
           label_reach_.capacity() + centers_.capacity() * sizeof(LineVertexId);
  }

 private:
  friend struct storage::StorageAccess;

  size_t OrientedLabelCount() const { return num_oriented_labels_; }
  size_t BucketIndex(LabelId label, bool backward, NodeId node) const {
    return (2 * static_cast<size_t>(label) + (backward ? 1 : 0)) *
               num_nodes_ +
           node;
  }

  size_t num_nodes_ = 0;
  size_t num_oriented_labels_ = 0;  // 2 * (max label + 1)
  size_t num_centers_ = 0;
  // Bucketed members: offsets_ has num_oriented_labels_ * num_nodes_ + 1
  // entries; members_ lists line vertices sorted by bucket.
  std::vector<uint32_t> offsets_{0};
  std::vector<LineVertexId> members_;
  // One center per non-empty bucket, in bucket order (diagnostic).
  std::vector<LineVertexId> centers_;
  // Row-major oriented-label pair matrix.
  std::vector<uint8_t> label_reach_;
};

}  // namespace sargus

#endif  // SARGUS_INDEX_CLUSTER_INDEX_H_
