#ifndef SARGUS_INDEX_INTERVALS_H_
#define SARGUS_INDEX_INTERVALS_H_

/// \file intervals.h
/// \brief GRAIL-style interval labels over the condensation DAG.
///
/// Each of K randomized post-order traversals assigns every DAG vertex an
/// interval [low, post]; a vertex u can only reach v if u's interval
/// contains v's in *every* traversal. Containment is a necessary — not
/// sufficient — condition, so interval labels are a filter: the oracle
/// pairs them with a pruned DFS for exact answers (OracleMode::kIntervals),
/// or skips the DFS entirely when any traversal refutes containment (the
/// common negative case).

#include <cstdint>
#include <vector>

#include "index/scc.h"

namespace sargus {

namespace storage {
struct StorageAccess;
}

/// Interval labels for one direction (descendants or ancestors).
class IntervalLabeling {
 public:
  static constexpr uint32_t kTraversals = 3;

  /// Labels of the DAG reached-from relation. `reversed` labels the
  /// transposed DAG (ancestor intervals).
  static IntervalLabeling Build(const Dag& dag, bool reversed, uint64_t seed);

  /// Necessary condition for u ->* v.
  bool MayReach(uint32_t u, uint32_t v) const {
    for (uint32_t k = 0; k < kTraversals; ++k) {
      const Interval& iu = intervals_[u * kTraversals + k];
      const Interval& iv = intervals_[v * kTraversals + k];
      if (iv.low < iu.low || iv.post > iu.post) return false;
    }
    return true;
  }

  uint64_t TotalIntervals() const {
    return intervals_.size();
  }

  size_t MemoryBytes() const {
    return intervals_.capacity() * sizeof(Interval);
  }

 private:
  friend struct storage::StorageAccess;

  struct Interval {
    uint32_t low = 0;
    uint32_t post = 0;
  };
  std::vector<Interval> intervals_;  // kTraversals per vertex
};

/// Forward (descendant) and backward (ancestor) labelings, as a pair —
/// the shape the oracle and the construction benches consume.
struct IntervalIndex {
  IntervalLabeling forward;
  IntervalLabeling backward;

  static IntervalIndex Build(const Dag& dag, uint64_t seed = 0x5eed);

  size_t MemoryBytes() const {
    return forward.MemoryBytes() + backward.MemoryBytes();
  }
};

}  // namespace sargus

#endif  // SARGUS_INDEX_INTERVALS_H_
