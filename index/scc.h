#ifndef SARGUS_INDEX_SCC_H_
#define SARGUS_INDEX_SCC_H_

/// \file scc.h
/// \brief Strongly connected components and DAG condensation.
///
/// First stage of the paper's index pipeline: every reachability oracle in
/// sargus works on the condensation DAG, where mutually reachable vertices
/// (reciprocal friendships create many) collapse into one vertex. The SCC
/// routine is an iterative Tarjan templated on an adjacency callback so the
/// same code runs over the implicit line graph and over plain CSR node
/// graphs (TransitiveClosure).

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "graph/line_graph.h"

namespace sargus {

namespace storage {
struct StorageAccess;
}

struct SccResult {
  /// Component of each input vertex. Components are numbered in reverse
  /// topological order of the condensation (an arc u->v between different
  /// components implies component_of[u] < ... is NOT guaranteed; use
  /// Dag::TopoOrder).
  std::vector<uint32_t> component_of;
  uint32_t num_components = 0;
};

/// Condensation DAG with both arc directions and a topological order.
class Dag {
 public:
  size_t NumVertices() const { return num_vertices_; }
  uint64_t NumArcs() const { return fwd_arcs_.size(); }

  std::span<const uint32_t> Out(uint32_t v) const {
    return {fwd_arcs_.data() + fwd_offsets_[v],
            fwd_offsets_[v + 1] - fwd_offsets_[v]};
  }
  std::span<const uint32_t> In(uint32_t v) const {
    return {bwd_arcs_.data() + bwd_offsets_[v],
            bwd_offsets_[v + 1] - bwd_offsets_[v]};
  }

  /// Vertices ordered so every arc goes from an earlier to a later entry.
  const std::vector<uint32_t>& TopoOrder() const { return topo_order_; }

  size_t MemoryBytes() const {
    return (fwd_offsets_.capacity() + bwd_offsets_.capacity() +
            topo_order_.capacity()) *
               sizeof(uint32_t) +
           (fwd_arcs_.capacity() + bwd_arcs_.capacity()) * sizeof(uint32_t);
  }

  /// Builds from an explicit (deduplicated) arc list.
  static Dag FromArcs(uint32_t num_vertices,
                      std::vector<std::pair<uint32_t, uint32_t>> arcs);

 private:
  friend struct storage::StorageAccess;

  size_t num_vertices_ = 0;
  std::vector<uint32_t> fwd_offsets_{0};
  std::vector<uint32_t> fwd_arcs_;
  std::vector<uint32_t> bwd_offsets_{0};
  std::vector<uint32_t> bwd_arcs_;
  std::vector<uint32_t> topo_order_;
};

/// Iterative Tarjan over an arbitrary adjacency relation.
/// `for_each_succ(v, fn)` must invoke `fn(w)` for every successor w of v.
template <typename ForEachSucc>
SccResult ComputeSccGeneric(size_t n, ForEachSucc&& for_each_succ);

/// SCCs of the (implicit) line graph.
SccResult ComputeScc(const LineGraph& lg);

/// Condenses the line graph under `scc` into its DAG.
Dag BuildCondensation(const SccResult& scc, const LineGraph& lg);

// ---- template implementation ------------------------------------------------

template <typename ForEachSucc>
SccResult ComputeSccGeneric(size_t n, ForEachSucc&& for_each_succ) {
  SccResult result;
  result.component_of.assign(n, UINT32_MAX);
  if (n == 0) return result;

  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<uint8_t> on_stack(n, 0);
  std::vector<uint32_t> stack;      // Tarjan stack
  std::vector<uint32_t> succ_buf;   // successors of the frame being opened

  struct Frame {
    uint32_t v;
    uint32_t succ_begin;  // into succ_storage
    uint32_t succ_end;
    uint32_t next;  // cursor into [succ_begin, succ_end)
  };
  std::vector<Frame> frames;
  std::vector<uint32_t> succ_storage;
  uint32_t next_index = 0;

  auto open_frame = [&](uint32_t v) {
    index[v] = lowlink[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = 1;
    const uint32_t begin = static_cast<uint32_t>(succ_storage.size());
    for_each_succ(v, [&](uint32_t w) { succ_storage.push_back(w); });
    frames.push_back(
        Frame{v, begin, static_cast<uint32_t>(succ_storage.size()), begin});
  };

  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    open_frame(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next < f.succ_end) {
        const uint32_t w = succ_storage[f.next++];
        if (index[w] == kUnvisited) {
          open_frame(w);  // may invalidate f; loop re-reads frames.back()
        } else if (on_stack[w]) {
          if (index[w] < lowlink[f.v]) lowlink[f.v] = index[w];
        }
        continue;
      }
      // Frame finished: pop component if root, propagate lowlink.
      const uint32_t v = f.v;
      if (lowlink[v] == index[v]) {
        const uint32_t comp = result.num_components++;
        for (;;) {
          const uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          result.component_of[w] = comp;
          if (w == v) break;
        }
      }
      succ_storage.resize(f.succ_begin);
      frames.pop_back();
      if (!frames.empty()) {
        Frame& parent = frames.back();
        if (lowlink[v] < lowlink[parent.v]) lowlink[parent.v] = lowlink[v];
      }
    }
  }
  return result;
}

}  // namespace sargus

#endif  // SARGUS_INDEX_SCC_H_
