#ifndef SARGUS_INDEX_TWO_HOP_H_
#define SARGUS_INDEX_TWO_HOP_H_

/// \file two_hop.h
/// \brief Exact 2-hop reachability labels over the condensation DAG.
///
/// Every vertex u stores Lout(u) = {hubs x : u ->* x} and
/// Lin(u) = {hubs x : x ->* u}; then u ->* v iff u == v or
/// Lout(u) ∩ Lin(v) ≠ ∅. Two construction strategies, ablated in
/// bench_ablation.cc:
///
///  * kPrunedLandmark — pruned landmark labeling (Akiba-style): sweep
///    vertices in a degree-driven order, BFS forward/backward, prune any
///    vertex whose reachability is already witnessed by earlier hubs.
///    Scales to every graph the suite generates.
///  * kGreedyMaxCover — Cheng-style greedy cover approximation: computes
///    exact descendant/ancestor counts via bitset closure (hence the
///    max_vertices_for_greedy guard) and runs the pruned sweep in
///    decreasing |ancestors|x|descendants| order, the classic max-cover
///    surrogate. Smaller labelings, much costlier construction.
///
/// The labeling also supports **incremental insertion maintenance**
/// (PatchInsertions): when the DAG grows by appended vertices and arcs —
/// the shape an insertion-only overlay compaction produces — the labels
/// are patched with resumed, prefix-pruned BFS passes instead of a full
/// re-sweep. Correctness rests on the canonical-hub invariant the
/// pruned sweep establishes: for every reachable pair (u, v), the
/// minimum-rank vertex m on any u→v path satisfies m ∈ Lout(u) ∩
/// Lin(v). Each new arc (x, y) resumes one BFS per hub of Lin(x)
/// forward from y (adding the hub to Lin of everything reached) and per
/// hub of Lout(y) backward from x, pruning a branch only when a
/// *strictly lower-ranked* common hub already certifies the pair — the
/// same prefix rule the static sweep applies implicitly, which is what
/// preserves the invariant (a prune below the canonical hub m would
/// exhibit a path vertex ranked below m, contradicting minimality).
/// New vertices are ranked after all existing ones and seeded with
/// self-entries. Deletions are not patchable (reachability shrinks;
/// labels only over-approximate) — callers fall back to Build.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/result.h"
#include "index/scc.h"

namespace sargus {

namespace storage {
struct StorageAccess;
}

enum class TwoHopStrategy { kPrunedLandmark, kGreedyMaxCover };

struct TwoHopOptions {
  TwoHopStrategy strategy = TwoHopStrategy::kPrunedLandmark;
  /// kGreedyMaxCover materializes an n^2-bit closure; refuse beyond this.
  size_t max_vertices_for_greedy = 16384;
};

class TwoHopLabeling {
 public:
  static Result<TwoHopLabeling> Build(const Dag& dag,
                                      TwoHopOptions options = {});

  /// Build() variant whose *stored* labels cover only the vertices in
  /// `keep` (order irrelevant, duplicates tolerated, out-of-range
  /// entries rejected). The pruned sweep still runs over the whole DAG
  /// — pruning consults every vertex's labels during construction — but
  /// the flattened result drops all other vertices' hub lists, so the
  /// resident footprint scales with |keep|, not the DAG. Reachable(u, v)
  /// stays exact when both endpoints are keep vertices (and trivially
  /// for u == v); any other pair may report a false negative. The shard
  /// boundary summaries build through this: they only ever ask
  /// boundary-to-boundary questions, and shard-cut boundary sets are
  /// tiny next to the full product DAG (see shard/boundary_summary.h).
  static Result<TwoHopLabeling> BuildRestricted(const Dag& dag,
                                                std::span<const uint32_t> keep,
                                                TwoHopOptions options = {});

  /// Patched copy of `prev` covering `new_dag` = prev's DAG plus
  /// appended vertices (ids ≥ old_num_vertices) and `new_arcs` (each
  /// must be a new_dag arc; duplicates tolerated). `new_dag` must still
  /// be acyclic and must preserve the old vertex ids — the shape
  /// LineReachabilityOracle::BuildIncremental produces. Exact (see file
  /// comment); cost scales with the affected region, not the DAG.
  static TwoHopLabeling PatchInsertions(
      const TwoHopLabeling& prev, const Dag& new_dag,
      uint32_t old_num_vertices,
      std::span<const std::pair<uint32_t, uint32_t>> new_arcs);

  /// Exact DAG reachability: u ->* v.
  bool Reachable(uint32_t u, uint32_t v) const;

  /// Total number of label entries (sum of |Lin| + |Lout|).
  uint64_t LabelingSize() const { return out_hubs_.size() + in_hubs_.size(); }

  size_t MemoryBytes() const {
    return (out_offsets_.capacity() + in_offsets_.capacity() +
            rank_of_.capacity() + vertex_of_.capacity()) *
               sizeof(uint32_t) +
           (out_hubs_.capacity() + in_hubs_.capacity()) * sizeof(uint32_t);
  }

 private:
  friend struct storage::StorageAccess;

  /// Rebuilds the CSR arrays from per-vertex hub lists.
  void Flatten(const std::vector<std::vector<uint32_t>>& out_hubs,
               const std::vector<std::vector<uint32_t>>& in_hubs);

  // CSR label storage; hub lists are sorted by hub rank so Reachable is a
  // sorted-merge intersection.
  std::vector<uint32_t> out_offsets_{0};
  std::vector<uint32_t> out_hubs_;
  std::vector<uint32_t> in_offsets_{0};
  std::vector<uint32_t> in_hubs_;
  // Rank permutation, kept so PatchInsertions can resume hub sweeps
  // (hub lists store ranks, not vertex ids).
  std::vector<uint32_t> rank_of_;    // vertex -> rank
  std::vector<uint32_t> vertex_of_;  // rank -> vertex
};

}  // namespace sargus

#endif  // SARGUS_INDEX_TWO_HOP_H_
