#ifndef SARGUS_INDEX_TWO_HOP_H_
#define SARGUS_INDEX_TWO_HOP_H_

/// \file two_hop.h
/// \brief Exact 2-hop reachability labels over the condensation DAG.
///
/// Every vertex u stores Lout(u) = {hubs x : u ->* x} and
/// Lin(u) = {hubs x : x ->* u}; then u ->* v iff u == v or
/// Lout(u) ∩ Lin(v) ≠ ∅. Two construction strategies, ablated in
/// bench_ablation.cc:
///
///  * kPrunedLandmark — pruned landmark labeling (Akiba-style): sweep
///    vertices in a degree-driven order, BFS forward/backward, prune any
///    vertex whose reachability is already witnessed by earlier hubs.
///    Scales to every graph the suite generates.
///  * kGreedyMaxCover — Cheng-style greedy cover approximation: computes
///    exact descendant/ancestor counts via bitset closure (hence the
///    max_vertices_for_greedy guard) and runs the pruned sweep in
///    decreasing |ancestors|x|descendants| order, the classic max-cover
///    surrogate. Smaller labelings, much costlier construction.

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "index/scc.h"

namespace sargus {

enum class TwoHopStrategy { kPrunedLandmark, kGreedyMaxCover };

struct TwoHopOptions {
  TwoHopStrategy strategy = TwoHopStrategy::kPrunedLandmark;
  /// kGreedyMaxCover materializes an n^2-bit closure; refuse beyond this.
  size_t max_vertices_for_greedy = 16384;
};

class TwoHopLabeling {
 public:
  static Result<TwoHopLabeling> Build(const Dag& dag,
                                      TwoHopOptions options = {});

  /// Exact DAG reachability: u ->* v.
  bool Reachable(uint32_t u, uint32_t v) const;

  /// Total number of label entries (sum of |Lin| + |Lout|).
  uint64_t LabelingSize() const { return out_hubs_.size() + in_hubs_.size(); }

  size_t MemoryBytes() const {
    return (out_offsets_.capacity() + in_offsets_.capacity()) *
               sizeof(uint32_t) +
           (out_hubs_.capacity() + in_hubs_.capacity()) * sizeof(uint32_t);
  }

 private:
  // CSR label storage; hub lists are sorted by hub rank so Reachable is a
  // sorted-merge intersection.
  std::vector<uint32_t> out_offsets_{0};
  std::vector<uint32_t> out_hubs_;
  std::vector<uint32_t> in_offsets_{0};
  std::vector<uint32_t> in_hubs_;
};

}  // namespace sargus

#endif  // SARGUS_INDEX_TWO_HOP_H_
