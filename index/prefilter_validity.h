#ifndef SARGUS_INDEX_PREFILTER_VALIDITY_H_
#define SARGUS_INDEX_PREFILTER_VALIDITY_H_

/// \file prefilter_validity.h
/// \brief Which index-based pruning directions stay sound while a
/// DeltaOverlay holds pending mutations.
///
/// Every index in this directory (transitive closure, GRAIL intervals,
/// 2-hop labels, the line oracle built on them) is a snapshot of the
/// *base* graph. While the overlay is non-empty, the logical graph
/// differs from that snapshot, and index answers are only usable as
/// one-sided approximations:
///
///  * "unreachable in the index ⇒ deny" (negative pruning) is broken by
///    pending *insertions* — an added edge may create the very path the
///    index never saw. It stays sound under pure deletions, which only
///    shrink the path set the index over-approximates.
///  * "reachable in the index ⇒ accept/skip-residual-check" (positive
///    pruning) is broken by pending *deletions* — the index's witness
///    path may traverse a removed edge. It stays sound under pure
///    insertions.
///
/// Queries that lose their pruning direction fall through to overlay-
/// aware online search (the AccessControlEngine routes them), so every
/// evaluator keeps agreeing on grant/deny — conservatism, not staleness.

#include "graph/delta_overlay.h"

namespace sargus {

struct PrefilterValidity {
  /// "index says unreachable ⇒ deny" may be used.
  bool deny_pruning = true;
  /// "index says reachable ⇒ accept / skip residual check" may be used.
  bool grant_pruning = true;
};

/// Validity of snapshot-index pruning under `overlay` (nullptr or empty
/// = the snapshot is the logical graph, both directions valid).
inline PrefilterValidity PrefilterValidityUnder(const DeltaOverlay* overlay) {
  PrefilterValidity v;
  if (overlay == nullptr || overlay->empty()) return v;
  v.deny_pruning = !overlay->has_insertions();
  v.grant_pruning = !overlay->has_deletions();
  return v;
}

}  // namespace sargus

#endif  // SARGUS_INDEX_PREFILTER_VALIDITY_H_
