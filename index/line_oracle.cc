#include "index/line_oracle.h"

#include <vector>

namespace sargus {

Result<LineReachabilityOracle> LineReachabilityOracle::Build(
    const LineGraph& lg, Options options) {
  LineReachabilityOracle oracle;
  oracle.scc_ = ComputeScc(lg);
  oracle.dag_ = BuildCondensation(oracle.scc_, lg);
  oracle.intervals_ = IntervalIndex::Build(oracle.dag_, options.interval_seed);
  auto two_hop = TwoHopLabeling::Build(oracle.dag_, options.two_hop);
  if (!two_hop.ok()) return two_hop.status();
  oracle.two_hop_ = std::move(*two_hop);
  return oracle;
}

bool LineReachabilityOracle::ReachableVia(LineVertexId u, LineVertexId v,
                                          OracleMode mode) const {
  if (u >= scc_.component_of.size() || v >= scc_.component_of.size()) {
    return false;
  }
  return ComponentReachable(scc_.component_of[u], scc_.component_of[v], mode);
}

bool LineReachabilityOracle::ComponentReachable(uint32_t cu, uint32_t cv,
                                                OracleMode mode) const {
  if (cu == cv) return true;
  if (mode == OracleMode::kTwoHop) {
    return two_hop_.Reachable(cu, cv);
  }
  // Interval mode: GRAIL containment is a necessary condition, so a failed
  // check is a certain negative; otherwise run a DFS over the DAG pruning
  // every subtree whose interval cannot contain the target.
  const IntervalLabeling& fwd = intervals_.forward;
  if (!fwd.MayReach(cu, cv)) return false;
  std::vector<uint32_t> stack{cu};
  std::vector<uint8_t> visited(dag_.NumVertices(), 0);
  visited[cu] = 1;
  while (!stack.empty()) {
    const uint32_t x = stack.back();
    stack.pop_back();
    if (x == cv) return true;
    for (uint32_t w : dag_.Out(x)) {
      if (!visited[w] && fwd.MayReach(w, cv)) {
        visited[w] = 1;
        stack.push_back(w);
      }
    }
  }
  return false;
}

}  // namespace sargus
