#include "index/line_oracle.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace sargus {

Result<LineReachabilityOracle> LineReachabilityOracle::Build(
    const LineGraph& lg, Options options) {
  LineReachabilityOracle oracle;
  oracle.scc_ = ComputeScc(lg);
  oracle.dag_ = BuildCondensation(oracle.scc_, lg);
  oracle.intervals_ = IntervalIndex::Build(oracle.dag_, options.interval_seed);
  auto two_hop = TwoHopLabeling::Build(oracle.dag_, options.two_hop);
  if (!two_hop.ok()) return two_hop.status();
  oracle.two_hop_ = std::move(*two_hop);
  return oracle;
}

std::optional<LineReachabilityOracle> LineReachabilityOracle::BuildIncremental(
    const LineReachabilityOracle& prev, const LineGraph& lg,
    LineVertexId first_new_vertex, Options options) {
  const size_t num_line = lg.NumVertices();
  const uint32_t old_components = prev.scc_.num_components;

  LineReachabilityOracle oracle;
  // Each appended line vertex is tentatively its own condensation
  // vertex; a cycle through one (detected below) voids the tentative
  // assignment and forces the full Tarjan rebuild.
  oracle.scc_.component_of = prev.scc_.component_of;
  oracle.scc_.component_of.reserve(num_line);
  for (LineVertexId v = first_new_vertex; v < num_line; ++v) {
    oracle.scc_.component_of.push_back(
        old_components + (v - first_new_vertex));
  }
  oracle.scc_.num_components =
      old_components + static_cast<uint32_t>(num_line - first_new_vertex);
  const auto& comp = oracle.scc_.component_of;

  // Arcs the new vertices induce: every line-graph arc touches the new
  // vertex itself (a -> b exists iff head(a) == tail(b)), so
  // enumerating both sides of each new vertex covers them all —
  // old-to-old arcs are unchanged.
  std::vector<std::pair<uint32_t, uint32_t>> new_arcs;
  for (LineVertexId v = first_new_vertex; v < num_line; ++v) {
    const uint32_t cv = comp[v];
    for (LineVertexId w : lg.VerticesWithTail(lg.vertex(v).head)) {
      if (comp[w] != cv) new_arcs.emplace_back(cv, comp[w]);
    }
    for (LineVertexId w : lg.VerticesWithHead(lg.vertex(v).tail)) {
      if (comp[w] != cv) new_arcs.emplace_back(comp[w], cv);
    }
  }
  std::sort(new_arcs.begin(), new_arcs.end());
  new_arcs.erase(std::unique(new_arcs.begin(), new_arcs.end()),
                 new_arcs.end());

  std::vector<std::pair<uint32_t, uint32_t>> arcs;
  arcs.reserve(prev.dag_.NumArcs() + new_arcs.size());
  for (uint32_t u = 0; u < old_components; ++u) {
    for (uint32_t w : prev.dag_.Out(u)) arcs.emplace_back(u, w);
  }
  arcs.insert(arcs.end(), new_arcs.begin(), new_arcs.end());
  oracle.dag_ = Dag::FromArcs(oracle.scc_.num_components, std::move(arcs));
  if (oracle.dag_.TopoOrder().size() != oracle.scc_.num_components) {
    // Kahn's sort could not drain: an inserted edge closed a cycle, so
    // some components must merge. Full rebuild territory.
    return std::nullopt;
  }

  oracle.intervals_ = IntervalIndex::Build(oracle.dag_, options.interval_seed);
  oracle.two_hop_ = TwoHopLabeling::PatchInsertions(
      prev.two_hop_, oracle.dag_, old_components, new_arcs);
  return oracle;
}

bool LineReachabilityOracle::ReachableVia(LineVertexId u, LineVertexId v,
                                          OracleMode mode) const {
  if (u >= scc_.component_of.size() || v >= scc_.component_of.size()) {
    return false;
  }
  return ComponentReachable(scc_.component_of[u], scc_.component_of[v], mode);
}

bool LineReachabilityOracle::ComponentReachable(uint32_t cu, uint32_t cv,
                                                OracleMode mode) const {
  if (cu == cv) return true;
  if (mode == OracleMode::kTwoHop) {
    return two_hop_.Reachable(cu, cv);
  }
  // Interval mode: GRAIL containment is a necessary condition, so a failed
  // check is a certain negative; otherwise run a DFS over the DAG pruning
  // every subtree whose interval cannot contain the target.
  const IntervalLabeling& fwd = intervals_.forward;
  if (!fwd.MayReach(cu, cv)) return false;
  std::vector<uint32_t> stack{cu};
  std::vector<uint8_t> visited(dag_.NumVertices(), 0);
  visited[cu] = 1;
  while (!stack.empty()) {
    const uint32_t x = stack.back();
    stack.pop_back();
    if (x == cv) return true;
    for (uint32_t w : dag_.Out(x)) {
      if (!visited[w] && fwd.MayReach(w, cv)) {
        visited[w] = 1;
        stack.push_back(w);
      }
    }
  }
  return false;
}

}  // namespace sargus
