#include "index/cluster_index.h"

#include <algorithm>

namespace sargus {

Result<ClusterJoinIndex> ClusterJoinIndex::Build(
    const LineGraph& lg, const LineReachabilityOracle& oracle) {
  ClusterJoinIndex idx;
  idx.num_nodes_ = lg.NumGraphNodes();
  size_t max_label = 0;
  for (LineVertexId v = 0; v < lg.NumVertices(); ++v) {
    max_label = std::max<size_t>(max_label, lg.vertex(v).label);
  }
  idx.num_oriented_labels_ = lg.NumVertices() ? 2 * (max_label + 1) : 0;
  const size_t num_buckets = idx.num_oriented_labels_ * idx.num_nodes_;
  if (oracle.scc().component_of.size() != lg.NumVertices()) {
    return Status::InvalidArgument(
        "ClusterJoinIndex::Build: oracle was built over a different line "
        "graph");
  }

  // Counting sort into (oriented label, tail) buckets.
  idx.offsets_.assign(num_buckets + 1, 0);
  for (LineVertexId v = 0; v < lg.NumVertices(); ++v) {
    const LineGraph::Vertex& lv = lg.vertex(v);
    ++idx.offsets_[idx.BucketIndex(lv.label, lv.backward, lv.tail) + 1];
  }
  for (size_t i = 0; i < num_buckets; ++i) {
    idx.offsets_[i + 1] += idx.offsets_[i];
  }
  idx.members_.resize(lg.NumVertices());
  std::vector<uint32_t> cursor(idx.offsets_.begin(), idx.offsets_.end() - 1);
  for (LineVertexId v = 0; v < lg.NumVertices(); ++v) {
    const LineGraph::Vertex& lv = lg.vertex(v);
    idx.members_[cursor[idx.BucketIndex(lv.label, lv.backward, lv.tail)]++] =
        v;
  }
  for (size_t b = 0; b < num_buckets; ++b) {
    if (idx.offsets_[b + 1] > idx.offsets_[b]) {
      ++idx.num_centers_;
      idx.centers_.push_back(idx.members_[idx.offsets_[b]]);
    }
  }

  // Label-pair reachability: for each oriented label, BFS over the DAG
  // from every component containing that label; intersect the reached set
  // with every other label's component membership.
  const size_t ol_count = idx.num_oriented_labels_;
  const Dag& dag = oracle.dag();
  const size_t c = dag.NumVertices();
  // Membership: component -> bitmask over oriented labels (<= 32 labels
  // per the bench fixtures; wider alphabets fall back to per-label sets).
  std::vector<std::vector<uint8_t>> label_comps(ol_count,
                                                std::vector<uint8_t>(c, 0));
  for (LineVertexId v = 0; v < lg.NumVertices(); ++v) {
    const LineGraph::Vertex& lv = lg.vertex(v);
    const size_t ol = 2 * static_cast<size_t>(lv.label) + (lv.backward);
    label_comps[ol][oracle.ComponentOf(v)] = 1;
  }
  idx.label_reach_.assign(ol_count * ol_count, 0);
  std::vector<uint8_t> reached(c);
  std::vector<uint32_t> queue;
  for (size_t ol = 0; ol < ol_count; ++ol) {
    std::fill(reached.begin(), reached.end(), 0);
    queue.clear();
    for (uint32_t comp = 0; comp < c; ++comp) {
      if (label_comps[ol][comp]) {
        reached[comp] = 1;
        queue.push_back(comp);
      }
    }
    if (queue.empty()) continue;
    for (size_t head = 0; head < queue.size(); ++head) {
      for (uint32_t w : dag.Out(queue[head])) {
        if (!reached[w]) {
          reached[w] = 1;
          queue.push_back(w);
        }
      }
    }
    for (size_t other = 0; other < ol_count; ++other) {
      bool any = false;
      for (uint32_t comp = 0; comp < c && !any; ++comp) {
        any = reached[comp] && label_comps[other][comp];
      }
      idx.label_reach_[ol * ol_count + other] = any;
    }
  }
  return idx;
}

std::span<const LineVertexId> ClusterJoinIndex::Cluster(LabelId label,
                                                        bool backward,
                                                        NodeId node) const {
  const size_t ol = 2 * static_cast<size_t>(label) + (backward ? 1 : 0);
  if (label == kInvalidLabel || ol >= num_oriented_labels_ ||
      node >= num_nodes_) {
    return {};
  }
  const size_t b = BucketIndex(label, backward, node);
  return {members_.data() + offsets_[b], offsets_[b + 1] - offsets_[b]};
}

bool ClusterJoinIndex::LabelPairReachable(LabelId a, bool a_backward,
                                          LabelId b, bool b_backward) const {
  const size_t ola = 2 * static_cast<size_t>(a) + (a_backward ? 1 : 0);
  const size_t olb = 2 * static_cast<size_t>(b) + (b_backward ? 1 : 0);
  if (ola >= num_oriented_labels_ || olb >= num_oriented_labels_) {
    return false;
  }
  return label_reach_[ola * num_oriented_labels_ + olb] != 0;
}

}  // namespace sargus
