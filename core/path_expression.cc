#include "core/path_expression.h"

#include "core/automaton.h"

namespace sargus {

std::string_view CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
  }
  return "?";
}

bool EvalCmp(CmpOp op, int64_t lhs, int64_t rhs) {
  switch (op) {
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
  }
  return false;
}

std::string PathExpression::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps_.size(); ++i) {
    const PathStep& s = steps_[i];
    if (i) out += '/';
    out += s.label;
    if (s.backward) out += '-';
    out += '[';
    out += std::to_string(s.min_hops);
    if (s.max_hops != s.min_hops) {
      out += ',';
      out += std::to_string(s.max_hops);
    }
    out += ']';
    if (!s.conditions.empty()) {
      out += '{';
      for (size_t c = 0; c < s.conditions.size(); ++c) {
        if (c) out += ',';
        out += s.conditions[c].attr;
        out += CmpOpName(s.conditions[c].op);
        out += std::to_string(s.conditions[c].value);
      }
      out += '}';
    }
  }
  return out;
}

Result<BoundPathExpression> BoundPathExpression::Bind(
    const PathExpression& expr, const SocialGraph& g) {
  if (expr.empty()) {
    return Status::InvalidArgument("Bind: empty path expression");
  }
  BoundPathExpression bound;
  bound.graph_ = &g;
  bound.source_ = expr;
  bound.steps_.reserve(expr.steps().size());
  for (const PathStep& s : expr.steps()) {
    // The parser enforces these, but PathExpression is constructible
    // programmatically and every evaluator relies on bound expressions
    // having sane hop ranges (the join expansion assumes min >= 1).
    if (s.min_hops < 1) {
      return Status::InvalidArgument("Bind: step '" + s.label +
                                     "': hop bounds are 1-based");
    }
    if (s.max_hops < s.min_hops) {
      return Status::InvalidArgument(
          "Bind: step '" + s.label + "': empty hop range [" +
          std::to_string(s.min_hops) + "," + std::to_string(s.max_hops) +
          "]");
    }
    BoundStep b;
    b.label = g.labels().Lookup(s.label);
    if (b.label == kInvalidLabel) {
      return Status::NotFound("Bind: label '" + s.label +
                              "' not present in graph");
    }
    b.backward = s.backward;
    b.min_hops = s.min_hops;
    b.max_hops = s.max_hops;
    for (const AttrCondition& c : s.conditions) {
      BoundCondition bc;
      bc.attr = g.attrs().Lookup(c.attr);
      if (bc.attr == kInvalidAttr) {
        return Status::NotFound("Bind: attribute '" + c.attr +
                                "' not present in graph");
      }
      bc.op = c.op;
      bc.value = c.value;
      b.conditions.push_back(bc);
    }
    bound.steps_.push_back(std::move(b));
  }
  // Compile the hop automaton once, at bind time. The automaton copies
  // the steps, so it stays valid as the expression is moved or copied
  // (copies share it).
  bound.automaton_ = std::make_shared<const HopAutomaton>(bound.steps_);
  return bound;
}

bool BoundPathExpression::HasBackwardStep() const {
  for (const BoundStep& s : steps_) {
    if (s.backward) return true;
  }
  return false;
}

bool BoundPathExpression::HasAttributeFilter() const {
  for (const BoundStep& s : steps_) {
    if (!s.conditions.empty()) return true;
  }
  return false;
}

uint64_t BoundPathExpression::MaxPathLength() const {
  uint64_t total = 0;
  for (const BoundStep& s : steps_) total += s.max_hops;
  return total;
}

uint64_t BoundPathExpression::ExpansionCount() const {
  uint64_t count = 1;
  constexpr uint64_t kCap = uint64_t{1} << 32;
  for (const BoundStep& s : steps_) {
    count *= (s.max_hops - s.min_hops + 1);
    if (count > kCap) return kCap;
  }
  return count;
}

bool BoundPathExpression::NodePasses(const SocialGraph& g, NodeId node,
                                     const BoundStep& step) {
  for (const BoundCondition& c : step.conditions) {
    const std::optional<int64_t> v = g.GetAttribute(node, c.attr);
    if (!v.has_value() || !EvalCmp(c.op, *v, c.value)) return false;
  }
  return true;
}

}  // namespace sargus
