#ifndef SARGUS_CORE_PATH_EXPRESSION_H_
#define SARGUS_CORE_PATH_EXPRESSION_H_

/// \file path_expression.h
/// \brief The paper's access-condition language, parsed and bound.
///
/// An access condition is a sequence of steps separated by `/`:
///
///     friend[1,2]/colleague[1]{age>=18}
///
/// A step `label[a,b]` matches between `a` and `b` consecutive edges with
/// that label; `label[k]` is shorthand for `[k,k]`. `label-[a,b]` traverses
/// edges against their direction. An optional `{attr OP value, ...}` filter
/// constrains every node *entered* by the step's hops (the query source is
/// never filtered; the destination is filtered by the last step it is
/// entered under).
///
/// `PathExpression` is the name-based AST produced by ParsePathExpression.
/// `BoundPathExpression` resolves names against one SocialGraph's
/// dictionaries; it pins that graph and is what queries carry.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "graph/social_graph.h"

namespace sargus {

class HopAutomaton;

enum class CmpOp : uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

std::string_view CmpOpName(CmpOp op);
bool EvalCmp(CmpOp op, int64_t lhs, int64_t rhs);

/// `age >= 18` — attribute name still unresolved.
struct AttrCondition {
  std::string attr;
  CmpOp op = CmpOp::kGe;
  int64_t value = 0;
  bool operator==(const AttrCondition&) const = default;
};

struct PathStep {
  std::string label;
  bool backward = false;
  uint32_t min_hops = 1;
  uint32_t max_hops = 1;
  std::vector<AttrCondition> conditions;
  bool operator==(const PathStep&) const = default;
};

class PathExpression {
 public:
  PathExpression() = default;
  explicit PathExpression(std::vector<PathStep> steps)
      : steps_(std::move(steps)) {}

  const std::vector<PathStep>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }

  /// Canonical text form; ParsePathExpression round-trips it.
  std::string ToString() const;

  bool operator==(const PathExpression&) const = default;

 private:
  std::vector<PathStep> steps_;
};

/// A resolved condition: attribute id in the bound graph's dictionary.
struct BoundCondition {
  AttrId attr = kInvalidAttr;
  CmpOp op = CmpOp::kGe;
  int64_t value = 0;
};

struct BoundStep {
  LabelId label = kInvalidLabel;
  bool backward = false;
  uint32_t min_hops = 1;
  uint32_t max_hops = 1;
  std::vector<BoundCondition> conditions;
};

class BoundPathExpression {
 public:
  BoundPathExpression() = default;

  /// Resolves label and attribute names against `g`'s dictionaries.
  /// Fails with kNotFound when a label or attribute is not interned in the
  /// graph, and kInvalidArgument for an empty expression.
  static Result<BoundPathExpression> Bind(const PathExpression& expr,
                                          const SocialGraph& g);

  const std::vector<BoundStep>& steps() const { return steps_; }

  /// The graph the expression was bound against. Evaluators refuse
  /// queries whose expression was bound to a different graph.
  const SocialGraph* graph() const { return graph_; }

  /// Original (unbound) form, kept for diagnostics.
  const PathExpression& source() const { return source_; }
  std::string ToString() const { return source_.ToString(); }

  /// True if any step traverses edges backward.
  bool HasBackwardStep() const;

  /// True if any step carries an attribute filter.
  bool HasAttributeFilter() const;

  /// Upper bound on matching path length: sum of max_hops.
  uint64_t MaxPathLength() const;

  /// Number of concrete label sequences the expression expands to:
  /// product over steps of (max - min + 1). Saturates at 2^32.
  uint64_t ExpansionCount() const;

  /// True when `node` satisfies `step`'s filter in graph `g`.
  /// Missing attributes fail the filter (closed-world).
  static bool NodePasses(const SocialGraph& g, NodeId node,
                         const BoundStep& step);

  /// The hop automaton compiled from this expression. Built eagerly by
  /// Bind() (so const access is trivially thread-safe) and shared across
  /// copies — the query hot path never recompiles it. Only valid on
  /// expressions produced by Bind(); a default-constructed expression has
  /// none (and is rejected by ValidateQuery before any evaluator gets
  /// here).
  const HopAutomaton& automaton() const { return *automaton_; }

 private:
  std::vector<BoundStep> steps_;
  const SocialGraph* graph_ = nullptr;
  PathExpression source_;
  std::shared_ptr<const HopAutomaton> automaton_;
};

}  // namespace sargus

#endif  // SARGUS_CORE_PATH_EXPRESSION_H_
