#include "core/automaton.h"

#include <algorithm>

namespace sargus {

HopAutomaton::HopAutomaton(std::vector<BoundStep> bound_steps)
    : steps_(std::move(bound_steps)) {
  const auto& steps = steps_;
  // One state per (step i, hops h) with 0 <= h < max_i: "h hops of step i
  // consumed, ready to consume another".
  step_offsets_.resize(steps.size() + 1, 0);
  for (size_t i = 0; i < steps.size(); ++i) {
    step_offsets_[i + 1] = step_offsets_[i] + steps[i].max_hops;
  }
  states_.resize(step_offsets_.back());
  for (uint32_t i = 0; i < steps.size(); ++i) {
    for (uint32_t h = 0; h < steps[i].max_hops; ++h) {
      State& s = states_[StateId(i, h)];
      s.step = i;
      s.hops = h;
    }
  }

  // Edge transitions: from (i, h), consuming an edge lands in the closure
  // of (i, h+1).
  for (uint32_t i = 0; i < steps.size(); ++i) {
    for (uint32_t h = 0; h < steps[i].max_hops; ++h) {
      State& s = states_[StateId(i, h)];
      s.accepts_after_edge = Closure(i, h + 1, &s.edge_targets);
      std::sort(s.edge_targets.begin(), s.edge_targets.end());
      s.edge_targets.erase(
          std::unique(s.edge_targets.begin(), s.edge_targets.end()),
          s.edge_targets.end());
    }
  }

  // Reverse transitions.
  for (uint32_t s = 0; s < states_.size(); ++s) {
    for (uint32_t t : states_[s].edge_targets) {
      states_[t].edge_sources.push_back(s);
    }
    if (states_[s].accepts_after_edge) accepting_edge_states_.push_back(s);
  }

  if (!steps.empty()) {
    accepts_empty_ = Closure(0, 0, &start_states_);
    std::sort(start_states_.begin(), start_states_.end());
    start_states_.erase(
        std::unique(start_states_.begin(), start_states_.end()),
        start_states_.end());
  } else {
    accepts_empty_ = true;
  }
}

bool HopAutomaton::Closure(uint32_t step, uint32_t hops,
                           std::vector<uint32_t>* out) const {
  const auto& steps = steps_;
  bool accepts = false;
  // Walk forward through steps whose minimum is already satisfied. Each
  // iteration either records a real state, steps to the next step, or
  // reaches accept; advancing resets the hop counter, so this terminates
  // after at most |steps| iterations.
  uint32_t i = step;
  uint32_t h = hops;
  for (;;) {
    if (i == steps.size()) {
      accepts = true;
      break;
    }
    if (h < steps[i].max_hops) out->push_back(StateId(i, h));
    if (h >= steps[i].min_hops) {
      ++i;
      h = 0;
      continue;
    }
    break;
  }
  return accepts;
}

}  // namespace sargus
