#include "core/path_parser.h"

#include <cctype>
#include <charconv>

namespace sargus {
namespace {

/// Hand-rolled recursive-descent parser over the input string. Keeps a
/// cursor; every error message carries the cursor position.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<PathExpression> Parse() {
    SkipSpace();
    if (AtEnd()) {
      return Status::InvalidArgument("empty path expression");
    }
    std::vector<PathStep> steps;
    for (;;) {
      auto step = ParseStep();
      if (!step.ok()) return step.status();
      steps.push_back(std::move(*step));
      SkipSpace();
      if (AtEnd()) break;
      if (!Consume('/')) {
        return Error("expected '/' between steps");
      }
    }
    return PathExpression(std::move(steps));
  }

 private:
  Result<PathStep> ParseStep() {
    SkipSpace();
    PathStep step;
    auto label = ParseIdent("label");
    if (!label.ok()) return label.status();
    step.label = std::move(*label);
    SkipSpace();
    if (Consume('-')) step.backward = true;
    SkipSpace();
    if (!Consume('[')) {
      return Error("expected '[' after label '" + step.label + "'");
    }
    auto lo = ParseInt("hop bound");
    if (!lo.ok()) return lo.status();
    SkipSpace();
    int64_t hi_val = *lo;
    if (Consume(',')) {
      auto hi = ParseInt("hop bound");
      if (!hi.ok()) return hi.status();
      hi_val = *hi;
      SkipSpace();
    }
    if (!Consume(']')) {
      return Error("expected ']' closing hop bounds");
    }
    if (*lo < 1) {
      return Error("hop bounds are 1-based; got [" + std::to_string(*lo) +
                   ",...]");
    }
    if (hi_val < *lo) {
      return Error("hop range [" + std::to_string(*lo) + "," +
                   std::to_string(hi_val) + "] is empty");
    }
    if (hi_val > static_cast<int64_t>(kMaxHopBound)) {
      return Error("hop bound " + std::to_string(hi_val) + " exceeds cap " +
                   std::to_string(kMaxHopBound));
    }
    step.min_hops = static_cast<uint32_t>(*lo);
    step.max_hops = static_cast<uint32_t>(hi_val);
    SkipSpace();
    if (Peek() == '{') {
      auto st = ParseFilter(&step);
      if (!st.ok()) return st;
    }
    return step;
  }

  Status ParseFilter(PathStep* step) {
    Consume('{');
    for (;;) {
      SkipSpace();
      AttrCondition cond;
      auto attr = ParseIdent("attribute");
      if (!attr.ok()) return attr.status();
      cond.attr = std::move(*attr);
      SkipSpace();
      auto op = ParseOp();
      if (!op.ok()) return op.status();
      cond.op = *op;
      auto value = ParseInt("comparison value");
      if (!value.ok()) return value.status();
      cond.value = *value;
      step->conditions.push_back(std::move(cond));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return OkStatus();
      return Error("expected ',' or '}' in filter");
    }
  }

  Result<std::string> ParseIdent(const char* what) {
    SkipSpace();
    const size_t start = pos_;
    if (!AtEnd() && (std::isalpha(Byte()) || Peek() == '_')) {
      ++pos_;
      while (!AtEnd() && (std::isalnum(Byte()) || Peek() == '_')) ++pos_;
    }
    if (pos_ == start) {
      return Error(std::string("expected ") + what);
    }
    return text_.substr(start, pos_ - start);
  }

  Result<int64_t> ParseInt(const char* what) {
    SkipSpace();
    size_t start = pos_;
    bool negative = false;
    if (!AtEnd() && (Peek() == '-' || Peek() == '+')) {
      negative = Peek() == '-';
      ++pos_;
    }
    const size_t digits_start = pos_;
    while (!AtEnd() && std::isdigit(Byte())) ++pos_;
    if (pos_ == digits_start) {
      pos_ = start;
      return Error(std::string("expected integer ") + what);
    }
    // from_chars reports overflow instead of silently saturating.
    int64_t value = 0;
    const char* first = text_.data() + digits_start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec == std::errc::result_out_of_range) {
      return Error(std::string(what) + " out of 64-bit range");
    }
    if (ec != std::errc() || ptr != last) {
      pos_ = start;
      return Error(std::string("expected integer ") + what);
    }
    return negative ? -value : value;
  }

  Result<CmpOp> ParseOp() {
    SkipSpace();
    const char c = Peek();
    const char c2 = pos_ + 1 < text_.size() ? text_[pos_ + 1] : '\0';
    if (c == '<') {
      pos_ += (c2 == '=') ? 2 : 1;
      return c2 == '=' ? CmpOp::kLe : CmpOp::kLt;
    }
    if (c == '>') {
      pos_ += (c2 == '=') ? 2 : 1;
      return c2 == '=' ? CmpOp::kGe : CmpOp::kGt;
    }
    if (c == '=' && c2 == '=') {
      pos_ += 2;
      return CmpOp::kEq;
    }
    if (c == '!' && c2 == '=') {
      pos_ += 2;
      return CmpOp::kNe;
    }
    return Error("expected comparison operator");
  }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(Byte())) ++pos_;
  }
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  unsigned char Byte() const {
    return static_cast<unsigned char>(text_[pos_]);
  }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }

  Status Error(std::string msg) const {
    return Status::InvalidArgument(msg + " at position " +
                                   std::to_string(pos_) + " in '" + text_ +
                                   "'");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<PathExpression> ParsePathExpression(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace sargus
