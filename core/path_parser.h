#ifndef SARGUS_CORE_PATH_PARSER_H_
#define SARGUS_CORE_PATH_PARSER_H_

/// \file path_parser.h
/// \brief Parser for the paper's access-condition grammar.
///
///   expr   := step ('/' step)*
///   step   := label '-'? '[' int (',' int)? ']' filter?
///   filter := '{' cond (',' cond)* '}'
///   cond   := attr op int                    op ∈ { < <= > >= == != }
///   label  := [A-Za-z_][A-Za-z0-9_]*
///
/// Whitespace is permitted between tokens. Hop bounds are 1-based
/// (`[0,...]` is rejected) and capped at kMaxHopBound to keep
/// join-side expansion finite. All syntax errors return
/// kInvalidArgument with the offending position in the message.

#include <string>

#include "common/result.h"
#include "core/path_expression.h"

namespace sargus {

/// Largest accepted hop bound.
inline constexpr uint32_t kMaxHopBound = 64;

Result<PathExpression> ParsePathExpression(const std::string& text);

}  // namespace sargus

#endif  // SARGUS_CORE_PATH_PARSER_H_
