#ifndef SARGUS_CORE_AUTOMATON_H_
#define SARGUS_CORE_AUTOMATON_H_

/// \file automaton.h
/// \brief HopAutomaton: a bound path expression compiled to an NFA whose
/// states are (step, hops-consumed-in-step) pairs.
///
/// This is why online search absorbs wide hop ranges *linearly* while the
/// join pipeline expands them multiplicatively: `friend[1,8]` is eight
/// automaton states, not eight concrete label sequences. The traversal
/// evaluators explore the product space (graph node × automaton state).
///
/// Transition model: state s = (i, h) consumes one edge matching step i's
/// (label, orientation, filter) and lands in the epsilon-closure of
/// (i, h+1); the closure advances through any step whose minimum is
/// already met, possibly reaching the accept sink. All closures are
/// precomputed, so walkers only index arrays.

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/path_expression.h"

namespace sargus {

/// Dense index of a (graph node, automaton state) configuration — the
/// cell every product-space walker (online, bidirectional, audience
/// collection) uses for its visited arrays.
inline size_t ProductConfigId(NodeId node, uint32_t state,
                              uint32_t num_states) {
  return static_cast<size_t>(node) * num_states + state;
}

class HopAutomaton {
 public:
  /// Compiles `expr`. The automaton keeps its own copy of the bound
  /// steps, so it is self-contained: it may outlive (and be shared
  /// between copies of) the expression that produced it. Bind() compiles
  /// one eagerly and caches it on the BoundPathExpression, so the hot
  /// path never recompiles — see BoundPathExpression::automaton().
  explicit HopAutomaton(const BoundPathExpression& expr)
      : HopAutomaton(expr.steps()) {}
  explicit HopAutomaton(std::vector<BoundStep> steps);

  /// Number of real (non-accept) states.
  uint32_t NumStates() const { return static_cast<uint32_t>(states_.size()); }

  /// Step index a state consumes edges for.
  uint32_t StepOf(uint32_t state) const { return states_[state].step; }

  /// Hops already consumed within StepOf(state). Together with the
  /// steps' max bounds this reconstructs the residual hop budget of a
  /// mid-walk configuration — what a cross-shard frontier entry carries
  /// (see shard/wire.h).
  uint32_t HopsOf(uint32_t state) const { return states_[state].hops; }

  const BoundStep& StepSpec(uint32_t state) const {
    return steps_[states_[state].step];
  }

  /// States entered after consuming an edge from `state` (the closure of
  /// the successor, accept excluded — see AcceptsAfterEdge).
  const std::vector<uint32_t>& TargetsAfterEdge(uint32_t state) const {
    return states_[state].edge_targets;
  }

  /// True when consuming an edge from `state` can finish the expression
  /// (accept is in the successor closure). The node the edge enters is
  /// then a match endpoint.
  bool AcceptsAfterEdge(uint32_t state) const {
    return states_[state].accepts_after_edge;
  }

  /// Reverse image of TargetsAfterEdge: states s with t ∈ Targets(s).
  /// Used by the backward frontier of bidirectional search.
  const std::vector<uint32_t>& SourcesIntoState(uint32_t t) const {
    return states_[t].edge_sources;
  }

  /// States s such that consuming an edge from s can accept — the seeds
  /// of a backward search (their step spec constrains the final hop).
  const std::vector<uint32_t>& AcceptingEdgeStates() const {
    return accepting_edge_states_;
  }

  /// Start states: the closure at (step 0, 0 hops).
  const std::vector<uint32_t>& StartStates() const { return start_states_; }

  /// True when the empty path (src == dst, zero hops) matches. Only
  /// possible if every step had min 0, which the parser forbids; kept for
  /// generality.
  bool AcceptsEmpty() const { return accepts_empty_; }

  /// The bound steps this automaton was compiled from (its own copy).
  const std::vector<BoundStep>& bound_steps() const { return steps_; }

 private:
  struct State {
    uint32_t step = 0;   // which step's edges this state consumes
    uint32_t hops = 0;   // hops already consumed within that step
    std::vector<uint32_t> edge_targets;
    std::vector<uint32_t> edge_sources;
    bool accepts_after_edge = false;
  };

  // Appends the epsilon-closure of (step, hops) to `out`; returns true if
  // the closure contains accept.
  bool Closure(uint32_t step, uint32_t hops, std::vector<uint32_t>* out) const;

  uint32_t StateId(uint32_t step, uint32_t hops) const {
    return step_offsets_[step] + hops;
  }

  std::vector<BoundStep> steps_;
  std::vector<State> states_;
  std::vector<uint32_t> step_offsets_;
  std::vector<uint32_t> start_states_;
  std::vector<uint32_t> accepting_edge_states_;
  bool accepts_empty_ = false;
};

}  // namespace sargus

#endif  // SARGUS_CORE_AUTOMATON_H_
