#ifndef SARGUS_SYNTH_GENERATORS_H_
#define SARGUS_SYNTH_GENERATORS_H_

/// \file generators.h
/// \brief Deterministic synthetic social graphs: Erdős–Rényi,
/// Barabási–Albert (preferential attachment) and Watts–Strogatz
/// (small world) — the three families the evaluation sweeps over.
///
/// Everything is a pure function of the spec (including the seed): the
/// bench suite relies on (kind, nodes, labels, seed, degree) keys to
/// cache pipelines across processes and runs.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/social_graph.h"

namespace sargus {

/// Parameters shared by every family.
struct SocialGraphSpec {
  size_t num_nodes = 0;
  uint64_t seed = 1;
  /// Relationship label alphabet; edge labels are drawn uniformly.
  std::vector<std::string> labels = {"friend", "colleague", "family"};
  /// Probability that an edge gets a reverse twin (same label). Social
  /// ties are often mutual; high reciprocity also produces the giant SCC
  /// that makes closure compression interesting.
  double reciprocity = 0.5;
  /// Assign "age" (13..80) and "trust" (0..100) attributes to every node
  /// so expressions with attribute filters have something to bite on.
  bool assign_attributes = true;
};

struct ErdosRenyiSpec {
  SocialGraphSpec base;
  double avg_out_degree = 4.0;
};

struct BarabasiAlbertSpec {
  SocialGraphSpec base;
  size_t edges_per_node = 4;
};

struct WattsStrogatzSpec {
  SocialGraphSpec base;
  size_t neighbors_per_side = 2;
  double rewire_probability = 0.1;
};

Result<SocialGraph> GenerateErdosRenyi(const ErdosRenyiSpec& spec);
Result<SocialGraph> GenerateBarabasiAlbert(const BarabasiAlbertSpec& spec);
Result<SocialGraph> GenerateWattsStrogatz(const WattsStrogatzSpec& spec);

/// Zipf-skewed rank sampler (YCSB/Gray inverse-CDF construction): rank 0
/// is the most popular item and P(rank r) ∝ 1/(r+1)^theta. theta = 0 is
/// uniform; real request skews are usually around 0.6-0.99. The bench's
/// sharded-serving workloads draw requesters and resources through this
/// so a handful of hot owners dominate, the way social traffic does.
///
/// Deterministic in (num_items, theta, seed); O(num_items) setup (one
/// harmonic sum), O(1) per draw.
class ZipfSampler {
 public:
  /// `num_items` must be > 0; theta is clamped to [0, 0.9999] (the
  /// inverse-CDF construction needs theta < 1).
  ZipfSampler(uint64_t num_items, double theta, uint64_t seed);

  /// Next rank in [0, num_items).
  uint64_t Next();

  /// Exact probability mass of `rank` under the fitted distribution.
  double Probability(uint64_t rank) const;

  uint64_t num_items() const { return num_items_; }
  double theta() const { return theta_; }

 private:
  uint64_t num_items_;
  double theta_;
  double zetan_;  // generalized harmonic number H_{n,theta}
  double alpha_;
  double eta_;
  Rng rng_;
};

}  // namespace sargus

#endif  // SARGUS_SYNTH_GENERATORS_H_
