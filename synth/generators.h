#ifndef SARGUS_SYNTH_GENERATORS_H_
#define SARGUS_SYNTH_GENERATORS_H_

/// \file generators.h
/// \brief Deterministic synthetic social graphs: Erdős–Rényi,
/// Barabási–Albert (preferential attachment) and Watts–Strogatz
/// (small world) — the three families the evaluation sweeps over.
///
/// Everything is a pure function of the spec (including the seed): the
/// bench suite relies on (kind, nodes, labels, seed, degree) keys to
/// cache pipelines across processes and runs.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/social_graph.h"

namespace sargus {

/// Parameters shared by every family.
struct SocialGraphSpec {
  size_t num_nodes = 0;
  uint64_t seed = 1;
  /// Relationship label alphabet; edge labels are drawn uniformly.
  std::vector<std::string> labels = {"friend", "colleague", "family"};
  /// Probability that an edge gets a reverse twin (same label). Social
  /// ties are often mutual; high reciprocity also produces the giant SCC
  /// that makes closure compression interesting.
  double reciprocity = 0.5;
  /// Assign "age" (13..80) and "trust" (0..100) attributes to every node
  /// so expressions with attribute filters have something to bite on.
  bool assign_attributes = true;
};

struct ErdosRenyiSpec {
  SocialGraphSpec base;
  double avg_out_degree = 4.0;
};

struct BarabasiAlbertSpec {
  SocialGraphSpec base;
  size_t edges_per_node = 4;
};

struct WattsStrogatzSpec {
  SocialGraphSpec base;
  size_t neighbors_per_side = 2;
  double rewire_probability = 0.1;
};

Result<SocialGraph> GenerateErdosRenyi(const ErdosRenyiSpec& spec);
Result<SocialGraph> GenerateBarabasiAlbert(const BarabasiAlbertSpec& spec);
Result<SocialGraph> GenerateWattsStrogatz(const WattsStrogatzSpec& spec);

}  // namespace sargus

#endif  // SARGUS_SYNTH_GENERATORS_H_
