#include "synth/workload.h"

#include <algorithm>

#include "core/automaton.h"
#include "query/eval_context.h"
#include "query/product_walker.h"

namespace sargus {

std::vector<NodeId> CollectMatchingAudience(const SocialGraph& g,
                                            const CsrSnapshot& csr,
                                            const BoundPathExpression& expr,
                                            NodeId src, EvalContext* ctx,
                                            const DeltaOverlay* overlay) {
  const size_t num_nodes = LogicalNumNodes(csr, overlay);
  if (expr.graph() != &g || src >= num_nodes || expr.steps().empty()) {
    return {};
  }
  QueryScratch& scratch =
      (ctx != nullptr ? *ctx : ThreadLocalEvalContext()).scratch;
  const HopAutomaton& nfa = expr.automaton();

  scratch.node_marks.BeginEpoch(num_nodes);
  std::vector<NodeId> audience;
  auto mark = [&](NodeId v) {
    if (scratch.node_marks.Insert(v)) audience.push_back(v);
  };
  if (nfa.AcceptsEmpty()) mark(src);

  ProductWalker walker(g, csr, nfa, TraversalOrder::kBfs, scratch,
                       /*track_parents=*/false, overlay);
  walker.SeedStarts(src);
  walker.Run([&](NodeId entered, NodeId, uint32_t) {
    mark(entered);
    return false;  // collect the whole audience, never stop early
  });

  std::sort(audience.begin(), audience.end());
  return audience;
}

}  // namespace sargus
