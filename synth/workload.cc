#include "synth/workload.h"

#include <algorithm>

#include "core/automaton.h"

namespace sargus {

std::vector<NodeId> CollectMatchingAudience(const SocialGraph& g,
                                            const CsrSnapshot& csr,
                                            const BoundPathExpression& expr,
                                            NodeId src) {
  if (expr.graph() != &g || src >= csr.NumNodes() || expr.steps().empty()) {
    return {};
  }
  const HopAutomaton nfa(expr);
  const uint32_t num_states = nfa.NumStates();
  const size_t n = csr.NumNodes();

  std::vector<uint8_t> visited(n * num_states, 0);
  std::vector<uint8_t> in_audience(n, 0);
  if (nfa.AcceptsEmpty()) in_audience[src] = 1;

  std::vector<std::pair<NodeId, uint32_t>> queue;
  auto push = [&](NodeId node, uint32_t state) {
    const size_t id = ProductConfigId(node, state, num_states);
    if (visited[id]) return;
    visited[id] = 1;
    queue.emplace_back(node, state);
  };
  for (uint32_t s : nfa.StartStates()) push(src, s);

  for (size_t head = 0; head < queue.size(); ++head) {
    const auto [u, s] = queue[head];
    const BoundStep& step = nfa.StepSpec(s);
    const auto entries = step.backward ? csr.InWithLabel(u, step.label)
                                       : csr.OutWithLabel(u, step.label);
    for (const CsrSnapshot::Entry& e : entries) {
      const NodeId w = e.other;
      if (!BoundPathExpression::NodePasses(g, w, step)) continue;
      if (nfa.AcceptsAfterEdge(s)) in_audience[w] = 1;
      for (uint32_t t : nfa.TargetsAfterEdge(s)) push(w, t);
    }
  }

  std::vector<NodeId> audience;
  for (NodeId v = 0; v < n; ++v) {
    if (in_audience[v]) audience.push_back(v);
  }
  return audience;
}

}  // namespace sargus
