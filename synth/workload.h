#ifndef SARGUS_SYNTH_WORKLOAD_H_
#define SARGUS_SYNTH_WORKLOAD_H_

/// \file workload.h
/// \brief Query-workload helpers for benches and tests.
///
/// Uniformly sampled (src, dst) pairs are almost always denies on sparse
/// graphs, which makes latency numbers lie (denies and grants have very
/// different cost profiles — see bench_query_latency.cc's grant/deny
/// split). CollectMatchingAudience enumerates the *actual* audience of an
/// expression from a source, so workloads can mix guided positives with
/// uniform pairs at a controlled rate.

#include <vector>

#include "common/types.h"
#include "core/path_expression.h"
#include "graph/csr.h"
#include "graph/delta_overlay.h"

namespace sargus {

struct EvalContext;

/// All nodes reachable from `src` through a path matching `expr`
/// (i.e. every dst for which access would be granted), sorted ascending.
/// The expression must be bound against `g`; `csr` must snapshot `g`.
/// Returns empty on any argument mismatch. Traversal scratch comes from
/// `ctx` when given, this thread's pooled context otherwise — repeated
/// calls reuse it instead of allocating O(|V|·states) arrays each time.
/// `overlay` (optional) layers pending mutations over `csr`, so the
/// audience reflects AddEdge/RemoveEdge staged since the snapshot.
std::vector<NodeId> CollectMatchingAudience(const SocialGraph& g,
                                            const CsrSnapshot& csr,
                                            const BoundPathExpression& expr,
                                            NodeId src,
                                            EvalContext* ctx = nullptr,
                                            const DeltaOverlay* overlay =
                                                nullptr);

}  // namespace sargus

#endif  // SARGUS_SYNTH_WORKLOAD_H_
