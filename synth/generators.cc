#include "synth/generators.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace sargus {
namespace {

Status ValidateBase(const SocialGraphSpec& spec) {
  if (spec.num_nodes == 0) {
    return Status::InvalidArgument("generator: num_nodes must be > 0");
  }
  if (spec.labels.empty()) {
    return Status::InvalidArgument("generator: label alphabet is empty");
  }
  if (spec.reciprocity < 0.0 || spec.reciprocity > 1.0) {
    return Status::InvalidArgument("generator: reciprocity outside [0,1]");
  }
  return OkStatus();
}

/// Creates the nodes, interns the alphabet, assigns attributes.
SocialGraph MakeBase(const SocialGraphSpec& spec, Rng& rng) {
  SocialGraph g;
  for (const std::string& label : spec.labels) g.labels().Intern(label);
  for (size_t i = 0; i < spec.num_nodes; ++i) g.AddNode();
  if (spec.assign_attributes) {
    for (NodeId v = 0; v < spec.num_nodes; ++v) {
      (void)g.SetAttribute(v, "age",
                           13 + static_cast<int64_t>(rng.NextBounded(68)));
      (void)g.SetAttribute(v, "trust",
                           static_cast<int64_t>(rng.NextBounded(101)));
    }
  }
  return g;
}

/// Interned ids of the spec's alphabet (duplicates in the spec map to
/// the same id, so a random pick is always a valid label).
std::vector<LabelId> AlphabetIds(const SocialGraph& g,
                                 const SocialGraphSpec& spec) {
  std::vector<LabelId> ids;
  ids.reserve(spec.labels.size());
  for (const std::string& label : spec.labels) {
    ids.push_back(g.labels().Lookup(label));
  }
  return ids;
}

/// Adds edge u->v with a random label; adds the reverse twin with
/// probability `reciprocity`.
void AddRandomEdge(SocialGraph& g, Rng& rng, const SocialGraphSpec& spec,
                   const std::vector<LabelId>& alphabet, NodeId u, NodeId v) {
  const LabelId label = alphabet[rng.NextBounded(alphabet.size())];
  (void)g.AddEdge(u, v, label);
  if (spec.reciprocity > 0.0 && rng.NextBool(spec.reciprocity)) {
    (void)g.AddEdge(v, u, label);
  }
}

}  // namespace

Result<SocialGraph> GenerateErdosRenyi(const ErdosRenyiSpec& spec) {
  SARGUS_RETURN_IF_ERROR(ValidateBase(spec.base));
  if (spec.avg_out_degree < 0.0) {
    return Status::InvalidArgument("ER: avg_out_degree must be >= 0");
  }
  Rng rng(spec.base.seed);
  SocialGraph g = MakeBase(spec.base, rng);
  const std::vector<LabelId> alphabet = AlphabetIds(g, spec.base);
  const size_t n = spec.base.num_nodes;
  const auto target =
      static_cast<uint64_t>(spec.avg_out_degree * static_cast<double>(n));
  for (uint64_t i = 0; i < target; ++i) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (n > 1) {
      while (v == u) v = static_cast<NodeId>(rng.NextBounded(n));
    }
    AddRandomEdge(g, rng, spec.base, alphabet, u, v);
  }
  return g;
}

Result<SocialGraph> GenerateBarabasiAlbert(const BarabasiAlbertSpec& spec) {
  SARGUS_RETURN_IF_ERROR(ValidateBase(spec.base));
  if (spec.edges_per_node == 0) {
    return Status::InvalidArgument("BA: edges_per_node must be > 0");
  }
  Rng rng(spec.base.seed);
  SocialGraph g = MakeBase(spec.base, rng);
  const std::vector<LabelId> alphabet = AlphabetIds(g, spec.base);
  const size_t n = spec.base.num_nodes;
  const size_t m = spec.edges_per_node;

  // Seed clique-ish core of m0 = min(n, m + 1) nodes in a ring.
  const size_t m0 = std::min(n, m + 1);
  // Preferential attachment endpoint pool: every edge endpoint appears
  // once, so sampling uniformly from the pool is degree-proportional.
  std::vector<NodeId> pool;
  for (size_t i = 0; i < m0 && m0 > 1; ++i) {
    const NodeId u = static_cast<NodeId>(i);
    const NodeId v = static_cast<NodeId>((i + 1) % m0);
    AddRandomEdge(g, rng, spec.base, alphabet, u, v);
    pool.push_back(u);
    pool.push_back(v);
  }
  for (size_t i = m0; i < n; ++i) {
    const NodeId u = static_cast<NodeId>(i);
    std::vector<NodeId> targets;
    for (size_t e = 0; e < m && pool.size() > 0; ++e) {
      const NodeId t = pool[rng.NextBounded(pool.size())];
      if (t == u ||
          std::find(targets.begin(), targets.end(), t) != targets.end()) {
        continue;  // skip duplicates; slightly fewer edges for small pools
      }
      targets.push_back(t);
    }
    for (const NodeId t : targets) {
      AddRandomEdge(g, rng, spec.base, alphabet, u, t);
      pool.push_back(u);
      pool.push_back(t);
    }
  }
  return g;
}

Result<SocialGraph> GenerateWattsStrogatz(const WattsStrogatzSpec& spec) {
  SARGUS_RETURN_IF_ERROR(ValidateBase(spec.base));
  if (spec.rewire_probability < 0.0 || spec.rewire_probability > 1.0) {
    return Status::InvalidArgument("WS: rewire_probability outside [0,1]");
  }
  if (spec.neighbors_per_side == 0) {
    return Status::InvalidArgument("WS: neighbors_per_side must be > 0");
  }
  Rng rng(spec.base.seed);
  SocialGraph g = MakeBase(spec.base, rng);
  const std::vector<LabelId> alphabet = AlphabetIds(g, spec.base);
  const size_t n = spec.base.num_nodes;
  for (size_t u = 0; u < n; ++u) {
    for (size_t j = 1; j <= spec.neighbors_per_side; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % n);
      if (rng.NextBool(spec.rewire_probability) && n > 1) {
        v = static_cast<NodeId>(rng.NextBounded(n));
        while (v == u) v = static_cast<NodeId>(rng.NextBounded(n));
      }
      if (v == static_cast<NodeId>(u)) continue;  // n == 1 or tiny rings
      AddRandomEdge(g, rng, spec.base, alphabet, static_cast<NodeId>(u), v);
    }
  }
  return g;
}

ZipfSampler::ZipfSampler(uint64_t num_items, double theta, uint64_t seed)
    : num_items_(num_items == 0 ? 1 : num_items),
      // theta == 1 makes alpha blow up; 0.9999 is indistinguishable in
      // practice and keeps every quantity finite.
      theta_(std::clamp(theta, 0.0, 0.9999)),
      rng_(seed) {
  zetan_ = 0.0;
  double zeta2 = 0.0;
  for (uint64_t i = 1; i <= num_items_; ++i) {
    const double term = 1.0 / std::pow(static_cast<double>(i), theta_);
    zetan_ += term;
    if (i == 2) zeta2 = zetan_;
  }
  if (num_items_ == 1) zeta2 = zetan_;
  alpha_ = 1.0 / (1.0 - theta_);
  const double n = static_cast<double>(num_items_);
  eta_ = (1.0 - std::pow(2.0 / n, 1.0 - theta_)) / (1.0 - zeta2 / zetan_);
  if (!std::isfinite(eta_)) eta_ = 1.0;  // num_items_ <= 2 or theta == 0
}

uint64_t ZipfSampler::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double n = static_cast<double>(num_items_);
  const uint64_t rank = static_cast<uint64_t>(
      n * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= num_items_ ? num_items_ - 1 : rank;
}

double ZipfSampler::Probability(uint64_t rank) const {
  if (rank >= num_items_) return 0.0;
  return 1.0 / (std::pow(static_cast<double>(rank + 1), theta_) * zetan_);
}

}  // namespace sargus
