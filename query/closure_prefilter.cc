#include "query/closure_prefilter.h"

#include "index/prefilter_validity.h"

namespace sargus {

Result<Evaluation> ClosurePrefilterEvaluator::EvaluateWith(
    const ReachQuery& q, EvalContext& ctx) const {
  // The prefilter is only sound when the closure over-approximates the
  // expression's edge orientations AND the logical graph (pending
  // overlay insertions break negative pruning — conservatism rule), and
  // only applicable when the query is plausibly valid for the graph the
  // closure covers — anything else is delegated so the inner evaluator
  // can report the proper error instead of a silent deny.
  // Note the endpoint bound is the closure's own snapshot size, never
  // the live graph's node counter: endpoints past it (nodes staged or
  // folded in after the closure was built) simply skip the prefilter,
  // and reading the counter here would race a concurrent compaction
  // fold growing it. The wrong-graph guard compares bound identity, not
  // node counts, for the same reason.
  const bool sound =
      q.expr != nullptr &&
      PrefilterValidityUnder(overlay_).deny_pruning &&
      (closure_->is_undirected() || !q.expr->HasBackwardStep()) &&
      q.src < closure_->NumNodes() && q.dst < closure_->NumNodes() &&
      q.expr->graph() != nullptr &&
      (graph_ == nullptr || q.expr->graph() == graph_);
  if (sound && !closure_->Reachable(q.src, q.dst)) {
    Evaluation denied;
    denied.granted = false;
    denied.stats.prefilter_rejections = 1;
    return denied;
  }
  return inner_->Evaluate(q, ctx);
}

}  // namespace sargus
