#ifndef SARGUS_QUERY_EVALUATOR_H_
#define SARGUS_QUERY_EVALUATOR_H_

/// \file evaluator.h
/// \brief The polymorphic query contract every sargus evaluator honors.
///
/// A ReachQuery asks: does a path from `src` (the resource owner) to
/// `dst` (the requester) match `expr`? Every evaluator must return the
/// same granted/denied decision for the same query — the strategies
/// differ only in cost profile. The cross-evaluator agreement test suite
/// (tests/evaluator_agreement_test.cc) enforces this invariant; it is the
/// correctness backbone every optimization PR must keep green.

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "core/path_expression.h"

namespace sargus {

struct EvalContext;

struct ReachQuery {
  NodeId src = 0;
  NodeId dst = 0;
  /// Must be bound to the same SocialGraph the evaluator was built over,
  /// and must outlive the call.
  const BoundPathExpression* expr = nullptr;
  /// Ask for a witness path (src ... dst) when granted. May cost extra.
  bool want_witness = false;
};

/// Work counters; each evaluator fills the ones meaningful for it.
struct EvalStats {
  /// (node, automaton state) configurations expanded (traversal engines).
  uint64_t pairs_visited = 0;
  /// Join tuples materialized (join engines).
  uint64_t tuples_generated = 0;
  /// Tuples discarded by post-processing (faithful join mode).
  uint64_t tuples_post_filtered = 0;
  /// Concrete label sequences (line queries) evaluated (join engines).
  uint64_t line_queries = 0;
  /// Queries answered "deny" by a closure prefilter without evaluation.
  uint64_t prefilter_rejections = 0;
};

struct Evaluation {
  bool granted = false;
  /// Node path src ... dst when granted and witness was requested.
  std::vector<NodeId> witness;
  EvalStats stats;
};

class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Decides `q` using this thread's pooled scratch (thread-safe: any
  /// number of threads may call Evaluate on one shared const evaluator;
  /// each gets its own scratch). Statuses: kInvalidArgument for
  /// null/foreign expressions or out-of-range endpoints;
  /// kFailedPrecondition when the evaluator's index lacks a capability
  /// the expression needs (backward steps without a backward line graph);
  /// kResourceExhausted when a configured work cap was exceeded.
  Result<Evaluation> Evaluate(const ReachQuery& q) const;

  /// Same, with caller-owned scratch. `ctx` must not be shared between
  /// concurrently running Evaluate calls; reusing one context across
  /// back-to-back queries is the zero-allocation steady state.
  Result<Evaluation> Evaluate(const ReachQuery& q, EvalContext& ctx) const {
    return EvaluateWith(q, ctx);
  }

  virtual std::string_view name() const = 0;

 protected:
  /// Strategy implementation; may use (and grow) `ctx.scratch` freely.
  virtual Result<Evaluation> EvaluateWith(const ReachQuery& q,
                                          EvalContext& ctx) const = 0;
};

/// Shared argument validation; returns non-OK to propagate.
/// `num_nodes` is the evaluator's serving bound — the logical node
/// count of the snapshot (+ staged overlay nodes) it walks, NOT the
/// live graph's counter: an endpoint past the frozen snapshot (a node
/// added after it was built) must fail with kInvalidArgument here
/// rather than index past scratch arrays sized at snapshot time.
Status ValidateQuery(const ReachQuery& q, const SocialGraph& graph,
                     size_t num_nodes);

}  // namespace sargus

#endif  // SARGUS_QUERY_EVALUATOR_H_
