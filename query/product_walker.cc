#include "query/product_walker.h"

#include <algorithm>

namespace sargus {

std::vector<NodeId> ProductWalker::BuildWitness(NodeId final_node, NodeId at,
                                                uint32_t state) const {
  // Chain: src ... at, then the final edge to final_node.
  std::vector<NodeId> path{final_node, at};
  NodeId cur_node = at;
  uint32_t cur_state = state;
  while (true) {
    const ProductParent& p =
        scratch_->parents[ProductConfigId(cur_node, cur_state, num_states_)];
    if (p.node == kInvalidNode) break;
    // Every parent link is exactly one consumed edge, so repeated nodes
    // (self-loops) are legitimate path entries.
    path.push_back(p.node);
    cur_node = p.node;
    cur_state = p.state;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Evaluation ForwardProductSearch(const SocialGraph& graph,
                                const CsrSnapshot& csr,
                                const HopAutomaton& nfa, NodeId src,
                                NodeId dst, TraversalOrder order,
                                bool want_witness, QueryScratch& scratch,
                                const DeltaOverlay* overlay) {
  Evaluation out;
  if (nfa.AcceptsEmpty() && src == dst) {
    out.granted = true;
    if (want_witness) out.witness = {src};
    return out;
  }

  ProductWalker walker(graph, csr, nfa, order, scratch, want_witness, overlay);
  walker.SeedStarts(src);
  out.granted =
      walker.Run([&](NodeId entered, NodeId from, uint32_t from_state) {
        if (entered != dst) return false;
        if (want_witness) {
          out.witness = walker.BuildWitness(entered, from, from_state);
        }
        return true;
      });
  out.stats.pairs_visited = walker.pairs_visited();
  return out;
}

}  // namespace sargus
