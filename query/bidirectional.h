#ifndef SARGUS_QUERY_BIDIRECTIONAL_H_
#define SARGUS_QUERY_BIDIRECTIONAL_H_

/// \file bidirectional.h
/// \brief Bidirectional online search: frontiers from both endpoints.
///
/// Forward frontier: configurations (node, state) reachable from the
/// source, grown by the shared ProductWalker exactly as OnlineEvaluator
/// grows them. Backward frontier: configurations from which the
/// destination is reachable in an accepting run, grown over reversed
/// edges and the reversed automaton. The query is granted as soon as the
/// frontiers intersect. Each round expands the smaller frontier, which
/// squeezes the exponential-ish ball radius from r to ~r/2 on both sides
/// — the classic win on low-diameter social graphs.
///
/// Witness extraction re-runs the shared forward search (on the same
/// scratch pool) when requested; the bidirectional pass itself only
/// keeps membership sets.

#include "core/automaton.h"
#include "graph/csr.h"
#include "graph/delta_overlay.h"
#include "query/evaluator.h"

namespace sargus {

class BidirectionalEvaluator : public Evaluator {
 public:
  /// `overlay` (optional) layers pending mutations over `csr` on both
  /// frontiers; it must be relative to that snapshot and outlive the
  /// evaluator.
  BidirectionalEvaluator(const SocialGraph& graph, const CsrSnapshot& csr,
                         const DeltaOverlay* overlay = nullptr)
      : graph_(&graph), csr_(&csr), overlay_(overlay) {}

  std::string_view name() const override { return "online-bidirectional"; }

 protected:
  Result<Evaluation> EvaluateWith(const ReachQuery& q,
                                  EvalContext& ctx) const override;

 private:
  const SocialGraph* graph_;
  const CsrSnapshot* csr_;
  const DeltaOverlay* overlay_;
};

}  // namespace sargus

#endif  // SARGUS_QUERY_BIDIRECTIONAL_H_
