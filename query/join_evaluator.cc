#include "query/join_evaluator.h"

#include <algorithm>

#include "query/eval_context.h"

namespace sargus {

Result<Evaluation> JoinIndexEvaluator::EvaluateWith(const ReachQuery& q,
                                                    EvalContext& ctx) const {
  // The join stack has no overlay: its bound is the line graph's
  // snapshot node count.
  SARGUS_RETURN_IF_ERROR(ValidateQuery(q, *graph_, lg_->NumGraphNodes()));
  const BoundPathExpression& expr = *q.expr;
  if (expr.HasBackwardStep() && !lg_->includes_backward()) {
    return Status::FailedPrecondition(
        "expression has backward steps but the line graph was built "
        "without backward orientations (LineGraph::Options::include_backward)");
  }

  Evaluation out;

  // Enumerate hop-count choices per step (odometer), materializing each
  // concrete sequence of unit hops.
  const auto& steps = expr.steps();
  const size_t k = steps.size();
  std::vector<uint32_t> counts(k);
  for (size_t i = 0; i < k; ++i) counts[i] = steps[i].min_hops;

  std::vector<Hop> hops;
  for (;;) {
    if (++out.stats.line_queries > options_.max_line_queries) {
      return Status::ResourceExhausted(
          "expression expands to more than " +
          std::to_string(options_.max_line_queries) + " line queries");
    }
    hops.clear();
    for (size_t i = 0; i < k; ++i) {
      for (uint32_t h = 0; h < counts[i]; ++h) {
        hops.push_back(Hop{steps[i].label, steps[i].backward, &steps[i]});
      }
    }
    auto matched = EvaluateSequence(q, hops, ctx, &out);
    if (!matched.ok()) return matched.status();
    if (*matched) {
      out.granted = true;
      return out;
    }
    // Advance the odometer.
    size_t i = 0;
    while (i < k && counts[i] == steps[i].max_hops) {
      counts[i] = steps[i].min_hops;
      ++i;
    }
    if (i == k) break;
    ++counts[i];
  }
  return out;
}

Result<bool> JoinIndexEvaluator::EvaluateSequence(const ReachQuery& q,
                                                  const std::vector<Hop>& hops,
                                                  EvalContext& ctx,
                                                  Evaluation* eval) const {
  // Feasibility prune via the cluster index's label-pair summary:
  // consecutive hops must at least be reachability-compatible.
  for (size_t i = 0; i + 1 < hops.size(); ++i) {
    if (!cluster_->LabelPairReachable(hops[i].label, hops[i].backward,
                                      hops[i + 1].label,
                                      hops[i + 1].backward)) {
      return false;
    }
  }
  return options_.faithful_post_filter ? FaithfulJoin(q, hops, eval)
                                       : AdjacencyJoin(q, hops, ctx, eval);
}

Result<bool> JoinIndexEvaluator::AdjacencyJoin(const ReachQuery& q,
                                               const std::vector<Hop>& hops,
                                               EvalContext& ctx,
                                               Evaluation* eval) const {
  // Frontier of line vertices after each hop, deduplicated per hop via
  // the pooled epoch set (one epoch per hop — an O(1) reset, where the
  // seed code re-zeroed an O(|line vertices|) array per sequence).
  // Parents are kept only when a witness was requested.
  const size_t m = hops.size();
  QueryScratch& scratch = ctx.scratch;
  std::vector<LineVertexId>& frontier = scratch.line_frontier;
  std::vector<LineVertexId>& next = scratch.line_next;
  frontier.clear();
  EpochStampSet& seen = scratch.line_seen;
  seen.BeginEpoch(lg_->NumVertices());
  std::vector<std::vector<LineVertexId>> parents;  // per hop, per vertex pos
  std::vector<std::vector<LineVertexId>> frontiers;
  const bool track = q.want_witness;

  auto passes = [&](LineVertexId lv, const Hop& hop) {
    return BoundPathExpression::NodePasses(*graph_, lg_->vertex(lv).head,
                                           *hop.step);
  };

  // Hop 0: cluster (label0, src).
  for (LineVertexId lv : cluster_->Cluster(hops[0].label, hops[0].backward,
                                           q.src)) {
    if (!passes(lv, hops[0])) continue;
    if (m == 1) {
      if (lg_->vertex(lv).head == q.dst) {
        if (track) eval->witness = {q.src, q.dst};
        ++eval->stats.tuples_generated;
        return true;
      }
      continue;
    }
    if (!seen.Insert(lv)) continue;
    frontier.push_back(lv);
    ++eval->stats.tuples_generated;
  }
  if (m == 1) return false;
  if (track) {
    frontiers.push_back(frontier);
    parents.push_back(std::vector<LineVertexId>(frontier.size(),
                                                kInvalidLineVertex));
  }

  for (size_t i = 1; i < m; ++i) {
    seen.BeginEpoch(lg_->NumVertices());  // fresh dedup scope for this hop
    next.clear();
    std::vector<LineVertexId> next_parents;
    const bool last = (i + 1 == m);
    for (size_t fpos = 0; fpos < frontier.size(); ++fpos) {
      const LineVertexId lv = frontier[fpos];
      const NodeId mid = lg_->vertex(lv).head;
      for (LineVertexId nx :
           cluster_->Cluster(hops[i].label, hops[i].backward, mid)) {
        if (!passes(nx, hops[i])) continue;
        if (last) {
          ++eval->stats.tuples_generated;
          if (lg_->vertex(nx).head == q.dst) {
            if (track) {
              // Walk parent positions back to hop 0: parents[h][pos] is
              // the position of frontiers[h][pos]'s parent within
              // frontiers[h-1].
              std::vector<LineVertexId> chain{nx, lv};
              size_t pos = fpos;
              for (size_t h = i - 1; h >= 1; --h) {
                pos = parents[h][pos];
                chain.push_back(frontiers[h - 1][pos]);
              }
              eval->witness.clear();
              eval->witness.push_back(q.src);
              for (size_t c = chain.size(); c-- > 0;) {
                eval->witness.push_back(lg_->vertex(chain[c]).head);
              }
            }
            return true;
          }
          continue;
        }
        if (!seen.Insert(nx)) continue;
        next.push_back(nx);
        if (track) next_parents.push_back(static_cast<LineVertexId>(fpos));
        ++eval->stats.tuples_generated;
        // Cap is on *live* tuples (this hop's frontier), mirroring
        // faithful mode — not on cumulative work across sequences.
        if (next.size() > options_.max_intermediate_tuples) {
          return Status::ResourceExhausted("adjacency join exceeded tuple cap");
        }
      }
    }
    frontier.swap(next);
    if (track && !last) {
      frontiers.push_back(frontier);
      parents.push_back(std::move(next_parents));
    }
    if (frontier.empty() && !last) return false;
  }
  return false;
}

Result<bool> JoinIndexEvaluator::FaithfulJoin(const ReachQuery& q,
                                              const std::vector<Hop>& hops,
                                              Evaluation* eval) const {
  // The paper's formulation: materialize per-hop candidate tables, join
  // consecutive hops on line-graph *reachability* (the precomputed
  // oracle), and post-process tuples down to true consecutive adjacency
  // and, if unanchored, to the query endpoints.
  const size_t m = hops.size();
  const bool anchor = options_.anchor_endpoints_early;

  // Tuples are full chains (one line vertex per completed hop).
  std::vector<std::vector<LineVertexId>> tuples;
  for (const BaseTables::Row& row :
       tables_->Rows(hops[0].label, hops[0].backward)) {
    if (anchor && row.tail != q.src) continue;
    if (!BoundPathExpression::NodePasses(*graph_, row.head, *hops[0].step)) {
      continue;
    }
    tuples.push_back({row.line});
    ++eval->stats.tuples_generated;
    if (tuples.size() > options_.max_intermediate_tuples) {
      return Status::ResourceExhausted("faithful join exceeded tuple cap");
    }
  }

  for (size_t i = 1; i < m && !tuples.empty(); ++i) {
    const bool last = (i + 1 == m);
    std::vector<std::vector<LineVertexId>> joined;
    for (const auto& chain : tuples) {
      const LineVertexId prev = chain.back();
      for (const BaseTables::Row& row :
           tables_->Rows(hops[i].label, hops[i].backward)) {
        if (anchor && last && row.head != q.dst) continue;
        if (!BoundPathExpression::NodePasses(*graph_, row.head,
                                             *hops[i].step)) {
          continue;
        }
        // Reachability join: prev must reach row.line in the line graph.
        if (!oracle_->ReachableVia(prev, row.line, options_.oracle_mode)) {
          continue;
        }
        std::vector<LineVertexId> extended = chain;
        extended.push_back(row.line);
        joined.push_back(std::move(extended));
        ++eval->stats.tuples_generated;
        if (joined.size() > options_.max_intermediate_tuples) {
          return Status::ResourceExhausted("faithful join exceeded tuple cap");
        }
      }
    }
    tuples.swap(joined);
  }

  // Post-processing: adjacency of consecutive hops, plus endpoint checks
  // when they were not anchored during the joins.
  for (const auto& chain : tuples) {
    bool keep = chain.size() == m;
    if (keep && lg_->vertex(chain.front()).tail != q.src) keep = false;
    if (keep && lg_->vertex(chain.back()).head != q.dst) keep = false;
    for (size_t i = 0; keep && i + 1 < chain.size(); ++i) {
      if (lg_->vertex(chain[i]).head != lg_->vertex(chain[i + 1]).tail) {
        keep = false;
      }
    }
    if (!keep) {
      ++eval->stats.tuples_post_filtered;
      continue;
    }
    if (q.want_witness) {
      eval->witness.clear();
      eval->witness.push_back(lg_->vertex(chain.front()).tail);
      for (LineVertexId lv : chain) {
        eval->witness.push_back(lg_->vertex(lv).head);
      }
    }
    return true;
  }
  return false;
}

}  // namespace sargus
