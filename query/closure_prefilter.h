#ifndef SARGUS_QUERY_CLOSURE_PREFILTER_H_
#define SARGUS_QUERY_CLOSURE_PREFILTER_H_

/// \file closure_prefilter.h
/// \brief Composable fast-deny wrapper around any evaluator.
///
/// If the label-blind transitive closure says the destination is not
/// reachable from the source at all, no labeled/bounded path can exist
/// either — deny in O(1) without touching the inner evaluator. Soundness
/// caveats (each one self-disables the prefilter and delegates):
///
///  * a *directed* closure does not over-approximate expressions with
///    backward steps (they traverse reversed edges) — skipped unless the
///    closure was built undirected;
///  * a closure snapshot does not over-approximate a graph with pending
///    *insertions* in the DeltaOverlay (an added edge may connect the
///    pair) — negative pruning is suspended while the overlay has adds,
///    and resumes after compaction. Pure deletions keep it sound (see
///    index/prefilter_validity.h).

#include "graph/delta_overlay.h"
#include "index/transitive_closure.h"
#include "query/evaluator.h"

namespace sargus {

class ClosurePrefilterEvaluator : public Evaluator {
 public:
  /// Both references must outlive the evaluator; the closure must cover
  /// the same graph the inner evaluator runs on. `overlay` (optional)
  /// is the pending-mutation set layered over that graph's snapshot —
  /// the prefilter consults it to decide when its pruning is still
  /// sound; the inner evaluator is responsible for actually applying it.
  /// `graph` (optional) names the graph the closure was built over:
  /// when set, a query whose expression is bound against a *different*
  /// graph bypasses the prefilter so the inner evaluator can surface
  /// the wrong-graph error instead of the prefilter masking it as an
  /// authoritative deny.
  ClosurePrefilterEvaluator(const TransitiveClosure& closure,
                            const Evaluator& inner,
                            const DeltaOverlay* overlay = nullptr,
                            const SocialGraph* graph = nullptr)
      : closure_(&closure), inner_(&inner), overlay_(overlay),
        graph_(graph) {}

  std::string_view name() const override { return "closure-prefilter"; }

 protected:
  Result<Evaluation> EvaluateWith(const ReachQuery& q,
                                  EvalContext& ctx) const override;

 private:
  const TransitiveClosure* closure_;
  const Evaluator* inner_;
  const DeltaOverlay* overlay_;
  const SocialGraph* graph_;
};

}  // namespace sargus

#endif  // SARGUS_QUERY_CLOSURE_PREFILTER_H_
