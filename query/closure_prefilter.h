#ifndef SARGUS_QUERY_CLOSURE_PREFILTER_H_
#define SARGUS_QUERY_CLOSURE_PREFILTER_H_

/// \file closure_prefilter.h
/// \brief Composable fast-deny wrapper around any evaluator.
///
/// If the label-blind transitive closure says the destination is not
/// reachable from the source at all, no labeled/bounded path can exist
/// either — deny in O(1) without touching the inner evaluator. Soundness
/// caveat: a *directed* closure does not over-approximate expressions
/// with backward steps (they traverse reversed edges), so for those the
/// wrapper skips the prefilter and delegates unless the closure was built
/// undirected.

#include "index/transitive_closure.h"
#include "query/evaluator.h"

namespace sargus {

class ClosurePrefilterEvaluator : public Evaluator {
 public:
  /// Both references must outlive the evaluator; the closure must cover
  /// the same graph the inner evaluator runs on.
  ClosurePrefilterEvaluator(const TransitiveClosure& closure,
                            const Evaluator& inner)
      : closure_(&closure), inner_(&inner) {}

  std::string_view name() const override { return "closure-prefilter"; }

 protected:
  Result<Evaluation> EvaluateWith(const ReachQuery& q,
                                  EvalContext& ctx) const override;

 private:
  const TransitiveClosure* closure_;
  const Evaluator* inner_;
};

}  // namespace sargus

#endif  // SARGUS_QUERY_CLOSURE_PREFILTER_H_
