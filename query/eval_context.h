#ifndef SARGUS_QUERY_EVAL_CONTEXT_H_
#define SARGUS_QUERY_EVAL_CONTEXT_H_

/// \file eval_context.h
/// \brief Per-query scratch memory, pooled across queries.
///
/// Every evaluator needs transient working state proportional to the
/// product space (|V| × automaton states): visited sets, parent chains,
/// frontiers, per-hop dedup arrays. Allocating and zeroing those per
/// query puts an O(|V|) floor under every request, even a one-hop grant.
/// QueryScratch owns all of them as epoch-stamped sets (O(1) logical
/// reset, see common/epoch_set.h) and lazily-grown vectors, so in steady
/// state a query performs no heap allocation for them at all — cost is
/// O(work touched), the whole point of this subsystem.
///
/// Thread-safety contract: an EvalContext must not be used by two threads
/// at once. `Evaluator::Evaluate(q)` uses a thread-local context, which
/// makes concurrent `Evaluate` calls on one shared const evaluator safe;
/// callers that want explicit control (tests, benchmarks, reuse across
/// evaluators) pass their own context via `Evaluate(q, ctx)`. The
/// serving layer above follows the same split: a reader thread hammering
/// an AccessReadView passes one context per thread (or relies on the
/// thread-local default), and CheckAccessBatch reuses a single context
/// across the whole batch — scratch is the only mutable state on the
/// otherwise lock-free read path.

#include <cstdint>
#include <vector>

#include "common/epoch_set.h"
#include "common/types.h"

namespace sargus {

/// One (graph node, automaton state) configuration on a frontier.
struct ProductConfig {
  NodeId node = 0;
  uint32_t state = 0;
};

/// Parent link for witness reconstruction: the configuration whose edge
/// discovered this one (kInvalidNode marks a search seed).
struct ProductParent {
  NodeId node = kInvalidNode;
  uint32_t state = 0;
};

/// The pooled scratch arrays. Grown to the high-water mark of everything
/// evaluated through it and reused; never shrinks.
struct QueryScratch {
  /// Product-space membership for the (forward) walker.
  EpochStampSet visited;
  /// Parent chain, indexed like `visited`; a slot is meaningful only when
  /// `visited` contains it in the current epoch, so stale values are
  /// harmless and the array is never cleared.
  std::vector<ProductParent> parents;
  /// Forward frontier: FIFO via a moving head index (BFS) or LIFO via
  /// pop_back (DFS). Cleared (capacity kept) per query.
  std::vector<ProductConfig> frontier;

  /// Backward-side membership + frontier for bidirectional search.
  EpochStampSet visited_back;
  std::vector<ProductConfig> frontier_back;

  /// Per-hop line-vertex dedup for the adjacency join (one epoch per
  /// hop), plus its double-buffered frontiers.
  EpochStampSet line_seen;
  std::vector<LineVertexId> line_frontier;
  std::vector<LineVertexId> line_next;

  /// Node-level marks for audience collection.
  EpochStampSet node_marks;
};

struct EvalContext {
  QueryScratch scratch;
};

/// This thread's lazily-created context — the default scratch for
/// `Evaluator::Evaluate(q)`. Lives until thread exit; repeated queries on
/// one thread reuse its arrays, which is what removes the per-query
/// allocation floor on the serving path.
EvalContext& ThreadLocalEvalContext();

}  // namespace sargus

#endif  // SARGUS_QUERY_EVAL_CONTEXT_H_
