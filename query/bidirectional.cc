#include "query/bidirectional.h"

#include <deque>

#include "query/online_evaluator.h"

namespace sargus {

Result<Evaluation> BidirectionalEvaluator::Evaluate(
    const ReachQuery& q) const {
  SARGUS_RETURN_IF_ERROR(ValidateQuery(q, *graph_));
  const BoundPathExpression& expr = *q.expr;
  const HopAutomaton nfa(expr);
  const uint32_t num_states = nfa.NumStates();
  const size_t n = csr_->NumNodes();

  Evaluation out;
  if (nfa.AcceptsEmpty() && q.src == q.dst) {
    out.granted = true;
    if (q.want_witness) out.witness = {q.src};
    return out;
  }

  std::vector<uint8_t> visited_f(n * num_states, 0);
  std::vector<uint8_t> visited_b(n * num_states, 0);
  std::deque<std::pair<NodeId, uint32_t>> queue_f;
  std::deque<std::pair<NodeId, uint32_t>> queue_b;
  bool met = false;

  auto push_f = [&](NodeId node, uint32_t state) {
    const size_t id = ProductConfigId(node, state, num_states);
    if (visited_f[id]) return;
    visited_f[id] = 1;
    if (visited_b[id]) met = true;
    queue_f.emplace_back(node, state);
  };
  auto push_b = [&](NodeId node, uint32_t state) {
    const size_t id = ProductConfigId(node, state, num_states);
    if (visited_b[id]) return;
    visited_b[id] = 1;
    if (visited_f[id]) met = true;
    queue_b.emplace_back(node, state);
  };

  // Forward seeds: the start closure at the source.
  for (uint32_t s : nfa.StartStates()) push_f(q.src, s);

  // Backward seeds: configurations whose next edge can land on dst and
  // accept. The destination must pass the final step's filter.
  for (uint32_t s : nfa.AcceptingEdgeStates()) {
    const BoundStep& step = nfa.StepSpec(s);
    if (!BoundPathExpression::NodePasses(*graph_, q.dst, step)) continue;
    // Edges entering dst under `step`'s orientation; their far end is a
    // node that can finish the run in state s.
    const auto entries = step.backward ? csr_->OutWithLabel(q.dst, step.label)
                                       : csr_->InWithLabel(q.dst, step.label);
    for (const CsrSnapshot::Entry& e : entries) push_b(e.other, s);
  }

  while (!met && (!queue_f.empty() || !queue_b.empty())) {
    const bool expand_forward =
        !queue_f.empty() &&
        (queue_b.empty() || queue_f.size() <= queue_b.size());
    if (expand_forward) {
      auto [u, s] = queue_f.front();
      queue_f.pop_front();
      ++out.stats.pairs_visited;
      const BoundStep& step = nfa.StepSpec(s);
      const auto entries = step.backward
                               ? csr_->InWithLabel(u, step.label)
                               : csr_->OutWithLabel(u, step.label);
      for (const CsrSnapshot::Entry& e : entries) {
        const NodeId w = e.other;
        if (!BoundPathExpression::NodePasses(*graph_, w, step)) continue;
        if (w == q.dst && nfa.AcceptsAfterEdge(s)) {
          met = true;
          break;
        }
        for (uint32_t t : nfa.TargetsAfterEdge(s)) push_f(w, t);
        if (met) break;
      }
    } else {
      auto [v, t] = queue_b.front();
      queue_b.pop_front();
      ++out.stats.pairs_visited;
      // Predecessor configs (u, s): consuming one `s`-edge from u enters v
      // and transitions into t.
      for (uint32_t s : nfa.SourcesIntoState(t)) {
        const BoundStep& step = nfa.StepSpec(s);
        if (!BoundPathExpression::NodePasses(*graph_, v, step)) continue;
        const auto entries = step.backward
                                 ? csr_->OutWithLabel(v, step.label)
                                 : csr_->InWithLabel(v, step.label);
        for (const CsrSnapshot::Entry& e : entries) {
          push_b(e.other, s);
          if (met) break;
        }
        if (met) break;
      }
    }
  }

  out.granted = met;
  if (met && q.want_witness) {
    // Membership sets cannot reproduce the path; rerun a forward search
    // for the witness and fold its work into the stats.
    OnlineEvaluator forward(*graph_, *csr_, TraversalOrder::kBfs);
    auto r = forward.Evaluate(q);
    if (r.ok() && r->granted) {
      out.witness = std::move(r->witness);
      out.stats.pairs_visited += r->stats.pairs_visited;
    }
  }
  return out;
}

}  // namespace sargus
