#include "query/bidirectional.h"

#include "query/eval_context.h"
#include "query/product_walker.h"

namespace sargus {

Result<Evaluation> BidirectionalEvaluator::EvaluateWith(
    const ReachQuery& q, EvalContext& ctx) const {
  SARGUS_RETURN_IF_ERROR(
      ValidateQuery(q, *graph_, LogicalNumNodes(*csr_, overlay_)));
  const HopAutomaton& nfa = q.expr->automaton();
  const uint32_t num_states = nfa.NumStates();

  Evaluation out;
  if (nfa.AcceptsEmpty() && q.src == q.dst) {
    out.granted = true;
    if (q.want_witness) out.witness = {q.src};
    return out;
  }

  QueryScratch& scratch = ctx.scratch;
  // Forward side: the shared walker over scratch.visited/frontier.
  ProductWalker forward(*graph_, *csr_, nfa, TraversalOrder::kBfs, scratch,
                        /*track_parents=*/false, overlay_);
  // Backward side: membership + FIFO frontier from the same pool.
  scratch.visited_back.BeginEpoch(LogicalNumNodes(*csr_, overlay_) *
                                  size_t{num_states});
  scratch.frontier_back.clear();
  size_t head_back = 0;
  bool met = false;

  auto push_back_side = [&](NodeId node, uint32_t state) {
    const size_t id = ProductConfigId(node, state, num_states);
    if (!scratch.visited_back.Insert(id)) return;
    if (forward.Visited(node, state)) met = true;
    scratch.frontier_back.push_back(ProductConfig{node, state});
  };

  // Forward seeds: the start closure at the source.
  forward.SeedStarts(q.src);

  // Backward seeds: configurations whose next edge can land on dst and
  // accept. The destination must pass the final step's filter. Edges
  // entering dst under `step`'s orientation (the reverse of the step's
  // own traversal direction, overlay merged); their far end is a node
  // that can finish the run in state s.
  for (uint32_t s : nfa.AcceptingEdgeStates()) {
    const BoundStep& step = nfa.StepSpec(s);
    if (!BoundPathExpression::NodePasses(*graph_, q.dst, step)) continue;
    ForEachNeighborEdge(*csr_, overlay_, q.dst, step.label, !step.backward,
                        [&](NodeId w) {
                          push_back_side(w, s);
                          return false;
                        });
  }

  auto on_accept = [&](NodeId entered, NodeId, uint32_t) {
    if (entered != q.dst) return false;
    met = true;
    return true;
  };
  auto on_push = [&](NodeId node, uint32_t state) {
    if (!scratch.visited_back.Contains(
            ProductConfigId(node, state, num_states))) {
      return false;
    }
    met = true;
    return true;
  };

  uint64_t backward_visited = 0;
  while (!met && (forward.Remaining() > 0 ||
                  head_back < scratch.frontier_back.size())) {
    const size_t remaining_back = scratch.frontier_back.size() - head_back;
    const bool expand_forward =
        forward.Remaining() > 0 &&
        (remaining_back == 0 || forward.Remaining() <= remaining_back);
    if (expand_forward) {
      forward.Step(on_accept, on_push);
    } else {
      const ProductConfig c = scratch.frontier_back[head_back++];
      ++backward_visited;
      // Predecessor configs (u, s): consuming one `s`-edge from u enters
      // c.node and transitions into c.state (overlay merged).
      for (uint32_t s : nfa.SourcesIntoState(c.state)) {
        const BoundStep& step = nfa.StepSpec(s);
        if (!BoundPathExpression::NodePasses(*graph_, c.node, step)) continue;
        ForEachNeighborEdge(*csr_, overlay_, c.node, step.label,
                            !step.backward, [&](NodeId w) {
                              push_back_side(w, s);
                              return met;
                            });
        if (met) break;
      }
    }
  }
  out.stats.pairs_visited = forward.pairs_visited() + backward_visited;

  out.granted = met;
  if (met && q.want_witness) {
    // Membership sets cannot reproduce the path; rerun the shared forward
    // search for the witness (reusing this context's scratch — the
    // bidirectional pass is done with it) and fold its work into the
    // stats.
    Evaluation rerun =
        ForwardProductSearch(*graph_, *csr_, nfa, q.src, q.dst,
                             TraversalOrder::kBfs, /*want_witness=*/true,
                             scratch, overlay_);
    if (rerun.granted) {
      out.witness = std::move(rerun.witness);
      out.stats.pairs_visited += rerun.stats.pairs_visited;
    }
  }
  return out;
}

}  // namespace sargus
