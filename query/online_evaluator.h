#ifndef SARGUS_QUERY_ONLINE_EVALUATOR_H_
#define SARGUS_QUERY_ONLINE_EVALUATOR_H_

/// \file online_evaluator.h
/// \brief Index-free online search: the paper's per-request O(|V|+|E|)
/// baseline.
///
/// Explores the product space (graph node × hop-automaton state) from the
/// source, BFS or DFS order, stopping the moment the destination is
/// reached in an accepting configuration. No precomputation: immune to
/// graph churn (rebuild the CSR and go), pays full exploration on denies.
/// The traversal itself is the shared ProductWalker; per-query state
/// comes from the EvalContext scratch pool, so steady-state cost is
/// O(work touched), not O(|V|).

#include "core/automaton.h"
#include "graph/csr.h"
#include "query/evaluator.h"
#include "query/product_walker.h"

namespace sargus {

class OnlineEvaluator : public Evaluator {
 public:
  /// `graph` and `csr` must outlive the evaluator; `csr` must be a
  /// snapshot of `graph`. `overlay` (optional, must also outlive the
  /// evaluator) layers pending mutations over the snapshot, so queries
  /// see AddEdge/RemoveEdge immediately without a rebuild; an empty
  /// overlay costs one branch per expansion.
  OnlineEvaluator(const SocialGraph& graph, const CsrSnapshot& csr,
                  TraversalOrder order = TraversalOrder::kBfs,
                  const DeltaOverlay* overlay = nullptr)
      : graph_(&graph), csr_(&csr), overlay_(overlay), order_(order) {}

  std::string_view name() const override {
    return order_ == TraversalOrder::kBfs ? "online-bfs" : "online-dfs";
  }

 protected:
  Result<Evaluation> EvaluateWith(const ReachQuery& q,
                                  EvalContext& ctx) const override;

 private:
  const SocialGraph* graph_;
  const CsrSnapshot* csr_;
  const DeltaOverlay* overlay_;
  TraversalOrder order_;
};

}  // namespace sargus

#endif  // SARGUS_QUERY_ONLINE_EVALUATOR_H_
