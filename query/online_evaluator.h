#ifndef SARGUS_QUERY_ONLINE_EVALUATOR_H_
#define SARGUS_QUERY_ONLINE_EVALUATOR_H_

/// \file online_evaluator.h
/// \brief Index-free online search: the paper's per-request O(|V|+|E|)
/// baseline.
///
/// Explores the product space (graph node × hop-automaton state) from the
/// source, BFS or DFS order, stopping the moment the destination is
/// reached in an accepting configuration. No precomputation: immune to
/// graph churn (rebuild the CSR and go), pays full exploration on denies.

#include "core/automaton.h"
#include "graph/csr.h"
#include "query/evaluator.h"

namespace sargus {

enum class TraversalOrder { kBfs, kDfs };

class OnlineEvaluator : public Evaluator {
 public:
  /// `graph` and `csr` must outlive the evaluator; `csr` must be a
  /// snapshot of `graph`.
  OnlineEvaluator(const SocialGraph& graph, const CsrSnapshot& csr,
                  TraversalOrder order = TraversalOrder::kBfs)
      : graph_(&graph), csr_(&csr), order_(order) {}

  Result<Evaluation> Evaluate(const ReachQuery& q) const override;

  std::string_view name() const override {
    return order_ == TraversalOrder::kBfs ? "online-bfs" : "online-dfs";
  }

 private:
  const SocialGraph* graph_;
  const CsrSnapshot* csr_;
  TraversalOrder order_;
};

}  // namespace sargus

#endif  // SARGUS_QUERY_ONLINE_EVALUATOR_H_
