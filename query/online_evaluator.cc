#include "query/online_evaluator.h"

#include <algorithm>
#include <deque>

namespace sargus {

Result<Evaluation> OnlineEvaluator::Evaluate(const ReachQuery& q) const {
  SARGUS_RETURN_IF_ERROR(ValidateQuery(q, *graph_));
  const BoundPathExpression& expr = *q.expr;
  const HopAutomaton nfa(expr);
  const uint32_t num_states = nfa.NumStates();
  const size_t n = csr_->NumNodes();

  Evaluation out;
  if (nfa.AcceptsEmpty() && q.src == q.dst) {
    out.granted = true;
    if (q.want_witness) out.witness = {q.src};
    return out;
  }

  std::vector<uint8_t> visited(n * num_states, 0);
  // Parent chain for witness reconstruction: previous config + the node
  // that edge came from (parent config's node, kept for clarity).
  struct Parent {
    NodeId node = kInvalidNode;
    uint32_t state = 0;
  };
  std::vector<Parent> parents;
  if (q.want_witness) parents.resize(n * num_states);

  std::deque<std::pair<NodeId, uint32_t>> frontier;
  auto push = [&](NodeId node, uint32_t state, NodeId from_node,
                  uint32_t from_state) {
    const size_t id = ProductConfigId(node, state, num_states);
    if (visited[id]) return;
    visited[id] = 1;
    if (q.want_witness) parents[id] = Parent{from_node, from_state};
    frontier.emplace_back(node, state);
  };

  for (uint32_t s : nfa.StartStates()) {
    push(q.src, s, kInvalidNode, 0);
  }

  auto witness_from = [&](NodeId final_node, NodeId at, uint32_t state) {
    // Chain: src ... at, then the final edge to final_node.
    std::vector<NodeId> path{final_node, at};
    NodeId cur_node = at;
    uint32_t cur_state = state;
    while (true) {
      const Parent& p = parents[ProductConfigId(cur_node, cur_state, num_states)];
      if (p.node == kInvalidNode) break;
      // Every parent link is exactly one consumed edge, so repeated
      // nodes (self-loops) are legitimate path entries.
      path.push_back(p.node);
      cur_node = p.node;
      cur_state = p.state;
    }
    std::reverse(path.begin(), path.end());
    return path;
  };

  while (!frontier.empty()) {
    NodeId u;
    uint32_t s;
    if (order_ == TraversalOrder::kBfs) {
      std::tie(u, s) = frontier.front();
      frontier.pop_front();
    } else {
      std::tie(u, s) = frontier.back();
      frontier.pop_back();
    }
    ++out.stats.pairs_visited;

    const BoundStep& step = nfa.StepSpec(s);
    const auto entries = step.backward
                             ? csr_->InWithLabel(u, step.label)
                             : csr_->OutWithLabel(u, step.label);
    for (const CsrSnapshot::Entry& e : entries) {
      const NodeId w = e.other;
      if (!BoundPathExpression::NodePasses(*graph_, w, step)) continue;
      if (w == q.dst && nfa.AcceptsAfterEdge(s)) {
        out.granted = true;
        if (q.want_witness) out.witness = witness_from(w, u, s);
        return out;
      }
      for (uint32_t t : nfa.TargetsAfterEdge(s)) {
        push(w, t, u, s);
      }
    }
  }
  return out;
}

}  // namespace sargus
