#include "query/online_evaluator.h"

#include "query/eval_context.h"

namespace sargus {

Result<Evaluation> OnlineEvaluator::EvaluateWith(const ReachQuery& q,
                                                 EvalContext& ctx) const {
  SARGUS_RETURN_IF_ERROR(
      ValidateQuery(q, *graph_, LogicalNumNodes(*csr_, overlay_)));
  return ForwardProductSearch(*graph_, *csr_, q.expr->automaton(), q.src,
                              q.dst, order_, q.want_witness, ctx.scratch,
                              overlay_);
}

}  // namespace sargus
