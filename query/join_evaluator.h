#ifndef SARGUS_QUERY_JOIN_EVALUATOR_H_
#define SARGUS_QUERY_JOIN_EVALUATOR_H_

/// \file join_evaluator.h
/// \brief The paper's precomputed join pipeline (§3.3/§3.4).
///
/// A bound expression expands into concrete label sequences (one per
/// choice of hop count in every step — the multiplicative "line query"
/// expansion bench_depth_sweep.cc charts). Each sequence is evaluated as
/// a join over line vertices:
///
///  * adjacency mode (default) — frontier join through the
///    ClusterJoinIndex: one cluster lookup per (frontier vertex, hop),
///    endpoint-anchored on both sides, early exit on the first match;
///  * faithful mode (faithful_post_filter) — the paper's formulation:
///    per-hop base tables joined pairwise on *oracle reachability*, full
///    tuples materialized, then post-processed down to adjacency (and, if
///    anchor_endpoints_early is off, to the query endpoints). Kept for
///    the ablation; the tuple cap guards its appetite.
///
/// Infeasible sequences are discarded upfront via the cluster index's
/// label-pair reachability summary.

#include "graph/csr.h"
#include "graph/line_graph.h"
#include "index/base_tables.h"
#include "index/cluster_index.h"
#include "index/line_oracle.h"
#include "query/evaluator.h"

namespace sargus {

struct JoinIndexOptions {
  /// Reproduce the paper's reachability-join + post-filter evaluation.
  bool faithful_post_filter = false;
  /// Restrict the first/last hop tables to the query endpoints up front
  /// (faithful mode only; adjacency mode always anchors).
  bool anchor_endpoints_early = true;
  /// Abort with kResourceExhausted beyond this many live tuples.
  size_t max_intermediate_tuples = size_t{1} << 22;
  /// Abort with kResourceExhausted beyond this many concrete sequences.
  size_t max_line_queries = 4096;
  /// Oracle mode used for reachability joins in faithful mode.
  OracleMode oracle_mode = OracleMode::kTwoHop;
};

class JoinIndexEvaluator : public Evaluator {
 public:
  /// All referenced structures must outlive the evaluator and must have
  /// been built over the same graph/line-graph.
  JoinIndexEvaluator(const SocialGraph& graph, const LineGraph& lg,
                     const LineReachabilityOracle& oracle,
                     const ClusterJoinIndex& cluster_index,
                     const BaseTables& tables, JoinIndexOptions options)
      : graph_(&graph),
        lg_(&lg),
        oracle_(&oracle),
        cluster_(&cluster_index),
        tables_(&tables),
        options_(options) {}

  std::string_view name() const override {
    return options_.faithful_post_filter ? "join-index-faithful"
                                         : "join-index";
  }

 protected:
  Result<Evaluation> EvaluateWith(const ReachQuery& q,
                                  EvalContext& ctx) const override;

 private:
  struct Hop {
    LabelId label = kInvalidLabel;
    bool backward = false;
    const BoundStep* step = nullptr;  // filter source
  };

  /// Evaluates one concrete sequence; appends to `eval`'s stats.
  Result<bool> EvaluateSequence(const ReachQuery& q,
                                const std::vector<Hop>& hops,
                                EvalContext& ctx, Evaluation* eval) const;
  Result<bool> AdjacencyJoin(const ReachQuery& q, const std::vector<Hop>& hops,
                             EvalContext& ctx, Evaluation* eval) const;
  Result<bool> FaithfulJoin(const ReachQuery& q, const std::vector<Hop>& hops,
                            Evaluation* eval) const;

  const SocialGraph* graph_;
  const LineGraph* lg_;
  const LineReachabilityOracle* oracle_;
  const ClusterJoinIndex* cluster_;
  const BaseTables* tables_;
  JoinIndexOptions options_;
};

}  // namespace sargus

#endif  // SARGUS_QUERY_JOIN_EVALUATOR_H_
