#ifndef SARGUS_QUERY_PRODUCT_WALKER_H_
#define SARGUS_QUERY_PRODUCT_WALKER_H_

/// \file product_walker.h
/// \brief ProductWalker: the one product-space (graph node × automaton
/// state) traversal the whole system shares.
///
/// The grant semantics of a traversal — visited indexing, start-closure
/// seeding, per-step edge orientation, attribute-filter checks, the
/// accept-after-edge test, parent chains for witnesses — used to be
/// hand-rolled three times (online evaluator, bidirectional forward side,
/// audience collector). They now live here, once: callers differ only in
/// what they do when an edge lands in an accepting configuration
/// (on_accept) and when a fresh configuration is pushed (on_push, used by
/// bidirectional search to detect frontier intersection).
///
/// All transient state lives in the caller's QueryScratch: the walker
/// itself is a cheap view object constructed per query. Constructing it
/// opens a new epoch on `scratch.visited` and truncates the frontier —
/// O(1) in steady state, never an O(|V|·states) allocation.
///
/// Snapshot-consistency contract: a walk runs over one CsrSnapshot plus
/// an optional DeltaOverlay (pending mutations merged into every neighbor
/// expansion via ForEachNeighborEdge — the walk sees the *logical* graph,
/// base minus staged removals plus staged additions). The snapshot and
/// the overlay must stay frozen for the duration of the walk: mutating
/// the overlay mid-walk is a logic race (configurations already expanded
/// used the old delta), and swapping the snapshot is a lifetime bug.
/// Staged-edge endpoints must be < LogicalNumNodes(csr, overlay) —
/// visited arrays are sized to the snapshot plus staged node additions.
///
/// Thread-safety: a walker is single-threaded by construction — it owns
/// no state but mutates the caller's QueryScratch, which must never be
/// shared between concurrent walks. Any number of concurrent walkers may
/// share one (csr, overlay, nfa) as long as each has its own scratch and
/// nothing mutates the shared structures meanwhile.

#include <vector>

#include "core/automaton.h"
#include "graph/csr.h"
#include "graph/delta_overlay.h"
#include "query/eval_context.h"
#include "query/evaluator.h"

namespace sargus {

enum class TraversalOrder { kBfs, kDfs };

class ProductWalker {
 public:
  /// Opens a fresh walk over `scratch`. `graph`, `csr`, `nfa` and
  /// `scratch` must outlive the walker; `csr` must snapshot `graph` and
  /// `nfa` must be compiled from an expression bound to it. With
  /// `track_parents`, parent links are recorded for BuildWitness.
  /// `overlay` (optional) layers pending mutations over `csr`; it must be
  /// relative to exactly that snapshot and outlive the walker.
  ProductWalker(const SocialGraph& graph, const CsrSnapshot& csr,
                const HopAutomaton& nfa, TraversalOrder order,
                QueryScratch& scratch, bool track_parents,
                const DeltaOverlay* overlay = nullptr)
      : graph_(&graph),
        csr_(&csr),
        overlay_(overlay),
        nfa_(&nfa),
        scratch_(&scratch),
        order_(order),
        track_parents_(track_parents),
        num_states_(nfa.NumStates()) {
    // Size by the logical node range — snapshot nodes plus staged node
    // additions — so walks may touch overlay-staged nodes safely.
    const size_t slots = LogicalNumNodes(csr, overlay) * size_t{num_states_};
    scratch.visited.BeginEpoch(slots);
    if (track_parents_ && scratch.parents.size() < slots) {
      scratch.parents.resize(slots);
    }
    scratch.frontier.clear();
  }

  /// Seeds the automaton's start closure at `node` (parents marked as
  /// search roots).
  void SeedStarts(NodeId node) {
    for (uint32_t s : nfa_->StartStates()) {
      Push(node, s, kInvalidNode, 0);
    }
  }

  /// Marks (node, state) visited and enqueues it; returns true when the
  /// configuration is fresh this walk.
  bool Push(NodeId node, uint32_t state, NodeId from, uint32_t from_state) {
    const size_t id = ProductConfigId(node, state, num_states_);
    if (!scratch_->visited.Insert(id)) return false;
    if (track_parents_) scratch_->parents[id] = ProductParent{from, from_state};
    scratch_->frontier.push_back(ProductConfig{node, state});
    return true;
  }

  bool Visited(NodeId node, uint32_t state) const {
    return scratch_->visited.Contains(
        ProductConfigId(node, state, num_states_));
  }

  /// Configurations still awaiting expansion.
  size_t Remaining() const {
    return order_ == TraversalOrder::kBfs
               ? scratch_->frontier.size() - head_
               : scratch_->frontier.size();
  }

  /// Pops one configuration and expands it. For every outgoing (or, for
  /// backward steps, incoming) edge whose far node passes the step
  /// filter:
  ///   * when the successor closure accepts, `on_accept(entered, from,
  ///     from_state)` runs first — returning true stops the walk (the
  ///     entered node is a match endpoint);
  ///   * each fresh successor configuration is pushed; `on_push(node,
  ///     state)` runs on fresh pushes and may also stop the walk.
  /// Returns true when a callback stopped the walk.
  template <typename OnAcceptEdge, typename OnFreshPush>
  bool Step(OnAcceptEdge&& on_accept, OnFreshPush&& on_push) {
    ProductConfig c;
    if (order_ == TraversalOrder::kBfs) {
      c = scratch_->frontier[head_++];
    } else {
      c = scratch_->frontier.back();
      scratch_->frontier.pop_back();
    }
    ++pairs_visited_;

    const BoundStep& step = nfa_->StepSpec(c.state);
    const bool accepts = nfa_->AcceptsAfterEdge(c.state);
    const auto& targets = nfa_->TargetsAfterEdge(c.state);
    // Logical neighbors: base entries minus overlay removals plus overlay
    // additions (one shared merge point, see ForEachNeighborEdge).
    return ForEachNeighborEdge(
        *csr_, overlay_, c.node, step.label, step.backward, [&](NodeId w) {
          if (!BoundPathExpression::NodePasses(*graph_, w, step)) return false;
          if (accepts && on_accept(w, c.node, c.state)) return true;
          for (uint32_t t : targets) {
            if (Push(w, t, c.node, c.state) && on_push(w, t)) return true;
          }
          return false;
        });
  }

  /// Runs to exhaustion or until `on_accept` stops the walk; returns true
  /// in the latter case.
  template <typename OnAcceptEdge>
  bool Run(OnAcceptEdge&& on_accept) {
    auto no_push_stop = [](NodeId, uint32_t) { return false; };
    while (Remaining() > 0) {
      if (Step(on_accept, no_push_stop)) return true;
    }
    return false;
  }

  uint64_t pairs_visited() const { return pairs_visited_; }

  /// Witness path src ... final_node, given the accepting edge
  /// (at, state) -> final_node. Requires track_parents.
  std::vector<NodeId> BuildWitness(NodeId final_node, NodeId at,
                                   uint32_t state) const;

 private:
  const SocialGraph* graph_;
  const CsrSnapshot* csr_;
  const DeltaOverlay* overlay_;
  const HopAutomaton* nfa_;
  QueryScratch* scratch_;
  TraversalOrder order_;
  bool track_parents_;
  uint32_t num_states_;
  size_t head_ = 0;
  uint64_t pairs_visited_ = 0;
};

/// The complete forward product-space search both OnlineEvaluator and
/// BidirectionalEvaluator's witness reconstruction run: seed at `src`,
/// walk in `order`, grant on reaching `dst` in an accepting
/// configuration, optionally reconstructing the witness path. Validation
/// is the caller's job (ValidateQuery). `overlay` layers pending
/// mutations over `csr` (nullptr = the snapshot alone).
Evaluation ForwardProductSearch(const SocialGraph& graph,
                                const CsrSnapshot& csr,
                                const HopAutomaton& nfa, NodeId src,
                                NodeId dst, TraversalOrder order,
                                bool want_witness, QueryScratch& scratch,
                                const DeltaOverlay* overlay = nullptr);

}  // namespace sargus

#endif  // SARGUS_QUERY_PRODUCT_WALKER_H_
