#include "query/evaluator.h"

#include "query/eval_context.h"

namespace sargus {

Result<Evaluation> Evaluator::Evaluate(const ReachQuery& q) const {
  return EvaluateWith(q, ThreadLocalEvalContext());
}

Status ValidateQuery(const ReachQuery& q, const SocialGraph& graph,
                     size_t num_nodes) {
  if (q.expr == nullptr) {
    return Status::InvalidArgument("query has no expression");
  }
  if (q.expr->graph() != &graph) {
    return Status::InvalidArgument(
        "expression was bound against a different graph");
  }
  if (q.src >= num_nodes || q.dst >= num_nodes) {
    return Status::InvalidArgument(
        "query endpoint outside the evaluator's snapshot");
  }
  if (q.expr->steps().empty()) {
    return Status::InvalidArgument("expression has no steps");
  }
  return OkStatus();
}

}  // namespace sargus
