#include "query/eval_context.h"

namespace sargus {

EvalContext& ThreadLocalEvalContext() {
  thread_local EvalContext ctx;
  return ctx;
}

}  // namespace sargus
