#ifndef SARGUS_SHARD_PARTITIONER_H_
#define SARGUS_SHARD_PARTITIONER_H_

/// \file partitioner.h
/// \brief Splits a SocialGraph's node set into N shards.
///
/// Two strategies, both deterministic:
///
///  - kContiguous: equal-width contiguous id ranges (ceil-div). Zero
///    graph inspection; the right default for synthetic id-ordered
///    graphs and the cheapest to reason about in tests.
///  - kCommunity: a bounded number of label-propagation sweeps over the
///    undirected adjacency (ties broken toward the smallest label, fixed
///    node order), then communities packed greedily onto the
///    least-loaded shard, largest first. Cuts far fewer edges than
///    contiguous ranges on clustered graphs — fewer cut edges means
///    smaller boundary summaries and fewer cross-shard walks.
///
/// The partitioner only assigns nodes; building the per-shard graphs is
/// graph/subgraph.h and wiring them together is shard/router.h.

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/social_graph.h"

namespace sargus {

enum class PartitionStrategy {
  kContiguous,
  kCommunity,
};

struct PartitionOptions {
  uint32_t num_shards = 1;
  PartitionStrategy strategy = PartitionStrategy::kContiguous;
  /// Label-propagation sweeps before packing (kCommunity only). The
  /// propagation usually converges in 3-5 sweeps on social graphs; the
  /// cap keeps worst-case cost linear.
  uint32_t community_sweeps = 4;
};

struct GraphPartition {
  uint32_t num_shards = 1;
  /// node -> shard id, covering every node of the source graph.
  std::vector<uint32_t> shard_of;
  /// Per shard, its member nodes in ascending id order.
  std::vector<std::vector<NodeId>> members;
  /// Live edges whose endpoints landed on different shards (slot order).
  std::vector<Edge> cut_edges;
  size_t total_live_edges = 0;
};

class GraphPartitioner {
 public:
  /// kInvalidArgument when num_shards is zero. More shards than nodes is
  /// allowed — trailing shards are simply empty.
  static Result<GraphPartition> Partition(const SocialGraph& g,
                                          const PartitionOptions& options);
};

}  // namespace sargus

#endif  // SARGUS_SHARD_PARTITIONER_H_
