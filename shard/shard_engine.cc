#include "shard/shard_engine.h"

#include <string>
#include <utility>
#include <vector>

#include "query/eval_context.h"
#include "query/product_walker.h"

namespace sargus {

Result<PolicyStore> ClonePolicyStore(const PolicyStore& store) {
  PolicyStore copy;
  for (ResourceId r = 0; r < store.NumResources(); ++r) {
    const PolicyStore::Resource& res = store.resource(r);
    const ResourceId assigned = copy.RegisterResource(res.owner, res.name);
    if (assigned != r) {
      return Status::Internal("ClonePolicyStore: resource id drifted");
    }
  }
  for (RuleId id = 0; id < store.NumRules(); ++id) {
    const PolicyStore::Rule& rule = store.rule(id);
    std::vector<std::string> paths;
    paths.reserve(rule.paths.size());
    for (const PathExpression& p : rule.paths) paths.push_back(p.ToString());
    SARGUS_ASSIGN_OR_RETURN(const RuleId assigned,
                            copy.AddRuleFromPaths(rule.resource, paths));
    if (assigned != id) {
      return Status::Internal("ClonePolicyStore: rule id drifted");
    }
  }
  return copy;
}

wire::CheckRequest ToWire(const AccessRequest& request) {
  wire::CheckRequest w;
  w.requester = request.requester;
  w.resource = request.resource;
  w.want_witness = request.want_witness ? 1 : 0;
  if (request.evaluator_override.has_value()) {
    w.has_evaluator_override = 1;
    w.evaluator_override = static_cast<uint8_t>(*request.evaluator_override);
  }
  return w;
}

AccessRequest FromWire(const wire::CheckRequest& request) {
  AccessRequest r;
  r.requester = request.requester;
  r.resource = request.resource;
  r.want_witness = request.want_witness != 0;
  if (request.has_evaluator_override != 0) {
    r.evaluator_override =
        static_cast<EvaluatorChoice>(request.evaluator_override);
  }
  return r;
}

wire::CheckReply ToWire(const Result<AccessDecision>& decision) {
  wire::CheckReply w;
  if (!decision.ok()) {
    w.status_code = wire::PackStatus(decision.status());
    w.error = std::string(decision.status().message());
    return w;
  }
  const AccessDecision& d = *decision;
  w.granted = d.granted ? 1 : 0;
  w.owner_access = d.owner_access ? 1 : 0;
  if (d.matched_rule.has_value()) {
    w.has_matched_rule = 1;
    w.matched_rule = *d.matched_rule;
  }
  w.pairs_visited = d.stats.pairs_visited;
  w.stamp = {d.snapshot_generation, d.overlay_version};
  w.witness = d.witness;
  return w;
}

Result<AccessDecision> FromWire(const wire::CheckReply& reply,
                                NodeId requester, ResourceId resource) {
  if (reply.status_code != 0) {
    return wire::UnpackStatus(reply.status_code, reply.error);
  }
  AccessDecision d;
  d.granted = reply.granted != 0;
  d.requester = requester;
  d.resource = resource;
  if (reply.has_matched_rule != 0) d.matched_rule = reply.matched_rule;
  d.owner_access = reply.owner_access != 0;
  d.stats.pairs_visited = reply.pairs_visited;
  d.witness = reply.witness;
  d.evaluator_name = "shard-local";
  d.snapshot_generation = reply.stamp.snapshot_generation;
  d.overlay_version = reply.stamp.overlay_version;
  return d;
}

ShardEngine::ShardEngine(uint32_t id, std::unique_ptr<SocialGraph> graph,
                         std::unique_ptr<PolicyStore> store,
                         const EngineOptions& options)
    : id_(id),
      owned_graph_(std::move(graph)),
      owned_store_(std::move(store)),
      graph_(owned_graph_.get()),
      store_(owned_store_.get()),
      engine_(*owned_graph_, *owned_store_, options) {}

ShardEngine::ShardEngine(uint32_t id, SocialGraph& graph,
                         const PolicyStore& store, const EngineOptions& options)
    : id_(id),
      graph_(&graph),
      store_(&store),
      engine_(graph, store, options) {}

void ShardEngine::SetTopology(std::shared_ptr<const ShardTopology> topology) {
  std::lock_guard<std::mutex> lock(topo_mu_);
  topology_ = std::move(topology);
}

std::shared_ptr<const ShardTopology> ShardEngine::topology() const {
  std::lock_guard<std::mutex> lock(topo_mu_);
  return topology_;
}

wire::Stamp ShardEngine::ViewStamp() const {
  const auto view = engine_.AcquireReadView();
  if (view == nullptr) return {};
  return {view->snapshot_generation(), view->overlay_version()};
}

wire::CheckReply ShardEngine::Check(const wire::CheckRequest& request) const {
  return ToWire(engine_.CheckAccess(FromWire(request)));
}

wire::BatchCheckReply ShardEngine::CheckBatch(
    const wire::BatchCheckRequest& request) const {
  std::vector<AccessRequest> requests;
  requests.reserve(request.requests.size());
  for (const wire::CheckRequest& r : request.requests) {
    requests.push_back(FromWire(r));
  }
  wire::BatchCheckReply reply;
  for (const Result<AccessDecision>& d : engine_.CheckAccessBatch(requests)) {
    reply.replies.push_back(ToWire(d));
  }
  return reply;
}

namespace {

wire::WalkReply WalkError(const Status& status) {
  wire::WalkReply reply;
  reply.status_code = wire::PackStatus(status);
  reply.error = std::string(status.message());
  return reply;
}

}  // namespace

wire::WalkReply ShardEngine::ExpandFrontier(
    const wire::WalkRequest& request) const {
  const auto view = engine_.AcquireReadView();
  if (view == nullptr) {
    return WalkError(
        Status::FailedPrecondition("ExpandFrontier: indexes not built"));
  }
  const PolicySnapshot& policy = view->policy();
  if (request.rule >= policy.rules.size() ||
      request.path >= policy.rules[request.rule].paths.size()) {
    return WalkError(Status::InvalidArgument(
        "ExpandFrontier: rule/path out of range"));
  }
  const PolicySnapshot::CompiledPath& cp =
      policy.rules[request.rule].paths[request.path];
  if (!cp.bind_status.ok() || cp.bound == nullptr) {
    return WalkError(cp.bind_status.ok()
                         ? Status::FailedPrecondition(
                               "ExpandFrontier: path not compiled")
                         : cp.bind_status);
  }
  const HopAutomaton& nfa = cp.bound->automaton();
  const uint32_t num_states = nfa.NumStates();
  const size_t logical = view->logical_num_nodes();
  if (request.requester >= logical) {
    return WalkError(
        Status::InvalidArgument("ExpandFrontier: requester out of range"));
  }
  const std::vector<uint32_t> residual = wire::ResidualHopBudgets(nfa);
  if (request.seed == wire::WalkSeed::kOwnerStarts) {
    if (request.owner >= logical) {
      return WalkError(
          Status::InvalidArgument("ExpandFrontier: owner out of range"));
    }
  } else {
    for (const wire::FrontierEntry& e : request.frontier) {
      if (e.node >= logical || e.state >= num_states) {
        return WalkError(Status::InvalidArgument(
            "ExpandFrontier: frontier entry out of range"));
      }
      if (e.residual_hops != residual[e.state]) {
        // A residual the receiver derives differently means the two
        // sides compiled different automata — diverged policy or label
        // dictionaries, never safe to walk through.
        return WalkError(Status::InvalidArgument(
            "ExpandFrontier: residual-hop mismatch (diverged automata?)"));
      }
    }
  }

  const auto topo = topology();
  QueryScratch& scratch = ThreadLocalEvalContext().scratch;
  ProductWalker walker(view->graph(), view->csr(), nfa, TraversalOrder::kBfs,
                       scratch, /*track_parents=*/false, &view->overlay());
  if (request.seed == wire::WalkSeed::kOwnerStarts) {
    walker.SeedStarts(request.owner);
  } else {
    for (const wire::FrontierEntry& e : request.frontier) {
      walker.Push(e.node, e.state, kInvalidNode, 0);
    }
  }

  wire::WalkReply reply;
  bool accepted = false;
  auto on_accept = [&](NodeId entered, NodeId, uint32_t) {
    if (entered != request.requester) return false;
    accepted = true;
    return true;
  };
  // Fresh configurations at nodes another shard owns are exported as
  // entry points; the walk still continues THROUGH them over this
  // shard's local edges (sound — local edges are a subset of global
  // edges — and it shortens the composition fixpoint).
  auto on_push = [&](NodeId node, uint32_t state) {
    if (topo != nullptr && node < topo->shard_of.size() &&
        topo->shard_of[node] != id_) {
      reply.exports.push_back({node, state, residual[state]});
    }
    return false;
  };
  while (walker.Remaining() > 0 && !accepted) {
    walker.Step(on_accept, on_push);
  }

  reply.accepted = accepted ? 1 : 0;
  reply.pairs_visited = walker.pairs_visited();
  reply.stamp = {view->snapshot_generation(), view->overlay_version()};
  return reply;
}

WriteTicket ShardEngine::SubmitMutate(const wire::MutateRequest& request) {
  switch (request.op) {
    case wire::MutateOp::kAddEdge:
      return request.label != kInvalidLabel
                 ? engine_.SubmitAddEdge(request.src, request.dst,
                                         request.label)
                 : engine_.SubmitAddEdge(request.src, request.dst,
                                         request.label_name);
    case wire::MutateOp::kRemoveEdge:
      return request.label != kInvalidLabel
                 ? engine_.SubmitRemoveEdge(request.src, request.dst,
                                            request.label)
                 : engine_.SubmitRemoveEdge(request.src, request.dst,
                                            request.label_name);
    case wire::MutateOp::kAddNode:
      return engine_.SubmitAddNode();
  }
  return WriteTicket();  // unknown op: invalid ticket (Wait fails)
}

wire::MutateReply ShardEngine::ReplyFromOutcome(
    const wire::MutateRequest& request, const WriteOutcome& outcome) {
  wire::MutateReply reply;
  reply.status_code = wire::PackStatus(outcome.status);
  if (!outcome.status.ok()) {
    reply.error = std::string(outcome.status.message());
  } else if (request.op == wire::MutateOp::kAddNode) {
    reply.new_node = outcome.node;
  }
  // The ticket's stamp, not a racy re-read of the engine counters: the
  // exact (generation, overlay_version) the mutation landed in even
  // when other producers committed in the same or a later batch.
  reply.stamp = {outcome.generation, outcome.overlay_version};
  return reply;
}

wire::MutateReply ShardEngine::Mutate(const wire::MutateRequest& request) {
  return ReplyFromOutcome(request, SubmitMutate(request).Wait());
}

Status ShardEngine::RefreshSummary(const ShardTopology& topology,
                                   const BoundarySummaryOptions& options) {
  const auto view = engine_.AcquireReadView();
  if (view == nullptr) {
    return Status::FailedPrecondition("RefreshSummary: indexes not built");
  }
  if (id_ >= topology.boundary.size()) {
    return Status::InvalidArgument("RefreshSummary: shard id not in topology");
  }
  SARGUS_ASSIGN_OR_RETURN(
      BoundarySummary built,
      BoundarySummary::Build(
          view->graph(), view->csr(), view->overlay(),
          topology.boundary[id_], view->policy(),
          {view->snapshot_generation(), view->overlay_version()}, options));
  auto shared = std::make_shared<const BoundarySummary>(std::move(built));
  std::lock_guard<std::mutex> lock(summary_mu_);
  summary_ = std::move(shared);
  return OkStatus();
}

std::shared_ptr<const BoundarySummary> ShardEngine::summary() const {
  std::lock_guard<std::mutex> lock(summary_mu_);
  return summary_;
}

std::vector<uint8_t> ShardEngine::HandleFrame(std::span<const uint8_t> frame) {
  Result<wire::Message> parsed = wire::ParseMessage(frame);
  if (!parsed.ok()) {
    wire::ErrorFrame err;
    err.status_code = wire::PackStatus(parsed.status());
    err.message = parsed.status().message();
    return wire::Encode(err);
  }
  wire::Message& msg = *parsed;
  if (auto* check = std::get_if<wire::CheckRequest>(&msg)) {
    return wire::Encode(Check(*check));
  }
  if (auto* batch = std::get_if<wire::BatchCheckRequest>(&msg)) {
    return wire::Encode(CheckBatch(*batch));
  }
  if (auto* walk = std::get_if<wire::WalkRequest>(&msg)) {
    return wire::Encode(ExpandFrontier(*walk));
  }
  if (auto* mutate = std::get_if<wire::MutateRequest>(&msg)) {
    return wire::Encode(Mutate(*mutate));
  }
  // A syntactically valid frame that is not a request (a reply or an
  // error frame): refuse it explicitly.
  wire::ErrorFrame err;
  err.status_code = static_cast<uint8_t>(StatusCode::kInvalidArgument);
  err.message = "shard: frame is not a request message";
  return wire::Encode(err);
}

}  // namespace sargus
