#include "shard/router.h"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>

#include "graph/subgraph.h"

namespace sargus {
namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

uint64_t ConfigKey(const wire::FrontierEntry& e) {
  return (static_cast<uint64_t>(e.node) << 32) | e.state;
}

/// splitmix64 finalizer: the deterministic hash behind backoff jitter.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool IsTransportError(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kDeadlineExceeded;
}

/// Inserts `node` into a sorted-unique vector.
void SortedInsert(std::vector<NodeId>& v, NodeId node) {
  const auto it = std::lower_bound(v.begin(), v.end(), node);
  if (it == v.end() || *it != node) v.insert(it, node);
}

void SortedErase(std::vector<NodeId>& v, NodeId node) {
  const auto it = std::lower_bound(v.begin(), v.end(), node);
  if (it != v.end() && *it == node) v.erase(it);
}

bool HasCutArc(const ShardTopology& topo, NodeId src, NodeId dst,
               LabelId label) {
  for (const CutArc& a : topo.CutOut(src)) {
    if (a.other == dst && a.label == label) return true;
  }
  return false;
}

void EraseCutArc(std::unordered_map<NodeId, std::vector<CutArc>>& map,
                 NodeId key, NodeId other, LabelId label) {
  const auto it = map.find(key);
  if (it == map.end()) return;
  auto& arcs = it->second;
  for (auto a = arcs.begin(); a != arcs.end(); ++a) {
    if (a->other == other && a->label == label) {
      arcs.erase(a);
      break;
    }
  }
  if (arcs.empty()) map.erase(it);
}

bool TouchesCut(const ShardTopology& topo, NodeId node) {
  return !topo.CutOut(node).empty() || !topo.CutIn(node).empty();
}

}  // namespace

ShardRouter::ShardRouter(SocialGraph& graph, const PolicyStore& store,
                         RouterOptions options)
    : master_graph_(&graph),
      master_store_(&store),
      options_(std::move(options)) {}

Status ShardRouter::Build() {
  SARGUS_ASSIGN_OR_RETURN(
      partition_, GraphPartitioner::Partition(*master_graph_, options_.partition));

  shards_.clear();
  if (partition_.num_shards == 1) {
    // Zero-copy passthrough: one engine over the caller's graph + store.
    shards_.push_back(std::make_unique<ShardEngine>(
        0, *master_graph_, *master_store_, options_.engine));
  } else {
    for (uint32_t s = 0; s < partition_.num_shards; ++s) {
      SARGUS_ASSIGN_OR_RETURN(
          SocialGraph sub,
          ExtractShardGraph(*master_graph_, partition_.shard_of, s));
      SARGUS_ASSIGN_OR_RETURN(PolicyStore cloned,
                              ClonePolicyStore(*master_store_));
      shards_.push_back(std::make_unique<ShardEngine>(
          s, std::make_unique<SocialGraph>(std::move(sub)),
          std::make_unique<PolicyStore>(std::move(cloned)), options_.engine));
    }
  }
  for (auto& shard : shards_) {
    SARGUS_RETURN_IF_ERROR(shard->Build());
  }

  // Stand up the data-plane transport (decorated when the caller
  // installed a fault seam) and the per-shard circuit breaker.
  std::vector<ShardEngine*> raw;
  raw.reserve(shards_.size());
  for (auto& shard : shards_) raw.push_back(shard.get());
  std::unique_ptr<ShardTransport> base;
  if (options_.threaded_transport) {
    base = std::make_unique<ThreadedTransport>(std::move(raw),
                                               options_.executor);
  } else {
    base = std::make_unique<InProcessTransport>(std::move(raw));
  }
  transport_ = options_.transport_decorator
                   ? options_.transport_decorator(std::move(base))
                   : std::move(base);
  if (transport_ == nullptr) {
    return Status::InvalidArgument(
        "ShardRouter: transport_decorator returned null");
  }
  health_ = std::make_unique<ShardHealthTracker>(
      partition_.num_shards, options_.robustness.breaker_failure_threshold,
      options_.robustness.breaker_open_ms);

  resources_.clear();
  resources_.reserve(master_store_->NumResources());
  for (ResourceId r = 0; r < master_store_->NumResources(); ++r) {
    const PolicyStore::Resource& res = master_store_->resource(r);
    resources_.push_back(RouterResource{res.owner, res.rules});
  }
  paths_.assign(master_store_->NumRules(), {});
  for (RuleId id = 0; id < master_store_->NumRules(); ++id) {
    for (const PathExpression& expr : master_store_->rule(id).paths) {
      RouterPath rp;
      Result<BoundPathExpression> bound =
          BoundPathExpression::Bind(expr, *master_graph_);
      if (bound.ok()) {
        rp.bound =
            std::make_shared<const BoundPathExpression>(std::move(*bound));
      } else {
        rp.bind_status = bound.status();
      }
      paths_[id].push_back(std::move(rp));
    }
  }

  auto topo = std::make_shared<ShardTopology>();
  topo->num_shards = partition_.num_shards;
  topo->shard_of = partition_.shard_of;
  topo->boundary.resize(partition_.num_shards);
  for (const Edge& e : partition_.cut_edges) {
    topo->cut_out[e.src].push_back({e.dst, e.label});
    topo->cut_in[e.dst].push_back({e.src, e.label});
  }
  for (const Edge& e : partition_.cut_edges) {
    SortedInsert(topo->boundary[topo->shard_of[e.src]], e.src);
    SortedInsert(topo->boundary[topo->shard_of[e.dst]], e.dst);
  }
  topo->epoch = 1;
  PublishTopology(std::move(topo));

  loads_.assign(partition_.num_shards, 0);
  for (uint32_t s = 0; s < partition_.num_shards; ++s) {
    loads_[s] = partition_.members[s].size();
  }

  built_ = true;
  if (options_.build_summaries && shards_.size() > 1) {
    return RefreshSummaries();
  }
  return OkStatus();
}

void ShardRouter::PublishTopology(std::shared_ptr<const ShardTopology> topo) {
  {
    std::lock_guard<std::mutex> lock(topo_mu_);
    topo_ = topo;
  }
  for (auto& shard : shards_) shard->SetTopology(topo);
}

std::shared_ptr<const ShardTopology> ShardRouter::topology() const {
  std::lock_guard<std::mutex> lock(topo_mu_);
  return topo_;
}

wire::Stamp ShardRouter::Stamp() const {
  wire::Stamp total;
  for (const auto& shard : shards_) {
    const wire::Stamp s = shard->ViewStamp();
    total.snapshot_generation += s.snapshot_generation;
    total.overlay_version += s.overlay_version;
  }
  return total;
}

RouterCounters ShardRouter::counters() const {
  RouterCounters c;
  c.checks = counters_.checks.load(kRelaxed);
  c.cross_shard_checks = counters_.cross_shard_checks.load(kRelaxed);
  c.local_conclusive = counters_.local_conclusive.load(kRelaxed);
  c.summary_resolved = counters_.summary_resolved.load(kRelaxed);
  c.fallback_walks = counters_.fallback_walks.load(kRelaxed);
  c.cross_fallback_walks = counters_.cross_fallback_walks.load(kRelaxed);
  c.fallback_rounds = counters_.fallback_rounds.load(kRelaxed);
  c.stale_summary_fallbacks = counters_.stale_summary_fallbacks.load(kRelaxed);
  c.capped_compositions = counters_.capped_compositions.load(kRelaxed);
  c.retries = counters_.retries.load(kRelaxed);
  c.timeouts = counters_.timeouts.load(kRelaxed);
  c.breaker_opens = health_ == nullptr ? 0 : health_->opens();
  c.degraded_answers = counters_.degraded_answers.load(kRelaxed);
  c.unavailable_errors = counters_.unavailable_errors.load(kRelaxed);
  return c;
}

template <typename Reply, typename SubmitFn>
ShardRouter::PendingCall<Reply> ShardRouter::BeginCall(uint32_t shard,
                                                       uint64_t salt,
                                                       SubmitFn&& submit) const {
  const RouterRobustnessOptions& rb = options_.robustness;
  PendingCall<Reply> pc;
  pc.shard = shard;
  pc.salt = salt;
  const uint64_t now = transport_->NowMs();
  pc.budget_deadline = rb.op_budget_ms == 0 ? 0 : now + rb.op_budget_ms;
  if (!health_->AllowCall(shard, now)) {
    pc.early = Status::Unavailable("shard " + std::to_string(shard) +
                                   ": circuit breaker open");
    return pc;
  }
  TransportCallOptions opts;
  if (rb.call_deadline_ms != 0) {
    opts.deadline_ms = now + rb.call_deadline_ms;
    if (pc.budget_deadline != 0 && opts.deadline_ms > pc.budget_deadline) {
      opts.deadline_ms = pc.budget_deadline;
    }
  } else {
    opts.deadline_ms = pc.budget_deadline;
  }
  pc.ticket = submit(opts);
  return pc;
}

template <typename Reply, typename Fn>
Result<Reply> ShardRouter::FinishCall(PendingCall<Reply>& pending,
                                      Fn&& call) const {
  const RouterRobustnessOptions& rb = options_.robustness;
  if (pending.early.has_value()) return *pending.early;
  const uint32_t shard = pending.shard;
  const uint32_t attempts = std::max<uint32_t>(1, rb.max_attempts);
  Status last = OkStatus();
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    std::optional<Result<Reply>> r;
    if (attempt == 0) {
      // Attempt 0 was submitted by BeginCall; collect it. On a serial
      // transport the ticket is already resolved.
      r = pending.ticket.Wait();
    } else {
      const uint64_t now = transport_->NowMs();
      if (pending.budget_deadline != 0 && now > pending.budget_deadline) {
        counters_.timeouts.fetch_add(1, kRelaxed);
        return Status::DeadlineExceeded(
            "shard " + std::to_string(shard) + ": operation budget exhausted" +
            (last.ok() ? "" : " (last attempt: " + last.ToString() + ")"));
      }
      if (!health_->AllowCall(shard, now)) {
        return Status::Unavailable(
            "shard " + std::to_string(shard) + ": circuit breaker open" +
            (last.ok() ? "" : " (last attempt: " + last.ToString() + ")"));
      }
      counters_.retries.fetch_add(1, kRelaxed);
      TransportCallOptions opts;
      if (rb.call_deadline_ms != 0) {
        opts.deadline_ms = now + rb.call_deadline_ms;
        if (pending.budget_deadline != 0 &&
            opts.deadline_ms > pending.budget_deadline) {
          opts.deadline_ms = pending.budget_deadline;
        }
      } else {
        opts.deadline_ms = pending.budget_deadline;
      }
      // Retries run synchronously on the gathering thread: by the time
      // a retry is warranted the scatter is already collapsing, and a
      // serial retry keeps the attempt ordering the breaker sees
      // identical to the pre-scatter router's.
      r = call(opts);
    }
    if (r->ok()) {
      // The transport worked; an in-band reply status is an answer,
      // not an infrastructure failure.
      health_->RecordSuccess(shard);
      return std::move(*r);
    }
    health_->RecordFailure(shard, transport_->NowMs());
    if (r->status().code() == StatusCode::kDeadlineExceeded) {
      counters_.timeouts.fetch_add(1, kRelaxed);
    }
    last = r->status();
    if (attempt + 1 < attempts) {
      uint64_t backoff = std::min<uint64_t>(
          uint64_t{rb.backoff_base_ms} << attempt, rb.backoff_max_ms);
      if (backoff > 0 && rb.backoff_jitter > 0) {
        // Deterministic jitter: a hash of (seed, shard, attempt, call
        // salt). The salt is content-derived, so concurrent retry
        // storms jitter identically no matter how they interleave —
        // yet distinct calls never lockstep.
        const uint64_t h = Mix64(rb.jitter_seed ^ (uint64_t{shard} << 40) ^
                                 (uint64_t{attempt} << 32) ^
                                 Mix64(pending.salt));
        const double frac = static_cast<double>(h >> 11) * 0x1.0p-53;
        backoff += static_cast<uint64_t>(static_cast<double>(backoff) *
                                         rb.backoff_jitter * frac);
      }
      if (backoff > 0) transport_->SleepMs(static_cast<uint32_t>(backoff));
    }
  }
  return last;
}

template <typename Reply, typename Fn>
Result<Reply> ShardRouter::CallShard(uint32_t shard, uint64_t salt,
                                     Fn&& call) const {
  PendingCall<Reply> pc =
      BeginCall<Reply>(shard, salt, [&](const TransportCallOptions& opts) {
        return TransportTicket<Reply>::Ready(call(opts));
      });
  return FinishCall<Reply>(pc, call);
}

Result<wire::MutateReply> ShardRouter::CallMutate(
    uint32_t shard, const wire::MutateRequest& req) {
  const uint64_t salt = (uint64_t{static_cast<uint8_t>(req.op)} << 56) ^
                        (uint64_t{req.src} << 28) ^ (uint64_t{req.dst} << 8) ^
                        req.label;
  return CallShard<wire::MutateReply>(
      shard, salt, [&](const TransportCallOptions& opts) {
        return transport_->Mutate(shard, req, opts);
      });
}

Result<AccessDecision> ShardRouter::CheckAccess(
    const AccessRequest& request) const {
  if (!built_) {
    return Status::FailedPrecondition("ShardRouter: Build() not called");
  }
  counters_.checks.fetch_add(1, kRelaxed);
  if (DirectSingleShard()) {
    // Passthrough: the decision carries the engine's own stamps. A
    // decorated (fault-injectable) transport disables the shortcut so
    // single-shard configurations exercise the full robust path.
    return shards_[0]->engine().CheckAccess(request);
  }
  return DecideMulti(request);
}

Result<AccessDecision> ShardRouter::DecideMulti(
    const AccessRequest& request) const {
  Result<AccessDecision> d = DecideMultiImpl(request);
  if (!d.ok()) {
    if (IsTransportError(d.status())) {
      counters_.unavailable_errors.fetch_add(1, kRelaxed);
    }
  } else if (!d->degraded_reason.empty()) {
    counters_.degraded_answers.fetch_add(1, kRelaxed);
  }
  return d;
}

Result<AccessDecision> ShardRouter::DecideMultiImpl(
    const AccessRequest& request) const {
  const auto topo = topology();
  if (request.resource >= resources_.size()) {
    return Status::NotFound("ShardRouter: unknown resource " +
                            std::to_string(request.resource));
  }
  if (request.requester >= topo->shard_of.size()) {
    return Status::InvalidArgument("ShardRouter: requester " +
                                   std::to_string(request.requester) +
                                   " out of range");
  }
  const RouterResource& res = resources_[request.resource];
  const wire::Stamp stamp = Stamp();

  if (request.requester == res.owner) {
    AccessDecision d;
    d.granted = true;
    d.owner_access = true;
    d.requester = request.requester;
    d.resource = request.resource;
    d.evaluator_name = "shard-owner";
    d.snapshot_generation = stamp.snapshot_generation;
    d.overlay_version = stamp.overlay_version;
    return d;
  }

  // Step 1 (local phase): the owner shard decides over its local edges.
  // A grant is authoritative — local edges are a subset of global edges
  // — and carries the witness when one was requested.
  const uint32_t owner_shard = topo->shard_of[res.owner];
  const uint64_t check_salt =
      (uint64_t{request.requester} << 32) ^ request.resource;
  const Result<wire::CheckReply> local_r = CallShard<wire::CheckReply>(
      owner_shard, check_salt, [&](const TransportCallOptions& opts) {
        return transport_->Check(owner_shard, ToWire(request), opts);
      });
  if (!local_r.ok()) {
    // The owner's shard is unreachable (retries and breaker already
    // consulted). Degrade when allowed: conclude exactly from fresh
    // boundary summaries, or fail explicitly — never guess.
    if (options_.robustness.allow_degraded && shards_.size() > 1 &&
        IsTransportError(local_r.status())) {
      return DecideDegraded(*topo, request, res.owner, local_r.status());
    }
    return local_r.status();
  }
  const wire::CheckReply& local = *local_r;
  if (local.status_code == 0 && local.granted != 0) {
    counters_.local_conclusive.fetch_add(1, kRelaxed);
    Result<AccessDecision> d =
        FromWire(local, request.requester, request.resource);
    d->snapshot_generation = stamp.snapshot_generation;
    d->overlay_version = stamp.overlay_version;
    return d;
  }
  if (request.evaluator_override.has_value() && local.status_code != 0) {
    // Evaluator overrides are a shard-local concern (the cross-shard
    // procedure has its own fixed strategy); surface the shard's error
    // the way a single engine would.
    return wire::UnpackStatus(local.status_code, local.error);
  }

  // Steps 2-3: per rule path, exact global reachability. Disjunction
  // semantics mirror the engine: first error is remembered and surfaced
  // only when nothing grants.
  counters_.cross_shard_checks.fetch_add(1, kRelaxed);
  CrossStats cross;
  cross.pairs_visited = local.pairs_visited;
  std::optional<Status> first_error;
  std::optional<RuleId> matched;
  for (const RuleId rule : res.rules) {
    for (uint32_t p = 0; p < paths_[rule].size() && !matched; ++p) {
      const RouterPath& rp = paths_[rule][p];
      if (!rp.bind_status.ok()) {
        if (!first_error.has_value()) first_error = rp.bind_status;
        continue;
      }
      Result<bool> reached =
          PathReaches(*topo, rule, p, res.owner, request.requester, cross);
      if (!reached.ok()) {
        if (!first_error.has_value()) first_error = reached.status();
        continue;
      }
      if (*reached) matched = rule;
    }
    if (matched.has_value()) break;
  }
  if (cross.used_fallback) {
    counters_.cross_fallback_walks.fetch_add(1, kRelaxed);
  } else {
    counters_.summary_resolved.fetch_add(1, kRelaxed);
  }
  if (!matched.has_value() && first_error.has_value()) return *first_error;

  AccessDecision d;
  d.granted = matched.has_value();
  d.requester = request.requester;
  d.resource = request.resource;
  d.matched_rule = matched;
  d.stats.pairs_visited = cross.pairs_visited;
  d.evaluator_name = cross.used_fallback  ? "shard-frontier"
                     : cross.used_summary ? "shard-summary"
                                          : "shard-local";
  d.snapshot_generation = stamp.snapshot_generation;
  d.overlay_version = stamp.overlay_version;
  return d;
}

Result<AccessDecision> ShardRouter::DecideDegraded(
    const ShardTopology& topo, const AccessRequest& request, NodeId owner,
    const Status& owner_error) const {
  const auto unavailable = [&](const std::string& why) {
    return Status::Unavailable("ShardRouter: owner shard unreachable (" +
                               owner_error.ToString() + ") and " + why);
  };
  if (!options_.build_summaries) {
    return unavailable("boundary summaries are disabled");
  }
  counters_.cross_shard_checks.fetch_add(1, kRelaxed);
  const RouterResource& res = resources_[request.resource];
  CrossStats cross;
  std::optional<Status> first_error;
  std::optional<RuleId> matched;
  for (const RuleId rule : res.rules) {
    for (uint32_t p = 0; p < paths_[rule].size() && !matched; ++p) {
      const RouterPath& rp = paths_[rule][p];
      if (!rp.bind_status.ok()) {
        if (!first_error.has_value()) first_error = rp.bind_status;
        continue;
      }
      // Seed the composition at the owner's automaton start closure.
      // The owner is a boundary vertex of the down shard whenever that
      // shard participates in cross-shard paths for it; its FRESH
      // summary (stamps cannot move while the shard is unreachable —
      // mutations fail stop) then carries the walk across the down
      // shard without one data-plane call into it. Any obstruction
      // (non-boundary owner, stale summary, work cap) aborts to an
      // explicit error: degraded mode has no fallback walk to hide in.
      const HopAutomaton& nfa = rp.bound->automaton();
      const std::vector<uint32_t> residual = wire::ResidualHopBudgets(nfa);
      std::vector<wire::FrontierEntry> seeds;
      seeds.reserve(nfa.StartStates().size());
      for (uint32_t s0 : nfa.StartStates()) {
        seeds.push_back({owner, s0, residual[s0]});
      }
      Result<ComposeOutcome> out = ComposeSummaries(
          topo, rule, p, owner, request.requester, seeds, cross);
      if (!out.ok()) {
        if (!first_error.has_value()) first_error = out.status();
        continue;
      }
      switch (*out) {
        case ComposeOutcome::kGranted:
          matched = rule;
          break;
        case ComposeOutcome::kDenied:
          break;
        case ComposeOutcome::kStale:
          if (!first_error.has_value()) {
            first_error = unavailable(
                "a needed boundary summary is stale, unbuilt, or does not "
                "cover the owner");
          }
          break;
        case ComposeOutcome::kCapped:
          if (!first_error.has_value()) {
            first_error = unavailable("summary composition hit its work cap");
          }
          break;
      }
    }
    if (matched.has_value()) break;
  }
  // A deny is exact only if EVERY rule path concluded; a grant is exact
  // on its own (summaries never over-approximate).
  if (!matched.has_value() && first_error.has_value()) return *first_error;

  const wire::Stamp stamp = Stamp();
  AccessDecision d;
  d.granted = matched.has_value();
  d.requester = request.requester;
  d.resource = request.resource;
  d.matched_rule = matched;
  d.stats.pairs_visited = cross.pairs_visited;
  d.evaluator_name = "shard-degraded";
  d.snapshot_generation = stamp.snapshot_generation;
  d.overlay_version = stamp.overlay_version;
  d.degraded_reason = "owner shard unreachable (" + owner_error.ToString() +
                      "); concluded exactly from fresh boundary summaries";
  return d;
}

Result<bool> ShardRouter::PathReaches(const ShardTopology& topo, RuleId rule,
                                      uint32_t path, NodeId owner,
                                      NodeId requester,
                                      CrossStats& stats) const {
  // Phase one: walk the owner's shard from the automaton start closure.
  wire::WalkRequest phase1;
  phase1.rule = rule;
  phase1.path = path;
  phase1.requester = requester;
  phase1.seed = wire::WalkSeed::kOwnerStarts;
  phase1.owner = owner;
  const uint32_t owner_shard = topo.shard_of[owner];
  const uint64_t walk_salt = (uint64_t{rule} << 48) ^ (uint64_t{path} << 40) ^
                             (uint64_t{owner} << 20) ^ requester;
  const Result<wire::WalkReply> r1r = CallShard<wire::WalkReply>(
      owner_shard, walk_salt, [&](const TransportCallOptions& opts) {
        return transport_->ExpandFrontier(owner_shard, phase1, opts);
      });
  if (!r1r.ok()) return r1r.status();
  const wire::WalkReply& r1 = *r1r;
  if (r1.status_code != 0) {
    return wire::UnpackStatus(r1.status_code, r1.error);
  }
  stats.pairs_visited += r1.pairs_visited;
  if (r1.accepted != 0) return true;
  // Nothing escaped the shard: the deny is global, no summary needed.
  if (r1.exports.empty()) return false;

  if (!options_.build_summaries) {
    return FallbackWalk(topo, rule, path, owner, requester, r1.exports, stats);
  }

  SARGUS_ASSIGN_OR_RETURN(
      const ComposeOutcome out,
      ComposeSummaries(topo, rule, path, owner, requester, r1.exports, stats));
  switch (out) {
    case ComposeOutcome::kGranted:
      return true;
    case ComposeOutcome::kDenied:
      return false;
    case ComposeOutcome::kStale:
      counters_.stale_summary_fallbacks.fetch_add(1, kRelaxed);
      return FallbackWalk(topo, rule, path, owner, requester, r1.exports,
                          stats);
    case ComposeOutcome::kCapped:
      counters_.capped_compositions.fetch_add(1, kRelaxed);
      return FallbackWalk(topo, rule, path, owner, requester, r1.exports,
                          stats);
  }
  return Status::Internal("ShardRouter: unreachable compose outcome");
}

Result<ShardRouter::ComposeOutcome> ShardRouter::ComposeSummaries(
    const ShardTopology& topo, RuleId rule, uint32_t path, NodeId owner,
    NodeId requester, std::span<const wire::FrontierEntry> seeds,
    CrossStats& stats) const {
  // Step 2: router-local summary composition. A worklist of boundary
  // configurations; each is pushed through its shard's summary (exact
  // boundary-to-boundary product reachability), then expanded across
  // cut edges, until acceptance, a fixpoint, or a reason to bail
  // (kStale / kCapped — the caller decides between frontier-exchange
  // fallback and an explicit degraded-mode error).
  const RouterPath& rp = paths_[rule][path];
  const HopAutomaton& nfa = rp.bound->automaton();
  const uint32_t num_states = nfa.NumStates();
  const std::vector<uint32_t> residual = wire::ResidualHopBudgets(nfa);
  const uint32_t req_shard = topo.shard_of[requester];

  std::unordered_set<uint64_t> processed;
  std::vector<wire::FrontierEntry> queue;
  std::vector<wire::FrontierEntry> final_seeds;
  auto enqueue = [&](const wire::FrontierEntry& e) {
    if (!processed.insert(ConfigKey(e)).second) return;
    queue.push_back(e);
    // Entry configurations in the requester's shard also seed the final
    // local walk (interior acceptance is invisible to summaries, which
    // only speak boundary-to-boundary).
    if (topo.shard_of[e.node] == req_shard) final_seeds.push_back(e);
  };
  for (const wire::FrontierEntry& e : seeds) enqueue(e);

  // Summaries pinned and freshness-checked once per shard per call.
  std::vector<std::shared_ptr<const BoundarySummary>> pinned(shards_.size());
  std::vector<uint8_t> pin_checked(shards_.size(), 0);
  auto summary_for = [&](uint32_t s) -> const BoundarySummary* {
    if (pin_checked[s] == 0) {
      pin_checked[s] = 1;
      auto sum = shards_[s]->summary();
      if (sum != nullptr && sum->stamp() == shards_[s]->ViewStamp() &&
          sum->PathBuilt(rule, path)) {
        pinned[s] = std::move(sum);
      }
    }
    return pinned[s].get();
  };

  size_t tests = 0;
  while (!queue.empty()) {
    const wire::FrontierEntry entry = queue.back();
    queue.pop_back();
    const uint32_t c = topo.shard_of[entry.node];
    const BoundarySummary* sum = summary_for(c);
    const int64_t from_idx =
        sum == nullptr ? -1 : sum->BoundaryIndexOf(entry.node);
    if (from_idx < 0) return ComposeOutcome::kStale;
    for (size_t j = 0; j < sum->num_boundary(); ++j) {
      for (uint32_t t2 = 0; t2 < num_states; ++t2) {
        if (++tests > options_.max_composition_tests) {
          return ComposeOutcome::kCapped;
        }
        if (!sum->Reaches(rule, path, static_cast<size_t>(from_idx),
                          entry.state, j, t2)) {
          continue;
        }
        // The walk can sit at boundary vertex bv in state t2; expand the
        // crossing over every matching cut edge, checking the far node
        // against the step filter and the accept-after-edge test exactly
        // as a live walker would.
        const NodeId bv = sum->boundary_nodes()[j];
        const BoundStep& step = nfa.StepSpec(t2);
        const bool accepts = nfa.AcceptsAfterEdge(t2);
        const std::vector<uint32_t>& targets = nfa.TargetsAfterEdge(t2);
        const std::span<const CutArc> arcs =
            step.backward ? topo.CutIn(bv) : topo.CutOut(bv);
        for (const CutArc& arc : arcs) {
          if (arc.label != step.label) continue;
          if (!BoundPathExpression::NodePasses(*master_graph_, arc.other,
                                               step)) {
            continue;
          }
          if (accepts && arc.other == requester) {
            stats.used_summary = true;
            return ComposeOutcome::kGranted;
          }
          for (uint32_t t3 : targets) {
            enqueue({arc.other, t3, residual[t3]});
          }
        }
      }
    }
  }
  stats.used_summary = true;
  if (final_seeds.empty()) return ComposeOutcome::kDenied;

  // Final local walk in the requester's shard (summaries only speak
  // boundary-to-boundary; interior acceptance needs a live walk). In
  // degraded mode, if the requester sits INSIDE the unreachable shard
  // this call fails and the whole decision surfaces kUnavailable —
  // exactly right, because no fresh summary can see that acceptance.
  wire::WalkRequest fin;
  fin.rule = rule;
  fin.path = path;
  fin.requester = requester;
  fin.seed = wire::WalkSeed::kFrontier;
  fin.owner = owner;
  fin.frontier = std::move(final_seeds);
  const uint64_t fin_salt = 0xF1A7ULL ^ (uint64_t{rule} << 48) ^
                            (uint64_t{path} << 40) ^ (uint64_t{owner} << 20) ^
                            requester;
  const Result<wire::WalkReply> rfr = CallShard<wire::WalkReply>(
      req_shard, fin_salt, [&](const TransportCallOptions& opts) {
        return transport_->ExpandFrontier(req_shard, fin, opts);
      });
  if (!rfr.ok()) return rfr.status();
  const wire::WalkReply& rf = *rfr;
  if (rf.status_code != 0) {
    return wire::UnpackStatus(rf.status_code, rf.error);
  }
  stats.pairs_visited += rf.pairs_visited;
  return rf.accepted != 0 ? ComposeOutcome::kGranted : ComposeOutcome::kDenied;
}

Result<bool> ShardRouter::FallbackWalk(
    const ShardTopology& topo, RuleId rule, uint32_t path, NodeId owner,
    NodeId requester, std::span<const wire::FrontierEntry> seeds,
    CrossStats& stats) const {
  stats.used_fallback = true;
  counters_.fallback_walks.fetch_add(1, kRelaxed);
  const uint64_t base_salt = 0xFA11ULL ^ (uint64_t{rule} << 48) ^
                             (uint64_t{path} << 40) ^ (uint64_t{owner} << 20) ^
                             requester;

  // Two-phase rounds: every shard with pending entries walks once per
  // round; fresh exports only enter the NEXT round's pending sets, so a
  // round's walks are independent of each other's results — which is
  // exactly what lets one round SCATTER all its per-shard walks through
  // the async transport surface and gather them at a barrier. The
  // global processed set makes each (node, state) configuration cross a
  // shard boundary at most once, which bounds the rounds.
  std::unordered_set<uint64_t> processed;
  std::vector<std::vector<wire::FrontierEntry>> pending(shards_.size());
  auto enqueue = [&](const wire::FrontierEntry& e,
                     std::vector<std::vector<wire::FrontierEntry>>& dest) {
    if (processed.insert(ConfigKey(e)).second) {
      dest[topo.shard_of[e.node]].push_back(e);
    }
  };
  for (const wire::FrontierEntry& e : seeds) enqueue(e, pending);

  uint64_t rounds = 0;
  bool accepted = false;
  std::optional<Status> failure;
  while (!accepted && !failure.has_value()) {
    std::vector<wire::WalkRequest> reqs(shards_.size());
    std::vector<uint32_t> active;
    for (uint32_t s = 0; s < shards_.size(); ++s) {
      if (pending[s].empty()) continue;
      wire::WalkRequest& wr = reqs[s];
      wr.rule = rule;
      wr.path = path;
      wr.requester = requester;
      wr.seed = wire::WalkSeed::kFrontier;
      wr.owner = owner;
      wr.frontier = std::move(pending[s]);
      active.push_back(s);
    }
    if (active.empty()) break;
    ++rounds;
    // Scatter: submit every active shard's walk before gathering any.
    std::vector<PendingCall<wire::WalkReply>> calls(active.size());
    for (size_t k = 0; k < active.size(); ++k) {
      const uint32_t s = active[k];
      calls[k] = BeginCall<wire::WalkReply>(
          s, base_salt ^ (rounds << 8), [&](const TransportCallOptions& opts) {
            return transport_->SubmitWalk(s, reqs[s], opts);
          });
    }
    // Barrier gather, ascending shard order: every ticket is resolved —
    // even after an acceptance or failure — so no walk is abandoned
    // mid-round, and the export merge order matches a serial transport
    // exactly (the agreement wall relies on this).
    std::vector<std::vector<wire::FrontierEntry>> next(shards_.size());
    for (size_t k = 0; k < active.size(); ++k) {
      const uint32_t s = active[k];
      Result<wire::WalkReply> rr = FinishCall<wire::WalkReply>(
          calls[k], [&](const TransportCallOptions& opts) {
            return transport_->ExpandFrontier(s, reqs[s], opts);
          });
      const Status st = rr.ok()
                            ? wire::UnpackStatus(rr->status_code, rr->error)
                            : rr.status();
      if (!st.ok()) {
        if (!failure.has_value()) failure = st;
        continue;
      }
      stats.pairs_visited += rr->pairs_visited;
      if (rr->accepted != 0) {
        accepted = true;
      } else {
        for (const wire::FrontierEntry& e : rr->exports) enqueue(e, next);
      }
    }
    pending = std::move(next);
  }
  counters_.fallback_rounds.fetch_add(rounds, kRelaxed);
  if (accepted) return true;  // a live walk's accept is exact even if a
                              // sibling shard faulted this round
  if (failure.has_value()) return *failure;
  return false;
}

std::vector<Result<AccessDecision>> ShardRouter::CheckAccessBatch(
    std::span<const AccessRequest> requests) const {
  if (!built_) {
    std::vector<Result<AccessDecision>> out;
    out.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      out.emplace_back(
          Status::FailedPrecondition("ShardRouter: Build() not called"));
    }
    return out;
  }
  counters_.checks.fetch_add(requests.size(), kRelaxed);
  if (DirectSingleShard()) {
    return shards_[0]->engine().CheckAccessBatch(requests);
  }

  const auto topo = topology();
  const wire::Stamp stamp = Stamp();
  std::vector<std::optional<Result<AccessDecision>>> slots(requests.size());

  // Group by resource-owner shard; one shard-local batch per group.
  // Shard-local grants are authoritative; everything else escalates.
  std::vector<std::vector<uint32_t>> groups(shards_.size());
  for (uint32_t i = 0; i < requests.size(); ++i) {
    const AccessRequest& r = requests[i];
    if (r.resource >= resources_.size()) {
      slots[i] = Status::NotFound("ShardRouter: unknown resource " +
                                  std::to_string(r.resource));
      continue;
    }
    if (r.requester >= topo->shard_of.size()) {
      slots[i] = Status::InvalidArgument("ShardRouter: requester " +
                                         std::to_string(r.requester) +
                                         " out of range");
      continue;
    }
    groups[topo->shard_of[resources_[r.resource].owner]].push_back(i);
  }
  // Scatter: build every group's sub-batch, submit them all through the
  // async transport surface, THEN gather in shard order. On the
  // threaded transport the sub-batches execute concurrently, one worker
  // per owner shard; on a serial transport the submits run inline and
  // this is exactly the old one-group-at-a-time loop.
  struct GroupCall {
    uint32_t shard = 0;
    wire::BatchCheckRequest batch;
    PendingCall<wire::BatchCheckReply> pending;
  };
  std::vector<GroupCall> group_calls;
  for (uint32_t s = 0; s < groups.size(); ++s) {
    if (groups[s].empty()) continue;
    GroupCall gc;
    gc.shard = s;
    gc.batch.requests.reserve(groups[s].size());
    for (uint32_t i : groups[s]) {
      gc.batch.requests.push_back(ToWire(requests[i]));
    }
    group_calls.push_back(std::move(gc));
  }
  for (GroupCall& gc : group_calls) {
    const wire::CheckRequest& head = gc.batch.requests.front();
    const uint64_t salt = 0xBA7CULL ^ (uint64_t{gc.shard} << 48) ^
                          (gc.batch.requests.size() << 36) ^
                          (uint64_t{head.requester} << 18) ^ head.resource;
    gc.pending = BeginCall<wire::BatchCheckReply>(
        gc.shard, salt, [&](const TransportCallOptions& opts) {
          return transport_->SubmitBatch(gc.shard, gc.batch, opts);
        });
  }
  for (GroupCall& gc : group_calls) {
    const uint32_t s = gc.shard;
    const Result<wire::BatchCheckReply> replies_r =
        FinishCall<wire::BatchCheckReply>(
            gc.pending, [&](const TransportCallOptions& opts) {
              return transport_->CheckBatch(s, gc.batch, opts);
            });
    // A transport failure (or short reply) escalates every slot of the
    // group to the per-request procedure, which carries its own retry /
    // degraded handling.
    if (!replies_r.ok()) continue;
    const wire::BatchCheckReply& replies = *replies_r;
    if (replies.replies.size() != groups[s].size()) continue;  // escalate all
    for (size_t k = 0; k < groups[s].size(); ++k) {
      const uint32_t i = groups[s][k];
      const wire::CheckReply& reply = replies.replies[k];
      if (reply.status_code != 0 || reply.granted == 0) continue;
      counters_.local_conclusive.fetch_add(1, kRelaxed);
      Result<AccessDecision> d =
          FromWire(reply, requests[i].requester, requests[i].resource);
      d->snapshot_generation = stamp.snapshot_generation;
      d->overlay_version = stamp.overlay_version;
      slots[i] = std::move(d);
    }
  }

  std::vector<Result<AccessDecision>> out;
  out.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (slots[i].has_value()) {
      out.push_back(std::move(*slots[i]));
    } else {
      out.push_back(DecideMulti(requests[i]));
    }
  }
  return out;
}

Status ShardRouter::AddEdge(NodeId src, NodeId dst, const std::string& label) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (!built_) {
    return Status::FailedPrecondition("ShardRouter: Build() not called");
  }
  if (DirectSingleShard()) {
    return shards_[0]->engine().AddEdge(src, dst, label);
  }
  const auto topo = topology();
  if (src >= topo->shard_of.size() || dst >= topo->shard_of.size()) {
    return Status::InvalidArgument("AddEdge: endpoint out of range");
  }
  // Pre-intern the name everywhere (master first) so the id every shard
  // resolves is identical — the invariant wire frontiers rely on.
  const LabelId id = master_graph_->labels().Intern(label);
  for (auto& shard : shards_) {
    if (shard->InternLabel(label) != id) {
      return Status::Internal("AddEdge: label dictionaries diverged");
    }
  }
  return AddEdgeImpl(src, dst, id);
}

Status ShardRouter::AddEdge(NodeId src, NodeId dst, LabelId label) {
  std::lock_guard<std::mutex> lock(write_mu_);
  return AddEdgeImpl(src, dst, label);
}

Status ShardRouter::AddEdgeImpl(NodeId src, NodeId dst, LabelId label) {
  if (!built_) {
    return Status::FailedPrecondition("ShardRouter: Build() not called");
  }
  if (DirectSingleShard()) {
    return shards_[0]->engine().AddEdge(src, dst, label);
  }
  const auto topo = topology();
  if (src >= topo->shard_of.size() || dst >= topo->shard_of.size()) {
    return Status::InvalidArgument("AddEdge: endpoint out of range");
  }
  const uint32_t s1 = topo->shard_of[src];
  const uint32_t s2 = topo->shard_of[dst];

  wire::MutateRequest req;
  req.op = wire::MutateOp::kAddEdge;
  req.src = src;
  req.dst = dst;
  req.label = label;
  // Transport mutations are fail-stop-before-apply (shard/transport.h):
  // a transport error here means shard s1 never saw the edge.
  const Result<wire::MutateReply> r1 = CallMutate(s1, req);
  if (!r1.ok()) return r1.status();
  Status st = wire::UnpackStatus(r1->status_code, r1->error);
  if (s2 != s1) {
    const Result<wire::MutateReply> r2 = CallMutate(s2, req);
    if (!r2.ok()) {
      // s1 already applied its half of the cut edge. Compensate with a
      // direct engine rollback — the in-process control plane stays
      // reliable even when the data-plane transport is faulting — so a
      // torn cut edge is never observable.
      if (st.ok()) {
        const Status undo = shards_[s1]->engine().RemoveEdge(src, dst, label);
        if (!undo.ok()) {
          return Status::Internal(
              "AddEdge: rollback after partial apply failed: " +
              undo.ToString() + " (original: " + r2.status().ToString() + ")");
        }
      }
      return r2.status();
    }
    const Status st2 = wire::UnpackStatus(r2->status_code, r2->error);
    if (st.ok() != st2.ok()) {
      return Status::Internal("AddEdge: shards disagree (" + st.ToString() +
                              " vs " + st2.ToString() + ")");
    }
  }
  if (!st.ok()) return st;
  if (s1 != s2 && !HasCutArc(*topo, src, dst, label)) {
    auto next = std::make_shared<ShardTopology>(*topo);
    next->cut_out[src].push_back({dst, label});
    next->cut_in[dst].push_back({src, label});
    SortedInsert(next->boundary[s1], src);
    SortedInsert(next->boundary[s2], dst);
    ++next->epoch;
    PublishTopology(std::move(next));
  }
  return OkStatus();
}

Status ShardRouter::RemoveEdge(NodeId src, NodeId dst,
                               const std::string& label) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (!built_) {
    return Status::FailedPrecondition("ShardRouter: Build() not called");
  }
  if (DirectSingleShard()) {
    return shards_[0]->engine().RemoveEdge(src, dst, label);
  }
  const LabelId id = master_graph_->labels().Lookup(label);
  if (id == kInvalidLabel) {
    return Status::NotFound("RemoveEdge: unknown label '" + label + "'");
  }
  return RemoveEdgeImpl(src, dst, id);
}

Status ShardRouter::RemoveEdge(NodeId src, NodeId dst, LabelId label) {
  std::lock_guard<std::mutex> lock(write_mu_);
  return RemoveEdgeImpl(src, dst, label);
}

Status ShardRouter::RemoveEdgeImpl(NodeId src, NodeId dst, LabelId label) {
  if (!built_) {
    return Status::FailedPrecondition("ShardRouter: Build() not called");
  }
  if (DirectSingleShard()) {
    return shards_[0]->engine().RemoveEdge(src, dst, label);
  }
  const auto topo = topology();
  if (src >= topo->shard_of.size() || dst >= topo->shard_of.size()) {
    return Status::InvalidArgument("RemoveEdge: endpoint out of range");
  }
  const uint32_t s1 = topo->shard_of[src];
  const uint32_t s2 = topo->shard_of[dst];

  wire::MutateRequest req;
  req.op = wire::MutateOp::kRemoveEdge;
  req.src = src;
  req.dst = dst;
  req.label = label;
  const Result<wire::MutateReply> r1 = CallMutate(s1, req);
  if (!r1.ok()) return r1.status();
  Status st = wire::UnpackStatus(r1->status_code, r1->error);
  if (s2 != s1) {
    const Result<wire::MutateReply> r2 = CallMutate(s2, req);
    if (!r2.ok()) {
      // Mirror of the AddEdge compensation: restore s1's half so the
      // cut edge is not half-removed.
      if (st.ok()) {
        const Status undo = shards_[s1]->engine().AddEdge(src, dst, label);
        if (!undo.ok()) {
          return Status::Internal(
              "RemoveEdge: rollback after partial apply failed: " +
              undo.ToString() + " (original: " + r2.status().ToString() + ")");
        }
      }
      return r2.status();
    }
    const Status st2 = wire::UnpackStatus(r2->status_code, r2->error);
    if (st.ok() != st2.ok()) {
      return Status::Internal("RemoveEdge: shards disagree (" + st.ToString() +
                              " vs " + st2.ToString() + ")");
    }
  }
  if (!st.ok()) return st;
  if (s1 != s2 && HasCutArc(*topo, src, dst, label)) {
    auto next = std::make_shared<ShardTopology>(*topo);
    EraseCutArc(next->cut_out, src, dst, label);
    EraseCutArc(next->cut_in, dst, src, label);
    if (!TouchesCut(*next, src)) SortedErase(next->boundary[s1], src);
    if (!TouchesCut(*next, dst)) SortedErase(next->boundary[s2], dst);
    ++next->epoch;
    PublishTopology(std::move(next));
  }
  return OkStatus();
}

Result<NodeId> ShardRouter::AddNode() {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (!built_) {
    return Status::FailedPrecondition("ShardRouter: Build() not called");
  }
  const auto topo = topology();
  if (shards_.size() == 1) {
    SARGUS_ASSIGN_OR_RETURN(const NodeId id,
                            shards_[0]->engine().AddNode());
    auto next = std::make_shared<ShardTopology>(*topo);
    next->shard_of.push_back(0);
    ++next->epoch;
    PublishTopology(std::move(next));
    return id;
  }

  // Every shard keeps the full node id space, so the node is added to
  // ALL shards (the ids must come back aligned); the topology then
  // assigns ownership to the least-loaded shard. This is a cluster-
  // membership operation, so it goes over the direct control plane, not
  // the faultable transport: a partial AddNode would misalign node ids
  // across shards permanently, which no retry could repair.
  const NodeId expected = static_cast<NodeId>(topo->shard_of.size());
  wire::MutateRequest req;
  req.op = wire::MutateOp::kAddNode;
  // Fan the round out through the per-shard mutation queues and gather
  // the tickets: N shards assign the id concurrently. write_mu_ keeps
  // any other router AddNode from interleaving its submissions, so each
  // shard sees exactly one AddNode and alignment still holds.
  std::vector<WriteTicket> tickets;
  tickets.reserve(shards_.size());
  for (auto& shard : shards_) tickets.push_back(shard->SubmitMutate(req));
  Status failed = OkStatus();
  for (const WriteTicket& ticket : tickets) {
    const wire::MutateReply reply =
        ShardEngine::ReplyFromOutcome(req, ticket.Wait());
    const Status st = wire::UnpackStatus(reply.status_code, reply.error);
    if (!st.ok()) {
      // Drain every ticket before failing — no abandoned futures.
      if (failed.ok()) failed = st;
      continue;
    }
    if (failed.ok() && reply.new_node != expected) {
      failed = Status::Internal(
          "AddNode: shard node ids diverged (got " +
          std::to_string(reply.new_node) + ", expected " +
          std::to_string(expected) + ")");
    }
  }
  SARGUS_RETURN_IF_ERROR(failed);
  uint32_t target = 0;
  for (uint32_t s = 1; s < loads_.size(); ++s) {
    if (loads_[s] < loads_[target]) target = s;
  }
  ++loads_[target];
  auto next = std::make_shared<ShardTopology>(*topo);
  next->shard_of.push_back(target);
  ++next->epoch;
  PublishTopology(std::move(next));
  return expected;
}

Status ShardRouter::RefreshSummaries() {
  if (!options_.build_summaries || shards_.size() <= 1) return OkStatus();
  const auto topo = topology();
  for (auto& shard : shards_) {
    SARGUS_RETURN_IF_ERROR(shard->RefreshSummary(*topo, options_.summary));
  }
  return OkStatus();
}

Status ShardRouter::CompactAll() {
  if (!built_) {
    return Status::FailedPrecondition("ShardRouter: Build() not called");
  }
  for (auto& shard : shards_) {
    SARGUS_RETURN_IF_ERROR(shard->engine().Compact());
    shard->engine().WaitForCompaction();
  }
  return RefreshSummaries();
}

}  // namespace sargus
