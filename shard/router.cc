#include "shard/router.h"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>

#include "graph/subgraph.h"

namespace sargus {
namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

uint64_t ConfigKey(const wire::FrontierEntry& e) {
  return (static_cast<uint64_t>(e.node) << 32) | e.state;
}

/// Inserts `node` into a sorted-unique vector.
void SortedInsert(std::vector<NodeId>& v, NodeId node) {
  const auto it = std::lower_bound(v.begin(), v.end(), node);
  if (it == v.end() || *it != node) v.insert(it, node);
}

void SortedErase(std::vector<NodeId>& v, NodeId node) {
  const auto it = std::lower_bound(v.begin(), v.end(), node);
  if (it != v.end() && *it == node) v.erase(it);
}

bool HasCutArc(const ShardTopology& topo, NodeId src, NodeId dst,
               LabelId label) {
  for (const CutArc& a : topo.CutOut(src)) {
    if (a.other == dst && a.label == label) return true;
  }
  return false;
}

void EraseCutArc(std::unordered_map<NodeId, std::vector<CutArc>>& map,
                 NodeId key, NodeId other, LabelId label) {
  const auto it = map.find(key);
  if (it == map.end()) return;
  auto& arcs = it->second;
  for (auto a = arcs.begin(); a != arcs.end(); ++a) {
    if (a->other == other && a->label == label) {
      arcs.erase(a);
      break;
    }
  }
  if (arcs.empty()) map.erase(it);
}

bool TouchesCut(const ShardTopology& topo, NodeId node) {
  return !topo.CutOut(node).empty() || !topo.CutIn(node).empty();
}

}  // namespace

ShardRouter::ShardRouter(SocialGraph& graph, const PolicyStore& store,
                         RouterOptions options)
    : master_graph_(&graph),
      master_store_(&store),
      options_(std::move(options)) {}

Status ShardRouter::Build() {
  SARGUS_ASSIGN_OR_RETURN(
      partition_, GraphPartitioner::Partition(*master_graph_, options_.partition));

  shards_.clear();
  if (partition_.num_shards == 1) {
    // Zero-copy passthrough: one engine over the caller's graph + store.
    shards_.push_back(std::make_unique<ShardEngine>(
        0, *master_graph_, *master_store_, options_.engine));
  } else {
    for (uint32_t s = 0; s < partition_.num_shards; ++s) {
      SARGUS_ASSIGN_OR_RETURN(
          SocialGraph sub,
          ExtractShardGraph(*master_graph_, partition_.shard_of, s));
      SARGUS_ASSIGN_OR_RETURN(PolicyStore cloned,
                              ClonePolicyStore(*master_store_));
      shards_.push_back(std::make_unique<ShardEngine>(
          s, std::make_unique<SocialGraph>(std::move(sub)),
          std::make_unique<PolicyStore>(std::move(cloned)), options_.engine));
    }
  }
  for (auto& shard : shards_) {
    SARGUS_RETURN_IF_ERROR(shard->Build());
  }

  resources_.clear();
  resources_.reserve(master_store_->NumResources());
  for (ResourceId r = 0; r < master_store_->NumResources(); ++r) {
    const PolicyStore::Resource& res = master_store_->resource(r);
    resources_.push_back(RouterResource{res.owner, res.rules});
  }
  paths_.assign(master_store_->NumRules(), {});
  for (RuleId id = 0; id < master_store_->NumRules(); ++id) {
    for (const PathExpression& expr : master_store_->rule(id).paths) {
      RouterPath rp;
      Result<BoundPathExpression> bound =
          BoundPathExpression::Bind(expr, *master_graph_);
      if (bound.ok()) {
        rp.bound =
            std::make_shared<const BoundPathExpression>(std::move(*bound));
      } else {
        rp.bind_status = bound.status();
      }
      paths_[id].push_back(std::move(rp));
    }
  }

  auto topo = std::make_shared<ShardTopology>();
  topo->num_shards = partition_.num_shards;
  topo->shard_of = partition_.shard_of;
  topo->boundary.resize(partition_.num_shards);
  for (const Edge& e : partition_.cut_edges) {
    topo->cut_out[e.src].push_back({e.dst, e.label});
    topo->cut_in[e.dst].push_back({e.src, e.label});
  }
  for (const Edge& e : partition_.cut_edges) {
    SortedInsert(topo->boundary[topo->shard_of[e.src]], e.src);
    SortedInsert(topo->boundary[topo->shard_of[e.dst]], e.dst);
  }
  topo->epoch = 1;
  PublishTopology(std::move(topo));

  loads_.assign(partition_.num_shards, 0);
  for (uint32_t s = 0; s < partition_.num_shards; ++s) {
    loads_[s] = partition_.members[s].size();
  }

  built_ = true;
  if (options_.build_summaries && shards_.size() > 1) {
    return RefreshSummaries();
  }
  return OkStatus();
}

void ShardRouter::PublishTopology(std::shared_ptr<const ShardTopology> topo) {
  {
    std::lock_guard<std::mutex> lock(topo_mu_);
    topo_ = topo;
  }
  for (auto& shard : shards_) shard->SetTopology(topo);
}

std::shared_ptr<const ShardTopology> ShardRouter::topology() const {
  std::lock_guard<std::mutex> lock(topo_mu_);
  return topo_;
}

wire::Stamp ShardRouter::Stamp() const {
  wire::Stamp total;
  for (const auto& shard : shards_) {
    const wire::Stamp s = shard->ViewStamp();
    total.snapshot_generation += s.snapshot_generation;
    total.overlay_version += s.overlay_version;
  }
  return total;
}

RouterCounters ShardRouter::counters() const {
  RouterCounters c;
  c.checks = counters_.checks.load(kRelaxed);
  c.cross_shard_checks = counters_.cross_shard_checks.load(kRelaxed);
  c.local_conclusive = counters_.local_conclusive.load(kRelaxed);
  c.summary_resolved = counters_.summary_resolved.load(kRelaxed);
  c.fallback_walks = counters_.fallback_walks.load(kRelaxed);
  c.cross_fallback_walks = counters_.cross_fallback_walks.load(kRelaxed);
  c.fallback_rounds = counters_.fallback_rounds.load(kRelaxed);
  c.stale_summary_fallbacks = counters_.stale_summary_fallbacks.load(kRelaxed);
  c.capped_compositions = counters_.capped_compositions.load(kRelaxed);
  return c;
}

Result<AccessDecision> ShardRouter::CheckAccess(
    const AccessRequest& request) const {
  if (!built_) {
    return Status::FailedPrecondition("ShardRouter: Build() not called");
  }
  counters_.checks.fetch_add(1, kRelaxed);
  if (shards_.size() == 1) {
    // Passthrough: the decision carries the engine's own stamps.
    return shards_[0]->engine().CheckAccess(request);
  }
  return DecideMulti(request);
}

Result<AccessDecision> ShardRouter::DecideMulti(
    const AccessRequest& request) const {
  const auto topo = topology();
  if (request.resource >= resources_.size()) {
    return Status::NotFound("ShardRouter: unknown resource " +
                            std::to_string(request.resource));
  }
  if (request.requester >= topo->shard_of.size()) {
    return Status::InvalidArgument("ShardRouter: requester " +
                                   std::to_string(request.requester) +
                                   " out of range");
  }
  const RouterResource& res = resources_[request.resource];
  const wire::Stamp stamp = Stamp();

  if (request.requester == res.owner) {
    AccessDecision d;
    d.granted = true;
    d.owner_access = true;
    d.requester = request.requester;
    d.resource = request.resource;
    d.evaluator_name = "shard-owner";
    d.snapshot_generation = stamp.snapshot_generation;
    d.overlay_version = stamp.overlay_version;
    return d;
  }

  // Step 1 (local phase): the owner shard decides over its local edges.
  // A grant is authoritative — local edges are a subset of global edges
  // — and carries the witness when one was requested.
  const uint32_t owner_shard = topo->shard_of[res.owner];
  const wire::CheckReply local = shards_[owner_shard]->Check(ToWire(request));
  if (local.status_code == 0 && local.granted != 0) {
    counters_.local_conclusive.fetch_add(1, kRelaxed);
    Result<AccessDecision> d =
        FromWire(local, request.requester, request.resource);
    d->snapshot_generation = stamp.snapshot_generation;
    d->overlay_version = stamp.overlay_version;
    return d;
  }
  if (request.evaluator_override.has_value() && local.status_code != 0) {
    // Evaluator overrides are a shard-local concern (the cross-shard
    // procedure has its own fixed strategy); surface the shard's error
    // the way a single engine would.
    return wire::UnpackStatus(local.status_code, local.error);
  }

  // Steps 2-3: per rule path, exact global reachability. Disjunction
  // semantics mirror the engine: first error is remembered and surfaced
  // only when nothing grants.
  counters_.cross_shard_checks.fetch_add(1, kRelaxed);
  CrossStats cross;
  cross.pairs_visited = local.pairs_visited;
  std::optional<Status> first_error;
  std::optional<RuleId> matched;
  for (const RuleId rule : res.rules) {
    for (uint32_t p = 0; p < paths_[rule].size() && !matched; ++p) {
      const RouterPath& rp = paths_[rule][p];
      if (!rp.bind_status.ok()) {
        if (!first_error.has_value()) first_error = rp.bind_status;
        continue;
      }
      Result<bool> reached =
          PathReaches(*topo, rule, p, res.owner, request.requester, cross);
      if (!reached.ok()) {
        if (!first_error.has_value()) first_error = reached.status();
        continue;
      }
      if (*reached) matched = rule;
    }
    if (matched.has_value()) break;
  }
  if (cross.used_fallback) {
    counters_.cross_fallback_walks.fetch_add(1, kRelaxed);
  } else {
    counters_.summary_resolved.fetch_add(1, kRelaxed);
  }
  if (!matched.has_value() && first_error.has_value()) return *first_error;

  AccessDecision d;
  d.granted = matched.has_value();
  d.requester = request.requester;
  d.resource = request.resource;
  d.matched_rule = matched;
  d.stats.pairs_visited = cross.pairs_visited;
  d.evaluator_name = cross.used_fallback  ? "shard-frontier"
                     : cross.used_summary ? "shard-summary"
                                          : "shard-local";
  d.snapshot_generation = stamp.snapshot_generation;
  d.overlay_version = stamp.overlay_version;
  return d;
}

Result<bool> ShardRouter::PathReaches(const ShardTopology& topo, RuleId rule,
                                      uint32_t path, NodeId owner,
                                      NodeId requester,
                                      CrossStats& stats) const {
  // Phase one: walk the owner's shard from the automaton start closure.
  wire::WalkRequest phase1;
  phase1.rule = rule;
  phase1.path = path;
  phase1.requester = requester;
  phase1.seed = wire::WalkSeed::kOwnerStarts;
  phase1.owner = owner;
  const wire::WalkReply r1 =
      shards_[topo.shard_of[owner]]->ExpandFrontier(phase1);
  if (r1.status_code != 0) {
    return wire::UnpackStatus(r1.status_code, r1.error);
  }
  stats.pairs_visited += r1.pairs_visited;
  if (r1.accepted != 0) return true;
  // Nothing escaped the shard: the deny is global, no summary needed.
  if (r1.exports.empty()) return false;

  if (!options_.build_summaries) {
    return FallbackWalk(topo, rule, path, owner, requester, r1.exports, stats);
  }

  // Step 2: router-local summary composition. A worklist of boundary
  // configurations; each is pushed through its shard's summary (exact
  // boundary-to-boundary product reachability), then expanded across
  // cut edges, until acceptance, a fixpoint, or a reason to fall back.
  const RouterPath& rp = paths_[rule][path];
  const HopAutomaton& nfa = rp.bound->automaton();
  const uint32_t num_states = nfa.NumStates();
  const std::vector<uint32_t> residual = wire::ResidualHopBudgets(nfa);
  const uint32_t req_shard = topo.shard_of[requester];

  std::unordered_set<uint64_t> processed;
  std::vector<wire::FrontierEntry> queue;
  std::vector<wire::FrontierEntry> final_seeds;
  auto enqueue = [&](const wire::FrontierEntry& e) {
    if (!processed.insert(ConfigKey(e)).second) return;
    queue.push_back(e);
    // Entry configurations in the requester's shard also seed the final
    // local walk (interior acceptance is invisible to summaries, which
    // only speak boundary-to-boundary).
    if (topo.shard_of[e.node] == req_shard) final_seeds.push_back(e);
  };
  for (const wire::FrontierEntry& e : r1.exports) enqueue(e);

  // Summaries pinned and freshness-checked once per shard per call.
  std::vector<std::shared_ptr<const BoundarySummary>> pinned(shards_.size());
  std::vector<uint8_t> pin_checked(shards_.size(), 0);
  auto summary_for = [&](uint32_t s) -> const BoundarySummary* {
    if (pin_checked[s] == 0) {
      pin_checked[s] = 1;
      auto sum = shards_[s]->summary();
      if (sum != nullptr && sum->stamp() == shards_[s]->ViewStamp() &&
          sum->PathBuilt(rule, path)) {
        pinned[s] = std::move(sum);
      }
    }
    return pinned[s].get();
  };

  size_t tests = 0;
  while (!queue.empty()) {
    const wire::FrontierEntry entry = queue.back();
    queue.pop_back();
    const uint32_t c = topo.shard_of[entry.node];
    const BoundarySummary* sum = summary_for(c);
    const int64_t from_idx =
        sum == nullptr ? -1 : sum->BoundaryIndexOf(entry.node);
    if (from_idx < 0) {
      counters_.stale_summary_fallbacks.fetch_add(1, kRelaxed);
      return FallbackWalk(topo, rule, path, owner, requester, r1.exports,
                          stats);
    }
    for (size_t j = 0; j < sum->num_boundary(); ++j) {
      for (uint32_t t2 = 0; t2 < num_states; ++t2) {
        if (++tests > options_.max_composition_tests) {
          counters_.capped_compositions.fetch_add(1, kRelaxed);
          return FallbackWalk(topo, rule, path, owner, requester, r1.exports,
                              stats);
        }
        if (!sum->Reaches(rule, path, static_cast<size_t>(from_idx),
                          entry.state, j, t2)) {
          continue;
        }
        // The walk can sit at boundary vertex bv in state t2; expand the
        // crossing over every matching cut edge, checking the far node
        // against the step filter and the accept-after-edge test exactly
        // as a live walker would.
        const NodeId bv = sum->boundary_nodes()[j];
        const BoundStep& step = nfa.StepSpec(t2);
        const bool accepts = nfa.AcceptsAfterEdge(t2);
        const std::vector<uint32_t>& targets = nfa.TargetsAfterEdge(t2);
        const std::span<const CutArc> arcs =
            step.backward ? topo.CutIn(bv) : topo.CutOut(bv);
        for (const CutArc& arc : arcs) {
          if (arc.label != step.label) continue;
          if (!BoundPathExpression::NodePasses(*master_graph_, arc.other,
                                               step)) {
            continue;
          }
          if (accepts && arc.other == requester) {
            stats.used_summary = true;
            return true;
          }
          for (uint32_t t3 : targets) {
            enqueue({arc.other, t3, residual[t3]});
          }
        }
      }
    }
  }
  stats.used_summary = true;
  if (final_seeds.empty()) return false;

  // Final local walk in the requester's shard.
  wire::WalkRequest fin;
  fin.rule = rule;
  fin.path = path;
  fin.requester = requester;
  fin.seed = wire::WalkSeed::kFrontier;
  fin.owner = owner;
  fin.frontier = std::move(final_seeds);
  const wire::WalkReply rf = shards_[req_shard]->ExpandFrontier(fin);
  if (rf.status_code != 0) {
    return wire::UnpackStatus(rf.status_code, rf.error);
  }
  stats.pairs_visited += rf.pairs_visited;
  return rf.accepted != 0;
}

Result<bool> ShardRouter::FallbackWalk(
    const ShardTopology& topo, RuleId rule, uint32_t path, NodeId owner,
    NodeId requester, std::span<const wire::FrontierEntry> seeds,
    CrossStats& stats) const {
  stats.used_fallback = true;
  counters_.fallback_walks.fetch_add(1, kRelaxed);

  // Two-phase rounds: every shard with pending entries walks once per
  // round; fresh exports only enter the NEXT round's pending sets, so a
  // round's walks are independent of each other's results. The global
  // processed set makes each (node, state) configuration cross a shard
  // boundary at most once, which bounds the rounds.
  std::unordered_set<uint64_t> processed;
  std::vector<std::vector<wire::FrontierEntry>> pending(shards_.size());
  auto enqueue = [&](const wire::FrontierEntry& e,
                     std::vector<std::vector<wire::FrontierEntry>>& dest) {
    if (processed.insert(ConfigKey(e)).second) {
      dest[topo.shard_of[e.node]].push_back(e);
    }
  };
  for (const wire::FrontierEntry& e : seeds) enqueue(e, pending);

  uint64_t rounds = 0;
  bool accepted = false;
  while (!accepted) {
    std::vector<std::vector<wire::FrontierEntry>> next(shards_.size());
    bool any = false;
    for (uint32_t s = 0; s < shards_.size() && !accepted; ++s) {
      if (pending[s].empty()) continue;
      any = true;
      wire::WalkRequest wr;
      wr.rule = rule;
      wr.path = path;
      wr.requester = requester;
      wr.seed = wire::WalkSeed::kFrontier;
      wr.owner = owner;
      wr.frontier = std::move(pending[s]);
      const wire::WalkReply r = shards_[s]->ExpandFrontier(wr);
      if (r.status_code != 0) {
        counters_.fallback_rounds.fetch_add(rounds, kRelaxed);
        return wire::UnpackStatus(r.status_code, r.error);
      }
      stats.pairs_visited += r.pairs_visited;
      if (r.accepted != 0) {
        accepted = true;
        break;
      }
      for (const wire::FrontierEntry& e : r.exports) enqueue(e, next);
    }
    if (!any) break;
    ++rounds;
    pending = std::move(next);
  }
  counters_.fallback_rounds.fetch_add(rounds, kRelaxed);
  return accepted;
}

std::vector<Result<AccessDecision>> ShardRouter::CheckAccessBatch(
    std::span<const AccessRequest> requests) const {
  if (!built_) {
    std::vector<Result<AccessDecision>> out;
    out.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      out.emplace_back(
          Status::FailedPrecondition("ShardRouter: Build() not called"));
    }
    return out;
  }
  counters_.checks.fetch_add(requests.size(), kRelaxed);
  if (shards_.size() == 1) {
    return shards_[0]->engine().CheckAccessBatch(requests);
  }

  const auto topo = topology();
  const wire::Stamp stamp = Stamp();
  std::vector<std::optional<Result<AccessDecision>>> slots(requests.size());

  // Group by resource-owner shard; one shard-local batch per group.
  // Shard-local grants are authoritative; everything else escalates.
  std::vector<std::vector<uint32_t>> groups(shards_.size());
  for (uint32_t i = 0; i < requests.size(); ++i) {
    const AccessRequest& r = requests[i];
    if (r.resource >= resources_.size()) {
      slots[i] = Status::NotFound("ShardRouter: unknown resource " +
                                  std::to_string(r.resource));
      continue;
    }
    if (r.requester >= topo->shard_of.size()) {
      slots[i] = Status::InvalidArgument("ShardRouter: requester " +
                                         std::to_string(r.requester) +
                                         " out of range");
      continue;
    }
    groups[topo->shard_of[resources_[r.resource].owner]].push_back(i);
  }
  for (uint32_t s = 0; s < groups.size(); ++s) {
    if (groups[s].empty()) continue;
    wire::BatchCheckRequest batch;
    batch.requests.reserve(groups[s].size());
    for (uint32_t i : groups[s]) batch.requests.push_back(ToWire(requests[i]));
    const wire::BatchCheckReply replies = shards_[s]->CheckBatch(batch);
    if (replies.replies.size() != groups[s].size()) continue;  // escalate all
    for (size_t k = 0; k < groups[s].size(); ++k) {
      const uint32_t i = groups[s][k];
      const wire::CheckReply& reply = replies.replies[k];
      if (reply.status_code != 0 || reply.granted == 0) continue;
      counters_.local_conclusive.fetch_add(1, kRelaxed);
      Result<AccessDecision> d =
          FromWire(reply, requests[i].requester, requests[i].resource);
      d->snapshot_generation = stamp.snapshot_generation;
      d->overlay_version = stamp.overlay_version;
      slots[i] = std::move(d);
    }
  }

  std::vector<Result<AccessDecision>> out;
  out.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (slots[i].has_value()) {
      out.push_back(std::move(*slots[i]));
    } else {
      out.push_back(DecideMulti(requests[i]));
    }
  }
  return out;
}

Status ShardRouter::AddEdge(NodeId src, NodeId dst, const std::string& label) {
  if (!built_) {
    return Status::FailedPrecondition("ShardRouter: Build() not called");
  }
  if (shards_.size() == 1) {
    return shards_[0]->engine().AddEdge(src, dst, label);
  }
  const auto topo = topology();
  if (src >= topo->shard_of.size() || dst >= topo->shard_of.size()) {
    return Status::InvalidArgument("AddEdge: endpoint out of range");
  }
  // Pre-intern the name everywhere (master first) so the id every shard
  // resolves is identical — the invariant wire frontiers rely on.
  const LabelId id = master_graph_->labels().Intern(label);
  for (auto& shard : shards_) {
    if (shard->InternLabel(label) != id) {
      return Status::Internal("AddEdge: label dictionaries diverged");
    }
  }
  return AddEdge(src, dst, id);
}

Status ShardRouter::AddEdge(NodeId src, NodeId dst, LabelId label) {
  if (!built_) {
    return Status::FailedPrecondition("ShardRouter: Build() not called");
  }
  if (shards_.size() == 1) {
    return shards_[0]->engine().AddEdge(src, dst, label);
  }
  const auto topo = topology();
  if (src >= topo->shard_of.size() || dst >= topo->shard_of.size()) {
    return Status::InvalidArgument("AddEdge: endpoint out of range");
  }
  const uint32_t s1 = topo->shard_of[src];
  const uint32_t s2 = topo->shard_of[dst];

  wire::MutateRequest req;
  req.op = wire::MutateOp::kAddEdge;
  req.src = src;
  req.dst = dst;
  req.label = label;
  const wire::MutateReply r1 = shards_[s1]->Mutate(req);
  Status st = wire::UnpackStatus(r1.status_code, r1.error);
  if (s2 != s1) {
    const wire::MutateReply r2 = shards_[s2]->Mutate(req);
    const Status st2 = wire::UnpackStatus(r2.status_code, r2.error);
    if (st.ok() != st2.ok()) {
      return Status::Internal("AddEdge: shards disagree (" + st.ToString() +
                              " vs " + st2.ToString() + ")");
    }
  }
  if (!st.ok()) return st;
  if (s1 != s2 && !HasCutArc(*topo, src, dst, label)) {
    auto next = std::make_shared<ShardTopology>(*topo);
    next->cut_out[src].push_back({dst, label});
    next->cut_in[dst].push_back({src, label});
    SortedInsert(next->boundary[s1], src);
    SortedInsert(next->boundary[s2], dst);
    ++next->epoch;
    PublishTopology(std::move(next));
  }
  return OkStatus();
}

Status ShardRouter::RemoveEdge(NodeId src, NodeId dst,
                               const std::string& label) {
  if (!built_) {
    return Status::FailedPrecondition("ShardRouter: Build() not called");
  }
  if (shards_.size() == 1) {
    return shards_[0]->engine().RemoveEdge(src, dst, label);
  }
  const LabelId id = master_graph_->labels().Lookup(label);
  if (id == kInvalidLabel) {
    return Status::NotFound("RemoveEdge: unknown label '" + label + "'");
  }
  return RemoveEdge(src, dst, id);
}

Status ShardRouter::RemoveEdge(NodeId src, NodeId dst, LabelId label) {
  if (!built_) {
    return Status::FailedPrecondition("ShardRouter: Build() not called");
  }
  if (shards_.size() == 1) {
    return shards_[0]->engine().RemoveEdge(src, dst, label);
  }
  const auto topo = topology();
  if (src >= topo->shard_of.size() || dst >= topo->shard_of.size()) {
    return Status::InvalidArgument("RemoveEdge: endpoint out of range");
  }
  const uint32_t s1 = topo->shard_of[src];
  const uint32_t s2 = topo->shard_of[dst];

  wire::MutateRequest req;
  req.op = wire::MutateOp::kRemoveEdge;
  req.src = src;
  req.dst = dst;
  req.label = label;
  const wire::MutateReply r1 = shards_[s1]->Mutate(req);
  Status st = wire::UnpackStatus(r1.status_code, r1.error);
  if (s2 != s1) {
    const wire::MutateReply r2 = shards_[s2]->Mutate(req);
    const Status st2 = wire::UnpackStatus(r2.status_code, r2.error);
    if (st.ok() != st2.ok()) {
      return Status::Internal("RemoveEdge: shards disagree (" + st.ToString() +
                              " vs " + st2.ToString() + ")");
    }
  }
  if (!st.ok()) return st;
  if (s1 != s2 && HasCutArc(*topo, src, dst, label)) {
    auto next = std::make_shared<ShardTopology>(*topo);
    EraseCutArc(next->cut_out, src, dst, label);
    EraseCutArc(next->cut_in, dst, src, label);
    if (!TouchesCut(*next, src)) SortedErase(next->boundary[s1], src);
    if (!TouchesCut(*next, dst)) SortedErase(next->boundary[s2], dst);
    ++next->epoch;
    PublishTopology(std::move(next));
  }
  return OkStatus();
}

Result<NodeId> ShardRouter::AddNode() {
  if (!built_) {
    return Status::FailedPrecondition("ShardRouter: Build() not called");
  }
  const auto topo = topology();
  if (shards_.size() == 1) {
    SARGUS_ASSIGN_OR_RETURN(const NodeId id,
                            shards_[0]->engine().AddNode());
    auto next = std::make_shared<ShardTopology>(*topo);
    next->shard_of.push_back(0);
    ++next->epoch;
    PublishTopology(std::move(next));
    return id;
  }

  // Every shard keeps the full node id space, so the node is added to
  // ALL shards (the ids must come back aligned); the topology then
  // assigns ownership to the least-loaded shard.
  const NodeId expected = static_cast<NodeId>(topo->shard_of.size());
  wire::MutateRequest req;
  req.op = wire::MutateOp::kAddNode;
  for (auto& shard : shards_) {
    const wire::MutateReply reply = shard->Mutate(req);
    SARGUS_RETURN_IF_ERROR(wire::UnpackStatus(reply.status_code, reply.error));
    if (reply.new_node != expected) {
      return Status::Internal(
          "AddNode: shard node ids diverged (got " +
          std::to_string(reply.new_node) + ", expected " +
          std::to_string(expected) + ")");
    }
  }
  uint32_t target = 0;
  for (uint32_t s = 1; s < loads_.size(); ++s) {
    if (loads_[s] < loads_[target]) target = s;
  }
  ++loads_[target];
  auto next = std::make_shared<ShardTopology>(*topo);
  next->shard_of.push_back(target);
  ++next->epoch;
  PublishTopology(std::move(next));
  return expected;
}

Status ShardRouter::RefreshSummaries() {
  if (!options_.build_summaries || shards_.size() <= 1) return OkStatus();
  const auto topo = topology();
  for (auto& shard : shards_) {
    SARGUS_RETURN_IF_ERROR(shard->RefreshSummary(*topo, options_.summary));
  }
  return OkStatus();
}

Status ShardRouter::CompactAll() {
  if (!built_) {
    return Status::FailedPrecondition("ShardRouter: Build() not called");
  }
  for (auto& shard : shards_) {
    SARGUS_RETURN_IF_ERROR(shard->engine().Compact());
    shard->engine().WaitForCompaction();
  }
  return RefreshSummaries();
}

}  // namespace sargus
