#include "shard/transport.h"

#include <algorithm>
#include <chrono>
#include <span>
#include <string>
#include <thread>
#include <utility>

#include "shard/shard_engine.h"

namespace sargus {
namespace {

/// Uniform double in [0, 1) from one 64-bit draw (top 53 bits), so the
/// sampling sequence is bit-identical across platforms — unlike the
/// standard distributions, which the standard leaves unspecified.
double UnitDraw(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Deadlines are absolute times on a specific transport's clock. The
/// fault decorator enforces them against its own virtual clock and must
/// therefore NOT forward them to the wrapped transport, whose clock is
/// unrelated (steady_clock for InProcessTransport).
constexpr TransportCallOptions kNoInnerDeadline{};

}  // namespace

// ---- InProcessTransport -----------------------------------------------------

InProcessTransport::InProcessTransport(std::vector<ShardEngine*> engines)
    : engines_(std::move(engines)) {}

uint64_t InProcessTransport::NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void InProcessTransport::SleepMs(uint32_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

Status InProcessTransport::CheckDeadline(const TransportCallOptions& opts) {
  if (opts.deadline_ms != 0 && NowMs() > opts.deadline_ms) {
    return Status::DeadlineExceeded("transport: call deadline passed");
  }
  return OkStatus();
}

Result<wire::CheckReply> InProcessTransport::Check(
    uint32_t shard, const wire::CheckRequest& request,
    const TransportCallOptions& opts) {
  SARGUS_RETURN_IF_ERROR(CheckDeadline(opts));
  return engines_[shard]->Check(request);
}

Result<wire::BatchCheckReply> InProcessTransport::CheckBatch(
    uint32_t shard, const wire::BatchCheckRequest& request,
    const TransportCallOptions& opts) {
  SARGUS_RETURN_IF_ERROR(CheckDeadline(opts));
  return engines_[shard]->CheckBatch(request);
}

Result<wire::WalkReply> InProcessTransport::ExpandFrontier(
    uint32_t shard, const wire::WalkRequest& request,
    const TransportCallOptions& opts) {
  SARGUS_RETURN_IF_ERROR(CheckDeadline(opts));
  return engines_[shard]->ExpandFrontier(request);
}

Result<wire::MutateReply> InProcessTransport::Mutate(
    uint32_t shard, const wire::MutateRequest& request,
    const TransportCallOptions& opts) {
  SARGUS_RETURN_IF_ERROR(CheckDeadline(opts));
  return engines_[shard]->Mutate(request);
}

// ---- FaultInjectionTransport ------------------------------------------------

FaultInjectionTransport::FaultInjectionTransport(
    std::unique_ptr<ShardTransport> inner, uint64_t seed)
    : inner_(std::move(inner)),
      // A virtual epoch well above zero so an absolute deadline of 0
      // stays an unambiguous "no deadline" sentinel.
      clock_ms_(uint64_t{1} << 20) {
  const uint32_t n = inner_->num_shards();
  states_.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    auto st = std::make_unique<ShardState>();
    // Distinct, seed-derived stream per shard: faults on one shard do
    // not shift another shard's sequence.
    st->rng.seed(seed * 0x9e3779b97f4a7c15ULL + s + 1);
    states_.push_back(std::move(st));
  }
}

void FaultInjectionTransport::SetProfile(uint32_t shard,
                                         const ShardFaultProfile& profile) {
  ShardState& st = *states_[shard];
  std::lock_guard<std::mutex> lock(st.mu);
  st.profile = profile;
}

void FaultInjectionTransport::AddSchedule(const FaultScheduleEntry& entry) {
  schedule_.push_back(entry);
}

void FaultInjectionTransport::Blackout(uint32_t shard, bool black) {
  states_[shard]->blackout.store(black, std::memory_order_relaxed);
}

bool FaultInjectionTransport::blacked_out(uint32_t shard) const {
  return states_[shard]->blackout.load(std::memory_order_relaxed);
}

FaultCounters FaultInjectionTransport::counters(uint32_t shard) const {
  ShardState& st = *states_[shard];
  std::lock_guard<std::mutex> lock(st.mu);
  return st.counters;
}

FaultKind FaultInjectionTransport::DrawFault(uint32_t shard) {
  ShardState& st = *states_[shard];
  std::lock_guard<std::mutex> lock(st.mu);
  const uint64_t idx = st.call_index++;
  ++st.counters.calls;
  if (st.blackout.load(std::memory_order_relaxed)) {
    ++st.counters.drops;
    return FaultKind::kDrop;
  }
  FaultKind kind = FaultKind::kNone;
  for (const FaultScheduleEntry& e : schedule_) {
    if (e.shard == shard && idx >= e.first_call && idx <= e.last_call) {
      kind = e.kind;
      break;
    }
  }
  if (kind == FaultKind::kNone) {
    const ShardFaultProfile& p = st.profile;
    if (p.delay_probability > 0 && UnitDraw(st.rng) < p.delay_probability) {
      kind = FaultKind::kDelay;
    } else if (p.drop_probability > 0 &&
               UnitDraw(st.rng) < p.drop_probability) {
      kind = FaultKind::kDrop;
    } else if (p.error_probability > 0 &&
               UnitDraw(st.rng) < p.error_probability) {
      kind = FaultKind::kErrorReply;
    } else if (p.corrupt_probability > 0 &&
               UnitDraw(st.rng) < p.corrupt_probability) {
      kind = FaultKind::kCorrupt;
    }
  }
  switch (kind) {
    case FaultKind::kDelay: {
      ++st.counters.delays;
      const uint32_t lo = st.profile.delay_min_ms;
      const uint32_t hi =
          st.profile.delay_max_ms > lo ? st.profile.delay_max_ms : lo;
      const uint32_t ms =
          lo + static_cast<uint32_t>(st.rng() % (uint64_t{hi} - lo + 1));
      clock_ms_.fetch_add(ms, std::memory_order_relaxed);
      break;
    }
    case FaultKind::kDrop:
      ++st.counters.drops;
      break;
    case FaultKind::kErrorReply:
      ++st.counters.error_replies;
      break;
    case FaultKind::kCorrupt:
      ++st.counters.corrupts;
      break;
    case FaultKind::kNone:
      break;
  }
  return kind;
}

Status FaultInjectionTransport::DropStatus(uint32_t shard) {
  return Status::Unavailable("injected: shard " + std::to_string(shard) +
                             " unreachable");
}

Status FaultInjectionTransport::ErrorReplyStatus(uint32_t shard) {
  // Round-trip a real error frame so the wire path a remote shard would
  // use is exercised, not just simulated.
  wire::ErrorFrame frame;
  frame.status_code = static_cast<uint8_t>(StatusCode::kUnavailable);
  frame.message = "injected: shard " + std::to_string(shard) +
                  " answered with an error frame";
  const std::vector<uint8_t> bytes = wire::Encode(frame);
  Result<wire::ErrorFrame> decoded = wire::DecodeErrorFrame(bytes);
  if (!decoded.ok()) return decoded.status();  // unreachable in practice
  return wire::StatusFromErrorFrame(*decoded);
}

Status FaultInjectionTransport::DeadlineStatus(
    uint32_t shard, const TransportCallOptions& opts) {
  if (opts.deadline_ms != 0 && NowMs() > opts.deadline_ms) {
    ShardState& st = *states_[shard];
    std::lock_guard<std::mutex> lock(st.mu);
    ++st.counters.deadline_hits;
    return Status::DeadlineExceeded("transport: call deadline passed (shard " +
                                    std::to_string(shard) + ")");
  }
  return OkStatus();
}

void FaultInjectionTransport::MutateBytes(ShardState& st,
                                          std::vector<uint8_t>& bytes) {
  const uint32_t n_mutations = 1 + static_cast<uint32_t>(st.rng() % 4);
  for (uint32_t i = 0; i < n_mutations && !bytes.empty(); ++i) {
    switch (st.rng() % 4) {
      case 0:  // flip one bit
        bytes[st.rng() % bytes.size()] ^= uint8_t{1} << (st.rng() % 8);
        break;
      case 1:  // zero one byte
        bytes[st.rng() % bytes.size()] = 0;
        break;
      case 2:  // truncate up to 8 bytes
        bytes.resize(bytes.size() - 1 -
                     st.rng() % std::min<size_t>(bytes.size(), 8));
        break;
      case 3:  // append garbage
        bytes.push_back(static_cast<uint8_t>(st.rng()));
        break;
    }
  }
}

template <typename Reply, typename DecodeFn>
Result<Reply> FaultInjectionTransport::CorruptReply(uint32_t shard,
                                                    const Reply& reply,
                                                    DecodeFn decode) {
  std::vector<uint8_t> bytes = wire::Encode(reply);
  ShardState& st = *states_[shard];
  {
    std::lock_guard<std::mutex> lock(st.mu);
    MutateBytes(st, bytes);
  }
  Result<Reply> decoded = decode(std::span<const uint8_t>(bytes));
  if (!decoded.ok()) {
    return Status::Unavailable(
        "injected: corrupt reply frame from shard " + std::to_string(shard) +
        " (" + decoded.status().message() + ")");
  }
  // The checksum held, so the mutation round-tripped to an identical
  // frame — accepting it is safe (and astronomically rare).
  {
    std::lock_guard<std::mutex> lock(st.mu);
    ++st.counters.corrupt_survived;
  }
  return std::move(decoded).ValueOrDie();
}

Result<wire::CheckReply> FaultInjectionTransport::Check(
    uint32_t shard, const wire::CheckRequest& request,
    const TransportCallOptions& opts) {
  return SubmitCheck(shard, request, opts).Wait();
}

Result<wire::BatchCheckReply> FaultInjectionTransport::CheckBatch(
    uint32_t shard, const wire::BatchCheckRequest& request,
    const TransportCallOptions& opts) {
  return SubmitBatch(shard, request, opts).Wait();
}

Result<wire::WalkReply> FaultInjectionTransport::ExpandFrontier(
    uint32_t shard, const wire::WalkRequest& request,
    const TransportCallOptions& opts) {
  return SubmitWalk(shard, request, opts).Wait();
}

TransportTicket<wire::CheckReply> FaultInjectionTransport::SubmitCheck(
    uint32_t shard, const wire::CheckRequest& request,
    const TransportCallOptions& opts) {
  using Ticket = TransportTicket<wire::CheckReply>;
  const FaultKind fault = DrawFault(shard);
  if (fault == FaultKind::kDrop) return Ticket::Ready(DropStatus(shard));
  if (fault == FaultKind::kErrorReply) {
    return Ticket::Ready(ErrorReplyStatus(shard));
  }
  if (Status s = DeadlineStatus(shard, opts); !s.ok()) {
    return Ticket::Ready(std::move(s));
  }
  // The deadline was already enforced against THIS transport's (virtual)
  // clock; the inner transport runs a different clock, so the deadline
  // must not leak through (kNoInnerDeadline below likewise).
  Ticket inner = inner_->SubmitCheck(shard, request, kNoInnerDeadline);
  if (fault != FaultKind::kCorrupt) return inner;
  return std::move(inner).Then(
      [this, shard](Result<wire::CheckReply> r) -> Result<wire::CheckReply> {
        if (!r.ok()) return r;
        return CorruptReply(shard, *r, [](std::span<const uint8_t> b) {
          return wire::DecodeCheckReply(b);
        });
      });
}

TransportTicket<wire::BatchCheckReply> FaultInjectionTransport::SubmitBatch(
    uint32_t shard, const wire::BatchCheckRequest& request,
    const TransportCallOptions& opts) {
  using Ticket = TransportTicket<wire::BatchCheckReply>;
  const FaultKind fault = DrawFault(shard);
  if (fault == FaultKind::kDrop) return Ticket::Ready(DropStatus(shard));
  if (fault == FaultKind::kErrorReply) {
    return Ticket::Ready(ErrorReplyStatus(shard));
  }
  if (Status s = DeadlineStatus(shard, opts); !s.ok()) {
    return Ticket::Ready(std::move(s));
  }
  Ticket inner = inner_->SubmitBatch(shard, request, kNoInnerDeadline);
  if (fault != FaultKind::kCorrupt) return inner;
  return std::move(inner).Then(
      [this,
       shard](Result<wire::BatchCheckReply> r) -> Result<wire::BatchCheckReply> {
        if (!r.ok()) return r;
        return CorruptReply(shard, *r, [](std::span<const uint8_t> b) {
          return wire::DecodeBatchCheckReply(b);
        });
      });
}

TransportTicket<wire::WalkReply> FaultInjectionTransport::SubmitWalk(
    uint32_t shard, const wire::WalkRequest& request,
    const TransportCallOptions& opts) {
  using Ticket = TransportTicket<wire::WalkReply>;
  const FaultKind fault = DrawFault(shard);
  if (fault == FaultKind::kDrop) return Ticket::Ready(DropStatus(shard));
  if (fault == FaultKind::kErrorReply) {
    return Ticket::Ready(ErrorReplyStatus(shard));
  }
  if (Status s = DeadlineStatus(shard, opts); !s.ok()) {
    return Ticket::Ready(std::move(s));
  }
  Ticket inner = inner_->SubmitWalk(shard, request, kNoInnerDeadline);
  if (fault != FaultKind::kCorrupt) return inner;
  return std::move(inner).Then(
      [this, shard](Result<wire::WalkReply> r) -> Result<wire::WalkReply> {
        if (!r.ok()) return r;
        return CorruptReply(shard, *r, [](std::span<const uint8_t> b) {
          return wire::DecodeWalkReply(b);
        });
      });
}

Result<wire::MutateReply> FaultInjectionTransport::Mutate(
    uint32_t shard, const wire::MutateRequest& request,
    const TransportCallOptions& opts) {
  // Mutations are fail-stop-before-apply (file comment in transport.h):
  // ANY fault fires before the mutation is delivered, so a failed
  // Mutate was never applied. A corrupt fault on a mutation therefore
  // degrades to a drop — we cannot corrupt a reply we refuse to
  // produce.
  const FaultKind fault = DrawFault(shard);
  if (fault == FaultKind::kDrop || fault == FaultKind::kCorrupt) {
    return DropStatus(shard);
  }
  if (fault == FaultKind::kErrorReply) return ErrorReplyStatus(shard);
  SARGUS_RETURN_IF_ERROR(DeadlineStatus(shard, opts));
  return inner_->Mutate(shard, request, kNoInnerDeadline);
}

// ---- ShardHealthTracker -----------------------------------------------------

ShardHealthTracker::ShardHealthTracker(uint32_t num_shards,
                                       uint32_t failure_threshold,
                                       uint32_t open_ms)
    : failure_threshold_(failure_threshold), open_ms_(open_ms) {
  entries_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    entries_.push_back(std::make_unique<Entry>());
  }
}

bool ShardHealthTracker::AllowCall(uint32_t shard, uint64_t now_ms) {
  Entry& e = *entries_[shard];
  uint8_t state = e.state.load(std::memory_order_acquire);
  if (state == static_cast<uint8_t>(BreakerState::kClosed)) return true;
  if (state == static_cast<uint8_t>(BreakerState::kOpen)) {
    if (now_ms < e.open_until_ms.load(std::memory_order_acquire)) {
      return false;
    }
    // Window elapsed: move to half-open (any one racer may do it).
    uint8_t expected = static_cast<uint8_t>(BreakerState::kOpen);
    e.state.compare_exchange_strong(
        expected, static_cast<uint8_t>(BreakerState::kHalfOpen),
        std::memory_order_acq_rel);
  }
  // Half-open: exactly one probe at a time.
  bool expected_probe = false;
  return e.probe_in_flight.compare_exchange_strong(
      expected_probe, true, std::memory_order_acq_rel);
}

void ShardHealthTracker::RecordSuccess(uint32_t shard) {
  Entry& e = *entries_[shard];
  e.consecutive_failures.store(0, std::memory_order_relaxed);
  e.state.store(static_cast<uint8_t>(BreakerState::kClosed),
                std::memory_order_release);
  e.probe_in_flight.store(false, std::memory_order_release);
}

void ShardHealthTracker::RecordFailure(uint32_t shard, uint64_t now_ms) {
  Entry& e = *entries_[shard];
  const uint8_t state = e.state.load(std::memory_order_acquire);
  if (state == static_cast<uint8_t>(BreakerState::kHalfOpen)) {
    // The probe failed: re-open a full window.
    e.open_until_ms.store(now_ms + open_ms_, std::memory_order_release);
    e.state.store(static_cast<uint8_t>(BreakerState::kOpen),
                  std::memory_order_release);
    e.probe_in_flight.store(false, std::memory_order_release);
    opens_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const uint32_t failures =
      e.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  if (failures >= failure_threshold_ &&
      state == static_cast<uint8_t>(BreakerState::kClosed)) {
    uint8_t expected = static_cast<uint8_t>(BreakerState::kClosed);
    if (e.state.compare_exchange_strong(
            expected, static_cast<uint8_t>(BreakerState::kOpen),
            std::memory_order_acq_rel)) {
      e.open_until_ms.store(now_ms + open_ms_, std::memory_order_release);
      opens_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

BreakerState ShardHealthTracker::state(uint32_t shard) const {
  return static_cast<BreakerState>(
      entries_[shard]->state.load(std::memory_order_acquire));
}

uint32_t ShardHealthTracker::consecutive_failures(uint32_t shard) const {
  return entries_[shard]->consecutive_failures.load(
      std::memory_order_relaxed);
}

}  // namespace sargus
