#ifndef SARGUS_SHARD_SHARD_ENGINE_H_
#define SARGUS_SHARD_SHARD_ENGINE_H_

/// \file shard_engine.h
/// \brief One shard of the sharded serving tier: an AccessControlEngine
/// over the shard's induced subgraph (plus its side of every cut edge),
/// spoken to exclusively through the wire messages of shard/wire.h.
///
/// A ShardEngine is the unit that would become a server process in a
/// distributed deployment. It answers:
///
///   * Check / CheckBatch — plain access decisions over the shard-local
///     graph (authoritative when the resource's whole rule evaluation
///     stays inside the shard; a building block otherwise);
///   * ExpandFrontier — run a product-space walk seeded either at a
///     resource owner (phase one) or at an imported frontier (phase two
///     and fallback rounds), returning acceptance plus every
///     configuration that escaped into nodes this shard does not own;
///   * Mutate / SubmitMutate — the mutation entry points, delegating to
///     the wrapped engine's MPSC MutationQueue (engine/write_queue.h):
///     SubmitMutate enqueues and returns the WriteTicket, Mutate is the
///     Submit+Wait composition. Safe from any number of threads; the
///     per-shard writer thread group-commits concurrent mutations;
///   * RefreshSummary — (re)build the shard's boundary summary against
///     its current read view.
///
/// Two construction modes: the multi-shard mode owns its extracted graph
/// copy and a clone of the master policy store (identical resource/rule
/// ids — see ClonePolicyStore); the single-shard mode wraps the caller's
/// graph and store directly, making an N=1 router a true zero-copy
/// passthrough over one ordinary engine.

#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "engine/access_engine.h"
#include "shard/boundary_summary.h"
#include "shard/topology.h"
#include "shard/wire.h"

namespace sargus {

/// Deep copy of `store` preserving every ResourceId and RuleId (replayed
/// in id order through the public registration API; path expressions
/// round-trip through their canonical text form). The sharded tier
/// clones the master store per shard so rule ids in wire messages mean
/// the same thing everywhere.
Result<PolicyStore> ClonePolicyStore(const PolicyStore& store);

// Wire <-> engine request/decision conversion, shared by the router and
// the shard engines.
wire::CheckRequest ToWire(const AccessRequest& request);
AccessRequest FromWire(const wire::CheckRequest& request);
wire::CheckReply ToWire(const Result<AccessDecision>& decision);
/// Rebuilds the engine-shaped decision; `requester`/`resource` come from
/// the request the reply answered (the wire reply does not repeat them).
Result<AccessDecision> FromWire(const wire::CheckReply& reply,
                                NodeId requester, ResourceId resource);

class ShardEngine {
 public:
  /// Multi-shard mode: takes ownership of the extracted shard graph and
  /// the cloned policy store.
  ShardEngine(uint32_t id, std::unique_ptr<SocialGraph> graph,
              std::unique_ptr<PolicyStore> store,
              const EngineOptions& options);

  /// Single-shard passthrough mode: serves `graph`/`store` in place.
  /// Both must outlive the engine.
  ShardEngine(uint32_t id, SocialGraph& graph, const PolicyStore& store,
              const EngineOptions& options);

  /// Builds the wrapped engine's indexes; required before any request.
  Status Build() { return engine_.RebuildIndexes(); }

  uint32_t id() const { return id_; }
  AccessControlEngine& engine() { return engine_; }
  const AccessControlEngine& engine() const { return engine_; }
  const SocialGraph& graph() const { return *graph_; }

  /// Interns `name` into the shard graph's label dictionary, returning
  /// the id. The router pre-interns new labels into every shard (master
  /// first) so ids stay aligned; see ShardRouter::AddEdge.
  LabelId InternLabel(const std::string& name) {
    return graph_->labels().Intern(name);
  }

  /// Publishes / pins the current shard map (copy-on-write; see
  /// shard/topology.h).
  void SetTopology(std::shared_ptr<const ShardTopology> topology);
  std::shared_ptr<const ShardTopology> topology() const;

  /// Stamps of the currently published read view (what replies carry).
  wire::Stamp ViewStamp() const;

  // ---- Wire request handlers (all thread-safe; mutations are
  // serialized by the engine's per-shard MutationQueue) ---------------------

  wire::CheckReply Check(const wire::CheckRequest& request) const;
  wire::BatchCheckReply CheckBatch(const wire::BatchCheckRequest& request) const;
  wire::WalkReply ExpandFrontier(const wire::WalkRequest& request) const;
  wire::MutateReply Mutate(const wire::MutateRequest& request);

  /// Async mutation: enqueues on the shard engine's MutationQueue and
  /// returns the ticket immediately. The router's AddNode fan-out uses
  /// this to run the all-shards id-alignment round concurrently; the
  /// reply a waited ticket yields is ReplyFromOutcome(request, Wait()).
  WriteTicket SubmitMutate(const wire::MutateRequest& request);

  /// Packs a completed ticket outcome into the wire reply `Mutate`
  /// would have returned: per-op status, the exact (generation,
  /// overlay_version) stamp the mutation landed in, and the assigned id
  /// for kAddNode.
  static wire::MutateReply ReplyFromOutcome(const wire::MutateRequest& request,
                                            const WriteOutcome& outcome);

  /// Byte-level dispatch: the entry point a socket server loop would
  /// hand incoming frames to. Parses `frame`, routes request messages
  /// to the handlers above, and returns the encoded reply. Anything
  /// unparseable or non-request (a reply or error frame is not a valid
  /// thing to SEND a shard) comes back as an encoded wire::ErrorFrame —
  /// garbage in, a clean validated error frame out, never a crash.
  /// A kMutateRequest routed through HandleFrame goes through the
  /// engine's MutationQueue like every other mutation, so concurrent
  /// byte-level callers are safe (serialized by submission order).
  std::vector<uint8_t> HandleFrame(std::span<const uint8_t> frame);

  // ---- Boundary summary ---------------------------------------------------

  /// Rebuilds this shard's boundary summary from its current read view
  /// and `topology`'s boundary list, stamped with the view's stamps.
  Status RefreshSummary(const ShardTopology& topology,
                        const BoundarySummaryOptions& options);

  /// The last built summary (null before the first RefreshSummary). The
  /// router checks its stamp against ViewStamp() before trusting it.
  std::shared_ptr<const BoundarySummary> summary() const;

 private:
  uint32_t id_;
  std::unique_ptr<SocialGraph> owned_graph_;
  std::unique_ptr<PolicyStore> owned_store_;
  SocialGraph* graph_;
  const PolicyStore* store_;
  AccessControlEngine engine_;  // after the owned pieces: ctor order

  mutable std::mutex topo_mu_;
  std::shared_ptr<const ShardTopology> topology_;

  mutable std::mutex summary_mu_;
  std::shared_ptr<const BoundarySummary> summary_;
};

}  // namespace sargus

#endif  // SARGUS_SHARD_SHARD_ENGINE_H_
