#ifndef SARGUS_SHARD_WIRE_H_
#define SARGUS_SHARD_WIRE_H_

/// \file wire.h
/// \brief The versioned router <-> shard protocol: plain PODs + flat
/// vectors, no pointers.
///
/// Every message the ShardRouter exchanges with a ShardEngine is one of
/// the structs below, and every struct has a byte-exact little-endian
/// encoding (Encode/Decode) behind a framed header:
///
///     u32 magic "SGRW" | u32 protocol version | u8 message type | payload
///     | u64 FNV-1a checksum (over every preceding byte)
///
/// In-process the structs are passed directly — serialization is not on
/// the hot path — but the encodings are implemented, round-trip tested,
/// and validated on decode (magic, version, checksum, type, exact
/// length), so the in-process boundary is already a network-ready
/// protocol: promoting a ShardEngine to a remote server means moving
/// bytes, not redesigning messages.
///
/// Stability promise (see docs/ARCHITECTURE.md): the header layout and
/// the meaning of existing fields never change within a protocol
/// version; evolution is additive (append fields, bump
/// kProtocolVersion). A decoder always rejects a version it does not
/// know with kInvalidArgument rather than guessing. Version history:
/// v1 had no trailing checksum and no kErrorFrame; v2 added both (the
/// checksum is what turns a corrupted frame into a clean kInvalidArgument
/// instead of a silently misread message — see the fault-injection
/// transport in shard/transport.h).
///
/// Identifier convention: node, label, resource, rule and automaton
/// state ids in wire messages are GLOBAL — every shard graph keeps the
/// full node id space and identical dictionaries (graph/subgraph.h),
/// and every shard compiles identical policy snapshots, so a
/// (node, state) frontier entry produced by one shard seeds a walk on
/// any other with no translation.

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "core/automaton.h"

namespace sargus::wire {

inline constexpr uint32_t kMagic = 0x57524753;  // "SGRW", little-endian
inline constexpr uint32_t kProtocolVersion = 2;

enum class MsgType : uint8_t {
  kCheckRequest = 1,
  kCheckReply = 2,
  kBatchCheckRequest = 3,
  kBatchCheckReply = 4,
  kWalkRequest = 5,
  kWalkReply = 6,
  kMutateRequest = 7,
  kMutateReply = 8,
  kErrorFrame = 9,
};

/// The (snapshot_generation, overlay_version) pair identifying the
/// published shard state a reply was produced against.
struct Stamp {
  uint64_t snapshot_generation = 0;
  uint64_t overlay_version = 0;
  bool operator==(const Stamp&) const = default;
};

/// One mid-walk product configuration shipped between shards: the walk
/// paused at `node` in automaton state `state` with `residual_hops`
/// edges of budget left (the sum of max-hops of the remaining steps —
/// derivable from `state` alone, carried explicitly so both sides can
/// cross-check that they compiled the same automaton; a receiver
/// rejects a mismatch, which would mean diverged policy or label
/// dictionaries).
struct FrontierEntry {
  NodeId node = 0;
  uint32_t state = 0;
  uint32_t residual_hops = 0;
  bool operator==(const FrontierEntry&) const = default;
};

/// Residual hop budget per automaton state: the value FrontierEntry
/// carries. residual[s] = sum of max_hops over steps >= StepOf(s),
/// minus the hops already consumed within StepOf(s). Always >= 1 for a
/// live (non-accept) state.
std::vector<uint32_t> ResidualHopBudgets(const HopAutomaton& nfa);

// ---- CheckAccess ----------------------------------------------------------

struct CheckRequest {
  NodeId requester = 0;
  ResourceId resource = 0;
  uint8_t want_witness = 0;
  uint8_t has_evaluator_override = 0;
  /// EvaluatorChoice as an integer (valid when has_evaluator_override).
  uint8_t evaluator_override = 0;
  bool operator==(const CheckRequest&) const = default;
};

struct CheckReply {
  /// sargus StatusCode; non-zero means the request failed and only
  /// `error` is meaningful.
  uint8_t status_code = 0;
  std::string error;
  uint8_t granted = 0;
  uint8_t owner_access = 0;
  uint8_t has_matched_rule = 0;
  RuleId matched_rule = 0;
  uint64_t pairs_visited = 0;
  Stamp stamp;
  std::vector<NodeId> witness;
  bool operator==(const CheckReply&) const = default;
};

struct BatchCheckRequest {
  std::vector<CheckRequest> requests;
  bool operator==(const BatchCheckRequest&) const = default;
};

struct BatchCheckReply {
  /// Positional: replies[i] answers requests[i].
  std::vector<CheckReply> replies;
  bool operator==(const BatchCheckReply&) const = default;
};

// ---- Frontier walks (cross-shard evaluation) ------------------------------

enum class WalkSeed : uint8_t {
  /// Seed the automaton start closure at `owner` (phase one: the walk
  /// that begins at the resource owner on its home shard).
  kOwnerStarts = 0,
  /// Seed the explicit `frontier` (phase two / fallback rounds: resume
  /// configurations another shard exported).
  kFrontier = 1,
};

struct WalkRequest {
  RuleId rule = 0;
  /// Path index within the rule (a rule is a disjunction of paths).
  uint32_t path = 0;
  NodeId requester = 0;
  WalkSeed seed = WalkSeed::kOwnerStarts;
  NodeId owner = 0;
  std::vector<FrontierEntry> frontier;
  bool operator==(const WalkRequest&) const = default;
};

struct WalkReply {
  uint8_t status_code = 0;
  std::string error;
  /// An accepting edge landed on `requester` inside this shard's local
  /// graph — a global grant (local edges are a subset of global edges).
  uint8_t accepted = 0;
  /// Every fresh configuration the walk pushed at a node this shard
  /// does not own — the entry points into other shards. Deduplicated
  /// within one reply by the walk's visited set.
  std::vector<FrontierEntry> exports;
  uint64_t pairs_visited = 0;
  Stamp stamp;
  bool operator==(const WalkReply&) const = default;
};

// ---- Mutations ------------------------------------------------------------

enum class MutateOp : uint8_t {
  kAddEdge = 0,
  kRemoveEdge = 1,
  kAddNode = 2,
};

struct MutateRequest {
  MutateOp op = MutateOp::kAddEdge;
  NodeId src = 0;
  NodeId dst = 0;
  /// kInvalidLabel means `label_name` carries the label instead (the
  /// router normally pre-resolves names so ids stay aligned across
  /// shards; the name path exists for single-shard passthrough).
  LabelId label = kInvalidLabel;
  std::string label_name;
  bool operator==(const MutateRequest&) const = default;
};

struct MutateReply {
  uint8_t status_code = 0;
  std::string error;
  /// The id assigned by kAddNode (kInvalidNode otherwise).
  NodeId new_node = kInvalidNode;
  /// Writer-side stamps after the mutation.
  Stamp stamp;
  bool operator==(const MutateReply&) const = default;
};

// ---- Error frame ----------------------------------------------------------

/// The in-band failure envelope: what a shard (or a transport acting on
/// its behalf) sends when it cannot produce the typed reply a request
/// asked for — an unparseable request frame, an unknown message type, a
/// handler that failed before it knew which reply shape to build. Typed
/// replies still carry their own status_code for ordinary evaluation
/// errors; the error frame exists so even "I could not understand you"
/// travels as a validated wire message instead of an out-of-band C++
/// return.
struct ErrorFrame {
  /// sargus StatusCode; never 0 (an OK error frame is meaningless).
  uint8_t status_code = 0;
  std::string message;
  bool operator==(const ErrorFrame&) const = default;
};

/// The Status an error frame carries.
Status StatusFromErrorFrame(const ErrorFrame& frame);

// ---- Status packing -------------------------------------------------------

uint8_t PackStatus(const Status& status);
Status UnpackStatus(uint8_t code, std::string error);

// ---- Serialization --------------------------------------------------------

std::vector<uint8_t> Encode(const CheckRequest& m);
std::vector<uint8_t> Encode(const CheckReply& m);
std::vector<uint8_t> Encode(const BatchCheckRequest& m);
std::vector<uint8_t> Encode(const BatchCheckReply& m);
std::vector<uint8_t> Encode(const WalkRequest& m);
std::vector<uint8_t> Encode(const WalkReply& m);
std::vector<uint8_t> Encode(const MutateRequest& m);
std::vector<uint8_t> Encode(const MutateReply& m);
std::vector<uint8_t> Encode(const ErrorFrame& m);

/// Decoders validate the frame (magic, known version, matching type)
/// and exact payload length; kInvalidArgument on any mismatch or
/// truncation.
Result<CheckRequest> DecodeCheckRequest(std::span<const uint8_t> bytes);
Result<CheckReply> DecodeCheckReply(std::span<const uint8_t> bytes);
Result<BatchCheckRequest> DecodeBatchCheckRequest(
    std::span<const uint8_t> bytes);
Result<BatchCheckReply> DecodeBatchCheckReply(std::span<const uint8_t> bytes);
Result<WalkRequest> DecodeWalkRequest(std::span<const uint8_t> bytes);
Result<WalkReply> DecodeWalkReply(std::span<const uint8_t> bytes);
Result<MutateRequest> DecodeMutateRequest(std::span<const uint8_t> bytes);
Result<MutateReply> DecodeMutateReply(std::span<const uint8_t> bytes);
Result<ErrorFrame> DecodeErrorFrame(std::span<const uint8_t> bytes);

/// The message type of a framed buffer, after validating magic, version
/// and checksum (but not the payload). kInvalidArgument on any garbage.
Result<MsgType> PeekType(std::span<const uint8_t> bytes);

/// Any wire message, decoded. The frame-dispatch entry point a server
/// loop uses (ShardEngine::HandleFrame); also the surface the wire fuzz
/// suite hammers: for ANY byte string, ParseMessage either returns a
/// fully validated message or a clean kInvalidArgument — it never
/// crashes, never over-allocates, and (checksum) never accepts a
/// mutated frame.
using Message =
    std::variant<CheckRequest, CheckReply, BatchCheckRequest, BatchCheckReply,
                 WalkRequest, WalkReply, MutateRequest, MutateReply,
                 ErrorFrame>;
Result<Message> ParseMessage(std::span<const uint8_t> bytes);

}  // namespace sargus::wire

#endif  // SARGUS_SHARD_WIRE_H_
