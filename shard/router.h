#ifndef SARGUS_SHARD_ROUTER_H_
#define SARGUS_SHARD_ROUTER_H_

/// \file router.h
/// \brief ShardRouter: the sharded serving tier's front door.
///
/// Build() partitions the master graph (shard/partitioner.h), extracts
/// one shard-local graph per shard (graph/subgraph.h), stands up one
/// ShardEngine per shard, and publishes the initial ShardTopology. From
/// then on the router exposes the same CheckAccess / CheckAccessBatch /
/// AddEdge / RemoveEdge / AddNode surface as a single
/// AccessControlEngine — decisions agree exactly with a single engine
/// over the unpartitioned graph — while all real work happens inside
/// the shards, reached only through the wire messages of shard/wire.h.
///
/// Decision procedure for a cross-shard check (see PathReaches):
///
///   1. *Local phase*: ask the resource owner's shard directly. A grant
///      is authoritative (shard-local edges are a subset of global
///      edges); a deny is authoritative only if the phase-one walk's
///      export set is empty (no configuration escaped the shard).
///   2. *Summary composition*: compose the shards' boundary summaries
///      (shard/boundary_summary.h) with the cut-edge table into a
///      router-local fixpoint over boundary configurations — no shard
///      traffic at all. Exact when every consulted summary is fresh;
///      any stale summary aborts to step 3.
///   3. *Frontier exchange fallback*: two-phase rounds shipping
///      (node, state, residual-hops) frontiers to the owning shards
///      until acceptance or a global fixpoint. Always available, always
///      exact; the summaries only exist to avoid it.
///
/// Mutations route to the owning shard — both owners for a cut edge —
/// preserving each engine's single-writer contract, and republish a
/// copy-on-write topology when the cut set or node count changes. The
/// router's write path must itself be externally serialized (one writer
/// at a time), mirroring the engine contract; reads are concurrent.
///
/// With N = 1 the router is a zero-copy passthrough: one ShardEngine
/// wraps the caller's graph and store in place, and CheckAccess simply
/// forwards (decisions carry the engine's own stamps, byte-identical to
/// going through the engine directly).
///
/// Robustness (PR 7): every data-plane shard call goes through a
/// ShardTransport (shard/transport.h) under a retry / deadline /
/// circuit-breaker policy (RouterRobustnessOptions). When an owner
/// shard is unreachable, checks concludable exactly from fresh boundary
/// summaries are still answered (stamped with degraded_reason);
/// everything else fails with an explicit kUnavailable or
/// kDeadlineExceeded — a completed decision is always exact, a
/// non-answer is always an error, and a silently wrong grant or deny is
/// never returned. Control-plane operations (Build, AddNode,
/// RefreshSummaries, CompactAll, stamp and summary reads) stay direct
/// in-process calls: they model cluster management, which a real
/// deployment runs over a reliable coordination channel, not the
/// request path.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/access_engine.h"
#include "shard/boundary_summary.h"
#include "shard/executor_transport.h"
#include "shard/partitioner.h"
#include "shard/shard_engine.h"
#include "shard/topology.h"
#include "shard/transport.h"
#include "shard/wire.h"

namespace sargus {

/// Retry / deadline / circuit-breaker policy for the router's data-
/// plane calls (see docs/ARCHITECTURE.md, "Failure model & degraded
/// serving"). Every transport call gets a per-attempt deadline; failed
/// attempts retry with exponential backoff + deterministic jitter under
/// a per-operation budget; a shard that keeps failing trips a breaker
/// and fails fast until a half-open probe succeeds.
struct RouterRobustnessOptions {
  /// Per-attempt deadline, ms (0 = none).
  uint32_t call_deadline_ms = 50;
  /// Total time budget for one logical shard operation including
  /// retries and backoff, ms (0 = none).
  uint32_t op_budget_ms = 250;
  /// Attempts per logical call (1 = no retries).
  uint32_t max_attempts = 3;
  /// Backoff before retry k (0-based) is
  /// min(backoff_base_ms << k, backoff_max_ms), stretched by up to
  /// backoff_jitter of itself (deterministic per-call jitter).
  uint32_t backoff_base_ms = 1;
  uint32_t backoff_max_ms = 32;
  double backoff_jitter = 0.5;
  /// Consecutive transport failures that open a shard's breaker.
  uint32_t breaker_failure_threshold = 3;
  /// How long an open breaker fails fast before allowing one half-open
  /// probe, ms.
  uint32_t breaker_open_ms = 100;
  /// When an owner shard is unreachable, answer cross-shard checks that
  /// are concludable exactly from fresh boundary summaries instead of
  /// failing them (the decision is stamped with degraded_reason).
  /// Checks that cannot be concluded exactly still fail with
  /// kUnavailable — degraded mode never guesses.
  bool allow_degraded = true;
  /// Seed for the deterministic backoff jitter.
  uint64_t jitter_seed = 0x5eedULL;
};

struct RouterOptions {
  PartitionOptions partition;
  EngineOptions engine;
  BoundarySummaryOptions summary;
  /// Build boundary summaries at Build()/RefreshSummaries() and consult
  /// them before falling back to frontier exchange. Off = every
  /// cross-shard path goes straight to the fallback (the forced-
  /// fallback tests and the bench's no-summary series use this).
  bool build_summaries = true;
  /// Summary-composition work cap (reachability tests per path); an
  /// exceeding composition falls back to frontier exchange.
  size_t max_composition_tests = size_t{1} << 20;
  /// Retry / breaker / degraded-serving policy.
  RouterRobustnessOptions robustness;
  /// Put the thread-per-shard executor (shard/executor_transport.h)
  /// behind the transport seam instead of the serial
  /// InProcessTransport. CheckAccessBatch sub-batches and frontier-
  /// exchange rounds then really run concurrently across shards (the
  /// router scatters through Submit* and gathers in shard order, so
  /// decisions are byte-identical to the serial transport's). Like a
  /// transport_decorator, this disables the N == 1 direct passthrough
  /// so single-shard configurations exercise the executor too.
  bool threaded_transport = false;
  /// Executor knobs (queue bounds, workers per shard, test hook) when
  /// threaded_transport is set.
  ThreadedTransportOptions executor;
  /// Wraps the router's transport at Build() — the seam the fault-
  /// injection tests use (wrap the InProcessTransport in a
  /// FaultInjectionTransport). When set, even an N == 1 router routes
  /// data-plane calls through the transport so single-shard
  /// configurations are chaos-testable; when unset, N == 1 stays a
  /// direct zero-copy passthrough.
  std::function<std::unique_ptr<ShardTransport>(
      std::unique_ptr<ShardTransport>)>
      transport_decorator;
};

/// Monotonic router-level counters (relaxed atomics; read with
/// counters()). The bench derives its summary-hit-rate from these.
struct RouterCounters {
  uint64_t checks = 0;
  /// Checks that needed the cross-shard machinery (not answered by an
  /// owner grant or an owner-shard local grant).
  uint64_t cross_shard_checks = 0;
  /// Checks answered by the owner shard's local engine (grant).
  uint64_t local_conclusive = 0;
  /// Cross-shard checks concluded without any frontier exchange
  /// (phase-one conclusive or summary composition).
  uint64_t summary_resolved = 0;
  /// Frontier-exchange walks run (per path evaluation).
  uint64_t fallback_walks = 0;
  /// Cross-shard checks that needed at least one frontier exchange.
  uint64_t cross_fallback_walks = 0;
  /// Total frontier-exchange rounds across all fallback walks.
  uint64_t fallback_rounds = 0;
  /// Fallbacks caused by a stale/missing/unbuilt summary.
  uint64_t stale_summary_fallbacks = 0;
  /// Fallbacks caused by the composition work cap.
  uint64_t capped_compositions = 0;
  /// Transport-call re-attempts (attempt 2+ of a logical call).
  uint64_t retries = 0;
  /// Transport attempts that ended kDeadlineExceeded.
  uint64_t timeouts = 0;
  /// Circuit-breaker open transitions (closed->open and re-opens).
  uint64_t breaker_opens = 0;
  /// Checks answered exactly through the degraded (owner-shard-down)
  /// summary path.
  uint64_t degraded_answers = 0;
  /// Checks that returned kUnavailable / kDeadlineExceeded.
  uint64_t unavailable_errors = 0;
};

class ShardRouter {
 public:
  /// `graph` and `store` must outlive the router. For num_shards == 1
  /// the router serves `graph` in place; otherwise it owns per-shard
  /// copies and `graph` becomes the frozen master (the router never
  /// mutates it beyond label interning in AddEdge-by-name).
  ShardRouter(SocialGraph& graph, const PolicyStore& store,
              RouterOptions options = {});

  /// Partitions, extracts, builds every shard engine, publishes the
  /// initial topology, and (when configured) builds boundary summaries.
  Status Build();

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  const GraphPartition& partition() const { return partition_; }
  ShardEngine& shard(uint32_t id) { return *shards_[id]; }
  const ShardEngine& shard(uint32_t id) const { return *shards_[id]; }
  std::shared_ptr<const ShardTopology> topology() const;

  /// The data-plane transport built at Build() (after decoration).
  /// Valid only after Build().
  ShardTransport& transport() const { return *transport_; }
  /// The per-shard circuit breaker. Valid only after Build().
  ShardHealthTracker& health() const { return *health_; }

  // ---- Read path (thread-safe; concurrent with one writer) ----------------

  Result<AccessDecision> CheckAccess(const AccessRequest& request) const;

  /// Positional batch. Requests are grouped by resource-owner shard and
  /// decided with one shard-local batch per group; only slots a
  /// shard-local batch cannot settle authoritatively (non-grants on a
  /// multi-shard topology) escalate to the per-request cross-shard
  /// procedure.
  std::vector<Result<AccessDecision>> CheckAccessBatch(
      std::span<const AccessRequest> requests) const;

  /// Sum of the per-shard view stamps: changes whenever any shard's
  /// published state changes, so it orders router-level decisions the
  /// way a single engine's (generation, version) pair does.
  wire::Stamp Stamp() const;

  RouterCounters counters() const;

  // ---- Write path (thread-safe: router-level mutations serialize on an
  // internal lock, then flow through each shard's MutationQueue) ------------
  //
  // AddEdge/RemoveEdge/AddNode may be called from any number of threads
  // concurrently. An internal write lock makes each call's multi-shard
  // protocol atomic with respect to other router mutations — the
  // cut-edge both-shards sequence (apply s1, apply s2, roll back s1 on
  // transport failure) and the AddNode all-shards id-alignment round
  // never interleave — while inside each shard the mutation rides the
  // engine's queue like any other producer's. Fail-stop-before-apply
  // on transport mutations (PR 7/8) is unchanged.

  Status AddEdge(NodeId src, NodeId dst, const std::string& label);
  Status AddEdge(NodeId src, NodeId dst, LabelId label);
  Status RemoveEdge(NodeId src, NodeId dst, const std::string& label);
  Status RemoveEdge(NodeId src, NodeId dst, LabelId label);

  /// Adds one node to every shard (ids stay aligned across shards) and
  /// assigns it to the least-loaded shard in a republished topology.
  /// The all-shards round fans out through the per-shard queues
  /// (ShardEngine::SubmitMutate) and gathers the tickets, so N shards
  /// assign the id concurrently, not serially.
  Result<NodeId> AddNode();

  /// Rebuilds every shard's boundary summary against its current view.
  /// No-op when summaries are disabled or N == 1.
  Status RefreshSummaries();

  /// Compacts every shard (waiting each out), then refreshes summaries.
  Status CompactAll();

 private:
  struct RouterResource {
    NodeId owner = 0;
    std::vector<RuleId> rules;
  };
  struct RouterPath {
    Status bind_status = OkStatus();
    std::shared_ptr<const BoundPathExpression> bound;
  };
  /// Per-evaluation bookkeeping threaded through the cross-shard path.
  struct CrossStats {
    uint64_t pairs_visited = 0;
    bool used_summary = false;
    bool used_fallback = false;
  };

  /// How a summary-composition run ended (shared by the healthy and
  /// degraded paths).
  enum class ComposeOutcome : uint8_t {
    kGranted = 0,
    kDenied = 1,
    /// A consulted summary was missing, stale, or did not cover a
    /// needed boundary vertex. Healthy path: frontier-exchange
    /// fallback. Degraded path: kUnavailable.
    kStale = 2,
    /// The composition work cap was hit. Same handling as kStale.
    kCapped = 3,
  };

  void PublishTopology(std::shared_ptr<const ShardTopology> topo);

  /// Full multi-shard decision procedure (file comment, steps 1-3),
  /// plus retry / breaker / degraded handling. Wrapped by DecideMulti,
  /// which maintains the robustness counters.
  Result<AccessDecision> DecideMultiImpl(const AccessRequest& request) const;
  Result<AccessDecision> DecideMulti(const AccessRequest& request) const;

  /// Degraded decision: the owner's shard is unreachable
  /// (`owner_error`); conclude every rule path exactly from fresh
  /// boundary summaries and healthy shards, or fail with kUnavailable.
  Result<AccessDecision> DecideDegraded(const ShardTopology& topo,
                                        const AccessRequest& request,
                                        NodeId owner,
                                        const Status& owner_error) const;

  /// Does a path from `owner` to `requester` matching (rule, path)
  /// exist in the global graph? Exact.
  Result<bool> PathReaches(const ShardTopology& topo, RuleId rule,
                           uint32_t path, NodeId owner, NodeId requester,
                           CrossStats& stats) const;

  /// Step 2 core: router-local summary composition from `seeds`,
  /// finishing with a local walk on the requester's shard when entry
  /// configurations landed there. Transport failures propagate as
  /// statuses; composition obstructions come back as kStale / kCapped.
  Result<ComposeOutcome> ComposeSummaries(
      const ShardTopology& topo, RuleId rule, uint32_t path, NodeId owner,
      NodeId requester, std::span<const wire::FrontierEntry> seeds,
      CrossStats& stats) const;

  /// Step 3: two-phase frontier-exchange rounds from `seeds`.
  Result<bool> FallbackWalk(const ShardTopology& topo, RuleId rule,
                            uint32_t path, NodeId owner, NodeId requester,
                            std::span<const wire::FrontierEntry> seeds,
                            CrossStats& stats) const;

  /// One logical transport call split into a scatter half and a gather
  /// half, so fan-out paths can submit every shard's call before
  /// waiting on any. BeginCall consults the circuit breaker, builds the
  /// attempt-0 deadline, and submits; FinishCall waits the ticket and
  /// runs the bounded retry loop (synchronously, via `call`) with
  /// jittered exponential backoff on failure. `salt` feeds the jitter
  /// hash and must be derived from the call's CONTENT (shard, request
  /// identity), never shared mutable state, so concurrent retries
  /// jitter deterministically regardless of interleaving.
  template <typename Reply>
  struct PendingCall {
    uint32_t shard = 0;
    uint64_t salt = 0;
    uint64_t budget_deadline = 0;
    /// Set when the call failed before submission (breaker open).
    std::optional<Status> early;
    TransportTicket<Reply> ticket;
  };
  template <typename Reply, typename SubmitFn>
  PendingCall<Reply> BeginCall(uint32_t shard, uint64_t salt,
                               SubmitFn&& submit) const;
  template <typename Reply, typename Fn>
  Result<Reply> FinishCall(PendingCall<Reply>& pending, Fn&& call) const;

  /// The serial composition of the two halves: one robust logical
  /// transport call with per-attempt deadlines, bounded retries, and
  /// circuit-breaker consultation. `call` runs one attempt given its
  /// TransportCallOptions.
  template <typename Reply, typename Fn>
  Result<Reply> CallShard(uint32_t shard, uint64_t salt, Fn&& call) const;

  Result<wire::MutateReply> CallMutate(uint32_t shard,
                                       const wire::MutateRequest& req);

  /// Resolved-label mutation bodies; caller holds write_mu_ (the public
  /// by-name overloads resolve/pre-intern the label, then delegate).
  Status AddEdgeImpl(NodeId src, NodeId dst, LabelId label);
  Status RemoveEdgeImpl(NodeId src, NodeId dst, LabelId label);

  /// True when the router serves a single shard directly, bypassing the
  /// transport (no decorator, no executor).
  bool DirectSingleShard() const {
    return shards_.size() == 1 && !options_.transport_decorator &&
           !options_.threaded_transport;
  }

  SocialGraph* master_graph_;
  const PolicyStore* master_store_;
  RouterOptions options_;

  GraphPartition partition_;
  std::vector<std::unique_ptr<ShardEngine>> shards_;
  /// Data-plane road to the shards (InProcessTransport, possibly
  /// decorated). Null until Build(); N == 1 without a decorator
  /// bypasses it entirely.
  std::unique_ptr<ShardTransport> transport_;
  std::unique_ptr<ShardHealthTracker> health_;
  /// Owner + rule mirror of the master store (resource-id indexed).
  std::vector<RouterResource> resources_;
  /// Router-side binds against the master dictionaries (rule-id
  /// indexed; ids identical in every shard).
  std::vector<std::vector<RouterPath>> paths_;
  bool built_ = false;

  mutable std::mutex topo_mu_;
  std::shared_ptr<const ShardTopology> topo_;

  /// Serializes router-level mutation protocols (cut-edge both-shards
  /// sequences, the AddNode fan-out, label pre-interning) against each
  /// other so concurrent callers cannot interleave their multi-shard
  /// steps. Per-shard serialization happens in the shard engines'
  /// MutationQueues; this lock only orders the router's own protocol.
  std::mutex write_mu_;
  /// Writer-side per-shard node loads, for AddNode placement. Guarded
  /// by write_mu_.
  std::vector<size_t> loads_;

  struct AtomicCounters {
    std::atomic<uint64_t> checks{0};
    std::atomic<uint64_t> cross_shard_checks{0};
    std::atomic<uint64_t> local_conclusive{0};
    std::atomic<uint64_t> summary_resolved{0};
    std::atomic<uint64_t> fallback_walks{0};
    std::atomic<uint64_t> cross_fallback_walks{0};
    std::atomic<uint64_t> fallback_rounds{0};
    std::atomic<uint64_t> stale_summary_fallbacks{0};
    std::atomic<uint64_t> capped_compositions{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> timeouts{0};
    std::atomic<uint64_t> degraded_answers{0};
    std::atomic<uint64_t> unavailable_errors{0};
    // breaker_opens lives on the ShardHealthTracker.
  };
  mutable AtomicCounters counters_;
};

}  // namespace sargus

#endif  // SARGUS_SHARD_ROUTER_H_
