#ifndef SARGUS_SHARD_ROUTER_H_
#define SARGUS_SHARD_ROUTER_H_

/// \file router.h
/// \brief ShardRouter: the sharded serving tier's front door.
///
/// Build() partitions the master graph (shard/partitioner.h), extracts
/// one shard-local graph per shard (graph/subgraph.h), stands up one
/// ShardEngine per shard, and publishes the initial ShardTopology. From
/// then on the router exposes the same CheckAccess / CheckAccessBatch /
/// AddEdge / RemoveEdge / AddNode surface as a single
/// AccessControlEngine — decisions agree exactly with a single engine
/// over the unpartitioned graph — while all real work happens inside
/// the shards, reached only through the wire messages of shard/wire.h.
///
/// Decision procedure for a cross-shard check (see PathReaches):
///
///   1. *Local phase*: ask the resource owner's shard directly. A grant
///      is authoritative (shard-local edges are a subset of global
///      edges); a deny is authoritative only if the phase-one walk's
///      export set is empty (no configuration escaped the shard).
///   2. *Summary composition*: compose the shards' boundary summaries
///      (shard/boundary_summary.h) with the cut-edge table into a
///      router-local fixpoint over boundary configurations — no shard
///      traffic at all. Exact when every consulted summary is fresh;
///      any stale summary aborts to step 3.
///   3. *Frontier exchange fallback*: two-phase rounds shipping
///      (node, state, residual-hops) frontiers to the owning shards
///      until acceptance or a global fixpoint. Always available, always
///      exact; the summaries only exist to avoid it.
///
/// Mutations route to the owning shard — both owners for a cut edge —
/// preserving each engine's single-writer contract, and republish a
/// copy-on-write topology when the cut set or node count changes. The
/// router's write path must itself be externally serialized (one writer
/// at a time), mirroring the engine contract; reads are concurrent.
///
/// With N = 1 the router is a zero-copy passthrough: one ShardEngine
/// wraps the caller's graph and store in place, and CheckAccess simply
/// forwards (decisions carry the engine's own stamps, byte-identical to
/// going through the engine directly).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/access_engine.h"
#include "shard/boundary_summary.h"
#include "shard/partitioner.h"
#include "shard/shard_engine.h"
#include "shard/topology.h"
#include "shard/wire.h"

namespace sargus {

struct RouterOptions {
  PartitionOptions partition;
  EngineOptions engine;
  BoundarySummaryOptions summary;
  /// Build boundary summaries at Build()/RefreshSummaries() and consult
  /// them before falling back to frontier exchange. Off = every
  /// cross-shard path goes straight to the fallback (the forced-
  /// fallback tests and the bench's no-summary series use this).
  bool build_summaries = true;
  /// Summary-composition work cap (reachability tests per path); an
  /// exceeding composition falls back to frontier exchange.
  size_t max_composition_tests = size_t{1} << 20;
};

/// Monotonic router-level counters (relaxed atomics; read with
/// counters()). The bench derives its summary-hit-rate from these.
struct RouterCounters {
  uint64_t checks = 0;
  /// Checks that needed the cross-shard machinery (not answered by an
  /// owner grant or an owner-shard local grant).
  uint64_t cross_shard_checks = 0;
  /// Checks answered by the owner shard's local engine (grant).
  uint64_t local_conclusive = 0;
  /// Cross-shard checks concluded without any frontier exchange
  /// (phase-one conclusive or summary composition).
  uint64_t summary_resolved = 0;
  /// Frontier-exchange walks run (per path evaluation).
  uint64_t fallback_walks = 0;
  /// Cross-shard checks that needed at least one frontier exchange.
  uint64_t cross_fallback_walks = 0;
  /// Total frontier-exchange rounds across all fallback walks.
  uint64_t fallback_rounds = 0;
  /// Fallbacks caused by a stale/missing/unbuilt summary.
  uint64_t stale_summary_fallbacks = 0;
  /// Fallbacks caused by the composition work cap.
  uint64_t capped_compositions = 0;
};

class ShardRouter {
 public:
  /// `graph` and `store` must outlive the router. For num_shards == 1
  /// the router serves `graph` in place; otherwise it owns per-shard
  /// copies and `graph` becomes the frozen master (the router never
  /// mutates it beyond label interning in AddEdge-by-name).
  ShardRouter(SocialGraph& graph, const PolicyStore& store,
              RouterOptions options = {});

  /// Partitions, extracts, builds every shard engine, publishes the
  /// initial topology, and (when configured) builds boundary summaries.
  Status Build();

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  const GraphPartition& partition() const { return partition_; }
  ShardEngine& shard(uint32_t id) { return *shards_[id]; }
  const ShardEngine& shard(uint32_t id) const { return *shards_[id]; }
  std::shared_ptr<const ShardTopology> topology() const;

  // ---- Read path (thread-safe; concurrent with one writer) ----------------

  Result<AccessDecision> CheckAccess(const AccessRequest& request) const;

  /// Positional batch. Requests are grouped by resource-owner shard and
  /// decided with one shard-local batch per group; only slots a
  /// shard-local batch cannot settle authoritatively (non-grants on a
  /// multi-shard topology) escalate to the per-request cross-shard
  /// procedure.
  std::vector<Result<AccessDecision>> CheckAccessBatch(
      std::span<const AccessRequest> requests) const;

  /// Sum of the per-shard view stamps: changes whenever any shard's
  /// published state changes, so it orders router-level decisions the
  /// way a single engine's (generation, version) pair does.
  wire::Stamp Stamp() const;

  RouterCounters counters() const;

  // ---- Write path (externally serialized, like the engine's) --------------

  Status AddEdge(NodeId src, NodeId dst, const std::string& label);
  Status AddEdge(NodeId src, NodeId dst, LabelId label);
  Status RemoveEdge(NodeId src, NodeId dst, const std::string& label);
  Status RemoveEdge(NodeId src, NodeId dst, LabelId label);

  /// Adds one node to every shard (ids stay aligned across shards) and
  /// assigns it to the least-loaded shard in a republished topology.
  Result<NodeId> AddNode();

  /// Rebuilds every shard's boundary summary against its current view.
  /// No-op when summaries are disabled or N == 1.
  Status RefreshSummaries();

  /// Compacts every shard (waiting each out), then refreshes summaries.
  Status CompactAll();

 private:
  struct RouterResource {
    NodeId owner = 0;
    std::vector<RuleId> rules;
  };
  struct RouterPath {
    Status bind_status = OkStatus();
    std::shared_ptr<const BoundPathExpression> bound;
  };
  /// Per-evaluation bookkeeping threaded through the cross-shard path.
  struct CrossStats {
    uint64_t pairs_visited = 0;
    bool used_summary = false;
    bool used_fallback = false;
  };

  void PublishTopology(std::shared_ptr<const ShardTopology> topo);

  /// Full multi-shard decision procedure (file comment, steps 1-3).
  Result<AccessDecision> DecideMulti(const AccessRequest& request) const;

  /// Does a path from `owner` to `requester` matching (rule, path)
  /// exist in the global graph? Exact.
  Result<bool> PathReaches(const ShardTopology& topo, RuleId rule,
                           uint32_t path, NodeId owner, NodeId requester,
                           CrossStats& stats) const;

  /// Step 3: two-phase frontier-exchange rounds from `seeds`.
  Result<bool> FallbackWalk(const ShardTopology& topo, RuleId rule,
                            uint32_t path, NodeId owner, NodeId requester,
                            std::span<const wire::FrontierEntry> seeds,
                            CrossStats& stats) const;

  SocialGraph* master_graph_;
  const PolicyStore* master_store_;
  RouterOptions options_;

  GraphPartition partition_;
  std::vector<std::unique_ptr<ShardEngine>> shards_;
  /// Owner + rule mirror of the master store (resource-id indexed).
  std::vector<RouterResource> resources_;
  /// Router-side binds against the master dictionaries (rule-id
  /// indexed; ids identical in every shard).
  std::vector<std::vector<RouterPath>> paths_;
  bool built_ = false;

  mutable std::mutex topo_mu_;
  std::shared_ptr<const ShardTopology> topo_;

  /// Writer-side per-shard node loads, for AddNode placement.
  std::vector<size_t> loads_;

  struct AtomicCounters {
    std::atomic<uint64_t> checks{0};
    std::atomic<uint64_t> cross_shard_checks{0};
    std::atomic<uint64_t> local_conclusive{0};
    std::atomic<uint64_t> summary_resolved{0};
    std::atomic<uint64_t> fallback_walks{0};
    std::atomic<uint64_t> cross_fallback_walks{0};
    std::atomic<uint64_t> fallback_rounds{0};
    std::atomic<uint64_t> stale_summary_fallbacks{0};
    std::atomic<uint64_t> capped_compositions{0};
  };
  mutable AtomicCounters counters_;
};

}  // namespace sargus

#endif  // SARGUS_SHARD_ROUTER_H_
