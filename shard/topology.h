#ifndef SARGUS_SHARD_TOPOLOGY_H_
#define SARGUS_SHARD_TOPOLOGY_H_

/// \file topology.h
/// \brief The immutable shard map: node -> shard assignment, the cut
/// edge table, and each shard's boundary vertex list.
///
/// A ShardTopology is copy-on-write state shared between the router and
/// every shard engine's readers. The router mutates a private clone
/// (cut-edge add/remove, node growth) and republishes it behind a
/// mutex-guarded shared_ptr with a bumped epoch; readers pin whatever
/// version was current when they started and never see it change. This
/// mirrors the engine's own read-view discipline (engine/read_view.h) so
/// a CheckAccess in flight during an AddEdge sees one coherent pair of
/// (graph view, topology) snapshots.

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace sargus {

/// One direction of a cut edge as seen from a boundary vertex: the far
/// endpoint and the edge label. Stored in both orientations (cut_out
/// keyed by src, cut_in keyed by dst) so forward and backward automaton
/// steps both expand crossings with one lookup.
struct CutArc {
  NodeId other = 0;
  LabelId label = kInvalidLabel;
  bool operator==(const CutArc&) const = default;
};

struct ShardTopology {
  uint32_t num_shards = 1;
  /// node -> owning shard; size is the logical node count this topology
  /// version covers (nodes added later belong to a newer topology).
  std::vector<uint32_t> shard_of;
  /// Cut edges by src (cut_out) and by dst (cut_in).
  std::unordered_map<NodeId, std::vector<CutArc>> cut_out;
  std::unordered_map<NodeId, std::vector<CutArc>> cut_in;
  /// Per shard, the sorted list of its boundary vertices: nodes the
  /// shard owns that touch at least one cut edge (either direction).
  /// This is the vertex set boundary summaries are restricted to.
  std::vector<std::vector<NodeId>> boundary;
  /// Bumped on every republish; purely diagnostic.
  uint64_t epoch = 0;

  std::span<const CutArc> CutOut(NodeId node) const {
    const auto it = cut_out.find(node);
    if (it == cut_out.end()) return {};
    return it->second;
  }
  std::span<const CutArc> CutIn(NodeId node) const {
    const auto it = cut_in.find(node);
    if (it == cut_in.end()) return {};
    return it->second;
  }

  /// Whether `node` is on `shard`'s boundary list (binary search).
  bool IsBoundary(uint32_t shard, NodeId node) const {
    const std::vector<NodeId>& b = boundary[shard];
    return std::binary_search(b.begin(), b.end(), node);
  }
};

}  // namespace sargus

#endif  // SARGUS_SHARD_TOPOLOGY_H_
