#include "shard/partitioner.h"

#include <algorithm>
#include <numeric>

#include "graph/subgraph.h"

namespace sargus {
namespace {

std::vector<uint32_t> ContiguousAssignment(size_t num_nodes,
                                           uint32_t num_shards) {
  std::vector<uint32_t> shard_of(num_nodes);
  if (num_nodes == 0) return shard_of;
  const size_t width = (num_nodes + num_shards - 1) / num_shards;
  for (size_t v = 0; v < num_nodes; ++v) {
    shard_of[v] = static_cast<uint32_t>(v / width);
  }
  return shard_of;
}

std::vector<uint32_t> CommunityAssignment(const SocialGraph& g,
                                          uint32_t num_shards,
                                          uint32_t sweeps) {
  const size_t n = g.NumNodes();

  // Undirected adjacency (CSR over live edges, both directions).
  std::vector<uint32_t> degree(n, 0);
  for (EdgeId e = 0; e < g.EdgeSlotCount(); ++e) {
    if (!g.IsLiveEdge(e)) continue;
    ++degree[g.edge(e).src];
    ++degree[g.edge(e).dst];
  }
  std::vector<size_t> offset(n + 1, 0);
  for (size_t v = 0; v < n; ++v) offset[v + 1] = offset[v] + degree[v];
  std::vector<NodeId> adj(offset[n]);
  std::vector<size_t> cursor(offset.begin(), offset.end() - 1);
  for (EdgeId e = 0; e < g.EdgeSlotCount(); ++e) {
    if (!g.IsLiveEdge(e)) continue;
    const Edge& edge = g.edge(e);
    adj[cursor[edge.src]++] = edge.dst;
    adj[cursor[edge.dst]++] = edge.src;
  }

  // Label propagation: each node takes the most frequent label among its
  // neighbors, smallest label on ties, nodes visited in id order. Fully
  // deterministic, so tests can pin assignments.
  std::vector<NodeId> label(n);
  std::iota(label.begin(), label.end(), NodeId{0});
  std::vector<uint32_t> count(n, 0);
  for (uint32_t sweep = 0; sweep < sweeps; ++sweep) {
    bool changed = false;
    for (NodeId v = 0; v < n; ++v) {
      if (degree[v] == 0) continue;
      NodeId best = label[v];
      uint32_t best_count = 0;
      std::span<const NodeId> neigh(adj.data() + offset[v], degree[v]);
      for (NodeId u : neigh) ++count[label[u]];
      for (NodeId u : neigh) {
        const NodeId l = label[u];
        const uint32_t c = count[l];
        if (c > best_count || (c == best_count && l < best)) {
          best = l;
          best_count = c;
        }
      }
      for (NodeId u : neigh) count[label[u]] = 0;
      if (best != label[v]) {
        label[v] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Gather communities, order them (size desc, min-label asc), then pack
  // each onto the currently least-loaded shard (lowest id on ties).
  std::unordered_map<NodeId, std::vector<NodeId>> groups;
  for (NodeId v = 0; v < n; ++v) groups[label[v]].push_back(v);
  std::vector<std::pair<NodeId, std::vector<NodeId>>> ordered;
  ordered.reserve(groups.size());
  for (auto& [l, members] : groups) ordered.emplace_back(l, std::move(members));
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    if (a.second.size() != b.second.size()) {
      return a.second.size() > b.second.size();
    }
    return a.first < b.first;
  });

  std::vector<size_t> load(num_shards, 0);
  std::vector<uint32_t> shard_of(n, 0);
  for (const auto& [l, members] : ordered) {
    uint32_t target = 0;
    for (uint32_t s = 1; s < num_shards; ++s) {
      if (load[s] < load[target]) target = s;
    }
    for (NodeId v : members) shard_of[v] = target;
    load[target] += members.size();
  }
  return shard_of;
}

}  // namespace

Result<GraphPartition> GraphPartitioner::Partition(
    const SocialGraph& g, const PartitionOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("Partition: num_shards must be >= 1");
  }

  GraphPartition part;
  part.num_shards = options.num_shards;
  part.shard_of = options.strategy == PartitionStrategy::kCommunity
                      ? CommunityAssignment(g, options.num_shards,
                                            options.community_sweeps)
                      : ContiguousAssignment(g.NumNodes(), options.num_shards);

  part.members.resize(options.num_shards);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    part.members[part.shard_of[v]].push_back(v);
  }
  for (EdgeId e = 0; e < g.EdgeSlotCount(); ++e) {
    if (g.IsLiveEdge(e)) ++part.total_live_edges;
  }
  SARGUS_ASSIGN_OR_RETURN(part.cut_edges,
                          ExtractCutEdges(g, part.shard_of));
  return part;
}

}  // namespace sargus
