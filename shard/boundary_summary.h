#ifndef SARGUS_SHARD_BOUNDARY_SUMMARY_H_
#define SARGUS_SHARD_BOUNDARY_SUMMARY_H_

/// \file boundary_summary.h
/// \brief Per-shard boundary reachability summaries: the index that lets
/// the router answer most cross-shard checks without any frontier
/// exchange.
///
/// For each compiled rule path, a shard summarizes its local graph's
/// *product space* (node × automaton state): Tarjan SCC over the product
/// graph, condensation DAG, then 2-hop labels restricted to the shard's
/// boundary configurations (boundary vertex × state) via
/// TwoHopLabeling::BuildRestricted. The result answers
///
///     "starting at boundary vertex b in state s, can a walk confined to
///      this shard's edges reach boundary vertex b' in state s'?"
///
/// exactly — never over-approximating — because the product graph is
/// built over the same (csr, overlay, NodePasses) iteration the live
/// evaluators use. The router composes these per-shard answers with the
/// cut-edge table (shard/topology.h) into a global fixpoint; see
/// ShardRouter::PathReaches.
///
/// Freshness: a summary is stamped with the (generation, overlay
/// version) of the read view it was built from. Any later mutation on
/// the shard changes the view's stamp, the router's stamp comparison
/// fails, and the router falls back to live frontier exchange until
/// RefreshSummaries() is called — stale summaries are never consulted,
/// so conservatism is a freshness property, not a correctness one.

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "engine/read_view.h"
#include "index/two_hop.h"
#include "shard/wire.h"

namespace sargus {

struct BoundarySummaryOptions {
  TwoHopOptions two_hop;
  /// Skip (leave unbuilt) any path whose boundary-config count
  /// |boundary| × |states| exceeds this; the router falls back to
  /// frontier exchange for unbuilt paths.
  size_t max_boundary_configs = size_t{1} << 16;
};

class BoundarySummary {
 public:
  /// Builds summaries for every successfully bound path of every rule in
  /// `policy`, over the product space of (csr ⊕ overlay) with attribute
  /// filters evaluated against `graph` — exactly the iteration the live
  /// walkers use, which is what makes the summary exact. `boundary`
  /// is this shard's boundary vertex list; `stamp` identifies the read
  /// view the (csr, overlay) pair came from.
  static Result<BoundarySummary> Build(const SocialGraph& graph,
                                       const CsrSnapshot& csr,
                                       const DeltaOverlay& overlay,
                                       std::span<const NodeId> boundary,
                                       const PolicySnapshot& policy,
                                       wire::Stamp stamp,
                                       const BoundarySummaryOptions& options);

  /// The read-view stamp this summary reflects. The router compares it
  /// against the shard's *current* view stamp before every use.
  const wire::Stamp& stamp() const { return stamp_; }

  size_t num_boundary() const { return boundary_.size(); }

  /// The sorted, deduplicated boundary vertex list indices refer to.
  const std::vector<NodeId>& boundary_nodes() const { return boundary_; }

  /// Index of `node` in the boundary list, or -1 when it is not a
  /// boundary vertex of this shard.
  int64_t BoundaryIndexOf(NodeId node) const;

  /// Whether a usable summary exists for (rule, path). False for failed
  /// binds and paths skipped by max_boundary_configs.
  bool PathBuilt(RuleId rule, uint32_t path) const;

  /// Exact shard-local product reachability between boundary configs:
  /// from (boundary_[from_idx], from_state) to (boundary_[to_idx],
  /// to_state). Both states must be < the path automaton's NumStates()
  /// and PathBuilt(rule, path) must hold.
  bool Reaches(RuleId rule, uint32_t path, size_t from_idx,
               uint32_t from_state, size_t to_idx, uint32_t to_state) const;

  size_t MemoryBytes() const;

 private:
  struct PathSummary {
    bool built = false;
    uint32_t num_states = 0;
    /// (boundary index × num_states + state) -> condensation vertex.
    std::vector<uint32_t> comp_of;
    TwoHopLabeling labels;
  };

  std::vector<std::vector<PathSummary>> paths_;  // [rule][path]
  std::vector<NodeId> boundary_;                 // sorted ascending
  wire::Stamp stamp_;
};

}  // namespace sargus

#endif  // SARGUS_SHARD_BOUNDARY_SUMMARY_H_
