#include "shard/boundary_summary.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/automaton.h"
#include "core/path_expression.h"
#include "graph/delta_overlay.h"
#include "index/scc.h"

namespace sargus {

Result<BoundarySummary> BoundarySummary::Build(
    const SocialGraph& graph, const CsrSnapshot& csr,
    const DeltaOverlay& overlay, std::span<const NodeId> boundary,
    const PolicySnapshot& policy, wire::Stamp stamp,
    const BoundarySummaryOptions& options) {
  BoundarySummary summary;
  summary.stamp_ = stamp;
  summary.boundary_.assign(boundary.begin(), boundary.end());
  std::sort(summary.boundary_.begin(), summary.boundary_.end());
  summary.boundary_.erase(
      std::unique(summary.boundary_.begin(), summary.boundary_.end()),
      summary.boundary_.end());

  const size_t num_nodes = LogicalNumNodes(csr, &overlay);
  for (NodeId b : summary.boundary_) {
    if (b >= num_nodes) {
      return Status::FailedPrecondition(
          "BoundarySummary: boundary vertex " + std::to_string(b) +
          " is past the view's logical node count (topology is newer than "
          "the view)");
    }
  }

  summary.paths_.resize(policy.rules.size());
  for (RuleId r = 0; r < policy.rules.size(); ++r) {
    const PolicySnapshot::CompiledRule& rule = policy.rules[r];
    summary.paths_[r].resize(rule.paths.size());
    for (uint32_t p = 0; p < rule.paths.size(); ++p) {
      const PolicySnapshot::CompiledPath& cp = rule.paths[p];
      if (!cp.bind_status.ok() || cp.bound == nullptr) continue;
      const HopAutomaton& nfa = cp.bound->automaton();
      const uint32_t S = nfa.NumStates();
      if (S == 0) continue;
      const size_t product_size = num_nodes * S;
      if (summary.boundary_.size() * S > options.max_boundary_configs ||
          product_size > UINT32_MAX) {
        continue;  // Unbuilt; the router falls back to frontier exchange.
      }

      // Product graph: vertex node*S + state; an arc per edge consumed.
      // Identical neighbor iteration + filter to the live walkers, so
      // the summary's notion of reachability is the evaluators' notion.
      auto for_each_succ = [&](uint32_t pv, auto&& emit) {
        const NodeId node = static_cast<NodeId>(pv / S);
        const uint32_t state = pv % S;
        const std::vector<uint32_t>& targets = nfa.TargetsAfterEdge(state);
        if (targets.empty()) return;
        const BoundStep& step = nfa.StepSpec(state);
        ForEachNeighborEdge(
            csr, &overlay, node, step.label, step.backward, [&](NodeId w) {
              if (!BoundPathExpression::NodePasses(graph, w, step)) {
                return false;
              }
              for (uint32_t t : targets) {
                emit(static_cast<uint32_t>(static_cast<size_t>(w) * S + t));
              }
              return false;
            });
      };

      SccResult scc = ComputeSccGeneric(product_size, for_each_succ);

      // Condensation arcs (deduplicated).
      std::vector<std::pair<uint32_t, uint32_t>> arcs;
      for (size_t pv = 0; pv < product_size; ++pv) {
        const uint32_t cu = scc.component_of[pv];
        for_each_succ(static_cast<uint32_t>(pv), [&](uint32_t w) {
          const uint32_t cw = scc.component_of[w];
          if (cu != cw) arcs.emplace_back(cu, cw);
        });
      }
      std::sort(arcs.begin(), arcs.end());
      arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
      Dag dag = Dag::FromArcs(scc.num_components, std::move(arcs));

      PathSummary ps;
      ps.num_states = S;
      ps.comp_of.resize(summary.boundary_.size() * S);
      for (size_t i = 0; i < summary.boundary_.size(); ++i) {
        for (uint32_t s = 0; s < S; ++s) {
          ps.comp_of[i * S + s] =
              scc.component_of[static_cast<size_t>(summary.boundary_[i]) * S +
                               s];
        }
      }
      SARGUS_ASSIGN_OR_RETURN(
          ps.labels,
          TwoHopLabeling::BuildRestricted(dag, ps.comp_of, options.two_hop));
      ps.built = true;
      summary.paths_[r][p] = std::move(ps);
    }
  }
  return summary;
}

int64_t BoundarySummary::BoundaryIndexOf(NodeId node) const {
  const auto it =
      std::lower_bound(boundary_.begin(), boundary_.end(), node);
  if (it == boundary_.end() || *it != node) return -1;
  return it - boundary_.begin();
}

bool BoundarySummary::PathBuilt(RuleId rule, uint32_t path) const {
  return rule < paths_.size() && path < paths_[rule].size() &&
         paths_[rule][path].built;
}

bool BoundarySummary::Reaches(RuleId rule, uint32_t path, size_t from_idx,
                              uint32_t from_state, size_t to_idx,
                              uint32_t to_state) const {
  const PathSummary& ps = paths_[rule][path];
  return ps.labels.Reachable(ps.comp_of[from_idx * ps.num_states + from_state],
                             ps.comp_of[to_idx * ps.num_states + to_state]);
}

size_t BoundarySummary::MemoryBytes() const {
  size_t bytes = boundary_.capacity() * sizeof(NodeId);
  for (const auto& rule : paths_) {
    for (const PathSummary& ps : rule) {
      bytes += ps.comp_of.capacity() * sizeof(uint32_t) + ps.labels.MemoryBytes();
    }
  }
  return bytes;
}

}  // namespace sargus
