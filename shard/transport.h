#ifndef SARGUS_SHARD_TRANSPORT_H_
#define SARGUS_SHARD_TRANSPORT_H_

/// \file transport.h
/// \brief The router <-> shard call seam, and everything that can go
/// wrong across it.
///
/// ShardTransport is the one interface the ShardRouter uses to reach a
/// ShardEngine's data plane (Check / CheckBatch / ExpandFrontier /
/// Mutate). Two implementations ship:
///
///   * InProcessTransport — direct virtual calls into the engines,
///     typed structs passed through untouched. This is the production
///     in-process path; it adds one indirect call per request and
///     nothing else, so the fault-free sharded tier stays within a few
///     percent of calling the engines directly.
///   * FaultInjectionTransport — a decorator that wraps any transport
///     and injects faults per shard: dropped calls (kUnavailable),
///     injected delays against a virtual clock (driving deadlines to
///     kDeadlineExceeded), in-band error frames, and corrupted reply
///     frames (the reply is really encoded, seeded bytes are flipped,
///     and the decode is attempted — the wire checksum turns almost
///     every corruption into a clean error; the rare frame that still
///     decodes is byte-identical, so it is safe to accept).
///     Deterministic: same seed + same call sequence = same faults.
///
/// The transport error contract: a transport call returns non-OK ONLY
/// with kUnavailable (the shard could not be reached / gave garbage) or
/// kDeadlineExceeded (the per-call deadline passed). Every other
/// failure — evaluation errors, unknown resources, bad arguments — is a
/// shard-side result and travels in-band in the typed reply's
/// status_code. The router's retry / circuit-breaker policy keys off
/// exactly this split: transport errors are retryable infrastructure
/// faults; in-band errors are answers.
///
/// Mutations are fail-stop-before-apply: when FaultInjectionTransport
/// decides to fault a Mutate call, it faults BEFORE delivering it, so a
/// failed Mutate was never applied on the shard. This models a
/// connection that died before the request hit the wire. The
/// retransmit-after-apply duplicate problem is real for sockets and is
/// explicitly out of scope until a real socket transport exists
/// (exactly-once needs request ids and reply caching — a protocol
/// change, not a policy change).
///
/// The transport also owns time: NowMs() / SleepMs() route through the
/// same interface so the fault decorator can run a virtual clock —
/// chaos tests inject multi-second delay storms and breaker-open
/// windows without ever really sleeping.
///
/// ShardHealthTracker is the router's per-shard circuit breaker
/// (consecutive-failure threshold -> open window -> single half-open
/// probe). It lives here rather than in the router so transport-level
/// tests can drive the state machine directly. All state is atomic;
/// concurrent readers never block.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <utility>
#include <vector>

#include "common/result.h"
#include "shard/wire.h"

namespace sargus {

class ShardEngine;

/// Per-call knobs. `deadline_ms` is an ABSOLUTE transport-clock time
/// (NowMs() scale); 0 means no deadline. The transport checks it before
/// dispatch and after any injected delay.
struct TransportCallOptions {
  uint64_t deadline_ms = 0;
};

/// Handle to one in-flight asynchronous transport call. Wait() is
/// single-shot and yields exactly what the matching synchronous call
/// would have returned (including kDeadlineExceeded when the call's
/// deadline passes while waiting). Tickets from a serial transport are
/// born ready — the call already ran inline at Submit — so router
/// scatter-gather code is transport-agnostic: it always submits
/// everything, then waits in a fixed order.
template <typename Reply>
class TransportTicket {
 public:
  /// An invalid ticket; Wait() on it is a programming error.
  TransportTicket() = default;

  /// A ticket whose result is already known (serial transports, faults
  /// decided at submit time).
  static TransportTicket Ready(Result<Reply> result) {
    auto held = std::make_shared<Result<Reply>>(std::move(result));
    TransportTicket t;
    t.wait_ = [held]() { return std::move(*held); };
    return t;
  }

  /// A ticket that blocks in `wait` (e.g. on a future) when collected.
  static TransportTicket Deferred(std::function<Result<Reply>()> wait) {
    TransportTicket t;
    t.wait_ = std::move(wait);
    return t;
  }

  /// Chains a post-processing step onto the gathered result (the fault
  /// decorator corrupts replies here, after the inner transport
  /// delivers them).
  TransportTicket Then(
      std::function<Result<Reply>(Result<Reply>)> post) && {
    return Deferred(
        [prev = std::move(wait_), post = std::move(post)]() {
          return post(prev());
        });
  }

  bool valid() const { return static_cast<bool>(wait_); }

  /// Blocks until the reply (or transport error) is available.
  /// Single-shot: the ticket is invalid afterwards.
  Result<Reply> Wait() {
    auto f = std::move(wait_);
    wait_ = nullptr;
    return f();
  }

 private:
  std::function<Result<Reply>()> wait_;
};

/// The router's only road to a shard's data plane.
class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  virtual uint32_t num_shards() const = 0;

  /// Data-plane calls. Non-OK only for kUnavailable / kDeadlineExceeded
  /// (see file comment); shard-side errors ride in reply.status_code.
  virtual Result<wire::CheckReply> Check(uint32_t shard,
                                         const wire::CheckRequest& request,
                                         const TransportCallOptions& opts) = 0;
  virtual Result<wire::BatchCheckReply> CheckBatch(
      uint32_t shard, const wire::BatchCheckRequest& request,
      const TransportCallOptions& opts) = 0;
  virtual Result<wire::WalkReply> ExpandFrontier(
      uint32_t shard, const wire::WalkRequest& request,
      const TransportCallOptions& opts) = 0;
  virtual Result<wire::MutateReply> Mutate(uint32_t shard,
                                           const wire::MutateRequest& request,
                                           const TransportCallOptions& opts) = 0;

  /// Async submission surface, for router scatter-gather. Submit*
  /// returns a ticket whose Wait() yields exactly what the matching
  /// synchronous call would have returned. The transport copies the
  /// request if it needs it past return, so the caller's buffer only
  /// has to outlive the Submit call itself. The base implementation
  /// runs the call inline and returns a ready ticket — serial
  /// transports get the async surface for free; ThreadedTransport
  /// (shard/executor_transport.h) overrides these to enqueue onto its
  /// per-shard workers. There is deliberately no SubmitMutate: the
  /// fail-stop-before-apply mutation contract is only easy to reason
  /// about when a mutation is never in flight past its caller.
  virtual TransportTicket<wire::CheckReply> SubmitCheck(
      uint32_t shard, const wire::CheckRequest& request,
      const TransportCallOptions& opts) {
    return TransportTicket<wire::CheckReply>::Ready(
        Check(shard, request, opts));
  }
  virtual TransportTicket<wire::BatchCheckReply> SubmitBatch(
      uint32_t shard, const wire::BatchCheckRequest& request,
      const TransportCallOptions& opts) {
    return TransportTicket<wire::BatchCheckReply>::Ready(
        CheckBatch(shard, request, opts));
  }
  virtual TransportTicket<wire::WalkReply> SubmitWalk(
      uint32_t shard, const wire::WalkRequest& request,
      const TransportCallOptions& opts) {
    return TransportTicket<wire::WalkReply>::Ready(
        ExpandFrontier(shard, request, opts));
  }

  /// Transport clock, milliseconds. Monotonic; origin unspecified.
  virtual uint64_t NowMs() = 0;
  /// Backoff sleep. Real time on the in-process transport; virtual-
  /// clock advance on the fault decorator (tests never really wait).
  virtual void SleepMs(uint32_t ms) = 0;
};

/// Direct calls into in-process ShardEngines. Thread-safe for reads the
/// same way the engines are; Mutate inherits the single-writer
/// contract.
class InProcessTransport final : public ShardTransport {
 public:
  /// `engines` must outlive the transport.
  explicit InProcessTransport(std::vector<ShardEngine*> engines);

  uint32_t num_shards() const override {
    return static_cast<uint32_t>(engines_.size());
  }

  Result<wire::CheckReply> Check(uint32_t shard,
                                 const wire::CheckRequest& request,
                                 const TransportCallOptions& opts) override;
  Result<wire::BatchCheckReply> CheckBatch(
      uint32_t shard, const wire::BatchCheckRequest& request,
      const TransportCallOptions& opts) override;
  Result<wire::WalkReply> ExpandFrontier(
      uint32_t shard, const wire::WalkRequest& request,
      const TransportCallOptions& opts) override;
  Result<wire::MutateReply> Mutate(uint32_t shard,
                                   const wire::MutateRequest& request,
                                   const TransportCallOptions& opts) override;

  uint64_t NowMs() override;
  void SleepMs(uint32_t ms) override;

 private:
  /// Deadline gate shared by every call: kDeadlineExceeded once the
  /// clock has passed opts.deadline_ms.
  Status CheckDeadline(const TransportCallOptions& opts);

  std::vector<ShardEngine*> engines_;
};

// ---- Fault injection --------------------------------------------------------

enum class FaultKind : uint8_t {
  kNone = 0,
  /// The call never reaches the shard: kUnavailable.
  kDrop = 1,
  /// The shard answers with a wire ErrorFrame instead of a typed reply.
  kErrorReply = 2,
  /// The typed reply is encoded, mutated, and re-decoded; the checksum
  /// almost always turns this into kUnavailable ("corrupt reply frame").
  kCorrupt = 3,
  /// The virtual clock advances by a seeded amount in
  /// [delay_min_ms, delay_max_ms] before delivery; a passed deadline
  /// becomes kDeadlineExceeded.
  kDelay = 4,
};

/// Independent per-call fault probabilities for one shard. Sampled in
/// the order delay, drop, error, corrupt; at most one fires per call.
struct ShardFaultProfile {
  double delay_probability = 0.0;
  double drop_probability = 0.0;
  double error_probability = 0.0;
  double corrupt_probability = 0.0;
  uint32_t delay_min_ms = 1;
  uint32_t delay_max_ms = 10;
};

/// One scripted fault: calls [first_call, last_call] (0-based per-shard
/// call indices, inclusive) against `shard` suffer `kind`. Scripted
/// entries take precedence over the probabilistic profile, so tests can
/// stage exact storms ("shard 2's calls 5..9 all time out").
struct FaultScheduleEntry {
  uint32_t shard = 0;
  uint64_t first_call = 0;
  uint64_t last_call = 0;
  FaultKind kind = FaultKind::kDrop;
};

/// What the decorator actually did, per shard (diagnostics + test
/// assertions).
struct FaultCounters {
  uint64_t calls = 0;
  uint64_t drops = 0;
  uint64_t error_replies = 0;
  uint64_t corrupts = 0;
  uint64_t corrupt_survived = 0;  // mutated frame still decoded (accepted)
  uint64_t delays = 0;
  uint64_t deadline_hits = 0;
};

/// Deterministic fault-injecting decorator. Wraps any transport; every
/// knob is per shard. Thread-safe: probabilistic sampling runs under a
/// per-shard mutex (chaos tests hammer it from many reader threads),
/// blackout flags and the virtual clock are atomics.
class FaultInjectionTransport final : public ShardTransport {
 public:
  FaultInjectionTransport(std::unique_ptr<ShardTransport> inner,
                          uint64_t seed);

  /// Installs the probabilistic profile for one shard.
  void SetProfile(uint32_t shard, const ShardFaultProfile& profile);
  /// Appends a scripted fault window.
  void AddSchedule(const FaultScheduleEntry& entry);
  /// Hard on/off switch: while black, every call to `shard` drops
  /// (mutations fault before delivery — nothing is applied).
  void Blackout(uint32_t shard, bool black);
  bool blacked_out(uint32_t shard) const;

  FaultCounters counters(uint32_t shard) const;

  ShardTransport& inner() { return *inner_; }

  uint32_t num_shards() const override { return inner_->num_shards(); }

  Result<wire::CheckReply> Check(uint32_t shard,
                                 const wire::CheckRequest& request,
                                 const TransportCallOptions& opts) override;
  Result<wire::BatchCheckReply> CheckBatch(
      uint32_t shard, const wire::BatchCheckRequest& request,
      const TransportCallOptions& opts) override;
  Result<wire::WalkReply> ExpandFrontier(
      uint32_t shard, const wire::WalkRequest& request,
      const TransportCallOptions& opts) override;
  Result<wire::MutateReply> Mutate(uint32_t shard,
                                   const wire::MutateRequest& request,
                                   const TransportCallOptions& opts) override;

  /// Async surface: the fault (and its per-shard call index / rng
  /// draw) is decided at SUBMIT time on the submitting thread, so a
  /// single-threaded caller sees the same deterministic fault sequence
  /// whether the inner transport is serial or threaded. Corrupt faults
  /// chain onto the inner ticket and mangle the reply at gather time.
  TransportTicket<wire::CheckReply> SubmitCheck(
      uint32_t shard, const wire::CheckRequest& request,
      const TransportCallOptions& opts) override;
  TransportTicket<wire::BatchCheckReply> SubmitBatch(
      uint32_t shard, const wire::BatchCheckRequest& request,
      const TransportCallOptions& opts) override;
  TransportTicket<wire::WalkReply> SubmitWalk(
      uint32_t shard, const wire::WalkRequest& request,
      const TransportCallOptions& opts) override;

  /// Virtual clock: starts at a fixed epoch, advances only through
  /// SleepMs and injected delays. Chaos runs are time-deterministic.
  uint64_t NowMs() override {
    return clock_ms_.load(std::memory_order_relaxed);
  }
  void SleepMs(uint32_t ms) override {
    clock_ms_.fetch_add(ms, std::memory_order_relaxed);
  }

 private:
  struct ShardState {
    std::mutex mu;
    ShardFaultProfile profile;
    std::mt19937_64 rng;
    uint64_t call_index = 0;
    FaultCounters counters;
    std::atomic<bool> blackout{false};
  };

  /// Decides this call's fate (advancing the per-shard call index and
  /// rng) and applies any delay to the clock. Returns the fault to
  /// apply; a non-OK deadline turns into kDeadlineExceeded upstream.
  FaultKind DrawFault(uint32_t shard);

  /// Per-fault-kind outcomes shared by the four call shapes.
  Status DropStatus(uint32_t shard);
  Status ErrorReplyStatus(uint32_t shard);
  Status DeadlineStatus(uint32_t shard, const TransportCallOptions& opts);

  /// Encode -> flip seeded bytes -> decode. Returns the surviving reply
  /// (byte-identical or it would not have decoded) or kUnavailable.
  template <typename Reply, typename DecodeFn>
  Result<Reply> CorruptReply(uint32_t shard, const Reply& reply,
                             DecodeFn decode);

  /// Seeded byte mutation used by CorruptReply (under the shard mutex).
  void MutateBytes(ShardState& st, std::vector<uint8_t>& bytes);

  std::unique_ptr<ShardTransport> inner_;
  std::vector<std::unique_ptr<ShardState>> states_;
  std::vector<FaultScheduleEntry> schedule_;  // immutable after setup
  std::atomic<uint64_t> clock_ms_;
};

// ---- Circuit breaker --------------------------------------------------------

enum class BreakerState : uint8_t {
  /// Healthy: calls flow.
  kClosed = 0,
  /// Tripped: calls fail fast until the open window elapses.
  kOpen = 1,
  /// Window elapsed: exactly one probe call is allowed through; its
  /// outcome closes (success) or re-opens (failure) the breaker.
  kHalfOpen = 2,
};

/// Per-shard consecutive-failure circuit breaker. Lock-free; every
/// method is safe from any thread. The router consults AllowCall before
/// each transport attempt and reports outcomes back.
class ShardHealthTracker {
 public:
  ShardHealthTracker(uint32_t num_shards, uint32_t failure_threshold,
                     uint32_t open_ms);

  /// May a call to `shard` proceed at `now_ms`? In half-open, only the
  /// single probe winner gets true; everyone else fails fast.
  bool AllowCall(uint32_t shard, uint64_t now_ms);

  void RecordSuccess(uint32_t shard);
  void RecordFailure(uint32_t shard, uint64_t now_ms);

  BreakerState state(uint32_t shard) const;
  uint32_t consecutive_failures(uint32_t shard) const;
  /// Total closed->open (and half-open->open) transitions, all shards.
  uint64_t opens() const { return opens_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    std::atomic<uint8_t> state{0};
    std::atomic<uint32_t> consecutive_failures{0};
    std::atomic<uint64_t> open_until_ms{0};
    std::atomic<bool> probe_in_flight{false};
  };

  uint32_t failure_threshold_;
  uint32_t open_ms_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::atomic<uint64_t> opens_{0};
};

}  // namespace sargus

#endif  // SARGUS_SHARD_TRANSPORT_H_
