#include "shard/wire.h"

#include <cstring>

#include "common/checksum.h"

namespace sargus::wire {
namespace {

/// Little-endian byte emitter.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) {
    buf_.push_back(static_cast<uint8_t>(v));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
  }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian reader; sticky failure flag.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return bytes_[pos_++];
  }
  uint16_t U16() {
    if (!Need(2)) return 0;
    uint16_t v = static_cast<uint16_t>(bytes_[pos_] |
                                       (uint16_t{bytes_[pos_ + 1]} << 8));
    pos_ += 2;
    return v;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t{bytes_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t{bytes_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return v;
  }
  std::string Str() {
    const uint32_t len = U32();
    if (!Need(len)) return {};
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  /// Element count for a repeated field; capped by the bytes actually
  /// remaining so a corrupt length cannot trigger a huge allocation.
  uint32_t Count(size_t min_elem_bytes) {
    const uint32_t n = U32();
    if (min_elem_bytes > 0 && n > Remaining() / min_elem_bytes) {
      failed_ = true;
      return 0;
    }
    return n;
  }

  size_t Remaining() const { return bytes_.size() - pos_; }
  bool failed() const { return failed_; }
  bool ExactlyConsumed() const { return !failed_ && pos_ == bytes_.size(); }

 private:
  bool Need(size_t n) {
    if (failed_ || bytes_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
  bool failed_ = false;
};

constexpr size_t kHeaderBytes = 9;    // magic + version + type
constexpr size_t kChecksumBytes = 8;  // trailing FNV-1a 64

void PutHeader(ByteWriter& w, MsgType type) {
  w.U32(kMagic);
  w.U32(kProtocolVersion);
  w.U8(static_cast<uint8_t>(type));
}

/// Appends the frame checksum and releases the buffer. Every Encode
/// ends with this; every decoder starts with CheckFrame below.
std::vector<uint8_t> Seal(ByteWriter& w) {
  std::vector<uint8_t> frame = w.Take();
  const uint64_t sum = Fnv1a64(frame);
  for (int i = 0; i < 8; ++i) {
    frame.push_back(static_cast<uint8_t>(sum >> (8 * i)));
  }
  return frame;
}

uint32_t ReadU32At(std::span<const uint8_t> bytes, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t{bytes[pos + i]} << (8 * i);
  return v;
}

uint64_t ReadU64At(std::span<const uint8_t> bytes, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t{bytes[pos + i]} << (8 * i);
  return v;
}

/// Validates magic, version and the trailing checksum, returning the
/// frame body (header + payload, checksum stripped). Any mutation of a
/// sealed frame — bit flip, truncation, extension — fails here with a
/// clean kInvalidArgument.
Result<std::span<const uint8_t>> CheckFrame(std::span<const uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes + kChecksumBytes) {
    return Status::InvalidArgument("wire: frame shorter than header");
  }
  if (ReadU32At(bytes, 0) != kMagic) {
    return Status::InvalidArgument("wire: bad magic (not a sargus frame)");
  }
  const uint32_t version = ReadU32At(bytes, 4);
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("wire: unknown protocol version " +
                                   std::to_string(version) + " (speak " +
                                   std::to_string(kProtocolVersion) + ")");
  }
  const std::span<const uint8_t> body =
      bytes.first(bytes.size() - kChecksumBytes);
  if (Fnv1a64(body) != ReadU64At(bytes, bytes.size() - kChecksumBytes)) {
    return Status::InvalidArgument("wire: frame checksum mismatch");
  }
  return body;
}

Status TakeHeader(ByteReader& r, MsgType expected) {
  const uint32_t magic = r.U32();
  const uint32_t version = r.U32();
  const uint8_t type = r.U8();
  if (r.failed() || magic != kMagic) {
    return Status::InvalidArgument("wire: bad magic (not a sargus frame)");
  }
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("wire: unknown protocol version " +
                                   std::to_string(version) + " (speak " +
                                   std::to_string(kProtocolVersion) + ")");
  }
  if (type != static_cast<uint8_t>(expected)) {
    return Status::InvalidArgument("wire: message type " +
                                   std::to_string(type) + ", expected " +
                                   std::to_string(static_cast<int>(expected)));
  }
  return OkStatus();
}

Status CheckTail(const ByteReader& r) {
  if (!r.ExactlyConsumed()) {
    return Status::InvalidArgument("wire: truncated or trailing bytes");
  }
  return OkStatus();
}

void PutStamp(ByteWriter& w, const Stamp& s) {
  w.U64(s.snapshot_generation);
  w.U64(s.overlay_version);
}

Stamp TakeStamp(ByteReader& r) {
  Stamp s;
  s.snapshot_generation = r.U64();
  s.overlay_version = r.U64();
  return s;
}

void PutFrontier(ByteWriter& w, const std::vector<FrontierEntry>& f) {
  w.U32(static_cast<uint32_t>(f.size()));
  for (const FrontierEntry& e : f) {
    w.U32(e.node);
    w.U32(e.state);
    w.U32(e.residual_hops);
  }
}

std::vector<FrontierEntry> TakeFrontier(ByteReader& r) {
  const uint32_t n = r.Count(12);
  std::vector<FrontierEntry> f;
  f.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    FrontierEntry e;
    e.node = r.U32();
    e.state = r.U32();
    e.residual_hops = r.U32();
    f.push_back(e);
  }
  return f;
}

void PutCheckRequestBody(ByteWriter& w, const CheckRequest& m) {
  w.U32(m.requester);
  w.U32(m.resource);
  w.U8(m.want_witness);
  w.U8(m.has_evaluator_override);
  w.U8(m.evaluator_override);
}

CheckRequest TakeCheckRequestBody(ByteReader& r) {
  CheckRequest m;
  m.requester = r.U32();
  m.resource = r.U32();
  m.want_witness = r.U8();
  m.has_evaluator_override = r.U8();
  m.evaluator_override = r.U8();
  return m;
}

void PutCheckReplyBody(ByteWriter& w, const CheckReply& m) {
  w.U8(m.status_code);
  w.Str(m.error);
  w.U8(m.granted);
  w.U8(m.owner_access);
  w.U8(m.has_matched_rule);
  w.U32(m.matched_rule);
  w.U64(m.pairs_visited);
  PutStamp(w, m.stamp);
  w.U32(static_cast<uint32_t>(m.witness.size()));
  for (NodeId n : m.witness) w.U32(n);
}

CheckReply TakeCheckReplyBody(ByteReader& r) {
  CheckReply m;
  m.status_code = r.U8();
  m.error = r.Str();
  m.granted = r.U8();
  m.owner_access = r.U8();
  m.has_matched_rule = r.U8();
  m.matched_rule = r.U32();
  m.pairs_visited = r.U64();
  m.stamp = TakeStamp(r);
  const uint32_t n = r.Count(4);
  m.witness.reserve(n);
  for (uint32_t i = 0; i < n; ++i) m.witness.push_back(r.U32());
  return m;
}

}  // namespace

std::vector<uint32_t> ResidualHopBudgets(const HopAutomaton& nfa) {
  const std::vector<BoundStep>& steps = nfa.bound_steps();
  std::vector<uint64_t> suffix(steps.size() + 1, 0);
  for (size_t i = steps.size(); i-- > 0;) {
    suffix[i] = suffix[i + 1] + steps[i].max_hops;
  }
  std::vector<uint32_t> residual(nfa.NumStates());
  for (uint32_t s = 0; s < nfa.NumStates(); ++s) {
    residual[s] =
        static_cast<uint32_t>(suffix[nfa.StepOf(s)] - nfa.HopsOf(s));
  }
  return residual;
}

uint8_t PackStatus(const Status& status) {
  return static_cast<uint8_t>(status.code());
}

Status UnpackStatus(uint8_t code, std::string error) {
  if (code == 0) return OkStatus();
  if (code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::Internal("wire: unknown status code " +
                            std::to_string(code) + ": " + error);
  }
  return Status(static_cast<StatusCode>(code), std::move(error));
}

std::vector<uint8_t> Encode(const CheckRequest& m) {
  ByteWriter w;
  PutHeader(w, MsgType::kCheckRequest);
  PutCheckRequestBody(w, m);
  return Seal(w);
}

Result<CheckRequest> DecodeCheckRequest(std::span<const uint8_t> bytes) {
  SARGUS_ASSIGN_OR_RETURN(const std::span<const uint8_t> body,
                          CheckFrame(bytes));
  ByteReader r(body);
  SARGUS_RETURN_IF_ERROR(TakeHeader(r, MsgType::kCheckRequest));
  CheckRequest m = TakeCheckRequestBody(r);
  SARGUS_RETURN_IF_ERROR(CheckTail(r));
  return m;
}

std::vector<uint8_t> Encode(const CheckReply& m) {
  ByteWriter w;
  PutHeader(w, MsgType::kCheckReply);
  PutCheckReplyBody(w, m);
  return Seal(w);
}

Result<CheckReply> DecodeCheckReply(std::span<const uint8_t> bytes) {
  SARGUS_ASSIGN_OR_RETURN(const std::span<const uint8_t> body,
                          CheckFrame(bytes));
  ByteReader r(body);
  SARGUS_RETURN_IF_ERROR(TakeHeader(r, MsgType::kCheckReply));
  CheckReply m = TakeCheckReplyBody(r);
  SARGUS_RETURN_IF_ERROR(CheckTail(r));
  return m;
}

std::vector<uint8_t> Encode(const BatchCheckRequest& m) {
  ByteWriter w;
  PutHeader(w, MsgType::kBatchCheckRequest);
  w.U32(static_cast<uint32_t>(m.requests.size()));
  for (const CheckRequest& c : m.requests) PutCheckRequestBody(w, c);
  return Seal(w);
}

Result<BatchCheckRequest> DecodeBatchCheckRequest(
    std::span<const uint8_t> bytes) {
  SARGUS_ASSIGN_OR_RETURN(const std::span<const uint8_t> body,
                          CheckFrame(bytes));
  ByteReader r(body);
  SARGUS_RETURN_IF_ERROR(TakeHeader(r, MsgType::kBatchCheckRequest));
  BatchCheckRequest m;
  const uint32_t n = r.Count(11);
  m.requests.reserve(n);
  for (uint32_t i = 0; i < n; ++i) m.requests.push_back(TakeCheckRequestBody(r));
  SARGUS_RETURN_IF_ERROR(CheckTail(r));
  return m;
}

std::vector<uint8_t> Encode(const BatchCheckReply& m) {
  ByteWriter w;
  PutHeader(w, MsgType::kBatchCheckReply);
  w.U32(static_cast<uint32_t>(m.replies.size()));
  for (const CheckReply& c : m.replies) PutCheckReplyBody(w, c);
  return Seal(w);
}

Result<BatchCheckReply> DecodeBatchCheckReply(std::span<const uint8_t> bytes) {
  SARGUS_ASSIGN_OR_RETURN(const std::span<const uint8_t> body,
                          CheckFrame(bytes));
  ByteReader r(body);
  SARGUS_RETURN_IF_ERROR(TakeHeader(r, MsgType::kBatchCheckReply));
  BatchCheckReply m;
  const uint32_t n = r.Count(1);
  m.replies.reserve(n);
  for (uint32_t i = 0; i < n; ++i) m.replies.push_back(TakeCheckReplyBody(r));
  SARGUS_RETURN_IF_ERROR(CheckTail(r));
  return m;
}

std::vector<uint8_t> Encode(const WalkRequest& m) {
  ByteWriter w;
  PutHeader(w, MsgType::kWalkRequest);
  w.U32(m.rule);
  w.U32(m.path);
  w.U32(m.requester);
  w.U8(static_cast<uint8_t>(m.seed));
  w.U32(m.owner);
  PutFrontier(w, m.frontier);
  return Seal(w);
}

Result<WalkRequest> DecodeWalkRequest(std::span<const uint8_t> bytes) {
  SARGUS_ASSIGN_OR_RETURN(const std::span<const uint8_t> body,
                          CheckFrame(bytes));
  ByteReader r(body);
  SARGUS_RETURN_IF_ERROR(TakeHeader(r, MsgType::kWalkRequest));
  WalkRequest m;
  m.rule = r.U32();
  m.path = r.U32();
  m.requester = r.U32();
  const uint8_t seed = r.U8();
  if (seed > static_cast<uint8_t>(WalkSeed::kFrontier)) {
    return Status::InvalidArgument("wire: unknown walk seed mode " +
                                   std::to_string(seed));
  }
  m.seed = static_cast<WalkSeed>(seed);
  m.owner = r.U32();
  m.frontier = TakeFrontier(r);
  SARGUS_RETURN_IF_ERROR(CheckTail(r));
  return m;
}

std::vector<uint8_t> Encode(const WalkReply& m) {
  ByteWriter w;
  PutHeader(w, MsgType::kWalkReply);
  w.U8(m.status_code);
  w.Str(m.error);
  w.U8(m.accepted);
  PutFrontier(w, m.exports);
  w.U64(m.pairs_visited);
  PutStamp(w, m.stamp);
  return Seal(w);
}

Result<WalkReply> DecodeWalkReply(std::span<const uint8_t> bytes) {
  SARGUS_ASSIGN_OR_RETURN(const std::span<const uint8_t> body,
                          CheckFrame(bytes));
  ByteReader r(body);
  SARGUS_RETURN_IF_ERROR(TakeHeader(r, MsgType::kWalkReply));
  WalkReply m;
  m.status_code = r.U8();
  m.error = r.Str();
  m.accepted = r.U8();
  m.exports = TakeFrontier(r);
  m.pairs_visited = r.U64();
  m.stamp = TakeStamp(r);
  SARGUS_RETURN_IF_ERROR(CheckTail(r));
  return m;
}

std::vector<uint8_t> Encode(const MutateRequest& m) {
  ByteWriter w;
  PutHeader(w, MsgType::kMutateRequest);
  w.U8(static_cast<uint8_t>(m.op));
  w.U32(m.src);
  w.U32(m.dst);
  w.U16(m.label);
  w.Str(m.label_name);
  return Seal(w);
}

Result<MutateRequest> DecodeMutateRequest(std::span<const uint8_t> bytes) {
  SARGUS_ASSIGN_OR_RETURN(const std::span<const uint8_t> body,
                          CheckFrame(bytes));
  ByteReader r(body);
  SARGUS_RETURN_IF_ERROR(TakeHeader(r, MsgType::kMutateRequest));
  MutateRequest m;
  const uint8_t op = r.U8();
  if (op > static_cast<uint8_t>(MutateOp::kAddNode)) {
    return Status::InvalidArgument("wire: unknown mutate op " +
                                   std::to_string(op));
  }
  m.op = static_cast<MutateOp>(op);
  m.src = r.U32();
  m.dst = r.U32();
  m.label = r.U16();
  m.label_name = r.Str();
  SARGUS_RETURN_IF_ERROR(CheckTail(r));
  return m;
}

std::vector<uint8_t> Encode(const MutateReply& m) {
  ByteWriter w;
  PutHeader(w, MsgType::kMutateReply);
  w.U8(m.status_code);
  w.Str(m.error);
  w.U32(m.new_node);
  PutStamp(w, m.stamp);
  return Seal(w);
}

Result<MutateReply> DecodeMutateReply(std::span<const uint8_t> bytes) {
  SARGUS_ASSIGN_OR_RETURN(const std::span<const uint8_t> body,
                          CheckFrame(bytes));
  ByteReader r(body);
  SARGUS_RETURN_IF_ERROR(TakeHeader(r, MsgType::kMutateReply));
  MutateReply m;
  m.status_code = r.U8();
  m.error = r.Str();
  m.new_node = r.U32();
  m.stamp = TakeStamp(r);
  SARGUS_RETURN_IF_ERROR(CheckTail(r));
  return m;
}

std::vector<uint8_t> Encode(const ErrorFrame& m) {
  ByteWriter w;
  PutHeader(w, MsgType::kErrorFrame);
  w.U8(m.status_code);
  w.Str(m.message);
  return Seal(w);
}

Result<ErrorFrame> DecodeErrorFrame(std::span<const uint8_t> bytes) {
  SARGUS_ASSIGN_OR_RETURN(const std::span<const uint8_t> body,
                          CheckFrame(bytes));
  ByteReader r(body);
  SARGUS_RETURN_IF_ERROR(TakeHeader(r, MsgType::kErrorFrame));
  ErrorFrame m;
  m.status_code = r.U8();
  m.message = r.Str();
  SARGUS_RETURN_IF_ERROR(CheckTail(r));
  if (m.status_code == 0) {
    return Status::InvalidArgument("wire: error frame with OK status");
  }
  return m;
}

Status StatusFromErrorFrame(const ErrorFrame& frame) {
  if (frame.status_code == 0) {
    // Never encoded; defend against a hand-built frame anyway.
    return Status::Internal("wire: error frame with OK status: " +
                            frame.message);
  }
  return UnpackStatus(frame.status_code, frame.message);
}

Result<MsgType> PeekType(std::span<const uint8_t> bytes) {
  SARGUS_ASSIGN_OR_RETURN(const std::span<const uint8_t> body,
                          CheckFrame(bytes));
  const uint8_t type = body[kHeaderBytes - 1];
  if (type < static_cast<uint8_t>(MsgType::kCheckRequest) ||
      type > static_cast<uint8_t>(MsgType::kErrorFrame)) {
    return Status::InvalidArgument("wire: unknown message type " +
                                   std::to_string(type));
  }
  return static_cast<MsgType>(type);
}

Result<Message> ParseMessage(std::span<const uint8_t> bytes) {
  SARGUS_ASSIGN_OR_RETURN(const MsgType type, PeekType(bytes));
  switch (type) {
    case MsgType::kCheckRequest: {
      SARGUS_ASSIGN_OR_RETURN(auto m, DecodeCheckRequest(bytes));
      return Message(std::move(m));
    }
    case MsgType::kCheckReply: {
      SARGUS_ASSIGN_OR_RETURN(auto m, DecodeCheckReply(bytes));
      return Message(std::move(m));
    }
    case MsgType::kBatchCheckRequest: {
      SARGUS_ASSIGN_OR_RETURN(auto m, DecodeBatchCheckRequest(bytes));
      return Message(std::move(m));
    }
    case MsgType::kBatchCheckReply: {
      SARGUS_ASSIGN_OR_RETURN(auto m, DecodeBatchCheckReply(bytes));
      return Message(std::move(m));
    }
    case MsgType::kWalkRequest: {
      SARGUS_ASSIGN_OR_RETURN(auto m, DecodeWalkRequest(bytes));
      return Message(std::move(m));
    }
    case MsgType::kWalkReply: {
      SARGUS_ASSIGN_OR_RETURN(auto m, DecodeWalkReply(bytes));
      return Message(std::move(m));
    }
    case MsgType::kMutateRequest: {
      SARGUS_ASSIGN_OR_RETURN(auto m, DecodeMutateRequest(bytes));
      return Message(std::move(m));
    }
    case MsgType::kMutateReply: {
      SARGUS_ASSIGN_OR_RETURN(auto m, DecodeMutateReply(bytes));
      return Message(std::move(m));
    }
    case MsgType::kErrorFrame: {
      SARGUS_ASSIGN_OR_RETURN(auto m, DecodeErrorFrame(bytes));
      return Message(std::move(m));
    }
  }
  return Status::Internal("wire: unreachable message type");
}

}  // namespace sargus::wire
