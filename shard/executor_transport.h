#ifndef SARGUS_SHARD_EXECUTOR_TRANSPORT_H_
#define SARGUS_SHARD_EXECUTOR_TRANSPORT_H_

/// \file executor_transport.h
/// \brief ThreadedTransport: a thread-per-shard executor behind the
/// ShardTransport seam.
///
/// Each shard gets a dedicated worker (configurably several) draining a
/// bounded MPSC job queue. A call is a job: Submit* copies the request,
/// enqueues a closure, and returns a TransportTicket backed by a
/// future; the synchronous four-call interface is Submit + Wait. With
/// the async surface the router can scatter one sub-batch (or one
/// frontier walk) per shard and gather them in a fixed order — shard
/// count becomes a throughput multiplier instead of pure overhead.
///
/// Deadline / cancellation semantics (all times on the steady-clock
/// NowMs() scale InProcessTransport uses):
///
///   * Submit-side: while the queue is full, Submit blocks for
///     backpressure; if the call's deadline passes first, the job is
///     never enqueued and the ticket is born kDeadlineExceeded.
///   * Worker-side: a job whose deadline has already passed at dequeue
///     (or whose caller gave up — see next point) is dropped without
///     executing, completing as kDeadlineExceeded.
///   * Caller-side: Wait() on a read ticket waits at most until the
///     deadline, then sets the job's cancellation flag and returns
///     kDeadlineExceeded. The worker sees the flag at dequeue and skips
///     the work; a job already mid-execution runs to completion into an
///     abandoned future (reads are side-effect free, so this is safe).
///
/// Mutations are the exception: Mutate waits unconditionally and the
/// deadline is enforced ONLY worker-side, before the engine call. A
/// caller abandoning a mutation mid-apply could otherwise observe a
/// transport error for a mutation that DID apply, breaking the
/// fail-stop-before-apply contract every rollback path relies on. So a
/// Mutate error still means "never applied", and there deliberately is
/// no SubmitMutate.
///
/// Shutdown protocol: the destructor flips each worker's shutdown flag,
/// wakes everyone, and joins. Jobs still queued at shutdown complete as
/// kUnavailable ("transport shut down") without executing — no promise
/// is ever abandoned, so any straggling Wait() returns an explicit
/// error instead of throwing. New Submits after shutdown are refused
/// the same way. The router destroys its transport before its engines,
/// so workers never touch a dead engine.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "shard/transport.h"
#include "shard/wire.h"

namespace sargus {

class ShardEngine;

struct ThreadedTransportOptions {
  /// Jobs one shard's queue holds before Submit blocks (backpressure).
  size_t queue_capacity = 1024;
  /// Worker threads per shard. 1 (the default) keeps per-shard FIFO
  /// execution; more lets one shard overlap its own requests too.
  uint32_t workers_per_shard = 1;
  /// Test seam: runs on the worker thread immediately before the
  /// engine call (the slow-shard tests sleep here to simulate a
  /// struggling shard). Never set in production.
  std::function<void(uint32_t shard)> pre_dispatch_hook;
};

/// Thread-per-shard executor over in-process ShardEngines. Reads are
/// safe from any number of threads; Mutate inherits the engines'
/// single-writer contract (and the per-shard queue serializes it).
class ThreadedTransport final : public ShardTransport {
 public:
  /// `engines` must outlive the transport.
  explicit ThreadedTransport(std::vector<ShardEngine*> engines,
                             ThreadedTransportOptions options = {});
  ~ThreadedTransport() override;

  /// Per-shard queue observability (tests assert on these).
  struct QueueStats {
    /// Jobs accepted into the queue.
    uint64_t submitted = 0;
    /// Jobs that reached their engine call.
    uint64_t executed = 0;
    /// Jobs dropped at dequeue: deadline passed or caller gave up.
    uint64_t cancelled = 0;
    /// Jobs refused or drained un-executed due to shutdown.
    uint64_t rejected = 0;
  };
  QueueStats queue_stats(uint32_t shard) const;

  uint32_t num_shards() const override {
    return static_cast<uint32_t>(engines_.size());
  }

  Result<wire::CheckReply> Check(uint32_t shard,
                                 const wire::CheckRequest& request,
                                 const TransportCallOptions& opts) override;
  Result<wire::BatchCheckReply> CheckBatch(
      uint32_t shard, const wire::BatchCheckRequest& request,
      const TransportCallOptions& opts) override;
  Result<wire::WalkReply> ExpandFrontier(
      uint32_t shard, const wire::WalkRequest& request,
      const TransportCallOptions& opts) override;
  Result<wire::MutateReply> Mutate(uint32_t shard,
                                   const wire::MutateRequest& request,
                                   const TransportCallOptions& opts) override;

  TransportTicket<wire::CheckReply> SubmitCheck(
      uint32_t shard, const wire::CheckRequest& request,
      const TransportCallOptions& opts) override;
  TransportTicket<wire::BatchCheckReply> SubmitBatch(
      uint32_t shard, const wire::BatchCheckRequest& request,
      const TransportCallOptions& opts) override;
  TransportTicket<wire::WalkReply> SubmitWalk(
      uint32_t shard, const wire::WalkRequest& request,
      const TransportCallOptions& opts) override;

  uint64_t NowMs() override;
  void SleepMs(uint32_t ms) override;

 private:
  struct Job {
    /// Runs exactly once, on a worker (normal or shutdown drain). It
    /// owns the promise; `aborted` fulfills it with kUnavailable.
    std::function<void(bool aborted)> run;
  };
  struct Worker {
    std::mutex mu;
    std::condition_variable nonempty;
    std::condition_variable nonfull;
    std::deque<Job> queue;
    bool shutdown = false;
    std::vector<std::thread> threads;
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> executed{0};
    std::atomic<uint64_t> cancelled{0};
    std::atomic<uint64_t> rejected{0};
  };

  void WorkerLoop(uint32_t shard);
  /// Blocks while the queue is full (bounded by the deadline when one
  /// is set). False = not enqueued; `why` says kDeadlineExceeded or
  /// kUnavailable (shutdown).
  bool Enqueue(uint32_t shard, Job job, uint64_t deadline_ms, Status* why);

  /// Shared submit shape: package `call` (which already owns a copy of
  /// its request) as a job, enqueue it, hand back a future-backed
  /// ticket. `caller_deadline` gates the Wait-side deadline abandon —
  /// true for reads, false for mutations (see file comment).
  template <typename Reply, typename CallFn>
  TransportTicket<Reply> SubmitImpl(uint32_t shard,
                                    const TransportCallOptions& opts,
                                    bool caller_deadline, CallFn call);

  std::vector<ShardEngine*> engines_;
  ThreadedTransportOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace sargus

#endif  // SARGUS_SHARD_EXECUTOR_TRANSPORT_H_
