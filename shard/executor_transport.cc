#include "shard/executor_transport.h"

#include <chrono>
#include <future>
#include <string>
#include <utility>

#include "shard/shard_engine.h"

namespace sargus {
namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

uint64_t SteadyNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The steady-clock time_point for an absolute NowMs()-scale deadline.
/// +1ms because NowMs truncates: the worker-side check is
/// `NowMs() > deadline`, which first holds one full millisecond after
/// the deadline tick began.
std::chrono::steady_clock::time_point DeadlinePoint(uint64_t deadline_ms) {
  return std::chrono::steady_clock::time_point(
      std::chrono::milliseconds(deadline_ms + 1));
}

}  // namespace

ThreadedTransport::ThreadedTransport(std::vector<ShardEngine*> engines,
                                     ThreadedTransportOptions options)
    : engines_(std::move(engines)), options_(std::move(options)) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.workers_per_shard == 0) options_.workers_per_shard = 1;
  workers_.reserve(engines_.size());
  for (size_t s = 0; s < engines_.size(); ++s) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Spawn only after every Worker exists: WorkerLoop indexes workers_.
  for (uint32_t s = 0; s < engines_.size(); ++s) {
    for (uint32_t w = 0; w < options_.workers_per_shard; ++w) {
      workers_[s]->threads.emplace_back([this, s] { WorkerLoop(s); });
    }
  }
}

ThreadedTransport::~ThreadedTransport() {
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->shutdown = true;
    }
    w->nonempty.notify_all();
    w->nonfull.notify_all();
  }
  for (auto& w : workers_) {
    for (std::thread& t : w->threads) t.join();
  }
}

ThreadedTransport::QueueStats ThreadedTransport::queue_stats(
    uint32_t shard) const {
  const Worker& w = *workers_[shard];
  QueueStats s;
  s.submitted = w.submitted.load(kRelaxed);
  s.executed = w.executed.load(kRelaxed);
  s.cancelled = w.cancelled.load(kRelaxed);
  s.rejected = w.rejected.load(kRelaxed);
  return s;
}

void ThreadedTransport::WorkerLoop(uint32_t shard) {
  Worker& w = *workers_[shard];
  for (;;) {
    Job job;
    bool aborted = false;
    {
      std::unique_lock<std::mutex> lock(w.mu);
      w.nonempty.wait(lock, [&] { return w.shutdown || !w.queue.empty(); });
      if (w.queue.empty()) return;  // shutdown with nothing to drain
      aborted = w.shutdown;
      job = std::move(w.queue.front());
      w.queue.pop_front();
      w.nonfull.notify_one();
    }
    if (aborted) w.rejected.fetch_add(1, kRelaxed);
    job.run(aborted);
  }
}

bool ThreadedTransport::Enqueue(uint32_t shard, Job job, uint64_t deadline_ms,
                                Status* why) {
  Worker& w = *workers_[shard];
  std::unique_lock<std::mutex> lock(w.mu);
  while (!w.shutdown && w.queue.size() >= options_.queue_capacity) {
    if (deadline_ms != 0) {
      w.nonfull.wait_until(lock, DeadlinePoint(deadline_ms));
      if (!w.shutdown && w.queue.size() >= options_.queue_capacity &&
          SteadyNowMs() > deadline_ms) {
        w.cancelled.fetch_add(1, kRelaxed);
        *why = Status::DeadlineExceeded(
            "transport: shard " + std::to_string(shard) +
            " send queue full past deadline");
        return false;
      }
    } else {
      w.nonfull.wait(lock);
    }
  }
  if (w.shutdown) {
    w.rejected.fetch_add(1, kRelaxed);
    *why = Status::Unavailable("transport shut down (shard " +
                               std::to_string(shard) + ")");
    return false;
  }
  w.queue.push_back(std::move(job));
  w.submitted.fetch_add(1, kRelaxed);
  w.nonempty.notify_one();
  return true;
}

template <typename Reply, typename CallFn>
TransportTicket<Reply> ThreadedTransport::SubmitImpl(
    uint32_t shard, const TransportCallOptions& opts, bool caller_deadline,
    CallFn call) {
  auto promise = std::make_shared<std::promise<Result<Reply>>>();
  auto future =
      std::make_shared<std::future<Result<Reply>>>(promise->get_future());
  auto cancelled = std::make_shared<std::atomic<bool>>(false);
  Worker* w = workers_[shard].get();
  Job job;
  job.run = [this, shard, w, promise, cancelled, deadline = opts.deadline_ms,
             call = std::move(call)](bool aborted) {
    if (aborted) {
      promise->set_value(Status::Unavailable(
          "transport shut down before dispatch (shard " +
          std::to_string(shard) + ")"));
      return;
    }
    if (cancelled->load(std::memory_order_acquire) ||
        (deadline != 0 && SteadyNowMs() > deadline)) {
      w->cancelled.fetch_add(1, kRelaxed);
      promise->set_value(Status::DeadlineExceeded(
          "transport: call deadline passed before dispatch (shard " +
          std::to_string(shard) + ")"));
      return;
    }
    w->executed.fetch_add(1, kRelaxed);
    if (options_.pre_dispatch_hook) options_.pre_dispatch_hook(shard);
    promise->set_value(call());
  };
  Status why = OkStatus();
  if (!Enqueue(shard, std::move(job), opts.deadline_ms, &why)) {
    return TransportTicket<Reply>::Ready(std::move(why));
  }
  const uint64_t wait_deadline = caller_deadline ? opts.deadline_ms : 0;
  return TransportTicket<Reply>::Deferred(
      [shard, future, cancelled, wait_deadline]() -> Result<Reply> {
        if (wait_deadline != 0 &&
            future->wait_until(DeadlinePoint(wait_deadline)) ==
                std::future_status::timeout) {
          // Tell the worker not to bother; a job already mid-execution
          // finishes into this (now abandoned) future.
          cancelled->store(true, std::memory_order_release);
          return Status::DeadlineExceeded(
              "transport: call deadline passed awaiting shard " +
              std::to_string(shard));
        }
        return future->get();
      });
}

Result<wire::CheckReply> ThreadedTransport::Check(
    uint32_t shard, const wire::CheckRequest& request,
    const TransportCallOptions& opts) {
  return SubmitCheck(shard, request, opts).Wait();
}

Result<wire::BatchCheckReply> ThreadedTransport::CheckBatch(
    uint32_t shard, const wire::BatchCheckRequest& request,
    const TransportCallOptions& opts) {
  return SubmitBatch(shard, request, opts).Wait();
}

Result<wire::WalkReply> ThreadedTransport::ExpandFrontier(
    uint32_t shard, const wire::WalkRequest& request,
    const TransportCallOptions& opts) {
  return SubmitWalk(shard, request, opts).Wait();
}

Result<wire::MutateReply> ThreadedTransport::Mutate(
    uint32_t shard, const wire::MutateRequest& request,
    const TransportCallOptions& opts) {
  // caller_deadline=false: the deadline is enforced only worker-side,
  // BEFORE the engine call, so an error reply always means the mutation
  // was never applied (fail-stop-before-apply; see file comment).
  return SubmitImpl<wire::MutateReply>(
             shard, opts, /*caller_deadline=*/false,
             [engine = engines_[shard],
              req = request]() -> Result<wire::MutateReply> {
               return engine->Mutate(req);
             })
      .Wait();
}

TransportTicket<wire::CheckReply> ThreadedTransport::SubmitCheck(
    uint32_t shard, const wire::CheckRequest& request,
    const TransportCallOptions& opts) {
  return SubmitImpl<wire::CheckReply>(
      shard, opts, /*caller_deadline=*/true,
      [engine = engines_[shard],
       req = request]() -> Result<wire::CheckReply> {
        return engine->Check(req);
      });
}

TransportTicket<wire::BatchCheckReply> ThreadedTransport::SubmitBatch(
    uint32_t shard, const wire::BatchCheckRequest& request,
    const TransportCallOptions& opts) {
  return SubmitImpl<wire::BatchCheckReply>(
      shard, opts, /*caller_deadline=*/true,
      [engine = engines_[shard],
       req = request]() -> Result<wire::BatchCheckReply> {
        return engine->CheckBatch(req);
      });
}

TransportTicket<wire::WalkReply> ThreadedTransport::SubmitWalk(
    uint32_t shard, const wire::WalkRequest& request,
    const TransportCallOptions& opts) {
  return SubmitImpl<wire::WalkReply>(
      shard, opts, /*caller_deadline=*/true,
      [engine = engines_[shard],
       req = request]() -> Result<wire::WalkReply> {
        return engine->ExpandFrontier(req);
      });
}

uint64_t ThreadedTransport::NowMs() { return SteadyNowMs(); }

void ThreadedTransport::SleepMs(uint32_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace sargus
