/// B9 -- Concurrent serving throughput on the immutable read-view API.
///
/// The engine publishes immutable AccessReadViews; CheckAccess on a view
/// is const and lock-free, so decision throughput should scale with
/// reader threads (the acceptance criterion for the view subsystem: 8
/// threads on one shared view ≥ 4x a single thread, given ≥ 8 cores).
/// Four series:
///
///  * BM_ViewCheckAccess/threads:N — N threads hammering one shared
///    view, each with its own scratch context (the intended serving
///    configuration; no lock anywhere on the path);
///  * BM_EngineCheckAccess/threads:N — the engine facade, which
///    re-acquires the view per call (per-thread acquire cache, no lock
///    in steady state) and feeds the mutex-guarded audit ring: what the
///    convenience surface costs under contention;
///  * BM_EngineCheckAccessNoAudit/threads:N — the facade with
///    audit_capacity = 0 (cached view acquire, no mutex anywhere);
///  * BM_BatchCheckAccess vs BM_LoopCheckAccess — one
///    CheckAccessBatch over a fixed request mix vs the same requests
///    looped one by one (per-decision latency, single thread).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_common.h"
#include "engine/access_engine.h"
#include "query/eval_context.h"

namespace sargus {
namespace bench {
namespace {

constexpr size_t kNodes = 4000;
constexpr size_t kNumResources = 40;
constexpr size_t kNumRequests = 256;

struct ConcurrencyFixture {
  std::unique_ptr<SocialGraph> g;
  PolicyStore store;
  std::unique_ptr<AccessControlEngine> engine;
  std::unique_ptr<AccessControlEngine> engine_no_audit;
  std::vector<AccessRequest> requests;
};

ConcurrencyFixture& GetFixture() {
  static ConcurrencyFixture* f = []() {
    auto* fx = new ConcurrencyFixture();
    fx->g = std::make_unique<SocialGraph>(
        MakeGraph(GraphKind::kBarabasiAlbert, kNodes, 3, 42));
    static const char* kPolicyMix[] = {
        "friend[1]",
        "friend[1,2]",
        "friend[1,2]/colleague[1]",
        "friend[1]{age>=18}",
    };
    Rng rng(99);
    std::vector<ResourceId> resources;
    for (size_t i = 0; i < kNumResources; ++i) {
      NodeId owner = static_cast<NodeId>(rng.NextBounded(kNodes));
      ResourceId res =
          fx->store.RegisterResource(owner, "res" + std::to_string(i));
      if (!fx->store.AddRuleFromPaths(res, {kPolicyMix[i % 4]}).ok()) {
        std::abort();
      }
      resources.push_back(res);
    }
    for (size_t i = 0; i < kNumRequests; ++i) {
      fx->requests.push_back(
          {.requester = static_cast<NodeId>(rng.NextBounded(kNodes)),
           .resource = resources[rng.NextBounded(resources.size())]});
    }
    fx->engine = std::make_unique<AccessControlEngine>(*fx->g, fx->store,
                                                       EngineOptions{});
    if (!fx->engine->RebuildIndexes().ok()) std::abort();
    EngineOptions no_audit;
    no_audit.audit_capacity = 0;
    fx->engine_no_audit = std::make_unique<AccessControlEngine>(
        *fx->g, fx->store, no_audit);
    if (!fx->engine_no_audit->RebuildIndexes().ok()) std::abort();
    return fx;
  }();
  return *f;
}

/// N threads, one shared immutable view, per-thread scratch. This is
/// the lock-free serving path the acceptance criterion measures.
void BM_ViewCheckAccess(benchmark::State& state) {
  ConcurrencyFixture& f = GetFixture();
  // All threads share one pinned view; the shared_ptr is acquired once
  // per thread, not per decision.
  std::shared_ptr<const AccessReadView> view = f.engine->AcquireReadView();
  EvalContext ctx;
  size_t i = state.thread_index() * 17;  // decorrelate thread request mixes
  for (auto _ : state) {
    const AccessRequest& req = f.requests[i % f.requests.size()];
    ++i;
    auto d = view->CheckAccess(req, ctx);
    if (!d.ok()) {
      state.SkipWithError(d.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(d->granted);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ViewCheckAccess)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void RunFacadeBench(benchmark::State& state, AccessControlEngine& engine) {
  ConcurrencyFixture& f = GetFixture();
  size_t i = state.thread_index() * 17;
  for (auto _ : state) {
    const AccessRequest& req = f.requests[i % f.requests.size()];
    ++i;
    auto d = engine.CheckAccess(req);
    if (!d.ok()) {
      state.SkipWithError(d.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(d->granted);
  }
  state.SetItemsProcessed(state.iterations());
}

/// The convenience facade: per-call atomic view acquisition + the
/// audit-ring mutex.
void BM_EngineCheckAccess(benchmark::State& state) {
  RunFacadeBench(state, *GetFixture().engine);
}
BENCHMARK(BM_EngineCheckAccess)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// The facade with auditing off: the only remaining shared write is the
/// view shared_ptr refcount.
void BM_EngineCheckAccessNoAudit(benchmark::State& state) {
  RunFacadeBench(state, *GetFixture().engine_no_audit);
}
BENCHMARK(BM_EngineCheckAccessNoAudit)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// One CheckAccessBatch over the fixed request mix: shared view
/// acquisition, one scratch context, requests grouped by resource.
void BM_BatchCheckAccess(benchmark::State& state) {
  ConcurrencyFixture& f = GetFixture();
  auto view = f.engine->AcquireReadView();
  EvalContext ctx;
  for (auto _ : state) {
    auto out = view->CheckAccessBatch(f.requests, ctx);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.requests.size());
}
BENCHMARK(BM_BatchCheckAccess);

/// The same requests, one CheckAccess at a time on the same view and
/// context — the baseline the batch API amortizes against.
void BM_LoopCheckAccess(benchmark::State& state) {
  ConcurrencyFixture& f = GetFixture();
  auto view = f.engine->AcquireReadView();
  EvalContext ctx;
  for (auto _ : state) {
    for (const AccessRequest& req : f.requests) {
      auto d = view->CheckAccess(req, ctx);
      benchmark::DoNotOptimize(d.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * f.requests.size());
}
BENCHMARK(BM_LoopCheckAccess);

}  // namespace
}  // namespace bench
}  // namespace sargus

BENCHMARK_MAIN();
