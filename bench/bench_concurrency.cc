/// B9 -- Concurrent serving throughput on the immutable read-view API.
///
/// The engine publishes immutable AccessReadViews; CheckAccess on a view
/// is const and lock-free, so decision throughput should scale with
/// reader threads (the acceptance criterion for the view subsystem: 8
/// threads on one shared view ≥ 4x a single thread, given ≥ 8 cores).
/// Four series:
///
///  * BM_ViewCheckAccess/threads:N — N threads hammering one shared
///    view, each with its own scratch context (the intended serving
///    configuration; no lock anywhere on the path);
///  * BM_EngineCheckAccess/threads:N — the engine facade, which
///    re-acquires the view per call (per-thread acquire cache, no lock
///    in steady state) and feeds the mutex-guarded audit ring: what the
///    convenience surface costs under contention;
///  * BM_EngineCheckAccessNoAudit/threads:N — the facade with
///    audit_capacity = 0 (cached view acquire, no mutex anywhere);
///  * BM_BatchCheckAccess vs BM_LoopCheckAccess — one
///    CheckAccessBatch over a fixed request mix vs the same requests
///    looped one by one (per-decision latency, single thread);
///  * BM_MutationThroughputQueued/threads:N vs
///    BM_MutationThroughputMutex/threads:N — N producers pushing
///    durable mutations through the MPSC MutationQueue (pipelined
///    submission, WalSyncPolicy::kGroupCommit: one fsync + one
///    published view per batch) vs the retired contract (external
///    mutex, inline path, kEveryRecord: one fsync + one publish per
///    op). The write-pipeline acceptance criterion reads these two
///    series: queued ≥ 3x mutex at 8 producers, no regression at 1;
///  * BM_ReadWriteInterferenceZipf/threads:N — thread 0 streams
///    queued mutations while N-1 readers draw Zipf-skewed (theta 0.99)
///    requester/resource mixes; items counts reader decisions only.
///    BM_ReadOnlyZipf is the no-writer baseline the interference is
///    measured against.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/access_engine.h"
#include "query/eval_context.h"
#include "synth/generators.h"

namespace sargus {
namespace bench {
namespace {

constexpr size_t kNodes = 4000;
constexpr size_t kNumResources = 40;
constexpr size_t kNumRequests = 256;

struct ConcurrencyFixture {
  std::unique_ptr<SocialGraph> g;
  PolicyStore store;
  std::unique_ptr<AccessControlEngine> engine;
  std::unique_ptr<AccessControlEngine> engine_no_audit;
  std::vector<AccessRequest> requests;
};

ConcurrencyFixture& GetFixture() {
  static ConcurrencyFixture* f = []() {
    auto* fx = new ConcurrencyFixture();
    fx->g = std::make_unique<SocialGraph>(
        MakeGraph(GraphKind::kBarabasiAlbert, kNodes, 3, 42));
    static const char* kPolicyMix[] = {
        "friend[1]",
        "friend[1,2]",
        "friend[1,2]/colleague[1]",
        "friend[1]{age>=18}",
    };
    Rng rng(99);
    std::vector<ResourceId> resources;
    for (size_t i = 0; i < kNumResources; ++i) {
      NodeId owner = static_cast<NodeId>(rng.NextBounded(kNodes));
      ResourceId res =
          fx->store.RegisterResource(owner, "res" + std::to_string(i));
      if (!fx->store.AddRuleFromPaths(res, {kPolicyMix[i % 4]}).ok()) {
        std::abort();
      }
      resources.push_back(res);
    }
    for (size_t i = 0; i < kNumRequests; ++i) {
      fx->requests.push_back(
          {.requester = static_cast<NodeId>(rng.NextBounded(kNodes)),
           .resource = resources[rng.NextBounded(resources.size())]});
    }
    fx->engine = std::make_unique<AccessControlEngine>(*fx->g, fx->store,
                                                       EngineOptions{});
    if (!fx->engine->RebuildIndexes().ok()) std::abort();
    EngineOptions no_audit;
    no_audit.audit_capacity = 0;
    fx->engine_no_audit = std::make_unique<AccessControlEngine>(
        *fx->g, fx->store, no_audit);
    if (!fx->engine_no_audit->RebuildIndexes().ok()) std::abort();
    return fx;
  }();
  return *f;
}

/// N threads, one shared immutable view, per-thread scratch. This is
/// the lock-free serving path the acceptance criterion measures.
void BM_ViewCheckAccess(benchmark::State& state) {
  ConcurrencyFixture& f = GetFixture();
  // All threads share one pinned view; the shared_ptr is acquired once
  // per thread, not per decision.
  std::shared_ptr<const AccessReadView> view = f.engine->AcquireReadView();
  EvalContext ctx;
  size_t i = state.thread_index() * 17;  // decorrelate thread request mixes
  for (auto _ : state) {
    const AccessRequest& req = f.requests[i % f.requests.size()];
    ++i;
    auto d = view->CheckAccess(req, ctx);
    if (!d.ok()) {
      state.SkipWithError(d.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(d->granted);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ViewCheckAccess)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void RunFacadeBench(benchmark::State& state, AccessControlEngine& engine) {
  ConcurrencyFixture& f = GetFixture();
  size_t i = state.thread_index() * 17;
  for (auto _ : state) {
    const AccessRequest& req = f.requests[i % f.requests.size()];
    ++i;
    auto d = engine.CheckAccess(req);
    if (!d.ok()) {
      state.SkipWithError(d.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(d->granted);
  }
  state.SetItemsProcessed(state.iterations());
}

/// The convenience facade: per-call atomic view acquisition + the
/// audit-ring mutex.
void BM_EngineCheckAccess(benchmark::State& state) {
  RunFacadeBench(state, *GetFixture().engine);
}
BENCHMARK(BM_EngineCheckAccess)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// The facade with auditing off: the only remaining shared write is the
/// view shared_ptr refcount.
void BM_EngineCheckAccessNoAudit(benchmark::State& state) {
  RunFacadeBench(state, *GetFixture().engine_no_audit);
}
BENCHMARK(BM_EngineCheckAccessNoAudit)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// One CheckAccessBatch over the fixed request mix: shared view
/// acquisition, one scratch context, requests grouped by resource.
void BM_BatchCheckAccess(benchmark::State& state) {
  ConcurrencyFixture& f = GetFixture();
  auto view = f.engine->AcquireReadView();
  EvalContext ctx;
  for (auto _ : state) {
    auto out = view->CheckAccessBatch(f.requests, ctx);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.requests.size());
}
BENCHMARK(BM_BatchCheckAccess);

/// The same requests, one CheckAccess at a time on the same view and
/// context — the baseline the batch API amortizes against.
void BM_LoopCheckAccess(benchmark::State& state) {
  ConcurrencyFixture& f = GetFixture();
  auto view = f.engine->AcquireReadView();
  EvalContext ctx;
  for (auto _ : state) {
    for (const AccessRequest& req : f.requests) {
      auto d = view->CheckAccess(req, ctx);
      benchmark::DoNotOptimize(d.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * f.requests.size());
}
BENCHMARK(BM_LoopCheckAccess);

// ---- Mutation throughput: queued vs mutex-serialized ------------------------

// Each producer toggles its own private logical edge (add, remove, add,
// ...): every op succeeds, the overlay stays bounded, and no two
// threads ever contend on the same logical edge — so the series
// measures pipeline overhead, not conflict semantics.
constexpr size_t kWriterNodes = 2000;
// In-flight tickets a queued producer keeps before waiting one out.
// Durability lives on tmpfs in CI, so the fsync is cheap; the batching
// win comes from amortizing the O(overlay) view republication.
constexpr size_t kPipelineWindow = 64;

struct MutationFixture {
  std::unique_ptr<SocialGraph> g;
  PolicyStore store;
  std::string dir;
  std::unique_ptr<AccessControlEngine> engine;
  std::mutex legacy_mu;  // the retired external single-writer contract
};

MutationFixture& GetMutationFixture(bool queued) {
  static std::map<bool, std::unique_ptr<MutationFixture>> cache;
  auto it = cache.find(queued);
  if (it != cache.end()) return *it->second;

  auto fx = std::make_unique<MutationFixture>();
  fx->g = std::make_unique<SocialGraph>(
      MakeGraph(GraphKind::kBarabasiAlbert, kWriterNodes, 3, 42));
  const ResourceId res = fx->store.RegisterResource(0, "res");
  if (!fx->store.AddRuleFromPaths(res, {"friend[1,2]"}).ok()) std::abort();

  EngineOptions options;
  // Keep fold/snapshot work out of the measured loop; the overlay stays
  // bounded anyway because every producer toggles its edge.
  options.compact_threshold = 1u << 30;
  options.audit_capacity = 0;
  options.async_mutations = queued;
  fx->engine = std::make_unique<AccessControlEngine>(*fx->g, fx->store,
                                                     options);
  if (!fx->engine->RebuildIndexes().ok()) std::abort();

  char tmpl[] = "/tmp/sargus_bench_concurrency_XXXXXX";
  fx->dir = mkdtemp(tmpl);
  DurabilityOptions durability;
  durability.wal_sync = queued ? storage::WalSyncPolicy::kGroupCommit
                               : storage::WalSyncPolicy::kEveryRecord;
  durability.snapshot_on_compaction = false;
  if (!fx->engine->EnableDurability(fx->dir, durability).ok()) std::abort();
  return *cache.emplace(queued, std::move(fx)).first->second;
}

/// N producers over the MPSC queue: pipelined submission with a bounded
/// ticket window, group-commit batches behind the scenes.
void BM_MutationThroughputQueued(benchmark::State& state) {
  MutationFixture& f = GetMutationFixture(/*queued=*/true);
  AccessControlEngine& engine = *f.engine;
  const auto src = static_cast<NodeId>(2 * state.thread_index());
  const auto dst = static_cast<NodeId>(2 * state.thread_index() + 1);
  bool add = true;
  std::deque<WriteTicket> window;
  for (auto _ : state) {
    WriteTicket ticket = add ? engine.SubmitAddEdge(src, dst, "friend")
                             : engine.SubmitRemoveEdge(src, dst, "friend");
    add = !add;
    window.push_back(std::move(ticket));
    if (window.size() >= kPipelineWindow) {
      const WriteOutcome out = window.front().Wait();
      window.pop_front();
      if (!out.status.ok()) {
        state.SkipWithError(out.status.ToString().c_str());
        break;
      }
    }
  }
  for (const WriteTicket& t : window) (void)t.Wait();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutationThroughputQueued)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// The same op stream under the retired contract: producers serialize
/// behind an external mutex, each op runs the inline path — its own
/// WAL fsync (kEveryRecord) and its own view republication.
void BM_MutationThroughputMutex(benchmark::State& state) {
  MutationFixture& f = GetMutationFixture(/*queued=*/false);
  AccessControlEngine& engine = *f.engine;
  const auto src = static_cast<NodeId>(2 * state.thread_index());
  const auto dst = static_cast<NodeId>(2 * state.thread_index() + 1);
  bool add = true;
  for (auto _ : state) {
    std::lock_guard<std::mutex> lock(f.legacy_mu);
    const Status s = add ? engine.AddEdge(src, dst, "friend")
                         : engine.RemoveEdge(src, dst, "friend");
    add = !add;
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutationThroughputMutex)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// ---- Read-vs-write interference under Zipf-skewed readers -------------------

constexpr double kZipfTheta = 0.99;

struct InterferenceFixture {
  std::unique_ptr<SocialGraph> g;
  PolicyStore store;
  std::vector<ResourceId> resources;
  std::unique_ptr<AccessControlEngine> engine;
};

InterferenceFixture& GetInterferenceFixture() {
  static InterferenceFixture* f = []() {
    auto* fx = new InterferenceFixture();
    fx->g = std::make_unique<SocialGraph>(
        MakeGraph(GraphKind::kBarabasiAlbert, kNodes, 3, 43));
    static const char* kPolicyMix[] = {
        "friend[1]",
        "friend[1,2]",
        "friend[1,2]/colleague[1]",
        "friend[1]{age>=18}",
    };
    Rng rng(7);
    for (size_t i = 0; i < kNumResources; ++i) {
      const NodeId owner = static_cast<NodeId>(rng.NextBounded(kNodes));
      const ResourceId res =
          fx->store.RegisterResource(owner, "zres" + std::to_string(i));
      if (!fx->store.AddRuleFromPaths(res, {kPolicyMix[i % 4]}).ok()) {
        std::abort();
      }
      fx->resources.push_back(res);
    }
    EngineOptions options;
    options.compact_threshold = 1u << 30;
    options.audit_capacity = 0;
    fx->engine = std::make_unique<AccessControlEngine>(*fx->g, fx->store,
                                                       options);
    if (!fx->engine->RebuildIndexes().ok()) std::abort();
    return fx;
  }();
  return *f;
}

void RunZipfReader(benchmark::State& state, AccessControlEngine& engine,
                   const std::vector<ResourceId>& resources) {
  ZipfSampler requesters(kNodes, kZipfTheta,
                         1000 + static_cast<uint64_t>(state.thread_index()));
  ZipfSampler picks(resources.size(), kZipfTheta,
                    2000 + static_cast<uint64_t>(state.thread_index()));
  for (auto _ : state) {
    const AccessRequest req{
        .requester = static_cast<NodeId>(requesters.Next()),
        .resource = resources[picks.Next()]};
    auto d = engine.CheckAccess(req);
    if (!d.ok()) {
      state.SkipWithError(d.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(d->granted);
  }
  state.SetItemsProcessed(state.iterations());
}

/// Thread 0 streams pipelined mutations through the queue; the rest are
/// Zipf-skewed readers. Reported items are reader decisions only — the
/// series quantifies how much decision throughput the write pipeline's
/// batched publishes steal from readers.
void BM_ReadWriteInterferenceZipf(benchmark::State& state) {
  InterferenceFixture& f = GetInterferenceFixture();
  if (state.thread_index() == 0) {
    AccessControlEngine& engine = *f.engine;
    const auto src = static_cast<NodeId>(kNodes - 2);
    const auto dst = static_cast<NodeId>(kNodes - 1);
    bool add = true;
    std::deque<WriteTicket> window;
    for (auto _ : state) {
      WriteTicket ticket = add ? engine.SubmitAddEdge(src, dst, "friend")
                               : engine.SubmitRemoveEdge(src, dst, "friend");
      add = !add;
      window.push_back(std::move(ticket));
      if (window.size() >= kPipelineWindow) {
        (void)window.front().Wait();
        window.pop_front();
      }
    }
    for (const WriteTicket& t : window) (void)t.Wait();
    state.SetItemsProcessed(0);  // writer ops are not decisions
    return;
  }
  RunZipfReader(state, *f.engine, f.resources);
}
BENCHMARK(BM_ReadWriteInterferenceZipf)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// The no-writer baseline for the series above: the same Zipf reader
/// mix with the write pipeline idle.
void BM_ReadOnlyZipf(benchmark::State& state) {
  InterferenceFixture& f = GetInterferenceFixture();
  RunZipfReader(state, *f.engine, f.resources);
}
BENCHMARK(BM_ReadOnlyZipf)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace sargus

BENCHMARK_MAIN();
